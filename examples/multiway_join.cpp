// Multi-way join (§4's extension): find (road, river, land-parcel)
// triples whose MBRs share a common point — e.g. candidate bridge sites
// inside development zones — with a single chain of lazy sweeps and no
// materialized intermediate result.
//
//   ./examples/multiway_join

#include <cstdio>
#include <iostream>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "datagen/tiger_gen.h"
#include "io/stream.h"

int main() {
  using namespace sj;
  DiskModel disk(MachineModel::Machine3());

  TigerGenerator gen(/*seed=*/11);
  std::vector<RectF> roads, rivers;
  gen.GenerateRoads(120000, &roads);
  gen.GenerateHydro(30000, &rivers);
  // Land parcels: clustered development zones over the same territory.
  const std::vector<RectF> parcels = ClusteredRects(
      15000, TigerGenerator::DefaultRegion(), 300, 0.3f, 0.04f, 999);

  auto write = [&disk](const char* name, const std::vector<RectF>& rects,
                       std::unique_ptr<Pager>* holder) {
    *holder = MakeMemoryPager(&disk, name);
    StreamWriter<RectF> writer(holder->get());
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{holder->get(), 0, writer.Finish().value()};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  std::unique_ptr<Pager> p1, p2, p3;
  const DatasetRef roads_ref = write("roads", roads, &p1);
  const DatasetRef rivers_ref = write("rivers", rivers, &p2);
  const DatasetRef parcels_ref = write("parcels", parcels, &p3);

  // Index the largest relation; the others join as sorted streams — the
  // multiway join accepts any mix, exactly like the two-way case.
  auto tree_pager = MakeMemoryPager(&disk, "roads.rtree");
  auto scratch = MakeMemoryPager(&disk, "scratch");
  auto tree = RTree::BulkLoadHilbert(tree_pager.get(), roads_ref.range,
                                     scratch.get(), RTreeParams(), 24u << 20);
  SJ_CHECK_OK(tree.status());
  disk.ResetStats();

  SpatialJoiner joiner(&disk, JoinOptions());
  CollectingTupleSink sink;
  // The same query builder runs k-way joins: add one Input per relation
  // and run against a TupleSink.
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromRTree(&*tree))
                   .Input(JoinInput::FromStream(rivers_ref))
                   .Input(JoinInput::FromStream(parcels_ref))
                   .Run(&sink);
  if (!stats.ok()) {
    std::fprintf(stderr, "multiway join failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::cout << "3-way (road, river, parcel) join: "
            << stats->Describe(disk.machine()) << "\n";
  for (size_t i = 0; i < sink.tuples().size() && i < 5; ++i) {
    const auto& t = sink.tuples()[i];
    std::printf("  candidate site: road #%u x river #%u in parcel #%u\n",
                t[0], t[1], t[2]);
  }
  return 0;
}
