// Quickstart: the unified spatial join in ~40 lines.
//
// Generates two small TIGER-like relations, stores them as streams on a
// simulated disk, builds an R-tree over one of them, and runs the same
// join three ways through the JoinQuery builder: fully non-indexed
// (SSSJ), mixed indexed/non-indexed (PQ), and planner-chosen (kAuto).
//
//   ./examples/quickstart

#include <cstdio>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "io/stream.h"

int main() {
  using namespace sj;

  // 1. A simulated machine (Table 1's DEC Alpha + Cheetah).
  DiskModel disk(MachineModel::Machine3());

  // 2. Two relations: road and hydrography MBRs.
  TigerGenerator gen(/*seed=*/2024);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(200000, &roads);
  gen.GenerateHydro(50000, &hydro);

  auto roads_pager = MakeMemoryPager(&disk, "roads");
  auto hydro_pager = MakeMemoryPager(&disk, "hydro");
  auto write = [](Pager* pager, const std::vector<RectF>& rects) {
    StreamWriter<RectF> writer(pager);
    for (const RectF& r : rects) writer.Append(r);
    const uint64_t n = writer.Finish().value();
    DatasetRef ref;
    ref.range = StreamRange{pager, 0, n};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  const DatasetRef roads_ref = write(roads_pager.get(), roads);
  const DatasetRef hydro_ref = write(hydro_pager.get(), hydro);

  // 3. An R-tree over the roads (the paper's packed, Hilbert bulk-loaded
  //    index: fanout 400, 75% fill + 20% area slack).
  auto tree_pager = MakeMemoryPager(&disk, "roads.rtree");
  auto scratch = MakeMemoryPager(&disk, "scratch");
  auto roads_tree = RTree::BulkLoadHilbert(tree_pager.get(), roads_ref.range,
                                           scratch.get(), RTreeParams(),
                                           24u << 20);
  if (!roads_tree.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 roads_tree.status().ToString().c_str());
    return 1;
  }
  std::printf("R-tree: %llu nodes, height %u, packing %.0f%%\n",
              (unsigned long long)roads_tree->node_count(),
              roads_tree->height(), roads_tree->AveragePacking() * 100);

  // 4. Join! Any mix of indexed and non-indexed inputs works; the query
  //    builder composes inputs, algorithm and options per query.
  SpatialJoiner joiner(&disk, JoinOptions());
  const MachineModel& machine = disk.machine();
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPQ, JoinAlgorithm::kAuto}) {
    disk.ResetStats();
    CountingSink sink;
    const JoinInput left = algo == JoinAlgorithm::kSSSJ
                               ? JoinInput::FromStream(roads_ref)
                               : JoinInput::FromRTree(&*roads_tree);
    auto stats = JoinQuery(joiner)
                     .Input(left)
                     .Input(JoinInput::FromStream(hydro_ref))
                     .Algorithm(algo)
                     .Run(&sink);
    if (!stats.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-5s -> %s\n", ToString(algo),
                stats->Describe(machine).c_str());
  }
  return 0;
}
