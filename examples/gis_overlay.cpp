// GIS overlay: the full two-step spatial join of §1 — filter on MBRs with
// the PQ join, then refine candidate pairs against the exact segment
// geometry ("which roads actually cross water?").
//
//   ./examples/gis_overlay

#include <cstdio>
#include <vector>

#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "geometry/segment.h"
#include "io/stream.h"
#include "util/random.h"

namespace {

using namespace sj;

// Exact geometry for the example: every object is a line segment whose
// MBR is what the join algorithms see. Roads lean axis-parallel; water
// segments follow their MBR's diagonal.
std::vector<Segment> SegmentsFromMbrs(const std::vector<RectF>& mbrs,
                                      uint64_t seed) {
  Random rng(seed);
  std::vector<Segment> segments;
  segments.reserve(mbrs.size());
  for (const RectF& r : mbrs) {
    if (rng.OneIn(0.5)) {
      segments.emplace_back(r.xlo, r.ylo, r.xhi, r.yhi);  // Main diagonal.
    } else {
      segments.emplace_back(r.xlo, r.yhi, r.xhi, r.ylo);  // Anti-diagonal.
    }
  }
  return segments;
}

}  // namespace

int main() {
  DiskModel disk(MachineModel::Machine3());
  TigerGenerator gen(/*seed=*/7);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(150000, &roads);
  gen.GenerateHydro(40000, &hydro);
  const std::vector<Segment> road_geom = SegmentsFromMbrs(roads, 100);
  const std::vector<Segment> hydro_geom = SegmentsFromMbrs(hydro, 200);

  // Store both relations and index the roads.
  auto roads_pager = MakeMemoryPager(&disk, "roads");
  auto hydro_pager = MakeMemoryPager(&disk, "hydro");
  auto write = [](Pager* pager, const std::vector<RectF>& rects) {
    StreamWriter<RectF> writer(pager);
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{pager, 0, writer.Finish().value()};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  const DatasetRef roads_ref = write(roads_pager.get(), roads);
  const DatasetRef hydro_ref = write(hydro_pager.get(), hydro);
  auto tree_pager = MakeMemoryPager(&disk, "roads.rtree");
  auto scratch = MakeMemoryPager(&disk, "scratch");
  auto tree = RTree::BulkLoadHilbert(tree_pager.get(), roads_ref.range,
                                     scratch.get(), RTreeParams(), 24u << 20);
  SJ_CHECK_OK(tree.status());

  // Filter step: MBR join (PQ drains the index in sorted order, the hydro
  // stream is sorted on the fly).
  SpatialJoiner joiner(&disk, JoinOptions());
  CollectingSink candidates;
  auto stats = joiner.Join(JoinInput::FromRTree(&*tree),
                           JoinInput::FromStream(hydro_ref), &candidates,
                           JoinAlgorithm::kPQ);
  SJ_CHECK_OK(stats.status());

  // Refinement step: exact segment intersection on the candidates.
  uint64_t crossings = 0;
  for (const IdPair& pair : candidates.pairs()) {
    if (SegmentsIntersect(road_geom[pair.a], hydro_geom[pair.b])) {
      crossings++;
    }
  }

  const double selectivity =
      candidates.pairs().empty()
          ? 0.0
          : 100.0 * static_cast<double>(crossings) /
                static_cast<double>(candidates.pairs().size());
  std::printf("filter step:      %zu candidate MBR pairs (modeled %.2f s)\n",
              candidates.pairs().size(),
              stats->ObservedSeconds(disk.machine()));
  std::printf("refinement step:  %llu true road/water crossings"
              " (%.0f%% of candidates)\n",
              (unsigned long long)crossings, selectivity);
  std::printf(
      "\nThe filter step does all the I/O; refinement touched only the %zu "
      "candidate pairs\ninstead of all %zu x %zu combinations.\n",
      candidates.pairs().size(), roads.size(), hydro.size());
  return 0;
}
