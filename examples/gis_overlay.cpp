// GIS overlay: the full two-step spatial join of §1 — filter on MBRs,
// then refine candidate pairs against the exact segment geometry held in
// paged FeatureStores ("which roads actually cross water?"). A single
// JoinQuery runs both steps: Refine(true) turns the MBR join into the
// filter step, and the returned JoinStats splits candidates from exact
// results, with the refinement I/O cost-accounted like every other page
// the join moves.
//
//   ./examples/gis_overlay [--roads=N] [--hydro=N] [--threads=T]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "refine/feature_store.h"

using namespace sj;

int main(int argc, char** argv) {
  uint64_t num_roads = 150000, num_hydro = 40000;
  uint32_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--roads=", 8) == 0) {
      num_roads = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--hydro=", 8) == 0) {
      num_hydro = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }

  DiskModel disk(MachineModel::Machine3());
  TigerGenerator gen(/*seed=*/7);
  std::vector<RectF> roads, hydro;
  std::vector<Segment> road_geom, hydro_geom;
  gen.GenerateRoadsWithGeometry(num_roads, &roads, &road_geom);
  gen.GenerateHydroWithGeometry(num_hydro, &hydro, &hydro_geom);

  // Store both relations: the MBR streams feed the filter join, the
  // FeatureStores hold the exact geometry the refinement step resolves.
  auto roads_pager = MakeMemoryPager(&disk, "roads");
  auto hydro_pager = MakeMemoryPager(&disk, "hydro");
  auto write = [](Pager* pager, const std::vector<RectF>& rects) {
    StreamWriter<RectF> writer(pager);
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{pager, 0, writer.Finish().value()};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  const DatasetRef roads_ref = write(roads_pager.get(), roads);
  const DatasetRef hydro_ref = write(hydro_pager.get(), hydro);
  auto roads_geom_pager = MakeMemoryPager(&disk, "roads.geom");
  auto hydro_geom_pager = MakeMemoryPager(&disk, "hydro.geom");
  auto roads_store =
      FeatureStore::Build(roads_geom_pager.get(), road_geom, "roads.geom");
  auto hydro_store =
      FeatureStore::Build(hydro_geom_pager.get(), hydro_geom, "hydro.geom");
  SJ_CHECK_OK(roads_store.status());
  SJ_CHECK_OK(hydro_store.status());

  auto tree_pager = MakeMemoryPager(&disk, "roads.rtree");
  auto scratch = MakeMemoryPager(&disk, "scratch");
  auto tree = RTree::BulkLoadHilbert(tree_pager.get(), roads_ref.range,
                                     scratch.get(), RTreeParams(), 24u << 20);
  SJ_CHECK_OK(tree.status());

  // Both steps in one query: the PQ filter drains the index in sorted
  // order, then the batched refinement executor resolves every candidate
  // pair against the stores. Refinement and threading are per-query
  // settings; the joiner itself keeps its defaults.
  SpatialJoiner joiner(&disk, JoinOptions());
  CollectingSink crossings;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromRTree(&*tree))
                   .Input(JoinInput::FromStream(hydro_ref))
                   .WithFeatures(0, &*roads_store)
                   .WithFeatures(1, &*hydro_store)
                   .Algorithm(JoinAlgorithm::kPQ)
                   .Refine(true)
                   .Threads(threads)
                   .Run(&crossings);
  SJ_CHECK_OK(stats.status());
  // Refinement can only discard candidates; at smoke-test scale the MBR
  // filter must also strictly overapproximate. Tiny --roads/--hydro runs
  // skip the strict form (a handful of pairs can all be true crossings).
  SJ_CHECK(stats->output_count <= stats->candidate_count);
  if (stats->candidate_count > 1000) {
    SJ_CHECK(stats->candidate_count > stats->output_count)
        << "MBR filter should overapproximate the exact overlay";
  }

  std::cout << stats->Describe(disk.machine()) << "\n";
  std::printf(
      "\nThe filter step does the bulk I/O; refinement touched only the "
      "pages backing the\n%llu candidate pairs instead of all %llu x %llu "
      "combinations.\n",
      (unsigned long long)stats->candidate_count,
      (unsigned long long)num_roads, (unsigned long long)num_hydro);
  return 0;
}
