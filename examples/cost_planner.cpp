// Cost-based plan selection (§6.3): the paper's point that "index
// available" should not mean "index used". We pose two joins against the
// same indexed road relation:
//
//   (a) nationwide hydrography  -> the traversal would touch ~the whole
//       index with random reads; the planner streams instead (SSSJ);
//   (b) one state's hydrography -> the join touches a small corner of the
//       index; the planner picks the selective PQ traversal.
//
//   ./examples/cost_planner

#include <cstdio>
#include <iostream>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "io/stream.h"

int main() {
  using namespace sj;
  DiskModel disk(MachineModel::Machine1());  // Fast disk, 10x random:seq.

  TigerGenerator gen(/*seed=*/5);
  std::vector<RectF> roads, hydro_us;
  gen.GenerateRoads(250000, &roads);
  gen.GenerateHydro(60000, &hydro_us);

  // "Minnesota": hydro restricted to a window of ~2% of the US extent.
  const RectF us = TigerGenerator::DefaultRegion();
  const RectF state(-97.2f, 43.5f, -89.5f, 49.4f);
  std::vector<RectF> hydro_state;
  for (const RectF& r : hydro_us) {
    if (r.Intersects(state)) hydro_state.push_back(r);
  }

  auto write = [&disk](const char* name, const std::vector<RectF>& rects,
                       const RectF& extent, std::unique_ptr<Pager>* holder) {
    *holder = MakeMemoryPager(&disk, name);
    StreamWriter<RectF> writer(holder->get());
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{holder->get(), 0, writer.Finish().value()};
    ref.extent = extent;
    return ref;
  };
  std::unique_ptr<Pager> p1, p2, p3;
  const DatasetRef roads_ref = write("roads", roads, us, &p1);
  const DatasetRef hydro_us_ref = write("hydro.us", hydro_us, us, &p2);
  RectF state_extent = RectF::Empty();
  for (const RectF& r : hydro_state) state_extent.ExtendTo(r);
  const DatasetRef hydro_state_ref =
      write("hydro.state", hydro_state, state_extent, &p3);

  auto tree_pager = MakeMemoryPager(&disk, "roads.rtree");
  auto scratch = MakeMemoryPager(&disk, "scratch");
  auto tree = RTree::BulkLoadHilbert(tree_pager.get(), roads_ref.range,
                                     scratch.get(), RTreeParams(), 24u << 20);
  SJ_CHECK_OK(tree.status());

  // Histograms sharpen the planner's touched-fraction estimate.
  GridHistogram roads_hist(us, 64, 64), us_hist(us, 64, 64),
      state_hist(us, 64, 64);
  for (const RectF& r : roads) roads_hist.Add(r);
  for (const RectF& r : hydro_us) us_hist.Add(r);
  for (const RectF& r : hydro_state) state_hist.Add(r);

  SpatialJoiner joiner(&disk, JoinOptions());
  std::printf("cost model break-even fraction f* = %.2f (machine: %s)\n\n",
              joiner.cost_model().IndexBreakEvenFraction(),
              disk.machine().name.c_str());

  struct Case {
    const char* label;
    const DatasetRef* hydro;
    const GridHistogram* hist;
  } cases[] = {{"US-wide hydro  ", &hydro_us_ref, &us_hist},
               {"one-state hydro", &hydro_state_ref, &state_hist}};
  for (const Case& c : cases) {
    // Explain compiles the query (planner included) without running it;
    // the same chain with Run executes the chosen plan.
    auto build_query = [&](JoinQuery query) {
      query.Input(JoinInput::FromRTree(&*tree))
          .Input(JoinInput::FromStream(*c.hydro))
          .WithHistogram(0, &roads_hist)
          .WithHistogram(1, c.hist);
      return query;
    };
    auto decision = build_query(JoinQuery(joiner)).Explain();
    SJ_CHECK_OK(decision.status());
    disk.ResetStats();
    CountingSink sink;
    auto stats = build_query(JoinQuery(joiner)).Run(&sink);
    SJ_CHECK_OK(stats.status());
    std::cout << c.label << " -> " << *decision << "\n     "
              << stats->Describe(disk.machine()) << "\n";
  }
  return 0;
}
