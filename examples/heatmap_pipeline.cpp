// Heatmap pipeline: the operator-tree answer to "where do roads cross
// water, and which hotspots are nearest downtown?". One PipelineQuery
// composes the spatial join with a density grid and a top-k scan —
// filter, aggregate and rank run as physical operators over the join's
// output rows, all under a single memory budget, instead of three
// hand-rolled post-processing passes over a materialized pair list.
//
//   ./examples/heatmap_pipeline [--roads=N] [--hydro=N] [--threads=T]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/pipeline_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"

using namespace sj;

int main(int argc, char** argv) {
  uint64_t num_roads = 120000, num_hydro = 30000;
  uint32_t threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--roads=", 8) == 0) {
      num_roads = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--hydro=", 8) == 0) {
      num_hydro = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }

  DiskModel disk(MachineModel::Machine3());
  TigerGenerator gen(/*seed=*/11);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(num_roads, &roads);
  gen.GenerateHydro(num_hydro, &hydro);

  auto roads_pager = MakeMemoryPager(&disk, "roads");
  auto hydro_pager = MakeMemoryPager(&disk, "hydro");
  auto write = [](Pager* pager, const std::vector<RectF>& rects) {
    StreamWriter<RectF> writer(pager);
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{pager, 0, writer.Finish().value()};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  const DatasetRef roads_ref = write(roads_pager.get(), roads);
  const DatasetRef hydro_ref = write(hydro_pager.get(), hydro);

  const RectF region = TigerGenerator::DefaultRegion();
  const float cx = (region.xlo + region.xhi) / 2;
  const float cy = (region.ylo + region.yhi) / 2;

  SpatialJoiner joiner(&disk, JoinOptions());
  PipelineQuery query(joiner);
  query.Input(JoinInput::FromStream(roads_ref))
      .Input(JoinInput::FromStream(hydro_ref))
      .AggregateByCell(AggregateMode::kCount, 64, 64, region)
      .TopKByDistance(16, cx, cy)
      .Threads(threads)
      .MemoryBytes(16u << 20);

  // The plan first: the costed operator tree plus the join decision it
  // embeds, without executing anything.
  auto plan = query.Explain();
  SJ_CHECK_OK(plan.status());
  std::cout << plan->Describe() << "\n";

  CollectingRowSink hotspots;
  auto stats = query.Run(&hotspots);
  SJ_CHECK_OK(stats.status());
  SJ_CHECK(hotspots.rows().size() <= 16);
  SJ_CHECK(!hotspots.rows().empty()) << "expected at least one hot cell";
  SJ_CHECK(stats->peak_memory_bytes <= 16u << 20)
      << "pipeline exceeded its budget";

  std::cout << stats->Describe(disk.machine()) << "\n\n";
  std::printf("%zu hottest crossing cells near (%.0f, %.0f):\n",
              hotspots.rows().size(), (double)cx, (double)cy);
  for (const PipeRow& row : hotspots.rows()) {
    std::printf("  cell #%llu  [%.1f, %.1f]x[%.1f, %.1f]  crossings=%.0f\n",
                (unsigned long long)row.ids[0], (double)row.rect.xlo,
                (double)row.rect.xhi, (double)row.rect.ylo,
                (double)row.rect.yhi, (double)row.value);
  }
  return 0;
}
