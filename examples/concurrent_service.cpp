// The SpatialService in ~60 lines: one process-wide service — a global
// memory budget, a shared 2Q buffer pool, a shared worker pool — serving
// several clients at once.
//
// Four client threads each submit two queries (different predicates and
// budgets) through SubmittedQuery handles. The service admits what fits
// under the global budget, queues or degrades the rest FIFO, and every
// query still computes exactly its standalone result.
//
//   ./examples/concurrent_service

#include <cstdio>
#include <thread>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "io/stream.h"
#include "service/spatial_service.h"

int main() {
  using namespace sj;

  DiskModel disk(MachineModel::Machine3());
  TigerGenerator gen(/*seed=*/2024);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(80000, &roads);
  gen.GenerateHydro(20000, &hydro);

  auto roads_pager = MakeMemoryPager(&disk, "roads");
  auto hydro_pager = MakeMemoryPager(&disk, "hydro");
  auto write = [](Pager* pager, const std::vector<RectF>& rects) {
    StreamWriter<RectF> writer(pager);
    for (const RectF& r : rects) writer.Append(r);
    DatasetRef ref;
    ref.range = StreamRange{pager, 0, writer.Finish().value()};
    ref.extent = TigerGenerator::DefaultRegion();
    return ref;
  };
  const DatasetRef roads_ref = write(roads_pager.get(), roads);
  const DatasetRef hydro_ref = write(hydro_pager.get(), hydro);
  SpatialJoiner joiner(&disk, JoinOptions());

  // One service for the whole process: 32 MB across all admitted queries
  // (each query asks for 16 MB, so at most two run full-budget at a time;
  // later ones queue or run degraded), 2 workers, a small shared pool.
  ServiceOptions options;
  options.global_memory_bytes = 32u << 20;
  options.worker_threads = 2;
  options.buffer_pool_pages = 512;
  SpatialService service(options);

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 2; ++i) {
        JoinQuery query(joiner);
        query.Input(JoinInput::FromStream(roads_ref))
            .Input(JoinInput::FromStream(hydro_ref))
            .MemoryBytes(16u << 20);
        if (i == 1) query.Predicate(Predicate::kDistanceWithin, 0.001);
        CountingSink sink;
        SubmittedQuery handle = service.Submit(query, &sink);
        const auto& result = handle.Result();  // Waits.
        if (!result.ok()) {
          std::fprintf(stderr, "client %d query %d: %s\n", c, i,
                       result.status().ToString().c_str());
          std::exit(1);
        }
        std::printf("client %d query %d (%s): %llu pairs, %s%zu MB grant\n",
                    c, i, i == 0 ? "intersects" : "distance<0.001",
                    static_cast<unsigned long long>(sink.count()),
                    handle.degraded() ? "degraded " : "",
                    handle.granted_bytes() >> 20);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServiceStats stats = service.stats();
  std::printf(
      "\nservice: %llu submitted, %llu full + %llu degraded admissions\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted_full),
      static_cast<unsigned long long>(stats.admitted_degraded));
  std::printf("global peak %.1f MB within the %.1f MB budget; shared pool "
              "%llu hits / %llu requests\n",
              stats.global_peak_bytes / 1048576.0,
              options.global_memory_bytes / 1048576.0,
              static_cast<unsigned long long>(stats.pool.hits),
              static_cast<unsigned long long>(stats.pool.requests));
  return stats.global_peak_bytes <= options.global_memory_bytes ? 0 : 1;
}
