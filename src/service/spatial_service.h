#ifndef USJ_SERVICE_SPATIAL_SERVICE_H_
#define USJ_SERVICE_SPATIAL_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/join_query.h"
#include "core/memory_arbiter.h"
#include "core/pipeline_query.h"
#include "io/buffer_pool.h"
#include "join/join_types.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sj {

namespace service_internal {
struct ServiceGate;  // Handle-side liveness gate; defined in the .cc.
}  // namespace service_internal

/// Process-wide resource configuration for a SpatialService.
struct ServiceOptions {
  /// One memory budget for every concurrently admitted query. Each
  /// admitted query gets a child MemoryArbiter carved out of this (its
  /// grants::kBufferPool, sort runs, sweeps ... all draw from the child),
  /// so the sum of admitted query budgets can never exceed this number —
  /// the global arbiter's Acquire denies the carve instead. Default: ~10
  /// concurrent queries at the paper's 24 MB each.
  size_t global_memory_bytes = 256u << 20;
  /// Strict mode for the *global* arbiter (children inherit each query's
  /// own strict_memory_accounting option).
  bool strict_memory_accounting = false;
  /// Shared morsel-style workers executing admitted queries and their
  /// parallel phases (one ThreadPool for everything; per-query task
  /// groups drained round-robin, see util/thread_pool.h). 0 = inline
  /// mode: Submit() runs the query to completion on the calling thread —
  /// the single-query service JoinQuery::Run wraps.
  uint32_t worker_threads = 0;
  /// Shared page-cache frames (io/buffer_pool.h, 2Q replacement) serving
  /// every ST traversal of every query, with per-query hit/miss
  /// attribution. 0 = no shared pool: each query builds its grant-backed
  /// private pool exactly as standalone execution does.
  size_t buffer_pool_pages = 0;
  /// Queries allowed to wait for admission before Submit() rejects with
  /// ResourceExhausted outright.
  size_t admission_queue_limit = 64;
  /// How long a queued query may wait for admission before failing with
  /// DeadlineExceeded (used when SubmitOptions names no deadline).
  double default_queue_deadline_seconds = 30.0;
  /// Degraded admission floor: when the free global budget cannot cover
  /// a query's full request but covers at least this much — and nothing
  /// is queued ahead of it — the query is admitted with the smaller
  /// budget instead of queueing (its executors spill more; results are
  /// identical). Clamped up to kMinMemoryBytes. 0 disables degraded
  /// admission.
  size_t degraded_min_bytes = 4u << 20;
  /// Default storage backend for admitted queries' scratch/spill files
  /// (null = in-memory). A query's own JoinOptions::storage, when set,
  /// wins over this. Implementations must be thread-safe — concurrent
  /// queries create files through one factory.
  std::shared_ptr<StorageFactory> storage;
};

/// Per-submission knobs.
struct SubmitOptions {
  /// Overrides ServiceOptions::default_queue_deadline_seconds when >= 0.
  double queue_deadline_seconds = -1.0;
  /// Permit admission below the full request (never below the service's
  /// degraded_min_bytes floor).
  bool allow_degraded = true;
};

/// Scheduler-facing counters (ServiceStats::pool is the shared pool's
/// aggregate; per-query pool traffic lands in each JoinStats).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted_full = 0;
  uint64_t admitted_degraded = 0;
  /// Rejected at Submit: request above the whole global budget, or the
  /// admission queue was full.
  uint64_t rejected = 0;
  uint64_t deadline_expired = 0;
  uint64_t cancelled = 0;
  size_t global_in_use_bytes = 0;
  size_t global_peak_bytes = 0;
  BufferPoolStats pool;
};

class SpatialService;

/// A future-like handle to one submitted query. Copyable (all copies
/// refer to the same submission); safe to outlive the service (the
/// service's destructor resolves every outstanding submission first).
class SubmittedQuery {
 public:
  struct Ticket;  // Shared submission state; defined in the service's .cc.

  SubmittedQuery() = default;

  /// True once the query finished, failed, was cancelled, or expired.
  bool done() const;

  /// Blocks until done (helping is not needed: the service's reaper
  /// thread expires a queued query at its deadline, a running one
  /// finishes, and the service destructor resolves everything queued).
  void Wait() const;

  /// Best-effort cancel: a still-queued query completes immediately with
  /// Cancelled and returns true; a running or finished query is left
  /// alone and returns false (results are delivered normally).
  bool Cancel();

  /// Waits, then returns the outcome: JoinStats on success, or the
  /// admission/execution error (FailedPrecondition for misuse,
  /// ResourceExhausted for rejection, DeadlineExceeded for queue timeout,
  /// Cancelled, or whatever the executors returned).
  const sj::Result<JoinStats>& Result() const;

  /// Admission outcome (0 / false while still queued).
  size_t granted_bytes() const;
  bool degraded() const;
  uint64_t id() const;

 private:
  friend class SpatialService;
  explicit SubmittedQuery(std::shared_ptr<Ticket> ticket)
      : ticket_(std::move(ticket)) {}
  std::shared_ptr<Ticket> ticket_;
};

/// A future-like handle to one submitted pipeline — the PipelineQuery
/// counterpart of SubmittedQuery, sharing the same ticket machinery
/// (admission, degraded grants, cancel, deadlines) with a
/// PipelineStats-typed outcome.
class SubmittedPipeline {
 public:
  SubmittedPipeline() = default;

  bool done() const;
  void Wait() const;
  /// Best-effort cancel of a still-queued pipeline (see
  /// SubmittedQuery::Cancel).
  bool Cancel();
  /// Waits, then returns PipelineStats or the admission/execution error.
  const sj::Result<PipelineStats>& Result() const;

  size_t granted_bytes() const;
  bool degraded() const;
  uint64_t id() const;

 private:
  friend class SpatialService;
  explicit SubmittedPipeline(std::shared_ptr<SubmittedQuery::Ticket> ticket)
      : ticket_(std::move(ticket)) {}
  std::shared_ptr<SubmittedQuery::Ticket> ticket_;
};

/// The process-wide spatial-join service: one global memory budget, one
/// shared 2Q buffer pool, one morsel-style worker pool, and a FIFO
/// admission scheduler in front of them.
///
/// Admission: Submit() validates the query's budget (below kMinMemoryBytes
/// is FailedPrecondition — misuse; above the whole global budget is
/// ResourceExhausted — unsatisfiable), then admits it by carving a child
/// MemoryArbiter out of the global one. When the free budget cannot cover
/// the request, the query either degrades (admitted with the free budget,
/// never below degraded_min_bytes) or queues FIFO — strictly: a later
/// small query never jumps an earlier big one, so admission cannot starve.
/// Every completion re-runs admission with the freed bytes; queued queries
/// that outlive their deadline fail with DeadlineExceeded.
///
/// Execution: each admitted query runs as one task on the shared worker
/// pool (inline on the submitter when worker_threads == 0) with its
/// options rewritten to the granted budget, the shared pool/threads, and
/// the carved arbiter — then flows through exactly the JoinQuery pipeline.
/// Because a query's parallel phases submit task groups to the same pool
/// and group waits help (run their own queued tasks), any number of
/// queries make progress on a fixed set of threads without deadlock.
///
/// Thread-safe throughout. The destructor cancels queued queries and
/// waits for running ones.
class SpatialService {
 public:
  explicit SpatialService(const ServiceOptions& options = ServiceOptions());
  ~SpatialService();

  SpatialService(const SpatialService&) = delete;
  SpatialService& operator=(const SpatialService&) = delete;

  /// Submits a pairwise query (the query object is copied; inputs,
  /// histograms, and feature stores it references must stay alive until
  /// the submission is done). Results stream into `sink`, which must be
  /// thread-safe against nothing but this one query (one query = one
  /// execution thread plus morsel helpers that already merge in unit
  /// order). Never blocks in threaded mode; runs the query to completion
  /// inline when worker_threads == 0.
  SubmittedQuery Submit(const JoinQuery& query, JoinSink* sink,
                        const SubmitOptions& submit = SubmitOptions());

  /// Submit + Result in one call.
  sj::Result<JoinStats> Run(const JoinQuery& query, JoinSink* sink,
                            const SubmitOptions& submit = SubmitOptions());

  /// Submits an operator pipeline (core/pipeline_query.h). Pipelines are
  /// first-class citizens of the scheduler: the same FIFO admission over
  /// the same global budget, the same degraded grants, the same shared
  /// worker pool and buffer pool — a pipeline's join source and its
  /// operators all draw from the one carved child arbiter. Rows stream
  /// into `sink` on the executing thread.
  SubmittedPipeline Submit(const PipelineQuery& pipeline, RowSink* sink,
                           const SubmitOptions& submit = SubmitOptions());

  /// Submit + Result in one call.
  sj::Result<PipelineStats> Run(const PipelineQuery& pipeline, RowSink* sink,
                                const SubmitOptions& submit = SubmitOptions());

  ServiceStats stats() const;
  MemoryArbiter* global_arbiter() { return &global_arbiter_; }
  /// Null when the service was configured without workers / shared pool.
  ThreadPool* worker_pool() { return worker_pool_.get(); }
  BufferPool* buffer_pool() { return buffer_pool_.get(); }
  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class AdmitOutcome {
    kAdmitted,           // Committed: dispatch it.
    kNoBudget,           // Free budget cannot cover it (even degraded).
    kResolvedMeanwhile,  // A Cancel() resolved it mid-admission: pop only.
  };

  /// Removes cancelled tickets anywhere in queue_ (folding their count
  /// into counters_) and fails past-deadline ones with DeadlineExceeded.
  /// Caller must hold mu_.
  void ReapLocked(Clock::time_point now);
  /// Reaps, then admits every queued ticket the FIFO head allows (full
  /// or degraded). Returns the tickets to dispatch; caller must hold mu_
  /// and dispatch after unlocking.
  std::vector<std::shared_ptr<SubmittedQuery::Ticket>> AdmitLocked();
  /// Carves the child arbiter etc. for `t` if the free budget allows,
  /// rechecking under the ticket lock that no Cancel() raced the commit.
  /// Caller must hold mu_.
  AdmitOutcome TryAdmitOneLocked(
      const std::shared_ptr<SubmittedQuery::Ticket>& t);
  void Dispatch(std::vector<std::shared_ptr<SubmittedQuery::Ticket>> tickets);
  void Execute(const std::shared_ptr<SubmittedQuery::Ticket>& ticket);
  /// The shared Submit body: validation, enqueue, and admission for a
  /// fully-constructed ticket (join or pipeline — the ticket knows).
  void SubmitTicket(const std::shared_ptr<SubmittedQuery::Ticket>& ticket,
                    const SubmitOptions& submit);

  friend class SubmittedQuery;
  friend class SubmittedPipeline;
  /// Handle-side cancel shared by both handle types (see the .cc).
  static bool CancelTicket(
      const std::shared_ptr<SubmittedQuery::Ticket>& ticket);
  /// Cancel()'s gate-guarded notification: reap the cancelled ticket's
  /// queue slot now and re-run admission for whatever was behind it.
  /// Returns the tickets to dispatch (already counted in running_).
  std::vector<std::shared_ptr<SubmittedQuery::Ticket>> ReapAfterHandleCancel();

  /// Starts the reaper thread on the first submission that actually
  /// queues. Caller must hold mu_.
  void EnsureReaperLocked();
  /// Sleeps until the earliest queued deadline (or a queue change),
  /// expires overdue tickets, and re-runs admission — so an expired head
  /// releases the queries behind it at its deadline, not at the next
  /// submit/completion.
  void ReaperLoop();

  const ServiceOptions options_;
  MemoryArbiter global_arbiter_;
  /// Shared with every ticket; the destructor nulls its service pointer
  /// so handles outliving the service cannot call back into it.
  std::shared_ptr<service_internal::ServiceGate> gate_;
  std::unique_ptr<ThreadPool> worker_pool_;   // Null in inline mode.
  std::unique_ptr<BufferPool> buffer_pool_;   // Null when pages == 0.

  mutable std::mutex mu_;
  std::deque<std::shared_ptr<SubmittedQuery::Ticket>> queue_;
  uint64_t next_id_ = 1;
  size_t running_ = 0;
  bool shutting_down_ = false;
  std::condition_variable idle_cv_;  // Signaled when running_ drops.
  std::thread reaper_;               // Lazily started; see ReaperLoop.
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;  // Guarded by mu_.
  ServiceStats counters_;
};

}  // namespace sj

#endif  // USJ_SERVICE_SPATIAL_SERVICE_H_
