#include "service/spatial_service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace sj {

/// One submission's shared state. Completion (result/state/cv) is
/// self-contained on the ticket so handles stay valid independently of
/// the service's internals; the service pointer is only touched while the
/// ticket is still queued, which the destructor's drain guarantees
/// happens before the service dies. Lock order: service mu_ before
/// ticket mu, never the reverse.
struct SubmittedQuery::Ticket {
  Ticket(SpatialService* service_in, const JoinQuery& query_in,
         JoinSink* sink_in)
      : service(service_in), query(query_in), sink(sink_in) {}

  SpatialService* service;
  uint64_t id = 0;
  JoinQuery query;  // Private copy; referenced inputs must outlive us.
  JoinSink* sink;
  size_t requested_bytes = 0;
  bool strict = false;
  bool allow_degraded = true;
  std::chrono::steady_clock::time_point deadline;

  enum class State { kQueued, kRunning, kDone };

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  State state = State::kQueued;
  size_t granted_bytes = 0;
  bool degraded = false;
  uint32_t pool_client = 0;
  std::shared_ptr<MemoryArbiter> arbiter;  // Carved child; reset when done.
  std::optional<sj::Result<JoinStats>> result;

  /// Caller must hold `mu`.
  void FinishLocked(sj::Result<JoinStats> r) {
    result.emplace(std::move(r));
    state = State::kDone;
    arbiter.reset();
    cv.notify_all();
  }
};

using Ticket = SubmittedQuery::Ticket;

bool SubmittedQuery::done() const {
  if (ticket_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->state == Ticket::State::kDone;
}

void SubmittedQuery::Wait() const {
  if (ticket_ == nullptr) return;
  std::unique_lock<std::mutex> lock(ticket_->mu);
  bool expired_here = false;
  while (ticket_->state != Ticket::State::kDone) {
    if (ticket_->state == Ticket::State::kQueued) {
      // A queued query waits at most to its admission deadline; whoever
      // notices the expiry first (this waiter or the scheduler's reap)
      // resolves the ticket.
      ticket_->cv.wait_until(lock, ticket_->deadline);
      if (ticket_->state == Ticket::State::kQueued &&
          std::chrono::steady_clock::now() >= ticket_->deadline) {
        ticket_->FinishLocked(Status::DeadlineExceeded(
            "query #" + std::to_string(ticket_->id) +
            " expired after waiting for admission; the global memory "
            "budget stayed occupied past the queue deadline"));
        expired_here = true;
      }
    } else {
      ticket_->cv.wait(lock);  // Running: finishes, no deadline applies.
    }
  }
  lock.unlock();
  if (expired_here) ticket_->service->NoteQueueExpiry();
}

bool SubmittedQuery::Cancel() {
  if (ticket_ == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(ticket_->mu);
    if (ticket_->state != Ticket::State::kQueued) return false;
    ticket_->FinishLocked(Status::Cancelled(
        "query #" + std::to_string(ticket_->id) +
        " cancelled while queued for admission"));
  }
  // Still-queued implies the service is alive (its destructor resolves
  // every queued ticket before returning).
  ticket_->service->NoteCancel();
  return true;
}

const sj::Result<JoinStats>& SubmittedQuery::Result() const {
  SJ_CHECK(ticket_ != nullptr) << "Result() on a default SubmittedQuery";
  Wait();
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return *ticket_->result;
}

size_t SubmittedQuery::granted_bytes() const {
  if (ticket_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->granted_bytes;
}

bool SubmittedQuery::degraded() const {
  if (ticket_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->degraded;
}

uint64_t SubmittedQuery::id() const {
  return ticket_ == nullptr ? 0 : ticket_->id;
}

SpatialService::SpatialService(const ServiceOptions& options)
    : options_(options),
      global_arbiter_(options.global_memory_bytes,
                      options.strict_memory_accounting) {
  if (options_.worker_threads > 0) {
    worker_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.buffer_pool_pages > 0) {
    buffer_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  }
}

SpatialService::~SpatialService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    // Queued queries never run once shutdown starts; resolve them so no
    // handle blocks forever.
    for (const std::shared_ptr<Ticket>& t : queue_) {
      std::lock_guard<std::mutex> tl(t->mu);
      if (t->state == Ticket::State::kQueued) {
        t->FinishLocked(Status::Cancelled(
            "query #" + std::to_string(t->id) +
            " cancelled: the service shut down before admission"));
        counters_.cancelled++;
      }
    }
    queue_.clear();
  }
  // Admitted queries run to completion.
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return running_ == 0; });
  }
  worker_pool_.reset();  // Joins workers before the shared pool dies.
}

SubmittedQuery SpatialService::Submit(const JoinQuery& query, JoinSink* sink,
                                      const SubmitOptions& submit) {
  auto ticket = std::make_shared<Ticket>(this, query, sink);
  ticket->requested_bytes = query.options().memory_bytes;
  ticket->strict = query.options().strict_memory_accounting;
  ticket->allow_degraded =
      submit.allow_degraded && options_.degraded_min_bytes > 0;
  const double deadline_seconds = submit.queue_deadline_seconds >= 0.0
                                      ? submit.queue_deadline_seconds
                                      : options_.default_queue_deadline_seconds;
  ticket->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));

  std::vector<std::shared_ptr<Ticket>> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket->id = next_id_++;
    counters_.submitted++;
    std::lock_guard<std::mutex> tl(ticket->mu);
    if (ticket->requested_bytes < kMinMemoryBytes) {
      // Misuse, not contention: same floor and code path the query layer
      // enforces (see JoinQuery::Compile).
      counters_.rejected++;
      ticket->FinishLocked(Status::FailedPrecondition(
          "memory budget " + std::to_string(ticket->requested_bytes) +
          " B is below the supported floor of " +
          std::to_string(kMinMemoryBytes) +
          " B (kMinMemoryBytes, 64 KiB); raise JoinQuery::MemoryBytes / "
          "JoinOptions::memory_bytes"));
      return SubmittedQuery(std::move(ticket));
    }
    if (ticket->requested_bytes > options_.global_memory_bytes) {
      // Unsatisfiable at any queue position: no amount of waiting frees
      // more than the whole global budget.
      counters_.rejected++;
      ticket->FinishLocked(Status::ResourceExhausted(
          "query asks for " + std::to_string(ticket->requested_bytes) +
          " B but the service's whole global budget is " +
          std::to_string(options_.global_memory_bytes) +
          " B; lower JoinQuery::MemoryBytes or grow "
          "ServiceOptions::global_memory_bytes"));
      return SubmittedQuery(std::move(ticket));
    }
    if (shutting_down_) {
      counters_.rejected++;
      ticket->FinishLocked(
          Status::FailedPrecondition("service is shutting down"));
      return SubmittedQuery(std::move(ticket));
    }
    if (queue_.size() >= options_.admission_queue_limit) {
      counters_.rejected++;
      ticket->FinishLocked(Status::ResourceExhausted(
          "admission queue is full (" +
          std::to_string(options_.admission_queue_limit) +
          " queries already waiting)"));
      return SubmittedQuery(std::move(ticket));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(ticket);
    to_dispatch = AdmitLocked();
  }
  Dispatch(std::move(to_dispatch));
  return SubmittedQuery(std::move(ticket));
}

sj::Result<JoinStats> SpatialService::Run(const JoinQuery& query,
                                          JoinSink* sink,
                                          const SubmitOptions& submit) {
  return Submit(query, sink, submit).Result();
}

std::vector<std::shared_ptr<Ticket>> SpatialService::AdmitLocked() {
  std::vector<std::shared_ptr<Ticket>> out;
  const auto now = Clock::now();
  while (!queue_.empty()) {
    const std::shared_ptr<Ticket> t = queue_.front();
    {
      std::lock_guard<std::mutex> tl(t->mu);
      if (t->state == Ticket::State::kDone) {  // Cancelled or expired.
        queue_.pop_front();
        continue;
      }
      if (now >= t->deadline) {
        counters_.deadline_expired++;
        t->FinishLocked(Status::DeadlineExceeded(
            "query #" + std::to_string(t->id) +
            " expired after waiting for admission; the global memory "
            "budget stayed occupied past the queue deadline"));
        queue_.pop_front();
        continue;
      }
    }
    // Strict FIFO: if the head cannot be admitted (even degraded),
    // nothing behind it is — a stream of small queries can never starve
    // an earlier big one.
    if (!TryAdmitOneLocked(t)) break;
    queue_.pop_front();
    out.push_back(t);
  }
  return out;
}

bool SpatialService::TryAdmitOneLocked(const std::shared_ptr<Ticket>& t) {
  const size_t available = global_arbiter_.available();
  size_t grant = 0;
  bool degraded = false;
  if (available >= t->requested_bytes) {
    grant = t->requested_bytes;
  } else if (t->allow_degraded) {
    // Admit with what is free instead of queueing, if that is at least
    // the documented degradation floor (executors spill more under the
    // smaller budget; results are identical).
    const size_t floor =
        std::max(options_.degraded_min_bytes, kMinMemoryBytes);
    if (available >= floor) {
      grant = std::min(t->requested_bytes, available);
      degraded = true;
    }
  }
  if (grant == 0) return false;

  auto child = global_arbiter_.CarveChild("query." + std::to_string(t->id),
                                          grant, t->strict);
  if (!child.ok()) return false;
  {
    std::lock_guard<std::mutex> tl(t->mu);
    t->state = Ticket::State::kRunning;
    t->granted_bytes = grant;
    t->degraded = degraded;
    t->arbiter = std::move(child).value();
    if (buffer_pool_ != nullptr) {
      t->pool_client =
          buffer_pool_->RegisterClient("query." + std::to_string(t->id));
    }
  }
  if (degraded) {
    counters_.admitted_degraded++;
  } else {
    counters_.admitted_full++;
  }
  running_++;
  return true;
}

void SpatialService::Dispatch(
    std::vector<std::shared_ptr<Ticket>> tickets) {
  for (std::shared_ptr<Ticket>& t : tickets) {
    if (worker_pool_ != nullptr) {
      std::shared_ptr<Ticket> ticket = std::move(t);
      worker_pool_->Submit(
          [this, ticket = std::move(ticket)] { Execute(ticket); });
    } else {
      Execute(t);  // Inline mode: the submitter's thread is the worker.
    }
  }
}

void SpatialService::Execute(const std::shared_ptr<Ticket>& ticket) {
  // The query runs with its options rewritten to the admission outcome:
  // granted budget, the carved child arbiter, and the shared pool(s). The
  // copy lives inside the lambda so its reference to the child arbiter is
  // gone before completion bookkeeping — FinishLocked's arbiter reset must
  // be the last reference, or the carved budget would still look occupied
  // when AdmitLocked below re-runs admission.
  sj::Result<JoinStats> result = [&]() -> sj::Result<JoinStats> {
    JoinQuery query = ticket->query;
    query.MemoryBytes(ticket->granted_bytes);
    query.UseArbiter(ticket->arbiter);
    JoinOptions& o = query.mutable_options();
    if (worker_pool_ != nullptr) o.worker_pool = worker_pool_.get();
    if (buffer_pool_ != nullptr) {
      o.shared_buffer_pool = buffer_pool_.get();
      o.buffer_pool_client = ticket->pool_client;
    }
    return query.RunDirect(ticket->sink);
  }();

  std::vector<std::shared_ptr<Ticket>> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> tl(ticket->mu);
      ticket->FinishLocked(std::move(result));  // Frees the carved budget.
    }
    running_--;
    idle_cv_.notify_all();
    to_dispatch = AdmitLocked();  // The freed bytes may admit the head.
  }
  Dispatch(std::move(to_dispatch));
}

void SpatialService::NoteCancel() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.cancelled++;
}

void SpatialService::NoteQueueExpiry() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.deadline_expired++;
}

ServiceStats SpatialService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = counters_;
  s.global_in_use_bytes = global_arbiter_.in_use();
  s.global_peak_bytes = global_arbiter_.peak_bytes();
  if (buffer_pool_ != nullptr) s.pool = buffer_pool_->stats();
  return s;
}

}  // namespace sj
