#include "service/spatial_service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace sj {

namespace service_internal {

/// Pins the service for handle-side calls. A SubmittedQuery may outlive
/// its SpatialService, so after resolving a ticket the handle must not
/// touch the raw service pointer; instead it takes `mu` and calls through
/// `service` only while that is non-null. ~SpatialService nulls the
/// pointer under the same mutex (after draining the queue), so a handle
/// either reaches a live service or finds the pointer cleared — never a
/// dangling one. Lock order: gate mu before the service's mu_.
struct ServiceGate {
  std::mutex mu;
  SpatialService* service = nullptr;
};

}  // namespace service_internal

using service_internal::ServiceGate;

/// One submission's shared state. Completion (result/state/cv) is
/// self-contained on the ticket so handles stay valid independently of
/// the service's internals; handle-side calls back into the service go
/// through the gate (see ServiceGate). Lock order: gate mu before
/// service mu_ before ticket mu, never the reverse.
struct SubmittedQuery::Ticket {
  Ticket(std::shared_ptr<ServiceGate> gate_in, const JoinQuery& query_in,
         JoinSink* sink_in)
      : gate(std::move(gate_in)), query(query_in), sink(sink_in) {}
  Ticket(std::shared_ptr<ServiceGate> gate_in,
         const PipelineQuery& pipeline_in, RowSink* sink_in)
      : gate(std::move(gate_in)), pipeline(pipeline_in), row_sink(sink_in) {}

  std::shared_ptr<ServiceGate> gate;
  uint64_t id = 0;
  /// Exactly one of these is set — the ticket's kind. Private copies;
  /// referenced inputs must outlive the submission.
  std::optional<JoinQuery> query;
  std::optional<PipelineQuery> pipeline;
  JoinSink* sink = nullptr;
  RowSink* row_sink = nullptr;
  // Immutable once the ticket is published (set in Submit before the
  // ticket reaches the queue or a handle).
  size_t requested_bytes = 0;
  bool strict = false;
  bool allow_degraded = true;
  std::chrono::steady_clock::time_point deadline;

  enum class State { kQueued, kRunning, kDone };

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  State state = State::kQueued;
  size_t granted_bytes = 0;
  bool degraded = false;
  /// Set (with kDone) by Cancel(); the scheduler folds it into
  /// ServiceStats::cancelled when it removes the ticket from its queue,
  /// so the count lives on the ticket and needs no service call.
  bool cancelled_by_handle = false;
  uint32_t pool_client = 0;
  std::shared_ptr<MemoryArbiter> arbiter;  // Carved child; reset when done.
  std::optional<sj::Result<JoinStats>> result;
  std::optional<sj::Result<PipelineStats>> pipeline_result;

  bool is_pipeline() const { return pipeline.has_value(); }

  /// Caller must hold `mu`.
  void DoneLocked() {
    // Single-finisher invariant: Cancel/expiry only resolve kQueued
    // tickets, Execute only finishes the kRunning ticket it admitted —
    // so the result is emplaced exactly once and references returned by
    // Result() stay valid.
    SJ_CHECK(state != State::kDone) << "double finish on query ticket";
    state = State::kDone;
    arbiter.reset();
    cv.notify_all();
  }
  void FinishLocked(sj::Result<JoinStats> r) {
    result.emplace(std::move(r));
    DoneLocked();
  }
  void FinishPipelineLocked(sj::Result<PipelineStats> r) {
    pipeline_result.emplace(std::move(r));
    DoneLocked();
  }
  /// The kind-agnostic error path (rejection, cancel, deadline,
  /// shutdown): routes the Status to whichever result slot this ticket
  /// reports through.
  void FinishErrorLocked(Status s) {
    if (is_pipeline()) {
      FinishPipelineLocked(std::move(s));
    } else {
      FinishLocked(std::move(s));
    }
  }
};

using Ticket = SubmittedQuery::Ticket;

bool SubmittedQuery::done() const {
  if (ticket_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->state == Ticket::State::kDone;
}

void SubmittedQuery::Wait() const {
  if (ticket_ == nullptr) return;
  // Expiry is the scheduler's job: the service's reaper thread wakes at
  // the earliest queued deadline and resolves expired tickets (and its
  // destructor resolves everything still queued), so waiting handles
  // never need to touch the service.
  std::unique_lock<std::mutex> lock(ticket_->mu);
  ticket_->cv.wait(lock,
                   [this] { return ticket_->state == Ticket::State::kDone; });
}

/// The handle-side cancel shared by SubmittedQuery and SubmittedPipeline:
/// resolve a still-queued ticket with Cancelled, then notify the
/// scheduler through the gate so the queue slot frees immediately and, if
/// this was the head, the queries behind it get an admission pass now
/// rather than at the next submit/completion. The gate pins the service:
/// once its destructor nulls the pointer, the destructor's drain has
/// already folded this ticket's cancel into the counters.
bool SpatialService::CancelTicket(const std::shared_ptr<Ticket>& ticket) {
  if (ticket == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    if (ticket->state != Ticket::State::kQueued) return false;
    ticket->cancelled_by_handle = true;
    ticket->FinishErrorLocked(Status::Cancelled(
        "query #" + std::to_string(ticket->id) +
        " cancelled while queued for admission"));
  }
  std::vector<std::shared_ptr<Ticket>> to_dispatch;
  SpatialService* service = nullptr;
  {
    std::lock_guard<std::mutex> gate_lock(ticket->gate->mu);
    service = ticket->gate->service;
    if (service != nullptr) to_dispatch = service->ReapAfterHandleCancel();
  }
  // Safe outside the gate: each dispatched ticket is already counted in
  // running_, which the service destructor waits on before returning.
  if (!to_dispatch.empty()) service->Dispatch(std::move(to_dispatch));
  return true;
}

bool SubmittedQuery::Cancel() { return SpatialService::CancelTicket(ticket_); }

const sj::Result<JoinStats>& SubmittedQuery::Result() const {
  SJ_CHECK(ticket_ != nullptr) << "Result() on a default SubmittedQuery";
  Wait();
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return *ticket_->result;
}

size_t SubmittedQuery::granted_bytes() const {
  if (ticket_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->granted_bytes;
}

bool SubmittedQuery::degraded() const {
  if (ticket_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->degraded;
}

uint64_t SubmittedQuery::id() const {
  return ticket_ == nullptr ? 0 : ticket_->id;
}

bool SubmittedPipeline::done() const {
  if (ticket_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->state == Ticket::State::kDone;
}

void SubmittedPipeline::Wait() const {
  if (ticket_ == nullptr) return;
  std::unique_lock<std::mutex> lock(ticket_->mu);
  ticket_->cv.wait(lock,
                   [this] { return ticket_->state == Ticket::State::kDone; });
}

bool SubmittedPipeline::Cancel() {
  return SpatialService::CancelTicket(ticket_);
}

const sj::Result<PipelineStats>& SubmittedPipeline::Result() const {
  SJ_CHECK(ticket_ != nullptr) << "Result() on a default SubmittedPipeline";
  Wait();
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return *ticket_->pipeline_result;
}

size_t SubmittedPipeline::granted_bytes() const {
  if (ticket_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->granted_bytes;
}

bool SubmittedPipeline::degraded() const {
  if (ticket_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->degraded;
}

uint64_t SubmittedPipeline::id() const {
  return ticket_ == nullptr ? 0 : ticket_->id;
}

SpatialService::SpatialService(const ServiceOptions& options)
    : options_(options),
      global_arbiter_(options.global_memory_bytes,
                      options.strict_memory_accounting),
      gate_(std::make_shared<ServiceGate>()) {
  gate_->service = this;
  if (options_.worker_threads > 0) {
    worker_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.buffer_pool_pages > 0) {
    buffer_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  }
}

SpatialService::~SpatialService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    reaper_stop_ = true;
    // Queued queries never run once shutdown starts; resolve them so no
    // handle blocks forever. Tickets a handle already cancelled (but the
    // scheduler has not reaped) get their count folded here — removal
    // from queue_ and the counter bump are atomic under mu_, so every
    // cancel is counted exactly once.
    for (const std::shared_ptr<Ticket>& t : queue_) {
      std::lock_guard<std::mutex> tl(t->mu);
      if (t->state == Ticket::State::kQueued) {
        t->FinishErrorLocked(Status::Cancelled(
            "query #" + std::to_string(t->id) +
            " cancelled: the service shut down before admission"));
        counters_.cancelled++;
      } else if (t->state == Ticket::State::kDone && t->cancelled_by_handle) {
        counters_.cancelled++;
      }
    }
    queue_.clear();
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
  // Admitted queries run to completion.
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return running_ == 0; });
  }
  // From here no handle may reach this service: Cancel() callers either
  // already passed the gate (their tickets were resolved and folded by
  // the drain above, so their reap is a no-op) or will find it closed.
  {
    std::lock_guard<std::mutex> gate_lock(gate_->mu);
    gate_->service = nullptr;
  }
  worker_pool_.reset();  // Joins workers before the shared pool dies.
}

void SpatialService::SubmitTicket(const std::shared_ptr<Ticket>& ticket,
                                  const SubmitOptions& submit) {
  ticket->allow_degraded =
      submit.allow_degraded && options_.degraded_min_bytes > 0;
  const double deadline_seconds = submit.queue_deadline_seconds >= 0.0
                                      ? submit.queue_deadline_seconds
                                      : options_.default_queue_deadline_seconds;
  ticket->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));

  // Validation, enqueue, and admission form one continuous critical
  // section: the queue-limit and shutdown checks cannot go stale between
  // checking and enqueueing (N racing Submits each see the queue length
  // including the pushes that beat them, and no push can land after the
  // destructor's drain).
  std::vector<std::shared_ptr<Ticket>> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket->id = next_id_++;
    counters_.submitted++;
    // Reap before measuring the queue so cancelled/expired stragglers do
    // not count against the limit (done outside the new ticket's lock —
    // only one ticket mutex is ever held at a time).
    ReapLocked(Clock::now());
    {
      std::lock_guard<std::mutex> tl(ticket->mu);
      if (ticket->requested_bytes < kMinMemoryBytes) {
        // Misuse, not contention: same floor and code path the query layer
        // enforces (see JoinQuery::Compile).
        counters_.rejected++;
        ticket->FinishErrorLocked(Status::FailedPrecondition(
            "memory budget " + std::to_string(ticket->requested_bytes) +
            " B is below the supported floor of " +
            std::to_string(kMinMemoryBytes) +
            " B (kMinMemoryBytes, 64 KiB); raise the query's MemoryBytes / "
            "JoinOptions::memory_bytes"));
        return;
      }
      if (ticket->requested_bytes > options_.global_memory_bytes) {
        // Unsatisfiable at any queue position: no amount of waiting frees
        // more than the whole global budget.
        counters_.rejected++;
        ticket->FinishErrorLocked(Status::ResourceExhausted(
            "query asks for " + std::to_string(ticket->requested_bytes) +
            " B but the service's whole global budget is " +
            std::to_string(options_.global_memory_bytes) +
            " B; lower the query's MemoryBytes or grow "
            "ServiceOptions::global_memory_bytes"));
        return;
      }
      if (shutting_down_) {
        counters_.rejected++;
        ticket->FinishErrorLocked(
            Status::FailedPrecondition("service is shutting down"));
        return;
      }
      if (queue_.size() >= options_.admission_queue_limit) {
        counters_.rejected++;
        ticket->FinishErrorLocked(Status::ResourceExhausted(
            "admission queue is full (" +
            std::to_string(options_.admission_queue_limit) +
            " queries already waiting)"));
        return;
      }
    }
    queue_.push_back(ticket);
    to_dispatch = AdmitLocked();
    if (!queue_.empty()) {
      // Someone stayed queued: the reaper owns their deadlines.
      EnsureReaperLocked();
      reaper_cv_.notify_one();  // New earliest deadline, maybe.
    }
  }
  Dispatch(std::move(to_dispatch));
}

SubmittedQuery SpatialService::Submit(const JoinQuery& query, JoinSink* sink,
                                      const SubmitOptions& submit) {
  auto ticket = std::make_shared<Ticket>(gate_, query, sink);
  ticket->requested_bytes = query.options().memory_bytes;
  ticket->strict = query.options().strict_memory_accounting;
  SubmitTicket(ticket, submit);
  return SubmittedQuery(std::move(ticket));
}

sj::Result<JoinStats> SpatialService::Run(const JoinQuery& query,
                                          JoinSink* sink,
                                          const SubmitOptions& submit) {
  return Submit(query, sink, submit).Result();
}

SubmittedPipeline SpatialService::Submit(const PipelineQuery& pipeline,
                                         RowSink* sink,
                                         const SubmitOptions& submit) {
  auto ticket = std::make_shared<Ticket>(gate_, pipeline, sink);
  ticket->requested_bytes = pipeline.options().memory_bytes;
  ticket->strict = pipeline.options().strict_memory_accounting;
  SubmitTicket(ticket, submit);
  return SubmittedPipeline(std::move(ticket));
}

sj::Result<PipelineStats> SpatialService::Run(const PipelineQuery& pipeline,
                                              RowSink* sink,
                                              const SubmitOptions& submit) {
  return Submit(pipeline, sink, submit).Result();
}

void SpatialService::ReapLocked(Clock::time_point now) {
  auto it = queue_.begin();
  while (it != queue_.end()) {
    const std::shared_ptr<Ticket>& t = *it;
    std::lock_guard<std::mutex> tl(t->mu);
    if (t->state == Ticket::State::kDone) {  // Handle-side cancel.
      if (t->cancelled_by_handle) counters_.cancelled++;
      it = queue_.erase(it);
      continue;
    }
    if (now >= t->deadline) {
      counters_.deadline_expired++;
      t->FinishErrorLocked(Status::DeadlineExceeded(
          "query #" + std::to_string(t->id) +
          " expired after waiting for admission; the global memory "
          "budget stayed occupied past the queue deadline"));
      it = queue_.erase(it);
      continue;
    }
    ++it;
  }
}

std::vector<std::shared_ptr<Ticket>> SpatialService::AdmitLocked() {
  // Clear cancelled/expired tickets anywhere in the queue first, so they
  // neither hold queue slots nor block the FIFO head.
  ReapLocked(Clock::now());
  std::vector<std::shared_ptr<Ticket>> out;
  while (!queue_.empty()) {
    const std::shared_ptr<Ticket> t = queue_.front();
    const AdmitOutcome outcome = TryAdmitOneLocked(t);
    // Strict FIFO: if the head cannot be admitted (even degraded),
    // nothing behind it is — a stream of small queries can never starve
    // an earlier big one.
    if (outcome == AdmitOutcome::kNoBudget) break;
    queue_.pop_front();
    if (outcome == AdmitOutcome::kAdmitted) out.push_back(t);
    // kResolvedMeanwhile: a Cancel() landed between ReapLocked and the
    // commit; the ticket is popped without dispatching.
  }
  return out;
}

SpatialService::AdmitOutcome SpatialService::TryAdmitOneLocked(
    const std::shared_ptr<Ticket>& t) {
  // requested_bytes / allow_degraded / strict are immutable once the
  // ticket is published, so reading them without the ticket lock is fine.
  const size_t available = global_arbiter_.available();
  size_t grant = 0;
  bool degraded = false;
  if (available >= t->requested_bytes) {
    grant = t->requested_bytes;
  } else if (t->allow_degraded) {
    // Admit with what is free instead of queueing, if that is at least
    // the documented degradation floor (executors spill more under the
    // smaller budget; results are identical).
    const size_t floor =
        std::max(options_.degraded_min_bytes, kMinMemoryBytes);
    if (available >= floor) {
      grant = std::min(t->requested_bytes, available);
      degraded = true;
    }
  }
  if (grant == 0) return AdmitOutcome::kNoBudget;

  auto child = global_arbiter_.CarveChild("query." + std::to_string(t->id),
                                          grant, t->strict);
  if (!child.ok()) return AdmitOutcome::kNoBudget;
  {
    std::lock_guard<std::mutex> tl(t->mu);
    // Recheck under the ticket lock: a Cancel() may have resolved the
    // ticket since this admission pass last looked at it. Committing
    // blindly would overwrite kDone with kRunning and run a cancelled
    // query. Dropping `child` here releases the carved budget.
    if (t->state != Ticket::State::kQueued) {
      if (t->cancelled_by_handle) counters_.cancelled++;
      return AdmitOutcome::kResolvedMeanwhile;
    }
    t->state = Ticket::State::kRunning;
    t->granted_bytes = grant;
    t->degraded = degraded;
    t->arbiter = std::move(child).value();
    if (buffer_pool_ != nullptr) {
      t->pool_client =
          buffer_pool_->RegisterClient("query." + std::to_string(t->id));
    }
  }
  if (degraded) {
    counters_.admitted_degraded++;
  } else {
    counters_.admitted_full++;
  }
  running_++;
  return AdmitOutcome::kAdmitted;
}

std::vector<std::shared_ptr<Ticket>> SpatialService::ReapAfterHandleCancel() {
  std::lock_guard<std::mutex> lock(mu_);
  // During shutdown the destructor's drain owns the queue (and folds the
  // cancel count itself).
  if (shutting_down_) return {};
  return AdmitLocked();
}

void SpatialService::EnsureReaperLocked() {
  if (!reaper_.joinable()) {
    // Lazily started on the first submission that actually queues, so
    // the single-query path (JoinQuery::Run over a fresh service) never
    // pays for a thread.
    reaper_ = std::thread(&SpatialService::ReaperLoop, this);
  }
}

void SpatialService::ReaperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!reaper_stop_) {
    // Sleep until the earliest queued deadline (or a queue change).
    std::optional<Clock::time_point> next;
    for (const std::shared_ptr<Ticket>& t : queue_) {
      std::lock_guard<std::mutex> tl(t->mu);
      if (t->state == Ticket::State::kQueued) {
        next = next.has_value() ? std::min(*next, t->deadline) : t->deadline;
      }
    }
    if (!next.has_value()) {
      reaper_cv_.wait(lock);
    } else {
      reaper_cv_.wait_until(lock, *next);
    }
    if (reaper_stop_) break;
    // Expire whatever is overdue and re-run admission: an expired head
    // must not keep admittable queries behind it waiting for the next
    // submit/completion.
    std::vector<std::shared_ptr<Ticket>> to_dispatch = AdmitLocked();
    if (!to_dispatch.empty()) {
      lock.unlock();
      Dispatch(std::move(to_dispatch));
      lock.lock();
    }
  }
}

void SpatialService::Dispatch(
    std::vector<std::shared_ptr<Ticket>> tickets) {
  for (std::shared_ptr<Ticket>& t : tickets) {
    if (worker_pool_ != nullptr) {
      std::shared_ptr<Ticket> ticket = std::move(t);
      worker_pool_->Submit(
          [this, ticket = std::move(ticket)] { Execute(ticket); });
    } else {
      Execute(t);  // Inline mode: the submitter's thread is the worker.
    }
  }
}

void SpatialService::Execute(const std::shared_ptr<Ticket>& ticket) {
  // The query runs with its options rewritten to the admission outcome:
  // granted budget, the carved child arbiter, and the shared pool(s). The
  // copy lives inside the lambda so its reference to the child arbiter is
  // gone before completion bookkeeping — FinishLocked's arbiter reset must
  // be the last reference, or the carved budget would still look occupied
  // when AdmitLocked below re-runs admission.
  auto rewrite = [&](auto& query) {
    query.MemoryBytes(ticket->granted_bytes);
    query.UseArbiter(ticket->arbiter);
    JoinOptions& o = query.mutable_options();
    if (worker_pool_ != nullptr) o.worker_pool = worker_pool_.get();
    if (buffer_pool_ != nullptr) {
      o.shared_buffer_pool = buffer_pool_.get();
      o.buffer_pool_client = ticket->pool_client;
    }
    // The service's storage backend is the default; a query that chose
    // its own keeps it.
    if (o.storage == nullptr) o.storage = options_.storage;
  };
  std::optional<sj::Result<JoinStats>> join_result;
  std::optional<sj::Result<PipelineStats>> pipeline_result;
  if (ticket->is_pipeline()) {
    PipelineQuery query = *ticket->pipeline;
    rewrite(query);
    pipeline_result.emplace(query.RunDirect(ticket->row_sink));
  } else {
    JoinQuery query = *ticket->query;
    rewrite(query);
    join_result.emplace(query.RunDirect(ticket->sink));
  }

  std::vector<std::shared_ptr<Ticket>> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> tl(ticket->mu);
      // Frees the carved budget.
      if (ticket->is_pipeline()) {
        ticket->FinishPipelineLocked(std::move(*pipeline_result));
      } else {
        ticket->FinishLocked(std::move(*join_result));
      }
    }
    running_--;
    idle_cv_.notify_all();
    to_dispatch = AdmitLocked();  // The freed bytes may admit the head.
  }
  Dispatch(std::move(to_dispatch));
}

ServiceStats SpatialService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = counters_;
  s.global_in_use_bytes = global_arbiter_.in_use();
  s.global_peak_bytes = global_arbiter_.peak_bytes();
  if (buffer_pool_ != nullptr) s.pool = buffer_pool_->stats();
  return s;
}

}  // namespace sj
