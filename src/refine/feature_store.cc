#include "refine/feature_store.h"

#include <algorithm>
#include <cstring>

#include "io/stream.h"

namespace sj {

static_assert(sizeof(Segment) == 16,
              "Segment must be the 16-byte geometry payload record");

Result<FeatureStore> FeatureStore::Build(Pager* pager,
                                         Span<const Segment> geom,
                                         const std::string& name,
                                         ObjectId base_id) {
  FeatureStoreHeader header;
  header.count = geom.size();
  header.base_id = base_id;
  std::strncpy(header.name, name.c_str(), sizeof(header.name) - 1);

  const PageId header_page = pager->Allocate(1);
  uint8_t page[kPageSize] = {};
  std::memcpy(page, &header, sizeof(header));
  SJ_RETURN_IF_ERROR(pager->WritePage(header_page, page));

  StreamWriter<Segment> writer(pager);
  for (const Segment& s : geom) writer.Append(s);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  SJ_CHECK(n == geom.size());

  return FeatureStore(pager, header_page, geom.size(), base_id);
}

Result<FeatureStore> FeatureStore::Open(Pager* pager, PageId header_page) {
  uint8_t page[kPageSize];
  SJ_RETURN_IF_ERROR(pager->ReadPage(header_page, page));
  FeatureStoreHeader header;
  std::memcpy(&header, page, sizeof(header));
  if (header.magic != FeatureStoreHeader::kMagic) {
    return Status::Corruption("feature store header magic mismatch");
  }
  if (header.version != FeatureStoreHeader::kVersion) {
    return Status::Corruption("unsupported feature store version");
  }
  return FeatureStore(pager, header_page, header.count, header.base_id);
}

Result<PageId> FeatureStore::DataPageOf(ObjectId id) const {
  const uint64_t index = static_cast<uint64_t>(id) - base_id_;
  if (id < base_id_ || index >= count_) {
    return Status::InvalidArgument("feature id " + std::to_string(id) +
                                   " outside store [" +
                                   std::to_string(base_id_) + ", " +
                                   std::to_string(base_id_ + count_) + ")");
  }
  return static_cast<PageId>(first_data_page_ + index / kRecordsPerPage);
}

Result<Segment> FeatureStore::Fetch(ObjectId id) const {
  SJ_ASSIGN_OR_RETURN(PageId page, DataPageOf(id));
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
  const uint64_t slot =
      (static_cast<uint64_t>(id) - base_id_) % kRecordsPerPage;
  Segment out;
  std::memcpy(&out, buf + slot * sizeof(Segment), sizeof(Segment));
  return out;
}

Result<uint64_t> FeatureStore::FetchBatch(Span<const ObjectId> ids,
                                          std::vector<Segment>* out,
                                          DiskModel* charge,
                                          uint32_t charge_dev) const {
  if (ids.empty()) return uint64_t{0};
  std::vector<PageId> pages;
  pages.reserve(ids.size());
  for (const ObjectId id : ids) {
    SJ_ASSIGN_OR_RETURN(PageId page, DataPageOf(id));
    pages.push_back(page);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  // Read runs of consecutive pages as single requests, in ascending page
  // order, into one contiguous buffer (slot i holds pages[i]).
  std::vector<uint8_t> buffer(pages.size() * kPageSize);
  size_t i = 0;
  while (i < pages.size()) {
    size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1 &&
           j - i < kStreamBlockPages) {
      ++j;
    }
    const uint32_t npages = static_cast<uint32_t>(j - i);
    uint8_t* dst = buffer.data() + i * kPageSize;
    if (charge == nullptr) {
      SJ_RETURN_IF_ERROR(pager_->ReadRun(pages[i], npages, dst));
    } else {
      charge->Read(charge_dev, pages[i], npages);
      for (uint32_t k = 0; k < npages; ++k) {
        SJ_RETURN_IF_ERROR(
            pager_->backend()->ReadPage(pages[i] + k, dst + k * kPageSize));
      }
    }
    i = j;
  }

  out->reserve(out->size() + ids.size());
  for (const ObjectId id : ids) {
    const uint64_t index = static_cast<uint64_t>(id) - base_id_;
    const PageId page =
        static_cast<PageId>(first_data_page_ + index / kRecordsPerPage);
    const size_t slot_in_buffer =
        std::lower_bound(pages.begin(), pages.end(), page) - pages.begin();
    Segment s;
    std::memcpy(&s,
                buffer.data() + slot_in_buffer * kPageSize +
                    (index % kRecordsPerPage) * sizeof(Segment),
                sizeof(Segment));
    out->push_back(s);
  }
  return static_cast<uint64_t>(pages.size());
}

}  // namespace sj
