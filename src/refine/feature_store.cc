#include "refine/feature_store.h"

#include <algorithm>
#include <cstring>

#include "io/stream.h"
#include "util/timer.h"

namespace sj {

static_assert(sizeof(Segment) == 16,
              "Segment must be the 16-byte geometry payload record");

Result<FeatureStore> FeatureStore::Build(Pager* pager,
                                         Span<const Segment> geom,
                                         const std::string& name,
                                         ObjectId base_id) {
  FeatureStoreHeader header;
  header.count = geom.size();
  header.base_id = base_id;
  std::strncpy(header.name, name.c_str(), sizeof(header.name) - 1);

  const PageId header_page = pager->Allocate(1);
  uint8_t page[kPageSize] = {};
  std::memcpy(page, &header, sizeof(header));
  SJ_RETURN_IF_ERROR(pager->WritePage(header_page, page));

  StreamWriter<Segment> writer(pager);
  for (const Segment& s : geom) writer.Append(s);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  SJ_CHECK(n == geom.size());

  return FeatureStore(pager, header_page, geom.size(), base_id);
}

Result<FeatureStore> FeatureStore::Open(Pager* pager, PageId header_page) {
  uint8_t page[kPageSize];
  SJ_RETURN_IF_ERROR(pager->ReadPage(header_page, page));
  FeatureStoreHeader header;
  std::memcpy(&header, page, sizeof(header));
  if (header.magic != FeatureStoreHeader::kMagic) {
    return Status::Corruption("feature store header magic mismatch");
  }
  if (header.version != FeatureStoreHeader::kVersion) {
    return Status::Corruption("unsupported feature store version");
  }
  return FeatureStore(pager, header_page, header.count, header.base_id);
}

Result<PageId> FeatureStore::DataPageOf(ObjectId id) const {
  const uint64_t index = static_cast<uint64_t>(id) - base_id_;
  if (id < base_id_ || index >= count_) {
    return Status::InvalidArgument("feature id " + std::to_string(id) +
                                   " outside store [" +
                                   std::to_string(base_id_) + ", " +
                                   std::to_string(base_id_ + count_) + ")");
  }
  return static_cast<PageId>(first_data_page_ + index / kRecordsPerPage);
}

Result<Segment> FeatureStore::Fetch(ObjectId id) const {
  SJ_ASSIGN_OR_RETURN(PageId page, DataPageOf(id));
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
  const uint64_t slot =
      (static_cast<uint64_t>(id) - base_id_) % kRecordsPerPage;
  Segment out;
  std::memcpy(&out, buf + slot * sizeof(Segment), sizeof(Segment));
  return out;
}

Result<uint64_t> FeatureStore::FetchBatch(Span<const ObjectId> ids,
                                          std::vector<Segment>* out,
                                          DiskModel* charge,
                                          uint32_t charge_dev) const {
  SJ_ASSIGN_OR_RETURN(PendingBatch batch, StartBatch(ids));
  return FinishBatch(std::move(batch), out, charge, charge_dev);
}

Result<FeatureStore::PendingBatch> FeatureStore::StartBatch(
    Span<const ObjectId> ids, const PrefetchContext& prefetch) const {
  PendingBatch batch;
  batch.ids_.assign(ids.begin(), ids.end());
  if (ids.empty()) return std::move(batch);
  batch.pages_.reserve(ids.size());
  for (const ObjectId id : ids) {
    SJ_ASSIGN_OR_RETURN(PageId page, DataPageOf(id));
    batch.pages_.push_back(page);
  }
  std::sort(batch.pages_.begin(), batch.pages_.end());
  batch.pages_.erase(std::unique(batch.pages_.begin(), batch.pages_.end()),
                     batch.pages_.end());

  // Runs of consecutive pages become single requests, in ascending page
  // order; slot i of the batch buffer holds pages_[i].
  size_t i = 0;
  while (i < batch.pages_.size()) {
    size_t j = i + 1;
    while (j < batch.pages_.size() &&
           batch.pages_[j] == batch.pages_[j - 1] + 1 &&
           j - i < kStreamBlockPages) {
      ++j;
    }
    batch.runs_.push_back(
        PageRun{batch.pages_[i], static_cast<uint32_t>(j - i)});
    i = j;
  }

  if (prefetch.enabled) {
    batch.prefetcher_ =
        std::make_unique<BlockPrefetcher>(pager_, prefetch.pool);
    batch.prefetcher_->Start(batch.runs_);
  }
  return std::move(batch);
}

Result<uint64_t> FeatureStore::FinishBatch(PendingBatch batch,
                                           std::vector<Segment>* out,
                                           DiskModel* charge,
                                           uint32_t charge_dev) const {
  if (batch.ids_.empty()) return uint64_t{0};
  DiskModel* disk = charge != nullptr ? charge : pager_->disk();
  const uint32_t dev = charge != nullptr ? charge_dev : pager_->device_id();
  std::vector<uint8_t> buffer;
  if (batch.prefetcher_ != nullptr) {
    // Bytes were moved (or are being moved) in the background; the
    // modeled charges land here, on the consuming thread, in plan order.
    SJ_RETURN_IF_ERROR(batch.prefetcher_->FinishCharged(&buffer, disk, dev));
  } else {
    buffer.resize(batch.pages_.size() * kPageSize);
    size_t slot = 0;
    for (const PageRun& run : batch.runs_) {
      uint8_t* dst = buffer.data() + slot * kPageSize;
      if (charge == nullptr) {
        SJ_RETURN_IF_ERROR(pager_->ReadRun(run.first, run.npages, dst));
      } else {
        charge->Read(charge_dev, run.first, run.npages);
        WallTimer wall;
        for (uint32_t k = 0; k < run.npages; ++k) {
          SJ_RETURN_IF_ERROR(pager_->backend()->ReadPage(
              run.first + k, dst + k * kPageSize));
        }
        charge->AddIoWall(wall.Elapsed());
      }
      slot += run.npages;
    }
  }

  out->reserve(out->size() + batch.ids_.size());
  for (const ObjectId id : batch.ids_) {
    const uint64_t index = static_cast<uint64_t>(id) - base_id_;
    const PageId page =
        static_cast<PageId>(first_data_page_ + index / kRecordsPerPage);
    const size_t slot_in_buffer =
        std::lower_bound(batch.pages_.begin(), batch.pages_.end(), page) -
        batch.pages_.begin();
    Segment s;
    std::memcpy(&s,
                buffer.data() + slot_in_buffer * kPageSize +
                    (index % kRecordsPerPage) * sizeof(Segment),
                sizeof(Segment));
    out->push_back(s);
  }
  return static_cast<uint64_t>(batch.pages_.size());
}

}  // namespace sj
