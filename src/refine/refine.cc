#include "refine/refine.h"

#include <algorithm>
#include <memory>

#include "join/predicate_batch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {
namespace {

/// Per-batch state shared by the pair and tuple executors: a private
/// DiskModel shard (fresh disk state, so modeled I/O depends only on the
/// batch's own request sequence) with one registered device per input
/// store, plus per-batch counters.
struct BatchShard {
  std::unique_ptr<DiskModel> disk;
  std::vector<uint32_t> devices;
  uint64_t pages_read = 0;
  uint64_t results = 0;
  double cpu_seconds = 0.0;
};

std::vector<BatchShard> MakeShards(uint64_t nbatches, const MachineModel& m,
                                   size_t nstores) {
  std::vector<BatchShard> shards(nbatches);
  for (BatchShard& s : shards) {
    s.disk = std::make_unique<DiskModel>(m);
    s.devices.reserve(nstores);
    for (size_t k = 0; k < nstores; ++k) {
      s.devices.push_back(
          s.disk->RegisterDevice("refine." + std::to_string(k)));
    }
  }
  return shards;
}

/// Grant-aware batch size: the configured refine_batch_pairs, shrunk so
/// one batch's working set fits the "refine.batch" grant — the graceful
/// over-budget path (smaller batches mean more, smaller fetch rounds,
/// never a failure). `grant` keeps the share reserved for the caller's
/// lifetime.
uint64_t EffectiveBatchPairs(const JoinOptions& options, MemoryArbiter* arbiter,
                             MemoryGrant* grant) {
  const uint64_t batch = std::max<uint32_t>(1, options.refine_batch_pairs);
  if (arbiter == nullptr) return batch;
  *grant = arbiter->AcquireShrinkable(
      grants::kRefineBatch, batch * kRefineBytesPerCandidate,
      size_t{kMinRefineBatchPairs} * kRefineBytesPerCandidate);
  const uint64_t cap = std::max<uint64_t>(
      kMinRefineBatchPairs, grant->bytes() / kRefineBytesPerCandidate);
  const uint64_t effective = std::min(batch, cap);
  grant->NoteUsage(effective * kRefineBytesPerCandidate);
  return effective;
}

RefineStats MergeShards(const std::vector<BatchShard>& shards, bool pooled,
                        uint64_t candidates) {
  RefineStats stats;
  stats.candidates = candidates;
  for (const BatchShard& s : shards) {
    stats.results += s.results;
    stats.pages_read += s.pages_read;
    stats.disk += s.disk->stats();
    // Inline batches already ran on the caller's measured thread; only
    // pool workers' CPU needs reporting (parallel-engine convention).
    if (pooled) stats.host_cpu_seconds += s.cpu_seconds;
  }
  return stats;
}

}  // namespace

Result<RefineStats> RefinePairs(const std::vector<IdPair>& candidates,
                                const FeatureStore& store_a,
                                const FeatureStore& store_b,
                                const JoinOptions& options, JoinSink* sink,
                                const PredicateSpec& predicate,
                                MemoryArbiter* arbiter) {
  MemoryGrant batch_grant;
  const uint64_t batch = EffectiveBatchPairs(options, arbiter, &batch_grant);
  const uint64_t n = candidates.size();
  const uint64_t nbatches = (n + batch - 1) / batch;
  if (nbatches == 0) return RefineStats{};

  const SweepKernelMode kernel_mode = ActiveSweepKernelMode();
  const MachineModel& machine = store_a.pager()->disk()->machine();
  std::vector<BatchShard> shards = MakeShards(nbatches, machine, 2);
  std::vector<CollectingSink> buffered(nbatches);
  // Matches ParallelFor's inline condition: serial batches stream straight
  // to the caller's sink in the same order the pooled merge replays them.
  const bool pooled = options.num_threads > 1 && nbatches > 1;

  // Read-ahead: batch i starts batch i+1's page fetches before refining,
  // so the next batch's bytes arrive while this batch computes. Serial
  // only (inline ParallelFor runs batches in index order); pool workers
  // already overlap each other. Modeled charges land in FinishBatch on
  // the consuming batch's own shard, so stats are unchanged.
  const PrefetchContext prefetch = PrefetchContextOf(options);
  const bool read_ahead = prefetch.enabled && !pooled;
  std::vector<FeatureStore::PendingBatch> fetch_a(nbatches), fetch_b(nbatches);
  std::vector<uint8_t> started(nbatches, 0);
  auto start_batch = [&](uint64_t i) -> Status {
    const uint64_t lo = i * batch;
    const uint64_t hi = std::min(n, lo + batch);
    std::vector<ObjectId> ids_a, ids_b;
    ids_a.reserve(hi - lo);
    ids_b.reserve(hi - lo);
    for (uint64_t k = lo; k < hi; ++k) {
      ids_a.push_back(candidates[k].a);
      ids_b.push_back(candidates[k].b);
    }
    SJ_ASSIGN_OR_RETURN(
        fetch_a[i],
        store_a.StartBatch(Span<const ObjectId>(ids_a.data(), ids_a.size()),
                           prefetch));
    SJ_ASSIGN_OR_RETURN(
        fetch_b[i],
        store_b.StartBatch(Span<const ObjectId>(ids_b.data(), ids_b.size()),
                           prefetch));
    started[i] = 1;
    return Status::OK();
  };

  SJ_RETURN_IF_ERROR(ParallelFor(
      options.worker_pool, options.num_threads, nbatches, [&](uint64_t i) -> Status {
        BatchShard& shard = shards[i];
        ThreadCpuTimer cpu;
        const uint64_t lo = i * batch;
        const uint64_t hi = std::min(n, lo + batch);
        if (started[i] == 0) SJ_RETURN_IF_ERROR(start_batch(i));
        if (read_ahead && i + 1 < nbatches && started[i + 1] == 0) {
          SJ_RETURN_IF_ERROR(start_batch(i + 1));
        }
        std::vector<Segment> geom_a, geom_b;
        SJ_ASSIGN_OR_RETURN(
            uint64_t pages_a,
            store_a.FinishBatch(std::move(fetch_a[i]), &geom_a,
                                shard.disk.get(), shard.devices[0]));
        SJ_ASSIGN_OR_RETURN(
            uint64_t pages_b,
            store_b.FinishBatch(std::move(fetch_b[i]), &geom_b,
                                shard.disk.get(), shard.devices[1]));
        shard.pages_read = pages_a + pages_b;
        JoinSink* out = pooled ? static_cast<JoinSink*>(&buffered[i]) : sink;
        // Whole-batch predicate evaluation (join/predicate_batch.h): one
        // flat pass computes the match mask, then emission replays it in
        // candidate order — bit-identical to the old per-pair
        // EvaluateExactPredicate loop in both kernel modes.
        std::vector<uint8_t> match(hi - lo);
        EvaluateExactPredicateBatch(kernel_mode, predicate, geom_a.data(),
                                    geom_b.data(), hi - lo, match.data());
        for (uint64_t k = 0; k < hi - lo; ++k) {
          if (match[k]) {
            out->Emit(candidates[lo + k].a, candidates[lo + k].b);
            shard.results++;
          }
        }
        shard.cpu_seconds = cpu.Elapsed();
        return Status::OK();
      }));

  if (pooled) {
    // Deterministic merge, in batch (= candidate) order.
    for (const CollectingSink& b : buffered) {
      for (const IdPair& pair : b.pairs()) sink->Emit(pair.a, pair.b);
    }
  }
  return MergeShards(shards, pooled, n);
}

Result<RefineStats> RefineTuples(
    const std::vector<std::vector<ObjectId>>& tuples,
    const std::vector<const FeatureStore*>& stores, const JoinOptions& options,
    TupleSink* sink, MemoryArbiter* arbiter) {
  const size_t k = stores.size();
  if (k < 2) {
    return Status::InvalidArgument("tuple refinement needs at least 2 stores");
  }
  for (const FeatureStore* store : stores) {
    if (store == nullptr) {
      return Status::InvalidArgument("tuple refinement: missing store");
    }
  }
  MemoryGrant batch_grant;
  const uint64_t batch = EffectiveBatchPairs(options, arbiter, &batch_grant);
  const uint64_t n = tuples.size();
  const uint64_t nbatches = (n + batch - 1) / batch;
  if (nbatches == 0) return RefineStats{};

  const SweepKernelMode kernel_mode = ActiveSweepKernelMode();
  const MachineModel& machine = stores[0]->pager()->disk()->machine();
  std::vector<BatchShard> shards = MakeShards(nbatches, machine, k);
  std::vector<CollectingTupleSink> buffered(nbatches);
  const bool pooled = options.num_threads > 1 && nbatches > 1;

  SJ_RETURN_IF_ERROR(ParallelFor(
      options.worker_pool, options.num_threads, nbatches, [&](uint64_t i) -> Status {
        BatchShard& shard = shards[i];
        ThreadCpuTimer cpu;
        const uint64_t lo = i * batch;
        const uint64_t hi = std::min(n, lo + batch);
        // Validate the whole batch before any fetch is modeled.
        for (uint64_t t = lo; t < hi; ++t) {
          if (tuples[t].size() != k) {
            return Status::InvalidArgument(
                "tuple arity does not match store count");
          }
        }
        // Column-at-a-time gather: one batched fetch per input store.
        std::vector<std::vector<Segment>> geom(k);
        std::vector<ObjectId> ids;
        for (size_t input = 0; input < k; ++input) {
          ids.clear();
          ids.reserve(hi - lo);
          for (uint64_t t = lo; t < hi; ++t) {
            ids.push_back(tuples[t][input]);
          }
          SJ_ASSIGN_OR_RETURN(
              uint64_t pages,
              stores[input]->FetchBatch(
                  Span<const ObjectId>(ids.data(), ids.size()), &geom[input],
                  shard.disk.get(), shard.devices[input]));
          shard.pages_read += pages;
        }
        TupleSink* out = pooled ? static_cast<TupleSink*>(&buffered[i]) : sink;
        // Batched pairwise intersection: the columns are already
        // contiguous Segment arrays, so each (x, y) input pair runs one
        // BatchRectOverlap-style flat pass whose mask is ANDed into the
        // per-row alive mask. The predicates are pure, so dropping the
        // scalar loop's short-circuit cannot change which tuples survive.
        const uint64_t rows = hi - lo;
        std::vector<uint8_t> alive(rows, 1), pair_mask(rows);
        for (size_t x = 0; x < k; ++x) {
          for (size_t y = x + 1; y < k; ++y) {
            BatchSegmentsIntersect(kernel_mode, geom[x].data(), geom[y].data(),
                                   rows, pair_mask.data());
            for (uint64_t row = 0; row < rows; ++row) {
              alive[row] &= pair_mask[row];
            }
          }
        }
        for (uint64_t t = lo; t < hi; ++t) {
          if (alive[t - lo]) {
            out->Emit(tuples[t]);
            shard.results++;
          }
        }
        shard.cpu_seconds = cpu.Elapsed();
        return Status::OK();
      }));

  if (pooled) {
    for (const CollectingTupleSink& b : buffered) {
      for (const std::vector<ObjectId>& tuple : b.tuples()) sink->Emit(tuple);
    }
  }
  return MergeShards(shards, pooled, n);
}

}  // namespace sj
