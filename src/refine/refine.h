#ifndef USJ_REFINE_REFINE_H_
#define USJ_REFINE_REFINE_H_

#include <vector>

#include "core/memory_arbiter.h"
#include "io/disk_model.h"
#include "join/join_types.h"
#include "join/multiway.h"
#include "join/predicate.h"
#include "refine/feature_store.h"
#include "util/result.h"

namespace sj {

/// Approximate working bytes one candidate occupies in a refinement
/// batch: the gathered ids and fetched geometry of both sides. The
/// memory planner sizes the "refine.batch" grant with this, and
/// RefinePairs/RefineTuples shrink the batch (down to
/// kMinRefineBatchPairs) when the grant cannot cover
/// options.refine_batch_pairs candidates.
inline constexpr size_t kRefineBytesPerCandidate =
    2 * (sizeof(Segment) + sizeof(ObjectId)) + sizeof(IdPair);

/// Smallest refinement batch graceful degradation shrinks to.
inline constexpr uint32_t kMinRefineBatchPairs = 64;

/// Everything measured about one refinement run. Disk counters come from
/// the per-batch DiskModel shards (a shard starts from fresh disk state,
/// so modeled I/O depends only on the batch's own page requests, never on
/// thread scheduling); host_cpu_seconds covers pool workers only —
/// inline (serial) execution is already on the caller's measured thread,
/// matching the parallel join engine's convention.
struct RefineStats {
  /// Candidate pairs/tuples consumed (the filter step's output).
  uint64_t candidates = 0;
  /// Candidates whose exact geometries really intersect.
  uint64_t results = 0;
  /// Feature-store pages fetched across all batches.
  uint64_t pages_read = 0;
  DiskStats disk;
  double host_cpu_seconds = 0.0;
};

/// The batched refinement executor for two-way joins: consumes candidate
/// MBR pairs (ids into `store_a` / `store_b`), fetches both geometries a
/// batch at a time, applies the exact form of `predicate` (segment
/// intersection by default; ε-distance and containment for the query
/// API's other predicates — see join/predicate.h), and emits surviving
/// pairs to `sink`.
///
/// Batches of options.refine_batch_pairs candidates are independent work
/// units on the options.num_threads pool; each runs against a private
/// DiskModel shard and a private sink, merged in batch order afterwards,
/// so output order and modeled I/O are identical for every thread count.
Result<RefineStats> RefinePairs(const std::vector<IdPair>& candidates,
                                const FeatureStore& store_a,
                                const FeatureStore& store_b,
                                const JoinOptions& options, JoinSink* sink,
                                const PredicateSpec& predicate =
                                    PredicateSpec{},
                                MemoryArbiter* arbiter = nullptr);

/// Refinement for k-way joins: a candidate tuple survives when every pair
/// of member segments intersects (the natural exact analog of the k-way
/// MBR filter; a common point of k arbitrary segments is measure-zero).
/// stores[i] resolves tuple[i]. Same batched parallel structure and
/// determinism guarantees as RefinePairs.
Result<RefineStats> RefineTuples(
    const std::vector<std::vector<ObjectId>>& tuples,
    const std::vector<const FeatureStore*>& stores, const JoinOptions& options,
    TupleSink* sink, MemoryArbiter* arbiter = nullptr);

}  // namespace sj

#endif  // USJ_REFINE_REFINE_H_
