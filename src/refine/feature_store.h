#ifndef USJ_REFINE_FEATURE_STORE_H_
#define USJ_REFINE_FEATURE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "geometry/segment.h"
#include "io/disk_model.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/stream.h"
#include "util/result.h"
#include "util/span.h"

namespace sj {

/// On-disk layout of a feature store: page `header_page` holds this
/// header, geometry records follow from the next page in
/// StreamWriter<Segment> layout (16-byte records, 512 per 8 KB page,
/// never straddling pages).
struct FeatureStoreHeader {
  static constexpr uint32_t kMagic = 0x534a4653;  // "SJFS"
  static constexpr uint32_t kVersion = 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t count = 0;
  ObjectId base_id = 0;
  char name[64] = {};
};

/// A paged store of exact geometry payloads keyed by record id — the
/// refinement-step companion of a DatasetRef: the MBR stream feeds the
/// filter join, this store resolves the candidate pairs it produces.
///
/// Records are stored densely by id (ids base_id .. base_id+count-1,
/// which is what the generators emit), so the page of a record is pure
/// arithmetic and a fetch costs exactly one page read. All I/O goes
/// through the Pager/DiskModel layer, so refinement is cost-accounted
/// like every other part of a join.
class FeatureStore {
 public:
  /// Records are laid out by StreamWriter<Segment>; tying the reader's
  /// page arithmetic to the writer's constant keeps them in lockstep.
  static constexpr uint32_t kRecordsPerPage =
      StreamWriter<Segment>::kRecordsPerPage;

  /// Writes `geom` (geom[i] is the record with id base_id + i) at the
  /// current end of `pager` and returns a store reading it back.
  static Result<FeatureStore> Build(Pager* pager, Span<const Segment> geom,
                                    const std::string& name,
                                    ObjectId base_id = 0);

  /// Opens a store previously written at page `header_page` of `pager`
  /// (0 for a dedicated file).
  static Result<FeatureStore> Open(Pager* pager, PageId header_page = 0);

  /// Records in the store.
  uint64_t count() const { return count_; }
  /// Smallest stored id; ids cover [base_id, base_id + count).
  ObjectId base_id() const { return base_id_; }
  /// Geometry pages (excluding the header page).
  uint64_t data_pages() const {
    return (count_ + kRecordsPerPage - 1) / kRecordsPerPage;
  }
  Pager* pager() const { return pager_; }

  /// One record, charged to the store's pager as a single-page read.
  Result<Segment> Fetch(ObjectId id) const;

  /// Gathers the geometry of every id in `ids` (appended to `out` in
  /// input order; duplicates allowed) reading each distinct page once,
  /// in ascending page order with consecutive pages coalesced into one
  /// request — so a batch of y-sorted candidates reads its pages at
  /// partially-streaming cost. Returns the number of data pages read.
  ///
  /// When `charge` is null the store's own pager (and DiskModel) is
  /// charged. Otherwise page bytes are read directly from the backing
  /// storage and the modeled I/O is charged to `charge` under device
  /// `charge_dev`: this is how the parallel refinement executor accounts
  /// a shared store against per-worker DiskModel shards, keeping modeled
  /// stats independent of thread scheduling.
  Result<uint64_t> FetchBatch(Span<const ObjectId> ids,
                              std::vector<Segment>* out,
                              DiskModel* charge = nullptr,
                              uint32_t charge_dev = 0) const;

  /// A batch fetch in flight: created by StartBatch(), consumed by
  /// FinishBatch(). Movable; must be finished (or destroyed with no
  /// prefetch pending) before the store's pager goes away.
  class PendingBatch {
   public:
    PendingBatch() = default;
    PendingBatch(PendingBatch&&) = default;
    PendingBatch& operator=(PendingBatch&&) = default;

   private:
    friend class FeatureStore;
    std::vector<ObjectId> ids_;
    std::vector<PageId> pages_;        // Distinct data pages, ascending.
    std::vector<PageRun> runs_;        // `pages_` coalesced into requests.
    std::unique_ptr<BlockPrefetcher> prefetcher_;
  };

  /// Plans the page reads for `ids` (distinct pages, ascending, runs of
  /// consecutive pages coalesced) and — when `prefetch.enabled` — starts
  /// moving the bytes on a background task. This is the refinement
  /// read-ahead hook: RefinePairs starts batch N+1 before refining batch
  /// N, so the next batch's pages arrive while the current one computes.
  /// FinishBatch() applies the modeled charges in plan order on the
  /// calling thread, so results and modeled I/O are identical with
  /// prefetch on or off.
  Result<PendingBatch> StartBatch(
      Span<const ObjectId> ids,
      const PrefetchContext& prefetch = PrefetchContext()) const;

  /// Completes a StartBatch(): appends the geometry of every id (input
  /// order, duplicates allowed) to `out` and charges the modeled reads —
  /// to the store's own pager when `charge` is null, else to
  /// `charge`/`charge_dev` (see FetchBatch). Returns data pages read.
  Result<uint64_t> FinishBatch(PendingBatch batch, std::vector<Segment>* out,
                               DiskModel* charge = nullptr,
                               uint32_t charge_dev = 0) const;

 private:
  FeatureStore(Pager* pager, PageId header_page, uint64_t count,
               ObjectId base_id)
      : pager_(pager),
        first_data_page_(header_page + 1),
        count_(count),
        base_id_(base_id) {}

  /// The data page holding `id`, or an error for ids outside the store.
  Result<PageId> DataPageOf(ObjectId id) const;

  Pager* pager_;
  PageId first_data_page_;
  uint64_t count_;
  ObjectId base_id_;
};

}  // namespace sj

#endif  // USJ_REFINE_FEATURE_STORE_H_
