#ifndef USJ_UTIL_SPAN_H_
#define USJ_UTIL_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace sj {

/// Minimal C++17 stand-in for std::span<const T>: a non-owning view of a
/// contiguous sequence. Only the operations the library needs.
template <typename T>
class Span {
  static_assert(std::is_const_v<T>,
                "sj::Span is read-only; instantiate with a const element type");
  using Elem = std::remove_const_t<T>;

 public:
  constexpr Span() = default;
  constexpr Span(const Elem* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<Elem>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  /// Views the initializer list's backing array, which only outlives the
  /// full-expression — use for call arguments, never to store a Span.
  constexpr Span(std::initializer_list<Elem> il)  // NOLINT(runtime/explicit)
      : data_(il.begin()), size_(il.size()) {}

  constexpr const Elem* begin() const { return data_; }
  constexpr const Elem* end() const { return data_ + size_; }
  constexpr const Elem* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const Elem& operator[](size_t i) const { return data_[i]; }

 private:
  const Elem* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sj

#endif  // USJ_UTIL_SPAN_H_
