#ifndef USJ_UTIL_THREAD_POOL_H_
#define USJ_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace sj {

/// A fixed-size pool of worker threads draining one shared FIFO queue.
/// There is deliberately no work stealing: the join engine submits coarse
/// units (partition pairs, strips), so a single queue sees no contention.
///
/// `num_threads == 0` degenerates to inline execution on the submitting
/// thread, so callers can thread a `num_threads` knob straight through
/// without special-casing serial runs.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`. The future becomes ready when the task finishes and
  /// rethrows any exception the task body raised.
  std::future<void> Submit(std::function<void()> fn);

  /// Number of worker threads (0 = inline mode).
  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n) on up to `num_threads` workers
/// (<= 1 means inline on the caller). Indices are claimed dynamically, but
/// the reported error is the non-OK status with the *lowest index*, so the
/// Status a caller sees never depends on thread scheduling. Once any task
/// fails, unclaimed indices are abandoned. Task exceptions propagate to
/// the caller.
Status ParallelFor(uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn);

}  // namespace sj

#endif  // USJ_UTIL_THREAD_POOL_H_
