#ifndef USJ_UTIL_THREAD_POOL_H_
#define USJ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace sj {

/// A fixed-size pool of worker threads shared morsel-style by any number
/// of concurrent clients. Work is submitted through *task groups*: each
/// group (one query's partition pairs, one refinement's batches) keeps
/// its own FIFO, and the workers drain the groups round-robin — one task
/// per group per turn — so a query with a thousand strips cannot starve a
/// query with two.
///
/// Waiting is *helping*: Group::Wait() runs the group's still-queued
/// tasks on the calling thread and only blocks for tasks already running
/// elsewhere. Because every waiter makes progress through its own queue,
/// nested parallelism (a query task on a worker fanning out its strips
/// onto the same pool) can never deadlock, no matter how many queries
/// are in flight.
///
/// `num_threads == 0` degenerates to inline execution on the submitting
/// thread, so callers can thread a `num_threads` knob straight through
/// without special-casing serial runs.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// One client's slice of the pool: submit any number of tasks, then
  /// Wait() for all of them. Waiting helps (see class comment). The
  /// destructor waits. A Group is owned by one thread; the pool may be
  /// shared by any number of groups on any threads.
  class Group {
   public:
    explicit Group(ThreadPool& pool);
    ~Group();

    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /// Enqueues `fn` (runs it inline when the pool has no workers).
    void Submit(std::function<void()> fn);

    /// Blocks until every submitted task has finished, executing queued
    /// tasks of this group on the calling thread while it waits. Rethrows
    /// the first exception any task of the group raised.
    void Wait();

   private:
    friend class ThreadPool;
    struct State;
    ThreadPool& pool_;
    std::shared_ptr<State> state_;
  };

  /// Enqueues `fn` on an internal single-use group. The future becomes
  /// ready when the task finishes and rethrows any exception the task
  /// body raised.
  std::future<void> Submit(std::function<void()> fn);

  /// Number of worker threads (0 = inline mode).
  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop();
  /// Pops the next task in round-robin group order. Returns false when no
  /// group has queued work. Caller must hold mu_.
  bool PopNextLocked(std::function<void()>* fn,
                     std::shared_ptr<Group::State>* group);
  /// Runs `fn` outside the lock, capturing exceptions and completing the
  /// group's bookkeeping.
  void RunTask(std::function<void()> fn, const std::shared_ptr<Group::State>& group);

  std::mutex mu_;
  std::condition_variable cv_;
  /// Round-robin ring of groups with queued tasks (each appears once).
  std::deque<std::shared_ptr<Group::State>> ready_groups_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n) on up to `num_threads` workers
/// (<= 1 means inline on the caller). Indices are claimed dynamically, but
/// the reported error is the non-OK status with the *lowest index*, so the
/// Status a caller sees never depends on thread scheduling. Once any task
/// fails, unclaimed indices are abandoned. Task exceptions propagate to
/// the caller.
///
/// With `shared == nullptr` the call spins up a private pool of
/// `num_threads` workers (the pre-service behaviour). With a shared pool,
/// the caller becomes one runner and up to `num_threads - 1` helper
/// runners are submitted as one task group — concurrent ParallelFors
/// interleave fairly on the shared workers instead of spawning one team
/// each, and the helping Wait() keeps nested calls deadlock-free.
Status ParallelFor(ThreadPool* shared, uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn);

/// Private-pool form (equivalent to shared == nullptr).
Status ParallelFor(uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn);

}  // namespace sj

#endif  // USJ_UTIL_THREAD_POOL_H_
