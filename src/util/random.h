#ifndef USJ_UTIL_RANDOM_H_
#define USJ_UTIL_RANDOM_H_

#include <cstdint>

namespace sj {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// All data generators and randomized tests use this generator so that every
/// experiment in the repository is exactly reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi) {
    // 53 random mantissa bits -> [0,1).
    double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
  }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant here).
  double Normal() {
    double u1 = UniformDouble(1e-12, 1.0);
    double u2 = UniformDouble(0.0, 1.0);
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial with probability p.
  bool OneIn(double p) { return UniformDouble(0.0, 1.0) < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sj

#endif  // USJ_UTIL_RANDOM_H_
