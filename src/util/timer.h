#ifndef USJ_UTIL_TIMER_H_
#define USJ_UTIL_TIMER_H_

#include <ctime>

namespace sj {

/// Measures CPU time consumed by the calling thread, in seconds.
///
/// The experiment harness separates "CPU time" (measured here on the host
/// and scaled by a MachineModel's CPU slowdown) from "I/O time" (charged by
/// the simulated DiskModel), mirroring the paper's getrusage-based
/// accounting.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  /// Seconds of thread CPU time since construction or last Restart().
  double Elapsed() const { return Now() - start_; }

  /// Current thread CPU clock reading in seconds.
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

/// Wall-clock timer (monotonic), used only for reporting harness overhead.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Now(); }
  double Elapsed() const { return Now() - start_; }

  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

}  // namespace sj

#endif  // USJ_UTIL_TIMER_H_
