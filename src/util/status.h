#ifndef USJ_UTIL_STATUS_H_
#define USJ_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sj {

/// Error categories used throughout the library. Algorithms return Status
/// (or Result<T>) instead of throwing; this keeps the hot join paths free
/// of exception machinery and matches common database-engine practice.
///
/// Every public entry point (JoinQuery::Run/Explain, SpatialService::Submit,
/// the legacy SpatialJoiner wrappers) reports errors through this one
/// taxonomy — there are no bool returns or aborts outside strict mode:
///
///   kInvalidArgument    — a malformed query description (wrong input
///                         count, negative epsilon, bad index).
///   kFailedPrecondition — API misuse against valid arguments: refinement
///                         without FeatureStores, budgets below
///                         kMinMemoryBytes, a predicate that needs a mode
///                         the query did not enable.
///   kResourceExhausted  — an admission or grant denial: the scheduler's
///                         global budget (or queue) cannot take the query,
///                         or a MemoryArbiter cannot cover a grant.
///   kDeadlineExceeded   — a queued query's admission deadline expired
///                         before memory freed up.
///   kCancelled          — the client cancelled a queued query.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Lightweight status object: a code plus a human-readable message.
///
/// The OK status carries no allocation. Use the factory functions
/// (Status::IoError(...) etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "IoError: short read on page 17".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Returns the enumerator name, e.g. "kIoError" -> "IoError".
const char* StatusCodeToString(StatusCode code);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SJ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::sj::Status sj_status_tmp_ = (expr);         \
    if (!sj_status_tmp_.ok()) return sj_status_tmp_; \
  } while (0)

}  // namespace sj

#endif  // USJ_UTIL_STATUS_H_
