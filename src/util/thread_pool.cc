#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace sj {

/// Shared between a Group handle, the pool's ready ring, and any workers
/// currently running the group's tasks, so the bookkeeping survives
/// whichever of them finishes last.
struct ThreadPool::Group::State {
  std::deque<std::function<void()>> pending;
  size_t running = 0;
  bool in_ring = false;  // Linked in ready_groups_.
  std::exception_ptr first_exception;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(uint32_t num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::PopNextLocked(std::function<void()>* fn,
                               std::shared_ptr<Group::State>* group) {
  if (ready_groups_.empty()) return false;
  // One task per group per turn: take the front group's next task, then
  // rotate it to the back (or drop it from the ring when drained).
  std::shared_ptr<Group::State> g = std::move(ready_groups_.front());
  ready_groups_.pop_front();
  *fn = std::move(g->pending.front());
  g->pending.pop_front();
  g->running++;
  if (g->pending.empty()) {
    g->in_ring = false;
  } else {
    ready_groups_.push_back(g);
  }
  *group = std::move(g);
  return true;
}

void ThreadPool::RunTask(std::function<void()> fn,
                         const std::shared_ptr<Group::State>& group) {
  std::exception_ptr exception;
  try {
    fn();
  } catch (...) {
    exception = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  group->running--;
  if (exception && !group->first_exception) {
    group->first_exception = exception;
  }
  if (group->running == 0 && group->pending.empty()) {
    group->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    std::shared_ptr<Group::State> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !ready_groups_.empty(); });
      // Drain all queued work even during shutdown so every submitted
      // task runs and every Wait()/future becomes ready.
      if (!PopNextLocked(&fn, &group)) return;
    }
    RunTask(std::move(fn), group);
  }
}

ThreadPool::Group::Group(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

ThreadPool::Group::~Group() { Wait(); }

void ThreadPool::Group::Submit(std::function<void()> fn) {
  if (pool_.workers_.empty()) {
    // Inline mode: run now; exceptions surface at Wait() like everywhere
    // else so Submit's control flow does not depend on the pool size.
    std::exception_ptr exception;
    try {
      fn();
    } catch (...) {
      exception = std::current_exception();
    }
    if (exception) {
      std::lock_guard<std::mutex> lock(pool_.mu_);
      if (!state_->first_exception) state_->first_exception = exception;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_.mu_);
    state_->pending.push_back(std::move(fn));
    if (!state_->in_ring) {
      state_->in_ring = true;
      pool_.ready_groups_.push_back(state_);
    }
  }
  pool_.cv_.notify_one();
}

void ThreadPool::Group::Wait() {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  for (;;) {
    if (!state_->pending.empty()) {
      // Help: run this group's own queued work on the waiting thread. A
      // task running here frees a worker slot for other groups and keeps
      // nested ParallelFors deadlock-free.
      std::function<void()> fn = std::move(state_->pending.front());
      state_->pending.pop_front();
      state_->running++;
      if (state_->pending.empty() && state_->in_ring) {
        state_->in_ring = false;
        for (auto it = pool_.ready_groups_.begin();
             it != pool_.ready_groups_.end(); ++it) {
          if (it->get() == state_.get()) {
            pool_.ready_groups_.erase(it);
            break;
          }
        }
      }
      lock.unlock();
      pool_.RunTask(std::move(fn), state_);
      lock.lock();
      continue;
    }
    if (state_->running == 0) break;
    state_->done_cv.wait(lock);
  }
  std::exception_ptr exception = state_->first_exception;
  state_->first_exception = nullptr;
  lock.unlock();
  if (exception) std::rethrow_exception(exception);
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  if (workers_.empty()) {
    (*task)();  // Inline mode.
    return future;
  }
  auto state = std::make_shared<Group::State>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->pending.push_back([task] { (*task)(); });
    state->in_ring = true;
    ready_groups_.push_back(std::move(state));
  }
  cv_.notify_one();
  return future;
}

Status ParallelFor(ThreadPool* shared, uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn) {
  if (n == 0) return Status::OK();
  if (num_threads <= 1 || n == 1 ||
      (shared != nullptr && shared->size() == 0)) {
    for (uint64_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  const uint32_t runners =
      static_cast<uint32_t>(std::min<uint64_t>(num_threads, n));
  std::vector<Status> statuses(n);
  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  auto runner = [&] {
    for (;;) {
      const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      statuses[i] = fn(i);
      if (!statuses[i].ok()) failed.store(true, std::memory_order_relaxed);
    }
  };

  if (shared != nullptr) {
    // Morsel mode: the caller is one runner; the helpers land on the
    // shared pool as one group, so concurrent queries interleave fairly
    // instead of spawning a private team each. The caller's own runner
    // loop claims every index even if no helper ever gets a worker slot,
    // so progress never depends on the pool's load.
    ThreadPool::Group group(*shared);
    for (uint32_t w = 0; w + 1 < runners; ++w) group.Submit(runner);
    std::exception_ptr caller_exception;
    try {
      runner();
    } catch (...) {
      caller_exception = std::current_exception();
    }
    group.Wait();  // Helps, then blocks; rethrows helper exceptions.
    if (caller_exception) std::rethrow_exception(caller_exception);
  } else {
    ThreadPool pool(runners);
    std::vector<std::future<void>> futures;
    futures.reserve(runners);
    for (uint32_t w = 0; w < runners; ++w) futures.push_back(pool.Submit(runner));
    std::exception_ptr first_exception;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_exception) first_exception = std::current_exception();
      }
    }
    if (first_exception) std::rethrow_exception(first_exception);
  }

  for (uint64_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return Status::OK();
}

Status ParallelFor(uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn) {
  return ParallelFor(nullptr, num_threads, n, fn);
}

}  // namespace sj
