#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace sj {

ThreadPool::ThreadPool(uint32_t num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // Inline mode.
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue fully even during shutdown so every submitted
      // future becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future.
  }
}

Status ParallelFor(uint32_t num_threads, uint64_t n,
                   const std::function<Status(uint64_t)>& fn) {
  if (n == 0) return Status::OK();
  if (num_threads <= 1 || n == 1) {
    for (uint64_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  const uint32_t workers = static_cast<uint32_t>(
      std::min<uint64_t>(num_threads, n));
  std::vector<Status> statuses(n);
  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};

  {
    ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      futures.push_back(pool.Submit([&] {
        for (;;) {
          const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n || failed.load(std::memory_order_relaxed)) return;
          statuses[i] = fn(i);
          if (!statuses[i].ok()) failed.store(true, std::memory_order_relaxed);
        }
      }));
    }
    std::exception_ptr first_exception;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_exception) first_exception = std::current_exception();
      }
    }
    if (first_exception) std::rethrow_exception(first_exception);
  }

  for (uint64_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return Status::OK();
}

}  // namespace sj
