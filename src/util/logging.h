#ifndef USJ_UTIL_LOGGING_H_
#define USJ_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sj {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used as the right-hand side of the SJ_CHECK macros.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lower precedence than <<, so the streaming happens first.
  void operator&&(const CheckFailureStream&) {}
};

}  // namespace internal_logging
}  // namespace sj

/// Aborts with a message when `cond` is false. Enabled in all build modes:
/// invariant violations in a storage engine must never be silently ignored.
#define SJ_CHECK(cond)                                          \
  (cond) ? (void)0                                              \
         : ::sj::internal_logging::Voidify{} &&                 \
               ::sj::internal_logging::CheckFailureStream(      \
                   "SJ_CHECK", __FILE__, __LINE__, #cond)

#define SJ_CHECK_OK(status_expr)                                         \
  do {                                                                   \
    const ::sj::Status sj_check_ok_s_ = (status_expr);                   \
    SJ_CHECK(sj_check_ok_s_.ok()) << sj_check_ok_s_.ToString();          \
  } while (0)

/// Debug-only check; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define SJ_DCHECK(cond) SJ_CHECK(true)
#else
#define SJ_DCHECK(cond) SJ_CHECK(cond)
#endif

#endif  // USJ_UTIL_LOGGING_H_
