#ifndef USJ_UTIL_RESULT_H_
#define USJ_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace sj {

/// A value-or-error union, i.e. a minimal StatusOr.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of a non-OK Result aborts (programming error), so callers must
/// check ok() (or use SJ_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::IoError(...)` works.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SJ_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ is engaged.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define SJ_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SJ_ASSIGN_OR_RETURN_IMPL_(                         \
      SJ_MACRO_CONCAT_(sj_result_tmp_, __LINE__), lhs, rexpr)

#define SJ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SJ_MACRO_CONCAT_INNER_(a, b) a##b
#define SJ_MACRO_CONCAT_(a, b) SJ_MACRO_CONCAT_INNER_(a, b)

}  // namespace sj

#endif  // USJ_UTIL_RESULT_H_
