#include "op/rect_resolver.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "io/stream.h"
#include "sort/external_sort.h"
#include "util/logging.h"

namespace sj {

namespace {

/// Materializes an R-tree's data rectangles as a stream on `pager` so the
/// external sorter can run over them (same transient-materialization
/// precedent as the executor layer's leaf extraction).
Result<StreamRange> TreeToStream(const RTree& tree, Pager* pager) {
  std::vector<RectF> all;
  SJ_RETURN_IF_ERROR(tree.CollectAll(&all));
  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  for (const RectF& r : all) writer.Append(r);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  return StreamRange{pager, first, n};
}

}  // namespace

Result<std::unique_ptr<RectResolver>> RectResolver::Build(
    const JoinInput& input, DiskModel* disk, MemoryArbiter* arbiter,
    StorageFactory* storage, const PrefetchContext& prefetch,
    const std::string& name, const SortConfig& sort_config) {
  SJ_CHECK(disk != nullptr && arbiter != nullptr);
  auto resolver = std::unique_ptr<RectResolver>(new RectResolver());
  resolver->count_ = input.count();
  const uint64_t table_bytes = resolver->count_ * sizeof(RectF);

  // One grant governs the resolver whichever path it takes: the full
  // sorted table in memory, or (shrunk) the page index plus one page
  // buffer of the external path.
  resolver->grant_ = arbiter->AcquireShrinkable(
      grants::kOpRectMap, static_cast<size_t>(table_bytes), 2 * kPageSize);

  if (resolver->grant_.bytes() >= table_bytes) {
    // In-memory: load, sort by id, binary-search lookups.
    resolver->sorted_.reserve(static_cast<size_t>(resolver->count_));
    if (input.indexed()) {
      SJ_RETURN_IF_ERROR(input.rtree()->CollectAll(&resolver->sorted_));
    } else {
      const DatasetRef& ref = input.stream();
      StreamReader<RectF> reader(ref.range.pager, ref.range.first_page,
                                 ref.range.count);
      while (std::optional<RectF> r = reader.Next()) {
        resolver->sorted_.push_back(*r);
      }
    }
    std::sort(resolver->sorted_.begin(), resolver->sorted_.end(), OrderById());
    resolver->grant_.NoteUsage(resolver->sorted_.size() * sizeof(RectF));
    return resolver;
  }

  // External: id-sort the relation into a scratch pager and keep only the
  // per-page first ids in memory.
  resolver->external_ = true;
  SJ_ASSIGN_OR_RETURN(resolver->scratch_,
                      MakePager(storage, disk, name + ".rectmap"));
  StreamRange raw;
  if (input.indexed()) {
    SJ_ASSIGN_OR_RETURN(raw,
                        TreeToStream(*input.rtree(), resolver->scratch_.get()));
  } else {
    raw = input.stream().range;
  }
  ExternalSorter<RectF, OrderById> sorter(resolver->grant_.bytes(),
                                          resolver->scratch_.get(), OrderById(),
                                          arbiter, prefetch, sort_config);
  SJ_ASSIGN_OR_RETURN(StreamRange sorted,
                      sorter.Sort(raw, resolver->scratch_.get()));
  resolver->first_page_ = sorted.first_page;
  resolver->count_ = sorted.count;

  // Index pass: the first id of every sorted page (one sequential scan;
  // 4 bytes of index per 8 KB page).
  constexpr uint32_t kPerPage = StreamWriter<RectF>::kRecordsPerPage;
  const uint64_t npages = (sorted.count + kPerPage - 1) / kPerPage;
  resolver->page_first_ids_.reserve(static_cast<size_t>(npages));
  StreamReader<RectF> reader(sorted.pager, sorted.first_page, sorted.count);
  uint64_t i = 0;
  while (std::optional<RectF> r = reader.Next()) {
    if (i % kPerPage == 0) resolver->page_first_ids_.push_back(r->id);
    i++;
  }
  resolver->page_buf_.resize(kPageSize);
  resolver->grant_.NoteUsage(resolver->page_first_ids_.size() *
                                 sizeof(ObjectId) +
                             kPageSize);
  return resolver;
}

Status RectResolver::Lookup(const std::vector<ObjectId>& ids,
                            std::vector<RectF>* out) {
  out->resize(ids.size());
  if (external_) return LookupExternal(ids, out);
  for (size_t i = 0; i < ids.size(); ++i) {
    const RectF probe(0, 0, 0, 0, ids[i]);
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), probe,
                               OrderById());
    if (it == sorted_.end() || it->id != ids[i]) {
      return Status::Internal("RectResolver: id " + std::to_string(ids[i]) +
                              " not in input");
    }
    (*out)[i] = *it;
  }
  return Status::OK();
}

Status RectResolver::LookupExternal(const std::vector<ObjectId>& ids,
                                    std::vector<RectF>* out) {
  constexpr uint32_t kPerPage = StreamWriter<RectF>::kRecordsPerPage;
  // Process the batch in ascending id order so page fetches are monotone
  // and consecutive ids share one read.
  std::vector<std::pair<ObjectId, size_t>> order(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) order[i] = {ids[i], i};
  std::sort(order.begin(), order.end());

  for (const auto& [id, pos] : order) {
    // The page holding `id` is the last one whose first id is <= id.
    auto it = std::upper_bound(page_first_ids_.begin(), page_first_ids_.end(),
                               id);
    if (it == page_first_ids_.begin()) {
      return Status::Internal("RectResolver: id " + std::to_string(id) +
                              " not in input");
    }
    const uint64_t page =
        static_cast<uint64_t>(it - page_first_ids_.begin()) - 1;
    if (page != cached_page_) {
      SJ_RETURN_IF_ERROR(scratch_->ReadPage(
          static_cast<PageId>(first_page_ + page), page_buf_.data()));
      cached_page_ = page;
      lookup_pages_read_++;
    }
    const uint64_t first_rec = page * kPerPage;
    const uint32_t in_page = static_cast<uint32_t>(
        std::min<uint64_t>(kPerPage, count_ - first_rec));
    auto record_at = [this](uint32_t slot) {
      RectF r;
      std::memcpy(&r, page_buf_.data() + slot * sizeof(RectF), sizeof(RectF));
      return r;
    };
    // Binary search within the page (records are id-sorted).
    uint32_t lo = 0, hi = in_page;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (record_at(mid).id < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == in_page) {
      return Status::Internal("RectResolver: id " + std::to_string(id) +
                              " not in input");
    }
    const RectF hit = record_at(lo);
    if (hit.id != id) {
      return Status::Internal("RectResolver: id " + std::to_string(id) +
                              " not in input");
    }
    (*out)[pos] = hit;
  }
  return Status::OK();
}

}  // namespace sj
