#ifndef USJ_OP_OPERATORS_H_
#define USJ_OP_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_arbiter.h"
#include "histogram/grid_histogram.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/stream.h"
#include "join/executor.h"
#include "join/multiway.h"
#include "op/rect_resolver.h"
#include "op/row.h"
#include "util/result.h"

namespace sj {

/// Resources an operator pipeline executes against: the query's disk
/// model, its MemoryArbiter (every operator grant draws from here, so one
/// budget bounds the whole tree), the scratch storage choice, and the
/// prefetch context. All borrowed; the pipeline driver owns the lifetime.
struct PipelineContext {
  DiskModel* disk = nullptr;
  MemoryArbiter* arbiter = nullptr;
  StorageFactory* storage = nullptr;
  PrefetchContext prefetch;
};

/// Per-operator counters, collected into PipelineStats::operators.
struct OperatorStats {
  std::string name;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Pages this operator itself fetched (resolver lookups, index window
  /// descents) — the whole pipeline's I/O lands in PipelineStats::disk.
  uint64_t pages_read = 0;
  /// Scratch pages the operator spilled under memory pressure.
  uint64_t spill_pages = 0;
};

/// A unary push operator: consumes rows via Emit, forwards its output to
/// the downstream sink. Lifecycle is Open -> Emit... -> Finish, mirroring
/// the StreamWriter contract: errors hit mid-stream are sticky and
/// surfaced by Finish(), so producers need no per-row status checks.
/// Operators that buffer (aggregate, top-k) emit their output during
/// Finish(), which is why the driver finishes the chain in upstream-to-
/// downstream order.
class PipelineOperator : public RowSink {
 public:
  explicit PipelineOperator(std::string name) { stats_.name = std::move(name); }
  ~PipelineOperator() override = default;

  void set_downstream(RowSink* down) { down_ = down; }

  /// Acquires grants and scratch files. Called once before any Emit.
  virtual Status Open(PipelineContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Flushes buffered rows downstream and reports the first sticky error.
  virtual Status Finish() { return status_; }

  const OperatorStats& stats() const { return stats_; }

 protected:
  void Forward(PipeRow row) {
    stats_.rows_out++;
    down_->Emit(std::move(row));
  }

  RowSink* down_ = nullptr;
  OperatorStats stats_;
  Status status_;
};

/// Filter: keeps rows satisfying an arbitrary predicate. `label` names
/// the predicate in stats and Explain output.
class FilterOp final : public PipelineOperator {
 public:
  using RowPredicate = std::function<bool(const PipeRow&)>;
  FilterOp(RowPredicate predicate, std::string label = "pred")
      : PipelineOperator("Filter(" + label + ")"),
        predicate_(std::move(predicate)) {}

  void Emit(PipeRow row) override {
    stats_.rows_in++;
    if (predicate_(row)) Forward(std::move(row));
  }

 private:
  RowPredicate predicate_;
};

/// Project: rewrites each row (typically its value — weights for a kSum
/// aggregation — or its id arity).
class ProjectOp final : public PipelineOperator {
 public:
  using RowTransform = std::function<PipeRow(PipeRow)>;
  ProjectOp(RowTransform transform, std::string label = "fn")
      : PipelineOperator("Project(" + label + ")"),
        transform_(std::move(transform)) {}

  void Emit(PipeRow row) override {
    stats_.rows_in++;
    Forward(transform_(std::move(row)));
  }

 private:
  RowTransform transform_;
};

/// What AggregateByCellOp accumulates per cell.
enum class AggregateMode {
  kCount,  ///< Cells a row's rect overlaps each gain 1.
  kSum,    ///< Cells a row's rect overlaps each gain the row's value.
};

const char* ToString(AggregateMode mode);

/// AggregateByCell: folds rows into an nx x ny grid over `extent` — the
/// density-heatmap operator. A row contributes to every cell its rect
/// overlaps (rows not intersecting the extent contribute nothing), the
/// same cell arithmetic as GridHistogram::Add, so a histogram-style
/// oracle can replicate it exactly.
///
/// Memory: the dense grid lives under a shrinkable "op.aggregate" grant.
/// When the grant cannot hold the whole grid, the operator keeps a band
/// of grid rows resident and spills contributions outside the band as
/// (cell, value) deltas to one MakePager-backed scratch stream, replaying
/// it once per remaining band at Finish. Spilled deltas replay in arrival
/// order, so each cell accumulates in exactly the order the in-memory
/// path would use — results are bit-identical at any budget; only the
/// modeled I/O differs.
///
/// Output (at Finish): one row per cell with a nonzero aggregate, in
/// ascending (y, x) cell order; rect = the cell rectangle, ids = {flat
/// cell index y * nx + x}, value = the aggregate.
class AggregateByCellOp final : public PipelineOperator {
 public:
  AggregateByCellOp(AggregateMode mode, const RectF& extent, uint32_t nx,
                    uint32_t ny);
  ~AggregateByCellOp() override;

  Status Open(PipelineContext& ctx) override;
  void Emit(PipeRow row) override;
  Status Finish() override;

  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }
  uint64_t spilled_deltas() const { return spilled_deltas_; }

 private:
  /// One spilled contribution: flat cell index plus the delta.
  struct CellDelta {
    uint64_t cell = 0;
    double value = 0.0;
  };
  static_assert(sizeof(CellDelta) == 16, "spill record layout");

  bool CellRangeOf(const RectF& r, uint32_t* x0, uint32_t* x1, uint32_t* y0,
                   uint32_t* y1) const;
  void Apply(uint64_t cell, double v);
  void EmitBand(uint32_t band_begin, uint32_t band_end);
  RectF CellRect(uint32_t ix, uint32_t iy) const;

  const AggregateMode mode_;
  const RectF extent_;
  const uint32_t nx_;
  const uint32_t ny_;
  const float cell_w_;
  const float cell_h_;

  MemoryGrant grant_;
  /// Grid rows [0, resident_rows_) are aggregated inline; the rest spill.
  uint32_t resident_rows_ = 0;
  std::vector<double> grid_;
  std::unique_ptr<Pager> spill_pager_;
  std::unique_ptr<StreamWriter<CellDelta>> spill_writer_;
  uint64_t spilled_deltas_ = 0;
  bool finished_ = false;
};

/// TopKByDistance: keeps the k rows whose rects are nearest (minimum
/// Euclidean distance, 0 inside) to a query point, emitting them in
/// ascending distance order at Finish. Ties are broken by a total order
/// over (ids, rect, value), so the result set and its order are
/// independent of arrival order — identical across thread counts and
/// memory budgets.
///
/// The k-entry heap is grant-sized: Open acquires an "op.topk" grant whose
/// floor is the full heap footprint, so a tight budget records the
/// overshoot in the arbiter's high-water marks rather than silently
/// changing k (results must not depend on the budget).
class TopKByDistanceOp final : public PipelineOperator {
 public:
  TopKByDistanceOp(size_t k, float qx, float qy);

  Status Open(PipelineContext& ctx) override;
  void Emit(PipeRow row) override;
  Status Finish() override;

  /// Minimum Euclidean distance from (qx, qy) to the closed rect (0 when
  /// the point lies inside). Exposed so oracles use the same arithmetic.
  static double DistanceTo(const RectF& r, float qx, float qy);

 private:
  struct Entry {
    double distance = 0.0;
    PipeRow row;
  };
  static bool EntryLess(const Entry& a, const Entry& b);

  const size_t k_;
  const float qx_;
  const float qy_;
  MemoryGrant grant_;
  /// Max-heap under EntryLess, so top() is the worst kept entry.
  std::vector<Entry> heap_;
};

/// WindowScan: the leaf source — streams the records of a JoinInput that
/// intersect `window` (closed-rect semantics; an invalid window matches
/// nothing), as rows with rect = the record MBR and ids = {record id}.
///
/// An attached histogram prunes: when GridHistogram::MightIntersect says
/// no record can overlap the window, the scan emits nothing and reads
/// nothing. Streams are scanned sequentially and filtered on the fly
/// (constant memory); R-trees answer through RTree::WindowQuery with the
/// result buffer governed by an "op.window" grant.
class WindowScan {
 public:
  WindowScan(const JoinInput& input, const RectF& window,
             const GridHistogram* histogram = nullptr);

  /// Drives the whole scan into `out`.
  Status Run(PipelineContext& ctx, RowSink* out);

  const OperatorStats& stats() const { return stats_; }

  /// Planner estimate of the matching record count: the histogram's
  /// EstimateCountIn when one is attached, else the window/extent area
  /// ratio scaled to the input count.
  static double EstimateRows(const JoinInput& input, const RectF& window,
                             const GridHistogram* histogram);

 private:
  const JoinInput input_;
  const RectF window_;
  const GridHistogram* histogram_;
  OperatorStats stats_;
};

/// The row-side half of SpatialJoinOp: a JoinSink/TupleSink that turns
/// the join executors' bare id tuples back into geometry rows. Ids are
/// buffered in batches of `batch_size`; each batch is resolved through
/// the per-input RectResolvers (sorted, page-coalesced lookups) and
/// forwarded downstream in join-output order, with rect = the contact box
/// of the member MBRs — their intersection when they overlap (always, for
/// kIntersects) else the axis-wise gap box (ε-distance pairs whose MBRs
/// are disjoint). Errors are sticky, surfaced by Finish().
class JoinRowAdapter final : public JoinSink, public TupleSink {
 public:
  /// `resolvers[i]` resolves ids of join input i. Borrowed.
  JoinRowAdapter(std::vector<RectResolver*> resolvers, RowSink* down,
                 uint32_t batch_size = 1024);
  ~JoinRowAdapter() override;

  void Emit(ObjectId a, ObjectId b) override;
  void Emit(const std::vector<ObjectId>& tuple) override;

  /// Flushes the tail batch; returns the first resolve error.
  Status Finish();

  uint64_t rows_forwarded() const { return rows_forwarded_; }

  /// The contact box of `rects`: per axis the max of lows and min of
  /// highs, corners swapped where inverted. Exposed for oracles.
  static RectF ContactBox(const std::vector<RectF>& rects);

 private:
  void FlushBatch();

  std::vector<RectResolver*> resolvers_;
  RowSink* down_;
  const uint32_t batch_size_;
  /// Buffered tuples, flattened: batch_[t * arity + i] = id of input i.
  std::vector<ObjectId> batch_;
  uint64_t rows_forwarded_ = 0;
  bool finished_ = false;
  Status status_;
};

}  // namespace sj

#endif  // USJ_OP_OPERATORS_H_
