#ifndef USJ_OP_RECT_RESOLVER_H_
#define USJ_OP_RECT_RESOLVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/memory_arbiter.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/storage.h"
#include "join/executor.h"
#include "util/result.h"

namespace sj {

/// Orders RectF records by object id — the sort order of a RectResolver's
/// lookup table (ids within one relation are unique).
struct OrderById {
  bool operator()(const RectF& a, const RectF& b) const { return a.id < b.id; }
};

/// Grant-governed id -> MBR lookup over one JoinInput.
///
/// Join executors emit bare id pairs (the merge buffers of the parallel
/// paths carry 8-byte IdPairs, not geometry), so a pipeline that needs the
/// geometry of a join result — aggregate it into cells, rank it by
/// distance — has to resolve ids back to rectangles. A RectResolver is
/// that lookup, built once per join input under the pipeline's
/// MemoryArbiter:
///
///  * In-memory path: when the "op.rectmap" grant covers the whole
///    relation (count * sizeof(RectF)), the records are loaded, sorted by
///    id, and looked up by binary search.
///  * External path: under memory pressure the records are external-sorted
///    by id into a scratch pager (MakePager — the query's storage backend
///    choice applies) and lookups go through a tiny in-memory page index
///    (first id of each sorted page). Batched lookups sort their ids, so
///    page fetches arrive in ascending page order and consecutive ids
///    coalesce onto one page read — the same access-clustering idea as the
///    refinement step's batch fetches.
///
/// Either path returns identical rectangles; only the modeled I/O differs
/// (the external build adds sort passes, each cold lookup page is a
/// charged random read). Thread-compatible: one resolver serves one
/// pipeline thread.
class RectResolver {
 public:
  /// Builds a resolver over `input` (stream, sorted stream, or R-tree).
  /// The build scan is charged to `disk`; scratch files for the external
  /// path come from `storage` (null = in-memory backend). `name` prefixes
  /// the scratch pager name. `sort_config` shapes the external path's
  /// id-sort (parallel runs / write-behind / fan-in; same table bytes
  /// either way).
  static Result<std::unique_ptr<RectResolver>> Build(
      const JoinInput& input, DiskModel* disk, MemoryArbiter* arbiter,
      StorageFactory* storage, const PrefetchContext& prefetch,
      const std::string& name, const SortConfig& sort_config = SortConfig());

  /// Resolves ids[i] into (*out)[i] (out is resized). Every id must exist
  /// in the input; an unknown id is an Internal error (it would mean the
  /// join emitted an id its own input never contained).
  Status Lookup(const std::vector<ObjectId>& ids, std::vector<RectF>* out);

  /// Pages fetched by external-path lookups so far (0 on the in-memory
  /// path; the build's sort I/O is charged to the DiskModel directly).
  uint64_t lookup_pages_read() const { return lookup_pages_read_; }
  bool external() const { return external_; }
  uint64_t count() const { return count_; }

 private:
  RectResolver() = default;

  Status LookupExternal(const std::vector<ObjectId>& ids,
                        std::vector<RectF>* out);

  bool external_ = false;
  uint64_t count_ = 0;
  MemoryGrant grant_;

  // In-memory path: records sorted by id.
  std::vector<RectF> sorted_;

  // External path: id-sorted stream plus the first id of each page.
  std::unique_ptr<Pager> scratch_;
  PageId first_page_ = 0;
  std::vector<ObjectId> page_first_ids_;
  std::vector<uint8_t> page_buf_;
  uint64_t cached_page_ = ~uint64_t{0};
  uint64_t lookup_pages_read_ = 0;
};

}  // namespace sj

#endif  // USJ_OP_RECT_RESOLVER_H_
