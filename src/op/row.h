#ifndef USJ_OP_ROW_H_
#define USJ_OP_ROW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/rect.h"

namespace sj {

/// A row flowing through a physical-operator pipeline (src/op/): the
/// unified record every operator consumes and produces, so joins, scans,
/// filters and aggregates compose freely.
///
///  * `rect`  — the row's geometry. For a scanned record it is the record
///    MBR; for a join result it is the *contact box* of the member MBRs
///    (their intersection when they overlap — always the case for
///    kIntersects results — else the axis-wise gap box between them,
///    which ε-distance pairs can produce); for an aggregated cell it is
///    the cell rectangle. `rect.id` is unused (ids travel in `ids`).
///  * `ids`   — the contributing object ids, one per joined input
///    (arity 1 for scan rows, 2 for pairwise join rows, k for k-way).
///    AggregateByCell rows carry the flat cell index as a single id.
///  * `value` — the aggregation weight (1.0 unless a Project rewrote it);
///    AggregateByCell rows carry the cell aggregate here.
struct PipeRow {
  RectF rect;
  std::vector<ObjectId> ids;
  double value = 1.0;

  friend bool operator==(const PipeRow& a, const PipeRow& b) {
    return a.rect == b.rect && a.ids == b.ids && a.value == b.value;
  }
};

/// Approximate live bytes of one row (the struct plus its id storage);
/// operators size their grants with this.
inline size_t RowBytes(size_t arity) {
  return sizeof(PipeRow) + arity * sizeof(ObjectId);
}

/// Consumer of pipeline rows — the operator-tree analog of JoinSink /
/// TupleSink. Rows arrive in the pipeline's deterministic order (fixed by
/// the plan, identical for every thread count and memory budget).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void Emit(PipeRow row) = 0;
};

/// Counts rows without storing them.
class CountingRowSink final : public RowSink {
 public:
  void Emit(PipeRow) override { count_++; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Collects rows in memory (tests, small pipelines).
class CollectingRowSink final : public RowSink {
 public:
  void Emit(PipeRow row) override { rows_.push_back(std::move(row)); }
  const std::vector<PipeRow>& rows() const { return rows_; }
  std::vector<PipeRow>& mutable_rows() { return rows_; }

 private:
  std::vector<PipeRow> rows_;
};

}  // namespace sj

#endif  // USJ_OP_ROW_H_
