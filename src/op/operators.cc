#include "op/operators.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace sj {

namespace {

/// Spill stream block size: small blocks, because the spill writer's
/// buffer lives inside the operator's (possibly tight) grant.
constexpr uint32_t kSpillBlockPages = 4;

}  // namespace

const char* ToString(AggregateMode mode) {
  switch (mode) {
    case AggregateMode::kCount:
      return "count";
    case AggregateMode::kSum:
      return "sum";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// AggregateByCellOp
// ---------------------------------------------------------------------------

AggregateByCellOp::AggregateByCellOp(AggregateMode mode, const RectF& extent,
                                     uint32_t nx, uint32_t ny)
    : PipelineOperator(std::string("AggregateByCell(") + sj::ToString(mode) +
                       " " + std::to_string(nx) + "x" + std::to_string(ny) +
                       ")"),
      mode_(mode),
      extent_(extent),
      nx_(nx),
      ny_(ny),
      cell_w_((extent.xhi - extent.xlo) / static_cast<float>(nx)),
      cell_h_((extent.yhi - extent.ylo) / static_cast<float>(ny)) {
  SJ_CHECK(nx_ > 0 && ny_ > 0);
  SJ_CHECK(extent_.Valid());
  SJ_CHECK(uint64_t{nx_} * ny_ <= uint64_t{0xFFFFFFFFu})
      << "cell index must fit an ObjectId";
}

AggregateByCellOp::~AggregateByCellOp() {
  if (spill_writer_ != nullptr && !finished_) spill_writer_->Abandon();
}

Status AggregateByCellOp::Open(PipelineContext& ctx) {
  const uint64_t grid_bytes = uint64_t{nx_} * ny_ * sizeof(double);
  // Floor: one grid row plus the spill writer's and replay reader's block
  // buffers — the least that still makes progress.
  const size_t spill_buf_bytes = 2 * kSpillBlockPages * kPageSize;
  const size_t floor_bytes = nx_ * sizeof(double) + spill_buf_bytes;
  grant_ = ctx.arbiter->AcquireShrinkable(
      grants::kOpAggregate, static_cast<size_t>(grid_bytes) + spill_buf_bytes,
      floor_bytes);

  const size_t for_grid =
      grant_.bytes() > spill_buf_bytes ? grant_.bytes() - spill_buf_bytes : 0;
  resident_rows_ = static_cast<uint32_t>(std::min<uint64_t>(
      ny_, std::max<uint64_t>(1, for_grid / (nx_ * sizeof(double)))));
  grid_.assign(static_cast<size_t>(resident_rows_) * nx_, 0.0);

  if (resident_rows_ < ny_) {
    SJ_ASSIGN_OR_RETURN(
        spill_pager_,
        MakePager(ctx.storage, ctx.disk, stats_.name + ".spill"));
    spill_writer_ = std::make_unique<StreamWriter<CellDelta>>(
        spill_pager_.get(), kSpillBlockPages);
  }
  grant_.NoteUsage(grid_.size() * sizeof(double) +
                   (spill_writer_ != nullptr ? kSpillBlockPages * kPageSize
                                             : 0));
  return Status::OK();
}

bool AggregateByCellOp::CellRangeOf(const RectF& r, uint32_t* x0, uint32_t* x1,
                                    uint32_t* y0, uint32_t* y1) const {
  if (!r.Valid() || !r.Intersects(extent_)) return false;
  // Same clamp arithmetic as GridHistogram: truncate the relative offset,
  // clamping *before* the integer cast so an infinite or oversized offset
  // (degenerate extents make cell_w_ zero) stays defined.
  auto cell_of = [](float v, float lo, float w, uint32_t n) -> uint32_t {
    const float rel = (v - lo) / w;
    if (!(rel > 0.0f)) return 0;
    const float clamped = std::min(rel, static_cast<float>(n - 1));
    return static_cast<uint32_t>(clamped);
  };
  *x0 = cell_of(r.xlo, extent_.xlo, cell_w_, nx_);
  *x1 = cell_of(r.xhi, extent_.xlo, cell_w_, nx_);
  *y0 = cell_of(r.ylo, extent_.ylo, cell_h_, ny_);
  *y1 = cell_of(r.yhi, extent_.ylo, cell_h_, ny_);
  return true;
}

void AggregateByCellOp::Apply(uint64_t cell, double v) {
  const uint32_t iy = static_cast<uint32_t>(cell / nx_);
  if (iy < resident_rows_) {
    grid_[static_cast<size_t>(cell)] += v;
  } else {
    spill_writer_->Append(CellDelta{cell, v});
    spilled_deltas_++;
  }
}

void AggregateByCellOp::Emit(PipeRow row) {
  stats_.rows_in++;
  uint32_t x0, x1, y0, y1;
  if (!CellRangeOf(row.rect, &x0, &x1, &y0, &y1)) return;
  const double v = mode_ == AggregateMode::kCount ? 1.0 : row.value;
  for (uint32_t iy = y0; iy <= y1; ++iy) {
    for (uint32_t ix = x0; ix <= x1; ++ix) {
      Apply(uint64_t{iy} * nx_ + ix, v);
    }
  }
}

RectF AggregateByCellOp::CellRect(uint32_t ix, uint32_t iy) const {
  // The last cell of each axis closes on the extent edge exactly, so the
  // cell tiling covers the extent without float drift.
  const float xlo = extent_.xlo + static_cast<float>(ix) * cell_w_;
  const float ylo = extent_.ylo + static_cast<float>(iy) * cell_h_;
  const float xhi =
      ix + 1 == nx_ ? extent_.xhi
                    : extent_.xlo + static_cast<float>(ix + 1) * cell_w_;
  const float yhi =
      iy + 1 == ny_ ? extent_.yhi
                    : extent_.ylo + static_cast<float>(iy + 1) * cell_h_;
  return RectF(xlo, ylo, xhi, yhi);
}

void AggregateByCellOp::EmitBand(uint32_t band_begin, uint32_t band_end) {
  for (uint32_t iy = band_begin; iy < band_end; ++iy) {
    for (uint32_t ix = 0; ix < nx_; ++ix) {
      const double v =
          grid_[static_cast<size_t>(iy - band_begin) * nx_ + ix];
      if (v == 0.0) continue;
      PipeRow row;
      row.rect = CellRect(ix, iy);
      row.ids.push_back(static_cast<ObjectId>(uint64_t{iy} * nx_ + ix));
      row.value = v;
      Forward(std::move(row));
    }
  }
}

Status AggregateByCellOp::Finish() {
  if (finished_) return status_;
  finished_ = true;

  uint64_t spill_count = 0;
  if (spill_writer_ != nullptr) {
    Result<uint64_t> n = spill_writer_->Finish();
    if (!n.ok()) {
      status_ = n.status();
      return status_;
    }
    spill_count = *n;
    constexpr uint32_t kPerPage = StreamWriter<CellDelta>::kRecordsPerPage;
    stats_.spill_pages = (spill_count + kPerPage - 1) / kPerPage;
  }

  EmitBand(0, resident_rows_);

  // Replay the spill stream once per remaining band. Deltas replay in
  // arrival order, so per-cell accumulation order matches the in-memory
  // path exactly (see class comment).
  const PageId spill_first =
      spill_writer_ != nullptr ? spill_writer_->first_page() : 0;
  for (uint32_t band_begin = resident_rows_; band_begin < ny_;
       band_begin += resident_rows_) {
    const uint32_t band_end =
        static_cast<uint32_t>(std::min<uint64_t>(ny_, uint64_t{band_begin} +
                                                          resident_rows_));
    std::fill(grid_.begin(), grid_.end(), 0.0);
    if (spill_count > 0) {
      StreamReader<CellDelta> reader(spill_pager_.get(), spill_first,
                                     spill_count, kSpillBlockPages);
      stats_.pages_read += stats_.spill_pages;
      while (std::optional<CellDelta> d = reader.Next()) {
        const uint32_t iy = static_cast<uint32_t>(d->cell / nx_);
        if (iy < band_begin || iy >= band_end) continue;
        grid_[static_cast<size_t>(d->cell) -
              static_cast<size_t>(band_begin) * nx_] += d->value;
      }
    }
    EmitBand(band_begin, band_end);
  }
  return status_;
}

// ---------------------------------------------------------------------------
// TopKByDistanceOp
// ---------------------------------------------------------------------------

TopKByDistanceOp::TopKByDistanceOp(size_t k, float qx, float qy)
    : PipelineOperator("TopKByDistance(k=" + std::to_string(k) + ")"),
      k_(k),
      qx_(qx),
      qy_(qy) {}

double TopKByDistanceOp::DistanceTo(const RectF& r, float qx, float qy) {
  double dx = 0.0, dy = 0.0;
  if (qx < r.xlo) {
    dx = static_cast<double>(r.xlo) - qx;
  } else if (qx > r.xhi) {
    dx = static_cast<double>(qx) - r.xhi;
  }
  if (qy < r.ylo) {
    dy = static_cast<double>(r.ylo) - qy;
  } else if (qy > r.yhi) {
    dy = static_cast<double>(qy) - r.yhi;
  }
  return std::sqrt(dx * dx + dy * dy);
}

bool TopKByDistanceOp::EntryLess(const Entry& a, const Entry& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  if (a.row.ids != b.row.ids) return a.row.ids < b.row.ids;
  const RectF& x = a.row.rect;
  const RectF& y = b.row.rect;
  if (x.xlo != y.xlo) return x.xlo < y.xlo;
  if (x.ylo != y.ylo) return x.ylo < y.ylo;
  if (x.xhi != y.xhi) return x.xhi < y.xhi;
  if (x.yhi != y.yhi) return x.yhi < y.yhi;
  return a.row.value < b.row.value;
}

Status TopKByDistanceOp::Open(PipelineContext& ctx) {
  // The floor is the full heap footprint: the result must not depend on
  // the budget, so a tight arbiter records the overshoot instead of
  // shrinking k.
  const size_t heap_bytes = k_ * (sizeof(Entry) + RowBytes(2));
  grant_ = ctx.arbiter->AcquireShrinkable(grants::kOpTopK, heap_bytes,
                                          heap_bytes);
  heap_.reserve(std::min<size_t>(k_, 1u << 16));
  return Status::OK();
}

void TopKByDistanceOp::Emit(PipeRow row) {
  stats_.rows_in++;
  if (k_ == 0) return;
  Entry e;
  e.distance = DistanceTo(row.rect, qx_, qy_);
  e.row = std::move(row);
  if (heap_.size() < k_) {
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), EntryLess);
  } else if (EntryLess(e, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryLess);
    heap_.back() = std::move(e);
    std::push_heap(heap_.begin(), heap_.end(), EntryLess);
  }
  grant_.NoteUsage(heap_.size() * (sizeof(Entry) + RowBytes(2)));
}

Status TopKByDistanceOp::Finish() {
  std::sort(heap_.begin(), heap_.end(), EntryLess);
  for (Entry& e : heap_) Forward(std::move(e.row));
  heap_.clear();
  return status_;
}

// ---------------------------------------------------------------------------
// WindowScan
// ---------------------------------------------------------------------------

WindowScan::WindowScan(const JoinInput& input, const RectF& window,
                       const GridHistogram* histogram)
    : input_(input), window_(window), histogram_(histogram) {
  stats_.name = "WindowScan";
}

double WindowScan::EstimateRows(const JoinInput& input, const RectF& window,
                                const GridHistogram* histogram) {
  if (!window.Valid()) return 0.0;
  if (histogram != nullptr) return histogram->EstimateCountIn(window);
  const RectF extent = input.extent();
  if (!extent.Valid() || !window.Intersects(extent)) return 0.0;
  const double total_area = extent.Area();
  if (total_area <= 0.0) return static_cast<double>(input.count());
  const double frac =
      std::min(1.0, window.IntersectionWith(extent).Area() / total_area);
  return frac * static_cast<double>(input.count());
}

Status WindowScan::Run(PipelineContext& ctx, RowSink* out) {
  if (!window_.Valid()) return Status::OK();
  if (histogram_ != nullptr && !histogram_->MightIntersect(window_)) {
    // Histogram prune: no record can overlap the window — no I/O at all.
    return Status::OK();
  }
  auto forward = [&](const RectF& r) {
    PipeRow row;
    row.rect = r;
    row.rect.id = 0;
    row.ids.push_back(r.id);
    stats_.rows_out++;
    out->Emit(std::move(row));
  };
  if (input_.indexed()) {
    const RTree* tree = input_.rtree();
    const DiskStats before = tree->pager()->disk()->stats();
    MemoryGrant grant = ctx.arbiter->AcquireShrinkable(
        grants::kOpWindow,
        static_cast<size_t>(
            EstimateRows(input_, window_, histogram_) * sizeof(RectF)) +
            kPageSize,
        kPageSize);
    std::vector<RectF> hits;
    SJ_RETURN_IF_ERROR(tree->WindowQuery(window_, &hits));
    grant.NoteUsage(hits.size() * sizeof(RectF));
    stats_.pages_read +=
        (tree->pager()->disk()->stats() - before).pages_read;
    stats_.rows_in += hits.size();
    for (const RectF& r : hits) forward(r);
    return Status::OK();
  }
  const DatasetRef& ref = input_.stream();
  StreamReader<RectF> reader(ref.range.pager, ref.range.first_page,
                             ref.range.count);
  constexpr uint32_t kPerPage = StreamWriter<RectF>::kRecordsPerPage;
  stats_.pages_read += (ref.range.count + kPerPage - 1) / kPerPage;
  while (std::optional<RectF> r = reader.Next()) {
    stats_.rows_in++;
    if (r->Intersects(window_)) forward(*r);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// JoinRowAdapter
// ---------------------------------------------------------------------------

JoinRowAdapter::JoinRowAdapter(std::vector<RectResolver*> resolvers,
                               RowSink* down, uint32_t batch_size)
    : resolvers_(std::move(resolvers)),
      down_(down),
      batch_size_(std::max<uint32_t>(1, batch_size)) {
  SJ_CHECK(resolvers_.size() >= 2);
  batch_.reserve(static_cast<size_t>(batch_size_) * resolvers_.size());
}

JoinRowAdapter::~JoinRowAdapter() = default;

RectF JoinRowAdapter::ContactBox(const std::vector<RectF>& rects) {
  SJ_DCHECK(!rects.empty());
  RectF box(rects[0].xlo, rects[0].ylo, rects[0].xhi, rects[0].yhi);
  for (size_t i = 1; i < rects.size(); ++i) {
    box.xlo = std::max(box.xlo, rects[i].xlo);
    box.ylo = std::max(box.ylo, rects[i].ylo);
    box.xhi = std::min(box.xhi, rects[i].xhi);
    box.yhi = std::min(box.yhi, rects[i].yhi);
  }
  // Overlapping members leave an intersection box; disjoint members (an
  // ε-distance pair) leave inverted corners — swap them into the gap box.
  if (box.xlo > box.xhi) std::swap(box.xlo, box.xhi);
  if (box.ylo > box.yhi) std::swap(box.ylo, box.yhi);
  return box;
}

void JoinRowAdapter::Emit(ObjectId a, ObjectId b) {
  SJ_DCHECK(resolvers_.size() == 2);
  batch_.push_back(a);
  batch_.push_back(b);
  if (batch_.size() >= static_cast<size_t>(batch_size_) * 2) FlushBatch();
}

void JoinRowAdapter::Emit(const std::vector<ObjectId>& tuple) {
  SJ_DCHECK(tuple.size() == resolvers_.size());
  batch_.insert(batch_.end(), tuple.begin(), tuple.end());
  if (batch_.size() >= static_cast<size_t>(batch_size_) * resolvers_.size()) {
    FlushBatch();
  }
}

void JoinRowAdapter::FlushBatch() {
  if (batch_.empty()) return;
  if (!status_.ok()) {
    batch_.clear();
    return;
  }
  const size_t arity = resolvers_.size();
  const size_t ntuples = batch_.size() / arity;
  // One sorted, page-coalesced lookup per input over the whole batch.
  std::vector<std::vector<RectF>> resolved(arity);
  std::vector<ObjectId> ids(ntuples);
  for (size_t i = 0; i < arity; ++i) {
    for (size_t t = 0; t < ntuples; ++t) ids[t] = batch_[t * arity + i];
    const Status s = resolvers_[i]->Lookup(ids, &resolved[i]);
    if (!s.ok()) {
      status_ = s;
      batch_.clear();
      return;
    }
  }
  std::vector<RectF> members(arity);
  for (size_t t = 0; t < ntuples; ++t) {
    for (size_t i = 0; i < arity; ++i) members[i] = resolved[i][t];
    PipeRow row;
    row.rect = ContactBox(members);
    row.ids.assign(batch_.begin() + t * arity,
                   batch_.begin() + (t + 1) * arity);
    rows_forwarded_++;
    down_->Emit(std::move(row));
  }
  batch_.clear();
}

Status JoinRowAdapter::Finish() {
  if (!finished_) {
    FlushBatch();
    finished_ = true;
  }
  return status_;
}

}  // namespace sj
