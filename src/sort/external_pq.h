#ifndef USJ_SORT_EXTERNAL_PQ_H_
#define USJ_SORT_EXTERNAL_PQ_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "core/memory_arbiter.h"
#include "io/pager.h"
#include "io/stream.h"
#include "sort/external_sort.h"
#include "sort/run_layout.h"
#include "util/logging.h"

namespace sj {

/// A bounded-memory priority queue that spills to disk.
///
/// The paper's PQ join assumes its priority queues fit in memory and notes
/// (§4) that overflow can be handled gracefully with an external priority
/// queue [2, 9]. This is that component: a merge-based external PQ —
///
///   * inserts go to an in-memory min-heap;
///   * when the heap exceeds its budget, its larger half is written out
///     as a sorted run (one sequential write) behind a streaming cursor;
///   * the minimum is the smaller of the heap front and the run cursors'
///     heads.
///
/// Every element is written and read at most once, so a workload of N
/// inserts costs O(N/B) extra I/O only when the budget is actually
/// exceeded — zero overhead in the in-memory regime the paper measures.
/// Each ExtractMin scans the open cursors, so the structure is intended
/// for the moderate run counts this access pattern produces (the heap
/// always holds the recent half of the live elements).
///
/// The heap capacity and spill-block sizes come from RunLayout — the same
/// arithmetic ExternalSorter uses — so the heap plus one open streaming
/// block fit the budget (the two components historically copied this
/// computation and diverged by that one block).
///
/// T must be trivially copyable; Less must be a strict weak ordering.
template <typename T, typename Less>
class ExternalPriorityQueue {
 public:
  /// Spilled runs are appended to `spill` (which must outlive the queue).
  /// `memory_bytes` bounds the in-memory heap; each spilled run adds one
  /// small streaming buffer on top. With an arbiter, the budget is
  /// acquired as a tracked "pq.queue" grant (shrunk to what is left).
  /// With `prefetch` enabled, each spill cursor double-buffers (its next
  /// block fetches in the background while the current one drains); with
  /// `config.write_behind`, each spill's run writer flushes its filled
  /// block on a background task while the next packs. Neither changes
  /// pop order or modeled io_seconds.
  ExternalPriorityQueue(size_t memory_bytes, Pager* spill, Less less = Less(),
                        MemoryArbiter* arbiter = nullptr,
                        const PrefetchContext& prefetch = PrefetchContext(),
                        const SortConfig& config = SortConfig())
      : less_(less), spill_(spill), prefetch_(prefetch) {
    const SortConfig effective = EffectiveSortConfig(config);
    write_behind_.enabled = effective.write_behind;
    write_behind_.pool = effective.pool;
    if (arbiter != nullptr) {
      grant_ = arbiter->AcquireShrinkable(grants::kPqQueue, memory_bytes,
                                          kMinHeapRecords * sizeof(T));
      memory_bytes = grant_.bytes();
    }
    const RunLayout layout = RunLayout::For(memory_bytes, sizeof(T));
    // The PQ's budget floor is records, not sort pages: tiny queues are
    // legitimate (they just spill sooner), so undercut the layout's
    // page-clamped capacity when the caller's budget is smaller.
    heap_capacity_ = std::min<uint64_t>(
        layout.run_records,
        std::max<uint64_t>(kMinHeapRecords, memory_bytes / sizeof(T)));
    run_block_pages_ = layout.block_pages;
  }

  void Push(const T& value) {
    heap_.push_back(value);
    std::push_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    size_++;
    if (heap_.size() > heap_capacity_) Spill();
  }

  /// Removes and returns the smallest element, or nullopt when empty.
  std::optional<T> PopMin() {
    const int source = MinSource();
    if (source == kNone) return std::nullopt;
    size_--;
    if (source == kHeap) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
      T out = heap_.back();
      heap_.pop_back();
      return out;
    }
    RunCursor& cursor = cursors_[static_cast<size_t>(source)];
    T out = *cursor.head;
    cursor.head = cursor.reader->Next();
    if (!cursor.head.has_value()) {
      cursors_.erase(cursors_.begin() + source);
    }
    return out;
  }

  /// Returns the smallest element without removing it.
  std::optional<T> PeekMin() {
    const int source = MinSource();
    if (source == kNone) return std::nullopt;
    if (source == kHeap) return heap_.front();
    return cursors_[static_cast<size_t>(source)].head;
  }

  bool Empty() const { return size_ == 0; }
  uint64_t Size() const { return size_; }
  size_t SpilledRuns() const { return total_runs_; }
  size_t OpenRuns() const { return cursors_.size(); }

  /// Current in-memory footprint (heap + run cursor buffers).
  size_t MemoryBytes() const {
    return heap_.size() * sizeof(T) +
           cursors_.size() * run_block_pages_ * kPageSize;
  }

 private:
  struct HeapGreater {
    Less less;
    bool operator()(const T& a, const T& b) const { return less(b, a); }
  };
  struct RunCursor {
    std::unique_ptr<PrefetchingStreamReader<T>> reader;
    std::optional<T> head;
  };

  static constexpr uint64_t kMinHeapRecords = 64;
  static constexpr int kNone = -2;
  static constexpr int kHeap = -1;

  // Index of the cursor holding the overall minimum, kHeap for the
  // in-memory heap, kNone when empty.
  int MinSource() const {
    int best = kNone;
    const T* best_value = nullptr;
    if (!heap_.empty()) {
      best = kHeap;
      best_value = &heap_.front();
    }
    for (size_t i = 0; i < cursors_.size(); ++i) {
      const T& head = *cursors_[i].head;
      if (best_value == nullptr || less_(head, *best_value)) {
        best = static_cast<int>(i);
        best_value = &head;
      }
    }
    return best;
  }

  void Spill() {
    // Keep the smaller half in memory (needed soonest); spill the larger
    // half as a sorted run with an open streaming cursor.
    grant_.NoteUsage(MemoryBytes());
    std::sort(heap_.begin(), heap_.end(), less_);
    const size_t keep = heap_.size() / 2;
    StreamWriter<T> writer(spill_, run_block_pages_, write_behind_);
    const PageId first = writer.first_page();
    for (size_t i = keep; i < heap_.size(); ++i) writer.Append(heap_[i]);
    auto n = writer.Finish();
    SJ_CHECK(n.ok()) << n.status().ToString();
    heap_.resize(keep);
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{less_});

    RunCursor cursor;
    cursor.reader = std::make_unique<PrefetchingStreamReader<T>>(
        spill_, first, n.value(), prefetch_, run_block_pages_);
    cursor.head = cursor.reader->Next();
    SJ_CHECK(cursor.head.has_value());
    cursors_.push_back(std::move(cursor));
    total_runs_++;
  }

  Less less_;
  Pager* spill_;
  PrefetchContext prefetch_;
  WriteBehindContext write_behind_;
  size_t heap_capacity_ = kMinHeapRecords;
  uint32_t run_block_pages_ = 1;
  std::vector<T> heap_;
  std::vector<RunCursor> cursors_;
  size_t total_runs_ = 0;
  uint64_t size_ = 0;
  MemoryGrant grant_;
};

}  // namespace sj

#endif  // USJ_SORT_EXTERNAL_PQ_H_
