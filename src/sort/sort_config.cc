#include "sort/sort_config.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sj {
namespace {

// -1 = no override; 0/1 = forced off/on.
std::atomic<int> g_serial_override{-1};

bool EnvForcesSerial() {
  static const bool forced = [] {
    const char* env = std::getenv("SJ_SORT_MODE");
    return env != nullptr && std::strcmp(env, "serial") == 0;
  }();
  return forced;
}

}  // namespace

bool SortSerialOnly() {
#if defined(SJ_SORT_SERIAL_ONLY)
  return true;
#else
  const int override = g_serial_override.load(std::memory_order_relaxed);
  if (override >= 0) return override != 0;
  return EnvForcesSerial();
#endif
}

void ForceSortSerialOnly(bool on) {
  g_serial_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void ResetSortSerialOnly() {
  g_serial_override.store(-1, std::memory_order_relaxed);
}

}  // namespace sj
