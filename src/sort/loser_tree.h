#ifndef USJ_SORT_LOSER_TREE_H_
#define USJ_SORT_LOSER_TREE_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "sort/sort_config.h"
#include "util/logging.h"

namespace sj {

/// Tournament (loser) tree over k sorted sources — the classic external-
/// merge selection structure. Each ReplaceTop() walks one leaf-to-root
/// path of exactly ceil(log2 k) comparisons, where a binary heap pays two
/// sifts (pop + push) per record with data-dependent branches.
///
/// Ordering is the *stable* merge order: ties between sources break
/// toward the lower source index, and an exhausted source loses to every
/// live one. Stability makes the merged output independent of the merge
/// structure and — because stable k-way merges compose — of the fan-in
/// the merge planner picks, even for comparators with ties. (Every
/// comparator the joins use is already a total order; stability is the
/// belt to that suspender.)
///
/// Layout: leaf i lives at position k + i of an implicit binary tree;
/// internal node p (1 <= p < k) stores the *loser* of the subtree match
/// below it and tree_[0] stores the overall winner. This works for any k,
/// not just powers of two.
template <typename T, typename Less>
class LoserTree {
 public:
  /// `heads[i]` is source i's first record (nullopt = empty source).
  LoserTree(std::vector<std::optional<T>> heads, Less less)
      : less_(std::move(less)), heads_(std::move(heads)), k_(heads_.size()) {
    if (k_ == 0) return;
    tree_.assign(k_, 0);
    // Bottom-up build: winner[p] is the winner of the match at position p
    // (leaves win their own position), losers are deposited into tree_.
    std::vector<size_t> winner(2 * k_);
    for (size_t p = 2 * k_; p-- > k_;) winner[p] = p - k_;
    for (size_t p = k_; p-- > 1;) {
      const size_t a = winner[2 * p];
      const size_t b = winner[2 * p + 1];
      if (Beats(a, b)) {
        winner[p] = a;
        tree_[p] = b;
      } else {
        winner[p] = b;
        tree_[p] = a;
      }
    }
    tree_[0] = winner[1];
  }

  /// True when every source is exhausted (the winner is exhausted only
  /// when all of them are).
  bool Empty() const { return k_ == 0 || !heads_[tree_[0]].has_value(); }

  /// The smallest head and its source. Only valid while !Empty().
  const T& Top() const { return *heads_[tree_[0]]; }
  size_t TopSource() const { return tree_[0]; }

  /// Replaces the winner's head with the next record from the same source
  /// (nullopt = exhausted) and replays its leaf-to-root path.
  void ReplaceTop(std::optional<T> next) {
    SJ_DCHECK(!Empty());
    const size_t source = tree_[0];
    heads_[source] = std::move(next);
    size_t winner = source;
    for (size_t p = (source + k_) / 2; p >= 1; p /= 2) {
      if (Beats(tree_[p], winner)) std::swap(tree_[p], winner);
    }
    tree_[0] = winner;
  }

 private:
  /// True when source a's head must be emitted before source b's.
  bool Beats(size_t a, size_t b) const {
    const bool live_a = heads_[a].has_value();
    const bool live_b = heads_[b].has_value();
    if (!live_a || !live_b) return live_a || (!live_b && a < b);
    if (less_(*heads_[a], *heads_[b])) return true;
    if (less_(*heads_[b], *heads_[a])) return false;
    return a < b;
  }

  Less less_;
  std::vector<std::optional<T>> heads_;
  size_t k_;
  std::vector<size_t> tree_;
};

/// The merge selection structure behind ExternalSorter::MergeRuns and
/// MergingReader: a LoserTree by default, or the classic binary heap
/// (kept as the bench baseline). Both implement the same stable
/// (key, source index) order, so callers get identical output either way.
template <typename T, typename Less>
class MergeSelector {
 public:
  MergeSelector(std::vector<std::optional<T>> heads, Less less,
                MergeStructure structure)
      : structure_(structure), less_(std::move(less)) {
    if (structure_ == MergeStructure::kLoserTree) {
      tree_.emplace(std::move(heads), less_);
      return;
    }
    for (size_t i = 0; i < heads.size(); ++i) {
      if (heads[i].has_value()) heap_.push_back(Item{std::move(*heads[i]), i});
    }
    std::make_heap(heap_.begin(), heap_.end(), Greater{less_});
  }

  bool Empty() const {
    return tree_.has_value() ? tree_->Empty() : heap_.empty();
  }
  const T& Top() const {
    return tree_.has_value() ? tree_->Top() : heap_.front().value;
  }
  size_t TopSource() const {
    return tree_.has_value() ? tree_->TopSource() : heap_.front().source;
  }

  void ReplaceTop(std::optional<T> next) {
    if (tree_.has_value()) {
      tree_->ReplaceTop(std::move(next));
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Greater{less_});
    if (next.has_value()) {
      heap_.back().value = std::move(*next);
      std::push_heap(heap_.begin(), heap_.end(), Greater{less_});
    } else {
      heap_.pop_back();
    }
  }

 private:
  struct Item {
    T value;
    size_t source;
  };
  /// Min-heap on (value, source) — the same stable order the tree uses.
  struct Greater {
    Less less;
    bool operator()(const Item& a, const Item& b) const {
      if (less(b.value, a.value)) return true;
      if (less(a.value, b.value)) return false;
      return b.source < a.source;
    }
  };

  MergeStructure structure_;
  Less less_;
  std::optional<LoserTree<T, Less>> tree_;
  std::vector<Item> heap_;
};

}  // namespace sj

#endif  // USJ_SORT_LOSER_TREE_H_
