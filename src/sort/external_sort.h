#ifndef USJ_SORT_EXTERNAL_SORT_H_
#define USJ_SORT_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/memory_arbiter.h"
#include "geometry/rect.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/stream.h"
#include "sort/run_layout.h"
#include "util/logging.h"
#include "util/result.h"

namespace sj {

/// A contiguous run of records within a pager, the unit passed between
/// sort phases and join inputs.
struct StreamRange {
  Pager* pager = nullptr;
  PageId first_page = 0;
  uint64_t count = 0;
};

/// External multiway mergesort, the sorting component of SSSJ and of the
/// R-tree bulk loader.
///
/// Phase 1 (run formation) reads the input in memory-sized chunks,
/// std::sort's each chunk and writes it as a sorted run (sequential write).
/// Phase 2 merges up to `MaxFanIn()` runs at a time with a heap; reads
/// during a merge alternate between runs and are therefore charged as
/// non-sequential requests — exactly the paper's "one non-sequential read
/// pass" accounting for SSSJ. For every experiment in the paper one merge
/// pass suffices; multi-pass merging exists for robustness and is covered
/// by tests.
///
/// T must be trivially copyable; Less must be a strict weak ordering.
template <typename T, typename Less>
class ExternalSorter {
 public:
  /// `scratch` receives runs; `output` receives the final sorted stream.
  /// They may be distinct pagers (distinct devices) or the same pager.
  /// Budgets below 4 pages are clamped up (the merge needs at least two
  /// input blocks and one output block; see RunLayout for the shared
  /// sizing arithmetic). When `arbiter` is given, the sorter acquires its
  /// budget as a tracked grant — shrunk to what the arbiter has left —
  /// and reports its run-buffer usage against it.
  /// With `prefetch` enabled, the merge phase double-buffers every run
  /// reader (block N+1 fetches in the background while block N drains);
  /// results and modeled I/O are identical either way.
  ExternalSorter(size_t memory_bytes, Pager* scratch, Less less = Less(),
                 MemoryArbiter* arbiter = nullptr,
                 const PrefetchContext& prefetch = PrefetchContext())
      : scratch_(scratch), less_(less), prefetch_(prefetch) {
    if (arbiter != nullptr) {
      grant_ = arbiter->AcquireShrinkable(grants::kSortRuns, memory_bytes,
                                          RunLayout::kMinSortMemoryBytes);
      memory_bytes = grant_.bytes();
    }
    layout_ = RunLayout::For(memory_bytes, sizeof(T));
  }

  /// Sorts `input` and writes the result to `output`'s end; returns the
  /// sorted range.
  Result<StreamRange> Sort(const StreamRange& input, Pager* output) {
    std::vector<StreamRange> runs;
    SJ_RETURN_IF_ERROR(FormRuns(input, &runs));
    if (runs.empty()) {
      return StreamRange{output, output->Allocate(0), 0};
    }
    // Merge passes until a single run remains; the final pass targets
    // `output`.
    while (runs.size() > 1) {
      const size_t fan_in = MaxFanIn();
      std::vector<StreamRange> next;
      for (size_t i = 0; i < runs.size(); i += fan_in) {
        const size_t k = std::min(fan_in, runs.size() - i);
        std::vector<StreamRange> group(runs.begin() + i, runs.begin() + i + k);
        const bool last_pass = runs.size() <= fan_in;
        Pager* target = last_pass ? output : scratch_;
        SJ_ASSIGN_OR_RETURN(StreamRange merged, MergeRuns(group, target));
        next.push_back(merged);
      }
      runs = std::move(next);
    }
    if (runs.size() == 1 && runs[0].pager != output) {
      // Single run formed directly in scratch: copy it to output so the
      // caller owns a range in the pager it asked for.
      SJ_ASSIGN_OR_RETURN(StreamRange copied, CopyRun(runs[0], output));
      return copied;
    }
    return runs[0];
  }

  /// Number of runs the merge phase can combine at once: one input block
  /// per run plus one output block must fit in memory.
  size_t MaxFanIn() const { return layout_.fan_in; }

  /// Pages per merge-reader block (derived from the memory budget).
  uint32_t merge_block_pages() const { return layout_.block_pages; }

  /// Records per in-memory sorted run (the budget minus one open
  /// streaming block, shared with ExternalPriorityQueue via RunLayout).
  uint64_t RunCapacity() const { return layout_.run_records; }

  /// Phase 1 only: forms sorted runs in the scratch pager. Exposed so SSSJ
  /// can fuse the final merge with its plane sweep (see MergingReader).
  Status FormRuns(const StreamRange& input, std::vector<StreamRange>* runs) {
    StreamReader<T> reader(input.pager, input.first_page, input.count);
    const uint64_t cap = RunCapacity();
    std::vector<T> chunk;
    chunk.reserve(std::min<uint64_t>(cap, input.count));
    while (true) {
      std::optional<T> rec = reader.Next();
      if (rec.has_value()) chunk.push_back(*rec);
      if ((!rec.has_value() && !chunk.empty()) || chunk.size() >= cap) {
        std::sort(chunk.begin(), chunk.end(), less_);
        grant_.NoteUsage(chunk.size() * sizeof(T) +
                         layout_.write_block_pages * kPageSize);
        StreamWriter<T> writer(scratch_, layout_.write_block_pages);
        const PageId first = writer.first_page();
        for (const T& t : chunk) writer.Append(t);
        SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
        runs->push_back(StreamRange{scratch_, first, n});
        chunk.clear();
      }
      if (!rec.has_value()) break;
    }
    return Status::OK();
  }

 private:
  Result<StreamRange> MergeRuns(const std::vector<StreamRange>& runs,
                                Pager* output) {
    struct HeapItem {
      T value;
      size_t source;
    };
    auto heap_greater = [this](const HeapItem& a, const HeapItem& b) {
      return less_(b.value, a.value);  // Min-heap.
    };
    std::vector<std::unique_ptr<PrefetchingStreamReader<T>>> readers;
    readers.reserve(runs.size());
    std::vector<HeapItem> heap;
    // Prefetch double-buffers every run reader.
    grant_.NoteUsage((runs.size() * (prefetch_.enabled ? 2 : 1) + 1) *
                     layout_.block_pages * kPageSize);
    for (size_t i = 0; i < runs.size(); ++i) {
      readers.push_back(std::make_unique<PrefetchingStreamReader<T>>(
          runs[i].pager, runs[i].first_page, runs[i].count, prefetch_,
          layout_.block_pages));
      std::optional<T> head = readers[i]->Next();
      if (head.has_value()) heap.push_back(HeapItem{*head, i});
    }
    std::make_heap(heap.begin(), heap.end(), heap_greater);

    StreamWriter<T> writer(output);
    const PageId first = writer.first_page();
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      HeapItem item = heap.back();
      heap.pop_back();
      writer.Append(item.value);
      std::optional<T> next = readers[item.source]->Next();
      if (next.has_value()) {
        heap.push_back(HeapItem{*next, item.source});
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
    SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
    return StreamRange{output, first, n};
  }

  Result<StreamRange> CopyRun(const StreamRange& run, Pager* output) {
    StreamReader<T> reader(run.pager, run.first_page, run.count);
    StreamWriter<T> writer(output);
    const PageId first = writer.first_page();
    while (std::optional<T> rec = reader.Next()) writer.Append(*rec);
    SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
    return StreamRange{output, first, n};
  }

  Pager* scratch_;
  Less less_;
  PrefetchContext prefetch_;
  RunLayout layout_;
  MemoryGrant grant_;
};

/// Pull-based k-way merge over sorted runs: yields records in sorted order
/// via Next() without materializing the merged stream.
///
/// SSSJ's fuse_merge_sweep option plugs this directly into the plane
/// sweep, eliminating one write pass and one read pass per input relative
/// to the paper's materializing implementation.
template <typename T, typename Less>
class MergingReader {
 public:
  MergingReader(std::vector<StreamRange> runs, uint32_t block_pages,
                Less less = Less(),
                const PrefetchContext& prefetch = PrefetchContext())
      : less_(less) {
    readers_.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      readers_.push_back(std::make_unique<PrefetchingStreamReader<T>>(
          runs[i].pager, runs[i].first_page, runs[i].count, prefetch,
          block_pages));
      std::optional<T> head = readers_[i]->Next();
      if (head.has_value()) heap_.push_back(HeapItem{*head, i});
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
  }

  std::optional<T> Next() {
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    HeapItem item = heap_.back();
    heap_.pop_back();
    std::optional<T> refill = readers_[item.source]->Next();
    if (refill.has_value()) {
      heap_.push_back(HeapItem{*refill, item.source});
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater{less_});
    }
    return item.value;
  }

 private:
  struct HeapItem {
    T value;
    size_t source;
  };
  struct HeapGreater {
    Less less;
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return less(b.value, a.value);
    }
  };

  Less less_;
  std::vector<std::unique_ptr<PrefetchingStreamReader<T>>> readers_;
  std::vector<HeapItem> heap_;
};

/// Convenience: sorts RectF records by lower y coordinate (the sweep
/// order). With an arbiter, the sort memory is a tracked grant.
inline Result<StreamRange> SortRectsByYLo(
    const StreamRange& input, Pager* scratch, Pager* output,
    size_t memory_bytes, MemoryArbiter* arbiter = nullptr,
    const PrefetchContext& prefetch = PrefetchContext()) {
  ExternalSorter<RectF, OrderByYLo> sorter(memory_bytes, scratch,
                                           OrderByYLo(), arbiter, prefetch);
  return sorter.Sort(input, output);
}

}  // namespace sj

#endif  // USJ_SORT_EXTERNAL_SORT_H_
