#ifndef USJ_SORT_EXTERNAL_SORT_H_
#define USJ_SORT_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "core/memory_arbiter.h"
#include "geometry/rect.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/stream.h"
#include "io/write_behind.h"
#include "sort/loser_tree.h"
#include "sort/run_layout.h"
#include "sort/sort_config.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {

/// A contiguous run of records within a pager, the unit passed between
/// sort phases and join inputs.
struct StreamRange {
  Pager* pager = nullptr;
  PageId first_page = 0;
  uint64_t count = 0;
};

/// External multiway mergesort, the sorting component of SSSJ and of the
/// R-tree bulk loader.
///
/// Phase 1 (run formation) carves the input into run-capacity chunks,
/// std::sort's each chunk and writes it as a sorted run (sequential
/// write). Phase 2 merges up to the planned fan-in runs at a time with a
/// loser tree; reads during a merge alternate between runs and are
/// therefore charged as non-sequential requests — exactly the paper's
/// "one non-sequential read pass" accounting for SSSJ. For every
/// experiment in the paper one merge pass suffices; multi-pass merging
/// exists for robustness and is covered by tests.
///
/// Three optional perf layers (SortConfig), all bit-identical to the
/// serial pipeline in output bytes and modeled io_seconds:
///
///  * Parallel run formation: chunks are sorted and written as
///    independent units on the worker pool. Chunk boundaries are fixed at
///    RunCapacity() records regardless of thread count, unit extents are
///    pre-allocated in unit order (reproducing the serial pager layout),
///    workers move bytes through the raw backend (wall-timed only), and
///    the coordinator replays the exact serial modeled-charge sequence
///    afterwards — so run contents, page images and DiskModel state match
///    the serial path request for request. Units model the serial
///    machine: the reported grant usage is the serial-equivalent
///    footprint (one chunk + one write block), the same convention the
///    strip/partition parallelism uses; real transient memory is
///    threads x that.
///  * Loser-tree merge: one leaf-to-root path (ceil(log2 k) comparisons)
///    per record instead of two heap sifts, stable on (key, source), fed
///    by a RunLayout::PlanMerge fan-in that trades pass count against
///    read-block size under the grant.
///  * Write-behind output: run and merge writers flush the filled block
///    on a background task while the next fills (StreamWriter's
///    double-buffered mode); modeled charges stay on the producer in
///    stream order, so only io_wall_seconds moves.
///
/// T must be trivially copyable; Less must be a strict weak ordering
/// (ties break by source run, so even non-total orders merge
/// deterministically at any fan-in).
template <typename T, typename Less>
class ExternalSorter {
 public:
  /// `scratch` receives runs; `output` receives the final sorted stream.
  /// They may be distinct pagers (distinct devices) or the same pager.
  /// Budgets below 4 pages are clamped up (the merge needs at least two
  /// input blocks and one output block; see RunLayout for the shared
  /// sizing arithmetic). When `arbiter` is given, the sorter acquires its
  /// budget as a tracked grant — shrunk to what the arbiter has left —
  /// and reports its run-buffer usage against it.
  /// With `prefetch` enabled, the merge phase double-buffers every run
  /// reader (block N+1 fetches in the background while block N drains);
  /// results and modeled I/O are identical either way.
  ExternalSorter(size_t memory_bytes, Pager* scratch, Less less = Less(),
                 MemoryArbiter* arbiter = nullptr,
                 const PrefetchContext& prefetch = PrefetchContext(),
                 const SortConfig& config = SortConfig())
      : scratch_(scratch),
        less_(less),
        prefetch_(prefetch),
        config_(EffectiveSortConfig(config)) {
    if (arbiter != nullptr) {
      grant_ = arbiter->AcquireShrinkable(grants::kSortRuns, memory_bytes,
                                          RunLayout::kMinSortMemoryBytes);
      memory_bytes = grant_.bytes();
    }
    layout_ = RunLayout::For(memory_bytes, sizeof(T));
  }

  /// Sorts `input` and writes the result to `output`'s end; returns the
  /// sorted range.
  Result<StreamRange> Sort(const StreamRange& input, Pager* output) {
    stats_ = SortStats();
    std::vector<StreamRange> runs;
    SJ_RETURN_IF_ERROR(FormRuns(input, &runs));
    stats_.runs = static_cast<uint32_t>(runs.size());
    if (runs.empty()) {
      return StreamRange{output, output->Allocate(0), 0};
    }
    const RunLayout::MergePlan plan =
        layout_.PlanMerge(runs.size(), config_.merge_fan_in);
    if (runs.size() > 1) {
      stats_.merge_fan_in = static_cast<uint32_t>(plan.fan_in);
      stats_.merge_passes = plan.passes;
    }
    // Merge passes until a single run remains; the final pass targets
    // `output`.
    while (runs.size() > 1) {
      std::vector<StreamRange> next;
      for (size_t i = 0; i < runs.size(); i += plan.fan_in) {
        const size_t k = std::min(plan.fan_in, runs.size() - i);
        std::vector<StreamRange> group(runs.begin() + i, runs.begin() + i + k);
        const bool last_pass = runs.size() <= plan.fan_in;
        Pager* target = last_pass ? output : scratch_;
        SJ_ASSIGN_OR_RETURN(StreamRange merged,
                            MergeRuns(group, target, plan));
        next.push_back(merged);
      }
      runs = std::move(next);
    }
    if (runs.size() == 1 && runs[0].pager != output) {
      // Single run formed directly in scratch: copy it to output so the
      // caller owns a range in the pager it asked for.
      SJ_ASSIGN_OR_RETURN(StreamRange copied, CopyRun(runs[0], output));
      return copied;
    }
    return runs[0];
  }

  /// Number of runs the merge phase can combine at once: one input block
  /// per run plus one output block must fit in memory.
  size_t MaxFanIn() const { return layout_.fan_in; }

  /// Pages per merge-reader block (derived from the memory budget).
  uint32_t merge_block_pages() const { return layout_.block_pages; }

  /// Records per in-memory sorted run (the budget minus one open
  /// streaming block, shared with ExternalPriorityQueue via RunLayout).
  uint64_t RunCapacity() const { return layout_.run_records; }

  /// What the last Sort()/FormRuns() did.
  const SortStats& stats() const { return stats_; }

  /// Phase 1 only: forms sorted runs in the scratch pager. Exposed so SSSJ
  /// can fuse the final merge with its plane sweep (see MergingReader).
  Status FormRuns(const StreamRange& input, std::vector<StreamRange>* runs) {
    const uint64_t cap = RunCapacity();
    // The chunk buffer reserves min(cap, count) records up front and the
    // run writer holds one write block next to it: report the reserved
    // footprint, not the transient fill level (a short final chunk still
    // owns its full reservation).
    grant_.NoteUsage(std::min<uint64_t>(cap, input.count) * sizeof(T) +
                     uint64_t{layout_.write_block_pages} * kPageSize);
    const uint64_t units = (input.count + cap - 1) / cap;
    if (units >= 2 && FormationThreads() >= 2) {
      return FormRunsParallel(input, units, runs);
    }
    return FormRunsSerial(input, runs);
  }

 private:
  static constexpr uint32_t kRecordsPerPage = StreamWriter<T>::kRecordsPerPage;

  uint32_t FormationThreads() const {
    if (!config_.parallel_runs) return 1;
    return std::max<uint32_t>(1, config_.threads);
  }

  WriteBehindContext WriteBehindOf() const {
    WriteBehindContext wb;
    wb.enabled = config_.write_behind;
    wb.pool = config_.pool;
    return wb;
  }

  /// Pages a run of `count` records occupies: the serial writer flushes in
  /// write_block_pages-sized blocks, every one full except the last.
  uint64_t RunPages(uint64_t count) const {
    const uint64_t per_block =
        uint64_t{layout_.write_block_pages} * kRecordsPerPage;
    const uint64_t full = count / per_block;
    const uint64_t rem = count % per_block;
    return full * layout_.write_block_pages +
           (rem + kRecordsPerPage - 1) / kRecordsPerPage;
  }

  Status FormRunsSerial(const StreamRange& input,
                        std::vector<StreamRange>* runs) {
    StreamReader<T> reader(input.pager, input.first_page, input.count);
    const uint64_t cap = RunCapacity();
    std::vector<T> chunk;
    chunk.reserve(std::min<uint64_t>(cap, input.count));
    while (true) {
      std::optional<T> rec = reader.Next();
      if (rec.has_value()) chunk.push_back(*rec);
      if ((!rec.has_value() && !chunk.empty()) || chunk.size() >= cap) {
        std::sort(chunk.begin(), chunk.end(), less_);
        StreamWriter<T> writer(scratch_, layout_.write_block_pages,
                               WriteBehindOf());
        const PageId first = writer.first_page();
        for (const T& t : chunk) writer.Append(t);
        SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
        runs->push_back(StreamRange{scratch_, first, n});
        chunk.clear();
      }
      if (!rec.has_value()) break;
    }
    return Status::OK();
  }

  /// One run formed off the coordinator thread.
  struct FormationUnit {
    uint64_t first_record = 0;
    uint64_t count = 0;
    PageId out_first = 0;
    double read_wall = 0.0;
    double write_wall = 0.0;
  };

  Status FormRunsParallel(const StreamRange& input, uint64_t units,
                          std::vector<StreamRange>* runs) {
    const uint64_t cap = RunCapacity();
    std::vector<FormationUnit> plan(units);
    for (uint64_t u = 0; u < units; ++u) {
      plan[u].first_record = u * cap;
      plan[u].count = std::min<uint64_t>(cap, input.count - u * cap);
      // Pre-allocating every run's extent in unit order reproduces the
      // serial pager layout exactly (serial flushes allocate
      // consecutively), so downstream page ids are thread-count
      // independent.
      plan[u].out_first = scratch_->Allocate(
          static_cast<uint32_t>(RunPages(plan[u].count)));
    }
    SJ_RETURN_IF_ERROR(ParallelFor(
        config_.pool, FormationThreads(), units,
        [&](uint64_t u) { return FormOneRun(input, &plan[u]); }));
    ReplayFormationCharges(input, plan);
    for (const FormationUnit& u : plan) {
      runs->push_back(StreamRange{scratch_, u.out_first, u.count});
    }
    stats_.parallel_units = static_cast<uint32_t>(units);
    return Status::OK();
  }

  /// Worker body: reads the unit's records through the raw backend
  /// (uncharged, wall-timed), sorts them, and writes the run's pages into
  /// its pre-allocated extent with exactly the page images a serial
  /// StreamWriter would produce (records at slot offsets, zeroed
  /// page-tail slack, zeroed tail after the last record).
  Status FormOneRun(const StreamRange& input, FormationUnit* unit) {
    std::vector<T> chunk;
    chunk.reserve(unit->count);
    const uint64_t first_page = unit->first_record / kRecordsPerPage;
    const uint64_t last_page =
        (unit->first_record + unit->count - 1) / kRecordsPerPage;
    std::vector<uint8_t> buf(size_t{kStreamBlockPages} * kPageSize);
    StorageBackend* in = input.pager->backend();
    uint64_t rec = unit->first_record;
    const uint64_t end = unit->first_record + unit->count;
    for (uint64_t p = first_page; p <= last_page; p += kStreamBlockPages) {
      const uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(kStreamBlockPages, last_page - p + 1));
      WallTimer read_wall;
      for (uint32_t i = 0; i < n; ++i) {
        SJ_RETURN_IF_ERROR(in->ReadPage(
            static_cast<PageId>(input.first_page + p + i),
            buf.data() + size_t{i} * kPageSize));
      }
      unit->read_wall += read_wall.Elapsed();
      // Records within a page are contiguous slots, so each page's span
      // copies in one shot.
      while (rec < end && rec / kRecordsPerPage < p + n) {
        const uint64_t page = rec / kRecordsPerPage;
        const uint32_t slot = static_cast<uint32_t>(rec % kRecordsPerPage);
        const uint64_t page_end =
            std::min<uint64_t>(end, (page + 1) * kRecordsPerPage);
        const size_t take = static_cast<size_t>(page_end - rec);
        const size_t at = chunk.size();
        chunk.resize(at + take);
        std::memcpy(chunk.data() + at,
                    buf.data() + (page - p) * kPageSize + slot * sizeof(T),
                    take * sizeof(T));
        rec = page_end;
      }
    }
    std::sort(chunk.begin(), chunk.end(), less_);

    const uint64_t per_block =
        uint64_t{layout_.write_block_pages} * kRecordsPerPage;
    std::vector<uint8_t> out(size_t{layout_.write_block_pages} * kPageSize, 0);
    StorageBackend* sb = scratch_->backend();
    uint64_t written = 0;
    uint64_t page_off = 0;
    while (written < chunk.size()) {
      const uint64_t take =
          std::min<uint64_t>(per_block, chunk.size() - written);
      const uint32_t npages = static_cast<uint32_t>(
          (take + kRecordsPerPage - 1) / kRecordsPerPage);
      for (uint32_t pib = 0; pib < npages; ++pib) {
        const uint64_t first = uint64_t{pib} * kRecordsPerPage;
        const size_t in_page = static_cast<size_t>(
            std::min<uint64_t>(kRecordsPerPage, take - first));
        std::memcpy(out.data() + pib * kPageSize,
                    chunk.data() + written + first, in_page * sizeof(T));
      }
      const uint64_t used_last = take - uint64_t{npages - 1} * kRecordsPerPage;
      std::memset(out.data() + (npages - 1) * kPageSize +
                      used_last * sizeof(T),
                  0, kPageSize - used_last * sizeof(T));
      WallTimer write_wall;
      for (uint32_t i = 0; i < npages; ++i) {
        SJ_RETURN_IF_ERROR(sb->WritePage(
            static_cast<PageId>(unit->out_first + page_off + i),
            out.data() + size_t{i} * kPageSize));
      }
      unit->write_wall += write_wall.Elapsed();
      page_off += npages;
      written += take;
    }
    return Status::OK();
  }

  /// Replays the serial modeled-charge sequence on the coordinator after
  /// the workers moved the bytes, in the exact order the serial pipeline
  /// issues it: the input StreamReader charges a 64-page block whenever
  /// the next record is beyond the buffered range, so each unit first
  /// charges the read blocks needed to cover its records, then its run's
  /// flush-block writes. Replaying in that interleaving (not merely the
  /// same multiset of requests) keeps io_seconds bit-identical to the
  /// serial sum — floating-point accumulation is order-sensitive even
  /// when every individual charge matches.
  void ReplayFormationCharges(const StreamRange& input,
                              const std::vector<FormationUnit>& units) {
    const uint64_t total_pages =
        (input.count + kRecordsPerPage - 1) / kRecordsPerPage;
    // Records covered by charged read blocks so far (block boundaries do
    // not align with unit boundaries; a straddling block is charged when
    // its first record is needed, exactly like the serial reader).
    uint64_t covered = 0;
    uint64_t read_page_off = 0;
    const uint64_t per_write_block =
        uint64_t{layout_.write_block_pages} * kRecordsPerPage;
    double read_wall = 0.0;
    double write_wall = 0.0;
    for (const FormationUnit& u : units) {
      const uint64_t unit_end = u.first_record + u.count;
      while (covered < unit_end) {
        const uint32_t npages = static_cast<uint32_t>(std::min<uint64_t>(
            kStreamBlockPages, total_pages - read_page_off));
        input.pager->ChargeRead(
            static_cast<PageId>(input.first_page + read_page_off), npages);
        read_page_off += npages;
        covered = std::min<uint64_t>(
            input.count, read_page_off * uint64_t{kRecordsPerPage});
      }
      uint64_t written = 0;
      uint64_t poff = 0;
      while (written < u.count) {
        const uint64_t take =
            std::min<uint64_t>(per_write_block, u.count - written);
        const uint32_t npages = static_cast<uint32_t>(
            (take + kRecordsPerPage - 1) / kRecordsPerPage);
        scratch_->ChargeWrite(static_cast<PageId>(u.out_first + poff),
                              npages);
        poff += npages;
        written += take;
      }
      read_wall += u.read_wall;
      write_wall += u.write_wall;
    }
    input.pager->disk()->AddIoWall(read_wall);
    scratch_->disk()->AddIoWall(write_wall);
  }

  Result<StreamRange> MergeRuns(const std::vector<StreamRange>& runs,
                                Pager* output,
                                const RunLayout::MergePlan& plan) {
    std::vector<std::unique_ptr<PrefetchingStreamReader<T>>> readers;
    readers.reserve(runs.size());
    // Prefetch double-buffers every run reader; write-behind
    // double-buffers the output writer.
    grant_.NoteUsage(runs.size() * (prefetch_.enabled ? 2 : 1) *
                         uint64_t{plan.read_block_pages} * kPageSize +
                     (config_.write_behind ? 2 : 1) *
                         uint64_t{layout_.write_block_pages} * kPageSize);
    std::vector<std::optional<T>> heads;
    heads.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      readers.push_back(std::make_unique<PrefetchingStreamReader<T>>(
          runs[i].pager, runs[i].first_page, runs[i].count, prefetch_,
          plan.read_block_pages));
      heads.push_back(readers[i]->Next());
    }
    MergeSelector<T, Less> selector(std::move(heads), less_,
                                    config_.merge_structure);
    StreamWriter<T> writer(output, layout_.write_block_pages,
                           WriteBehindOf());
    const PageId first = writer.first_page();
    while (!selector.Empty()) {
      const size_t source = selector.TopSource();
      writer.Append(selector.Top());
      selector.ReplaceTop(readers[source]->Next());
    }
    SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
    return StreamRange{output, first, n};
  }

  /// Block-level page copy for the single-run-in-scratch case. A finished
  /// run's pages are exactly the images a fresh StreamWriter would
  /// produce for the same records (contiguous slots, zeroed tails), so
  /// copying pages wholesale replaces the old record-at-a-time
  /// read/append cycle without changing a byte of output.
  Result<StreamRange> CopyRun(const StreamRange& run, Pager* output) {
    const uint64_t total_pages =
        (run.count + kRecordsPerPage - 1) / kRecordsPerPage;
    const PageId first = output->Allocate(static_cast<uint32_t>(total_pages));
    std::vector<uint8_t> buf(size_t{layout_.write_block_pages} * kPageSize);
    uint64_t off = 0;
    while (off < total_pages) {
      const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(
          layout_.write_block_pages, total_pages - off));
      SJ_RETURN_IF_ERROR(run.pager->ReadRun(
          static_cast<PageId>(run.first_page + off), n, buf.data()));
      SJ_RETURN_IF_ERROR(
          output->WriteRun(static_cast<PageId>(first + off), n, buf.data()));
      off += n;
    }
    return StreamRange{output, first, run.count};
  }

  Pager* scratch_;
  Less less_;
  PrefetchContext prefetch_;
  SortConfig config_;
  RunLayout layout_;
  MemoryGrant grant_;
  SortStats stats_;
};

/// Pull-based k-way merge over sorted runs: yields records in sorted order
/// via Next() without materializing the merged stream.
///
/// SSSJ's fuse_merge_sweep option plugs this directly into the plane
/// sweep, eliminating one write pass and one read pass per input relative
/// to the paper's materializing implementation. Selection runs on the
/// same stable loser tree as the materializing merge (or the heap
/// baseline when asked).
template <typename T, typename Less>
class MergingReader {
 public:
  MergingReader(std::vector<StreamRange> runs, uint32_t block_pages,
                Less less = Less(),
                const PrefetchContext& prefetch = PrefetchContext(),
                MergeStructure structure = MergeStructure::kLoserTree) {
    readers_.reserve(runs.size());
    std::vector<std::optional<T>> heads;
    heads.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      readers_.push_back(std::make_unique<PrefetchingStreamReader<T>>(
          runs[i].pager, runs[i].first_page, runs[i].count, prefetch,
          block_pages));
      heads.push_back(readers_[i]->Next());
    }
    selector_.emplace(std::move(heads), less, structure);
  }

  std::optional<T> Next() {
    if (selector_->Empty()) return std::nullopt;
    const size_t source = selector_->TopSource();
    T out = selector_->Top();
    selector_->ReplaceTop(readers_[source]->Next());
    return out;
  }

 private:
  std::vector<std::unique_ptr<PrefetchingStreamReader<T>>> readers_;
  std::optional<MergeSelector<T, Less>> selector_;
};

/// Convenience: sorts RectF records by lower y coordinate (the sweep
/// order). With an arbiter, the sort memory is a tracked grant; `config`
/// carries the parallel-runs / write-behind / fan-in knobs and `stats`
/// (when set) receives what the sort did.
inline Result<StreamRange> SortRectsByYLo(
    const StreamRange& input, Pager* scratch, Pager* output,
    size_t memory_bytes, MemoryArbiter* arbiter = nullptr,
    const PrefetchContext& prefetch = PrefetchContext(),
    const SortConfig& config = SortConfig(), SortStats* stats = nullptr) {
  ExternalSorter<RectF, OrderByYLo> sorter(memory_bytes, scratch,
                                           OrderByYLo(), arbiter, prefetch,
                                           config);
  Result<StreamRange> out = sorter.Sort(input, output);
  if (stats != nullptr) stats->Fold(sorter.stats());
  return out;
}

}  // namespace sj

#endif  // USJ_SORT_EXTERNAL_SORT_H_
