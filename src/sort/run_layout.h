#ifndef USJ_SORT_RUN_LAYOUT_H_
#define USJ_SORT_RUN_LAYOUT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "io/stream.h"

namespace sj {

/// The one place that turns a memory budget into run-formation sizes, for
/// both external components that form sorted runs: ExternalSorter (run
/// chunks + merge fan-in) and ExternalPriorityQueue (heap capacity + spill
/// cursors).
///
/// Historically the two copied this arithmetic and diverged by one
/// streaming block: the sorter sized its in-memory runs to the *full*
/// budget even though a streaming buffer (one block) is always open next
/// to the run being formed or the heap being spilled, while the PQ sized
/// its heap to the full budget and then paid its cursor blocks on top.
/// RunLayout reserves one open streaming block out of the budget before
/// dividing the rest into records, so a full run (or heap) plus its open
/// writer stays within the grant. (The PQ's *read* side still accumulates
/// one cursor block per open spilled run beyond the first — bounded by
/// the run count and reported through MemoryBytes()/NoteUsage, not
/// hidden.)
struct RunLayout {
  /// The effective budget (never below kMinSortMemoryBytes).
  size_t memory_bytes = 0;
  /// Pages per streaming block: merge readers, the PQ's spill writers and
  /// run cursors. Small so many runs fit in the budget; grows with
  /// plentiful memory to amortize positioning costs.
  uint32_t block_pages = 1;
  /// Pages per run-formation write block (larger than block_pages — only
  /// one run writer is open at a time — but still within the budget).
  uint32_t write_block_pages = 1;
  /// Records per in-memory sorted run / heap spill threshold.
  uint64_t run_records = 0;
  /// Runs a merge can combine at once: one input block per run plus one
  /// output block must fit in the budget.
  size_t fan_in = 2;

  /// Sorting needs at least two merge input blocks and one output block.
  static constexpr size_t kMinSortMemoryBytes = kPageSize * 4;
  /// Progress floor: a run of fewer records than this never pays off.
  static constexpr uint64_t kMinRunRecords = 64;

  /// How one merge phase runs: the fan-in and the per-run read block it
  /// supports under the budget. Produced by PlanMerge from the run count.
  struct MergePlan {
    /// Runs merged per group.
    size_t fan_in = 2;
    /// Pages per merge-reader block at that width (>= block_pages; grows
    /// when a narrower fan-in leaves budget on the table).
    uint32_t read_block_pages = 1;
    /// Total passes over the data until one run remains.
    uint32_t passes = 0;
  };

  /// Passes a fan-in-F merge needs to reduce `runs` runs to one.
  static uint32_t MergePasses(uint64_t runs, size_t fan_in) {
    uint32_t passes = 0;
    while (runs > 1) {
      runs = (runs + fan_in - 1) / fan_in;
      passes++;
    }
    return passes;
  }

  /// Balances merge-pass count against per-run block size under the
  /// budget. `requested_fan_in == 0` picks the *smallest* fan-in that
  /// does not add a pass over merging at the maximum width — a narrower
  /// merge reads the same pages in fewer, larger blocks (fewer random
  /// positionings) and keeps fewer streams live; explicit requests are
  /// clamped to [2, fan_in]. Whatever budget the chosen width leaves
  /// (after one read block per run and one output write block) grows the
  /// read block, never below the layout's floor.
  ///
  /// The plan depends only on the budget and the run count — never on
  /// thread count, prefetch, or write-behind. That invariance IS the
  /// determinism contract: enabling prefetch or write-behind must leave
  /// the request pattern (and so modeled io_seconds) untouched, so their
  /// doubled buffers ride on top of the planned blocks as bounded,
  /// NoteUsage-reported overshoot (the same treatment as the PQ's extra
  /// spill cursors) instead of reshaping the read blocks.
  MergePlan PlanMerge(size_t runs, uint32_t requested_fan_in) const {
    MergePlan plan;
    plan.read_block_pages = block_pages;
    const size_t max_fan = std::max<size_t>(2, fan_in);
    if (runs <= 1) {
      plan.fan_in = max_fan;
      return plan;
    }
    if (requested_fan_in > 0) {
      plan.fan_in = std::clamp<size_t>(requested_fan_in, 2, max_fan);
    } else {
      plan.fan_in = max_fan;
      const uint32_t best = MergePasses(runs, max_fan);
      for (size_t f = 2; f < max_fan; ++f) {
        if (MergePasses(runs, f) == best) {
          plan.fan_in = f;
          break;
        }
      }
    }
    plan.passes = MergePasses(runs, plan.fan_in);
    const size_t total_pages = memory_bytes / kPageSize;
    const size_t reader_pages = total_pages > write_block_pages
                                    ? total_pages - write_block_pages
                                    : 0;
    const size_t per_run = reader_pages / plan.fan_in;
    plan.read_block_pages = static_cast<uint32_t>(std::clamp<size_t>(
        per_run, block_pages, kStreamBlockPages));
    return plan;
  }

  static RunLayout For(size_t memory_bytes, size_t record_size) {
    RunLayout layout;
    layout.memory_bytes = std::max(memory_bytes, kMinSortMemoryBytes);
    layout.block_pages = static_cast<uint32_t>(std::clamp<size_t>(
        layout.memory_bytes / kPageSize / 32, 1, kStreamBlockPages / 8));
    layout.write_block_pages = static_cast<uint32_t>(std::clamp<size_t>(
        layout.memory_bytes / kPageSize / 2, 1, kStreamBlockPages));
    // Reserve the largest buffer that is ever open next to a full run:
    // the formation write block (>= the merge read block), so a run
    // chunk plus its open writer stay within the budget.
    const size_t reserve_bytes = layout.write_block_pages * kPageSize;
    const size_t run_bytes =
        layout.memory_bytes > reserve_bytes
            ? layout.memory_bytes - reserve_bytes
            : 0;
    layout.run_records =
        std::max<uint64_t>(kMinRunRecords, run_bytes / record_size);
    const size_t blocks = layout.memory_bytes / (layout.block_pages * kPageSize);
    layout.fan_in = std::max<size_t>(2, blocks > 0 ? blocks - 1 : 0);
    return layout;
  }
};

}  // namespace sj

#endif  // USJ_SORT_RUN_LAYOUT_H_
