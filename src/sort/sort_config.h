#ifndef USJ_SORT_SORT_CONFIG_H_
#define USJ_SORT_SORT_CONFIG_H_

#include <algorithm>
#include <cstdint>

namespace sj {

class ThreadPool;

/// Which selection structure the k-way merges use.
///
///  * kLoserTree  — tournament tree: one leaf-to-root path with exactly
///                  ceil(log2 k) comparisons per record.
///  * kBinaryHeap — the classic pop_heap/push_heap pair (two sifts per
///                  record); kept as the bench baseline.
///
/// Both are stable on (key, source index), so they produce identical
/// output for any comparator — the bench's identical-output assertion
/// checks this, not just the total orders the joins happen to use.
enum class MergeStructure {
  kLoserTree,
  kBinaryHeap,
};

/// How one external sort runs. Derived from JoinOptions at every adoption
/// point (SortConfigOf in join/join_types.h); defaults reproduce a safe
/// standalone sort. None of these knobs changes the sorted output or the
/// modeled io_seconds — they move wall time only (see external_sort.h for
/// the determinism contract).
struct SortConfig {
  /// Form runs as independent units on worker threads. Only engages when
  /// `threads > 1` and the input spans more than one run.
  bool parallel_runs = true;
  /// Worker count for run formation (1 = serial). Mirrors
  /// JoinOptions::num_threads.
  uint32_t threads = 1;
  /// Shared morsel pool; null spawns a private ParallelFor team. Not
  /// owned.
  ThreadPool* pool = nullptr;
  /// Double-buffered run/merge output: the filled block flushes on a
  /// background task while the next block fills. Off by default (costs an
  /// extra write-block buffer per open writer), mirroring
  /// JoinOptions::prefetch.
  bool write_behind = false;
  /// Merge fan-in: 0 lets RunLayout::PlanMerge pick the smallest fan-in
  /// that does not add a merge pass (and grow the per-run read block to
  /// fill the budget); explicit values are clamped to [2, MaxFanIn].
  uint32_t merge_fan_in = 0;
  /// Merge selection structure (bench ladder knob; not exposed on
  /// JoinOptions).
  MergeStructure merge_structure = MergeStructure::kLoserTree;
};

/// True when the sort concurrency escape hatch is engaged, resolved like
/// the sweep-kernel scalar gate:
///  1. builds with -DSJ_SORT_SERIAL_ONLY always report true;
///  2. ForceSortSerialOnly (tests) overrides everything else;
///  3. the SJ_SORT_MODE environment variable ("serial" forces it);
///  4. default: false.
bool SortSerialOnly();

/// Test hook: force (or un-force) the serial-only gate process-wide
/// (no-op under SJ_SORT_SERIAL_ONLY builds). Only call while no sort is
/// in flight; sorters latch their config when constructed.
void ForceSortSerialOnly(bool on);

/// Clears the ForceSortSerialOnly override, back to env/default.
void ResetSortSerialOnly();

/// The config a sorter actually runs: under the serial-only gate the
/// thread-spawning layers (parallel runs, write-behind) are stripped,
/// leaving the bitwise-identical single-threaded pipeline.
inline SortConfig EffectiveSortConfig(SortConfig config) {
  if (SortSerialOnly()) {
    config.parallel_runs = false;
    config.write_behind = false;
    config.threads = 1;
  }
  return config;
}

/// What one external sort did; surfaced through JoinStats (sorts within a
/// join fold together with Fold()).
struct SortStats {
  /// Sorted runs formed (0 for an empty input).
  uint32_t runs = 0;
  /// Runs formed as parallel units (0 = the serial path ran).
  uint32_t parallel_units = 0;
  /// Fan-in the merge phase used (0 when no merge was needed).
  uint32_t merge_fan_in = 0;
  /// Merge passes over the data (0 when a single run sufficed).
  uint32_t merge_passes = 0;

  void Fold(const SortStats& other) {
    runs = std::max(runs, other.runs);
    parallel_units = std::max(parallel_units, other.parallel_units);
    merge_fan_in = std::max(merge_fan_in, other.merge_fan_in);
    merge_passes = std::max(merge_passes, other.merge_passes);
  }
};

}  // namespace sj

#endif  // USJ_SORT_SORT_CONFIG_H_
