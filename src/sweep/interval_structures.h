#ifndef USJ_SWEEP_INTERVAL_STRUCTURES_H_
#define USJ_SWEEP_INTERVAL_STRUCTURES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "util/logging.h"

namespace sj {

/// Which interval structure a sweep uses. The paper's implementations use
/// Forward-Sweep inside PBSM and ST (as the original publications did) and
/// Striped-Sweep — the fastest structure in the SSSJ study [4] — inside
/// SSSJ and PQ.
enum class SweepStructureKind {
  kForward,
  kStriped,
};

inline const char* ToString(SweepStructureKind k) {
  return k == SweepStructureKind::kForward ? "forward" : "striped";
}

/// Forward-Sweep interval structure (Brinkhoff et al. / Patel & DeWitt).
///
/// The active set is a single array. A query walks the whole array,
/// compacting away rectangles the sweep line has passed (yhi < sweep y)
/// and reporting x-overlaps. Insertion is an append. Simple and cache
/// friendly, but every query pays for the full active set.
class ForwardSweep {
 public:
  /// `extent` is unused (the structure is extent-agnostic); the parameter
  /// exists so both structures construct uniformly.
  ForwardSweep(const RectF& extent, uint32_t strips) {
    (void)extent;
    (void)strips;
  }
  ForwardSweep() : ForwardSweep(RectF(), 0) {}

  void Insert(const RectF& r) {
    active_.push_back(r);
    inserts_since_purge_++;
    // Amortized self-purge: queries against this structure expire entries,
    // but a long one-sided stretch of input (e.g. a region covered by only
    // one relation) would otherwise let passed rectangles pile up.
    if (inserts_since_purge_ > active_.size() / 2 + 64) {
      size_t keep = 0;
      for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].yhi < r.ylo) continue;
        active_[keep++] = active_[i];
      }
      active_.resize(keep);
      inserts_since_purge_ = 0;
    }
  }

  /// Reports every active rectangle whose x-interval overlaps `q` to
  /// `emit(const RectF&)`, expiring rectangles with yhi < q.ylo along the
  /// way. `q.ylo` is the current sweep-line position.
  template <typename Emit>
  void QueryAndExpire(const RectF& q, Emit&& emit) {
    size_t keep = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
      const RectF& r = active_[i];
      if (r.yhi < q.ylo) continue;  // Expired: drop by not keeping.
      if (keep != i) active_[keep] = r;
      if (r.IntersectsX(q)) emit(active_[keep]);
      keep++;
    }
    active_.resize(keep);
  }

  size_t ActiveCount() const { return active_.size(); }
  size_t MemoryBytes() const { return active_.size() * sizeof(RectF); }

 private:
  std::vector<RectF> active_;
  size_t inserts_since_purge_ = 0;
};

/// Striped-Sweep interval structure (Arge et al. [4]).
///
/// The x-extent is divided into equal-width strips; an active rectangle is
/// stored in every strip its x-interval overlaps, and a query scans only
/// the strips the query rectangle overlaps. Each overlapping pair is
/// reported exactly once: in the strip containing the left endpoint of the
/// x-overlap region. On the paper's data this is 2-5x faster than
/// Forward-Sweep because queries touch a small fraction of the active set.
class StripedSweep {
 public:
  /// `extent` must span all x-coordinates that will be inserted or
  /// queried; values outside are clamped to the boundary strips.
  StripedSweep(const RectF& extent, uint32_t strips)
      : xlo_(extent.xlo),
        xhi_(extent.xhi),
        strips_(std::max<uint32_t>(1, strips)) {
    width_ = (xhi_ - xlo_) / static_cast<float>(strips_);
    if (!(width_ > 0.0f)) {
      strips_ = 1;
      width_ = 1.0f;
    }
    lists_.resize(strips_);
  }

  void Insert(const RectF& r) {
    const uint32_t s0 = StripIndex(r.xlo);
    const uint32_t s1 = StripIndex(r.xhi);
    for (uint32_t s = s0; s <= s1; ++s) lists_[s].push_back(r);
    entries_ += s1 - s0 + 1;
    inserts_since_purge_++;
    // Amortized cleanup: strips a sweep never queries again would
    // otherwise retain expired rectangles forever.
    if (inserts_since_purge_ > entries_ / 2 + 64) Purge(r.ylo);
  }

  template <typename Emit>
  void QueryAndExpire(const RectF& q, Emit&& emit) {
    const uint32_t s0 = StripIndex(q.xlo);
    const uint32_t s1 = StripIndex(q.xhi);
    for (uint32_t s = s0; s <= s1; ++s) {
      std::vector<RectF>& list = lists_[s];
      size_t keep = 0;
      for (size_t i = 0; i < list.size(); ++i) {
        const RectF r = list[i];
        if (r.yhi < q.ylo) continue;  // Expired.
        if (keep != i) list[keep] = r;
        keep++;
        if (!r.IntersectsX(q)) continue;
        // Dedup: report only in the strip holding the overlap's left edge.
        if (StripIndex(std::max(q.xlo, r.xlo)) == s) emit(r);
      }
      entries_ -= list.size() - keep;
      list.resize(keep);
    }
  }

  size_t ActiveCount() const { return entries_; }
  size_t MemoryBytes() const { return entries_ * sizeof(RectF); }

 private:
  uint32_t StripIndex(float x) const {
    const float rel = (x - xlo_) / width_;
    if (!(rel > 0.0f)) return 0;
    const uint32_t s = static_cast<uint32_t>(rel);
    return std::min(s, strips_ - 1);
  }

  void Purge(float y) {
    for (std::vector<RectF>& list : lists_) {
      size_t keep = 0;
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i].yhi < y) continue;
        if (keep != i) list[keep] = list[i];
        keep++;
      }
      entries_ -= list.size() - keep;
      list.resize(keep);
    }
    inserts_since_purge_ = 0;
  }

  float xlo_;
  float xhi_;
  uint32_t strips_;
  float width_;
  std::vector<std::vector<RectF>> lists_;
  size_t entries_ = 0;  // Total stored copies across strips.
  size_t inserts_since_purge_ = 0;
};

}  // namespace sj

#endif  // USJ_SWEEP_INTERVAL_STRUCTURES_H_
