#ifndef USJ_SWEEP_INTERVAL_STRUCTURES_H_
#define USJ_SWEEP_INTERVAL_STRUCTURES_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "sweep/sweep_kernels.h"
#include "util/logging.h"

namespace sj {

/// Which interval structure a sweep uses. The paper's implementations use
/// Forward-Sweep inside PBSM and ST (as the original publications did) and
/// Striped-Sweep — the fastest structure in the SSSJ study [4] — inside
/// SSSJ and PQ.
enum class SweepStructureKind {
  kForward,
  kStriped,
};

inline const char* ToString(SweepStructureKind k) {
  return k == SweepStructureKind::kForward ? "forward" : "striped";
}

/// Forward-Sweep interval structure (Brinkhoff et al. / Patel & DeWitt).
///
/// The active set is stored struct-of-arrays (parallel xlo/ylo/xhi/yhi/id
/// lanes): a query classifies all lanes in one contiguous kernel pass
/// (sweep/sweep_kernels.h — SIMD blocks, or the scalar fallback), then a
/// branch-light compaction drops expired lanes while matches are emitted.
/// Insertion is an append. Simple and cache friendly, but every query
/// pays for the full active set.
///
/// Emit contract: QueryAndExpire reports matches *by value* — the emitted
/// RectF is a lane copy, never a reference into the arrays the compaction
/// is rewriting — and the emit callback must not reenter Insert or
/// QueryAndExpire on this structure.
class ForwardSweep {
 public:
  /// `extent` is unused (the structure is extent-agnostic); the parameter
  /// exists so both structures construct uniformly.
  ForwardSweep(const RectF& extent, uint32_t strips)
      : mode_(ActiveSweepKernelMode()) {
    (void)extent;
    (void)strips;
  }
  ForwardSweep() : ForwardSweep(RectF(), 0) {}

  void Insert(const RectF& r) {
    active_.PushBack(r);
    inserts_since_purge_++;
    // Amortized self-purge: queries against this structure expire entries,
    // but a long one-sided stretch of input (e.g. a region covered by only
    // one relation) would otherwise let passed rectangles pile up. The
    // threshold tracks the live size, so the structure stays within a
    // small constant factor of the truly-active set (pinned by
    // sweep_structures_test's one-sided pile-up regressions).
    if (inserts_since_purge_ > active_.size() / 2 + 64) {
      PurgeExpired(r.ylo);
      inserts_since_purge_ = 0;
    }
  }

  /// Reports every active rectangle whose x-interval overlaps `q` to
  /// `emit(const RectF&)` (a by-value lane copy — see the class emit
  /// contract), expiring rectangles with yhi < q.ylo along the way.
  /// `q.ylo` is the current sweep-line position.
  template <typename Emit>
  void QueryAndExpire(const RectF& q, Emit&& emit) {
    const size_t n = active_.size();
    mask_.resize(n);
    kernels::ClassifySweepLanes(mode_, active_.xlo.data(), active_.xhi.data(),
                                active_.yhi.data(), n, q.xlo, q.xhi, q.ylo,
                                mask_.data());
    size_t keep = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint8_t m = mask_[i];
      if ((m & kernels::kLaneKeep) == 0) continue;  // Expired: drop.
      if (keep != i) active_.MoveLane(i, keep);
      if ((m & kernels::kLaneMatch) != 0) emit(active_.Lane(keep));
      keep++;
    }
    active_.Resize(keep);
    // A query compacts the whole active set, which is exactly what the
    // amortized purge would do — restart its insert counter.
    inserts_since_purge_ = 0;
  }

  size_t ActiveCount() const { return active_.size(); }
  /// Logical footprint in the paper's 20-byte-record units (Table 3's
  /// "Sweep Structure" row) — identical for the scalar and vectorized
  /// kernels by construction.
  size_t MemoryBytes() const { return active_.size() * sizeof(RectF); }
  /// Forward-Sweep has no strips to collapse.
  bool StripsCollapsed() const { return false; }

 private:
  void PurgeExpired(float y) {
    mask_.resize(active_.size());
    kernels::ExpiryKeepMask(mode_, active_.yhi.data(), active_.size(), y,
                            mask_.data());
    active_.CompactKept(mask_.data());
  }

  SweepKernelMode mode_;
  SoaRects active_;
  std::vector<uint8_t> mask_;
  size_t inserts_since_purge_ = 0;
};

/// Striped-Sweep interval structure (Arge et al. [4]).
///
/// The x-extent is divided into equal-width strips; an active rectangle is
/// stored in every strip its x-interval overlaps, and a query scans only
/// the strips the query rectangle overlaps. Each overlapping pair is
/// reported exactly once: in the strip containing the left endpoint of the
/// x-overlap region. On the paper's data this is 2-5x faster than
/// Forward-Sweep because queries touch a small fraction of the active set.
/// Per-strip lists are struct-of-arrays and scanned with the same lane
/// kernels as ForwardSweep; the ForwardSweep emit contract (by-value
/// emission, no reentry) applies here too.
///
/// Striping arithmetic is hardened against degenerate extents: the strip
/// width is computed in double precision (a float-sized extent such as
/// [-3e38, 3e38] used to overflow (xhi-xlo) to +inf, silently landing
/// every rectangle in strip 0 — Forward-Sweep behaviour at Striped-Sweep
/// cost, with no signal), non-finite or zero-width extents collapse to a
/// single strip with StripsCollapsed() raised (surfaced via
/// SweepRunStats::strips_collapsed and JoinStats), and StripIndex clamps
/// before the float-to-integer cast so out-of-range and NaN coordinates
/// deterministically land in a boundary strip instead of invoking UB —
/// the same clamp-before-cast hardening GridHistogram::EstimateCountIn
/// received.
class StripedSweep {
 public:
  /// `extent` must span all x-coordinates that will be inserted or
  /// queried; values outside are clamped to the boundary strips.
  StripedSweep(const RectF& extent, uint32_t strips)
      : mode_(ActiveSweepKernelMode()),
        xlo_(static_cast<double>(extent.xlo)),
        strips_(std::max<uint32_t>(1, strips)) {
    const double span =
        static_cast<double>(extent.xhi) - static_cast<double>(extent.xlo);
    if (!std::isfinite(xlo_) || !std::isfinite(span) || !(span > 0.0)) {
      // Degenerate or non-finite extent: a meaningful striping does not
      // exist. Collapse to one strip (= Forward-Sweep behaviour) and say
      // so, instead of silently degrading.
      collapsed_ = strips_ > 1;
      strips_ = 1;
      xlo_ = 0.0;
      width_ = 1.0;
    } else {
      width_ = span / static_cast<double>(strips_);
    }
    lists_.resize(strips_);
  }

  void Insert(const RectF& r) {
    const uint32_t s0 = StripIndex(r.xlo);
    const uint32_t s1 = std::max(s0, StripIndex(r.xhi));
    for (uint32_t s = s0; s <= s1; ++s) lists_[s].PushBack(r);
    entries_ += s1 - s0 + 1;
    inserts_since_purge_++;
    // Amortized cleanup: strips a sweep never queries again would
    // otherwise retain expired rectangles forever.
    if (inserts_since_purge_ > entries_ / 2 + 64) Purge(r.ylo);
  }

  template <typename Emit>
  void QueryAndExpire(const RectF& q, Emit&& emit) {
    const uint32_t s0 = StripIndex(q.xlo);
    const uint32_t s1 = std::max(s0, StripIndex(q.xhi));
    for (uint32_t s = s0; s <= s1; ++s) {
      SoaRects& list = lists_[s];
      const size_t n = list.size();
      if (n == 0) continue;
      mask_.resize(n);
      kernels::ClassifySweepLanes(mode_, list.xlo.data(), list.xhi.data(),
                                  list.yhi.data(), n, q.xlo, q.xhi, q.ylo,
                                  mask_.data());
      size_t keep = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t m = mask_[i];
        if ((m & kernels::kLaneKeep) == 0) continue;  // Expired.
        if (keep != i) list.MoveLane(i, keep);
        if ((m & kernels::kLaneMatch) != 0 &&
            // Dedup: report only in the strip holding the overlap's left
            // edge.
            StripIndex(std::max(q.xlo, list.xlo[keep])) == s) {
          emit(list.Lane(keep));
        }
        keep++;
      }
      entries_ -= n - keep;
      list.Resize(keep);
    }
  }

  size_t ActiveCount() const { return entries_; }
  /// Logical footprint: stored copies across strips, in 20-byte-record
  /// units (identical for scalar and vectorized kernels).
  size_t MemoryBytes() const { return entries_ * sizeof(RectF); }
  /// True when the requested striping could not be honored (degenerate or
  /// non-finite extent) and the structure fell back to a single strip.
  bool StripsCollapsed() const { return collapsed_; }
  uint32_t strips() const { return strips_; }

 private:
  uint32_t StripIndex(float x) const {
    const double rel = (static_cast<double>(x) - xlo_) / width_;
    // NaN coordinates and everything left of the extent land in strip 0;
    // clamp *before* the integer cast — a huge rel cast straight to
    // uint32_t is UB.
    if (!(rel > 0.0)) return 0;
    if (rel >= static_cast<double>(strips_)) return strips_ - 1;
    return static_cast<uint32_t>(rel);
  }

  void Purge(float y) {
    for (SoaRects& list : lists_) {
      const size_t n = list.size();
      if (n == 0) continue;
      mask_.resize(n);
      kernels::ExpiryKeepMask(mode_, list.yhi.data(), n, y, mask_.data());
      entries_ -= n - list.CompactKept(mask_.data());
    }
    inserts_since_purge_ = 0;
  }

  SweepKernelMode mode_;
  double xlo_;
  uint32_t strips_;
  double width_ = 1.0;
  bool collapsed_ = false;
  std::vector<SoaRects> lists_;
  std::vector<uint8_t> mask_;
  size_t entries_ = 0;  // Total stored copies across strips.
  size_t inserts_since_purge_ = 0;
};

}  // namespace sj

#endif  // USJ_SWEEP_INTERVAL_STRUCTURES_H_
