#ifndef USJ_SWEEP_SWEEP_KERNELS_H_
#define USJ_SWEEP_SWEEP_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace sj {

/// Which implementation the sweep/predicate kernels run.
///
///  * kScalar     — one lane at a time with branches: the reference
///                  implementation, bit-identical to the pre-SoA code.
///  * kVectorized — contiguous-lane SIMD blocks (AVX2 when the CPU has
///                  it, else SSE2 / NEON, else a branch-free portable
///                  loop the compiler can auto-vectorize).
///
/// Both produce identical lane masks for every input, including NaN,
/// infinite and inverted coordinates (IEEE comparison semantics are
/// preserved lane for lane); the scalar-vs-vectorized differential in
/// tests/sweep_kernels_test.cc enforces this.
enum class SweepKernelMode {
  kScalar,
  kVectorized,
};

/// The mode kernels run in, resolved once per process:
///  1. builds with -DSJ_SCALAR_SWEEP_ONLY compile the SIMD paths out and
///     always report kScalar;
///  2. SetSweepKernelMode (tests, benches) overrides everything else;
///  3. the SJ_SWEEP_KERNELS environment variable ("scalar" forces the
///     fallback, anything else is ignored);
///  4. default: kVectorized.
SweepKernelMode ActiveSweepKernelMode();

/// Test/bench hook: force a mode process-wide (no-op under
/// SJ_SCALAR_SWEEP_ONLY, which has no vectorized path to select). Only
/// call while no sweep is in flight; structures latch the mode when
/// constructed.
void SetSweepKernelMode(SweepKernelMode mode);

/// Clears the SetSweepKernelMode override, back to env/default.
void ResetSweepKernelMode();

/// The instruction set the vectorized path uses on this machine:
/// "avx2", "sse2", "neon", "portable", or "scalar-only" for
/// SJ_SCALAR_SWEEP_ONLY builds.
const char* SweepKernelIsa();

namespace kernels {

/// Lane classification bits produced by ClassifySweepLanes.
inline constexpr uint8_t kLaneKeep = 1;   // yhi has not passed the sweep line
inline constexpr uint8_t kLaneMatch = 2;  // kept AND x-intervals overlap

/// Classifies `n` active-set lanes against the query rectangle `q` at
/// sweep position q.ylo:
///
///   out[i] = (yhi[i] < qylo        ? 0 : kLaneKeep)
///          | (kept && xlo[i] <= qxhi && qxlo <= xhi[i] ? kLaneMatch : 0)
///
/// NaN coordinates follow IEEE comparisons exactly as the scalar code
/// did: a NaN yhi never expires, a NaN x endpoint never matches.
void ClassifySweepLanes(SweepKernelMode mode, const float* xlo,
                        const float* xhi, const float* yhi, size_t n,
                        float qxlo, float qxhi, float qylo, uint8_t* out);

/// Expiry-only form: out[i] = (yhi[i] < y) ? 0 : kLaneKeep. Used by the
/// amortized self-purge passes.
void ExpiryKeepMask(SweepKernelMode mode, const float* yhi, size_t n, float y,
                    uint8_t* out);

/// Batched MBR-overlap scan over an xlo-sorted entry list (the ST/BFS
/// node-pairing kernel): tests lanes [0, n) against the query row
/// (qxhi, qylo, qyhi), writing
///
///   out[k] = qylo <= yhi[k] && ylo[k] <= qyhi
///
/// and returning the scan end — the index of the first lane with
/// !(xlo[k] <= qxhi), after which the caller's sorted-input invariant
/// guarantees no further lane can overlap (out[k] is only valid below
/// the returned end). The caller guarantees the full x test's other half
/// (qxlo <= xhi[k]) by construction, exactly as the scalar sweep did.
size_t BatchRectOverlap(SweepKernelMode mode, const float* xlo,
                        const float* ylo, const float* yhi, size_t n,
                        float qxhi, float qylo, float qyhi, uint8_t* out);

}  // namespace kernels

/// Struct-of-arrays rectangle storage: five parallel arrays so the
/// kernels stream contiguous lanes instead of striding over 20-byte
/// records. Logical accounting stays in RectF units (20 bytes/lane) so
/// Table-3 sweep-structure numbers are unchanged.
struct SoaRects {
  std::vector<float> xlo, ylo, xhi, yhi;
  std::vector<ObjectId> id;

  size_t size() const { return id.size(); }
  bool empty() const { return id.empty(); }

  void Clear() {
    xlo.clear();
    ylo.clear();
    xhi.clear();
    yhi.clear();
    id.clear();
  }

  void Reserve(size_t n) {
    xlo.reserve(n);
    ylo.reserve(n);
    xhi.reserve(n);
    yhi.reserve(n);
    id.reserve(n);
  }

  void PushBack(const RectF& r) {
    xlo.push_back(r.xlo);
    ylo.push_back(r.ylo);
    xhi.push_back(r.xhi);
    yhi.push_back(r.yhi);
    id.push_back(r.id);
  }

  /// Reassembles lane `i` as a value — emits never hand out references
  /// into arrays a compaction may be rewriting.
  RectF Lane(size_t i) const {
    return RectF(xlo[i], ylo[i], xhi[i], yhi[i], id[i]);
  }

  void MoveLane(size_t from, size_t to) {
    xlo[to] = xlo[from];
    ylo[to] = ylo[from];
    xhi[to] = xhi[from];
    yhi[to] = yhi[from];
    id[to] = id[from];
  }

  void Resize(size_t n) {
    xlo.resize(n);
    ylo.resize(n);
    xhi.resize(n);
    yhi.resize(n);
    id.resize(n);
  }

  void Assign(const RectF* rects, size_t n) {
    Clear();
    Reserve(n);
    for (size_t i = 0; i < n; ++i) PushBack(rects[i]);
  }

  /// Compacts lanes whose mask byte has kLaneKeep set, preserving order.
  /// Returns the new size.
  size_t CompactKept(const uint8_t* mask) {
    size_t keep = 0;
    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      if ((mask[i] & kernels::kLaneKeep) == 0) continue;
      if (keep != i) MoveLane(i, keep);
      keep++;
    }
    Resize(keep);
    return keep;
  }
};

}  // namespace sj

#endif  // USJ_SWEEP_SWEEP_KERNELS_H_
