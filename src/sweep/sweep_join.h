#ifndef USJ_SWEEP_SWEEP_JOIN_H_
#define USJ_SWEEP_SWEEP_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <optional>

#include "geometry/rect.h"
#include "sweep/interval_structures.h"

namespace sj {

/// Sweep-phase measurements; max_structure_bytes feeds Table 3's "Sweep
/// Structure" row.
struct SweepRunStats {
  uint64_t output_count = 0;
  size_t max_structure_bytes = 0;
  size_t max_active = 0;
  /// True when a StripedSweep fell back to a single strip because its
  /// extent was degenerate or non-finite (see StripedSweep); the join ran
  /// correctly but at Forward-Sweep cost.
  bool strips_collapsed = false;
};

/// The plane-sweep join core shared by SSSJ, PBSM (per partition) and PQ.
///
/// Pulls from two y-sorted rectangle sources (`Next()` returning
/// std::optional<RectF>), advances a horizontal sweep line through the
/// merged sequence, and reports every intersecting pair across the two
/// inputs exactly once via `emit(const RectF& a, const RectF& b)` (first
/// argument always from source A). `Structure` is one of the interval
/// structures in interval_structures.h.
///
/// `probe` is called once per processed rectangle (after the structures
/// are updated); PQ uses it to sample priority-queue memory for Table 3.
template <typename Structure, typename SourceA, typename SourceB,
          typename Emit, typename Probe>
SweepRunStats SweepJoinRun(SourceA& a, SourceB& b, Structure& active_a,
                           Structure& active_b, Emit&& emit, Probe&& probe) {
  SweepRunStats stats;
  std::optional<RectF> ra = a.Next();
  std::optional<RectF> rb = b.Next();
  while (ra.has_value() || rb.has_value()) {
    const bool take_a =
        ra.has_value() && (!rb.has_value() || ra->ylo <= rb->ylo);
    if (take_a) {
      const RectF r = *ra;
      active_b.QueryAndExpire(
          r, [&](const RectF& other) { emit(r, other); stats.output_count++; });
      active_a.Insert(r);
      ra = a.Next();
    } else {
      const RectF r = *rb;
      active_a.QueryAndExpire(
          r, [&](const RectF& other) { emit(other, r); stats.output_count++; });
      active_b.Insert(r);
      rb = b.Next();
    }
    const size_t bytes = active_a.MemoryBytes() + active_b.MemoryBytes();
    stats.max_structure_bytes = std::max(stats.max_structure_bytes, bytes);
    stats.max_active = std::max(stats.max_active,
                                active_a.ActiveCount() + active_b.ActiveCount());
    probe();
  }
  stats.strips_collapsed =
      active_a.StripsCollapsed() || active_b.StripsCollapsed();
  return stats;
}

/// Runtime dispatch over the structure kind, constructing the structures
/// from the sweep extent and strip count.
template <typename SourceA, typename SourceB, typename Emit, typename Probe>
SweepRunStats SweepJoinWithKind(SweepStructureKind kind, const RectF& extent,
                                uint32_t strips, SourceA& a, SourceB& b,
                                Emit&& emit, Probe&& probe) {
  if (kind == SweepStructureKind::kStriped) {
    StripedSweep sa(extent, strips), sb(extent, strips);
    return SweepJoinRun(a, b, sa, sb, emit, probe);
  }
  ForwardSweep sa(extent, strips), sb(extent, strips);
  return SweepJoinRun(a, b, sa, sb, emit, probe);
}

/// Overload without a probe callback.
template <typename SourceA, typename SourceB, typename Emit>
SweepRunStats SweepJoinWithKind(SweepStructureKind kind, const RectF& extent,
                                uint32_t strips, SourceA& a, SourceB& b,
                                Emit&& emit) {
  return SweepJoinWithKind(kind, extent, strips, a, b, emit, [] {});
}

/// An in-memory y-sorted source over a vector (PBSM partitions, tests).
class VectorRectSource {
 public:
  /// `rects` must already be sorted by OrderByYLo and must outlive the
  /// source.
  explicit VectorRectSource(const std::vector<RectF>* rects)
      : rects_(rects) {}

  std::optional<RectF> Next() {
    if (pos_ >= rects_->size()) return std::nullopt;
    return (*rects_)[pos_++];
  }

 private:
  const std::vector<RectF>* rects_;
  size_t pos_ = 0;
};

}  // namespace sj

#endif  // USJ_SWEEP_SWEEP_JOIN_H_
