#include "sweep/sweep_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(SJ_SCALAR_SWEEP_ONLY)
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SJ_KERNELS_X86 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define SJ_KERNELS_NEON 1
#endif
#endif  // !SJ_SCALAR_SWEEP_ONLY

namespace sj {
namespace {

// -1 = no override; otherwise a SweepKernelMode value.
std::atomic<int> g_mode_override{-1};

bool EnvForcesScalar() {
  static const bool forced = [] {
    const char* env = std::getenv("SJ_SWEEP_KERNELS");
    return env != nullptr && std::strcmp(env, "scalar") == 0;
  }();
  return forced;
}

#if defined(SJ_KERNELS_X86)
bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
#else
  return false;
#endif
}
#endif

}  // namespace

SweepKernelMode ActiveSweepKernelMode() {
#if defined(SJ_SCALAR_SWEEP_ONLY)
  return SweepKernelMode::kScalar;
#else
  const int override = g_mode_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<SweepKernelMode>(override);
  if (EnvForcesScalar()) return SweepKernelMode::kScalar;
  return SweepKernelMode::kVectorized;
#endif
}

void SetSweepKernelMode(SweepKernelMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ResetSweepKernelMode() {
  g_mode_override.store(-1, std::memory_order_relaxed);
}

const char* SweepKernelIsa() {
#if defined(SJ_SCALAR_SWEEP_ONLY)
  return "scalar-only";
#elif defined(SJ_KERNELS_X86)
  return CpuHasAvx2() ? "avx2" : "sse2";
#elif defined(SJ_KERNELS_NEON)
  return "neon";
#else
  return "portable";
#endif
}

namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference implementations: one lane at a time, branching exactly
// like the pre-SoA AoS walk did. These are the SJ_SCALAR_SWEEP_ONLY /
// SJ_SWEEP_KERNELS=scalar fallback and the semantics oracle for the
// vectorized paths.
// ---------------------------------------------------------------------------

void ClassifyScalar(const float* xlo, const float* xhi, const float* yhi,
                    size_t n, float qxlo, float qxhi, float qylo,
                    uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    if (yhi[i] < qylo) {
      out[i] = 0;
      continue;
    }
    uint8_t m = kLaneKeep;
    if (xlo[i] <= qxhi && qxlo <= xhi[i]) m |= kLaneMatch;
    out[i] = m;
  }
}

void ExpiryScalar(const float* yhi, size_t n, float y, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = (yhi[i] < y) ? 0 : kLaneKeep;
  }
}

size_t OverlapScalar(const float* xlo, const float* ylo, const float* yhi,
                     size_t n, float qxhi, float qylo, float qyhi,
                     uint8_t* out) {
  size_t k = 0;
  for (; k < n; ++k) {
    if (!(xlo[k] <= qxhi)) break;
    out[k] = (qylo <= yhi[k] && ylo[k] <= qyhi) ? 1 : 0;
  }
  return k;
}

// ---------------------------------------------------------------------------
// Vectorized implementations. Every comparison uses non-signaling IEEE
// semantics with the same truth table as the scalar code (NaN compares
// false), so masks are identical bit for bit.
// ---------------------------------------------------------------------------

#if defined(SJ_KERNELS_X86)

#if defined(__GNUC__) || defined(__clang__)
#define SJ_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define SJ_TARGET_AVX2
#endif

SJ_TARGET_AVX2
void ClassifyAvx2(const float* xlo, const float* xhi, const float* yhi,
                  size_t n, float qxlo, float qxhi, float qylo, uint8_t* out) {
  const __m256 vqxlo = _mm256_set1_ps(qxlo);
  const __m256 vqxhi = _mm256_set1_ps(qxhi);
  const __m256 vqylo = _mm256_set1_ps(qylo);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vyhi = _mm256_loadu_ps(yhi + i);
    const __m256 vxlo = _mm256_loadu_ps(xlo + i);
    const __m256 vxhi = _mm256_loadu_ps(xhi + i);
    const __m256 expired = _mm256_cmp_ps(vyhi, vqylo, _CMP_LT_OQ);
    const __m256 xmatch =
        _mm256_and_ps(_mm256_cmp_ps(vxlo, vqxhi, _CMP_LE_OQ),
                      _mm256_cmp_ps(vqxlo, vxhi, _CMP_LE_OQ));
    const unsigned keep = ~_mm256_movemask_ps(expired) & 0xffu;
    const unsigned match = _mm256_movemask_ps(xmatch) & keep;
    for (unsigned l = 0; l < 8; ++l) {
      out[i + l] = static_cast<uint8_t>(((keep >> l) & 1u) |
                                        (((match >> l) & 1u) << 1));
    }
  }
  ClassifyScalar(xlo + i, xhi + i, yhi + i, n - i, qxlo, qxhi, qylo, out + i);
}

void ClassifySse2(const float* xlo, const float* xhi, const float* yhi,
                  size_t n, float qxlo, float qxhi, float qylo, uint8_t* out) {
  const __m128 vqxlo = _mm_set1_ps(qxlo);
  const __m128 vqxhi = _mm_set1_ps(qxhi);
  const __m128 vqylo = _mm_set1_ps(qylo);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vyhi = _mm_loadu_ps(yhi + i);
    const __m128 vxlo = _mm_loadu_ps(xlo + i);
    const __m128 vxhi = _mm_loadu_ps(xhi + i);
    const __m128 expired = _mm_cmplt_ps(vyhi, vqylo);
    const __m128 xmatch =
        _mm_and_ps(_mm_cmple_ps(vxlo, vqxhi), _mm_cmple_ps(vqxlo, vxhi));
    const unsigned keep = ~_mm_movemask_ps(expired) & 0xfu;
    const unsigned match =
        static_cast<unsigned>(_mm_movemask_ps(xmatch)) & keep;
    for (unsigned l = 0; l < 4; ++l) {
      out[i + l] = static_cast<uint8_t>(((keep >> l) & 1u) |
                                        (((match >> l) & 1u) << 1));
    }
  }
  ClassifyScalar(xlo + i, xhi + i, yhi + i, n - i, qxlo, qxhi, qylo, out + i);
}

SJ_TARGET_AVX2
void ExpiryAvx2(const float* yhi, size_t n, float y, uint8_t* out) {
  const __m256 vy = _mm256_set1_ps(y);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 expired =
        _mm256_cmp_ps(_mm256_loadu_ps(yhi + i), vy, _CMP_LT_OQ);
    const unsigned keep = ~_mm256_movemask_ps(expired) & 0xffu;
    for (unsigned l = 0; l < 8; ++l) {
      out[i + l] = static_cast<uint8_t>((keep >> l) & 1u);
    }
  }
  ExpiryScalar(yhi + i, n - i, y, out + i);
}

void ExpirySse2(const float* yhi, size_t n, float y, uint8_t* out) {
  const __m128 vy = _mm_set1_ps(y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 expired = _mm_cmplt_ps(_mm_loadu_ps(yhi + i), vy);
    const unsigned keep = ~_mm_movemask_ps(expired) & 0xfu;
    for (unsigned l = 0; l < 4; ++l) {
      out[i + l] = static_cast<uint8_t>((keep >> l) & 1u);
    }
  }
  ExpiryScalar(yhi + i, n - i, y, out + i);
}

SJ_TARGET_AVX2
size_t OverlapAvx2(const float* xlo, const float* ylo, const float* yhi,
                   size_t n, float qxhi, float qylo, float qyhi,
                   uint8_t* out) {
  const __m256 vqxhi = _mm256_set1_ps(qxhi);
  const __m256 vqylo = _mm256_set1_ps(qylo);
  const __m256 vqyhi = _mm256_set1_ps(qyhi);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vxlo = _mm256_loadu_ps(xlo + i);
    const __m256 inrun = _mm256_cmp_ps(vxlo, vqxhi, _CMP_LE_OQ);
    const unsigned runbits = static_cast<unsigned>(_mm256_movemask_ps(inrun));
    const __m256 ymatch =
        _mm256_and_ps(_mm256_cmp_ps(vqylo, _mm256_loadu_ps(yhi + i),
                                    _CMP_LE_OQ),
                      _mm256_cmp_ps(_mm256_loadu_ps(ylo + i), vqyhi,
                                    _CMP_LE_OQ));
    const unsigned match = static_cast<unsigned>(_mm256_movemask_ps(ymatch));
    if (runbits == 0xffu) {
      for (unsigned l = 0; l < 8; ++l) {
        out[i + l] = static_cast<uint8_t>((match >> l) & 1u);
      }
      continue;
    }
    // The scan stops at the first lane leaving the x run, exactly like
    // the scalar break (later lanes in the block are never inspected).
    const unsigned stop =
        static_cast<unsigned>(__builtin_ctz(~runbits & 0x1ffu));
    for (unsigned l = 0; l < stop; ++l) {
      out[i + l] = static_cast<uint8_t>((match >> l) & 1u);
    }
    return i + stop;
  }
  return i + OverlapScalar(xlo + i, ylo + i, yhi + i, n - i, qxhi, qylo, qyhi,
                           out + i);
}

size_t OverlapSse2(const float* xlo, const float* ylo, const float* yhi,
                   size_t n, float qxhi, float qylo, float qyhi,
                   uint8_t* out) {
  const __m128 vqxhi = _mm_set1_ps(qxhi);
  const __m128 vqylo = _mm_set1_ps(qylo);
  const __m128 vqyhi = _mm_set1_ps(qyhi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vxlo = _mm_loadu_ps(xlo + i);
    const unsigned runbits =
        static_cast<unsigned>(_mm_movemask_ps(_mm_cmple_ps(vxlo, vqxhi)));
    const __m128 ymatch =
        _mm_and_ps(_mm_cmple_ps(vqylo, _mm_loadu_ps(yhi + i)),
                   _mm_cmple_ps(_mm_loadu_ps(ylo + i), vqyhi));
    const unsigned match = static_cast<unsigned>(_mm_movemask_ps(ymatch));
    if (runbits == 0xfu) {
      for (unsigned l = 0; l < 4; ++l) {
        out[i + l] = static_cast<uint8_t>((match >> l) & 1u);
      }
      continue;
    }
    const unsigned stop =
        static_cast<unsigned>(__builtin_ctz(~runbits & 0x1fu));
    for (unsigned l = 0; l < stop; ++l) {
      out[i + l] = static_cast<uint8_t>((match >> l) & 1u);
    }
    return i + stop;
  }
  return i + OverlapScalar(xlo + i, ylo + i, yhi + i, n - i, qxhi, qylo, qyhi,
                           out + i);
}

#elif defined(SJ_KERNELS_NEON)

void ClassifyNeon(const float* xlo, const float* xhi, const float* yhi,
                  size_t n, float qxlo, float qxhi, float qylo, uint8_t* out) {
  const float32x4_t vqxlo = vdupq_n_f32(qxlo);
  const float32x4_t vqxhi = vdupq_n_f32(qxhi);
  const float32x4_t vqylo = vdupq_n_f32(qylo);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t expired = vcltq_f32(vld1q_f32(yhi + i), vqylo);
    const uint32x4_t keep = vmvnq_u32(expired);
    const uint32x4_t xmatch =
        vandq_u32(vcleq_f32(vld1q_f32(xlo + i), vqxhi),
                  vcleq_f32(vqxlo, vld1q_f32(xhi + i)));
    const uint32x4_t match = vandq_u32(keep, xmatch);
    uint32_t keep_arr[4], match_arr[4];
    vst1q_u32(keep_arr, keep);
    vst1q_u32(match_arr, match);
    for (int l = 0; l < 4; ++l) {
      out[i + l] = static_cast<uint8_t>((keep_arr[l] & 1u) |
                                        ((match_arr[l] & 1u) << 1));
    }
  }
  ClassifyScalar(xlo + i, xhi + i, yhi + i, n - i, qxlo, qxhi, qylo, out + i);
}

void ExpiryNeon(const float* yhi, size_t n, float y, uint8_t* out) {
  const float32x4_t vy = vdupq_n_f32(y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t keep = vmvnq_u32(vcltq_f32(vld1q_f32(yhi + i), vy));
    uint32_t keep_arr[4];
    vst1q_u32(keep_arr, keep);
    for (int l = 0; l < 4; ++l) {
      out[i + l] = static_cast<uint8_t>(keep_arr[l] & 1u);
    }
  }
  ExpiryScalar(yhi + i, n - i, y, out + i);
}

size_t OverlapNeon(const float* xlo, const float* ylo, const float* yhi,
                   size_t n, float qxhi, float qylo, float qyhi,
                   uint8_t* out) {
  const float32x4_t vqxhi = vdupq_n_f32(qxhi);
  const float32x4_t vqylo = vdupq_n_f32(qylo);
  const float32x4_t vqyhi = vdupq_n_f32(qyhi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t inrun = vcleq_f32(vld1q_f32(xlo + i), vqxhi);
    const uint32x4_t ymatch =
        vandq_u32(vcleq_f32(vqylo, vld1q_f32(yhi + i)),
                  vcleq_f32(vld1q_f32(ylo + i), vqyhi));
    uint32_t run_arr[4], match_arr[4];
    vst1q_u32(run_arr, inrun);
    vst1q_u32(match_arr, ymatch);
    for (int l = 0; l < 4; ++l) {
      if (run_arr[l] == 0) return i + static_cast<size_t>(l);
      out[i + l] = static_cast<uint8_t>(match_arr[l] & 1u);
    }
  }
  return i + OverlapScalar(xlo + i, ylo + i, yhi + i, n - i, qxhi, qylo, qyhi,
                           out + i);
}

#elif !defined(SJ_SCALAR_SWEEP_ONLY)

// Portable vector path: branch-free loops the compiler can
// auto-vectorize. Comparison results are 0/1 ints; the arithmetic mask
// assembly avoids the per-lane branches of the scalar reference.

void ClassifyPortable(const float* xlo, const float* xhi, const float* yhi,
                      size_t n, float qxlo, float qxhi, float qylo,
                      uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const int keep = !(yhi[i] < qylo);
    const int match = keep & (xlo[i] <= qxhi) & (qxlo <= xhi[i]);
    out[i] = static_cast<uint8_t>(keep | (match << 1));
  }
}

void ExpiryPortable(const float* yhi, size_t n, float y, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(!(yhi[i] < y));
  }
}

size_t OverlapPortable(const float* xlo, const float* ylo, const float* yhi,
                       size_t n, float qxhi, float qylo, float qyhi,
                       uint8_t* out) {
  size_t k = 0;
  for (; k < n; ++k) {
    if (!(xlo[k] <= qxhi)) break;
    out[k] = static_cast<uint8_t>((qylo <= yhi[k]) & (ylo[k] <= qyhi));
  }
  return k;
}

#endif

}  // namespace

void ClassifySweepLanes(SweepKernelMode mode, const float* xlo,
                        const float* xhi, const float* yhi, size_t n,
                        float qxlo, float qxhi, float qylo, uint8_t* out) {
  if (mode == SweepKernelMode::kScalar) {
    ClassifyScalar(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
    return;
  }
#if defined(SJ_KERNELS_X86)
  if (CpuHasAvx2()) {
    ClassifyAvx2(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
  } else {
    ClassifySse2(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
  }
#elif defined(SJ_KERNELS_NEON)
  ClassifyNeon(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
#elif !defined(SJ_SCALAR_SWEEP_ONLY)
  ClassifyPortable(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
#else
  ClassifyScalar(xlo, xhi, yhi, n, qxlo, qxhi, qylo, out);
#endif
}

void ExpiryKeepMask(SweepKernelMode mode, const float* yhi, size_t n, float y,
                    uint8_t* out) {
  if (mode == SweepKernelMode::kScalar) {
    ExpiryScalar(yhi, n, y, out);
    return;
  }
#if defined(SJ_KERNELS_X86)
  if (CpuHasAvx2()) {
    ExpiryAvx2(yhi, n, y, out);
  } else {
    ExpirySse2(yhi, n, y, out);
  }
#elif defined(SJ_KERNELS_NEON)
  ExpiryNeon(yhi, n, y, out);
#elif !defined(SJ_SCALAR_SWEEP_ONLY)
  ExpiryPortable(yhi, n, y, out);
#else
  ExpiryScalar(yhi, n, y, out);
#endif
}

size_t BatchRectOverlap(SweepKernelMode mode, const float* xlo,
                        const float* ylo, const float* yhi, size_t n,
                        float qxhi, float qylo, float qyhi, uint8_t* out) {
  if (mode == SweepKernelMode::kScalar) {
    return OverlapScalar(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out);
  }
#if defined(SJ_KERNELS_X86)
  return CpuHasAvx2() ? OverlapAvx2(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out)
                      : OverlapSse2(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out);
#elif defined(SJ_KERNELS_NEON)
  return OverlapNeon(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out);
#elif !defined(SJ_SCALAR_SWEEP_ONLY)
  return OverlapPortable(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out);
#else
  return OverlapScalar(xlo, ylo, yhi, n, qxhi, qylo, qyhi, out);
#endif
}

}  // namespace kernels
}  // namespace sj
