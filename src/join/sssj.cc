#include "join/sssj.h"

#include <cmath>
#include <memory>

#include "io/prefetch.h"
#include "join/strip_map.h"
#include "sort/external_sort.h"
#include "sweep/sweep_join.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {
namespace {

/// Adapter: a (prefetching) stream reader as a sweep source.
class StreamSource {
 public:
  StreamSource(const StreamRange& range, const PrefetchContext& prefetch)
      : reader_(range.pager, range.first_page, range.count, prefetch) {}
  std::optional<RectF> Next() { return reader_.Next(); }

 private:
  PrefetchingStreamReader<RectF> reader_;
};

}  // namespace

size_t EstimateSweepBytes(uint64_t records) {
  return static_cast<size_t>(
             16.0 * std::sqrt(static_cast<double>(records)) + 64.0) *
         sizeof(RectF);
}

Result<JoinStats> SSSJJoin(const DatasetRef& a, const DatasetRef& b,
                           DiskModel* disk, const JoinOptions& options,
                           JoinSink* sink, MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);

  // Spill decision before any I/O: size the sweep grant by the paper's
  // square-root rule (Table 3 verifies the active sets stay near sqrt(N)
  // on real data), padded with a safety factor. When even that estimate
  // exceeds what the arbiter can grant, degrade to the paper's
  // single-dimension partitioning fallback with enough strips that one
  // strip's share fits — instead of over-allocating and hoping. Inputs
  // whose active sets defeat the estimate at run time are recorded in
  // the usage high-water marks (and abort a strict arbiter).
  const uint64_t est_sweep_bytes = EstimateSweepBytes(a.count() + b.count());
  {
    MemoryGrant probe = scope->AcquireShrinkable(grants::kSweep,
                                                 est_sweep_bytes,
                                                 /*floor_bytes=*/0);
    if (probe.bytes() < est_sweep_bytes) {
      probe.Release();
      const size_t budget = std::max<size_t>(1, scope->budget());
      const uint32_t strips = static_cast<uint32_t>(std::clamp<uint64_t>(
          (2 * est_sweep_bytes + budget - 1) / budget, 2, 512));
      return SSSJStripJoin(a, b, strips, disk, options, sink, scope.get());
    }
    // Released here so the sort phase gets the whole budget (both
    // sorters at memory/2, also in the fused path where they are alive
    // together); the sweep re-acquires its share once the sorters are
    // gone.
  }

  JoinMeasurement measurement(disk);
  SJ_ASSIGN_OR_RETURN(RectF extent, CombinedExtent(a, b));
  StorageFactory* storage = options.storage.get();
  const PrefetchContext prefetch = PrefetchContextOf(options);
  const SortConfig sort_config = SortConfigOf(options);
  SortStats sort_stats;

  // Per-input scratch devices for runs and sorted output, mirroring the
  // paper's TPIE temporary streams.
  SJ_ASSIGN_OR_RETURN(auto runs_a, MakePager(storage, disk, "sssj.runs.a"));
  SJ_ASSIGN_OR_RETURN(auto runs_b, MakePager(storage, disk, "sssj.runs.b"));

  SweepRunStats sweep_stats;
  auto emit = [sink](const RectF& ra, const RectF& rb) {
    sink->Emit(ra.id, rb.id);
  };

  if (options.fuse_merge_sweep) {
    // Ablation: merge the runs straight into the sweep. Saves one write
    // and one read pass per input. The sorters' run grants are released
    // before the sweep acquires its own; the merge readers keep only
    // their small blocks.
    const size_t half = options.memory_bytes / 2;
    std::vector<StreamRange> ra, rb;
    {
      ExternalSorter<RectF, OrderByYLo> sorter_a(half, runs_a.get(),
                                                 OrderByYLo(), scope.get(),
                                                 prefetch, sort_config);
      ExternalSorter<RectF, OrderByYLo> sorter_b(half, runs_b.get(),
                                                 OrderByYLo(), scope.get(),
                                                 prefetch, sort_config);
      SJ_RETURN_IF_ERROR(sorter_a.FormRuns(a.range, &ra));
      SJ_RETURN_IF_ERROR(sorter_b.FormRuns(b.range, &rb));
      SJ_CHECK(ra.size() <= sorter_a.MaxFanIn() &&
               rb.size() <= sorter_b.MaxFanIn())
          << "fused SSSJ requires a single merge pass";
      sort_stats.Fold(sorter_a.stats());
      sort_stats.Fold(sorter_b.stats());
    }
    MemoryGrant sweep_grant = scope->AcquireShrinkable(
        grants::kSweep, est_sweep_bytes, /*floor_bytes=*/0);
    MergingReader<RectF, OrderByYLo> source_a(std::move(ra),
                                              /*block_pages=*/8, OrderByYLo(),
                                              prefetch,
                                              sort_config.merge_structure);
    MergingReader<RectF, OrderByYLo> source_b(std::move(rb),
                                              /*block_pages=*/8, OrderByYLo(),
                                              prefetch,
                                              sort_config.merge_structure);
    sweep_stats =
        SweepJoinWithKind(options.stream_sweep, extent, options.striped_strips,
                          source_a, source_b, emit);
    sweep_grant.NoteUsage(sweep_stats.max_structure_bytes);
  } else {
    SJ_ASSIGN_OR_RETURN(auto sorted_a,
                        MakePager(storage, disk, "sssj.sorted.a"));
    SJ_ASSIGN_OR_RETURN(auto sorted_b,
                        MakePager(storage, disk, "sssj.sorted.b"));
    SJ_ASSIGN_OR_RETURN(
        StreamRange sa,
        SortRectsByYLo(a.range, runs_a.get(), sorted_a.get(),
                       options.memory_bytes / 2, scope.get(), prefetch,
                       sort_config, &sort_stats));
    SJ_ASSIGN_OR_RETURN(
        StreamRange sb,
        SortRectsByYLo(b.range, runs_b.get(), sorted_b.get(),
                       options.memory_bytes / 2, scope.get(), prefetch,
                       sort_config, &sort_stats));
    MemoryGrant sweep_grant = scope->AcquireShrinkable(
        grants::kSweep, est_sweep_bytes, /*floor_bytes=*/0);
    StreamSource source_a(sa, prefetch), source_b(sb, prefetch);
    sweep_stats =
        SweepJoinWithKind(options.stream_sweep, extent, options.striped_strips,
                          source_a, source_b, emit);
    sweep_grant.NoteUsage(sweep_stats.max_structure_bytes);
  }

  JoinStats stats = measurement.Finish();
  stats.output_count = sweep_stats.output_count;
  stats.max_sweep_bytes = sweep_stats.max_structure_bytes;
  stats.sweep_strips_collapsed = sweep_stats.strips_collapsed;
  stats.FoldSortStats(sort_stats);
  FillMemoryStats(*scope, &stats);
  return stats;
}

namespace {

struct StripFile {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<StreamWriter<RectF>> writer;
  StreamRange range;
};

/// Error-path unwinding: declares every still-open strip writer dead so
/// their destructors do not abort when a sibling operation failed.
void AbandonAll(std::vector<StripFile>* files) {
  for (StripFile& f : *files) {
    if (f.writer != nullptr) f.writer->Abandon();
  }
}

Status DistributeToStrips(const DatasetRef& input, const StripMap& map,
                          std::vector<StripFile>* files) {
  StreamReader<RectF> reader(input.range.pager, input.range.first_page,
                             input.range.count);
  while (std::optional<RectF> r = reader.Next()) {
    const uint32_t s0 = map.StripOf(r->xlo);
    const uint32_t s1 = map.StripOf(r->xhi);
    for (uint32_t s = s0; s <= s1; ++s) (*files)[s].writer->Append(*r);
  }
  // Finish every writer even when one fails (Finish marks the stream
  // finished on error too), then surface the first failure.
  Status first_error = Status::OK();
  for (StripFile& f : *files) {
    const PageId first = f.writer->first_page();
    Result<uint64_t> n = f.writer->Finish();
    if (n.ok()) {
      f.range = StreamRange{f.pager.get(), first, n.value()};
    } else if (first_error.ok()) {
      first_error = n.status();
    }
    f.writer.reset();
  }
  return first_error;
}

}  // namespace

Result<JoinStats> SSSJStripJoin(const DatasetRef& a, const DatasetRef& b,
                                uint32_t strips, DiskModel* disk,
                                const JoinOptions& options, JoinSink* sink,
                                MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  JoinMeasurement measurement(disk);
  SJ_ASSIGN_OR_RETURN(RectF extent, CombinedExtent(a, b));
  const StripMap map(extent, strips);

  // One writer per strip and side stays open during distribution; the
  // 4-page flush blocks shrink when the grant cannot cover all of them.
  MemoryGrant writer_grant = scope->AcquireShrinkable(
      grants::kStripWriters,
      size_t{2} * map.strips() * 4 * kPageSize,
      std::min<size_t>(size_t{2} * map.strips() * kPageSize,
                       scope->budget()));
  const uint32_t writer_block_pages = static_cast<uint32_t>(std::clamp<size_t>(
      writer_grant.bytes() / (size_t{2} * map.strips() * kPageSize), 1, 4));
  writer_grant.NoteUsage(size_t{2} * map.strips() * writer_block_pages *
                         kPageSize);
  StorageFactory* storage = options.storage.get();
  const PrefetchContext prefetch = PrefetchContextOf(options);
  auto make_files = [storage, disk, writer_block_pages](
                        const char* side,
                        uint32_t k) -> Result<std::vector<StripFile>> {
    std::vector<StripFile> files(k);
    for (uint32_t i = 0; i < k; ++i) {
      Result<std::unique_ptr<Pager>> pager = MakePager(
          storage, disk,
          std::string("sssj.strip.") + side + "." + std::to_string(i));
      if (!pager.ok()) {
        AbandonAll(&files);  // Strips 0..i-1 hold open writers.
        return pager.status();
      }
      files[i].pager = std::move(pager).value();
      files[i].writer =
          std::make_unique<StreamWriter<RectF>>(files[i].pager.get(),
                                                writer_block_pages);
    }
    return files;
  };
  SJ_ASSIGN_OR_RETURN(std::vector<StripFile> files_a,
                      make_files("a", map.strips()));
  Result<std::vector<StripFile>> files_b_or = make_files("b", map.strips());
  if (!files_b_or.ok()) {
    AbandonAll(&files_a);
    return files_b_or.status();
  }
  std::vector<StripFile> files_b = std::move(files_b_or).value();
  Status distribute_a = DistributeToStrips(a, map, &files_a);
  if (!distribute_a.ok()) {
    AbandonAll(&files_b);
    return distribute_a;
  }
  SJ_RETURN_IF_ERROR(DistributeToStrips(b, map, &files_b));
  writer_grant.Release();

  // Strips are independent: each one sorts and sweeps against a private
  // DiskModel shard and buffers its pairs in a private sink, merged in
  // strip order below. Output and modeled I/O are therefore identical for
  // every options.num_threads (see the PBSM phase-2 comment).
  struct StripTask {
    std::unique_ptr<DiskModel> disk;
    /// Serial-equivalent memory scope: each strip is one work unit with
    /// the full budget; peaks are folded as a max afterwards.
    std::unique_ptr<MemoryArbiter> memory;
    std::unique_ptr<Pager> pager_a, pager_b;
    StreamRange range_a, range_b;
    CollectingSink sink;
    uint64_t output = 0;
    size_t max_sweep_bytes = 0;
    bool strips_collapsed = false;
    double cpu_seconds = 0;
    SortStats sort_stats;
  };
  // Strips are the parallel unit here: their internal sorts stay
  // single-threaded (nested run-formation fan-out would only contend for
  // the same workers), but the write-behind and fan-in knobs still apply.
  SortConfig strip_sort_config = SortConfigOf(options);
  strip_sort_config.threads = 1;
  // Inline runs (same condition as ParallelFor's) stream pairs straight
  // to the caller's sink in strip order; only pooled runs buffer.
  const bool pooled = options.num_threads > 1 && map.strips() > 1;
  std::vector<StripTask> tasks(map.strips());
  for (uint32_t s = 0; s < map.strips(); ++s) {
    StripTask& t = tasks[s];
    t.disk = std::make_unique<DiskModel>(disk->machine());
    t.memory = std::make_unique<MemoryArbiter>(scope->budget(),
                                               scope->strict());
    t.pager_a = RehomePager(std::move(files_a[s].pager), t.disk.get());
    t.pager_b = RehomePager(std::move(files_b[s].pager), t.disk.get());
    t.range_a = StreamRange{t.pager_a.get(), files_a[s].range.first_page,
                            files_a[s].range.count};
    t.range_b = StreamRange{t.pager_b.get(), files_b[s].range.first_page,
                            files_b[s].range.count};
  }

  SJ_RETURN_IF_ERROR(ParallelFor(
      options.worker_pool, options.num_threads, map.strips(), [&](uint64_t s) -> Status {
        StripTask& t = tasks[s];
        ThreadCpuTimer cpu;
        JoinSink* out = pooled ? static_cast<JoinSink*>(&t.sink) : sink;
        SJ_ASSIGN_OR_RETURN(
            auto scratch,
            MakePager(storage, t.disk.get(), "sssj.strip.scratch"));
        SJ_ASSIGN_OR_RETURN(
            auto sorted,
            MakePager(storage, t.disk.get(), "sssj.strip.sorted"));
        SJ_ASSIGN_OR_RETURN(
            StreamRange sa,
            SortRectsByYLo(t.range_a, scratch.get(), sorted.get(),
                           options.memory_bytes / 2, t.memory.get(),
                           prefetch, strip_sort_config, &t.sort_stats));
        SJ_ASSIGN_OR_RETURN(
            StreamRange sb,
            SortRectsByYLo(t.range_b, scratch.get(), sorted.get(),
                           options.memory_bytes / 2, t.memory.get(),
                           prefetch, strip_sort_config, &t.sort_stats));
        MemoryGrant sweep_grant = t.memory->AcquireShrinkable(
            grants::kSweep,
            EstimateSweepBytes(t.range_a.count + t.range_b.count),
            /*floor_bytes=*/0);
        PrefetchingStreamReader<RectF> reader_a(sa.pager, sa.first_page,
                                                sa.count, prefetch);
        PrefetchingStreamReader<RectF> reader_b(sb.pager, sb.first_page,
                                                sb.count, prefetch);
        auto emit = [&](const RectF& ra, const RectF& rb) {
          // Report only in the strip owning the overlap's left edge.
          if (map.StripOf(std::max(ra.xlo, rb.xlo)) == s) {
            out->Emit(ra.id, rb.id);
            t.output++;
          }
        };
        const SweepRunStats sweep_stats =
            SweepJoinWithKind(options.stream_sweep, extent,
                              options.striped_strips, reader_a, reader_b,
                              emit);
        t.max_sweep_bytes = sweep_stats.max_structure_bytes;
        t.strips_collapsed = sweep_stats.strips_collapsed;
        // A strict arbiter aborts here when the strip's active sets
        // still exceed the grant (the old hard SJ_CHECK); otherwise the
        // overshoot lands in the usage high-water marks.
        sweep_grant.NoteUsage(sweep_stats.max_structure_bytes);
        t.cpu_seconds = cpu.Elapsed();
        return Status::OK();
      }));

  uint64_t output = 0;
  size_t max_sweep = 0;
  bool stats_strips_collapsed = false;
  double worker_cpu = 0;
  DiskStats shard_disk;
  SortStats folded_sort;
  for (const StripTask& t : tasks) {
    folded_sort.Fold(t.sort_stats);
    if (pooled) {
      for (const IdPair& pair : t.sink.pairs()) sink->Emit(pair.a, pair.b);
    }
    output += t.output;
    max_sweep = std::max(max_sweep, t.max_sweep_bytes);
    stats_strips_collapsed = stats_strips_collapsed || t.strips_collapsed;
    worker_cpu += t.cpu_seconds;
    shard_disk += t.disk->stats();
    scope->FoldChild(*t.memory);
  }

  JoinStats stats = measurement.Finish();
  stats.disk += shard_disk;
  if (pooled) stats.host_cpu_seconds += worker_cpu;
  stats.output_count = output;
  stats.max_sweep_bytes = max_sweep;
  stats.sweep_strips_collapsed = stats_strips_collapsed;
  stats.FoldSortStats(folded_sort);
  stats.partitions_total = map.strips();
  FillMemoryStats(*scope, &stats);
  return stats;
}

}  // namespace sj
