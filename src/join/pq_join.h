#ifndef USJ_JOIN_PQ_JOIN_H_
#define USJ_JOIN_PQ_JOIN_H_

#include "io/disk_model.h"
#include "join/join_types.h"
#include "join/sources.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// Priority-Queue-Driven Traversal join (the paper's contribution, §4).
///
/// Both inputs arrive as y-sorted rectangle sources — a sorted stream for
/// non-indexed inputs, an RTreePQSource for indexed ones — and are merged
/// by the same plane sweep SSSJ uses (Striped-Sweep by default). Because
/// the index adapter touches every R-tree node at most once, an unpruned
/// PQ join issues exactly `node_count` page requests per index: the
/// paper's "optimal" number (Table 4).
///
/// `extent` is the sweep domain (union of both inputs' extents);
/// `max_queue_bytes` in the returned stats is the sampled maximum of the
/// adapters' priority queues plus leaf buffers (Table 3).
///
/// Memory governance: the sweep structures and the source queues each
/// hold a grant (half the budget apiece); their sampled maxima are
/// reported as usage, so a strict arbiter aborts when an input defeats
/// the paper's in-memory assumption instead of silently over-allocating.
/// `arbiter` is the query's memory governor; nullptr runs against a
/// private one over the options' budget.
Result<JoinStats> PQJoinSources(SortedRectSource* a, SortedRectSource* b,
                                const RectF& extent, DiskModel* disk,
                                const JoinOptions& options, JoinSink* sink,
                                MemoryArbiter* arbiter = nullptr);

/// Convenience wrapper: index-to-index PQ join.
Result<JoinStats> PQJoin(const RTree& a, const RTree& b, DiskModel* disk,
                         const JoinOptions& options, JoinSink* sink,
                         MemoryArbiter* arbiter = nullptr);

/// Convenience wrapper: index-to-non-indexed PQ join. The stream input is
/// externally sorted first (charged, grant-governed), exactly as SSSJ
/// would.
Result<JoinStats> PQJoinIndexStream(const RTree& a, const DatasetRef& b,
                                    DiskModel* disk,
                                    const JoinOptions& options,
                                    JoinSink* sink,
                                    MemoryArbiter* arbiter = nullptr);

}  // namespace sj

#endif  // USJ_JOIN_PQ_JOIN_H_
