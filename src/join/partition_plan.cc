#include "join/partition_plan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <sstream>

#include "io/stream.h"
#include "util/logging.h"

namespace sj {

std::string PartitionMap::Describe() const {
  std::ostringstream os;
  if (adaptive()) {
    os << "adaptive " << tiles_x() << "x" << tiles_y() << " base, "
       << leaf_tiles() << " leaves (" << split_tiles() << " split)";
  } else {
    os << "fixed " << tiles_x() << "x" << tiles_y();
  }
  os << ", " << partitions() << " partitions";
  return os.str();
}

uint32_t PbsmPartitionCount(uint64_t total_bytes, size_t memory_bytes,
                            double fill) {
  const uint64_t budget = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(memory_bytes) * fill));
  return static_cast<uint32_t>(
      std::max<uint64_t>(1, (total_bytes + budget - 1) / budget));
}

uint32_t PbsmWriterBlockPages(size_t memory_bytes, uint32_t partitions) {
  // 7/8 of the memory budget split across the 2p open partition writers
  // (the rest covers the distribution read block; the planner's
  // histograms are released before distribution starts), clamped to the
  // stream block the sequential passes use.
  return static_cast<uint32_t>(std::clamp<uint64_t>(
      static_cast<uint64_t>(memory_bytes) * 7 / 8 /
          (static_cast<uint64_t>(2) * std::max(1u, partitions) * kPageSize),
      4, kStreamBlockPages));
}

uint32_t AdaptiveBaseTilesPerAxis(uint32_t partitions) {
  // Several times more base tiles than partitions so bin-packing has room
  // to balance; coarse overall because splits refine the hot regions.
  const double tiles = std::ceil(std::sqrt(16.0 * partitions));
  return static_cast<uint32_t>(std::clamp(tiles, 8.0, 64.0));
}

// ---------------------------------------------------------------------------
// FixedGridPartitionMap (Patel & DeWitt round-robin, moved from pbsm.cc).
// ---------------------------------------------------------------------------

FixedGridPartitionMap::FixedGridPartitionMap(const RectF& extent,
                                             uint32_t tiles_per_axis,
                                             uint32_t partitions)
    : extent_(extent),
      tiles_(std::max(1u, tiles_per_axis)),
      partitions_(std::max(1u, partitions)) {
  tile_w_ = (extent.xhi - extent.xlo) / static_cast<float>(tiles_);
  tile_h_ = (extent.yhi - extent.ylo) / static_cast<float>(tiles_);
  if (!(tile_w_ > 0.0f)) tile_w_ = 1.0f;
  if (!(tile_h_ > 0.0f)) tile_h_ = 1.0f;
}

void FixedGridPartitionMap::PartitionsOf(const RectF& r,
                                         std::vector<uint32_t>* out) const {
  out->clear();
  const uint32_t x0 = TileX(r.xlo), x1 = TileX(r.xhi);
  const uint32_t y0 = TileY(r.ylo), y1 = TileY(r.yhi);
  const uint64_t span = static_cast<uint64_t>(x1 - x0 + 1) * (y1 - y0 + 1);
  if (span >= partitions_) {
    // A rectangle covering >= p tiles in a row-major round-robin grid
    // can touch every partition; enumerate them all.
    for (uint32_t p = 0; p < partitions_; ++p) out->push_back(p);
    return;
  }
  for (uint32_t ty = y0; ty <= y1; ++ty) {
    for (uint32_t tx = x0; tx <= x1; ++tx) {
      const uint32_t p = PartitionOfTile(tx, ty);
      if (std::find(out->begin(), out->end(), p) == out->end()) {
        out->push_back(p);
      }
    }
  }
}

uint32_t FixedGridPartitionMap::ReferencePartition(const RectF& r,
                                                   const RectF& s) const {
  const float rx = std::max(r.xlo, s.xlo);
  const float ry = std::max(r.ylo, s.ylo);
  return PartitionOfTile(TileX(rx), TileY(ry));
}

// ---------------------------------------------------------------------------
// AdaptivePartitionMap
// ---------------------------------------------------------------------------

uint32_t AdaptivePartitionMap::LeafForPoint(float x, float y) const {
  uint32_t t = BaseTileY(y) * nx_ + BaseTileX(x);
  while (tiles_[t].child >= 0) {
    const RectF& b = bounds_[t];
    const float mx = 0.5f * (b.xlo + b.xhi);
    const float my = 0.5f * (b.ylo + b.yhi);
    t = static_cast<uint32_t>(tiles_[t].child) + (y >= my ? 2u : 0u) +
        (x >= mx ? 1u : 0u);
  }
  return t;
}

void AdaptivePartitionMap::CollectPartitions(uint32_t tile,
                                             const RectF& bounds,
                                             const RectF& r,
                                             std::vector<uint32_t>* out) const {
  if (tiles_[tile].child < 0) {
    const uint32_t p = tiles_[tile].partition;
    if (std::find(out->begin(), out->end(), p) == out->end()) {
      out->push_back(p);
    }
    return;
  }
  // Quadrant membership uses the same half-open comparisons as the point
  // descent in LeafForPoint (left/lower quadrants own [lo, mid), right/
  // upper own [mid, hi]), so the reference-point tile is always among the
  // tiles either rectangle replicates into.
  const uint32_t child = static_cast<uint32_t>(tiles_[tile].child);
  const float mx = 0.5f * (bounds.xlo + bounds.xhi);
  const float my = 0.5f * (bounds.ylo + bounds.yhi);
  const bool left = r.xlo < mx, right = r.xhi >= mx;
  const bool lower = r.ylo < my, upper = r.yhi >= my;
  if (lower && left) CollectPartitions(child + 0, bounds_[child + 0], r, out);
  if (lower && right) CollectPartitions(child + 1, bounds_[child + 1], r, out);
  if (upper && left) CollectPartitions(child + 2, bounds_[child + 2], r, out);
  if (upper && right) CollectPartitions(child + 3, bounds_[child + 3], r, out);
}

void AdaptivePartitionMap::PartitionsOf(const RectF& r,
                                        std::vector<uint32_t>* out) const {
  out->clear();
  const uint32_t x0 = BaseTileX(r.xlo), x1 = BaseTileX(r.xhi);
  const uint32_t y0 = BaseTileY(r.ylo), y1 = BaseTileY(r.yhi);
  for (uint32_t ty = y0; ty <= y1; ++ty) {
    for (uint32_t tx = x0; tx <= x1; ++tx) {
      const uint32_t t = ty * nx_ + tx;
      CollectPartitions(t, bounds_[t], r, out);
    }
  }
}

uint32_t AdaptivePartitionMap::ReferencePartition(const RectF& r,
                                                  const RectF& s) const {
  const float rx = std::max(r.xlo, s.xlo);
  const float ry = std::max(r.ylo, s.ylo);
  return tiles_[LeafForPoint(rx, ry)].partition;
}

// ---------------------------------------------------------------------------
// PartitionPlanner
// ---------------------------------------------------------------------------

std::unique_ptr<AdaptivePartitionMap> PartitionPlanner::Plan(
    const RectF& extent, const GridHistogram& hist_a,
    const GridHistogram& hist_b, const PartitionPlannerConfig& config) {
  auto map = std::make_unique<AdaptivePartitionMap>();
  map->extent_ = extent;

  const uint64_t total_records = hist_a.total() + hist_b.total();
  const uint32_t rough_partitions =
      PbsmPartitionCount(total_records * sizeof(RectF), config.memory_bytes,
                         config.partition_fill);
  uint32_t base = config.base_tiles_per_axis != 0
                      ? config.base_tiles_per_axis
                      : AdaptiveBaseTilesPerAxis(rough_partitions);
  base = std::clamp(base, 1u, std::max(1u, config.max_resolution));
  map->nx_ = base;
  map->ny_ = base;
  map->tile_w_ = (extent.xhi - extent.xlo) / static_cast<float>(base);
  map->tile_h_ = (extent.yhi - extent.ylo) / static_cast<float>(base);
  if (!(map->tile_w_ > 0.0f)) map->tile_w_ = 1.0f;
  if (!(map->tile_h_ > 0.0f)) map->tile_h_ = 1.0f;

  const double partition_budget =
      std::max(1.0, config.partition_fill *
                        static_cast<double>(config.memory_bytes));
  const double split_threshold =
      std::max(static_cast<double>(sizeof(RectF)),
               config.split_fraction * partition_budget);
  auto weight_of = [&](const RectF& bounds) {
    return (hist_a.EstimateCountIn(bounds) + hist_b.EstimateCountIn(bounds)) *
           static_cast<double>(sizeof(RectF));
  };

  // Base tiles, then breadth-first recursive splits of overfull tiles
  // while quadrant estimates still carry information (effective
  // resolution <= max_resolution) and the geometry still halves cleanly.
  map->tiles_.assign(static_cast<size_t>(base) * base,
                     AdaptivePartitionMap::Tile{});
  map->bounds_.resize(map->tiles_.size());
  std::vector<double> weights(map->tiles_.size());
  struct Pending {
    uint32_t tile;
    uint32_t depth;
  };
  std::deque<Pending> queue;
  for (uint32_t ty = 0; ty < base; ++ty) {
    for (uint32_t tx = 0; tx < base; ++tx) {
      const uint32_t t = ty * base + tx;
      map->bounds_[t] =
          RectF(extent.xlo + static_cast<float>(tx) * map->tile_w_,
                extent.ylo + static_cast<float>(ty) * map->tile_h_,
                extent.xlo + static_cast<float>(tx + 1) * map->tile_w_,
                extent.ylo + static_cast<float>(ty + 1) * map->tile_h_);
      weights[t] = weight_of(map->bounds_[t]);
      queue.push_back({t, 0});
    }
  }
  while (!queue.empty()) {
    const Pending item = queue.front();
    queue.pop_front();
    if (weights[item.tile] <= split_threshold) continue;
    if (static_cast<uint64_t>(base) << (item.depth + 1) >
        config.max_resolution) {
      continue;
    }
    const RectF b = map->bounds_[item.tile];
    const float mx = 0.5f * (b.xlo + b.xhi);
    const float my = 0.5f * (b.ylo + b.yhi);
    if (!(mx > b.xlo) || !(mx < b.xhi) || !(my > b.ylo) || !(my < b.yhi)) {
      continue;  // Degenerate halves; float resolution exhausted.
    }
    const int32_t child = static_cast<int32_t>(map->tiles_.size());
    map->tiles_[item.tile].child = child;
    map->split_tiles_++;
    const RectF quads[4] = {RectF(b.xlo, b.ylo, mx, my),
                            RectF(mx, b.ylo, b.xhi, my),
                            RectF(b.xlo, my, mx, b.yhi),
                            RectF(mx, my, b.xhi, b.yhi)};
    for (const RectF& q : quads) {
      map->tiles_.push_back(AdaptivePartitionMap::Tile{});
      map->bounds_.push_back(q);
      weights.push_back(weight_of(q));
      queue.push_back({static_cast<uint32_t>(map->tiles_.size() - 1),
                       item.depth + 1});
    }
  }

  // Leaves, heaviest first (stable tie-break on tile index so the plan is
  // deterministic), onto the currently lightest partition. The partition
  // count comes from the true record mass (the same formula the fixed
  // path uses), not the replication-inflated tile weights: bin-packing
  // then *fills* each partition to the budget instead of provisioning
  // extra ones, and extra partitions are pure overhead (more open
  // writers, more non-sequential flushes).
  std::vector<uint32_t> leaves;
  for (uint32_t t = 0; t < map->tiles_.size(); ++t) {
    if (map->tiles_[t].child < 0) leaves.push_back(t);
  }
  map->leaf_tiles_ = static_cast<uint32_t>(leaves.size());
  const uint32_t partitions = static_cast<uint32_t>(std::clamp<uint64_t>(
      PbsmPartitionCount(total_records * sizeof(RectF), config.memory_bytes,
                         config.partition_fill),
      1, leaves.size()));
  map->partitions_ = partitions;
  std::sort(leaves.begin(), leaves.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  // Distribution write buffering (see PbsmWriterBlockPages): balanced
  // partitions defeat the drive's sequential-stream detection during
  // distribution, so fewer, larger flushes are what keeps the adaptive
  // plan's write pass cheap.
  map->writer_block_pages_ = PbsmWriterBlockPages(config.memory_bytes,
                                                  partitions);

  using Load = std::pair<double, uint32_t>;
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t p = 0; p < partitions; ++p) heap.push({0.0, p});
  for (uint32_t leaf : leaves) {
    Load lightest = heap.top();
    heap.pop();
    map->tiles_[leaf].partition = lightest.second;
    lightest.first += weights[leaf];
    map->max_partition_weight_ =
        std::max(map->max_partition_weight_, lightest.first);
    heap.push(lightest);
  }
  return map;
}

}  // namespace sj
