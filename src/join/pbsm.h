#ifndef USJ_JOIN_PBSM_H_
#define USJ_JOIN_PBSM_H_

#include "io/disk_model.h"
#include "join/join_types.h"
#include "util/result.h"

namespace sj {

/// Partition-Based Spatial Merge Join (Patel & DeWitt, SIGMOD'96) — §3.2.
///
/// The space is cut into `pbsm_tiles_per_axis`^2 tiles, tiles are assigned
/// round-robin (in row-major order) to p partitions where p is chosen so a
/// partition pair fits in memory, and each rectangle is replicated into
/// every partition one of its tiles maps to. Each partition is then joined
/// in memory with a plane sweep (Forward-Sweep, following the original).
///
/// Duplicate suppression uses the reference-point method: a pair (r, s) is
/// reported only in the partition owning the tile that contains the lower
/// corner of r ∩ s, which both r and s necessarily overlap — so the output
/// is exact and duplicate free.
///
/// A partition whose contents exceed the memory budget (clustered data)
/// falls back to an external sort + streaming sweep of that partition;
/// the paper instead tuned the tile count (32^2 -> 128^2) to make
/// overflows rare, which bench_ablation_pbsm_tiles reproduces.
Result<JoinStats> PBSMJoin(const DatasetRef& a, const DatasetRef& b,
                           DiskModel* disk, const JoinOptions& options,
                           JoinSink* sink);

}  // namespace sj

#endif  // USJ_JOIN_PBSM_H_
