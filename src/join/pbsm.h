#ifndef USJ_JOIN_PBSM_H_
#define USJ_JOIN_PBSM_H_

#include "histogram/grid_histogram.h"
#include "io/disk_model.h"
#include "join/join_types.h"
#include "util/result.h"

namespace sj {

/// Partition-Based Spatial Merge Join (Patel & DeWitt, SIGMOD'96) — §3.2.
///
/// The space is cut into tiles, tiles are assigned to p partitions, and
/// each rectangle is replicated into every partition one of its tiles
/// maps to. Each partition is then joined in memory with a plane sweep
/// (Forward-Sweep, following the original).
///
/// Partitioning is pluggable (src/join/partition_plan.h). With
/// options.adaptive_partitioning (the default) the tile grid is sized
/// from a GridHistogram — `hist_a`/`hist_b` when the caller attached
/// them, else histograms built here with one extra scan per side —
/// overfull tiles are split recursively, and tiles are bin-packed onto
/// partitions by weight, so clustered data rarely overflows. With the
/// knob off, the paper's fixed `pbsm_tiles_per_axis`^2 grid with
/// row-major round-robin assignment runs instead, and p is chosen so an
/// average partition pair fits in memory.
///
/// Duplicate suppression uses the reference-point method: a pair (r, s)
/// is reported only in the partition owning the tile that contains the
/// lower corner of r ∩ s, which both r and s necessarily overlap — so
/// the output is exact and duplicate free under either partitioning.
///
/// A partition pair acquires its load as a memory grant; a denied grant
/// (contents exceed the budget) falls back to an external sort +
/// streaming sweep of that partition. The paper instead tuned the tile
/// count (32^2 -> 128^2) to make overflows rare, which
/// bench_ablation_pbsm_tiles reproduces and bench_skew contrasts with
/// the adaptive planner. Distribution writer blocks are granted too and
/// shrink when the budget cannot cover 2p of the partition map's
/// preferred flush block. `arbiter` is the query's memory governor;
/// nullptr runs against a private one over the options' budget.
Result<JoinStats> PBSMJoin(const DatasetRef& a, const DatasetRef& b,
                           DiskModel* disk, const JoinOptions& options,
                           JoinSink* sink,
                           const GridHistogram* hist_a = nullptr,
                           const GridHistogram* hist_b = nullptr,
                           MemoryArbiter* arbiter = nullptr);

}  // namespace sj

#endif  // USJ_JOIN_PBSM_H_
