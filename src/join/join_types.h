#ifndef USJ_JOIN_JOIN_TYPES_H_
#define USJ_JOIN_JOIN_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_arbiter.h"
#include "geometry/rect.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/prefetch.h"
#include "io/stream.h"
#include "sort/external_sort.h"
#include "sweep/interval_structures.h"
#include "util/timer.h"

namespace sj {

class ThreadPool;

/// A non-indexed input relation: a stream of MBR records plus its spatial
/// extent. If `extent` is invalid (RectF::Empty()), algorithms that need
/// it compute it with an extra scan.
struct DatasetRef {
  StreamRange range;
  RectF extent = RectF::Empty();
  uint64_t count() const { return range.count; }
};

/// Knobs shared by all join algorithms (paper defaults).
struct JoinOptions {
  /// Internal memory available to an algorithm (the paper's machines had
  /// 24 MB free; ST gives 22 MB of it to the buffer pool). This is the
  /// per-query budget the MemoryArbiter carves into component grants
  /// (core/memory_arbiter.h); the query layer rejects budgets below
  /// kMinMemoryBytes (64 KiB) with FailedPrecondition, and direct
  /// algorithm calls clamp up to that floor.
  size_t memory_bytes = 24u << 20;
  /// Debug aid: a strict MemoryArbiter aborts (SJ_CHECK) when a component
  /// reports usage above its grant — ungoverned allocation — instead of
  /// just recording the overshoot in the high-water marks.
  bool strict_memory_accounting = false;
  /// LRU pool capacity for ST, in pages (22 MB of 8 KB pages).
  size_t buffer_pool_pages = BufferPool::kPaperCapacityPages;
  /// Interval structure for the streaming sweeps (SSSJ, PQ). The paper
  /// uses Striped-Sweep here.
  SweepStructureKind stream_sweep = SweepStructureKind::kStriped;
  /// Interval structure for PBSM's per-partition sweeps. The paper follows
  /// Patel & DeWitt and uses Forward-Sweep.
  SweepStructureKind partition_sweep = SweepStructureKind::kForward;
  /// Strips for Striped-Sweep.
  uint32_t striped_strips = 1024;
  /// PBSM tile grid for *fixed-grid* partitioning (the paper raised Patel
  /// & DeWitt's 32x32 to 128x128 to avoid overfull partitions). Ignored
  /// when adaptive_partitioning is on — the PartitionPlanner sizes the
  /// grid from the data instead.
  uint32_t pbsm_tiles_per_axis = 128;
  /// Skew-adaptive PBSM partitioning (src/join/partition_plan.h): size
  /// the tile grid from a spatial histogram (built on the fly from an
  /// extra scan when the query attaches none), split overfull tiles
  /// recursively, and assign tiles to partitions by weighted greedy
  /// bin-packing — so clustered data lands in balanced partitions and
  /// the external-sort overflow fallback becomes a last resort. Off =
  /// the paper's fixed pbsm_tiles_per_axis grid with round-robin
  /// assignment.
  bool adaptive_partitioning = true;
  /// Cells per axis of the histogram PBSM builds when adaptive
  /// partitioning has none attached. Finer than the paper's tile grids
  /// (the planner splits *tiles* from cell-level evidence, and below
  /// cell resolution estimates degrade to uniform-within-cell, so
  /// resolution directly bounds how well packing predicts hot-blob
  /// partition contents); 256^2 cells cost 512 KB of planner state.
  uint32_t pbsm_histogram_resolution = 256;
  /// SSSJ ablation: when true the merge phase of the final sort feeds the
  /// sweep directly instead of materializing the sorted stream, saving one
  /// write and one read pass over each input.
  bool fuse_merge_sweep = false;
  /// Worker threads for the parallel phases (PBSM partition pairs, SSSJ
  /// strips, multiway strips). 1 = serial. Each parallel unit runs against
  /// a private DiskModel shard and a private sink that are merged in unit
  /// order afterwards, so output pairs and modeled I/O stats are identical
  /// for every value of this knob.
  uint32_t num_threads = 1;
  /// Vertical strips for the parallel multiway path. Fixed (instead of
  /// derived from num_threads) so the decomposition — and with it the
  /// result order and modeled I/O — does not change with the thread count.
  uint32_t multiway_strips = 64;
  /// Filter-and-refine pipeline: when true, SpatialJoiner::Join and
  /// MultiwayJoin treat the MBR join as the filter step, resolve every
  /// candidate against the inputs' FeatureStores (JoinInput::WithFeatures)
  /// and emit only pairs/tuples whose exact geometries intersect.
  bool refine = false;
  /// Candidate pairs per refinement batch — the parallel work unit, which
  /// also bounds the feature pages a batch pins in memory (at most one
  /// page per candidate and side).
  uint32_t refine_batch_pairs = 1024;
  /// Shared worker pool (service mode). When set, the parallel phases
  /// submit their work as task groups to this pool — up to num_threads
  /// runners each — instead of spawning a private team, so concurrent
  /// queries interleave fairly on one fixed set of threads. Null = the
  /// standalone behaviour (private per-call pools). Not owned.
  ThreadPool* worker_pool = nullptr;
  /// Shared page cache (service mode). When set, ST serves its R-tree
  /// reads through this process-wide pool (attributed under
  /// buffer_pool_client) instead of building a private pool sized by a
  /// "buffer.pool" grant. Null = the standalone behaviour. Not owned.
  BufferPool* shared_buffer_pool = nullptr;
  /// Stats client id in shared_buffer_pool (from RegisterClient) that
  /// this query's pool traffic is attributed to.
  uint32_t buffer_pool_client = 0;
  /// Storage choice for every scratch/spill file the query creates (sort
  /// runs, PBSM partition files, spill streams, expanded inputs). Null =
  /// MemoryBackend, the simulation default. Shared because a service
  /// injects one factory into many queries; implementations must be
  /// thread-safe. Results and modeled I/O are identical on any backend —
  /// only io_wall_seconds changes.
  std::shared_ptr<StorageFactory> storage;
  /// Double-buffered read-ahead in the streaming readers (external-sort
  /// merge, PQ spill cursors, PBSM partition loads, refinement batches):
  /// block N+1 fetches on a background task while block N drains. Fetches
  /// go to worker_pool when set, else each reader owns one thread. Never
  /// changes results, candidate counts, or modeled io_seconds — prefetch
  /// only moves *when* bytes arrive, never which requests are charged.
  /// Off by default (costs an extra block buffer per reader).
  bool prefetch = false;
  /// Parallel run formation in the external sorts: input chunks sort and
  /// write as independent units on the worker pool (up to num_threads),
  /// with the modeled I/O charges replayed in serial order afterwards —
  /// output bytes and modeled io_seconds are identical at any thread
  /// count. No effect when num_threads <= 1.
  bool sort_parallel_runs = true;
  /// External-merge fan-in. 0 = auto: the planner picks the smallest
  /// fan-in that adds no merge pass over the maximum width and spends the
  /// freed budget on larger per-run read blocks. Explicit values are
  /// clamped to [2, layout fan-in].
  uint32_t merge_fan_in = 0;
  /// Write-behind run output: a sort/spill writer's filled block flushes
  /// on a background task while the next block fills. Like prefetch, only
  /// io_wall_seconds moves — page images, allocation order, and modeled
  /// io_seconds are unchanged. Off by default (one extra write block per
  /// open writer).
  bool sort_write_behind = false;
};

/// The PrefetchContext a query's options describe (threaded through to
/// every adoption point alongside the options themselves).
inline PrefetchContext PrefetchContextOf(const JoinOptions& options) {
  PrefetchContext ctx;
  ctx.enabled = options.prefetch;
  ctx.pool = options.worker_pool;
  return ctx;
}

/// The SortConfig a query's options describe (threaded through to every
/// external-sort instantiation, like PrefetchContextOf).
inline SortConfig SortConfigOf(const JoinOptions& options) {
  SortConfig config;
  config.parallel_runs = options.sort_parallel_runs;
  config.threads = std::max<uint32_t>(1, options.num_threads);
  config.pool = options.worker_pool;
  config.write_behind = options.sort_write_behind;
  config.merge_fan_in = options.merge_fan_in;
  return config;
}

/// Everything measured about one join execution.
///
/// I/O counters are deltas of the experiment's DiskModel (plus, for
/// parallel runs, the summed per-worker shards), so they cover exactly
/// the algorithm's own work. CPU is host CPU time — the driving thread
/// plus any pool workers; the MachineModel's slowdown converts it to
/// modeled 1999-hardware seconds.
struct JoinStats {
  uint64_t output_count = 0;
  double host_cpu_seconds = 0.0;
  DiskStats disk;
  /// Pages read from the index devices (Table 4's "page requests"; for ST
  /// these are buffer-pool misses, PQ has no pool).
  uint64_t index_pages_read = 0;
  /// ST buffer-pool behaviour.
  uint64_t pool_requests = 0;
  uint64_t pool_hits = 0;
  /// Maxima of the in-memory data structures (Table 3).
  size_t max_sweep_bytes = 0;
  size_t max_queue_bytes = 0;
  /// PBSM partitioning behaviour (ablation: tile-count sensitivity; the
  /// adaptive-vs-fixed comparison in bench_skew).
  uint32_t partitions_total = 0;
  uint32_t partitions_overflowed = 0;
  size_t max_partition_bytes = 0;
  /// The partition map PBSM actually used: base grid shape, leaves after
  /// recursive splits (== the base tile count for fixed grids), split
  /// base tiles (0 for fixed), and whether the adaptive planner ran.
  uint32_t pbsm_tiles_x = 0;
  uint32_t pbsm_tiles_y = 0;
  uint32_t pbsm_leaf_tiles = 0;
  uint32_t pbsm_split_tiles = 0;
  bool pbsm_adaptive = false;
  /// Memory governance (core/memory_arbiter.h): high-water mark of the
  /// arbiter's concurrently granted bytes — the serial-equivalent peak
  /// footprint, identical for every thread count — plus the
  /// per-component granted/used high-water marks. peak_memory_bytes
  /// never exceeds the (floor-clamped) options.memory_bytes budget.
  size_t peak_memory_bytes = 0;
  std::vector<MemoryComponentStats> memory_components;
  /// Filter-and-refine split: candidate_count is the MBR filter's output.
  /// Without refinement it equals output_count; with options.refine the
  /// exact results land in output_count and refine_pages_read counts the
  /// feature-store pages the refinement step fetched (its modeled time is
  /// folded into `disk` like everything else).
  uint64_t candidate_count = 0;
  uint64_t refine_pages_read = 0;
  /// True when any StripedSweep in the join fell back to a single strip
  /// because its extent was degenerate or non-finite (StripedSweep's
  /// hardened construction) — the join ran correctly but the striping
  /// speedup was lost, which used to happen silently.
  bool sweep_strips_collapsed = false;
  /// External-sort behaviour (maxima over every sorter the join ran):
  /// run-formation units that sorted in parallel (0 = every sort stayed
  /// serial or single-run), the merge fan-in the planner chose, and the
  /// merge passes it took.
  uint32_t sort_parallel_units = 0;
  uint32_t sort_merge_fan_in = 0;
  uint32_t sort_merge_passes = 0;

  /// Folds a sorter's stats into the join-wide maxima.
  void FoldSortStats(const SortStats& s) {
    sort_parallel_units = std::max(sort_parallel_units, s.parallel_units);
    sort_merge_fan_in = std::max(sort_merge_fan_in, s.merge_fan_in);
    sort_merge_passes = std::max(sort_merge_passes, s.merge_passes);
  }

  /// The classic cost estimate (Figure 2(a)-(c)): every page read priced
  /// as a random single-page access, plus scaled CPU.
  double EstimatedSeconds(const MachineModel& m) const {
    const double page_s =
        (m.avg_access_ms + m.PageTransferMs(kPageSize)) * 1e-3;
    return static_cast<double>(disk.pages_read) * page_s +
           host_cpu_seconds * m.cpu_slowdown;
  }
  /// Estimated I/O component alone.
  double EstimatedIoSeconds(const MachineModel& m) const {
    const double page_s =
        (m.avg_access_ms + m.PageTransferMs(kPageSize)) * 1e-3;
    return static_cast<double>(disk.pages_read) * page_s;
  }
  /// The modeled "observed" time (Figure 2(d)-(f), Figure 3): the
  /// DiskModel's sequential/random-aware time plus scaled CPU.
  double ObservedSeconds(const MachineModel& m) const {
    return disk.io_seconds + host_cpu_seconds * m.cpu_slowdown;
  }
  double ObservedIoSeconds() const { return disk.io_seconds; }
  double ScaledCpuSeconds(const MachineModel& m) const {
    return host_cpu_seconds * m.cpu_slowdown;
  }

  /// Measured wall time spent inside actual backend reads/writes
  /// (DiskStats::io_wall_seconds) — the real-I/O counterpart of the
  /// modeled io_seconds, for modeled-vs-measured validation.
  double MeasuredIoWallSeconds() const { return disk.io_wall_seconds; }

  /// One human-readable line of the machine-independent counters (result
  /// and candidate counts, pages, peak structure sizes).
  std::string Describe() const;
  /// Describe() plus the modeled times under machine `m` (observed
  /// seconds with the I/O and scaled-CPU split) and, when real bytes
  /// moved, the measured I/O wall next to the modeled figure.
  std::string Describe(const MachineModel& m) const;
  /// Structured form for logs and benchmark harnesses, same convention
  /// as PlanDecision::ToKeyValues().
  std::vector<std::pair<std::string, std::string>> ToKeyValues() const;
};

/// Streams Describe() — the machine-independent form.
std::ostream& operator<<(std::ostream& os, const JoinStats& stats);

/// Consumer of join output pairs. Pair order is (id from input A, id from
/// input B).
class JoinSink {
 public:
  virtual ~JoinSink() = default;
  virtual void Emit(ObjectId a, ObjectId b) = 0;
};

/// Counts results without storing them (the paper's joins exclude output
/// materialization from the measured cost).
class CountingSink final : public JoinSink {
 public:
  void Emit(ObjectId, ObjectId) override { count_++; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Collects results in memory (tests, small joins).
class CollectingSink final : public JoinSink {
 public:
  void Emit(ObjectId a, ObjectId b) override { pairs_.push_back({a, b}); }
  const std::vector<IdPair>& pairs() const { return pairs_; }
  std::vector<IdPair>& mutable_pairs() { return pairs_; }

 private:
  std::vector<IdPair> pairs_;
};

/// Writes results as an IdPair stream (charged output I/O).
class StreamSink final : public JoinSink {
 public:
  explicit StreamSink(Pager* pager) : pager_(pager), writer_(pager) {}

  void Emit(ObjectId a, ObjectId b) override { writer_.Append({a, b}); }

  /// Flushes and returns the written range.
  Result<StreamRange> Finish() {
    const PageId first = writer_.first_page();
    SJ_ASSIGN_OR_RETURN(uint64_t n, writer_.Finish());
    return StreamRange{pager_, first, n};
  }

 private:
  Pager* pager_ = nullptr;
  StreamWriter<IdPair> writer_;
};

/// RAII measurement scope: snapshots the disk stats and CPU clock, and
/// fills a JoinStats with the deltas on Finish().
class JoinMeasurement {
 public:
  explicit JoinMeasurement(DiskModel* disk)
      : disk_(disk), start_disk_(disk->stats()) {}

  JoinStats Finish() {
    JoinStats stats;
    stats.host_cpu_seconds = cpu_.Elapsed();
    stats.disk = disk_->stats() - start_disk_;
    return stats;
  }

 private:
  DiskModel* disk_;
  DiskStats start_disk_;
  ThreadCpuTimer cpu_;
};

/// Arbiter plumbing shared by the join algorithms: uses the caller's
/// arbiter when one is passed (the JoinQuery pipeline hands down the
/// per-query arbiter), otherwise owns a fresh one over the options'
/// floor-clamped budget — so directly-called algorithms are governed too.
class ArbiterScope {
 public:
  ArbiterScope(MemoryArbiter* external, const JoinOptions& options)
      : owned_(external == nullptr
                   ? std::make_unique<MemoryArbiter>(
                         std::max(options.memory_bytes, kMinMemoryBytes),
                         options.strict_memory_accounting)
                   : nullptr),
        arbiter_(external != nullptr ? external : owned_.get()) {}

  MemoryArbiter* get() const { return arbiter_; }
  MemoryArbiter* operator->() const { return arbiter_; }
  MemoryArbiter& operator*() const { return *arbiter_; }

 private:
  std::unique_ptr<MemoryArbiter> owned_;
  MemoryArbiter* arbiter_;
};

/// Copies an arbiter's peak and per-component high-water marks into
/// `stats` (done by every algorithm just before returning).
inline void FillMemoryStats(const MemoryArbiter& arbiter, JoinStats* stats) {
  stats->peak_memory_bytes = arbiter.peak_bytes();
  stats->memory_components = arbiter.ComponentStats();
}

/// Computes the extent of a dataset if its descriptor lacks one (extra
/// scan, charged).
Result<RectF> EnsureExtent(const DatasetRef& input);

/// Extent spanning both inputs (the sweep/striping domain).
Result<RectF> CombinedExtent(const DatasetRef& a, const DatasetRef& b);

}  // namespace sj

#endif  // USJ_JOIN_JOIN_TYPES_H_
