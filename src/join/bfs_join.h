#ifndef USJ_JOIN_BFS_JOIN_H_
#define USJ_JOIN_BFS_JOIN_H_

#include "io/disk_model.h"
#include "join/join_types.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// Breadth-first synchronized R-tree traversal (Huang, Jing &
/// Rundensteiner, VLDB'97 — the algorithm §3.3 cites as matching ST's CPU
/// cost with near-optimal I/O when a sufficient buffer is available).
///
/// The trees are joined level by level. All qualifying node pairs of a
/// level are collected, then *sorted by page number* before the nodes are
/// fetched — the "global optimization" of the original paper — so each
/// page of the left tree is read exactly once per level and reads proceed
/// in layout order (largely sequential on bulk-loaded trees). Right-tree
/// nodes are served through the shared LRU pool.
///
/// Memory holds one level's pair list; for the paper's data this is far
/// below the join output size and thus negligible, but it is reported in
/// max_queue_bytes for inspection.
Result<JoinStats> BFSJoin(const RTree& a, const RTree& b, DiskModel* disk,
                          const JoinOptions& options, JoinSink* sink);

}  // namespace sj

#endif  // USJ_JOIN_BFS_JOIN_H_
