#ifndef USJ_JOIN_SOURCES_H_
#define USJ_JOIN_SOURCES_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "geometry/rect.h"
#include "histogram/grid_histogram.h"
#include "io/stream.h"
#include "rtree/rtree.h"
#include "sort/external_sort.h"

namespace sj {

/// A producer of rectangles in nondecreasing ylo order — the unified input
/// representation of the PQ join (§4): every input, indexed or not, is
/// reduced to one of these and fed to the same plane sweep.
class SortedRectSource {
 public:
  virtual ~SortedRectSource() = default;

  /// Next rectangle in ylo order, or nullopt at end of input.
  virtual std::optional<RectF> Next() = 0;

  /// Bytes of internal state right now (priority queues + leaf buffers for
  /// the index adapter); sampled by the join for Table 3.
  virtual size_t MemoryBytes() const { return 0; }
};

/// A y-sorted stream (a non-indexed input after external sorting).
class SortedStreamSource final : public SortedRectSource {
 public:
  explicit SortedStreamSource(const StreamRange& range)
      : reader_(range.pager, range.first_page, range.count) {}

  std::optional<RectF> Next() override { return reader_.Next(); }

 private:
  StreamReader<RectF> reader_;
};

/// The PQ index adapter: drains a packed R-tree in ylo order using a
/// priority-queue-driven traversal (Figure 1 of the paper), touching every
/// node at most once.
///
/// Following the paper's implementation notes, two queues are kept: one of
/// internal-node references (ylo + page id only) and one of per-leaf
/// cursors. When a leaf is loaded, its rectangles are sorted by ylo once
/// and only the head enters the leaf queue; popping the head pushes its
/// successor. This keeps queue operations on small keys and bounds queue
/// size by the number of *active* leaves.
///
/// The selective variant (§4, §6.3): a filter rectangle and/or occupancy
/// grid of the other input prunes subtrees that cannot produce join
/// results, so localized joins touch only the relevant part of the index.
class RTreePQSource final : public SortedRectSource {
 public:
  struct Options {
    /// Skip subtrees whose MBR does not intersect this rectangle
    /// (typically the other input's extent). nullptr = no pruning.
    const RectF* filter = nullptr;
    /// Skip subtrees in regions where this grid (built over the other
    /// input) is empty. nullptr = no pruning. Must outlive the source.
    const GridHistogram* occupancy = nullptr;
  };

  /// Unpruned traversal (the Table 4 configuration).
  explicit RTreePQSource(const RTree* tree);
  /// Selective traversal with pruning options.
  RTreePQSource(const RTree* tree, Options options);

  std::optional<RectF> Next() override;
  size_t MemoryBytes() const override;

  /// Index pages this traversal has read (<= tree->node_count(), with
  /// equality for unpruned traversals — the paper's "optimal" count).
  uint64_t pages_read() const { return pages_read_; }

 private:
  struct NodeRef {
    float ylo;
    PageId page;
    uint16_t level;
  };
  struct NodeRefGreater {
    bool operator()(const NodeRef& a, const NodeRef& b) const {
      if (a.ylo != b.ylo) return a.ylo > b.ylo;
      return a.page > b.page;
    }
  };
  struct LeafHead {
    float ylo;
    uint32_t buffer;
  };
  struct LeafHeadGreater {
    bool operator()(const LeafHead& a, const LeafHead& b) const {
      if (a.ylo != b.ylo) return a.ylo > b.ylo;
      return a.buffer > b.buffer;
    }
  };
  struct LeafBuffer {
    std::vector<RectF> rects;
    uint32_t next = 0;
  };

  bool Pruned(const RectF& mbr) const;
  void ExpandNode(const NodeRef& ref);

  const RTree* tree_;
  Options options_;
  std::priority_queue<NodeRef, std::vector<NodeRef>, NodeRefGreater>
      node_queue_;
  std::priority_queue<LeafHead, std::vector<LeafHead>, LeafHeadGreater>
      leaf_queue_;
  std::vector<LeafBuffer> buffers_;
  std::vector<uint32_t> free_buffers_;
  size_t buffer_bytes_ = 0;
  uint64_t pages_read_ = 0;
};

}  // namespace sj

#endif  // USJ_JOIN_SOURCES_H_
