#include "join/bfs_join.h"

#include <algorithm>
#include <vector>

#include "io/buffer_pool.h"
#include "join/entry_sweep.h"
#include "rtree/node.h"

namespace sj {
namespace {

/// A node pair queued for one level of the breadth-first join. The MBRs
/// are the parents' entry rectangles, used for search-space restriction.
struct NodePair {
  PageId page_a;
  PageId page_b;
  RectF mbr_a;
  RectF mbr_b;
};

class BFSRunner {
 public:
  BFSRunner(const RTree& a, const RTree& b, const JoinOptions& options,
            JoinSink* sink)
      : tree_a_(a),
        tree_b_(b),
        pool_(options.buffer_pool_pages),
        sink_(sink) {}

  Status Run(size_t* max_pairs_bytes) {
    if (tree_a_.meta().entry_count == 0 || tree_b_.meta().entry_count == 0) {
      return Status::OK();
    }
    if (!tree_a_.bounding_box().Intersects(tree_b_.bounding_box())) {
      return Status::OK();
    }
    uint16_t level_a = static_cast<uint16_t>(tree_a_.height() - 1);
    uint16_t level_b = static_cast<uint16_t>(tree_b_.height() - 1);
    std::vector<NodePair> pairs = {NodePair{tree_a_.root(), tree_b_.root(),
                                            tree_a_.bounding_box(),
                                            tree_b_.bounding_box()}};
    while (!pairs.empty()) {
      *max_pairs_bytes =
          std::max(*max_pairs_bytes, pairs.size() * sizeof(NodePair));
      // The global optimization: fetch nodes in layout order.
      std::sort(pairs.begin(), pairs.end(),
                [](const NodePair& x, const NodePair& y) {
                  if (x.page_a != y.page_a) return x.page_a < y.page_a;
                  return x.page_b < y.page_b;
                });
      std::vector<NodePair> next;
      const bool descend_a = level_a >= level_b;
      const bool descend_b = level_b >= level_a;
      const bool at_leaves = level_a == 0 && level_b == 0;
      for (const NodePair& pair : pairs) {
        SJ_RETURN_IF_ERROR(
            ProcessPair(pair, descend_a, descend_b, at_leaves, &next));
      }
      if (at_leaves) break;
      if (descend_a && level_a > 0) level_a--;
      if (descend_b && level_b > 0) level_b--;
      pairs = std::move(next);
    }
    return Status::OK();
  }

  BufferPoolStats pool_stats() const { return pool_.stats(); }

 private:
  Status LoadOverlapping(const RTree& tree, PageId page, const RectF& window,
                         std::vector<RectF>* out) {
    uint8_t buf[kPageSize];
    SJ_RETURN_IF_ERROR(pool_.Get(tree.pager(), page, buf));
    const NodeView node(buf);
    out->clear();
    out->reserve(node.count());
    for (uint32_t i = 0; i < node.count(); ++i) {
      const RectF e = node.Entry(i);
      if (e.Intersects(window)) out->push_back(e);
    }
    std::sort(out->begin(), out->end(), OrderByXLo());
    return Status::OK();
  }

  Status ProcessPair(const NodePair& pair, bool descend_a, bool descend_b,
                     bool at_leaves, std::vector<NodePair>* next) {
    const RectF window = pair.mbr_a.IntersectionWith(pair.mbr_b);
    if (at_leaves) {
      SJ_RETURN_IF_ERROR(
          LoadOverlapping(tree_a_, pair.page_a, window, &ents_a_));
      SJ_RETURN_IF_ERROR(
          LoadOverlapping(tree_b_, pair.page_b, window, &ents_b_));
      SweepEntryLists(ents_a_, ents_b_, [this](const RectF& a, const RectF& b) {
        sink_->Emit(a.id, b.id);
      });
      return Status::OK();
    }
    if (descend_a && descend_b) {
      SJ_RETURN_IF_ERROR(
          LoadOverlapping(tree_a_, pair.page_a, window, &ents_a_));
      SJ_RETURN_IF_ERROR(
          LoadOverlapping(tree_b_, pair.page_b, window, &ents_b_));
      SweepEntryLists(ents_a_, ents_b_,
                      [&next](const RectF& a, const RectF& b) {
                        next->push_back(NodePair{a.id, b.id, a, b});
                      });
      return Status::OK();
    }
    if (descend_a) {
      SJ_RETURN_IF_ERROR(
          LoadOverlapping(tree_a_, pair.page_a, window, &ents_a_));
      for (const RectF& ea : ents_a_) {
        if (!ea.Intersects(pair.mbr_b)) continue;
        next->push_back(NodePair{ea.id, pair.page_b, ea, pair.mbr_b});
      }
      return Status::OK();
    }
    SJ_RETURN_IF_ERROR(
        LoadOverlapping(tree_b_, pair.page_b, window, &ents_b_));
    for (const RectF& eb : ents_b_) {
      if (!eb.Intersects(pair.mbr_a)) continue;
      next->push_back(NodePair{pair.page_a, eb.id, pair.mbr_a, eb});
    }
    return Status::OK();
  }

  const RTree& tree_a_;
  const RTree& tree_b_;
  BufferPool pool_;
  JoinSink* sink_;
  // Scratch entry lists reused across pairs.
  std::vector<RectF> ents_a_;
  std::vector<RectF> ents_b_;
};

}  // namespace

Result<JoinStats> BFSJoin(const RTree& a, const RTree& b, DiskModel* disk,
                          const JoinOptions& options, JoinSink* sink) {
  JoinMeasurement measurement(disk);
  const uint64_t index_reads_before =
      disk->device_stats()[a.pager()->device_id()].pages_read +
      disk->device_stats()[b.pager()->device_id()].pages_read;

  CountingSink counter;
  class TeeSink final : public JoinSink {
   public:
    TeeSink(JoinSink* out, CountingSink* count) : out_(out), count_(count) {}
    void Emit(ObjectId x, ObjectId y) override {
      out_->Emit(x, y);
      count_->Emit(x, y);
    }

   private:
    JoinSink* out_;
    CountingSink* count_;
  } tee(sink, &counter);

  BFSRunner runner(a, b, options, &tee);
  size_t max_pairs_bytes = 0;
  SJ_RETURN_IF_ERROR(runner.Run(&max_pairs_bytes));

  JoinStats stats = measurement.Finish();
  stats.output_count = counter.count();
  stats.index_pages_read =
      disk->device_stats()[a.pager()->device_id()].pages_read +
      disk->device_stats()[b.pager()->device_id()].pages_read -
      index_reads_before;
  const BufferPoolStats pool_stats = runner.pool_stats();
  stats.pool_requests = pool_stats.requests;
  stats.pool_hits = pool_stats.hits;
  stats.max_queue_bytes = max_pairs_bytes;
  return stats;
}

}  // namespace sj
