#ifndef USJ_JOIN_ENTRY_SWEEP_H_
#define USJ_JOIN_ENTRY_SWEEP_H_

#include <vector>

#include "geometry/rect.h"

namespace sj {

/// Forward sweep along x over two xlo-sorted entry lists; calls
/// `emit(const RectF&, const RectF&)` for every pair overlapping in both
/// axes, each pair exactly once. This is the per-node-pair pairing step
/// of ST and BFS (Brinkhoff et al.'s restriction + sweep).
template <typename Emit>
void SweepEntryLists(const std::vector<RectF>& as, const std::vector<RectF>& bs,
                     Emit&& emit) {
  size_t i = 0, j = 0;
  while (i < as.size() && j < bs.size()) {
    if (as[i].xlo < bs[j].xlo) {
      const RectF& a = as[i];
      for (size_t k = j; k < bs.size() && bs[k].xlo <= a.xhi; ++k) {
        if (a.ylo <= bs[k].yhi && bs[k].ylo <= a.yhi) emit(a, bs[k]);
      }
      i++;
    } else {
      const RectF& b = bs[j];
      for (size_t k = i; k < as.size() && as[k].xlo <= b.xhi; ++k) {
        if (b.ylo <= as[k].yhi && as[k].ylo <= b.yhi) emit(as[k], b);
      }
      j++;
    }
  }
}

}  // namespace sj

#endif  // USJ_JOIN_ENTRY_SWEEP_H_
