#ifndef USJ_JOIN_ENTRY_SWEEP_H_
#define USJ_JOIN_ENTRY_SWEEP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "sweep/sweep_kernels.h"

namespace sj {

/// Forward sweep along x over two xlo-sorted entry lists; calls
/// `emit(const RectF&, const RectF&)` for every pair overlapping in both
/// axes, each pair exactly once. This is the per-node-pair pairing step
/// of ST and BFS (Brinkhoff et al.'s restriction + sweep).
///
/// The inner scan runs as a batched kernel: each list is staged into
/// struct-of-arrays lanes once, and the run of candidates for a sweep
/// step is classified by kernels::BatchRectOverlap in contiguous SIMD
/// blocks. The scan end (first lane with !(xlo <= a.xhi)) and the y-test
/// per lane follow IEEE comparison semantics exactly as the scalar loop
/// did, so emitted pairs and their order are identical in both kernel
/// modes.
template <typename Emit>
void SweepEntryLists(const std::vector<RectF>& as, const std::vector<RectF>& bs,
                     Emit&& emit) {
  if (as.empty() || bs.empty()) return;
  const SweepKernelMode mode = ActiveSweepKernelMode();
  // Node entry lists are small (ST/BFS cap them at a few hundred) but
  // this runs once per node pair; thread_local scratch avoids per-call
  // allocation in the parallel tree joins.
  thread_local SoaRects lanes_a, lanes_b;
  thread_local std::vector<uint8_t> mask;
  lanes_a.Assign(as.data(), as.size());
  lanes_b.Assign(bs.data(), bs.size());
  mask.resize(std::max(as.size(), bs.size()));

  size_t i = 0, j = 0;
  while (i < as.size() && j < bs.size()) {
    if (as[i].xlo < bs[j].xlo) {
      const RectF& a = as[i];
      const size_t run = kernels::BatchRectOverlap(
          mode, lanes_b.xlo.data() + j, lanes_b.ylo.data() + j,
          lanes_b.yhi.data() + j, bs.size() - j, a.xhi, a.ylo, a.yhi,
          mask.data());
      for (size_t k = 0; k < run; ++k) {
        if (mask[k]) emit(a, bs[j + k]);
      }
      i++;
    } else {
      const RectF& b = bs[j];
      const size_t run = kernels::BatchRectOverlap(
          mode, lanes_a.xlo.data() + i, lanes_a.ylo.data() + i,
          lanes_a.yhi.data() + i, as.size() - i, b.xhi, b.ylo, b.yhi,
          mask.data());
      for (size_t k = 0; k < run; ++k) {
        if (mask[k]) emit(as[i + k], b);
      }
      j++;
    }
  }
}

}  // namespace sj

#endif  // USJ_JOIN_ENTRY_SWEEP_H_
