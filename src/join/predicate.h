#ifndef USJ_JOIN_PREDICATE_H_
#define USJ_JOIN_PREDICATE_H_

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "geometry/rect.h"
#include "geometry/segment.h"

namespace sj {

/// The join predicate of a query. Every predicate is evaluated in two
/// steps, matching the library's filter-and-refine pipeline:
///
///  * kIntersects     — filter: MBR overlap; refine: exact segment
///                      intersection. The classic spatial join.
///  * kDistanceWithin — filter: MBR overlap after ε-expanding one side's
///                      rectangles (an L∞ overapproximation of the L2
///                      predicate, so the candidate set is a superset);
///                      refine: exact Euclidean segment distance ≤ ε.
///  * kContains       — "input 0 contains input 1". A refine-stage
///                      predicate: the filter is plain MBR overlap (a
///                      containing pair always overlaps), and the exact
///                      test requires FeatureStores on both inputs, so
///                      queries must enable refinement.
enum class Predicate {
  kIntersects,
  kDistanceWithin,
  kContains,
};

inline const char* ToString(Predicate predicate) {
  switch (predicate) {
    case Predicate::kIntersects:
      return "INTERSECTS";
    case Predicate::kDistanceWithin:
      return "DISTANCE_WITHIN";
    case Predicate::kContains:
      return "CONTAINS";
  }
  return "?";
}

/// A predicate plus its parameter. epsilon is only meaningful for
/// kDistanceWithin (Euclidean distance bound, in coordinate units).
struct PredicateSpec {
  Predicate kind = Predicate::kIntersects;
  double epsilon = 0.0;

  std::string Describe() const {
    if (kind == Predicate::kDistanceWithin) {
      std::ostringstream os;
      os << ToString(kind) << "(eps=" << epsilon << ")";
      return os.str();
    }
    return ToString(kind);
  }
};

/// The refinement-step truth of `spec` for a candidate pair whose exact
/// geometries are `a` and `b` (order matters for kContains: a contains b).
inline bool EvaluateExactPredicate(const PredicateSpec& spec, const Segment& a,
                                   const Segment& b) {
  switch (spec.kind) {
    case Predicate::kIntersects:
      return SegmentsIntersect(a, b);
    case Predicate::kDistanceWithin:
      return SegmentsWithinDistance(a, b, spec.epsilon);
    case Predicate::kContains:
      return SegmentContainsSegment(a, b);
  }
  return false;
}

namespace predicate_internal {

/// Conversions to float that never round toward the interior: lows round
/// down, highs round up, so the expanded rectangle always covers the
/// exact (double-precision) expansion.
inline float FloatRoundedDown(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}
inline float FloatRoundedUp(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace predicate_internal

/// The filter-step transform of the ε-distance predicate: `r` grown by at
/// least epsilon on every side (id preserved; computed in double with
/// outward float rounding, so no edge ever rounds toward the interior).
/// Two rectangles are within L∞ distance ε iff one of them expanded this
/// way intersects the other, and L2 distance ≤ L∞ distance, so an MBR
/// join over one expanded side never drops a true ε-distance result.
/// Tests use this exact function to build the filter-step oracle.
inline RectF ExpandRectForDistance(const RectF& r, double epsilon) {
  using predicate_internal::FloatRoundedDown;
  using predicate_internal::FloatRoundedUp;
  return RectF(FloatRoundedDown(static_cast<double>(r.xlo) - epsilon),
               FloatRoundedDown(static_cast<double>(r.ylo) - epsilon),
               FloatRoundedUp(static_cast<double>(r.xhi) + epsilon),
               FloatRoundedUp(static_cast<double>(r.yhi) + epsilon), r.id);
}

}  // namespace sj

#endif  // USJ_JOIN_PREDICATE_H_
