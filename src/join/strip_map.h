#ifndef USJ_JOIN_STRIP_MAP_H_
#define USJ_JOIN_STRIP_MAP_H_

#include <algorithm>
#include <cstdint>

#include "geometry/rect.h"

namespace sj {

/// 1-D vertical strip geometry shared by the partitioned join paths
/// (SSSJ's strip fallback, the parallel multiway join): the sweep domain
/// is cut into equal-width strips, a rectangle is replicated into every
/// strip it overlaps, and a result is reported only in the strip owning
/// the left edge of the overlap (the reference-point test).
class StripMap {
 public:
  StripMap(const RectF& extent, uint32_t strips)
      : xlo_(extent.xlo), strips_(std::max(1u, strips)) {
    width_ = (extent.xhi - extent.xlo) / static_cast<float>(strips_);
    if (!(width_ > 0.0f)) {
      strips_ = 1;
      width_ = 1.0f;
    }
  }

  uint32_t StripOf(float x) const {
    const float rel = (x - xlo_) / width_;
    if (!(rel > 0.0f)) return 0;
    return std::min(static_cast<uint32_t>(rel), strips_ - 1);
  }
  uint32_t strips() const { return strips_; }

 private:
  float xlo_;
  uint32_t strips_;
  float width_;
};

}  // namespace sj

#endif  // USJ_JOIN_STRIP_MAP_H_
