#include "join/predicate_batch.h"

#include <algorithm>
#include <vector>

namespace sj {
namespace {

using geometry_internal::Orientation;
using geometry_internal::PointSegmentDistanceSquared;

/// Branch-free flat pass over the proper-intersection sign test. Lanes
/// where any orientation is exactly zero (collinear or endpoint-touching
/// configurations — rare on real data) are marked in `needs_exact` and
/// left false; the caller resolves them with the scalar predicate.
///
/// NaN coordinates make every orientation comparison false, so such lanes
/// end up proper=0, needs_exact=0 — exactly the scalar result (false).
void IntersectFlatPass(const Segment* a, const Segment* b, size_t n,
                       uint8_t* out, uint8_t* needs_exact) {
  for (size_t i = 0; i < n; ++i) {
    const Segment& s = a[i];
    const Segment& t = b[i];
    const double d1 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x1, t.y1);
    const double d2 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x2, t.y2);
    const double d3 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x1, s.y1);
    const double d4 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x2, s.y2);
    const int proper = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) &
                       (((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0)));
    out[i] = static_cast<uint8_t>(proper);
    needs_exact[i] =
        static_cast<uint8_t>((d1 == 0) | (d2 == 0) | (d3 == 0) | (d4 == 0));
  }
}

void IntersectBatchVectorized(const Segment* a, const Segment* b, size_t n,
                              uint8_t* out) {
  thread_local std::vector<uint8_t> needs_exact;
  needs_exact.resize(n);
  IntersectFlatPass(a, b, n, out, needs_exact.data());
  for (size_t i = 0; i < n; ++i) {
    // A proper intersection has four strictly-signed orientations, so the
    // two flags are mutually exclusive; only degenerate lanes take the
    // scalar path.
    if (needs_exact[i] && !out[i]) {
      out[i] = static_cast<uint8_t>(SegmentsIntersect(a[i], b[i]));
    }
  }
}

/// min of the four endpoint-to-segment distances — the non-intersecting
/// branch of SegmentDistanceSquared, batched. Only meaningful for lanes
/// the intersect mask left false (intersecting lanes have distance 0).
void MinEndpointDistanceSquaredPass(const Segment* a, const Segment* b,
                                    size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const Segment& s = a[i];
    const Segment& t = b[i];
    const double d1 =
        PointSegmentDistanceSquared(s.x1, s.y1, t.x1, t.y1, t.x2, t.y2);
    const double d2 =
        PointSegmentDistanceSquared(s.x2, s.y2, t.x1, t.y1, t.x2, t.y2);
    const double d3 =
        PointSegmentDistanceSquared(t.x1, t.y1, s.x1, s.y1, s.x2, s.y2);
    const double d4 =
        PointSegmentDistanceSquared(t.x2, t.y2, s.x1, s.y1, s.x2, s.y2);
    out[i] = std::min(std::min(d1, d2), std::min(d3, d4));
  }
}

void DistanceBatchVectorized(const Segment* a, const Segment* b, size_t n,
                             double epsilon, uint8_t* out) {
  thread_local std::vector<double> dist2;
  dist2.resize(n);
  BatchSegmentsIntersect(SweepKernelMode::kVectorized, a, b, n, out);
  MinEndpointDistanceSquaredPass(a, b, n, dist2.data());
  const double eps2 = epsilon * epsilon;
  for (size_t i = 0; i < n; ++i) {
    // Intersecting lanes have exact distance 0; keeping the comparison
    // (rather than hard-coding true) preserves the scalar NaN-epsilon
    // semantics: 0.0 <= NaN² is false either way.
    const double d2 = out[i] ? 0.0 : dist2[i];
    out[i] = static_cast<uint8_t>(d2 <= eps2);
  }
}

void ContainsBatchVectorized(const Segment* a, const Segment* b, size_t n,
                             uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const Segment& outer = a[i];
    const Segment& inner = b[i];
    // Flat form of SegmentContainsSegment: same Orientation/OnSegment
    // arithmetic without the early return. The predicates are pure, so
    // dropping the short-circuit cannot change the result.
    const double o1 = Orientation(outer.x1, outer.y1, outer.x2, outer.y2,
                                  inner.x1, inner.y1);
    const double o2 = Orientation(outer.x1, outer.y1, outer.x2, outer.y2,
                                  inner.x2, inner.y2);
    const double xmin = std::min<double>(outer.x1, outer.x2);
    const double xmax = std::max<double>(outer.x1, outer.x2);
    const double ymin = std::min<double>(outer.y1, outer.y2);
    const double ymax = std::max<double>(outer.y1, outer.y2);
    const int on1 = (xmin <= inner.x1) & (inner.x1 <= xmax) &
                    (ymin <= inner.y1) & (inner.y1 <= ymax);
    const int on2 = (xmin <= inner.x2) & (inner.x2 <= xmax) &
                    (ymin <= inner.y2) & (inner.y2 <= ymax);
    out[i] = static_cast<uint8_t>((o1 == 0) & on1 & (o2 == 0) & on2);
  }
}

}  // namespace

void BatchSegmentsIntersect(SweepKernelMode mode, const Segment* a,
                            const Segment* b, size_t n, uint8_t* out) {
  if (mode == SweepKernelMode::kScalar) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(SegmentsIntersect(a[i], b[i]));
    }
    return;
  }
  IntersectBatchVectorized(a, b, n, out);
}

void EvaluateExactPredicateBatch(SweepKernelMode mode,
                                 const PredicateSpec& spec, const Segment* a,
                                 const Segment* b, size_t n, uint8_t* out) {
  if (mode == SweepKernelMode::kScalar) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(EvaluateExactPredicate(spec, a[i], b[i]));
    }
    return;
  }
  switch (spec.kind) {
    case Predicate::kIntersects:
      IntersectBatchVectorized(a, b, n, out);
      return;
    case Predicate::kDistanceWithin:
      DistanceBatchVectorized(a, b, n, spec.epsilon, out);
      return;
    case Predicate::kContains:
      ContainsBatchVectorized(a, b, n, out);
      return;
  }
}

}  // namespace sj
