#include "join/executor.h"

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "join/partition_plan.h"
#include "join/pbsm.h"
#include "refine/refine.h"
#include "join/pq_join.h"
#include "join/sources.h"
#include "join/sssj.h"
#include "join/st_join.h"
#include "sort/external_sort.h"

namespace sj {

const char* ToString(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kAuto:
      return "AUTO";
    case JoinAlgorithm::kSSSJ:
      return "SSSJ";
    case JoinAlgorithm::kPBSM:
      return "PBSM";
    case JoinAlgorithm::kST:
      return "ST";
    case JoinAlgorithm::kPQ:
      return "PQ";
  }
  return "?";
}

uint64_t JoinInput::pages() const {
  if (indexed()) return rtree_->node_count();
  constexpr uint64_t per_page = kPageSize / sizeof(RectF);
  return (count() + per_page - 1) / per_page;
}

std::string PlanDecision::Describe() const {
  std::ostringstream os;
  os << "plan " << ToString(algorithm) << " (est. touches "
     << static_cast<int>(touched_fraction * 100.0 + 0.5)
     << "% of index; stream " << stream_cost_seconds << " s vs index "
     << index_cost_seconds << " s";
  if (refine_cost_seconds > 0.0) {
    os << ", incl. refine " << refine_cost_seconds << " s";
  }
  if (sort_cpu_seconds > 0.0) {
    os << ", incl. sort CPU " << sort_cpu_seconds << " s";
  }
  if (pbsm_partitions > 0) {
    os << "; PBSM " << (pbsm_adaptive ? "adaptive" : "fixed") << " "
       << pbsm_tiles_per_axis << "x" << pbsm_tiles_per_axis << " grid";
    if (pbsm_adaptive && pbsm_leaf_tiles > 0) {
      os << " (" << pbsm_leaf_tiles << " leaves)";
    }
    os << ", " << pbsm_partitions << " partitions, " << pbsm_cost_seconds
       << " s";
  }
  if (!memory.empty()) os << "; mem " << memory.Describe();
  os << ") — " << rationale;
  return os.str();
}

std::vector<std::pair<std::string, std::string>> PlanDecision::ToKeyValues()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  auto num = [](double v) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
  };
  kv.emplace_back("algorithm", ToString(algorithm));
  kv.emplace_back("touched_fraction", num(touched_fraction));
  kv.emplace_back("stream_cost_seconds", num(stream_cost_seconds));
  kv.emplace_back("index_cost_seconds", num(index_cost_seconds));
  if (refine_cost_seconds > 0.0) {
    kv.emplace_back("refine_cost_seconds", num(refine_cost_seconds));
  }
  if (sort_cpu_seconds > 0.0) {
    kv.emplace_back("sort_cpu_seconds", num(sort_cpu_seconds));
  }
  if (pbsm_partitions > 0) {
    kv.emplace_back("pbsm.adaptive", pbsm_adaptive ? "true" : "false");
    kv.emplace_back("pbsm.tiles_per_axis",
                    std::to_string(pbsm_tiles_per_axis));
    kv.emplace_back("pbsm.partitions", std::to_string(pbsm_partitions));
    if (pbsm_leaf_tiles > 0) {
      kv.emplace_back("pbsm.leaf_tiles", std::to_string(pbsm_leaf_tiles));
    }
    if (histogram_build_seconds > 0.0) {
      kv.emplace_back("pbsm.histogram_build_seconds",
                      num(histogram_build_seconds));
    }
    kv.emplace_back("pbsm.cost_seconds", num(pbsm_cost_seconds));
  }
  if (!memory.empty()) {
    kv.emplace_back("memory.budget_bytes",
                    std::to_string(memory.budget_bytes));
    for (const MemoryGrantSpec& g : memory.grants) {
      kv.emplace_back("memory.grant." + g.component,
                      std::to_string(g.bytes));
    }
  }
  kv.emplace_back("rationale", rationale);
  return kv;
}

MemoryPlan PlanJoinMemory(JoinAlgorithm algo, const JoinOptions& options,
                          uint64_t input_bytes) {
  MemoryPlan plan;
  const size_t budget = std::max(options.memory_bytes, kMinMemoryBytes);
  plan.budget_bytes = budget;
  auto add = [&plan](const char* component, size_t bytes) {
    plan.grants.push_back(MemoryGrantSpec{component, bytes});
  };
  switch (algo) {
    case JoinAlgorithm::kAuto:
      break;  // Resolves to a concrete algorithm at plan time.
    case JoinAlgorithm::kSSSJ:
      // Each side sorts within half the budget (phases are sequential);
      // the sweep grant follows the executor's square-root active-set
      // estimate — when even that exceeds the budget, SSSJ degrades to
      // the strip fallback.
      add(grants::kSortRuns, budget / 2);
      add(grants::kSweep,
          std::min<size_t>(EstimateSweepBytes(input_bytes / sizeof(RectF)),
                           budget));
      break;
    case JoinAlgorithm::kPBSM: {
      const uint32_t p =
          options.adaptive_partitioning
              ? PbsmPartitionCount(input_bytes, budget,
                                   PartitionPlannerConfig().partition_fill)
              : PbsmPartitionCount(input_bytes, budget);
      if (options.adaptive_partitioning) {
        const uint64_t res = std::max(1u, options.pbsm_histogram_resolution);
        add(grants::kPbsmHistogram,
            std::min<uint64_t>(2 * res * res * sizeof(uint64_t), budget));
      }
      // One open writer per partition and side during distribution,
      // with the partition map's preferred flush block: the adaptive
      // planner budgets most of the phase's memory across the 2p
      // writers (PbsmWriterBlockPages, shared with AdaptivePartitionMap),
      // the fixed grid keeps the paper's 4-page constant. The executor
      // shrinks the blocks when the grant comes back smaller.
      const uint64_t block_pages = options.adaptive_partitioning
                                       ? PbsmWriterBlockPages(budget, p)
                                       : 4;
      add(grants::kPbsmWriters,
          std::min<size_t>(budget,
                           size_t{2} * p * block_pages * kPageSize));
      // The join phase loads one partition pair at a time (per
      // serial-equivalent work unit); denial is the overflow signal that
      // routes the pair through the external-sort fallback.
      add(grants::kPbsmPartition, budget);
      break;
    }
    case JoinAlgorithm::kST:
      // The paper gives most of the budget to the shared LRU pool (22 of
      // 24 MB); the pool shrinks to its grant under smaller budgets, the
      // remainder covers the per-node entry lists.
      add(grants::kBufferPool,
          std::min<size_t>(options.buffer_pool_pages * kPageSize,
                           budget - std::min(budget, kPageSize * 2)));
      break;
    case JoinAlgorithm::kPQ:
      // Traversal queues + leaf buffers on one grant, sweep structures
      // on the other (half the budget apiece, exactly what
      // PQJoinSources acquires); a stream side additionally sorts
      // within half the budget before the queues exist.
      add(grants::kSortRuns, budget / 2);
      add(grants::kPqQueue, budget / 2);
      add(grants::kSweep, budget - budget / 2);
      break;
  }
  if (options.refine) {
    add(grants::kRefineBatch,
        std::min<size_t>(budget / 4,
                         size_t{std::max(1u, options.refine_batch_pairs)} *
                             kRefineBytesPerCandidate));
  }
  return plan;
}

std::ostream& operator<<(std::ostream& os, const PlanDecision& decision) {
  return os << decision.Describe();
}

Status JoinExecutor::Validate(const CompiledPlan& plan) const {
  if (plan.inputs.size() != 2) {
    return Status::InvalidArgument(std::string(name()) +
                                   " executes pairwise joins only");
  }
  return Status::OK();
}

namespace {

/// Materializes an indexed input as a stream (sequential leaf scan), for
/// running stream algorithms against trees. The backing pager is parked
/// on the plan so the returned DatasetRef outlives the executor call.
Result<DatasetRef> ExtractLeaves(CompiledPlan& plan, const RTree& tree) {
  // Collect before the writer exists so an index error unwinds without
  // leaving an unfinished stream behind.
  std::vector<RectF> all;
  SJ_RETURN_IF_ERROR(tree.CollectAll(&all));
  SJ_ASSIGN_OR_RETURN(
      auto out,
      MakePager(plan.options.storage.get(), plan.disk, "extract.leaves"));
  StreamWriter<RectF> writer(out.get());
  const PageId first = writer.first_page();
  for (const RectF& r : all) writer.Append(r);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  DatasetRef ref;
  ref.range = StreamRange{out.get(), first, n};
  ref.extent = tree.bounding_box();
  plan.owned_pagers.push_back(std::move(out));
  return ref;
}

/// Sorted source over any input (sorting streams as needed). The returned
/// pagers (if any) own temporary space and must stay alive for the
/// source's lifetime. Indexed inputs become *selective* PQ traversals
/// pruned by the other input's extent (always safe) and occupancy
/// histogram (when provided) — the §6.3 refinement that makes localized
/// joins touch only the relevant part of the index.
struct PreparedSource {
  std::unique_ptr<SortedRectSource> source;
  std::unique_ptr<Pager> scratch;
  std::unique_ptr<Pager> sorted;
  std::unique_ptr<RectF> filter;  // Owned pruning rectangle.
  RTreePQSource* pq = nullptr;  // Set when the source is an index adapter.

  uint64_t index_pages_read() const {
    return pq != nullptr ? pq->pages_read() : 0;
  }
};

Result<PreparedSource> PrepareSource(CompiledPlan& plan,
                                     const JoinInput& input,
                                     const RectF* other_extent = nullptr,
                                     const GridHistogram* other_hist =
                                         nullptr) {
  PreparedSource prepared;
  switch (input.kind()) {
    case JoinInput::Kind::kRTree: {
      RTreePQSource::Options options;
      if (other_extent != nullptr && other_extent->Valid()) {
        prepared.filter = std::make_unique<RectF>(*other_extent);
        options.filter = prepared.filter.get();
      }
      options.occupancy = other_hist;
      auto source = std::make_unique<RTreePQSource>(input.rtree(), options);
      prepared.pq = source.get();
      prepared.source = std::move(source);
      return prepared;
    }
    case JoinInput::Kind::kSortedStream: {
      prepared.source =
          std::make_unique<SortedStreamSource>(input.stream().range);
      return prepared;
    }
    case JoinInput::Kind::kStream: {
      SJ_ASSIGN_OR_RETURN(prepared.scratch,
                          MakePager(plan.options.storage.get(), plan.disk,
                                    "join.sort.runs"));
      SJ_ASSIGN_OR_RETURN(prepared.sorted,
                          MakePager(plan.options.storage.get(), plan.disk,
                                    "join.sort.out"));
      SJ_ASSIGN_OR_RETURN(
          StreamRange sorted,
          SortRectsByYLo(input.stream().range, prepared.scratch.get(),
                         prepared.sorted.get(),
                         plan.options.memory_bytes / 2,
                         plan.arbiter.get(),
                         PrefetchContextOf(plan.options),
                         SortConfigOf(plan.options)));
      prepared.source = std::make_unique<SortedStreamSource>(sorted);
      return prepared;
    }
  }
  return Status::Internal("unreachable join input kind");
}

/// SSSJ and PBSM share their input handling: both consume plain streams,
/// so indexed inputs are first flattened with a leaf scan.
class StreamAlgorithmExecutor : public JoinExecutor {
 public:
  Result<JoinStats> Execute(CompiledPlan& plan, JoinSink* sink) const final {
    DatasetRef ra, rb;
    if (plan.inputs[0].indexed()) {
      SJ_ASSIGN_OR_RETURN(ra, ExtractLeaves(plan, *plan.inputs[0].rtree()));
    } else {
      ra = plan.inputs[0].stream();
    }
    if (plan.inputs[1].indexed()) {
      SJ_ASSIGN_OR_RETURN(rb, ExtractLeaves(plan, *plan.inputs[1].rtree()));
    } else {
      rb = plan.inputs[1].stream();
    }
    return ExecuteStreams(plan, ra, rb, sink);
  }

 protected:
  virtual Result<JoinStats> ExecuteStreams(CompiledPlan& plan,
                                           const DatasetRef& a,
                                           const DatasetRef& b,
                                           JoinSink* sink) const = 0;
};

class SSSJExecutor final : public StreamAlgorithmExecutor {
 public:
  JoinAlgorithm algorithm() const override { return JoinAlgorithm::kSSSJ; }
  const char* name() const override { return "SSSJ"; }

 protected:
  Result<JoinStats> ExecuteStreams(CompiledPlan& plan, const DatasetRef& a,
                                   const DatasetRef& b,
                                   JoinSink* sink) const override {
    return SSSJJoin(a, b, plan.disk, plan.options, sink, plan.arbiter.get());
  }
};

class PBSMExecutor final : public StreamAlgorithmExecutor {
 public:
  JoinAlgorithm algorithm() const override { return JoinAlgorithm::kPBSM; }
  const char* name() const override { return "PBSM"; }

 protected:
  Result<JoinStats> ExecuteStreams(CompiledPlan& plan, const DatasetRef& a,
                                   const DatasetRef& b,
                                   JoinSink* sink) const override {
    // Attached histograms spare the adaptive planner its build pass.
    // (The compile step clears them when an ε-expansion makes them
    // stale, so PBSM then re-derives density from the expanded stream.)
    return PBSMJoin(a, b, plan.disk, plan.options, sink,
                    plan.prune_histogram(0), plan.prune_histogram(1),
                    plan.arbiter.get());
  }
};

class STExecutor final : public JoinExecutor {
 public:
  JoinAlgorithm algorithm() const override { return JoinAlgorithm::kST; }
  const char* name() const override { return "ST"; }

  Status Validate(const CompiledPlan& plan) const override {
    SJ_RETURN_IF_ERROR(JoinExecutor::Validate(plan));
    if (!plan.inputs[0].indexed() || !plan.inputs[1].indexed()) {
      return Status::FailedPrecondition(
          "ST requires R-tree indexes on both inputs");
    }
    return Status::OK();
  }

  Result<JoinStats> Execute(CompiledPlan& plan, JoinSink* sink) const override {
    return STJoin(*plan.inputs[0].rtree(), *plan.inputs[1].rtree(), plan.disk,
                  plan.options, sink, plan.arbiter.get());
  }
};

class PQExecutor final : public JoinExecutor {
 public:
  JoinAlgorithm algorithm() const override { return JoinAlgorithm::kPQ; }
  const char* name() const override { return "PQ"; }

  Result<JoinStats> Execute(CompiledPlan& plan, JoinSink* sink) const override {
    const RectF extent_a = plan.inputs[0].extent();
    const RectF extent_b = plan.inputs[1].extent();
    SJ_ASSIGN_OR_RETURN(
        PreparedSource sa,
        PrepareSource(plan, plan.inputs[0], &extent_b,
                      plan.prune_histogram(1)));
    SJ_ASSIGN_OR_RETURN(
        PreparedSource sb,
        PrepareSource(plan, plan.inputs[1], &extent_a,
                      plan.prune_histogram(0)));
    RectF extent = extent_a;
    extent.ExtendTo(extent_b);
    SJ_ASSIGN_OR_RETURN(
        JoinStats stats,
        PQJoinSources(sa.source.get(), sb.source.get(), extent, plan.disk,
                      plan.options, sink, plan.arbiter.get()));
    stats.index_pages_read = sa.index_pages_read() + sb.index_pages_read();
    return stats;
  }
};

}  // namespace

ExecutorRegistry::ExecutorRegistry() {
  static const SSSJExecutor sssj;
  static const PBSMExecutor pbsm;
  static const STExecutor st;
  static const PQExecutor pq;
  Register(&sssj);
  Register(&pbsm);
  Register(&st);
  Register(&pq);
}

ExecutorRegistry& ExecutorRegistry::Instance() {
  static ExecutorRegistry registry;
  return registry;
}

void ExecutorRegistry::Register(const JoinExecutor* executor) {
  const size_t slot = static_cast<size_t>(executor->algorithm());
  SJ_CHECK(slot < kSlots) << "JoinAlgorithm value out of registry range";
  table_[slot] = executor;
}

const JoinExecutor* ExecutorRegistry::Find(JoinAlgorithm algo) const {
  const size_t slot = static_cast<size_t>(algo);
  return slot < kSlots ? table_[slot] : nullptr;
}

const JoinExecutor* FindExecutor(JoinAlgorithm algo) {
  return ExecutorRegistry::Instance().Find(algo);
}

Result<MultiwayStats> ExecuteMultiwayFilter(CompiledPlan& plan,
                                            TupleSink* sink) {
  std::vector<PreparedSource> prepared;
  prepared.reserve(plan.inputs.size());
  RectF extent = RectF::Empty();
  for (const JoinInput& input : plan.inputs) {
    SJ_ASSIGN_OR_RETURN(PreparedSource p, PrepareSource(plan, input));
    prepared.push_back(std::move(p));
    extent.ExtendTo(input.extent());
  }
  // The chain's in-memory state (sweep structures, lazy pair tables,
  // traversal queues) runs under one grant; its sampled maximum
  // (MultiwayStats::max_bytes) is reported as usage, so a strict
  // arbiter aborts when a k-way chain outgrows the budget.
  MemoryGrant chain_grant;
  if (plan.arbiter != nullptr) {
    chain_grant = plan.arbiter->AcquireShrinkable(
        grants::kSweep, plan.arbiter->budget() / 2, /*floor_bytes=*/0);
  }
  auto note_chain = [&chain_grant](const MultiwayStats& stats) {
    chain_grant.NoteUsage(stats.max_bytes);
  };
  if (plan.options.num_threads > 1) {
    // Parallel path: materialize every prepared source as a y-sorted
    // stream (index traversals included), then strip-partition the
    // domain and join strips on the worker pool. The serial chain reads
    // its sources lazily inside its own measurement, so the
    // materialization pass here is measured too and folded into the
    // returned stats — the counters must cover exactly the algorithm's
    // own work either way.
    JoinMeasurement materialize_measurement(plan.disk);
    std::vector<std::unique_ptr<Pager>> stream_pagers;
    std::vector<DatasetRef> streams;
    stream_pagers.reserve(prepared.size());
    streams.reserve(prepared.size());
    for (size_t i = 0; i < prepared.size(); ++i) {
      SJ_ASSIGN_OR_RETURN(
          auto pager,
          MakePager(plan.options.storage.get(), plan.disk,
                    "multiway.materialized." + std::to_string(i)));
      StreamWriter<RectF> writer(pager.get());
      const PageId first = writer.first_page();
      while (std::optional<RectF> r = prepared[i].source->Next()) {
        writer.Append(*r);
      }
      SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
      DatasetRef ref;
      ref.range = StreamRange{pager.get(), first, n};
      ref.extent = plan.inputs[i].extent();
      streams.push_back(ref);
      stream_pagers.push_back(std::move(pager));
    }
    const JoinStats materialize = materialize_measurement.Finish();
    SJ_ASSIGN_OR_RETURN(
        MultiwayStats stats,
        MultiwayJoinStreams(streams, extent, plan.disk, plan.options, sink));
    stats.disk += materialize.disk;
    stats.host_cpu_seconds += materialize.host_cpu_seconds;
    stats.candidate_count = stats.output_count;
    note_chain(stats);
    return stats;
  }
  std::vector<SortedRectSource*> sources;
  sources.reserve(prepared.size());
  for (PreparedSource& p : prepared) sources.push_back(p.source.get());
  SJ_ASSIGN_OR_RETURN(
      MultiwayStats stats,
      MultiwayJoinSources(sources, extent, plan.disk, plan.options, sink));
  stats.candidate_count = stats.output_count;
  note_chain(stats);
  return stats;
}

}  // namespace sj
