#include "join/multiway.h"

#include <algorithm>
#include <deque>

#include "sweep/sweep_join.h"
#include "util/logging.h"

namespace sj {
namespace {

template <typename Structure>
class PairSourceImpl final : public PairSourceBase {
 public:
  PairSourceImpl(SortedRectSource* a, SortedRectSource* b, const RectF& extent,
                 uint32_t strips)
      : a_(a),
        b_(b),
        active_a_(extent, strips),
        active_b_(extent, strips) {
    head_a_ = a_->Next();
    head_b_ = b_->Next();
  }

  std::optional<RectF> Next() override {
    while (pending_.empty() &&
           (head_a_.has_value() || head_b_.has_value())) {
      Step();
    }
    if (pending_.empty()) return std::nullopt;
    RectF out = pending_.front();
    pending_.pop_front();
    return out;
  }

  size_t MemoryBytes() const override {
    return a_->MemoryBytes() + b_->MemoryBytes() + active_a_.MemoryBytes() +
           active_b_.MemoryBytes() + pending_.size() * sizeof(RectF) +
           pairs_.size() * sizeof(IdPair);
  }

  const std::vector<IdPair>& pairs() const override { return pairs_; }

 private:
  void Step() {
    const bool take_a = head_a_.has_value() &&
                        (!head_b_.has_value() || head_a_->ylo <= head_b_->ylo);
    if (take_a) {
      const RectF r = *head_a_;
      active_b_.QueryAndExpire(r, [&](const RectF& other) { Found(r, other); });
      active_a_.Insert(r);
      head_a_ = a_->Next();
    } else {
      const RectF r = *head_b_;
      active_a_.QueryAndExpire(r, [&](const RectF& other) { Found(other, r); });
      active_b_.Insert(r);
      head_b_ = b_->Next();
    }
  }

  void Found(const RectF& from_a, const RectF& from_b) {
    RectF overlap = from_a.IntersectionWith(from_b);
    overlap.id = static_cast<ObjectId>(pairs_.size());
    pairs_.push_back(IdPair{from_a.id, from_b.id});
    pending_.push_back(overlap);
  }

  SortedRectSource* a_;
  SortedRectSource* b_;
  Structure active_a_;
  Structure active_b_;
  std::optional<RectF> head_a_;
  std::optional<RectF> head_b_;
  std::deque<RectF> pending_;
  std::vector<IdPair> pairs_;
};

}  // namespace

std::unique_ptr<PairSourceBase> MakePairSource(SortedRectSource* a,
                                               SortedRectSource* b,
                                               SweepStructureKind kind,
                                               const RectF& extent,
                                               uint32_t strips) {
  if (kind == SweepStructureKind::kStriped) {
    return std::make_unique<PairSourceImpl<StripedSweep>>(a, b, extent,
                                                          strips);
  }
  return std::make_unique<PairSourceImpl<ForwardSweep>>(a, b, extent, strips);
}

Result<MultiwayStats> MultiwayJoinSources(
    const std::vector<SortedRectSource*>& inputs, const RectF& extent,
    DiskModel* disk, const JoinOptions& options, TupleSink* sink) {
  if (inputs.size() < 2) {
    return Status::InvalidArgument("multiway join needs at least 2 inputs");
  }
  JoinMeasurement measurement(disk);

  // Left-deep chain: ((in0 x in1) x in2) x ...; all but the last stage are
  // lazy pair sources.
  std::vector<std::unique_ptr<PairSourceBase>> chain;
  SortedRectSource* left = inputs[0];
  for (size_t i = 1; i + 1 < inputs.size(); ++i) {
    chain.push_back(MakePairSource(left, inputs[i], options.stream_sweep,
                                   extent, options.striped_strips));
    left = chain.back().get();
  }
  SortedRectSource* right = inputs.back();

  // Expands a composite id from chain stage `depth` (0 = raw input 0).
  std::vector<ObjectId> tuple;
  auto expand = [&](auto&& self, size_t depth, ObjectId id) -> void {
    if (depth == 0) {
      tuple.push_back(id);
      return;
    }
    const IdPair& p = chain[depth - 1]->pairs()[id];
    self(self, depth - 1, p.a);
    tuple.push_back(p.b);
  };

  uint64_t output = 0;
  size_t max_bytes = 0;
  auto emit = [&](const RectF& ra, const RectF& rb) {
    tuple.clear();
    expand(expand, chain.size(), ra.id);
    tuple.push_back(rb.id);
    sink->Emit(tuple);
    output++;
  };
  struct Adapter {
    SortedRectSource* s;
    std::optional<RectF> Next() { return s->Next(); }
  } sa{left}, sb{right};
  auto probe = [&]() {
    max_bytes = std::max(max_bytes, left->MemoryBytes() + right->MemoryBytes());
  };
  SweepJoinWithKind(options.stream_sweep, extent, options.striped_strips, sa,
                    sb, emit, probe);

  MultiwayStats stats;
  const JoinStats base = measurement.Finish();
  stats.host_cpu_seconds = base.host_cpu_seconds;
  stats.disk = base.disk;
  stats.output_count = output;
  stats.max_bytes = max_bytes;
  return stats;
}

}  // namespace sj
