#include "join/multiway.h"

#include <algorithm>
#include <deque>
#include <ostream>
#include <sstream>
#include <string>

#include "join/strip_map.h"
#include "sweep/sweep_join.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {

std::string MultiwayStats::Describe() const {
  std::ostringstream os;
  os << output_count << " result tuples";
  if (candidate_count != output_count) {
    os << " (" << candidate_count << " candidates before refinement, "
       << refine_pages_read << " feature pages fetched)";
  }
  os << "; " << disk.pages_read << " pages read, " << disk.pages_written
     << " written; peak in-memory state "
     << (max_bytes + 1023) / 1024 << " KB";
  if (peak_memory_bytes > 0) {
    os << "; peak mem " << (peak_memory_bytes + 1023) / 1024 << " KB granted";
  }
  return os.str();
}

std::string MultiwayStats::Describe(const MachineModel& m) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << Describe() << "; modeled "
     << (disk.io_seconds + host_cpu_seconds * m.cpu_slowdown) << " s ("
     << disk.io_seconds << " s I/O)";
  if (disk.io_wall_seconds > 0.0) {
    os.precision(4);
    os << "; measured " << disk.io_wall_seconds << " s I/O wall";
  }
  return os.str();
}

std::vector<std::pair<std::string, std::string>> MultiwayStats::ToKeyValues()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  auto num = [](double v) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
  };
  kv.emplace_back("output_count", std::to_string(output_count));
  kv.emplace_back("candidate_count", std::to_string(candidate_count));
  kv.emplace_back("pages_read", std::to_string(disk.pages_read));
  kv.emplace_back("pages_written", std::to_string(disk.pages_written));
  kv.emplace_back("io_seconds", num(disk.io_seconds));
  kv.emplace_back("io_wall_seconds", num(disk.io_wall_seconds));
  kv.emplace_back("host_cpu_seconds", num(host_cpu_seconds));
  kv.emplace_back("max_bytes", std::to_string(max_bytes));
  if (refine_pages_read > 0) {
    kv.emplace_back("refine_pages_read", std::to_string(refine_pages_read));
  }
  if (peak_memory_bytes > 0) {
    kv.emplace_back("peak_memory_bytes", std::to_string(peak_memory_bytes));
  }
  return kv;
}

std::ostream& operator<<(std::ostream& os, const MultiwayStats& stats) {
  return os << stats.Describe();
}

namespace {

template <typename Structure>
class PairSourceImpl final : public PairSourceBase {
 public:
  PairSourceImpl(SortedRectSource* a, SortedRectSource* b, const RectF& extent,
                 uint32_t strips)
      : a_(a),
        b_(b),
        active_a_(extent, strips),
        active_b_(extent, strips) {
    head_a_ = a_->Next();
    head_b_ = b_->Next();
  }

  std::optional<RectF> Next() override {
    while (pending_.empty() &&
           (head_a_.has_value() || head_b_.has_value())) {
      Step();
    }
    if (pending_.empty()) return std::nullopt;
    RectF out = pending_.front();
    pending_.pop_front();
    return out;
  }

  size_t MemoryBytes() const override {
    return a_->MemoryBytes() + b_->MemoryBytes() + active_a_.MemoryBytes() +
           active_b_.MemoryBytes() + pending_.size() * sizeof(RectF) +
           pairs_.size() * sizeof(IdPair);
  }

  const std::vector<IdPair>& pairs() const override { return pairs_; }

 private:
  void Step() {
    const bool take_a = head_a_.has_value() &&
                        (!head_b_.has_value() || head_a_->ylo <= head_b_->ylo);
    if (take_a) {
      const RectF r = *head_a_;
      active_b_.QueryAndExpire(r, [&](const RectF& other) { Found(r, other); });
      active_a_.Insert(r);
      head_a_ = a_->Next();
    } else {
      const RectF r = *head_b_;
      active_a_.QueryAndExpire(r, [&](const RectF& other) { Found(other, r); });
      active_b_.Insert(r);
      head_b_ = b_->Next();
    }
  }

  void Found(const RectF& from_a, const RectF& from_b) {
    RectF overlap = from_a.IntersectionWith(from_b);
    overlap.id = static_cast<ObjectId>(pairs_.size());
    pairs_.push_back(IdPair{from_a.id, from_b.id});
    pending_.push_back(overlap);
  }

  SortedRectSource* a_;
  SortedRectSource* b_;
  Structure active_a_;
  Structure active_b_;
  std::optional<RectF> head_a_;
  std::optional<RectF> head_b_;
  std::deque<RectF> pending_;
  std::vector<IdPair> pairs_;
};

struct ChainRunStats {
  uint64_t output_count = 0;
  size_t max_bytes = 0;
};

/// The left-deep chain shared by the serial and per-strip parallel paths:
/// ((in0 x in1) x in2) x ...; all but the last stage are lazy pair
/// sources. `accept(ra, rb)` filters final results before expansion (the
/// parallel path uses it for the strip reference-point test); `ra` is the
/// running intersection of inputs 0..k-2, so max(ra.xlo, rb.xlo) is the
/// left edge of the full k-way intersection.
template <typename Accept>
ChainRunStats RunMultiwayChain(const std::vector<SortedRectSource*>& inputs,
                               const RectF& extent, const JoinOptions& options,
                               TupleSink* sink, Accept&& accept) {
  std::vector<std::unique_ptr<PairSourceBase>> chain;
  SortedRectSource* left = inputs[0];
  for (size_t i = 1; i + 1 < inputs.size(); ++i) {
    chain.push_back(MakePairSource(left, inputs[i], options.stream_sweep,
                                   extent, options.striped_strips));
    left = chain.back().get();
  }
  SortedRectSource* right = inputs.back();

  // Expands a composite id from chain stage `depth` (0 = raw input 0).
  std::vector<ObjectId> tuple;
  auto expand = [&](auto&& self, size_t depth, ObjectId id) -> void {
    if (depth == 0) {
      tuple.push_back(id);
      return;
    }
    const IdPair& p = chain[depth - 1]->pairs()[id];
    self(self, depth - 1, p.a);
    tuple.push_back(p.b);
  };

  ChainRunStats stats;
  auto emit = [&](const RectF& ra, const RectF& rb) {
    if (!accept(ra, rb)) return;
    tuple.clear();
    expand(expand, chain.size(), ra.id);
    tuple.push_back(rb.id);
    sink->Emit(tuple);
    stats.output_count++;
  };
  struct Adapter {
    SortedRectSource* s;
    std::optional<RectF> Next() { return s->Next(); }
  } sa{left}, sb{right};
  auto probe = [&]() {
    stats.max_bytes =
        std::max(stats.max_bytes, left->MemoryBytes() + right->MemoryBytes());
  };
  SweepJoinWithKind(options.stream_sweep, extent, options.striped_strips, sa,
                    sb, emit, probe);
  return stats;
}

}  // namespace

std::unique_ptr<PairSourceBase> MakePairSource(SortedRectSource* a,
                                               SortedRectSource* b,
                                               SweepStructureKind kind,
                                               const RectF& extent,
                                               uint32_t strips) {
  if (kind == SweepStructureKind::kStriped) {
    return std::make_unique<PairSourceImpl<StripedSweep>>(a, b, extent,
                                                          strips);
  }
  return std::make_unique<PairSourceImpl<ForwardSweep>>(a, b, extent, strips);
}

Result<MultiwayStats> MultiwayJoinSources(
    const std::vector<SortedRectSource*>& inputs, const RectF& extent,
    DiskModel* disk, const JoinOptions& options, TupleSink* sink) {
  if (inputs.size() < 2) {
    return Status::InvalidArgument("multiway join needs at least 2 inputs");
  }
  JoinMeasurement measurement(disk);

  const ChainRunStats run = RunMultiwayChain(
      inputs, extent, options, sink,
      [](const RectF&, const RectF&) { return true; });

  MultiwayStats stats;
  const JoinStats base = measurement.Finish();
  stats.host_cpu_seconds = base.host_cpu_seconds;
  stats.disk = base.disk;
  stats.output_count = run.output_count;
  stats.max_bytes = run.max_bytes;
  return stats;
}

Result<MultiwayStats> MultiwayJoinStreams(const std::vector<DatasetRef>& inputs,
                                          const RectF& extent, DiskModel* disk,
                                          const JoinOptions& options,
                                          TupleSink* sink) {
  if (inputs.size() < 2) {
    return Status::InvalidArgument("multiway join needs at least 2 inputs");
  }
  JoinMeasurement measurement(disk);
  const StripMap map(extent, options.multiway_strips);
  const size_t k = inputs.size();

  // Phase 1 (serial, shared disk): replicate every input into the strips
  // it overlaps. Inputs are y-sorted and distribution preserves order, so
  // each strip file is itself a valid sorted source.
  struct StripFiles {
    std::vector<std::unique_ptr<Pager>> pagers;  // One per input.
    std::vector<StreamRange> ranges;
  };
  std::vector<StripFiles> strips(map.strips());
  for (StripFiles& s : strips) {
    s.pagers.resize(k);
    s.ranges.resize(k);
  }
  for (size_t in = 0; in < k; ++in) {
    std::vector<std::unique_ptr<StreamWriter<RectF>>> writers(map.strips());
    // Abandons every still-open writer of this input so an error return
    // unwinds instead of tripping the writers' destructor checks.
    auto abandon_writers = [&writers]() {
      for (auto& w : writers) {
        if (w != nullptr) w->Abandon();
      }
    };
    for (uint32_t s = 0; s < map.strips(); ++s) {
      Result<std::unique_ptr<Pager>> pager = MakePager(
          options.storage.get(), disk,
          "multiway.strip." + std::to_string(s) + "." + std::to_string(in));
      if (!pager.ok()) {
        abandon_writers();
        return pager.status();
      }
      strips[s].pagers[in] = std::move(pager).value();
      writers[s] = std::make_unique<StreamWriter<RectF>>(
          strips[s].pagers[in].get(), /*block_pages=*/4);
    }
    StreamReader<RectF> reader(inputs[in].range.pager,
                               inputs[in].range.first_page,
                               inputs[in].range.count);
    while (std::optional<RectF> r = reader.Next()) {
      const uint32_t s0 = map.StripOf(r->xlo);
      const uint32_t s1 = map.StripOf(r->xhi);
      for (uint32_t s = s0; s <= s1; ++s) writers[s]->Append(*r);
    }
    // Finish every writer even when one fails, then surface the first
    // failure (Finish marks a stream finished on error too).
    Status first_error = Status::OK();
    for (uint32_t s = 0; s < map.strips(); ++s) {
      const PageId first = writers[s]->first_page();
      Result<uint64_t> n = writers[s]->Finish();
      if (n.ok()) {
        strips[s].ranges[in] =
            StreamRange{strips[s].pagers[in].get(), first, n.value()};
      } else if (first_error.ok()) {
        first_error = n.status();
      }
    }
    SJ_RETURN_IF_ERROR(first_error);
  }

  // Phase 2: one chain per strip against a private shard; a tuple is
  // reported only in the strip owning the left edge of its full k-way
  // intersection. Stats merge as in PBSM: identical for any num_threads.
  struct StripTask {
    std::unique_ptr<DiskModel> disk;
    StripFiles files;
    CollectingTupleSink sink;
    uint64_t output = 0;
    size_t max_bytes = 0;
    double cpu_seconds = 0;
  };
  // Inline runs (same condition as ParallelFor's) stream tuples straight
  // to the caller's sink in strip order; only pooled runs buffer.
  const bool pooled = options.num_threads > 1 && map.strips() > 1;
  std::vector<StripTask> tasks(map.strips());
  for (uint32_t s = 0; s < map.strips(); ++s) {
    StripTask& t = tasks[s];
    t.disk = std::make_unique<DiskModel>(disk->machine());
    t.files.pagers.resize(k);
    t.files.ranges.resize(k);
    for (size_t in = 0; in < k; ++in) {
      t.files.pagers[in] =
          RehomePager(std::move(strips[s].pagers[in]), t.disk.get());
      t.files.ranges[in] = StreamRange{t.files.pagers[in].get(),
                                       strips[s].ranges[in].first_page,
                                       strips[s].ranges[in].count};
    }
  }

  SJ_RETURN_IF_ERROR(ParallelFor(
      options.worker_pool, options.num_threads, map.strips(), [&](uint64_t s) -> Status {
        StripTask& t = tasks[s];
        ThreadCpuTimer cpu;
        TupleSink* out = pooled ? static_cast<TupleSink*>(&t.sink) : sink;
        std::vector<std::unique_ptr<SortedStreamSource>> sources;
        std::vector<SortedRectSource*> source_ptrs;
        sources.reserve(k);
        source_ptrs.reserve(k);
        for (size_t in = 0; in < k; ++in) {
          sources.push_back(
              std::make_unique<SortedStreamSource>(t.files.ranges[in]));
          source_ptrs.push_back(sources.back().get());
        }
        const ChainRunStats run = RunMultiwayChain(
            source_ptrs, extent, options, out,
            [&](const RectF& ra, const RectF& rb) {
              return map.StripOf(std::max(ra.xlo, rb.xlo)) == s;
            });
        t.output = run.output_count;
        t.max_bytes = run.max_bytes;
        t.cpu_seconds = cpu.Elapsed();
        return Status::OK();
      }));

  uint64_t output = 0;
  size_t max_bytes = 0;
  double worker_cpu = 0;
  DiskStats shard_disk;
  for (const StripTask& t : tasks) {
    if (pooled) {
      for (const std::vector<ObjectId>& tuple : t.sink.tuples()) {
        sink->Emit(tuple);
      }
    }
    output += t.output;
    max_bytes = std::max(max_bytes, t.max_bytes);
    worker_cpu += t.cpu_seconds;
    shard_disk += t.disk->stats();
  }

  MultiwayStats stats;
  const JoinStats base = measurement.Finish();
  stats.host_cpu_seconds = base.host_cpu_seconds;
  if (pooled) stats.host_cpu_seconds += worker_cpu;
  stats.disk = base.disk;
  stats.disk += shard_disk;
  stats.output_count = output;
  stats.max_bytes = max_bytes;
  return stats;
}

}  // namespace sj
