#include "join/pq_join.h"

#include <algorithm>

#include "sort/external_sort.h"
#include "sweep/sweep_join.h"

namespace sj {
namespace {

/// Adapter so the sweep templates can pull from a SortedRectSource*.
struct SourceAdapter {
  SortedRectSource* source;
  std::optional<RectF> Next() { return source->Next(); }
};

}  // namespace

Result<JoinStats> PQJoinSources(SortedRectSource* a, SortedRectSource* b,
                                const RectF& extent, DiskModel* disk,
                                const JoinOptions& options, JoinSink* sink,
                                MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  // Static split: traversal queues and leaf buffers on one grant, sweep
  // structures on the other. Sampled maxima are reported as usage — the
  // paper's "data structures fit in memory" assumption, now checked by
  // the arbiter (strict mode aborts; an external priority queue [2,9]
  // would be the spill path for inputs that defeat it).
  MemoryGrant queue_grant = scope->AcquireShrinkable(
      grants::kPqQueue, scope->budget() / 2, /*floor_bytes=*/0);
  MemoryGrant sweep_grant = scope->AcquireShrinkable(
      grants::kSweep, scope->budget() / 2, /*floor_bytes=*/0);
  JoinMeasurement measurement(disk);
  SourceAdapter sa{a}, sb{b};
  size_t max_queue_bytes = 0;
  auto emit = [sink](const RectF& ra, const RectF& rb) {
    sink->Emit(ra.id, rb.id);
  };
  auto probe = [&]() {
    max_queue_bytes =
        std::max(max_queue_bytes, a->MemoryBytes() + b->MemoryBytes());
  };
  const SweepRunStats sweep_stats = SweepJoinWithKind(
      options.stream_sweep, extent, options.striped_strips, sa, sb, emit,
      probe);
  queue_grant.NoteUsage(max_queue_bytes);
  sweep_grant.NoteUsage(sweep_stats.max_structure_bytes);

  JoinStats stats = measurement.Finish();
  stats.output_count = sweep_stats.output_count;
  stats.max_sweep_bytes = sweep_stats.max_structure_bytes;
  stats.sweep_strips_collapsed = sweep_stats.strips_collapsed;
  stats.max_queue_bytes = max_queue_bytes;
  queue_grant.Release();
  sweep_grant.Release();
  FillMemoryStats(*scope, &stats);
  return stats;
}

Result<JoinStats> PQJoin(const RTree& a, const RTree& b, DiskModel* disk,
                         const JoinOptions& options, JoinSink* sink,
                         MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  RTreePQSource source_a(&a);
  RTreePQSource source_b(&b);
  RectF extent = a.bounding_box();
  extent.ExtendTo(b.bounding_box());
  SJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      PQJoinSources(&source_a, &source_b, extent, disk, options, sink,
                    scope.get()));
  stats.index_pages_read = source_a.pages_read() + source_b.pages_read();
  return stats;
}

Result<JoinStats> PQJoinIndexStream(const RTree& a, const DatasetRef& b,
                                    DiskModel* disk,
                                    const JoinOptions& options,
                                    JoinSink* sink,
                                    MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  // Sort the non-indexed side (charged), as SSSJ would.
  SJ_ASSIGN_OR_RETURN(auto scratch,
                      MakePager(options.storage.get(), disk, "pq.sort.runs"));
  SJ_ASSIGN_OR_RETURN(auto sorted,
                      MakePager(options.storage.get(), disk, "pq.sort.out"));
  SortStats sort_stats;
  SJ_ASSIGN_OR_RETURN(
      StreamRange sorted_b,
      SortRectsByYLo(b.range, scratch.get(), sorted.get(),
                     options.memory_bytes / 2, scope.get(),
                     PrefetchContextOf(options), SortConfigOf(options),
                     &sort_stats));
  RTreePQSource source_a(&a);
  SortedStreamSource source_b(sorted_b);
  SJ_ASSIGN_OR_RETURN(RectF extent_b, EnsureExtent(b));
  RectF extent = a.bounding_box();
  extent.ExtendTo(extent_b);
  SJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      PQJoinSources(&source_a, &source_b, extent, disk, options, sink,
                    scope.get()));
  stats.index_pages_read = source_a.pages_read();
  stats.FoldSortStats(sort_stats);
  return stats;
}

}  // namespace sj
