#include "join/pq_join.h"

#include <algorithm>

#include "sort/external_sort.h"
#include "sweep/sweep_join.h"

namespace sj {
namespace {

/// Adapter so the sweep templates can pull from a SortedRectSource*.
struct SourceAdapter {
  SortedRectSource* source;
  std::optional<RectF> Next() { return source->Next(); }
};

}  // namespace

Result<JoinStats> PQJoinSources(SortedRectSource* a, SortedRectSource* b,
                                const RectF& extent, DiskModel* disk,
                                const JoinOptions& options, JoinSink* sink) {
  JoinMeasurement measurement(disk);
  SourceAdapter sa{a}, sb{b};
  size_t max_queue_bytes = 0;
  auto emit = [sink](const RectF& ra, const RectF& rb) {
    sink->Emit(ra.id, rb.id);
  };
  auto probe = [&]() {
    max_queue_bytes =
        std::max(max_queue_bytes, a->MemoryBytes() + b->MemoryBytes());
  };
  const SweepRunStats sweep_stats = SweepJoinWithKind(
      options.stream_sweep, extent, options.striped_strips, sa, sb, emit,
      probe);
  SJ_CHECK(sweep_stats.max_structure_bytes + max_queue_bytes <=
           options.memory_bytes)
      << "PQ data structures exceeded memory; an external priority queue "
         "([2,9]) would be required for this input";

  JoinStats stats = measurement.Finish();
  stats.output_count = sweep_stats.output_count;
  stats.max_sweep_bytes = sweep_stats.max_structure_bytes;
  stats.max_queue_bytes = max_queue_bytes;
  return stats;
}

Result<JoinStats> PQJoin(const RTree& a, const RTree& b, DiskModel* disk,
                         const JoinOptions& options, JoinSink* sink) {
  RTreePQSource source_a(&a);
  RTreePQSource source_b(&b);
  RectF extent = a.bounding_box();
  extent.ExtendTo(b.bounding_box());
  SJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      PQJoinSources(&source_a, &source_b, extent, disk, options, sink));
  stats.index_pages_read = source_a.pages_read() + source_b.pages_read();
  return stats;
}

Result<JoinStats> PQJoinIndexStream(const RTree& a, const DatasetRef& b,
                                    DiskModel* disk,
                                    const JoinOptions& options,
                                    JoinSink* sink) {
  // Sort the non-indexed side (charged), as SSSJ would.
  auto scratch = MakeMemoryPager(disk, "pq.sort.runs");
  auto sorted = MakeMemoryPager(disk, "pq.sort.out");
  SJ_ASSIGN_OR_RETURN(
      StreamRange sorted_b,
      SortRectsByYLo(b.range, scratch.get(), sorted.get(),
                     options.memory_bytes / 2));
  RTreePQSource source_a(&a);
  SortedStreamSource source_b(sorted_b);
  SJ_ASSIGN_OR_RETURN(RectF extent_b, EnsureExtent(b));
  RectF extent = a.bounding_box();
  extent.ExtendTo(extent_b);
  SJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      PQJoinSources(&source_a, &source_b, extent, disk, options, sink));
  stats.index_pages_read = source_a.pages_read();
  return stats;
}

}  // namespace sj
