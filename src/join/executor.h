#ifndef USJ_JOIN_EXECUTOR_H_
#define USJ_JOIN_EXECUTOR_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "histogram/grid_histogram.h"
#include "io/disk_model.h"
#include "join/join_types.h"
#include "join/multiway.h"
#include "join/predicate.h"
#include "refine/feature_store.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// One side of a join in the unified API: a relation that is either a
/// stream of MBRs (sorted or not) or a packed R-tree.
class JoinInput {
 public:
  enum class Kind { kStream, kSortedStream, kRTree };

  static JoinInput FromStream(const DatasetRef& ref) {
    return JoinInput(Kind::kStream, ref, nullptr);
  }
  /// The stream must already be sorted by OrderByYLo.
  static JoinInput FromSortedStream(const DatasetRef& ref) {
    return JoinInput(Kind::kSortedStream, ref, nullptr);
  }
  /// The tree must outlive the join.
  static JoinInput FromRTree(const RTree* tree) {
    return JoinInput(Kind::kRTree, DatasetRef{}, tree);
  }

  /// Attaches the relation's exact geometry (refinement step, see
  /// JoinOptions::refine). The store must outlive the join. Chainable:
  /// `JoinInput::FromStream(ref).WithFeatures(&store)` — the rvalue
  /// overload returns by value, so chaining off a temporary never hands
  /// out a dangling reference.
  JoinInput& WithFeatures(const FeatureStore* store) & {
    features_ = store;
    return *this;
  }
  JoinInput WithFeatures(const FeatureStore* store) && {
    features_ = store;
    return *this;
  }

  Kind kind() const { return kind_; }
  bool indexed() const { return kind_ == Kind::kRTree; }
  const DatasetRef& stream() const { return stream_; }
  const RTree* rtree() const { return rtree_; }
  const FeatureStore* features() const { return features_; }

  /// Number of MBR records in the relation.
  uint64_t count() const {
    return indexed() ? rtree_->meta().entry_count : stream_.count();
  }
  /// Pages occupied by the relation (index pages for trees).
  uint64_t pages() const;
  /// Spatial extent (must be computable without I/O for indexed inputs).
  RectF extent() const {
    return indexed() ? rtree_->bounding_box() : stream_.extent;
  }

 private:
  JoinInput(Kind kind, const DatasetRef& stream, const RTree* rtree)
      : kind_(kind), stream_(stream), rtree_(rtree) {}

  Kind kind_;
  DatasetRef stream_;
  const RTree* rtree_;
  const FeatureStore* features_ = nullptr;
};

/// Which algorithm executes a join.
enum class JoinAlgorithm {
  kAuto,  ///< Let the planner decide from the cost model.
  kSSSJ,
  kPBSM,
  kST,
  kPQ,
};

const char* ToString(JoinAlgorithm algo);

/// The planner's verdict, with the numbers behind it.
struct PlanDecision {
  JoinAlgorithm algorithm = JoinAlgorithm::kSSSJ;
  /// Estimated fraction of index pages a PQ/ST traversal would touch.
  double touched_fraction = 1.0;
  double index_cost_seconds = 0.0;
  double stream_cost_seconds = 0.0;
  /// Estimated refinement I/O (0 unless options.refine and both inputs
  /// carry FeatureStores). Included in both plan costs above — it is the
  /// same for every filter algorithm, so it never flips the choice, but
  /// the totals stay honest end-to-end estimates.
  double refine_cost_seconds = 0.0;
  /// Estimated external-sort CPU of the streaming plan (run-formation
  /// compares spread over the sort threads plus coordinator merge
  /// passes, at the granted sort memory). Included in
  /// stream_cost_seconds — and per non-indexed side in
  /// index_cost_seconds — so worker threads shift the kAuto crossover
  /// toward the streaming plans.
  double sort_cpu_seconds = 0.0;
  /// The PBSM partitioning pre-plan under the query's options, so
  /// Explain() reports the grid execution would use: adaptive or fixed,
  /// the (base) tiles per axis, and the partition count. When adaptive
  /// planning has histograms to work from, `pbsm_partitions` and
  /// `pbsm_leaf_tiles` come from actually running the PartitionPlanner;
  /// otherwise they are the memory-budget formula and the base grid.
  bool pbsm_adaptive = false;
  uint32_t pbsm_tiles_per_axis = 0;
  uint32_t pbsm_partitions = 0;
  uint32_t pbsm_leaf_tiles = 0;
  /// Estimated cost of the histogram-build pass adaptive partitioning
  /// adds for inputs without attached histograms (0 when fixed or when
  /// both histograms are attached).
  double histogram_build_seconds = 0.0;
  /// End-to-end PBSM estimate (distribution + replicated write/read +
  /// histogram pass + refinement term), for comparison against the
  /// stream/index costs above.
  double pbsm_cost_seconds = 0.0;
  /// The memory shape of the chosen algorithm under the query's budget:
  /// which components will be granted how much (the executors acquire
  /// the live grants with the same names and arithmetic). The stream and
  /// index costs above are priced at these *granted* sizes — a tight
  /// budget adds external-sort merge passes to the streaming plans and
  /// can flip the kAuto decision toward the index.
  MemoryPlan memory;
  std::string rationale;

  /// One human-readable line: algorithm, touched fraction, both plan
  /// costs, the grant breakdown, and the rationale.
  std::string Describe() const;

  /// The decision as ordered key/value pairs — the structured form of
  /// Describe() for machine consumers (tests asserting on plan fields,
  /// bench result tables, service introspection). Always present:
  /// "algorithm", "touched_fraction", "stream_cost_seconds",
  /// "index_cost_seconds", "rationale". Conditionally (when the planner
  /// computed them): "refine_cost_seconds", the "pbsm.*" partitioning
  /// group, "memory.budget_bytes" and one "memory.grant.<component>" per
  /// planned grant. Numeric values use %.6g / plain integers, so tests
  /// can parse them back without locale surprises.
  std::vector<std::pair<std::string, std::string>> ToKeyValues() const;
};

std::ostream& operator<<(std::ostream& os, const PlanDecision& decision);

/// The compile step's output: a JoinQuery resolved into exactly what an
/// executor needs — filter-ready inputs (ε-expansion for distance
/// predicates already applied, temporaries owned here), the effective
/// per-query options, the predicate, and the planner's decision. One plan
/// structure for every algorithm, so adding an executor never touches the
/// facade.
struct CompiledPlan {
  DiskModel* disk = nullptr;
  /// Effective options for this query (the joiner's defaults plus the
  /// query's overrides). Executors must read options from here, never
  /// from the joiner.
  JoinOptions options;
  PredicateSpec predicate;
  /// Resolved inputs, in query order. For kDistanceWithin one side has
  /// been rewritten to an ε-expanded copy (a stream, or a rebuilt tree if
  /// the ST executor needs an index on that side).
  std::vector<JoinInput> inputs;
  /// Per-input occupancy histograms available for *pruning* index
  /// traversals (nullptr entries allowed). Cleared by the compile step
  /// when ε-expansion would make histogram pruning unsafe.
  std::vector<const GridHistogram*> prune_histograms;
  /// The planner's decision for pairwise plans (decision.algorithm is the
  /// algorithm to execute; for forced algorithms the rationale says so).
  PlanDecision decision;
  /// The query's memory governor: every executor draws its grants from
  /// here (and threads it into the algorithm layer), so one budget bounds
  /// the whole execution — filter, spills, refinement — and the stats
  /// report one coherent peak. Created by the compile step from the
  /// effective options.
  std::shared_ptr<MemoryArbiter> arbiter;
  /// I/O and CPU the compile step itself spent (ε-expansion passes,
  /// expanded-tree rebuilds); folded into the query's reported stats.
  DiskStats compile_disk;
  double compile_cpu_seconds = 0.0;

  /// Temporaries backing resolved inputs; owned by the plan so resolved
  /// DatasetRefs and trees stay valid for its lifetime.
  std::vector<std::unique_ptr<Pager>> owned_pagers;
  std::vector<std::unique_ptr<RTree>> owned_trees;

  const GridHistogram* prune_histogram(size_t i) const {
    return i < prune_histograms.size() ? prune_histograms[i] : nullptr;
  }
};

/// One join algorithm behind the unified facade. Executors run the MBR
/// *filter step* only: predicates and refinement are applied by the query
/// layer around them, so an executor is exactly "pairs of intersecting
/// MBRs from plan.inputs[0] x plan.inputs[1] into sink".
///
/// Implementations are stateless (per-execution state lives on the plan
/// or the executor's stack) and registered once in the ExecutorRegistry.
class JoinExecutor {
 public:
  virtual ~JoinExecutor() = default;

  /// The algorithm this executor implements (its registry key).
  virtual JoinAlgorithm algorithm() const = 0;
  virtual const char* name() const = 0;

  /// Fast structural check (input kinds etc.) before any I/O.
  virtual Status Validate(const CompiledPlan& plan) const;

  /// Runs the filter join. May allocate temporaries on the plan
  /// (leaf-extraction streams), which is why the plan is mutable.
  virtual Result<JoinStats> Execute(CompiledPlan& plan,
                                    JoinSink* sink) const = 0;
};

/// The table of executors, keyed by JoinAlgorithm. The four built-in
/// algorithms (SSSJ, PBSM, ST, PQ) register themselves on first use; an
/// out-of-tree algorithm registers with Register() once at startup and is
/// then reachable through the whole JoinQuery/SpatialJoiner surface —
/// adding an algorithm never touches the facade.
class ExecutorRegistry {
 public:
  static ExecutorRegistry& Instance();

  /// Registers `executor` (not owned; must outlive the registry) under
  /// executor->algorithm(). Replaces any previous registration.
  void Register(const JoinExecutor* executor);

  /// The executor for `algo`, or nullptr when none is registered (kAuto
  /// never has one: it resolves to a concrete algorithm at plan time).
  const JoinExecutor* Find(JoinAlgorithm algo) const;

 private:
  ExecutorRegistry();

  static constexpr size_t kSlots = 8;
  const JoinExecutor* table_[kSlots] = {};
};

/// Convenience wrapper over ExecutorRegistry::Instance().Find().
const JoinExecutor* FindExecutor(JoinAlgorithm algo);

/// The memory planner: carves a (floor-clamped) JoinOptions::memory_bytes
/// budget into the component grants `algo` will acquire, for an input of
/// `input_bytes` total MBR records. Used by SpatialJoiner::Plan (so
/// Explain() reports the breakdown and the cost model prices plans at
/// their granted memory) and mirrored by the executors' live Acquire
/// calls.
MemoryPlan PlanJoinMemory(JoinAlgorithm algo, const JoinOptions& options,
                          uint64_t input_bytes);

/// The k-way filter execution (§4's extension): every plan.inputs entry
/// becomes a sorted source (selective index traversals included) feeding
/// the left-deep chain of lazy PQ sweeps — or, with options.num_threads >
/// 1, the strip-parallel path over materialized streams. Algorithm
/// dispatch does not apply (the chain is the only k-way execution), which
/// is why this is a free function rather than a registry entry.
Result<MultiwayStats> ExecuteMultiwayFilter(CompiledPlan& plan,
                                            TupleSink* sink);

}  // namespace sj

#endif  // USJ_JOIN_EXECUTOR_H_
