#include "join/pbsm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "join/partition_plan.h"
#include "sort/external_sort.h"
#include "sweep/sweep_join.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {
namespace {

/// One side of one partition: its own device plus an open writer.
struct PartitionFile {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<StreamWriter<RectF>> writer;
  StreamRange range;
};

// Partition writer flush blocks come from the PartitionMap: the paper's
// small constant (4 pages — one writer stays open per partition and
// side, so 512 KB blocks would blow the memory budget for large
// partition counts) on the fixed path, the plan-budgeted size on the
// adaptive path.

/// Error-path unwinding: declares every still-open writer dead so the
/// destructors do not abort mid-return.
void AbandonAll(std::vector<PartitionFile>* files) {
  for (PartitionFile& f : *files) {
    if (f.writer != nullptr) f.writer->Abandon();
  }
}

Status DistributeInput(const DatasetRef& input, const PartitionMap& grid,
                       std::vector<PartitionFile>* files) {
  StreamReader<RectF> reader(input.range.pager, input.range.first_page,
                             input.range.count);
  std::vector<uint32_t> parts;
  while (std::optional<RectF> r = reader.Next()) {
    grid.PartitionsOf(*r, &parts);
    for (uint32_t p : parts) (*files)[p].writer->Append(*r);
  }
  // Finish every writer even when one fails (abandoning the rest), so no
  // open writer outlives this function on the error path.
  Status status;
  for (PartitionFile& f : *files) {
    const PageId first = f.writer->first_page();
    if (status.ok()) {
      Result<uint64_t> n = f.writer->Finish();
      if (n.ok()) {
        f.range = StreamRange{f.pager.get(), first, *n};
      } else {
        status = n.status();
      }
    } else {
      f.writer->Abandon();
    }
    f.writer.reset();
  }
  return status;
}

Result<std::vector<PartitionFile>> MakePartitionFiles(StorageFactory* storage,
                                                      DiskModel* disk,
                                                      const char* side,
                                                      uint32_t p,
                                                      uint32_t block_pages) {
  std::vector<PartitionFile> files(p);
  for (uint32_t i = 0; i < p; ++i) {
    Result<std::unique_ptr<Pager>> pager =
        MakePager(storage, disk,
                  std::string("pbsm.") + side + "." + std::to_string(i));
    if (!pager.ok()) {
      AbandonAll(&files);  // Writers already opened for earlier partitions.
      return pager.status();
    }
    files[i].pager = std::move(pager).value();
    files[i].writer = std::make_unique<StreamWriter<RectF>>(
        files[i].pager.get(), block_pages);
  }
  return files;
}

Result<std::vector<RectF>> Drain(PrefetchingStreamReader<RectF>* reader,
                                 uint64_t count) {
  std::vector<RectF> out;
  out.reserve(count);
  while (std::optional<RectF> r = reader->Next()) out.push_back(*r);
  return out;
}

}  // namespace

Result<JoinStats> PBSMJoin(const DatasetRef& a, const DatasetRef& b,
                           DiskModel* disk, const JoinOptions& options,
                           JoinSink* sink, const GridHistogram* hist_a,
                           const GridHistogram* hist_b,
                           MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  JoinMeasurement measurement(disk);
  SJ_ASSIGN_OR_RETURN(RectF extent, CombinedExtent(a, b));

  // Partitioning plan. Adaptive: histogram-driven tile tree + weighted
  // bin-packing; missing histograms are built here with one extra scan
  // per side (charged to `disk`, so the pass shows up in the measured
  // stats exactly as the cost model prices it). Fixed: the paper's
  // uniform grid with round-robin assignment, p chosen so an average
  // partition pair fits comfortably in memory.
  std::unique_ptr<PartitionMap> grid_owned;
  if (options.adaptive_partitioning) {
    // Histograms live only as long as planning; they are released before
    // distribution so the writer buffers own the phase's memory. Built
    // histograms sample one block in kPbsmHistogramSampleOneInBlocks
    // (scaled to the exact record count) — the APR-style sampling
    // construction — so the density pass costs a fraction of a scan.
    constexpr uint32_t kSampleOneInBlocks = kPbsmHistogramSampleOneInBlocks;
    std::optional<GridHistogram> built_a, built_b;
    uint32_t res = std::max(1u, options.pbsm_histogram_resolution);
    // Attached histograms are the caller's memory; only on-the-fly
    // builds hold planner-side cells worth granting — and when the
    // grant comes back smaller than the configured resolution's cells,
    // the build resolution derates to fit (coarser planning evidence,
    // never an over-allocation; 16 cells per axis is the floor where a
    // histogram still says anything).
    const size_t builds = (hist_a == nullptr ? size_t{1} : 0) +
                          (hist_b == nullptr ? size_t{1} : 0);
    MemoryGrant histogram_grant;
    if (builds > 0) {
      histogram_grant = scope->AcquireShrinkable(
          grants::kPbsmHistogram,
          builds * res * res * sizeof(uint64_t), /*floor_bytes=*/0);
      const uint32_t fits = static_cast<uint32_t>(std::sqrt(
          static_cast<double>(histogram_grant.bytes() /
                              (builds * sizeof(uint64_t)))));
      res = std::clamp(fits, std::min(16u, res), res);
      histogram_grant.NoteUsage(builds * size_t{res} * res *
                                sizeof(uint64_t));
    }
    if (hist_a == nullptr) {
      auto built = GridHistogram::BuildSampled(a.range, extent, res, res,
                                               kSampleOneInBlocks);
      SJ_RETURN_IF_ERROR(built.status());
      built_a.emplace(std::move(*built));
      hist_a = &*built_a;
    }
    if (hist_b == nullptr) {
      auto built = GridHistogram::BuildSampled(b.range, extent, res, res,
                                               kSampleOneInBlocks);
      SJ_RETURN_IF_ERROR(built.status());
      built_b.emplace(std::move(*built));
      hist_b = &*built_b;
    }
    PartitionPlannerConfig config;
    config.memory_bytes = options.memory_bytes;
    // Splits may go below the histogram resolution (uniform-within-cell
    // estimates still quarter hot blobs geometrically), so the cap only
    // rises with a finer histogram, never falls.
    config.max_resolution = std::max(config.max_resolution, res);
    grid_owned = PartitionPlanner::Plan(extent, *hist_a, *hist_b, config);
  } else {
    const uint64_t total_bytes = (a.count() + b.count()) * sizeof(RectF);
    grid_owned = std::make_unique<FixedGridPartitionMap>(
        extent, options.pbsm_tiles_per_axis,
        PbsmPartitionCount(total_bytes, options.memory_bytes));
  }
  const PartitionMap& grid = *grid_owned;
  const uint32_t p = grid.partitions();

  // Phase 1: distribute both inputs into partition files. The 2p open
  // writers draw their flush blocks from one grant; when the budget
  // cannot cover the map's preferred block size for all of them, the
  // blocks shrink (more, smaller flushes — graceful, never over-budget).
  // The floor (one page per open writer) is capped at the budget: with
  // enormous partition counts even that is irreducible over-use, which
  // then shows up as usage above the grant instead of a granted peak
  // above the budget.
  MemoryGrant writer_grant = scope->AcquireShrinkable(
      grants::kPbsmWriters,
      size_t{2} * p * grid.writer_block_pages() * kPageSize,
      std::min<size_t>(size_t{2} * p * kPageSize, scope->budget()));
  const uint32_t writer_block_pages = static_cast<uint32_t>(std::clamp<size_t>(
      writer_grant.bytes() / (size_t{2} * p * kPageSize), 1,
      grid.writer_block_pages()));
  writer_grant.NoteUsage(size_t{2} * p * writer_block_pages * kPageSize);
  StorageFactory* storage = options.storage.get();
  SJ_ASSIGN_OR_RETURN(
      std::vector<PartitionFile> files_a,
      MakePartitionFiles(storage, disk, "a", p, writer_block_pages));
  Result<std::vector<PartitionFile>> made_b =
      MakePartitionFiles(storage, disk, "b", p, writer_block_pages);
  if (!made_b.ok()) {
    AbandonAll(&files_a);
    return made_b.status();
  }
  std::vector<PartitionFile> files_b = std::move(made_b).value();
  {
    const Status da = DistributeInput(a, grid, &files_a);
    if (!da.ok()) {
      AbandonAll(&files_b);  // DistributeInput settled only side a.
      return da;
    }
  }
  SJ_RETURN_IF_ERROR(DistributeInput(b, grid, &files_b));
  writer_grant.Release();

  // Phase 2: join each partition with a plane sweep, suppressing
  // cross-partition duplicates via the reference-point test. Partition
  // pairs are independent, so each one is a task: its partition files are
  // re-homed onto a private DiskModel shard and its results buffered in a
  // private sink. A shard starts from fresh disk state, so its modeled
  // I/O depends only on the task's own request sequence — never on which
  // thread ran it or what ran concurrently — and the merged stats and
  // output below are identical for every options.num_threads.
  struct PartitionTask {
    std::unique_ptr<DiskModel> disk;
    /// Serial-equivalent memory scope (one partition pair at a time on
    /// the paper's machine); folded as a max afterwards.
    std::unique_ptr<MemoryArbiter> memory;
    std::unique_ptr<Pager> pager_a, pager_b;
    StreamRange range_a, range_b;
    /// Partition-load readers. Normally created by the task itself; in
    /// serial prefetch mode the *previous* task creates them early so the
    /// next pair's stream fetches while the current pair sorts and sweeps.
    std::unique_ptr<PrefetchingStreamReader<RectF>> reader_a, reader_b;
    CollectingSink sink;
    uint64_t output = 0;
    size_t max_sweep_bytes = 0;
    bool strips_collapsed = false;
    uint64_t part_bytes = 0;
    bool overflowed = false;
    double cpu_seconds = 0;
    SortStats sort_stats;
  };
  // Matches ParallelFor's inline condition: when tasks run one after
  // another on this thread, pairs stream straight to the caller's sink
  // (in the same partition order the pooled merge below replays them),
  // so serial runs keep O(1) result buffering.
  const bool pooled = options.num_threads > 1 && p > 1;
  const PrefetchContext prefetch = PrefetchContextOf(options);
  std::vector<PartitionTask> tasks(p);
  // The per-task budget is the partition-phase budget the planner sized
  // partitions for (the raw knob, not the query-floor-clamped budget):
  // a pair above it overflows exactly as the partition count formula
  // assumed, also for direct callers below kMinMemoryBytes.
  const size_t partition_budget =
      std::max(options.memory_bytes, RunLayout::kMinSortMemoryBytes);
  for (uint32_t i = 0; i < p; ++i) {
    PartitionTask& t = tasks[i];
    t.disk = std::make_unique<DiskModel>(disk->machine());
    t.memory = std::make_unique<MemoryArbiter>(partition_budget,
                                               scope->strict());
    t.pager_a = RehomePager(std::move(files_a[i].pager), t.disk.get());
    t.pager_b = RehomePager(std::move(files_b[i].pager), t.disk.get());
    t.range_a = StreamRange{t.pager_a.get(), files_a[i].range.first_page,
                            files_a[i].range.count};
    t.range_b = StreamRange{t.pager_b.get(), files_b[i].range.first_page,
                            files_b[i].range.count};
  }

  // Opens both partition-load readers of one task. With prefetch on,
  // construction immediately begins fetching each stream's first block in
  // the background.
  auto open_readers = [&](PartitionTask& t) {
    t.reader_a = std::make_unique<PrefetchingStreamReader<RectF>>(
        t.range_a.pager, t.range_a.first_page, t.range_a.count, prefetch);
    t.reader_b = std::make_unique<PrefetchingStreamReader<RectF>>(
        t.range_b.pager, t.range_b.first_page, t.range_b.count, prefetch);
  };

  SJ_RETURN_IF_ERROR(ParallelFor(
      options.worker_pool, options.num_threads, p, [&](uint64_t i) -> Status {
        PartitionTask& t = tasks[i];
        ThreadCpuTimer cpu;
        JoinSink* out = pooled ? static_cast<JoinSink*>(&t.sink) : sink;
        auto emit = [&](const RectF& ra, const RectF& rb) {
          if (grid.ReferencePartition(ra, rb) == i) {
            out->Emit(ra.id, rb.id);
            t.output++;
          }
        };
        SweepRunStats sweep_stats;
        t.part_bytes = (t.range_a.count + t.range_b.count) * sizeof(RectF);
        // The partition pair's load is a grant; denial IS the overflow
        // signal (previously an ad-hoc comparison against the raw knob).
        Result<MemoryGrant> load =
            t.memory->Acquire(grants::kPbsmPartition, t.part_bytes);
        if (load.ok() && t.reader_a == nullptr) open_readers(t);
        // Serial handoff: tasks run inline in partition order, so opening
        // the next pair's readers now lets its streams fetch while this
        // pair sorts and sweeps. Charges still happen at consumption, on
        // the next task's private shard, so modeled I/O is unchanged. (A
        // reader pair abandoned by an overflowing next task just cancels
        // its fetch — no charges were made.)
        if (!pooled && prefetch.enabled && i + 1 < p &&
            tasks[i + 1].reader_a == nullptr) {
          open_readers(tasks[i + 1]);
        }
        if (load.ok()) {
          SJ_ASSIGN_OR_RETURN(std::vector<RectF> ra,
                              Drain(t.reader_a.get(), t.range_a.count));
          SJ_ASSIGN_OR_RETURN(std::vector<RectF> rb,
                              Drain(t.reader_b.get(), t.range_b.count));
          t.reader_a.reset();
          t.reader_b.reset();
          std::sort(ra.begin(), ra.end(), OrderByYLo());
          std::sort(rb.begin(), rb.end(), OrderByYLo());
          VectorRectSource sa(&ra), sb(&rb);
          sweep_stats =
              SweepJoinWithKind(options.partition_sweep, extent,
                                options.striped_strips, sa, sb, emit);
          load->NoteUsage(t.part_bytes);
          // The deduplicating sweep may double-count in sweep_stats; the
          // sink's pair count is authoritative.
        } else {
          // Overflow fallback: external sort this partition and sweep the
          // sorted streams (grant-governed through the task's arbiter).
          // Readers the previous task opened ahead are cancelled unread —
          // they made no charges, so modeled I/O matches the serial path.
          t.overflowed = true;
          t.reader_a.reset();
          t.reader_b.reset();
          SJ_ASSIGN_OR_RETURN(
              std::unique_ptr<Pager> scratch,
              MakePager(options.storage.get(), t.disk.get(),
                        "pbsm.overflow." + std::to_string(i)));
          // Partitions are the parallel unit; their overflow sorts stay
          // single-threaded but keep the write-behind/fan-in knobs.
          SortConfig overflow_sort = SortConfigOf(options);
          overflow_sort.threads = 1;
          SJ_ASSIGN_OR_RETURN(
              StreamRange sa_range,
              SortRectsByYLo(t.range_a, scratch.get(), scratch.get(),
                             options.memory_bytes / 2, t.memory.get(),
                             prefetch, overflow_sort, &t.sort_stats));
          SJ_ASSIGN_OR_RETURN(
              StreamRange sb_range,
              SortRectsByYLo(t.range_b, scratch.get(), scratch.get(),
                             options.memory_bytes / 2, t.memory.get(),
                             prefetch, overflow_sort, &t.sort_stats));
          MemoryGrant sweep_grant = t.memory->AcquireShrinkable(
              grants::kSweep, t.part_bytes, /*floor_bytes=*/0);
          PrefetchingStreamReader<RectF> reader_a(
              sa_range.pager, sa_range.first_page, sa_range.count, prefetch);
          PrefetchingStreamReader<RectF> reader_b(
              sb_range.pager, sb_range.first_page, sb_range.count, prefetch);
          sweep_stats = SweepJoinWithKind(options.partition_sweep, extent,
                                          options.striped_strips, reader_a,
                                          reader_b, emit);
          sweep_grant.NoteUsage(sweep_stats.max_structure_bytes);
        }
        t.max_sweep_bytes = sweep_stats.max_structure_bytes;
        t.strips_collapsed = sweep_stats.strips_collapsed;
        t.cpu_seconds = cpu.Elapsed();
        return Status::OK();
      }));

  // Deterministic merge, in partition order.
  uint64_t output = 0;
  size_t max_sweep = 0;
  size_t max_partition_bytes = 0;
  uint32_t overflowed = 0;
  bool strips_collapsed = false;
  double worker_cpu = 0;
  DiskStats shard_disk;
  SortStats folded_sort;
  for (const PartitionTask& t : tasks) {
    folded_sort.Fold(t.sort_stats);
    if (pooled) {
      for (const IdPair& pair : t.sink.pairs()) sink->Emit(pair.a, pair.b);
    }
    output += t.output;
    max_sweep = std::max(max_sweep, t.max_sweep_bytes);
    max_partition_bytes =
        std::max<size_t>(max_partition_bytes, t.part_bytes);
    if (t.overflowed) overflowed++;
    strips_collapsed = strips_collapsed || t.strips_collapsed;
    worker_cpu += t.cpu_seconds;
    shard_disk += t.disk->stats();
    scope->FoldChild(*t.memory);
  }

  JoinStats stats = measurement.Finish();
  stats.disk += shard_disk;
  // Inline execution already ran on the measured thread; only pool
  // workers' CPU needs adding.
  if (pooled) stats.host_cpu_seconds += worker_cpu;
  stats.output_count = output;
  stats.max_sweep_bytes = max_sweep;
  stats.sweep_strips_collapsed = strips_collapsed;
  stats.partitions_total = p;
  stats.FoldSortStats(folded_sort);
  stats.partitions_overflowed = overflowed;
  stats.max_partition_bytes = max_partition_bytes;
  stats.pbsm_tiles_x = grid.tiles_x();
  stats.pbsm_tiles_y = grid.tiles_y();
  stats.pbsm_leaf_tiles = grid.leaf_tiles();
  stats.pbsm_split_tiles = grid.split_tiles();
  stats.pbsm_adaptive = grid.adaptive();
  FillMemoryStats(*scope, &stats);
  return stats;
}

}  // namespace sj
