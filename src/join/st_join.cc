#include "join/st_join.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "join/entry_sweep.h"
#include "rtree/node.h"

namespace sj {
namespace {

class STRunner {
 public:
  STRunner(const RTree& a, const RTree& b, BufferPool* pool, uint32_t client,
           JoinSink* sink)
      : tree_a_(a), tree_b_(b), pool_(pool), client_(client), sink_(sink) {}

  Status Run() {
    if (tree_a_.meta().entry_count == 0 || tree_b_.meta().entry_count == 0) {
      return Status::OK();
    }
    if (!tree_a_.bounding_box().Intersects(tree_b_.bounding_box())) {
      return Status::OK();
    }
    return JoinNodes(tree_a_.root(), tree_a_.bounding_box(),
                     tree_b_.root(), tree_b_.bounding_box());
  }

  size_t cached_pages() const { return pool_->cached_pages(); }

 private:
  /// Loads the entries of `page` that overlap `window`, sorted by xlo.
  /// Returns the node level via `level`.
  Status LoadOverlapping(const RTree& tree, PageId page, const RectF& window,
                         std::vector<RectF>* out, uint16_t* level) {
    uint8_t buf[kPageSize];
    SJ_RETURN_IF_ERROR(pool_->Get(tree.pager(), page, buf, client_));
    const NodeView node(buf);
    *level = node.level();
    out->clear();
    out->reserve(node.count());
    for (uint32_t i = 0; i < node.count(); ++i) {
      const RectF e = node.Entry(i);
      if (e.Intersects(window)) out->push_back(e);
    }
    std::sort(out->begin(), out->end(), OrderByXLo());
    return Status::OK();
  }

  Status JoinNodes(PageId page_a, const RectF& mbr_a, PageId page_b,
                   const RectF& mbr_b) {
    const RectF window = mbr_a.IntersectionWith(mbr_b);
    std::vector<RectF> ents_a, ents_b;
    uint16_t level_a = 0, level_b = 0;
    SJ_RETURN_IF_ERROR(
        LoadOverlapping(tree_a_, page_a, window, &ents_a, &level_a));
    SJ_RETURN_IF_ERROR(
        LoadOverlapping(tree_b_, page_b, window, &ents_b, &level_b));
    if (ents_a.empty() || ents_b.empty()) return Status::OK();

    if (level_a == 0 && level_b == 0) {
      SweepEntryLists(ents_a, ents_b, [this](const RectF& a, const RectF& b) {
        sink_->Emit(a.id, b.id);
      });
      return Status::OK();
    }
    if (level_a > 0 && level_b > 0 && level_a == level_b) {
      // Same level: pair children with the sweep, recurse in sweep order
      // (which groups pairs sharing a child — the locality ST relies on).
      std::vector<std::pair<RectF, RectF>> pairs;
      SweepEntryLists(ents_a, ents_b,
                      [&pairs](const RectF& a, const RectF& b) {
                        pairs.emplace_back(a, b);
                      });
      for (const auto& [ea, eb] : pairs) {
        SJ_RETURN_IF_ERROR(JoinNodes(ea.id, ea, eb.id, eb));
      }
      return Status::OK();
    }
    if (level_a > level_b) {
      // Descend A only.
      for (const RectF& ea : ents_a) {
        if (!ea.Intersects(mbr_b)) continue;
        SJ_RETURN_IF_ERROR(JoinNodes(ea.id, ea, page_b, mbr_b));
      }
      return Status::OK();
    }
    // Descend B only.
    for (const RectF& eb : ents_b) {
      if (!eb.Intersects(mbr_a)) continue;
      SJ_RETURN_IF_ERROR(JoinNodes(page_a, mbr_a, eb.id, eb));
    }
    return Status::OK();
  }

  const RTree& tree_a_;
  const RTree& tree_b_;
  BufferPool* pool_;
  uint32_t client_;
  JoinSink* sink_;
};

}  // namespace

Result<JoinStats> STJoin(const RTree& a, const RTree& b, DiskModel* disk,
                         const JoinOptions& options, JoinSink* sink,
                         MemoryArbiter* arbiter) {
  const ArbiterScope scope(arbiter, options);
  // Two pool modes. Standalone: build a private pool whose frames are a
  // grant — the requested capacity shrinks to the budget (minus a small
  // reserve for the per-node entry lists), with an 8-frame floor so
  // traversal always makes progress. Service: read through the shared
  // process-wide pool, whose frames are global state outside this query's
  // budget (the service sizes it once); traffic is attributed to this
  // query's stats client.
  constexpr size_t kMinPoolPages = 8;
  std::unique_ptr<BufferPool> owned_pool;
  MemoryGrant pool_grant;
  BufferPool* pool = options.shared_buffer_pool;
  uint32_t client = options.buffer_pool_client;
  if (pool == nullptr) {
    const size_t budget = scope->budget();
    // The budget cap never squeezes the request below the 8-frame floor;
    // an explicitly smaller options.buffer_pool_pages is still honored
    // (tests force re-reads with tiny pools).
    const size_t requested = std::min<size_t>(
        options.buffer_pool_pages * kPageSize,
        std::max(budget - std::min(budget, size_t{2} * kPageSize),
                 kMinPoolPages * kPageSize));
    pool_grant = scope->AcquireShrinkable(grants::kBufferPool, requested,
                                          kMinPoolPages * kPageSize);
    owned_pool = std::make_unique<BufferPool>(
        std::max<size_t>(1, pool_grant.bytes() / kPageSize));
    pool = owned_pool.get();
    client = 0;
  }
  const BufferPoolStats pool_before = pool->client_stats(client);
  JoinMeasurement measurement(disk);
  const uint64_t index_reads_before =
      disk->device_stats()[a.pager()->device_id()].pages_read +
      disk->device_stats()[b.pager()->device_id()].pages_read;

  CountingSink counter;
  class TeeSink final : public JoinSink {
   public:
    TeeSink(JoinSink* out, CountingSink* count) : out_(out), count_(count) {}
    void Emit(ObjectId x, ObjectId y) override {
      out_->Emit(x, y);
      count_->Emit(x, y);
    }

   private:
    JoinSink* out_;
    CountingSink* count_;
  } tee(sink, &counter);

  STRunner runner(a, b, pool, client, &tee);
  SJ_RETURN_IF_ERROR(runner.Run());
  if (pool_grant.active()) {
    pool_grant.NoteUsage(runner.cached_pages() * kPageSize);
  }

  JoinStats stats = measurement.Finish();
  stats.output_count = counter.count();
  FillMemoryStats(*scope, &stats);
  stats.index_pages_read =
      disk->device_stats()[a.pager()->device_id()].pages_read +
      disk->device_stats()[b.pager()->device_id()].pages_read -
      index_reads_before;
  const BufferPoolStats pool_delta = pool->client_stats(client) - pool_before;
  stats.pool_requests = pool_delta.requests;
  stats.pool_hits = pool_delta.hits;
  return stats;
}

}  // namespace sj
