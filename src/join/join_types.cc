#include "join/join_types.h"

#include <ostream>
#include <sstream>

namespace sj {

std::string JoinStats::Describe() const {
  std::ostringstream os;
  os << output_count << " result pairs";
  if (candidate_count != output_count) {
    os << " (" << candidate_count << " candidates before refinement, "
       << refine_pages_read << " feature pages fetched)";
  }
  os << "; " << disk.pages_read << " pages read, " << disk.pages_written
     << " written";
  if (index_pages_read > 0) os << " (" << index_pages_read << " index)";
  if (max_sweep_bytes > 0) {
    os << "; sweep max " << (max_sweep_bytes + 1023) / 1024 << " KB";
  }
  if (sweep_strips_collapsed) {
    os << "; STRIPED SWEEP COLLAPSED (degenerate extent, single strip)";
  }
  if (partitions_total > 0) {
    // SSSJ's strip fallback partitions without a PBSM tile grid.
    if (pbsm_tiles_x > 0) {
      os << "; " << (pbsm_adaptive ? "adaptive" : "fixed") << " "
         << pbsm_tiles_x << "x" << pbsm_tiles_y << " grid";
      if (pbsm_split_tiles > 0) {
        os << " (" << pbsm_leaf_tiles << " leaves, " << pbsm_split_tiles
           << " split)";
      }
      os << ", " << partitions_total << " partitions";
    } else {
      os << "; " << partitions_total << " strips";
    }
    if (partitions_overflowed > 0) {
      os << " (" << partitions_overflowed << " overflowed)";
    }
  }
  if (peak_memory_bytes > 0) {
    os << "; peak mem " << (peak_memory_bytes + 1023) / 1024 << " KB";
    const char* sep = " (";
    for (const MemoryComponentStats& c : memory_components) {
      os << sep << c.component << " "
         << (std::max(c.granted_high_water, c.used_high_water) + 1023) / 1024
         << " KB";
      sep = ", ";
    }
    if (!memory_components.empty()) os << ")";
  }
  return os.str();
}

std::string JoinStats::Describe(const MachineModel& m) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << Describe() << "; modeled " << ObservedSeconds(m) << " s ("
     << ObservedIoSeconds() << " s I/O + " << ScaledCpuSeconds(m)
     << " s CPU)";
  if (disk.io_wall_seconds > 0.0) {
    // Real bytes moved (file backend and/or prefetch): the measured wall
    // next to the modeled figure. Overlapped background fetches can sum
    // to more than elapsed time.
    os.precision(4);
    os << "; measured " << disk.io_wall_seconds << " s I/O wall";
  }
  return os.str();
}

std::vector<std::pair<std::string, std::string>> JoinStats::ToKeyValues()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  auto num = [](double v) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
  };
  kv.emplace_back("output_count", std::to_string(output_count));
  kv.emplace_back("candidate_count", std::to_string(candidate_count));
  kv.emplace_back("pages_read", std::to_string(disk.pages_read));
  kv.emplace_back("pages_written", std::to_string(disk.pages_written));
  kv.emplace_back("io_seconds", num(disk.io_seconds));
  kv.emplace_back("io_wall_seconds", num(disk.io_wall_seconds));
  kv.emplace_back("host_cpu_seconds", num(host_cpu_seconds));
  if (index_pages_read > 0) {
    kv.emplace_back("index_pages_read", std::to_string(index_pages_read));
  }
  if (refine_pages_read > 0) {
    kv.emplace_back("refine_pages_read", std::to_string(refine_pages_read));
  }
  if (max_sweep_bytes > 0) {
    kv.emplace_back("max_sweep_bytes", std::to_string(max_sweep_bytes));
  }
  if (max_queue_bytes > 0) {
    kv.emplace_back("max_queue_bytes", std::to_string(max_queue_bytes));
  }
  if (sweep_strips_collapsed) {
    kv.emplace_back("sweep_strips_collapsed", "1");
  }
  if (sort_merge_fan_in > 0) {
    kv.emplace_back("sort_runs_parallel", std::to_string(sort_parallel_units));
    kv.emplace_back("merge_fan_in", std::to_string(sort_merge_fan_in));
    kv.emplace_back("merge_passes", std::to_string(sort_merge_passes));
  }
  if (partitions_total > 0) {
    kv.emplace_back("partitions_total", std::to_string(partitions_total));
    kv.emplace_back("partitions_overflowed",
                    std::to_string(partitions_overflowed));
  }
  if (peak_memory_bytes > 0) {
    kv.emplace_back("peak_memory_bytes", std::to_string(peak_memory_bytes));
  }
  return kv;
}

std::ostream& operator<<(std::ostream& os, const JoinStats& stats) {
  return os << stats.Describe();
}

Result<RectF> EnsureExtent(const DatasetRef& input) {
  if (input.extent.Valid()) return input.extent;
  StreamReader<RectF> reader(input.range.pager, input.range.first_page,
                             input.range.count);
  RectF extent = RectF::Empty();
  while (std::optional<RectF> r = reader.Next()) {
    if (!r->Valid()) {
      return Status::InvalidArgument("malformed rectangle in join input: " +
                                     r->ToString());
    }
    extent.ExtendTo(*r);
  }
  extent.id = 0;
  return extent;
}

Result<RectF> CombinedExtent(const DatasetRef& a, const DatasetRef& b) {
  SJ_ASSIGN_OR_RETURN(RectF ea, EnsureExtent(a));
  SJ_ASSIGN_OR_RETURN(RectF eb, EnsureExtent(b));
  RectF both = ea;
  both.ExtendTo(eb);
  return both;
}

}  // namespace sj
