#include "join/join_types.h"

namespace sj {

Result<RectF> EnsureExtent(const DatasetRef& input) {
  if (input.extent.Valid()) return input.extent;
  StreamReader<RectF> reader(input.range.pager, input.range.first_page,
                             input.range.count);
  RectF extent = RectF::Empty();
  while (std::optional<RectF> r = reader.Next()) {
    if (!r->Valid()) {
      return Status::InvalidArgument("malformed rectangle in join input: " +
                                     r->ToString());
    }
    extent.ExtendTo(*r);
  }
  extent.id = 0;
  return extent;
}

Result<RectF> CombinedExtent(const DatasetRef& a, const DatasetRef& b) {
  SJ_ASSIGN_OR_RETURN(RectF ea, EnsureExtent(a));
  SJ_ASSIGN_OR_RETURN(RectF eb, EnsureExtent(b));
  RectF both = ea;
  both.ExtendTo(eb);
  return both;
}

}  // namespace sj
