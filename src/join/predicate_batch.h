#ifndef USJ_JOIN_PREDICATE_BATCH_H_
#define USJ_JOIN_PREDICATE_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "geometry/segment.h"
#include "join/predicate.h"
#include "sweep/sweep_kernels.h"

namespace sj {

/// Batched exact-geometry predicates for the refinement step: evaluate a
/// whole candidate batch with flat per-lane passes instead of one
/// pair-at-a-time EvaluateExactPredicate call per candidate.
///
/// Both kernel modes return bit-identical masks for every input
/// (including NaN/infinite coordinates and NaN epsilon):
///
///  * kScalar     — per-pair calls to the geometry/segment.h predicates,
///                  the reference implementation.
///  * kVectorized — branch-light orientation/distance passes over the
///                  whole batch (written so the compiler can
///                  auto-vectorize; all arithmetic is the same
///                  double-precision expressions as the scalar
///                  predicates, so every lane computes the identical
///                  value), with the rare collinear/endpoint-touching
///                  lanes resolved by the scalar predicate.
///
/// The scalar-vs-vectorized differential in tests/sweep_kernels_test.cc
/// enforces the equivalence.

/// out[i] = SegmentsIntersect(a[i], b[i]).
void BatchSegmentsIntersect(SweepKernelMode mode, const Segment* a,
                            const Segment* b, size_t n, uint8_t* out);

/// out[i] = EvaluateExactPredicate(spec, a[i], b[i]). Order matters for
/// kContains (a contains b), matching the scalar evaluator.
void EvaluateExactPredicateBatch(SweepKernelMode mode,
                                 const PredicateSpec& spec, const Segment* a,
                                 const Segment* b, size_t n, uint8_t* out);

}  // namespace sj

#endif  // USJ_JOIN_PREDICATE_BATCH_H_
