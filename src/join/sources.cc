#include "join/sources.h"

#include <algorithm>

#include "rtree/node.h"
#include "util/logging.h"

namespace sj {

RTreePQSource::RTreePQSource(const RTree* tree)
    : RTreePQSource(tree, Options()) {}

RTreePQSource::RTreePQSource(const RTree* tree, Options options)
    : tree_(tree), options_(options) {
  if (tree_->meta().entry_count == 0) return;
  const RectF& bbox = tree_->bounding_box();
  if (Pruned(bbox)) return;
  node_queue_.push(NodeRef{bbox.ylo, tree_->root(),
                           static_cast<uint16_t>(tree_->height() - 1)});
}

bool RTreePQSource::Pruned(const RectF& mbr) const {
  if (options_.filter != nullptr && !mbr.Intersects(*options_.filter)) {
    return true;
  }
  if (options_.occupancy != nullptr && !options_.occupancy->MightIntersect(mbr)) {
    return true;
  }
  return false;
}

void RTreePQSource::ExpandNode(const NodeRef& ref) {
  uint8_t buf[kPageSize];
  SJ_CHECK_OK(tree_->ReadNode(ref.page, buf));
  pages_read_++;
  const NodeView node(buf);
  SJ_CHECK(node.level() == ref.level) << "R-tree level corruption";
  if (ref.level > 0) {
    for (uint32_t i = 0; i < node.count(); ++i) {
      const RectF e = node.Entry(i);
      if (Pruned(e)) continue;
      node_queue_.push(
          NodeRef{e.ylo, e.id, static_cast<uint16_t>(ref.level - 1)});
    }
    return;
  }
  // Leaf: sort its rectangles by ylo and enqueue only the head. Data
  // rectangles that cannot join (outside the filter/occupancy region) are
  // dropped here — they could only be discarded by the sweep anyway.
  LeafBuffer leaf;
  leaf.rects.reserve(node.count());
  for (uint32_t i = 0; i < node.count(); ++i) {
    const RectF e = node.Entry(i);
    if (Pruned(e)) continue;
    leaf.rects.push_back(e);
  }
  if (leaf.rects.empty()) return;
  std::sort(leaf.rects.begin(), leaf.rects.end(), OrderByYLo());
  uint32_t idx;
  if (!free_buffers_.empty()) {
    idx = free_buffers_.back();
    free_buffers_.pop_back();
    buffers_[idx] = std::move(leaf);
  } else {
    idx = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(std::move(leaf));
  }
  buffer_bytes_ += buffers_[idx].rects.size() * sizeof(RectF);
  leaf_queue_.push(LeafHead{buffers_[idx].rects[0].ylo, idx});
}

std::optional<RectF> RTreePQSource::Next() {
  while (true) {
    const bool have_node = !node_queue_.empty();
    const bool have_leaf = !leaf_queue_.empty();
    if (!have_node && !have_leaf) return std::nullopt;
    // Expand internal nodes until the smallest pending key is a data
    // rectangle.
    if (have_node &&
        (!have_leaf || node_queue_.top().ylo < leaf_queue_.top().ylo)) {
      const NodeRef ref = node_queue_.top();
      node_queue_.pop();
      ExpandNode(ref);
      continue;
    }
    const LeafHead head = leaf_queue_.top();
    leaf_queue_.pop();
    LeafBuffer& buffer = buffers_[head.buffer];
    const RectF rect = buffer.rects[buffer.next++];
    if (buffer.next < buffer.rects.size()) {
      leaf_queue_.push(
          LeafHead{buffer.rects[buffer.next].ylo, head.buffer});
    } else {
      buffer_bytes_ -= buffer.rects.size() * sizeof(RectF);
      buffer.rects.clear();
      buffer.rects.shrink_to_fit();
      buffer.next = 0;
      free_buffers_.push_back(head.buffer);
    }
    return rect;
  }
}

size_t RTreePQSource::MemoryBytes() const {
  return node_queue_.size() * sizeof(NodeRef) +
         leaf_queue_.size() * sizeof(LeafHead) + buffer_bytes_;
}

}  // namespace sj
