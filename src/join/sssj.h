#ifndef USJ_JOIN_SSSJ_H_
#define USJ_JOIN_SSSJ_H_

#include "io/disk_model.h"
#include "join/join_types.h"
#include "util/result.h"

namespace sj {

/// Scalable Sweeping-based Spatial Join (Arge et al., VLDB'98) — §3.1.
///
/// Externally sorts both inputs by lower y coordinate, then performs one
/// plane sweep over the merged sorted streams using the configured
/// interval structure (Striped-Sweep by default, as in the paper).
/// Excluding output, this costs two sequential read passes, one
/// non-sequential read pass (the merge) and two sequential write passes
/// over the data — all of which the DiskModel charges from the actual
/// access pattern.
///
/// The interval structures are assumed to fit in memory on the paper's
/// data (Table 3 verifies this by orders of magnitude). Under the memory
/// governor that assumption became enforceable: the sweep acquires a
/// grant bounded by the input size, and when the conservative bound (the
/// whole input could be active at once) exceeds the granted memory the
/// join degrades gracefully to SSSJStripJoin below — the paper's own
/// single-dimension partitioning fallback — instead of over-allocating.
/// A strict arbiter additionally aborts if the sweep structures outgrow
/// their grant at run time.
///
/// Temporary runs and sorted streams are held in memory-backed pagers
/// registered on `disk` (charged like any other file). `arbiter` is the
/// query's memory governor; nullptr runs against a private one over the
/// options' budget.
Result<JoinStats> SSSJJoin(const DatasetRef& a, const DatasetRef& b,
                           DiskModel* disk, const JoinOptions& options,
                           JoinSink* sink, MemoryArbiter* arbiter = nullptr);

/// The partitioned fallback of SSSJ for adversarial inputs (§3.1's
/// "partitioning along a single dimension", after Güting & Schilling):
/// when the interval structures of a single sweep would exceed memory —
/// which never happens on the paper's real data — the x-extent is split
/// into `strips` vertical strips, rectangles are distributed (with
/// replication) to every strip they overlap, and each strip is sorted and
/// swept independently within the memory budget. Duplicates are
/// suppressed by reporting a pair only in the strip containing the left
/// edge of its x-overlap. Costs one extra read+write pass over the data
/// relative to plain SSSJ.
Result<JoinStats> SSSJStripJoin(const DatasetRef& a, const DatasetRef& b,
                                uint32_t strips, DiskModel* disk,
                                const JoinOptions& options, JoinSink* sink,
                                MemoryArbiter* arbiter = nullptr);

/// Conservative estimate of a plane sweep's peak active-set bytes over
/// `records` inputs: the square-root rule the paper verifies on real
/// data (Table 3), padded by a generous safety factor. Sizes the sweep
/// grant (here and in PlanJoinMemory, so Explain() reports the grant
/// the executor acquires) and triggers the strip spill when it exceeds
/// the grantable memory.
size_t EstimateSweepBytes(uint64_t records);

}  // namespace sj

#endif  // USJ_JOIN_SSSJ_H_
