#ifndef USJ_JOIN_ST_JOIN_H_
#define USJ_JOIN_ST_JOIN_H_

#include "io/disk_model.h"
#include "join/join_types.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// Synchronized R-tree Traversal (Brinkhoff, Kriegel & Seeger, SIGMOD'93)
/// — §3.3.
///
/// Performs a synchronized depth-first traversal of the two R-trees. For
/// each node pair whose bounding rectangles intersect, it restricts both
/// entry lists to the intersection window of the node MBRs and pairs them
/// with a forward sweep along x (the original paper's optimizations),
/// recursing on intersecting child pairs and emitting object-id pairs at
/// the leaves. Trees of different heights are handled by descending the
/// taller tree first.
///
/// Node pages are read through a shared LRU buffer pool of
/// `options.buffer_pool_pages` frames (the paper's 22 MB). Pool misses are
/// the "page requests" of Table 4; revisits of cached pages cost nothing,
/// which is why NJ/NY come out at (or slightly below) the index size.
///
/// The pool is grant-backed: its frames come from a "buffer.pool" memory
/// grant and the capacity shrinks to whatever the arbiter can give
/// (floor: 8 frames), so a 256 KB query budget yields a ~30-frame pool
/// rather than an ungoverned 22 MB one. `arbiter` is the query's memory
/// governor; nullptr runs against a private one over the options' budget.
Result<JoinStats> STJoin(const RTree& a, const RTree& b, DiskModel* disk,
                         const JoinOptions& options, JoinSink* sink,
                         MemoryArbiter* arbiter = nullptr);

}  // namespace sj

#endif  // USJ_JOIN_ST_JOIN_H_
