#ifndef USJ_JOIN_PARTITION_PLAN_H_
#define USJ_JOIN_PARTITION_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geometry/rect.h"
#include "histogram/grid_histogram.h"

namespace sj {

/// The tile-to-partition geometry behind PBSM (§3.2): maps rectangles to
/// the partitions they replicate into and resolves the reference-point
/// duplicate-suppression test. Two implementations exist — the paper's
/// fixed uniform grid with row-major round-robin assignment, and the
/// skew-adaptive plan produced by PartitionPlanner — and PBSMJoin runs
/// the same distribution/join phases against either.
///
/// Correctness contract shared by all implementations: every (x, y) point
/// of the plane maps to exactly one tile, every tile belongs to exactly
/// one partition, and PartitionsOf(r) includes the partition of every
/// tile r overlaps. Then the reference point of a pair (the lower-left
/// corner of the intersection) lies in exactly one tile, both rectangles
/// are replicated into that tile's partition, and reporting the pair only
/// there makes the output exact and duplicate free.
class PartitionMap {
 public:
  virtual ~PartitionMap() = default;

  virtual uint32_t partitions() const = 0;

  /// Appends the distinct partitions overlapping `r` to `out` (cleared
  /// first).
  virtual void PartitionsOf(const RectF& r,
                            std::vector<uint32_t>* out) const = 0;

  /// The partition owning the reference point of the pair (r, s): the
  /// lower-left corner of r ∩ s, which both rectangles necessarily
  /// overlap.
  virtual uint32_t ReferencePartition(const RectF& r,
                                      const RectF& s) const = 0;

  /// Base grid shape and leaf statistics, for JoinStats / Explain.
  virtual uint32_t tiles_x() const = 0;
  virtual uint32_t tiles_y() const = 0;
  /// Tiles after recursive splits (== tiles_x * tiles_y for fixed grids).
  virtual uint32_t leaf_tiles() const = 0;
  /// Base tiles the planner split recursively (0 for fixed grids).
  virtual uint32_t split_tiles() const { return 0; }
  virtual bool adaptive() const = 0;

  /// Pages each partition writer buffers per flush during distribution.
  /// The fixed path keeps the paper's small constant (chosen for the
  /// worst case, since p is not planned); the adaptive planner budgets
  /// most of the phase's memory across the 2p open writers, so balanced
  /// partitions — whose interleaved flushes defeat the drive's
  /// sequential-stream detection — pay fewer, larger non-sequential
  /// requests.
  virtual uint32_t writer_block_pages() const { return 4; }

  /// One human-readable line: grid shape, splits, partition count.
  std::string Describe() const;
};

/// Patel & DeWitt's partitioning: a uniform `tiles_per_axis`^2 grid whose
/// tiles are assigned round-robin (in row-major order) to `partitions`
/// partitions. Skew answer: none — clustered data overflows partitions,
/// which the paper mitigated by raising the tile count (32^2 -> 128^2).
class FixedGridPartitionMap final : public PartitionMap {
 public:
  FixedGridPartitionMap(const RectF& extent, uint32_t tiles_per_axis,
                        uint32_t partitions);

  uint32_t partitions() const override { return partitions_; }
  void PartitionsOf(const RectF& r,
                    std::vector<uint32_t>* out) const override;
  uint32_t ReferencePartition(const RectF& r, const RectF& s) const override;
  uint32_t tiles_x() const override { return tiles_; }
  uint32_t tiles_y() const override { return tiles_; }
  uint32_t leaf_tiles() const override { return tiles_ * tiles_; }
  bool adaptive() const override { return false; }

 private:
  uint32_t TileX(float x) const { return Clamp((x - extent_.xlo) / tile_w_); }
  uint32_t TileY(float y) const { return Clamp((y - extent_.ylo) / tile_h_); }
  uint32_t PartitionOfTile(uint32_t tx, uint32_t ty) const {
    return (ty * tiles_ + tx) % partitions_;  // Row-major round-robin.
  }
  uint32_t Clamp(float rel) const {
    if (!(rel > 0.0f)) return 0;
    return std::min(static_cast<uint32_t>(rel), tiles_ - 1);
  }

  RectF extent_;
  uint32_t tiles_;
  uint32_t partitions_;
  float tile_w_;
  float tile_h_;
};

/// The skew-adaptive plan: a base grid whose overfull tiles are split
/// recursively into 2x2 quadrants (a flat quadtree over the base grid),
/// with leaf tiles assigned to partitions by weighted greedy bin-packing
/// (heaviest leaf first onto the lightest partition) instead of
/// round-robin. Built by PartitionPlanner; immutable afterwards.
class AdaptivePartitionMap final : public PartitionMap {
 public:
  uint32_t partitions() const override { return partitions_; }
  void PartitionsOf(const RectF& r,
                    std::vector<uint32_t>* out) const override;
  uint32_t ReferencePartition(const RectF& r, const RectF& s) const override;
  uint32_t tiles_x() const override { return nx_; }
  uint32_t tiles_y() const override { return ny_; }
  uint32_t leaf_tiles() const override { return leaf_tiles_; }
  uint32_t split_tiles() const override { return split_tiles_; }
  bool adaptive() const override { return true; }
  uint32_t writer_block_pages() const override { return writer_block_pages_; }

  /// The leaf tile containing (x, y) (points outside the extent clamp to
  /// the boundary tiles). Exposed for the duplicate-suppression property
  /// tests.
  uint32_t LeafForPoint(float x, float y) const;
  uint32_t PartitionOfLeaf(uint32_t leaf) const {
    return tiles_[leaf].partition;
  }
  /// Estimated bytes assigned to the heaviest partition (planning-time
  /// weight, not observed contents).
  double max_partition_weight() const { return max_partition_weight_; }

 private:
  friend class PartitionPlanner;

  /// One node of the tile tree. Base tiles occupy [0, nx*ny) in row-major
  /// order; children of split tiles are appended in quadrant order
  /// (lower-left, lower-right, upper-left, upper-right).
  struct Tile {
    int32_t child = -1;      ///< >= 0: index of the lower-left child.
    uint32_t partition = 0;  ///< Leaf tiles only.
  };

  uint32_t BaseTileX(float x) const {
    return ClampIndex((x - extent_.xlo) / tile_w_, nx_);
  }
  uint32_t BaseTileY(float y) const {
    return ClampIndex((y - extent_.ylo) / tile_h_, ny_);
  }
  static uint32_t ClampIndex(float rel, uint32_t n) {
    if (!(rel > 0.0f)) return 0;
    return std::min(static_cast<uint32_t>(rel), n - 1);
  }
  void CollectPartitions(uint32_t tile, const RectF& bounds, const RectF& r,
                         std::vector<uint32_t>* out) const;

  RectF extent_;
  uint32_t nx_ = 1;
  uint32_t ny_ = 1;
  float tile_w_ = 1.0f;
  float tile_h_ = 1.0f;
  uint32_t partitions_ = 1;
  uint32_t leaf_tiles_ = 0;
  uint32_t split_tiles_ = 0;
  uint32_t writer_block_pages_ = 4;
  double max_partition_weight_ = 0.0;
  std::vector<Tile> tiles_;
  std::vector<RectF> bounds_;  ///< Parallel to tiles_ (descent midpoints).
};

/// Knobs for the adaptive planner. Defaults follow JoinOptions: the
/// memory budget is the partition-pair budget, partitions are filled to
/// `partition_fill` of it, and a tile estimated above `split_fraction`
/// of one partition's budget is split (until `max_resolution` tiles per
/// axis — normally the histogram resolution, beyond which quadrant
/// estimates carry no new information).
struct PartitionPlannerConfig {
  size_t memory_bytes = 24u << 20;
  /// Base grid resolution; 0 derives it from the partition count.
  uint32_t base_tiles_per_axis = 0;
  /// Finest effective resolution recursive splits may reach. May exceed
  /// the histogram resolution: below one histogram cell
  /// GridHistogram::EstimateCountIn degrades to a uniform-within-cell
  /// assumption, and splitting on it still quarters a hot blob
  /// *geometrically* — exactly what balancing needs. Data truly
  /// concentrated in a point defeats any resolution and falls back to
  /// the overflow path at run time.
  uint32_t max_resolution = 2048;
  /// Target fill of a partition's share of the memory budget. Higher
  /// than the fixed path's 0.8: weighted bin-packing plans balance, so
  /// it needs less slack than round-robin's unplanned imbalance, and
  /// every partition saved is one less open writer and one less
  /// non-sequential flush stream during distribution.
  double partition_fill = 0.95;
  double split_fraction = 0.5;
};

/// Builds AdaptivePartitionMaps from per-side histograms (§6.3's grid
/// histograms driving partitioning instead of a hand-tuned constant).
/// Pure CPU — the histograms are in memory; building *them* is the
/// charged pass (GridHistogram::Build), priced by
/// CostModel::HistogramPassSeconds.
class PartitionPlanner {
 public:
  /// Plans the tile tree and partition assignment for a join over
  /// `extent` whose per-side densities are estimated by `hist_a` /
  /// `hist_b` (any grid resolution or extent; weights are queried
  /// geometrically). Deterministic for fixed inputs.
  static std::unique_ptr<AdaptivePartitionMap> Plan(
      const RectF& extent, const GridHistogram& hist_a,
      const GridHistogram& hist_b, const PartitionPlannerConfig& config);
};

/// Block-sampling rate of PBSM's on-the-fly histogram build (see
/// GridHistogram::BuildSampled): one in this many stream blocks is
/// read. Shared with the cost model so HistogramPassSeconds prices the
/// pass the executor actually runs.
inline constexpr uint32_t kPbsmHistogramSampleOneInBlocks = 4;

/// Partitions needed so an average partition pair fills at most `fill`
/// of `memory_bytes` (shared by PBSMJoin's fixed path, the adaptive
/// planner and the cost-model pre-plan, so Explain reports the grid
/// execution would use). The fixed path keeps the paper's 0.8 slack;
/// the adaptive planner passes its partition_fill.
uint32_t PbsmPartitionCount(uint64_t total_bytes, size_t memory_bytes,
                            double fill = 0.8);

/// Base grid resolution the adaptive planner derives for `partitions`
/// when none is configured: coarse (splits refine it where the data
/// actually is), but with several times more tiles than partitions so
/// bin-packing has room to balance.
uint32_t AdaptiveBaseTilesPerAxis(uint32_t partitions);

/// Flush-block pages the adaptive plan budgets per open distribution
/// writer: most of the phase's memory spread across the 2p writers,
/// clamped to [4, kStreamBlockPages]. One definition shared by
/// AdaptivePartitionMap and the memory planner (PlanJoinMemory), so
/// Explain()'s pbsm.writers line tracks what distribution acquires.
uint32_t PbsmWriterBlockPages(size_t memory_bytes, uint32_t partitions);

}  // namespace sj

#endif  // USJ_JOIN_PARTITION_PLAN_H_
