#ifndef USJ_JOIN_MULTIWAY_H_
#define USJ_JOIN_MULTIWAY_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/disk_model.h"
#include "join/join_types.h"
#include "join/sources.h"
#include "util/result.h"

namespace sj {

/// Consumer of k-way join results; `tuple[i]` is an object id from input i.
class TupleSink {
 public:
  virtual ~TupleSink() = default;
  virtual void Emit(const std::vector<ObjectId>& tuple) = 0;
};

class CountingTupleSink final : public TupleSink {
 public:
  void Emit(const std::vector<ObjectId>&) override { count_++; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

class CollectingTupleSink final : public TupleSink {
 public:
  void Emit(const std::vector<ObjectId>& tuple) override {
    tuples_.push_back(tuple);
  }
  const std::vector<std::vector<ObjectId>>& tuples() const { return tuples_; }

 private:
  std::vector<std::vector<ObjectId>> tuples_;
};

/// A lazily-evaluated two-way PQ join exposed as a sorted source: yields
/// the intersection rectangle of every result pair, in nondecreasing ylo
/// order (a pair is discovered exactly when the sweep reaches the larger
/// of the two ylo values, so the output order is free). The id of an
/// emitted rectangle indexes pairs().
///
/// This is what makes the paper's multi-way extension (§4) one-line: the
/// output of a join is itself a valid PQ input.
class PairSourceBase : public SortedRectSource {
 public:
  virtual const std::vector<IdPair>& pairs() const = 0;
};

/// Creates a pair source over two sorted inputs (which must outlive it).
std::unique_ptr<PairSourceBase> MakePairSource(SortedRectSource* a,
                                               SortedRectSource* b,
                                               SweepStructureKind kind,
                                               const RectF& extent,
                                               uint32_t strips);

/// Measurements of a k-way join.
struct MultiwayStats {
  uint64_t output_count = 0;
  double host_cpu_seconds = 0.0;
  DiskStats disk;
  /// Max bytes across sources (incl. intermediate pair tables).
  size_t max_bytes = 0;
  /// Filter-and-refine split (see JoinStats): MBR tuples before
  /// refinement, and feature-store pages the refinement step fetched.
  uint64_t candidate_count = 0;
  uint64_t refine_pages_read = 0;
  /// Memory governance (see JoinStats): the arbiter's granted peak and
  /// per-component high-water marks for the whole k-way pipeline.
  size_t peak_memory_bytes = 0;
  std::vector<MemoryComponentStats> memory_components;

  /// One human-readable line of the machine-independent counters.
  std::string Describe() const;
  /// Describe() plus the modeled time under machine `m`, and the
  /// measured I/O wall when real bytes moved.
  std::string Describe(const MachineModel& m) const;
  /// Structured form, same convention as JoinStats::ToKeyValues().
  std::vector<std::pair<std::string, std::string>> ToKeyValues() const;
};

/// Streams Describe() — the machine-independent form.
std::ostream& operator<<(std::ostream& os, const MultiwayStats& stats);

/// k-way intersection join (k >= 2): reports every k-tuple of objects, one
/// per input, whose MBRs have a common intersection point. Evaluated as a
/// left-deep chain of lazy PQ sweeps; no intermediate result is
/// materialized on disk.
Result<MultiwayStats> MultiwayJoinSources(
    const std::vector<SortedRectSource*>& inputs, const RectF& extent,
    DiskModel* disk, const JoinOptions& options, TupleSink* sink);

/// Parallel k-way intersection join over *materialized y-sorted streams*:
/// the sweep domain is cut into options.multiway_strips vertical strips,
/// each strip runs the left-deep chain independently (on a worker pool of
/// options.num_threads), and duplicates are suppressed by reporting a
/// tuple only in the strip owning the left edge of its k-way
/// intersection. Tuples arrive at `sink` in strip order; results and
/// modeled I/O stats are identical for every num_threads.
Result<MultiwayStats> MultiwayJoinStreams(const std::vector<DatasetRef>& inputs,
                                          const RectF& extent, DiskModel* disk,
                                          const JoinOptions& options,
                                          TupleSink* sink);

}  // namespace sj

#endif  // USJ_JOIN_MULTIWAY_H_
