#include "io/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sj {

Status MemoryBackend::ReadPage(uint64_t page, void* buf) {
  if (page >= pages_.size() || pages_[page] == nullptr) {
    std::memset(buf, 0, kPageSize);
    return Status::OK();
  }
  std::memcpy(buf, pages_[page].get(), kPageSize);
  return Status::OK();
}

Status MemoryBackend::WritePage(uint64_t page, const void* buf) {
  if (page >= pages_.size()) pages_.resize(page + 1);
  if (pages_[page] == nullptr) {
    pages_[page] = std::make_unique<uint8_t[]>(kPageSize);
  }
  std::memcpy(pages_[page].get(), buf, kPageSize);
  return Status::OK();
}

Status FileBackend::Open(const std::string& path,
                         std::unique_ptr<FileBackend>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  const uint64_t pages =
      (static_cast<uint64_t>(st.st_size) + kPageSize - 1) / kPageSize;
  *out = std::unique_ptr<FileBackend>(new FileBackend(fd, pages));
  return Status::OK();
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBackend::ReadPage(uint64_t page, void* buf) {
  if (page >= page_count_) {
    std::memset(buf, 0, kPageSize);
    return Status::OK();
  }
  const off_t off = static_cast<off_t>(page * kPageSize);
  ssize_t n = ::pread(fd_, buf, kPageSize, off);
  if (n < 0) return Status::IoError(std::string("pread: ") + std::strerror(errno));
  if (static_cast<size_t>(n) < kPageSize) {
    // Short read at end of file: the remainder is zero.
    std::memset(static_cast<uint8_t*>(buf) + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status FileBackend::WritePage(uint64_t page, const void* buf) {
  const off_t off = static_cast<off_t>(page * kPageSize);
  ssize_t n = ::pwrite(fd_, buf, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  if (page >= page_count_) page_count_ = page + 1;
  return Status::OK();
}

}  // namespace sj
