#include "io/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace sj {

// The mutex guards only the page *table*; the 8 KB copies run outside
// it. Safe because a page's allocation is created once and never freed
// or replaced while the backend lives (the table only grows, and vector
// reallocation moves the unique_ptrs, not the blocks they own), so a
// pointer fetched under the lock stays valid. Concurrent access to the
// *same* page's bytes remains the caller's contract, as before — this
// only stops distinct-page readers and writers (parallel run formation,
// prefetch, write-behind) from serializing on one lock per 8 KB copy.
Status MemoryBackend::ReadPage(uint64_t page, void* buf) {
  const uint8_t* src = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page < pages_.size()) src = pages_[page].get();
  }
  if (src == nullptr) {
    std::memset(buf, 0, kPageSize);
    return Status::OK();
  }
  std::memcpy(buf, src, kPageSize);
  return Status::OK();
}

Status MemoryBackend::WritePage(uint64_t page, const void* buf) {
  uint8_t* dst = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page >= pages_.size()) pages_.resize(page + 1);
    if (pages_[page] == nullptr) {
      pages_[page] = std::make_unique<uint8_t[]>(kPageSize);
    }
    dst = pages_[page].get();
  }
  std::memcpy(dst, buf, kPageSize);
  return Status::OK();
}

namespace io_internal {

Result<size_t> ReadFull(const PReadFn& pread_fn, void* buf, size_t len,
                        off_t offset) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = pread_fn(static_cast<uint8_t*>(buf) + got, len - got,
                               offset + static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) break;  // EOF; the caller judges whether it is legitimate.
    got += static_cast<size_t>(n);
  }
  return got;
}

Status WriteFull(const PWriteFn& pwrite_fn, const void* buf, size_t len,
                 off_t offset) {
  size_t put = 0;
  while (put < len) {
    const ssize_t n =
        pwrite_fn(static_cast<const uint8_t*>(buf) + put, len - put,
                  offset + static_cast<off_t>(put));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("pwrite: no forward progress (wrote 0 bytes)");
    }
    put += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace io_internal

Status FileBackend::Open(const std::string& path,
                         std::unique_ptr<FileBackend>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  *out = std::unique_ptr<FileBackend>(
      new FileBackend(fd, static_cast<uint64_t>(st.st_size)));
  return Status::OK();
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBackend::ReadPage(uint64_t page, void* buf) {
  if (page >= page_count_.load(std::memory_order_acquire)) {
    std::memset(buf, 0, kPageSize);
    return Status::OK();
  }
  const off_t off = static_cast<off_t>(page * kPageSize);
  SJ_ASSIGN_OR_RETURN(
      const size_t got,
      io_internal::ReadFull(
          [this](void* b, size_t l, off_t o) { return ::pread(fd_, b, l, o); },
          buf, kPageSize, off));
  if (got < kPageSize) {
    // EOF. Legitimate only past the known end of file (the last page of a
    // file whose length is not page-aligned, or a hole); anything earlier
    // means the file shrank under us.
    if (static_cast<uint64_t>(off) + got <
        size_bytes_.load(std::memory_order_acquire)) {
      return Status::IoError("short read mid-file at page " +
                             std::to_string(page) + ": got " +
                             std::to_string(got) + " of " +
                             std::to_string(kPageSize) + " bytes");
    }
    std::memset(static_cast<uint8_t*>(buf) + got, 0, kPageSize - got);
  }
  return Status::OK();
}

Status FileBackend::WritePage(uint64_t page, const void* buf) {
  const off_t off = static_cast<off_t>(page * kPageSize);
  SJ_RETURN_IF_ERROR(io_internal::WriteFull(
      [this](const void* b, size_t l, off_t o) {
        return ::pwrite(fd_, b, l, o);
      },
      buf, kPageSize, off));
  const uint64_t end = (page + 1) * kPageSize;
  uint64_t cur = size_bytes_.load(std::memory_order_relaxed);
  while (cur < end && !size_bytes_.compare_exchange_weak(
                          cur, end, std::memory_order_release)) {
  }
  uint64_t pages = page_count_.load(std::memory_order_relaxed);
  while (pages <= page && !page_count_.compare_exchange_weak(
                              pages, page + 1, std::memory_order_release)) {
  }
  return Status::OK();
}

Result<std::unique_ptr<StorageBackend>> MemoryStorageFactory::Create(
    const std::string&) {
  return {std::make_unique<MemoryBackend>()};
}

Result<std::unique_ptr<TmpFileStorageFactory>> TmpFileStorageFactory::Make(
    const std::string& dir_hint) {
  std::string base = dir_hint;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = (env != nullptr && *env != '\0') ? env : "/tmp";
  }
  std::string tmpl = base + "/sj.storage.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("mkdtemp " + tmpl + ": " + std::strerror(errno));
  }
  return {std::unique_ptr<TmpFileStorageFactory>(
      new TmpFileStorageFactory(std::string(buf.data())))};
}

TmpFileStorageFactory::~TmpFileStorageFactory() {
  // Files are unlinked at Create(); only the (empty) directory remains.
  ::rmdir(dir_.c_str());
}

Result<std::unique_ptr<StorageBackend>> TmpFileStorageFactory::Create(
    const std::string& name) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_file_++;
  }
  // The device name is for diagnostics only; the sequence number makes the
  // path unique (names repeat across shards and retries).
  std::string sanitized;
  sanitized.reserve(name.size());
  for (char c : name) {
    sanitized.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '-' || c == '_')
            ? c
            : '_');
  }
  const std::string path = dir_ + "/" + std::to_string(seq) + "." + sanitized;
  std::unique_ptr<FileBackend> file;
  SJ_RETURN_IF_ERROR(FileBackend::Open(path, &file));
  ::unlink(path.c_str());  // The fd keeps it alive; nothing leaks on abort.
  return {std::unique_ptr<StorageBackend>(std::move(file))};
}

}  // namespace sj
