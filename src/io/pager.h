#ifndef USJ_IO_PAGER_H_
#define USJ_IO_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "io/disk_model.h"
#include "io/storage.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// Identifies a page within one Pager (logical file).
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// One logical file: a storage backend plus cost accounting on a shared
/// DiskModel. All algorithm I/O goes through Pagers (directly for index
/// nodes, via Stream for scans), so every byte moved is charged.
class Pager {
 public:
  /// `disk` must outlive the pager. The pager registers itself as a device.
  Pager(std::unique_ptr<StorageBackend> backend, DiskModel* disk,
        std::string name);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads one page (a single-page disk request).
  Status ReadPage(PageId page, void* buf);
  /// Reads `npages` consecutive pages as one request (streaming).
  Status ReadRun(PageId first, uint32_t npages, void* buf);
  /// Writes one page.
  Status WritePage(PageId page, const void* buf);
  /// Writes `npages` consecutive pages as one request (streaming).
  Status WriteRun(PageId first, uint32_t npages, const void* buf);

  /// Reserves `npages` consecutive new pages; returns the first id.
  PageId Allocate(uint32_t npages);

  /// Charge-only halves of ReadRun/WriteRun: issue the modeled DiskModel
  /// request without moving bytes. The deterministic-I/O contract (same
  /// modeled io_seconds at any thread count) requires charges to happen
  /// on the consumer/producer thread in serial order even when the byte
  /// transfer ran early or late on a worker — parallel run formation
  /// replays the serial charge sequence after its workers moved the
  /// bytes, and a write-behind writer charges at flush submission while
  /// the transfer completes in the background. ChargeWrite advances the
  /// allocation watermark like WriteRun.
  void ChargeRead(PageId first, uint32_t npages);
  void ChargeWrite(PageId first, uint32_t npages);

  /// Releases the storage backend; the pager must not be used afterwards.
  /// Used by RehomePager() to move a finished file between DiskModels.
  std::unique_ptr<StorageBackend> ReleaseBackend() {
    return std::move(backend_);
  }

  /// Direct access to the backing storage for readers that do their own
  /// cost accounting (the parallel refinement executor reads a shared
  /// feature store from many workers and charges each worker's private
  /// DiskModel shard; BlockPrefetcher fetches ahead on a background
  /// task). Both backends are safe for concurrent page-granular access,
  /// but a page's *content* is only stable once its stream is finished —
  /// fetch immutable ranges only.
  StorageBackend* backend() const { return backend_.get(); }

  /// Pages allocated so far (>= backend page count until they are written).
  uint64_t page_count() const { return allocated_; }

  DiskModel* disk() const { return disk_; }
  uint32_t device_id() const { return device_; }
  const std::string& name() const { return name_; }

 private:
  std::unique_ptr<StorageBackend> backend_;
  DiskModel* disk_;
  uint32_t device_;
  std::string name_;
  uint64_t allocated_ = 0;
};

/// Convenience factory: a memory-backed pager on `disk`.
std::unique_ptr<Pager> MakeMemoryPager(DiskModel* disk, std::string name);

/// Factory-aware pager creation: the storage choice of the query/service
/// (`factory`, null = MemoryBackend) decides what backs the file. All
/// algorithm scratch/spill pager creation goes through here so a single
/// JoinOptions knob switches the whole pipeline onto real files.
Result<std::unique_ptr<Pager>> MakePager(StorageFactory* factory,
                                         DiskModel* disk, std::string name);

/// Moves a finished file onto another DiskModel: the returned pager owns
/// `pager`'s backend (same bytes, same page ids, same allocation count)
/// but charges its I/O to `disk`. This is how the parallel join engine
/// hands a partition file written on the shared disk to a worker whose
/// modeled I/O accumulates on a private shard.
std::unique_ptr<Pager> RehomePager(std::unique_ptr<Pager> pager,
                                   DiskModel* disk);

}  // namespace sj

#endif  // USJ_IO_PAGER_H_
