#ifndef USJ_IO_BUFFER_POOL_H_
#define USJ_IO_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "io/pager.h"
#include "util/status.h"

namespace sj {

/// Page-replacement statistics. The paper's Table 4 counts "page requests"
/// for ST as the requests that actually reach the disk, i.e. `misses` here:
/// on NJ/NY the whole index fits in the 22 MB pool and each page is read at
/// most once even though the traversal requests it repeatedly.
struct BufferPoolStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// A least-recently-used page cache shared by any number of pagers (ST
/// keeps the nodes of *both* R-trees in one pool, as in the paper).
///
/// Single-threaded by design: only ST uses a pool, and ST is one stream
/// of control, as in the paper. (The parallel engine's workers never
/// share a pool — each runs against its own DiskModel shard.) Get()
/// copies the page into the caller's buffer, so eviction can never
/// invalidate data a caller still holds.
class BufferPool {
 public:
  /// `capacity_pages` > 0.
  explicit BufferPool(size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads `page` of `pager` through the cache into `buf` (kPageSize
  /// bytes). `pager` must outlive the pool.
  Status Get(Pager* pager, PageId page, void* buf);

  /// Drops all cached pages (stats are retained).
  void Clear();

  /// Resizes the pool to `capacity_pages` (> 0), evicting LRU frames when
  /// shrinking below the current working set. Complements the
  /// grant-backed sizing in STJoin (which fixes the capacity at
  /// construction from its "buffer.pool" grant): a long-lived pool can
  /// track a grant that grows or shrinks mid-flight.
  void SetCapacity(size_t capacity_pages);

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity_pages() const { return capacity_; }
  size_t cached_pages() const { return frames_.size(); }

  /// Capacity corresponding to the paper's 22 MB pool of 8 KB pages.
  static constexpr size_t kPaperCapacityPages = (22u << 20) / kPageSize;

 private:
  /// Frames are keyed by (device id, page id): device ids are unique per
  /// DiskModel and a pool is only ever used with pagers of one model.
  using FrameKey = uint64_t;
  static FrameKey MakeKey(const Pager* pager, PageId page) {
    return (static_cast<uint64_t>(pager->device_id()) << 32) | page;
  }

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    std::list<FrameKey>::iterator lru_pos;
  };

  size_t capacity_;
  BufferPoolStats stats_;
  std::list<FrameKey> lru_;  // Front = most recently used.
  std::unordered_map<FrameKey, Frame> frames_;
};

}  // namespace sj

#endif  // USJ_IO_BUFFER_POOL_H_
