#ifndef USJ_IO_BUFFER_POOL_H_
#define USJ_IO_BUFFER_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/pager.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// Page-replacement statistics. The paper's Table 4 counts "page requests"
/// for ST as the requests that actually reach the disk, i.e. `misses` here:
/// on NJ/NY the whole index fits in the 22 MB pool and each page is read at
/// most once even though the traversal requests it repeatedly.
struct BufferPoolStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  BufferPoolStats operator-(const BufferPoolStats& o) const {
    return {requests - o.requests, hits - o.hits, misses - o.misses};
  }
};

/// A thread-safe page cache shared by any number of pagers and any number
/// of concurrent queries (the service keeps *one* pool for the whole
/// process; ST keeps the nodes of both R-trees of a join in it, as in the
/// paper).
///
/// Replacement is 2Q [Johnson & Shasha, VLDB'94], which a single global
/// pool needs where the old per-query pool could get away with LRU: one
/// query's sequential partition scan must not flush another query's hot
/// R-tree upper levels. Newly admitted pages enter a FIFO trial queue
/// (A1in, ~1/4 of capacity); pages re-read after leaving the trial queue —
/// proven reuse — are promoted to the hot LRU list (Am). A ghost list of
/// evicted-from-trial keys (A1out, ~1/2 of capacity, keys only) remembers
/// whom to promote.
///
/// Frames are *latched*: a miss installs a frame in `loading` state,
/// releases the pool mutex for the (modeled) disk read, and wakes waiters
/// when the bytes arrive. Concurrent requesters of a loading page block on
/// the latch and count as hits — only the loading thread counts the miss,
/// which preserves the misses == disk-reads invariant under concurrency.
///
/// Get() copies the page into the caller's buffer, so eviction can never
/// invalidate data a caller still holds; Pin() instead returns a PageRef
/// that keeps the frame resident (pinned and loading frames are skipped by
/// eviction; when every frame is pinned the pool transiently overflows
/// rather than deadlocking, mirroring how MemoryArbiter grants degrade).
///
/// Per-query attribution: each client registers once (RegisterClient) and
/// passes its id to Get/Pin; client_stats(id) then yields hit/miss deltas
/// that executors fold into JoinStats.
class BufferPool {
 public:
  class PageRef;

  /// `capacity_pages` > 0.
  explicit BufferPool(size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a stats client (one per query) and returns its id. Id 0 is
  /// the pre-registered "unattributed" client used when callers do not
  /// pass one.
  uint32_t RegisterClient(std::string name);

  /// Reads `page` of `pager` through the cache into `buf` (kPageSize
  /// bytes). `pager` must outlive the pool's frames for it (see Clear()).
  /// Thread-safe; blocks only while another thread loads the same page.
  Status Get(Pager* pager, PageId page, void* buf, uint32_t client = 0);

  /// Like Get() but returns a pinned zero-copy reference to the cached
  /// frame instead of copying it out. The frame cannot be evicted while
  /// the PageRef lives. Refs must not outlive the pool.
  Result<PageRef> Pin(Pager* pager, PageId page, uint32_t client = 0);

  /// Drops all cached pages except pinned or in-flight ones (stats are
  /// retained). Call when a pager is about to die so no frame outlives it.
  void Clear();

  /// Resizes the pool to `capacity_pages` (> 0), evicting by replacement
  /// order when shrinking below the current working set. Complements the
  /// grant-backed sizing in STJoin (which fixes the capacity at
  /// construction from its "buffer.pool" grant): a long-lived pool can
  /// track a grant that grows or shrinks mid-flight.
  void SetCapacity(size_t capacity_pages);

  /// Consistent snapshots (by value: counters may move concurrently).
  BufferPoolStats stats() const;
  BufferPoolStats client_stats(uint32_t client) const;

  size_t capacity_pages() const;
  size_t cached_pages() const;

  /// Capacity corresponding to the paper's 22 MB pool of 8 KB pages.
  static constexpr size_t kPaperCapacityPages = (22u << 20) / kPageSize;

 private:
  /// Frames are keyed by (pager, page): device ids are only unique per
  /// DiskModel, and the process-wide pool serves pagers of many models.
  using FrameKey = std::pair<const Pager*, PageId>;
  struct KeyHash {
    size_t operator()(const FrameKey& k) const {
      return std::hash<const void*>()(k.first) * 1000003u ^
             std::hash<uint64_t>()(k.second);
    }
  };

  enum class Queue : uint8_t { kA1in, kAm };

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool loading = true;
    Status load_status;
    uint32_t pins = 0;
    Queue queue = Queue::kA1in;
    std::list<FrameKey>::iterator pos;  // In a1in_ or am_ per `queue`.
  };

  size_t KinTarget() const { return std::max<size_t>(1, capacity_ / 4); }
  size_t KoutTarget() const { return std::max<size_t>(1, capacity_ / 2); }

  /// Finds-or-installs the frame and waits out a concurrent load. On
  /// return the frame is resident and its pin count was raised by one (so
  /// it survives the caller's use); the caller must drop the pin. Caller
  /// must hold `lock`.
  Result<std::shared_ptr<Frame>> GetFrameLocked(
      std::unique_lock<std::mutex>& lock, Pager* pager, PageId page,
      uint32_t client);

  /// Evicts one unpinned, loaded frame per 2Q order; returns false when
  /// every frame is pinned or loading (transient overflow). Caller must
  /// hold mu_.
  bool EvictOneLocked();
  /// Removes `key`'s frame from the map and its queue. Caller must hold
  /// mu_.
  void DropFrameLocked(const FrameKey& key, const std::shared_ptr<Frame>& f);
  void Unpin(Frame* frame);
  void BumpClientLocked(uint32_t client, bool hit);

  mutable std::mutex mu_;
  std::condition_variable load_cv_;  // Signaled when any load finishes.
  size_t capacity_;
  BufferPoolStats stats_;
  std::vector<BufferPoolStats> client_stats_;
  std::list<FrameKey> a1in_;  // FIFO trial queue: front = oldest.
  std::list<FrameKey> am_;    // Hot LRU: front = MRU, back = LRU.
  std::list<FrameKey> a1out_;  // Ghost keys: front = oldest.
  std::unordered_map<FrameKey, std::list<FrameKey>::iterator, KeyHash>
      ghost_index_;
  std::unordered_map<FrameKey, std::shared_ptr<Frame>, KeyHash> frames_;
};

/// A pinned, zero-copy view of one cached page. Move-only; unpins on
/// destruction.
class BufferPool::PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& o) noexcept : pool_(o.pool_), frame_(std::move(o.frame_)) {
    o.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& o) noexcept {
    if (this != &o) {
      Reset();
      pool_ = o.pool_;
      frame_ = std::move(o.frame_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  ~PageRef() { Reset(); }

  const uint8_t* data() const { return frame_->data.get(); }
  explicit operator bool() const { return frame_ != nullptr; }

  /// Drops the pin early.
  void Reset();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, std::shared_ptr<Frame> frame)
      : pool_(pool), frame_(std::move(frame)) {}

  BufferPool* pool_ = nullptr;
  std::shared_ptr<Frame> frame_;
};

}  // namespace sj

#endif  // USJ_IO_BUFFER_POOL_H_
