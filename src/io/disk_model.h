#ifndef USJ_IO_DISK_MODEL_H_
#define USJ_IO_DISK_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/machine_model.h"

namespace sj {

/// The page size used everywhere (R-tree nodes, stream pages). 8 KB, as in
/// the paper's experiments; with 20-byte entries this yields the paper's
/// R-tree fanout of 400.
inline constexpr size_t kPageSize = 8192;

/// Aggregate I/O accounting for one simulated disk.
struct DiskStats {
  uint64_t read_requests = 0;
  uint64_t sequential_read_requests = 0;
  uint64_t random_read_requests = 0;
  uint64_t write_requests = 0;
  uint64_t sequential_write_requests = 0;
  uint64_t random_write_requests = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  /// Modeled elapsed disk time in seconds.
  double io_seconds = 0.0;
  /// Measured wall-clock seconds spent inside actual StorageBackend
  /// reads/writes charged to this model (near zero for MemoryBackend,
  /// real transfer time for FileBackend). Background prefetch reports its
  /// fetch time here too, so overlapped fetches can sum to more than the
  /// elapsed wall time of the join.
  double io_wall_seconds = 0.0;

  DiskStats operator-(const DiskStats& o) const;
  /// Accumulates another disk's counters and modeled time (merging the
  /// per-worker shards of a parallel join).
  DiskStats& operator+=(const DiskStats& o);
};

/// Per-device (per logical file) page counters, for attribution of I/O to
/// individual inputs (e.g. Table 4 counts only R-tree pages).
struct DeviceStats {
  std::string name;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
};

/// Simulates one disk shared by all files of an experiment.
///
/// Every page transfer in the library is routed here. A request names a
/// device (logical file), a first page and a page count; the model charges
///
///   stream continuation:  npages * transfer_time(page)
///   random access:        avg_access + npages * transfer_time(page)
///
/// A request is a *continuation* when it starts within the forward
/// read-ahead window (one 64 KB cache segment) of an active stream. The
/// drive tracks as many concurrent streams as its on-disk cache has 64 KB
/// segments (Table 1: 8 on Machines 1/3, 2 on Machine 2). This models
/// firmware read-ahead, which is what lets ST's depth-first traversal read
/// the interleaved-but-contiguous leaf runs of two bulk-loaded R-trees at
/// partially-streaming speed (§6.2) while PQ's sweep-order accesses —
/// scattered across the whole file — stay random. Reads and writes use
/// separate segment sets, and write transfers cost `write_factor` times
/// read transfers (§6.3).
///
/// All of the qualitative results of the paper emerge from the access
/// patterns themselves against this one model; there are no per-algorithm
/// cost constants.
///
/// Thread-safe: charges and stat reads serialize on an internal mutex, so
/// one model can back the shared BufferPool's latched loads and a query
/// whose strips run on the shared worker pool. (The parallel join engine
/// still gives each work unit a private shard — sharding is about keeping
/// the *modeled* stream state serial-equivalent, not about locking.)
class DiskModel {
 public:
  explicit DiskModel(MachineModel machine);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Registers a logical file; returns its device id.
  uint32_t RegisterDevice(std::string name);

  /// Charges a read of `npages` pages starting at `first_page` of `dev`.
  void Read(uint32_t dev, uint64_t first_page, uint32_t npages);
  /// Charges a write of `npages` pages starting at `first_page` of `dev`.
  void Write(uint32_t dev, uint64_t first_page, uint32_t npages);

  /// Accumulates measured wall-clock seconds spent in real backend I/O.
  /// Kept separate from Read/Write so the *modeled* charge stream (and
  /// with it stream-detection state) is identical whether the bytes moved
  /// synchronously or on a prefetch thread.
  void AddIoWall(double seconds);

  /// Consistent snapshots (by value: the counters may move concurrently).
  DiskStats stats() const;
  std::vector<DeviceStats> device_stats() const;
  const MachineModel& machine() const { return machine_; }

  /// Concurrent sequential streams the drive can sustain per direction.
  size_t stream_capacity() const { return stream_capacity_; }

  /// Clears the aggregate and per-device counters (stream state is kept).
  void ResetStats();

  /// Modeled cost (seconds) of one *random* single-page read; this is the
  /// "average disk block read access time" used for the paper's estimated
  /// running times (Figure 2(a)-(c)).
  double RandomPageReadSeconds() const {
    return (machine_.avg_access_ms + machine_.PageTransferMs(kPageSize)) * 1e-3;
  }
  /// Modeled cost (seconds) of one page read at peak streaming rate.
  double SequentialPageReadSeconds() const {
    return machine_.PageTransferMs(kPageSize) * 1e-3;
  }

 private:
  struct Stream {
    uint32_t dev = 0;
    uint64_t next_page = 0;
    uint64_t last_use = 0;
  };

  // Returns true (and advances the stream) if the request continues one of
  // `streams`; otherwise installs a new stream, evicting the LRU. Caller
  // must hold mu_.
  bool MatchStream(std::vector<Stream>* streams, uint32_t dev,
                   uint64_t first_page, uint32_t npages);

  mutable std::mutex mu_;
  MachineModel machine_;
  DiskStats stats_;
  std::vector<DeviceStats> devices_;
  size_t stream_capacity_;
  uint64_t clock_ = 0;
  std::vector<Stream> read_streams_;
  std::vector<Stream> write_streams_;
};

}  // namespace sj

#endif  // USJ_IO_DISK_MODEL_H_
