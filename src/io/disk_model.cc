#include "io/disk_model.h"

#include <algorithm>

#include "util/logging.h"

namespace sj {

DiskStats DiskStats::operator-(const DiskStats& o) const {
  DiskStats d;
  d.read_requests = read_requests - o.read_requests;
  d.sequential_read_requests =
      sequential_read_requests - o.sequential_read_requests;
  d.random_read_requests = random_read_requests - o.random_read_requests;
  d.write_requests = write_requests - o.write_requests;
  d.sequential_write_requests =
      sequential_write_requests - o.sequential_write_requests;
  d.random_write_requests = random_write_requests - o.random_write_requests;
  d.pages_read = pages_read - o.pages_read;
  d.pages_written = pages_written - o.pages_written;
  d.io_seconds = io_seconds - o.io_seconds;
  d.io_wall_seconds = io_wall_seconds - o.io_wall_seconds;
  return d;
}

DiskStats& DiskStats::operator+=(const DiskStats& o) {
  read_requests += o.read_requests;
  sequential_read_requests += o.sequential_read_requests;
  random_read_requests += o.random_read_requests;
  write_requests += o.write_requests;
  sequential_write_requests += o.sequential_write_requests;
  random_write_requests += o.random_write_requests;
  pages_read += o.pages_read;
  pages_written += o.pages_written;
  io_seconds += o.io_seconds;
  io_wall_seconds += o.io_wall_seconds;
  return *this;
}

namespace {
// One cache segment per 64 KB of on-disk buffer, at least two.
constexpr double kSegmentKb = 64.0;
// Forward read-ahead reach of one stream: one cache segment.
constexpr uint64_t kWindowPages =
    static_cast<uint64_t>(kSegmentKb * 1024 / kPageSize);
}  // namespace

DiskModel::DiskModel(MachineModel machine)
    : machine_(std::move(machine)),
      stream_capacity_(std::max<size_t>(
          2, static_cast<size_t>(machine_.disk_buffer_kb / kSegmentKb))) {}

uint32_t DiskModel::RegisterDevice(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  devices_.push_back(DeviceStats{std::move(name)});
  return static_cast<uint32_t>(devices_.size() - 1);
}

DiskStats DiskModel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<DeviceStats> DiskModel::device_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_;
}

bool DiskModel::MatchStream(std::vector<Stream>* streams, uint32_t dev,
                            uint64_t first_page, uint32_t npages) {
  clock_++;
  for (Stream& s : *streams) {
    // A request is serviced without positioning cost when it *starts*
    // inside the stream's forward read-ahead window: period firmware
    // prefetches ahead of a detected stream but does not retain data
    // behind the head, so backward jumps (even short ones) pay the
    // positioning cost. A long transfer may extend past the window — the
    // head is already in place and simply keeps streaming.
    if (s.dev == dev && first_page >= s.next_page &&
        first_page <= s.next_page + kWindowPages) {
      s.next_page = first_page + npages;
      s.last_use = clock_;
      return true;
    }
  }
  // Miss: start a new stream, evicting the least recently used.
  if (streams->size() < stream_capacity_) {
    streams->push_back(Stream{dev, first_page + npages, clock_});
  } else {
    Stream* victim = &(*streams)[0];
    for (Stream& s : *streams) {
      if (s.last_use < victim->last_use) victim = &s;
    }
    *victim = Stream{dev, first_page + npages, clock_};
  }
  return false;
}

void DiskModel::Read(uint32_t dev, uint64_t first_page, uint32_t npages) {
  if (npages == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SJ_DCHECK(dev < devices_.size());
  const bool sequential = MatchStream(&read_streams_, dev, first_page, npages);
  const double transfer_ms = machine_.PageTransferMs(kPageSize) * npages;
  stats_.io_seconds +=
      (sequential ? transfer_ms : machine_.avg_access_ms + transfer_ms) * 1e-3;
  stats_.read_requests++;
  if (sequential) {
    stats_.sequential_read_requests++;
  } else {
    stats_.random_read_requests++;
  }
  stats_.pages_read += npages;
  devices_[dev].pages_read += npages;
  devices_[dev].read_requests++;
}

void DiskModel::Write(uint32_t dev, uint64_t first_page, uint32_t npages) {
  if (npages == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SJ_DCHECK(dev < devices_.size());
  const bool sequential =
      MatchStream(&write_streams_, dev, first_page, npages);
  const double transfer_ms =
      machine_.PageTransferMs(kPageSize) * npages * machine_.write_factor;
  stats_.io_seconds +=
      (sequential ? transfer_ms : machine_.avg_access_ms + transfer_ms) * 1e-3;
  stats_.write_requests++;
  if (sequential) {
    stats_.sequential_write_requests++;
  } else {
    stats_.random_write_requests++;
  }
  stats_.pages_written += npages;
  devices_[dev].pages_written += npages;
  devices_[dev].write_requests++;
}

void DiskModel::AddIoWall(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.io_wall_seconds += seconds;
}

void DiskModel::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DiskStats{};
  for (DeviceStats& d : devices_) {
    d.pages_read = d.pages_written = 0;
    d.read_requests = d.write_requests = 0;
  }
}

}  // namespace sj
