#include "io/write_behind.h"

#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {

BlockWriteBehind::BlockWriteBehind(Pager* pager, ThreadPool* pool)
    : shared_(std::make_shared<Shared>()), pool_(pool) {
  shared_->pager = pager;
}

BlockWriteBehind::~BlockWriteBehind() {
  {
    std::unique_lock<std::mutex> lk(shared_->mu);
    // Claim-cancel anything still queued so no task starts a write against
    // a dying pager, then wait out a write already running. A cancelled
    // flush only happens on the Abandon() unwind path, where the stream is
    // dead and its pages are never read.
    if (shared_->state == State::kQueued) shared_->state = State::kDone;
    shared_->cv.wait(lk,
                     [this] { return shared_->state != State::kRunning; });
    shared_->stop = true;
    shared_->cv.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool BlockWriteBehind::TryClaim(Shared* s) {
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->state != State::kQueued) return false;
  s->state = State::kRunning;
  return true;
}

void BlockWriteBehind::DoWrite(Shared* s) {
  WallTimer wall;
  StorageBackend* backend = s->pager->backend();
  const uint8_t* in = s->buf.data();
  Status status;
  for (uint32_t i = 0; i < s->npages && status.ok(); ++i) {
    status = backend->WritePage(s->first + i, in + i * kPageSize);
  }
  const double elapsed = wall.Elapsed();
  std::lock_guard<std::mutex> lock(s->mu);
  s->wall_seconds = elapsed;
  s->status = std::move(status);
  s->state = State::kDone;
  s->cv.notify_all();
}

void BlockWriteBehind::ThreadLoop(const std::shared_ptr<Shared>& s) {
  std::unique_lock<std::mutex> lk(s->mu);
  for (;;) {
    s->cv.wait(lk, [&] { return s->stop || s->state == State::kQueued; });
    if (s->state == State::kQueued) {
      s->state = State::kRunning;
      lk.unlock();
      DoWrite(s.get());
      lk.lock();
    } else if (s->stop) {
      return;
    }
  }
}

void BlockWriteBehind::Start(PageId first, uint32_t npages,
                             std::vector<uint8_t>* buf) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    SJ_CHECK(shared_->state == State::kIdle)
        << "BlockWriteBehind::Start with a flush in flight";
    shared_->first = first;
    shared_->npages = npages;
    shared_->buf.swap(*buf);
    shared_->status = Status::OK();
    shared_->wall_seconds = 0.0;
    shared_->state = State::kQueued;
  }
  if (pool_ != nullptr) {
    std::shared_ptr<Shared> s = shared_;
    pool_->Submit([s] {
      if (TryClaim(s.get())) DoWrite(s.get());
    });
  } else {
    if (!thread_.joinable()) {
      std::shared_ptr<Shared> s = shared_;
      thread_ = std::thread([s] { ThreadLoop(s); });
    }
    shared_->cv.notify_all();
  }
}

Status BlockWriteBehind::Finish() {
  if (TryClaim(shared_.get())) DoWrite(shared_.get());
  std::unique_lock<std::mutex> lk(shared_->mu);
  SJ_CHECK(shared_->state != State::kIdle)
      << "BlockWriteBehind::Finish without Start";
  shared_->cv.wait(lk, [this] { return shared_->state == State::kDone; });
  // The modeled charge was already issued at Start by the producer; only
  // the measured wall time lands here.
  shared_->pager->disk()->AddIoWall(shared_->wall_seconds);
  Status status = std::move(shared_->status);
  shared_->status = Status::OK();
  shared_->state = State::kIdle;
  return status;
}

bool BlockWriteBehind::in_flight() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state != State::kIdle;
}

}  // namespace sj
