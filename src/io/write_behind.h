#ifndef USJ_IO_WRITE_BEHIND_H_
#define USJ_IO_WRITE_BEHIND_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "io/pager.h"
#include "util/status.h"

namespace sj {

class ThreadPool;

/// How (and whether) stream writers overlap flushing a filled block with
/// filling the next one. Carried alongside JoinOptions into the writer
/// adoption points (external-sort run formation and merge output, PQ
/// spill runs); the read-side twin is PrefetchContext.
struct WriteBehindContext {
  /// Off by default: write-behind only moves *when* bytes land, never
  /// which requests are charged, but it spends an extra block buffer and
  /// a background task per writer.
  bool enabled = false;
  /// Flushes are submitted here when set (the service's shared workers);
  /// null makes each writer lazily own one dedicated thread. Not owned;
  /// must outlive the writers using it.
  ThreadPool* pool = nullptr;
};

/// Double-buffering engine for StreamWriter: writes a filled block to the
/// pager's backend on a background task while the producer fills the next
/// block. The mirror image of BlockPrefetcher, with the same claim/finish
/// state machine.
///
/// The deterministic-output contract of the repo (same results and same
/// modeled io_seconds at any thread count) is preserved by splitting the
/// two halves of a write the same way prefetch splits a read:
///   - the *modeled charge* (DiskModel::Write) is issued by the caller on
///     the producer thread at flush submission — exactly when and where
///     the synchronous path would have charged it;
///   - the *byte transfer* (StorageBackend::WritePage) happens later, on
///     the background task, and is wall-timed; the measured wall lands on
///     the pager's DiskModel at Finish().
///
/// A flush submitted to a ThreadPool is *claimable*: Finish() on a flush
/// the pool has not started yet runs it inline on the producer, so a
/// producer never blocks on pool scheduling. The pager must outlive the
/// engine; only the pager's backend is touched off-thread (page-granular
/// concurrent access is safe on both backends, and nothing reads a
/// stream's pages until its writer has Finished).
class BlockWriteBehind {
 public:
  BlockWriteBehind(Pager* pager, ThreadPool* pool);
  ~BlockWriteBehind();

  BlockWriteBehind(const BlockWriteBehind&) = delete;
  BlockWriteBehind& operator=(const BlockWriteBehind&) = delete;

  /// Swaps `*buf` into the engine and begins writing its first `npages`
  /// pages to pages [first, first+npages) of the pager's backend. The
  /// caller must already have allocated the extent and issued the modeled
  /// write charge (Pager::ChargeWrite); only bytes move here. On return
  /// `*buf` holds the engine's previous buffer, free for reuse (empty on
  /// the first call). Requires no flush in flight.
  void Start(PageId first, uint32_t npages, std::vector<uint8_t>* buf);

  /// Waits for (or claims and runs) the in-flight flush, adds its
  /// measured wall time to the pager's DiskModel, and returns the backend
  /// write status.
  Status Finish();

  /// True between Start() and Finish().
  bool in_flight() const;

 private:
  enum class State { kIdle, kQueued, kRunning, kDone };

  /// Everything the background task touches, shared so a queued pool task
  /// can outlive the engine harmlessly (it finds the flush already
  /// claimed/cancelled and backs off without touching the pager).
  struct Shared {
    Pager* pager = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    State state = State::kIdle;
    bool stop = false;  // Dedicated-thread shutdown flag.
    PageId first = 0;
    uint32_t npages = 0;
    std::vector<uint8_t> buf;
    Status status;
    double wall_seconds = 0.0;
  };

  /// CAS kQueued -> kRunning under the lock; the winner runs the flush.
  static bool TryClaim(Shared* s);
  /// The byte transfer; call only after a successful TryClaim.
  static void DoWrite(Shared* s);
  static void ThreadLoop(const std::shared_ptr<Shared>& s);

  std::shared_ptr<Shared> shared_;
  ThreadPool* pool_;
  std::thread thread_;  // Lazily started when pool_ == nullptr.
};

}  // namespace sj

#endif  // USJ_IO_WRITE_BEHIND_H_
