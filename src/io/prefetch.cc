#include "io/prefetch.h"

#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace sj {

BlockPrefetcher::BlockPrefetcher(Pager* pager, ThreadPool* pool)
    : shared_(std::make_shared<Shared>()), pool_(pool) {
  shared_->pager = pager;
}

BlockPrefetcher::~BlockPrefetcher() {
  {
    std::unique_lock<std::mutex> lk(shared_->mu);
    // Claim-cancel anything still queued so no task starts a fetch against
    // a dying pager, then wait out a fetch already running.
    if (shared_->state == State::kQueued) shared_->state = State::kDone;
    shared_->cv.wait(lk,
                     [this] { return shared_->state != State::kRunning; });
    shared_->stop = true;
    shared_->cv.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool BlockPrefetcher::TryClaim(Shared* s) {
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->state != State::kQueued) return false;
  s->state = State::kRunning;
  return true;
}

void BlockPrefetcher::DoFetch(Shared* s) {
  WallTimer wall;
  StorageBackend* backend = s->pager->backend();
  uint8_t* out = s->buf.data();
  Status status;
  for (const PageRun& run : s->runs) {
    for (uint32_t i = 0; i < run.npages && status.ok(); ++i) {
      status = backend->ReadPage(run.first + i, out + i * kPageSize);
    }
    out += static_cast<size_t>(run.npages) * kPageSize;
    if (!status.ok()) break;
  }
  const double elapsed = wall.Elapsed();
  std::lock_guard<std::mutex> lock(s->mu);
  s->wall_seconds = elapsed;
  s->status = std::move(status);
  s->state = State::kDone;
  s->cv.notify_all();
}

void BlockPrefetcher::ThreadLoop(const std::shared_ptr<Shared>& s) {
  std::unique_lock<std::mutex> lk(s->mu);
  for (;;) {
    s->cv.wait(lk, [&] { return s->stop || s->state == State::kQueued; });
    if (s->state == State::kQueued) {
      s->state = State::kRunning;
      lk.unlock();
      DoFetch(s.get());
      lk.lock();
    } else if (s->stop) {
      return;
    }
  }
}

void BlockPrefetcher::Start(std::vector<PageRun> runs) {
  size_t total_pages = 0;
  for (const PageRun& run : runs) total_pages += run.npages;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    SJ_CHECK(shared_->state == State::kIdle)
        << "BlockPrefetcher::Start with a fetch in flight";
    shared_->runs = std::move(runs);
    shared_->buf.resize(total_pages * kPageSize);
    shared_->status = Status::OK();
    shared_->wall_seconds = 0.0;
    shared_->state = State::kQueued;
  }
  if (pool_ != nullptr) {
    std::shared_ptr<Shared> s = shared_;
    pool_->Submit([s] {
      if (TryClaim(s.get())) DoFetch(s.get());
    });
  } else {
    if (!thread_.joinable()) {
      std::shared_ptr<Shared> s = shared_;
      thread_ = std::thread([s] { ThreadLoop(s); });
    }
    shared_->cv.notify_all();
  }
}

Status BlockPrefetcher::Finish(std::vector<uint8_t>* out) {
  return FinishCharged(out, shared_->pager->disk(),
                       shared_->pager->device_id());
}

Status BlockPrefetcher::FinishCharged(std::vector<uint8_t>* out,
                                      DiskModel* charge_disk,
                                      uint32_t charge_dev) {
  if (TryClaim(shared_.get())) DoFetch(shared_.get());
  std::unique_lock<std::mutex> lk(shared_->mu);
  SJ_CHECK(shared_->state != State::kIdle)
      << "BlockPrefetcher::Finish without Start";
  shared_->cv.wait(lk, [this] { return shared_->state == State::kDone; });
  // The modeled charge happens here — on the consumer, in consumption
  // order — so the DiskModel's stream-detection state and io_seconds are
  // identical to the synchronous path.
  for (const PageRun& run : shared_->runs) {
    charge_disk->Read(charge_dev, run.first, run.npages);
  }
  charge_disk->AddIoWall(shared_->wall_seconds);
  out->swap(shared_->buf);
  Status status = std::move(shared_->status);
  shared_->status = Status::OK();
  shared_->state = State::kIdle;
  return status;
}

bool BlockPrefetcher::in_flight() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state != State::kIdle;
}

}  // namespace sj
