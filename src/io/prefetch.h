#ifndef USJ_IO_PREFETCH_H_
#define USJ_IO_PREFETCH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "io/pager.h"
#include "io/stream.h"
#include "util/logging.h"
#include "util/status.h"

namespace sj {

class ThreadPool;

/// How (and whether) the I/O-bound readers of one join overlap their next
/// block fetch with the current block's processing. Carried alongside
/// JoinOptions into every adoption point (external-sort merge, PQ spill
/// cursors, PBSM partition loads, FeatureStore batches).
struct PrefetchContext {
  /// Off by default: prefetch only moves *when* bytes arrive, never which
  /// requests are charged, but it spends an extra block buffer and a
  /// background task per reader.
  bool enabled = false;
  /// Fetches are submitted here when set (the service's shared workers);
  /// null makes each prefetcher lazily own one dedicated thread. Not
  /// owned; must outlive the prefetchers using it.
  ThreadPool* pool = nullptr;
};

/// One contiguous page run of a fetch.
struct PageRun {
  PageId first = 0;
  uint32_t npages = 0;
};

/// Double-buffering engine: fetches a set of page runs from a pager's
/// backend on a background task while the consumer drains the previous
/// buffer.
///
/// The deterministic-output contract of the repo (same results and same
/// modeled io_seconds at any thread count) is preserved by splitting the
/// two halves of a read:
///   - the *byte transfer* (StorageBackend::ReadPage) happens early, on
///     the background task, and is wall-timed;
///   - the *modeled charge* (DiskModel::Read) happens at Finish(), on the
///     consumer thread, in consumption order — exactly when and where the
///     synchronous path would have charged it.
///
/// A fetch submitted to a ThreadPool is *claimable*: Finish() on a fetch
/// the pool has not started yet runs it inline on the consumer, so a
/// consumer never blocks on pool scheduling (and nested pool waits cannot
/// deadlock). The pager must outlive the prefetcher; only the pager's
/// backend is touched off-thread (concurrent reads are safe on both
/// backends as long as nothing writes the file).
class BlockPrefetcher {
 public:
  BlockPrefetcher(Pager* pager, ThreadPool* pool);
  ~BlockPrefetcher();

  BlockPrefetcher(const BlockPrefetcher&) = delete;
  BlockPrefetcher& operator=(const BlockPrefetcher&) = delete;

  /// Begins fetching `runs` into the internal buffer. No modeled charges
  /// are made. Requires no fetch in flight.
  void Start(std::vector<PageRun> runs);

  /// Waits for (or claims and runs) the fetch, charges each run to the
  /// pager's own DiskModel/device in run order plus the measured fetch
  /// wall time, and swaps the fetched bytes into `*out` (sized to the run
  /// total). Returns the backend read status.
  Status Finish(std::vector<uint8_t>* out);

  /// As Finish(), but modeled charges and wall time land on
  /// `charge_disk`/`charge_dev` (a refinement batch's private shard)
  /// instead of the pager's own model.
  Status FinishCharged(std::vector<uint8_t>* out, DiskModel* charge_disk,
                       uint32_t charge_dev);

  /// True between Start() and Finish().
  bool in_flight() const;

 private:
  enum class State { kIdle, kQueued, kRunning, kDone };

  /// Everything the background task touches, shared so a queued pool task
  /// can outlive the prefetcher harmlessly (it finds the fetch already
  /// claimed/cancelled and backs off without touching the pager).
  struct Shared {
    Pager* pager = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    State state = State::kIdle;
    bool stop = false;  // Dedicated-thread shutdown flag.
    std::vector<PageRun> runs;
    std::vector<uint8_t> buf;
    Status status;
    double wall_seconds = 0.0;
  };

  /// CAS kQueued -> kRunning under the lock; the winner runs the fetch.
  static bool TryClaim(Shared* s);
  /// The byte transfer; call only after a successful TryClaim.
  static void DoFetch(Shared* s);
  static void ThreadLoop(const std::shared_ptr<Shared>& s);

  std::shared_ptr<Shared> shared_;
  ThreadPool* pool_;
  std::thread thread_;  // Lazily started when pool_ == nullptr.
};

/// Drop-in replacement for StreamReader<T> that overlaps the fetch of
/// block N+1 with the consumption of block N. Construction immediately
/// begins fetching the first block in the background (so a reader created
/// ahead of need — the next PBSM partition's stream — pulls its data while
/// the current partition sweeps). With `ctx.enabled == false` it degrades
/// to exactly the synchronous StreamReader behaviour and spawns nothing.
template <typename T>
class PrefetchingStreamReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr uint32_t kRecordsPerPage = StreamReader<T>::kRecordsPerPage;

  PrefetchingStreamReader(Pager* pager, PageId first_page,
                          uint64_t record_count, const PrefetchContext& ctx,
                          uint32_t block_pages = kStreamBlockPages)
      : pager_(pager),
        first_page_(first_page),
        remaining_(record_count),
        unfetched_(record_count),
        block_pages_(block_pages),
        buffer_(block_pages * kPageSize),
        enabled_(ctx.enabled && record_count > 0) {
    SJ_CHECK(block_pages_ > 0);
    if (enabled_) prefetcher_.emplace(pager, ctx.pool);
    QueueNext();
  }

  PrefetchingStreamReader(const PrefetchingStreamReader&) = delete;
  PrefetchingStreamReader& operator=(const PrefetchingStreamReader&) = delete;

  /// Next record, or nullopt at end of stream.
  std::optional<T> Next() {
    if (remaining_ == 0) return std::nullopt;
    if (records_left_in_block_ == 0) FillBlock();
    const uint32_t idx = block_record_cursor_++;
    records_left_in_block_--;
    remaining_--;
    const uint32_t page_in_block = idx / kRecordsPerPage;
    const uint32_t slot = idx % kRecordsPerPage;
    T rec;
    std::memcpy(&rec,
                buffer_.data() + page_in_block * kPageSize + slot * sizeof(T),
                sizeof(T));
    return rec;
  }

  /// Records not yet returned.
  uint64_t remaining() const { return remaining_; }
  bool Done() const { return remaining_ == 0; }

 private:
  /// Computes the next block's extent; when enabled, begins fetching it.
  void QueueNext() {
    if (unfetched_ == 0) {
      pending_take_ = 0;
      return;
    }
    const uint64_t per_block = uint64_t{kRecordsPerPage} * block_pages_;
    pending_take_ = std::min<uint64_t>(unfetched_, per_block);
    pending_npages_ = static_cast<uint32_t>(
        (pending_take_ + kRecordsPerPage - 1) / kRecordsPerPage);
    const uint64_t first = first_page_ + fetch_page_offset_;
    SJ_CHECK(first + pending_npages_ <= uint64_t{kInvalidPageId})
        << "stream on pager '" << pager_->name() << "' reads past the "
        << "32-bit PageId space (block at page " << first << " + "
        << pending_npages_ << " pages)";
    pending_first_ = static_cast<PageId>(first);
    fetch_page_offset_ += pending_npages_;
    unfetched_ -= pending_take_;
    if (enabled_) prefetcher_->Start({{pending_first_, pending_npages_}});
  }

  void FillBlock() {
    SJ_DCHECK(pending_take_ > 0);
    const uint64_t take = pending_take_;
    if (enabled_) {
      SJ_CHECK_OK(prefetcher_->Finish(&buffer_));
    } else {
      SJ_CHECK_OK(
          pager_->ReadRun(pending_first_, pending_npages_, buffer_.data()));
    }
    QueueNext();
    records_left_in_block_ = take;
    block_record_cursor_ = 0;
  }

  Pager* pager_;
  PageId first_page_;
  uint64_t remaining_;
  uint64_t unfetched_;
  uint32_t block_pages_;
  std::vector<uint8_t> buffer_;
  bool enabled_;
  std::optional<BlockPrefetcher> prefetcher_;
  uint64_t fetch_page_offset_ = 0;
  PageId pending_first_ = 0;
  uint32_t pending_npages_ = 0;
  uint64_t pending_take_ = 0;
  uint64_t records_left_in_block_ = 0;
  uint32_t block_record_cursor_ = 0;
};

}  // namespace sj

#endif  // USJ_IO_PREFETCH_H_
