#include "io/buffer_pool.h"

#include <cstring>

#include "util/logging.h"

namespace sj {

BufferPool::BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {
  SJ_CHECK(capacity_ > 0) << "buffer pool needs at least one frame";
}

Status BufferPool::Get(Pager* pager, PageId page, void* buf) {
  stats_.requests++;
  const FrameKey key = MakeKey(pager, page);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    stats_.hits++;
    // Move to MRU position.
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    std::memcpy(buf, it->second.data.get(), kPageSize);
    return Status::OK();
  }
  stats_.misses++;
  SJ_RETURN_IF_ERROR(pager->ReadPage(page, buf));
  if (frames_.size() >= capacity_) {
    const FrameKey victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
  Frame frame;
  frame.data = std::make_unique<uint8_t[]>(kPageSize);
  std::memcpy(frame.data.get(), buf, kPageSize);
  lru_.push_front(key);
  frame.lru_pos = lru_.begin();
  frames_.emplace(key, std::move(frame));
  return Status::OK();
}

void BufferPool::Clear() {
  lru_.clear();
  frames_.clear();
}

void BufferPool::SetCapacity(size_t capacity_pages) {
  SJ_CHECK(capacity_pages > 0) << "buffer pool needs at least one frame";
  capacity_ = capacity_pages;
  while (frames_.size() > capacity_) {
    const FrameKey victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
}

}  // namespace sj
