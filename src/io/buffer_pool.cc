#include "io/buffer_pool.h"

#include <cstring>

#include "util/logging.h"

namespace sj {

BufferPool::BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {
  SJ_CHECK(capacity_ > 0) << "buffer pool needs at least one frame";
  client_stats_.emplace_back();  // Client 0: unattributed.
}

uint32_t BufferPool::RegisterClient(std::string name) {
  (void)name;  // Kept in the signature for symmetry with grant components.
  std::lock_guard<std::mutex> lock(mu_);
  client_stats_.emplace_back();
  return static_cast<uint32_t>(client_stats_.size() - 1);
}

void BufferPool::BumpClientLocked(uint32_t client, bool hit) {
  if (client >= client_stats_.size()) client = 0;
  BufferPoolStats& s = client_stats_[client];
  s.requests++;
  if (hit) {
    s.hits++;
  } else {
    s.misses++;
  }
}

Result<std::shared_ptr<BufferPool::Frame>> BufferPool::GetFrameLocked(
    std::unique_lock<std::mutex>& lock, Pager* pager, PageId page,
    uint32_t client) {
  stats_.requests++;
  const FrameKey key{pager, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    std::shared_ptr<Frame> frame = it->second;
    // A waiter on a loading frame is a hit: only the installing thread
    // reaches the disk, so misses stay equal to modeled page reads.
    stats_.hits++;
    BumpClientLocked(client, /*hit=*/true);
    frame->pins++;  // Survives the latch wait and the caller's use.
    while (frame->loading) load_cv_.wait(lock);
    if (!frame->load_status.ok()) {
      frame->pins--;
      return frame->load_status;
    }
    if (frame->queue == Queue::kAm) {
      am_.splice(am_.begin(), am_, frame->pos);  // Touch: move to MRU.
    }
    // A trial-queue (A1in) hit is left in place: 2Q promotes on the
    // *second life* — a re-read after eviction from the trial queue —
    // not on correlated re-references within it.
    return frame;
  }

  stats_.misses++;
  BumpClientLocked(client, /*hit=*/false);
  auto frame = std::make_shared<Frame>();
  frame->data = std::make_unique<uint8_t[]>(kPageSize);
  frame->pins = 1;
  auto ghost = ghost_index_.find(key);
  if (ghost != ghost_index_.end()) {
    // Seen before and evicted from the trial queue: proven reuse, admit
    // straight into the hot list.
    a1out_.erase(ghost->second);
    ghost_index_.erase(ghost);
    frame->queue = Queue::kAm;
    am_.push_front(key);
    frame->pos = am_.begin();
  } else {
    frame->queue = Queue::kA1in;
    a1in_.push_back(key);
    frame->pos = std::prev(a1in_.end());
  }
  frames_.emplace(key, frame);
  while (frames_.size() > capacity_ && EvictOneLocked()) {
  }

  // Latched load: readers of other pages proceed, readers of this page
  // queue on load_cv_.
  lock.unlock();
  Status s = pager->ReadPage(page, frame->data.get());
  lock.lock();
  frame->loading = false;
  frame->load_status = s;
  load_cv_.notify_all();
  if (!s.ok()) {
    frame->pins--;
    DropFrameLocked(key, frame);
    return s;
  }
  return frame;
}

Status BufferPool::Get(Pager* pager, PageId page, void* buf, uint32_t client) {
  std::unique_lock<std::mutex> lock(mu_);
  auto frame = GetFrameLocked(lock, pager, page, client);
  if (!frame.ok()) return frame.status();
  std::memcpy(buf, (*frame)->data.get(), kPageSize);
  (*frame)->pins--;
  return Status::OK();
}

Result<BufferPool::PageRef> BufferPool::Pin(Pager* pager, PageId page,
                                            uint32_t client) {
  std::unique_lock<std::mutex> lock(mu_);
  SJ_ASSIGN_OR_RETURN(std::shared_ptr<Frame> frame,
                      GetFrameLocked(lock, pager, page, client));
  return PageRef(this, std::move(frame));  // Adopts GetFrameLocked's pin.
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  SJ_CHECK(frame->pins > 0) << "unbalanced unpin";
  frame->pins--;
}

void BufferPool::PageRef::Reset() {
  if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_.get());
  pool_ = nullptr;
  frame_.reset();
}

bool BufferPool::EvictOneLocked() {
  auto evict_from_a1in = [this]() -> bool {
    for (auto it = a1in_.begin(); it != a1in_.end(); ++it) {
      const std::shared_ptr<Frame>& f = frames_.find(*it)->second;
      if (f->pins != 0 || f->loading) continue;
      const FrameKey key = *it;
      // Remember the trial eviction so a re-read promotes to Am.
      a1out_.push_back(key);
      ghost_index_[key] = std::prev(a1out_.end());
      while (a1out_.size() > KoutTarget()) {
        ghost_index_.erase(a1out_.front());
        a1out_.pop_front();
      }
      a1in_.erase(it);
      frames_.erase(key);
      return true;
    }
    return false;
  };
  auto evict_from_am = [this]() -> bool {
    for (auto it = am_.rbegin(); it != am_.rend(); ++it) {  // LRU end first.
      const std::shared_ptr<Frame>& f = frames_.find(*it)->second;
      if (f->pins != 0 || f->loading) continue;
      const FrameKey key = *it;
      am_.erase(std::next(it).base());
      frames_.erase(key);  // Hot evictions are not ghosted (classic 2Q).
      return true;
    }
    return false;
  };
  // 2Q reclaim: drain the trial queue while it exceeds its share (or the
  // hot list is empty), otherwise evict the coldest hot page. Pinned and
  // loading frames are skipped; when nothing is evictable the pool
  // transiently overflows instead of blocking.
  if (a1in_.size() > KinTarget() || am_.empty()) {
    return evict_from_a1in() || evict_from_am();
  }
  return evict_from_am() || evict_from_a1in();
}

void BufferPool::DropFrameLocked(const FrameKey& key,
                                 const std::shared_ptr<Frame>& f) {
  if (f->queue == Queue::kA1in) {
    a1in_.erase(f->pos);
  } else {
    am_.erase(f->pos);
  }
  frames_.erase(key);
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Pinned or still-loading frames stay (their holders rely on them);
  // everything else, including the ghost memory, goes.
  for (auto it = frames_.begin(); it != frames_.end();) {
    const std::shared_ptr<Frame>& f = it->second;
    if (f->pins == 0 && !f->loading) {
      if (f->queue == Queue::kA1in) {
        a1in_.erase(f->pos);
      } else {
        am_.erase(f->pos);
      }
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  a1out_.clear();
  ghost_index_.clear();
}

void BufferPool::SetCapacity(size_t capacity_pages) {
  SJ_CHECK(capacity_pages > 0) << "buffer pool needs at least one frame";
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_pages;
  while (frames_.size() > capacity_ && EvictOneLocked()) {
  }
  while (a1out_.size() > KoutTarget()) {
    ghost_index_.erase(a1out_.front());
    a1out_.pop_front();
  }
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BufferPoolStats BufferPool::client_stats(uint32_t client) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (client >= client_stats_.size()) return {};
  return client_stats_[client];
}

size_t BufferPool::capacity_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

size_t BufferPool::cached_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace sj
