#include "io/pager.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace sj {

Pager::Pager(std::unique_ptr<StorageBackend> backend, DiskModel* disk,
             std::string name)
    : backend_(std::move(backend)),
      disk_(disk),
      device_(disk->RegisterDevice(name)),
      name_(std::move(name)),
      allocated_(backend_->PageCount()) {}

Status Pager::ReadPage(PageId page, void* buf) {
  disk_->Read(device_, page, 1);
  WallTimer wall;
  Status s = backend_->ReadPage(page, buf);
  disk_->AddIoWall(wall.Elapsed());
  return s;
}

Status Pager::ReadRun(PageId first, uint32_t npages, void* buf) {
  if (npages == 0) return Status::OK();
  disk_->Read(device_, first, npages);
  WallTimer wall;
  uint8_t* out = static_cast<uint8_t*>(buf);
  Status s;
  for (uint32_t i = 0; i < npages && s.ok(); ++i) {
    s = backend_->ReadPage(first + i, out + i * kPageSize);
  }
  disk_->AddIoWall(wall.Elapsed());
  return s;
}

Status Pager::WritePage(PageId page, const void* buf) {
  disk_->Write(device_, page, 1);
  allocated_ = std::max<uint64_t>(allocated_, page + 1);
  WallTimer wall;
  Status s = backend_->WritePage(page, buf);
  disk_->AddIoWall(wall.Elapsed());
  return s;
}

Status Pager::WriteRun(PageId first, uint32_t npages, const void* buf) {
  if (npages == 0) return Status::OK();
  disk_->Write(device_, first, npages);
  allocated_ = std::max<uint64_t>(allocated_, first + npages);
  WallTimer wall;
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  Status s;
  for (uint32_t i = 0; i < npages && s.ok(); ++i) {
    s = backend_->WritePage(first + i, in + i * kPageSize);
  }
  disk_->AddIoWall(wall.Elapsed());
  return s;
}

void Pager::ChargeRead(PageId first, uint32_t npages) {
  if (npages == 0) return;
  disk_->Read(device_, first, npages);
}

void Pager::ChargeWrite(PageId first, uint32_t npages) {
  if (npages == 0) return;
  disk_->Write(device_, first, npages);
  allocated_ = std::max<uint64_t>(allocated_, first + npages);
}

PageId Pager::Allocate(uint32_t npages) {
  const uint64_t first = allocated_;
  allocated_ += npages;
  SJ_CHECK(allocated_ <= kInvalidPageId)
      << "pager '" << name_ << "': allocating " << npages
      << " pages overflows the 32-bit PageId space (" << allocated_
      << " pages total; max " << kInvalidPageId << ")";
  return static_cast<PageId>(first);
}

std::unique_ptr<Pager> MakeMemoryPager(DiskModel* disk, std::string name) {
  return std::make_unique<Pager>(std::make_unique<MemoryBackend>(), disk,
                                 std::move(name));
}

Result<std::unique_ptr<Pager>> MakePager(StorageFactory* factory,
                                         DiskModel* disk, std::string name) {
  if (factory == nullptr) return MakeMemoryPager(disk, std::move(name));
  SJ_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                      factory->Create(name));
  return std::make_unique<Pager>(std::move(backend), disk, std::move(name));
}

std::unique_ptr<Pager> RehomePager(std::unique_ptr<Pager> pager,
                                   DiskModel* disk) {
  const uint64_t allocated = pager->page_count();
  std::string name = pager->name();
  auto out = std::make_unique<Pager>(pager->ReleaseBackend(), disk,
                                     std::move(name));
  // Allocated-but-unwritten tail pages (sparse) are not visible in the
  // backend's page count; preserve the allocation watermark explicitly.
  SJ_CHECK(allocated >= out->page_count());
  out->Allocate(static_cast<uint32_t>(allocated - out->page_count()));
  return out;
}

}  // namespace sj
