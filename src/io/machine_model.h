#ifndef USJ_IO_MACHINE_MODEL_H_
#define USJ_IO_MACHINE_MODEL_H_

#include <string>

namespace sj {

/// Parameters of one of the paper's hardware configurations (Table 1).
///
/// The disk side (access latency + peak transfer rate) drives the
/// DiskModel's sequential/random cost accounting. The CPU side is a single
/// slowdown factor applied to *measured host* CPU seconds: the paper's
/// machines range from a 50 MHz SPARC to a 500 MHz Alpha, and we assume the
/// benchmark host is roughly a 5 GHz-equivalent core (configurable via
/// `kHostMhzEquivalent`), so e.g. Machine 1 scales host CPU time by 100x.
/// Absolute seconds are therefore not comparable with the paper, but the
/// CPU:I/O ratio per machine — which determines every qualitative result —
/// is.
struct MachineModel {
  std::string name;
  /// Average positioning cost (seek + rotational latency) charged once per
  /// non-sequential request, in milliseconds ("Read (ms)" in Table 1).
  double avg_access_ms = 8.0;
  /// Peak sequential transfer rate in MB/s ("Throughput" in Table 1).
  double transfer_mb_per_s = 10.0;
  /// Multiplier applied to measured host-thread CPU seconds.
  double cpu_slowdown = 10.0;
  /// Sequential writes cost this factor times a sequential read of the same
  /// size (the paper's §6.3 model assumes 1.5).
  double write_factor = 1.5;
  /// On-disk cache size ("Buffer (KB)" in Table 1). Divided into 64 KB
  /// segments, it determines how many interleaved sequential streams the
  /// drive can keep read-ahead state for — the feature §6.2 credits for
  /// ST's sequential leaf reads on Machines 1/3 and blames for the missing
  /// advantage on Machine 2 (128 KB buffer).
  double disk_buffer_kb = 512;

  /// Milliseconds to stream one page of `page_bytes` at peak transfer.
  double PageTransferMs(size_t page_bytes) const {
    return static_cast<double>(page_bytes) / (transfer_mb_per_s * 1e6) * 1e3;
  }

  /// The paper's rule-of-thumb quantity: cost of a random one-page read
  /// divided by the cost of a sequential one-page read (~10 on Machine 1).
  double RandomToSequentialReadRatio(size_t page_bytes) const {
    const double t = PageTransferMs(page_bytes);
    return (avg_access_ms + t) / t;
  }

  /// Assumed host single-thread speed used to derive cpu_slowdown values.
  static constexpr double kHostMhzEquivalent = 5000.0;

  /// Machine 1: SUN Sparc 20 (50 MHz) + Seagate Barracuda — slow CPU,
  /// fast disk; runs are CPU-bound.
  static MachineModel Machine1() {
    return {"Machine1 (Sparc20/Barracuda)", 8.0, 10.0,
            kHostMhzEquivalent / 50.0, 1.5, 512};
  }
  /// Machine 2: SUN Ultra 10 (300 MHz) + Medalist — fast CPU, high
  /// transfer rate but slow positioning (and a small on-disk buffer).
  static MachineModel Machine2() {
    return {"Machine2 (Ultra10/Medalist)", 12.5, 33.3,
            kHostMhzEquivalent / 300.0, 1.5, 128};
  }
  /// Machine 3: DEC Alpha (500 MHz) + Cheetah — fast CPU and fast disk.
  static MachineModel Machine3() {
    return {"Machine3 (Alpha500/Cheetah)", 7.7, 40.0,
            kHostMhzEquivalent / 500.0, 1.5, 512};
  }
};

}  // namespace sj

#endif  // USJ_IO_MACHINE_MODEL_H_
