#ifndef USJ_IO_STREAM_H_
#define USJ_IO_STREAM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "io/pager.h"
#include "io/write_behind.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// Default logical block for stream I/O: 64 pages = 512 KB, the block size
/// the paper's stream BTE uses so that sequential scans amortize
/// positioning costs.
inline constexpr uint32_t kStreamBlockPages = 64;

/// Appends fixed-size records to a pager, packing `kPageSize / sizeof(T)`
/// records per page (records never straddle pages) and issuing one write
/// request per logical block.
///
/// T must be trivially copyable; RectF (20 bytes -> 409 records/page) and
/// IdPair are the only instantiations used by the joins.
template <typename T>
class StreamWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr uint32_t kRecordsPerPage =
      static_cast<uint32_t>(kPageSize / sizeof(T));

  /// Writes records starting at the pager's current end. `block_pages`
  /// trades buffer memory for request size (PBSM uses small blocks because
  /// it keeps one writer open per partition). With `wb.enabled` the filled
  /// block flushes on a background task while the next block fills
  /// (double-buffered): the modeled write is still charged here, at flush
  /// submission on the producer thread, so page images, allocation order
  /// and modeled io_seconds are identical to the synchronous path — only
  /// io_wall_seconds moves off the producer.
  explicit StreamWriter(Pager* pager, uint32_t block_pages = kStreamBlockPages,
                        const WriteBehindContext& wb = WriteBehindContext())
      : pager_(pager),
        block_pages_(block_pages),
        buffer_(block_pages * kPageSize) {
    SJ_CHECK(block_pages_ > 0);
    if (wb.enabled) write_behind_.emplace(pager, wb.pool);
    first_page_ = pager_->Allocate(0);  // Current end; pages allocated on flush.
  }

  ~StreamWriter() {
    SJ_CHECK(finished_)
        << "StreamWriter destroyed without Finish() or Abandon()";
  }

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  void Append(const T& rec) {
    SJ_DCHECK(!finished_);
    const uint32_t page_in_block =
        static_cast<uint32_t>(records_in_block_ / kRecordsPerPage);
    const uint32_t slot =
        static_cast<uint32_t>(records_in_block_ % kRecordsPerPage);
    std::memcpy(buffer_.data() + page_in_block * kPageSize + slot * sizeof(T),
                &rec, sizeof(T));
    records_in_block_++;
    count_++;
    if (records_in_block_ == uint64_t{kRecordsPerPage} * block_pages_) {
      FlushBlock();
    }
  }

  /// Flushes buffered records; returns the total record count, or the
  /// first write error the stream hit (deferred from Append's flushes).
  Result<uint64_t> Finish() {
    if (!finished_) {
      FlushBlock();
      DrainWriteBehind();
      finished_ = true;
    }
    if (!status_.ok()) return status_;
    return count_;
  }

  /// Declares the stream dead without flushing: buffered records are
  /// dropped and the destructor will not abort. For error-path unwinding
  /// (a failed distribution pass destroys its open writers); the pages
  /// already flushed stay allocated but are never read.
  void Abandon() {
    records_in_block_ = 0;
    finished_ = true;
  }

  /// First page of the stream within the pager.
  PageId first_page() const { return first_page_; }
  uint64_t count() const { return count_; }

  /// First error any flush hit; sticky, surfaced by Finish(). Append
  /// keeps accepting records after an error (they are dropped at flush)
  /// so producers need no per-record checks.
  const Status& status() const { return status_; }

 private:
  void FlushBlock() {
    if (records_in_block_ == 0) return;
    // The previous async flush must land before this block is submitted:
    // its buffer is the one this block swaps into, and its error (if any)
    // must stop further allocation/charging exactly like a synchronous
    // failure would.
    DrainWriteBehind();
    if (!status_.ok()) {
      records_in_block_ = 0;
      return;
    }
    const uint32_t npages = static_cast<uint32_t>(
        (records_in_block_ + kRecordsPerPage - 1) / kRecordsPerPage);
    // Zero the tail of the last partial page so page images are
    // deterministic.
    const uint64_t used_in_last =
        records_in_block_ - uint64_t{npages - 1} * kRecordsPerPage;
    uint8_t* last = buffer_.data() + (npages - 1) * kPageSize;
    std::memset(last + used_in_last * sizeof(T), 0,
                kPageSize - used_in_last * sizeof(T));
    const PageId start = pager_->Allocate(npages);
    if (write_behind_.has_value()) {
      pager_->ChargeWrite(start, npages);
      write_behind_->Start(start, npages, &buffer_);
      // The swapped-back buffer's record slots are fully overwritten
      // before the next flush; its page-tail slack bytes were zeroed at
      // construction and are never written, so page images stay
      // deterministic across buffer round trips.
      if (buffer_.size() != size_t{block_pages_} * kPageSize) {
        buffer_.assign(size_t{block_pages_} * kPageSize, 0);
      }
    } else {
      status_ = pager_->WriteRun(start, npages, buffer_.data());
    }
    records_in_block_ = 0;
  }

  /// Completes an in-flight async flush, folding its error into the same
  /// sticky status the synchronous path reports.
  void DrainWriteBehind() {
    if (!write_behind_.has_value() || !write_behind_->in_flight()) return;
    const Status s = write_behind_->Finish();
    if (status_.ok()) status_ = s;
  }

  Pager* pager_;
  uint32_t block_pages_;
  std::vector<uint8_t> buffer_;
  std::optional<BlockWriteBehind> write_behind_;
  PageId first_page_ = 0;
  uint64_t records_in_block_ = 0;
  uint64_t count_ = 0;
  bool finished_ = false;
  Status status_;
};

/// Sequentially reads records written by a StreamWriter<T>.
template <typename T>
class StreamReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr uint32_t kRecordsPerPage = StreamWriter<T>::kRecordsPerPage;

  /// Reads `record_count` records starting at `first_page` of `pager`.
  StreamReader(Pager* pager, PageId first_page, uint64_t record_count,
               uint32_t block_pages = kStreamBlockPages)
      : pager_(pager),
        first_page_(first_page),
        remaining_(record_count),
        block_pages_(block_pages),
        buffer_(block_pages * kPageSize) {
    SJ_CHECK(block_pages_ > 0);
  }

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  /// Next record, or nullopt at end of stream.
  std::optional<T> Next() {
    if (remaining_ == 0) return std::nullopt;
    if (records_left_in_block_ == 0) FillBlock();
    const uint32_t idx = block_record_cursor_++;
    records_left_in_block_--;
    remaining_--;
    const uint32_t page_in_block = idx / kRecordsPerPage;
    const uint32_t slot = idx % kRecordsPerPage;
    T rec;
    std::memcpy(&rec,
                buffer_.data() + page_in_block * kPageSize + slot * sizeof(T),
                sizeof(T));
    return rec;
  }

  /// Records not yet returned.
  uint64_t remaining() const { return remaining_; }
  bool Done() const { return remaining_ == 0; }

 private:
  void FillBlock() {
    const uint64_t per_block = uint64_t{kRecordsPerPage} * block_pages_;
    const uint64_t take = std::min<uint64_t>(remaining_, per_block);
    const uint32_t npages = static_cast<uint32_t>(
        (take + kRecordsPerPage - 1) / kRecordsPerPage);
    const uint64_t first = first_page_ + pages_consumed_;
    SJ_CHECK(first + npages <= uint64_t{kInvalidPageId})
        << "stream on pager '" << pager_->name() << "' reads past the "
        << "32-bit PageId space (block at page " << first << " + " << npages
        << " pages)";
    SJ_CHECK_OK(pager_->ReadRun(static_cast<PageId>(first), npages,
                                buffer_.data()));
    pages_consumed_ += npages;
    records_left_in_block_ = take;
    block_record_cursor_ = 0;
  }

  Pager* pager_;
  PageId first_page_;
  uint64_t remaining_;
  uint32_t block_pages_;
  std::vector<uint8_t> buffer_;
  uint64_t pages_consumed_ = 0;
  uint64_t records_left_in_block_ = 0;
  uint32_t block_record_cursor_ = 0;
};

}  // namespace sj

#endif  // USJ_IO_STREAM_H_
