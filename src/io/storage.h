#ifndef USJ_IO_STORAGE_H_
#define USJ_IO_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/disk_model.h"
#include "util/status.h"

namespace sj {

/// Raw page-addressed storage for one logical file. Implementations hold
/// the actual bytes; cost accounting lives in the Pager/DiskModel layer.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Copies page `page` into `buf` (kPageSize bytes). Reading a page that
  /// was never written yields zero bytes (sparse semantics).
  virtual Status ReadPage(uint64_t page, void* buf) = 0;

  /// Writes kPageSize bytes from `buf`; grows the file as needed.
  virtual Status WritePage(uint64_t page, const void* buf) = 0;

  /// Number of pages the file currently spans.
  virtual uint64_t PageCount() const = 0;
};

/// Heap-backed storage. The default for experiments: the simulated
/// DiskModel provides the timing, so there is no reason to touch the real
/// disk, and page images stay byte-exact.
class MemoryBackend : public StorageBackend {
 public:
  MemoryBackend() = default;

  Status ReadPage(uint64_t page, void* buf) override;
  Status WritePage(uint64_t page, const void* buf) override;
  uint64_t PageCount() const override { return pages_.size(); }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

/// File-backed storage via pread/pwrite, for datasets larger than RAM or
/// for persisting generated inputs between runs.
class FileBackend : public StorageBackend {
 public:
  /// Opens (creating if necessary) `path` for read/write.
  static Status Open(const std::string& path,
                     std::unique_ptr<FileBackend>* out);

  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  Status ReadPage(uint64_t page, void* buf) override;
  Status WritePage(uint64_t page, const void* buf) override;
  uint64_t PageCount() const override { return page_count_; }

 private:
  FileBackend(int fd, uint64_t page_count)
      : fd_(fd), page_count_(page_count) {}

  int fd_;
  uint64_t page_count_;
};

}  // namespace sj

#endif  // USJ_IO_STORAGE_H_
