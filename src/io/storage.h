#ifndef USJ_IO_STORAGE_H_
#define USJ_IO_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/disk_model.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// Raw page-addressed storage for one logical file. Implementations hold
/// the actual bytes; cost accounting lives in the Pager/DiskModel layer.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Copies page `page` into `buf` (kPageSize bytes). Reading a page that
  /// was never written yields zero bytes (sparse semantics).
  virtual Status ReadPage(uint64_t page, void* buf) = 0;

  /// Writes kPageSize bytes from `buf`; grows the file as needed.
  virtual Status WritePage(uint64_t page, const void* buf) = 0;

  /// Number of pages the file currently spans.
  virtual uint64_t PageCount() const = 0;
};

/// Heap-backed storage. The default for experiments: the simulated
/// DiskModel provides the timing, so there is no reason to touch the real
/// disk, and page images stay byte-exact.
///
/// Thread-safe at page granularity (a mutex guards the page table), so a
/// background prefetch may read finished pages of a file while the owner
/// appends new ones. Reading a page *while it is being written* still
/// yields an unspecified mix — callers must only fetch immutable ranges.
class MemoryBackend : public StorageBackend {
 public:
  MemoryBackend() = default;

  Status ReadPage(uint64_t page, void* buf) override;
  Status WritePage(uint64_t page, const void* buf) override;
  uint64_t PageCount() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

namespace io_internal {

/// pread-shaped callable: (buf, len, offset) -> bytes moved, 0 on EOF,
/// -1 with errno on error.
using PReadFn = std::function<ssize_t(void*, size_t, off_t)>;
using PWriteFn = std::function<ssize_t(const void*, size_t, off_t)>;

/// Reads until `len` bytes landed in `buf` or EOF, retrying EINTR and
/// continuing after short counts. Returns the bytes actually read
/// (< len only when EOF was hit); the caller decides whether that EOF is
/// legitimate (read past the known end of file) or a mid-file truncation.
Result<size_t> ReadFull(const PReadFn& pread_fn, void* buf, size_t len,
                        off_t offset);

/// Writes all `len` bytes, retrying EINTR and continuing after short
/// counts. A zero return from the callable is an error (no forward
/// progress), not EOF.
Status WriteFull(const PWriteFn& pwrite_fn, const void* buf, size_t len,
                 off_t offset);

}  // namespace io_internal

/// File-backed storage via pread/pwrite, for datasets larger than RAM,
/// for persisting generated inputs between runs, and for grounding the
/// cost model against a real device (bench_io_calibration). Reads and
/// writes retry EINTR and short counts to the full page length; a short
/// read is zero-filled only when it is a true end-of-file, never when it
/// happens in the middle of the known file extent.
class FileBackend : public StorageBackend {
 public:
  /// Opens (creating if necessary) `path` for read/write (O_CLOEXEC).
  static Status Open(const std::string& path,
                     std::unique_ptr<FileBackend>* out);

  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  Status ReadPage(uint64_t page, void* buf) override;
  Status WritePage(uint64_t page, const void* buf) override;
  uint64_t PageCount() const override {
    return page_count_.load(std::memory_order_acquire);
  }

 private:
  FileBackend(int fd, uint64_t size_bytes)
      : fd_(fd),
        size_bytes_(size_bytes),
        page_count_((size_bytes + kPageSize - 1) / kPageSize) {}

  int fd_;
  /// Byte length of everything written through (or present at open of)
  /// this backend; an EOF before this offset is a mid-file short read —
  /// an I/O error — not sparse zero territory. Atomic so background
  /// prefetch reads may overlap appends (pread/pwrite themselves are
  /// position-independent and safe to mix across threads).
  std::atomic<uint64_t> size_bytes_;
  std::atomic<uint64_t> page_count_;
};

/// Chooses the StorageBackend every pager of one join (or one service)
/// runs on. The factory is consulted once per logical file — inputs,
/// sort runs, partition files, spill streams, result streams — and must
/// be thread-safe: parallel phases create scratch files concurrently.
class StorageFactory {
 public:
  virtual ~StorageFactory() = default;

  /// Creates the backing storage for one logical file named `name` (the
  /// pager/device name, for diagnostics; names repeat across shards).
  virtual Result<std::unique_ptr<StorageBackend>> Create(
      const std::string& name) = 0;

  /// Human-readable backend choice ("memory", "file:/tmp/sj.x3Kb1").
  virtual std::string description() const = 0;
};

/// The default: every file is a MemoryBackend (what a null factory means).
class MemoryStorageFactory : public StorageFactory {
 public:
  Result<std::unique_ptr<StorageBackend>> Create(
      const std::string& name) override;
  std::string description() const override { return "memory"; }
};

/// Real files in a private mkdtemp directory. Each Create() opens a fresh
/// uniquely-named file and unlinks it immediately (the fd keeps it alive),
/// so storage is reclaimed even on abnormal exit; the directory itself is
/// removed by the destructor.
class TmpFileStorageFactory : public StorageFactory {
 public:
  /// Creates the backing directory under `dir_hint`, or $TMPDIR, or /tmp.
  static Result<std::unique_ptr<TmpFileStorageFactory>> Make(
      const std::string& dir_hint = "");

  ~TmpFileStorageFactory() override;

  Result<std::unique_ptr<StorageBackend>> Create(
      const std::string& name) override;
  std::string description() const override { return "file:" + dir_; }
  const std::string& dir() const { return dir_; }

 private:
  explicit TmpFileStorageFactory(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::mutex mu_;
  uint64_t next_file_ = 0;
};

}  // namespace sj

#endif  // USJ_IO_STORAGE_H_
