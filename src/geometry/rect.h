#ifndef USJ_GEOMETRY_RECT_H_
#define USJ_GEOMETRY_RECT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

namespace sj {

/// Identifier of a spatial object. 32 bits, as in the paper's 20-byte
/// record layout (16 bytes of corner coordinates + 4-byte ID).
using ObjectId = uint32_t;

/// An axis-parallel rectangle (minimal bounding rectangle, MBR) with an
/// object identifier.
///
/// The on-disk record is exactly 20 bytes — four 32-bit float coordinates
/// plus a 32-bit id — matching the TIGER/Line MBR files used in the paper
/// (Table 2), so an 8 KB page holds 400 entries (the paper's R-tree
/// fanout).
///
/// Rectangles are closed: two rectangles that share only a boundary point
/// intersect. Degenerate rectangles (points, segments) are permitted.
struct RectF {
  float xlo = 0.0f;
  float ylo = 0.0f;
  float xhi = 0.0f;
  float yhi = 0.0f;
  ObjectId id = 0;

  RectF() = default;
  RectF(float xl, float yl, float xh, float yh, ObjectId oid = 0)
      : xlo(xl), ylo(yl), xhi(xh), yhi(yh), id(oid) {}

  /// True when the rectangle is well-formed (lo <= hi on both axes and no
  /// NaNs; NaN comparisons are false so this rejects NaN too).
  bool Valid() const { return xlo <= xhi && ylo <= yhi; }

  /// Closed-rectangle intersection test (shared boundaries count).
  bool Intersects(const RectF& o) const {
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }

  /// Interval test on the x axis only; the sweep structures use this after
  /// the sweep line has already established y overlap.
  bool IntersectsX(const RectF& o) const {
    return xlo <= o.xhi && o.xlo <= xhi;
  }

  /// True when `o` lies entirely inside this rectangle (closed sense).
  bool Contains(const RectF& o) const {
    return xlo <= o.xlo && o.xhi <= xhi && ylo <= o.ylo && o.yhi <= yhi;
  }

  /// True when the point (x, y) lies in the closed rectangle.
  bool ContainsPoint(float x, float y) const {
    return xlo <= x && x <= xhi && ylo <= y && y <= yhi;
  }

  /// Area; degenerate rectangles have area zero.
  double Area() const {
    return static_cast<double>(xhi - xlo) * static_cast<double>(yhi - ylo);
  }

  /// Grows this rectangle to cover `o`.
  void ExtendTo(const RectF& o) {
    xlo = std::min(xlo, o.xlo);
    ylo = std::min(ylo, o.ylo);
    xhi = std::max(xhi, o.xhi);
    yhi = std::max(yhi, o.yhi);
  }

  /// The intersection rectangle. Only meaningful when Intersects(o).
  RectF IntersectionWith(const RectF& o) const {
    return RectF(std::max(xlo, o.xlo), std::max(ylo, o.ylo),
                 std::min(xhi, o.xhi), std::min(yhi, o.yhi));
  }

  /// Center coordinates (used by the Hilbert bulk loader).
  float CenterX() const { return 0.5f * (xlo + xhi); }
  float CenterY() const { return 0.5f * (ylo + yhi); }

  /// A rectangle that covers nothing and is the identity for ExtendTo.
  static RectF Empty() {
    const float inf = std::numeric_limits<float>::infinity();
    return RectF(inf, inf, -inf, -inf);
  }

  /// The area ExtendTo(o) would add (>= 0). Used by the bulk-load top-off
  /// heuristic and the Guttman insertion path.
  double Enlargement(const RectF& o) const {
    RectF grown = *this;
    grown.ExtendTo(o);
    return grown.Area() - Area();
  }

  std::string ToString() const;

  friend bool operator==(const RectF& a, const RectF& b) {
    return a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi &&
           a.yhi == b.yhi && a.id == b.id;
  }
};

static_assert(sizeof(RectF) == 20, "RectF must match the paper's 20-byte record");

/// Orders rectangles by lower y coordinate — the sort order of every
/// sweep input in the library. Ties broken by id for determinism.
struct OrderByYLo {
  bool operator()(const RectF& a, const RectF& b) const {
    if (a.ylo != b.ylo) return a.ylo < b.ylo;
    return a.id < b.id;
  }
};

/// Orders rectangles by lower x coordinate (used inside ST's per-node
/// forward sweep, which sweeps along x).
struct OrderByXLo {
  bool operator()(const RectF& a, const RectF& b) const {
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    return a.id < b.id;
  }
};

/// A reported join result: the ids of two intersecting MBRs.
struct IdPair {
  ObjectId a = 0;
  ObjectId b = 0;

  friend bool operator==(const IdPair& x, const IdPair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const IdPair& x, const IdPair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

static_assert(sizeof(IdPair) == 8, "IdPair is the paper's 8-byte output item");

}  // namespace sj

#endif  // USJ_GEOMETRY_RECT_H_
