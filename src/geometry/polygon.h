#ifndef USJ_GEOMETRY_POLYGON_H_
#define USJ_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/rect.h"
#include "geometry/segment.h"

namespace sj {

/// A 2-D point, the vertex type of PolygonF.
struct PointF {
  float x = 0, y = 0;

  PointF() = default;
  PointF(float px, float py) : x(px), y(py) {}
};

/// A simple polygon (closed ring, no self-intersections assumed). Either
/// winding order is accepted; all predicates treat the polygon as a closed
/// point set (boundary included), matching RectF's closed-rectangle
/// semantics.
///
/// The refinement executor currently stores and resolves segment payloads
/// only (FeatureStore is fixed-width); the polygon predicates below are
/// the exact-geometry kernel for the upcoming variable-width area
/// features (lakes, census blocks) and are exercised by
/// tests/polygon_test.cc until that store lands.
struct PolygonF {
  std::vector<PointF> vertices;

  /// The polygon's MBR (the filter-step representation).
  RectF Mbr(ObjectId id = 0) const {
    RectF box = RectF::Empty();
    for (const PointF& v : vertices) box.ExtendTo(RectF(v.x, v.y, v.x, v.y));
    box.id = id;
    return box;
  }

  /// Edge i runs from vertex i to vertex (i+1) % size.
  Segment Edge(size_t i) const {
    const PointF& a = vertices[i];
    const PointF& b = vertices[(i + 1) % vertices.size()];
    return Segment(a.x, a.y, b.x, b.y);
  }
};

/// True when the closed segment and the closed rectangle share a point:
/// an endpoint lies inside the rectangle, or the segment crosses one of
/// the rectangle's four edges. Exact for float inputs (evaluated in
/// double, like SegmentsIntersect).
inline bool SegmentIntersectsRect(const Segment& s, const RectF& r) {
  if (r.ContainsPoint(s.x1, s.y1) || r.ContainsPoint(s.x2, s.y2)) return true;
  // MBR reject: cheap and also handles degenerate (point) segments.
  if (!s.Mbr().Intersects(r)) return false;
  const Segment left(r.xlo, r.ylo, r.xlo, r.yhi);
  const Segment right(r.xhi, r.ylo, r.xhi, r.yhi);
  const Segment bottom(r.xlo, r.ylo, r.xhi, r.ylo);
  const Segment top(r.xlo, r.yhi, r.xhi, r.yhi);
  return SegmentsIntersect(s, left) || SegmentsIntersect(s, right) ||
         SegmentsIntersect(s, bottom) || SegmentsIntersect(s, top);
}

/// Closed-set point-in-polygon: true for interior *and* boundary points.
/// Interior membership uses the even-odd crossing rule on a ray toward
/// +x; boundary points are detected exactly with the collinear case of
/// the segment predicate.
inline bool PointInPolygon(float px, float py, const PolygonF& poly) {
  const size_t n = poly.vertices.size();
  if (n == 0) return false;
  if (n == 1) {
    return poly.vertices[0].x == px && poly.vertices[0].y == py;
  }
  const Segment probe(px, py, px, py);  // Degenerate segment = the point.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Segment e = poly.Edge(i);
    if (SegmentsIntersect(e, probe)) return true;  // On the boundary.
    // Crossing test against the horizontal ray from (px, py) toward +x.
    const bool a_above = e.y1 > py, b_above = e.y2 > py;
    if (a_above != b_above) {
      const double t = (static_cast<double>(py) - e.y1) /
                       (static_cast<double>(e.y2) - e.y1);
      const double cross_x = e.x1 + t * (static_cast<double>(e.x2) - e.x1);
      if (cross_x > px) inside = !inside;
    }
  }
  return inside;
}

/// True when the closed rectangle and the closed polygon share a point:
/// a polygon edge meets the rectangle, the rectangle lies inside the
/// polygon, or the polygon lies inside the rectangle. This is the exact
/// predicate for rectangle-vs-area features (lakes, census blocks) in the
/// refinement step.
inline bool RectIntersectsPolygon(const RectF& r, const PolygonF& poly) {
  if (poly.vertices.empty()) return false;
  for (size_t i = 0; i < poly.vertices.size(); ++i) {
    if (SegmentIntersectsRect(poly.Edge(i), r)) return true;
  }
  // No edge touches the rectangle: either one shape strictly contains the
  // other, or they are disjoint. One point of each settles both cases.
  if (PointInPolygon(r.xlo, r.ylo, poly)) return true;
  return r.ContainsPoint(poly.vertices[0].x, poly.vertices[0].y);
}

}  // namespace sj

#endif  // USJ_GEOMETRY_POLYGON_H_
