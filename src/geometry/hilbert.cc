#include "geometry/hilbert.h"

#include <algorithm>

#include "util/logging.h"

namespace sj {

HilbertCurve::HilbertCurve(int order) : order_(order) {
  SJ_CHECK(order >= 1 && order <= 16) << "Hilbert order out of range" << order;
}

uint64_t HilbertCurve::Distance(uint32_t x, uint32_t y) const {
  SJ_DCHECK(x < grid_size() && y < grid_size());
  uint64_t rx, ry, d = 0;
  for (uint64_t s = grid_size() / 2; s > 0; s /= 2) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<uint32_t>(s - 1 - x);
        y = static_cast<uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

void HilbertCurve::Point(uint64_t distance, uint32_t* x, uint32_t* y) const {
  uint64_t rx, ry, t = distance;
  uint64_t px = 0, py = 0;
  for (uint64_t s = 1; s < grid_size(); s *= 2) {
    rx = 1 & (t / 2);
    ry = 1 & (t ^ rx);
    // Rotate back.
    if (ry == 0) {
      if (rx == 1) {
        px = s - 1 - px;
        py = s - 1 - py;
      }
      std::swap(px, py);
    }
    px += s * rx;
    py += s * ry;
    t /= 4;
  }
  *x = static_cast<uint32_t>(px);
  *y = static_cast<uint32_t>(py);
}

uint64_t HilbertKey(const HilbertCurve& curve, const RectF& extent, float x,
                    float y) {
  const uint32_t n = curve.grid_size();
  auto to_cell = [n](float v, float lo, float hi) -> uint32_t {
    if (!(hi > lo)) return 0;  // Degenerate axis.
    double unit = (static_cast<double>(v) - lo) / (static_cast<double>(hi) - lo);
    unit = std::clamp(unit, 0.0, 1.0);
    uint32_t cell = static_cast<uint32_t>(unit * n);
    return std::min(cell, n - 1);
  };
  return curve.Distance(to_cell(x, extent.xlo, extent.xhi),
                        to_cell(y, extent.ylo, extent.yhi));
}

}  // namespace sj
