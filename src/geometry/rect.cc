#include "geometry/rect.h"

#include <cstdio>

namespace sj {

std::string RectF::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g,%g]x[%g,%g]#%u", xlo, xhi, ylo, yhi,
                id);
  return buf;
}

}  // namespace sj
