#ifndef USJ_GEOMETRY_HILBERT_H_
#define USJ_GEOMETRY_HILBERT_H_

#include <cstdint>

#include "geometry/rect.h"

namespace sj {

/// Hilbert space-filling curve on a 2^order x 2^order grid.
///
/// Used by the R-tree bulk loader (the packing heuristic of Kamel &
/// Faloutsos that the paper uses) to order rectangle centers so that
/// consecutive leaf pages cover spatially close objects.
class HilbertCurve {
 public:
  /// `order` bits per axis; the curve visits 4^order cells. order <= 16 so
  /// the distance fits comfortably in 64 bits (we use 2*order bits).
  explicit HilbertCurve(int order = 16);

  int order() const { return order_; }
  uint32_t grid_size() const { return 1u << order_; }

  /// Distance along the curve of grid cell (x, y). x, y < grid_size().
  uint64_t Distance(uint32_t x, uint32_t y) const;

  /// Inverse mapping: the cell at the given distance along the curve.
  void Point(uint64_t distance, uint32_t* x, uint32_t* y) const;

 private:
  int order_;
};

/// Maps float coordinates within `extent` onto the Hilbert grid and returns
/// the curve distance; callers use this as a sort key. Coordinates outside
/// the extent are clamped. A degenerate extent axis maps to cell 0.
uint64_t HilbertKey(const HilbertCurve& curve, const RectF& extent, float x,
                    float y);

}  // namespace sj

#endif  // USJ_GEOMETRY_HILBERT_H_
