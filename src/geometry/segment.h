#ifndef USJ_GEOMETRY_SEGMENT_H_
#define USJ_GEOMETRY_SEGMENT_H_

#include "geometry/rect.h"

namespace sj {

/// A 2-D line segment with exact-geometry predicates.
///
/// The join algorithms in this library implement the *filter step* on
/// MBRs (§1); Segment supplies the *refinement step* for the common GIS
/// case where the underlying objects are polyline fragments (TIGER roads
/// and rivers). See examples/gis_overlay.cpp for the two-step pipeline.
struct Segment {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  Segment() = default;
  Segment(float ax, float ay, float bx, float by)
      : x1(ax), y1(ay), x2(bx), y2(by) {}

  /// The segment's MBR (the filter-step representation).
  RectF Mbr(ObjectId id = 0) const {
    return RectF(x1 < x2 ? x1 : x2, y1 < y2 ? y1 : y2, x1 < x2 ? x2 : x1,
                 y1 < y2 ? y2 : y1, id);
  }
};

namespace geometry_internal {

/// Sign of the cross product (b-a) x (c-a): orientation of the triple.
inline double Orientation(double ax, double ay, double bx, double by,
                          double cx, double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

inline bool OnSegment(double ax, double ay, double bx, double by, double px,
                      double py) {
  return std::min(ax, bx) <= px && px <= std::max(ax, bx) &&
         std::min(ay, by) <= py && py <= std::max(ay, by);
}

}  // namespace geometry_internal

/// True when the closed segments intersect (including touching endpoints
/// and collinear overlap). Computed in double precision; exact for the
/// float inputs used throughout the library.
inline bool SegmentsIntersect(const Segment& s, const Segment& t) {
  using geometry_internal::OnSegment;
  using geometry_internal::Orientation;
  const double d1 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x1, t.y1);
  const double d2 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x2, t.y2);
  const double d3 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x1, s.y1);
  const double d4 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x2, s.y2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Collinear / endpoint-touching cases.
  if (d1 == 0 && OnSegment(s.x1, s.y1, s.x2, s.y2, t.x1, t.y1)) return true;
  if (d2 == 0 && OnSegment(s.x1, s.y1, s.x2, s.y2, t.x2, t.y2)) return true;
  if (d3 == 0 && OnSegment(t.x1, t.y1, t.x2, t.y2, s.x1, s.y1)) return true;
  if (d4 == 0 && OnSegment(t.x1, t.y1, t.x2, t.y2, s.x2, s.y2)) return true;
  return false;
}

namespace geometry_internal {

/// Squared Euclidean distance from point p to the closed segment (a, b).
inline double PointSegmentDistanceSquared(double px, double py, double ax,
                                          double ay, double bx, double by) {
  const double dx = bx - ax, dy = by - ay;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - ax) * dx + (py - ay) * dy) / len2;
    t = std::max(0.0, std::min(1.0, t));
  }
  const double cx = ax + t * dx, cy = ay + t * dy;
  return (px - cx) * (px - cx) + (py - cy) * (py - cy);
}

}  // namespace geometry_internal

/// Squared Euclidean distance between the closed segments (0 when they
/// intersect). Non-intersecting segments realize their distance at an
/// endpoint of one of them, so the minimum over the four point-to-segment
/// distances is exact.
inline double SegmentDistanceSquared(const Segment& s, const Segment& t) {
  if (SegmentsIntersect(s, t)) return 0.0;
  using geometry_internal::PointSegmentDistanceSquared;
  const double d1 =
      PointSegmentDistanceSquared(s.x1, s.y1, t.x1, t.y1, t.x2, t.y2);
  const double d2 =
      PointSegmentDistanceSquared(s.x2, s.y2, t.x1, t.y1, t.x2, t.y2);
  const double d3 =
      PointSegmentDistanceSquared(t.x1, t.y1, s.x1, s.y1, s.x2, s.y2);
  const double d4 =
      PointSegmentDistanceSquared(t.x2, t.y2, s.x1, s.y1, s.x2, s.y2);
  return std::min(std::min(d1, d2), std::min(d3, d4));
}

/// True when the Euclidean distance between the closed segments is at most
/// `epsilon` — the exact form of the ε-distance join predicate. epsilon
/// must be non-negative; 0 degenerates to SegmentsIntersect.
inline bool SegmentsWithinDistance(const Segment& s, const Segment& t,
                                   double epsilon) {
  return SegmentDistanceSquared(s, t) <= epsilon * epsilon;
}

/// True when segment `inner` lies entirely on segment `outer` (closed
/// sense): both endpoints of `inner` are on `outer`, which for a straight
/// segment implies every point between them is too. Degenerate (point)
/// inners are contained when the point lies on `outer`. This is the exact
/// form of the containment join predicate for polyline fragments.
inline bool SegmentContainsSegment(const Segment& outer,
                                   const Segment& inner) {
  using geometry_internal::OnSegment;
  using geometry_internal::Orientation;
  const bool p1_on =
      Orientation(outer.x1, outer.y1, outer.x2, outer.y2, inner.x1,
                  inner.y1) == 0 &&
      OnSegment(outer.x1, outer.y1, outer.x2, outer.y2, inner.x1, inner.y1);
  if (!p1_on) return false;
  return Orientation(outer.x1, outer.y1, outer.x2, outer.y2, inner.x2,
                     inner.y2) == 0 &&
         OnSegment(outer.x1, outer.y1, outer.x2, outer.y2, inner.x2,
                   inner.y2);
}

}  // namespace sj

#endif  // USJ_GEOMETRY_SEGMENT_H_
