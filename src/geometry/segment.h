#ifndef USJ_GEOMETRY_SEGMENT_H_
#define USJ_GEOMETRY_SEGMENT_H_

#include "geometry/rect.h"

namespace sj {

/// A 2-D line segment with exact-geometry predicates.
///
/// The join algorithms in this library implement the *filter step* on
/// MBRs (§1); Segment supplies the *refinement step* for the common GIS
/// case where the underlying objects are polyline fragments (TIGER roads
/// and rivers). See examples/gis_overlay.cpp for the two-step pipeline.
struct Segment {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  Segment() = default;
  Segment(float ax, float ay, float bx, float by)
      : x1(ax), y1(ay), x2(bx), y2(by) {}

  /// The segment's MBR (the filter-step representation).
  RectF Mbr(ObjectId id = 0) const {
    return RectF(x1 < x2 ? x1 : x2, y1 < y2 ? y1 : y2, x1 < x2 ? x2 : x1,
                 y1 < y2 ? y2 : y1, id);
  }
};

namespace geometry_internal {

/// Sign of the cross product (b-a) x (c-a): orientation of the triple.
inline double Orientation(double ax, double ay, double bx, double by,
                          double cx, double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

inline bool OnSegment(double ax, double ay, double bx, double by, double px,
                      double py) {
  return std::min(ax, bx) <= px && px <= std::max(ax, bx) &&
         std::min(ay, by) <= py && py <= std::max(ay, by);
}

}  // namespace geometry_internal

/// True when the closed segments intersect (including touching endpoints
/// and collinear overlap). Computed in double precision; exact for the
/// float inputs used throughout the library.
inline bool SegmentsIntersect(const Segment& s, const Segment& t) {
  using geometry_internal::OnSegment;
  using geometry_internal::Orientation;
  const double d1 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x1, t.y1);
  const double d2 = Orientation(s.x1, s.y1, s.x2, s.y2, t.x2, t.y2);
  const double d3 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x1, s.y1);
  const double d4 = Orientation(t.x1, t.y1, t.x2, t.y2, s.x2, s.y2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Collinear / endpoint-touching cases.
  if (d1 == 0 && OnSegment(s.x1, s.y1, s.x2, s.y2, t.x1, t.y1)) return true;
  if (d2 == 0 && OnSegment(s.x1, s.y1, s.x2, s.y2, t.x2, t.y2)) return true;
  if (d3 == 0 && OnSegment(t.x1, t.y1, t.x2, t.y2, s.x1, s.y1)) return true;
  if (d4 == 0 && OnSegment(t.x1, t.y1, t.x2, t.y2, s.x2, s.y2)) return true;
  return false;
}

}  // namespace sj

#endif  // USJ_GEOMETRY_SEGMENT_H_
