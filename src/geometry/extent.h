#ifndef USJ_GEOMETRY_EXTENT_H_
#define USJ_GEOMETRY_EXTENT_H_

#include "geometry/rect.h"
#include "util/span.h"

namespace sj {

/// Returns the bounding rectangle of a set of rectangles; RectF::Empty()
/// for an empty input. The returned rectangle's id is 0.
inline RectF ComputeExtent(Span<const RectF> rects) {
  RectF extent = RectF::Empty();
  for (const RectF& r : rects) extent.ExtendTo(r);
  extent.id = 0;
  return extent;
}

}  // namespace sj

#endif  // USJ_GEOMETRY_EXTENT_H_
