#include "histogram/grid_histogram.h"

#include <algorithm>
#include <cstring>

#include "io/stream.h"
#include "util/logging.h"

namespace sj {

GridHistogram::GridHistogram(const RectF& extent, uint32_t nx, uint32_t ny)
    : extent_(extent), nx_(std::max(1u, nx)), ny_(std::max(1u, ny)) {
  cell_w_ = (extent_.xhi - extent_.xlo) / static_cast<float>(nx_);
  cell_h_ = (extent_.yhi - extent_.ylo) / static_cast<float>(ny_);
  if (!(cell_w_ > 0.0f)) {
    nx_ = 1;
    cell_w_ = 1.0f;
  }
  if (!(cell_h_ > 0.0f)) {
    ny_ = 1;
    cell_h_ = 1.0f;
  }
  cells_.assign(static_cast<size_t>(nx_) * ny_, 0);
}

Result<GridHistogram> GridHistogram::Build(const StreamRange& input,
                                           const RectF& extent, uint32_t nx,
                                           uint32_t ny) {
  GridHistogram hist(extent, nx, ny);
  StreamReader<RectF> reader(input.pager, input.first_page, input.count);
  while (std::optional<RectF> r = reader.Next()) {
    if (!r->Valid()) {
      return Status::InvalidArgument("malformed rectangle in histogram input");
    }
    hist.Add(*r);
  }
  return hist;
}

Result<GridHistogram> GridHistogram::BuildSampled(const StreamRange& input,
                                                  const RectF& extent,
                                                  uint32_t nx, uint32_t ny,
                                                  uint32_t sample_one_in) {
  sample_one_in = std::max(1u, sample_one_in);
  if (sample_one_in == 1) return Build(input, extent, nx, ny);
  GridHistogram hist(extent, nx, ny);
  constexpr uint32_t kRecordsPerPage = StreamReader<RectF>::kRecordsPerPage;
  const uint64_t per_block = uint64_t{kRecordsPerPage} * kStreamBlockPages;
  std::vector<uint8_t> buffer(kStreamBlockPages * kPageSize);
  for (uint64_t block = 0; block * per_block < input.count;
       block += sample_one_in) {
    const uint64_t first_record = block * per_block;
    const uint64_t take = std::min(input.count - first_record, per_block);
    const uint32_t npages = static_cast<uint32_t>(
        (take + kRecordsPerPage - 1) / kRecordsPerPage);
    SJ_RETURN_IF_ERROR(input.pager->ReadRun(
        input.first_page + block * kStreamBlockPages, npages, buffer.data()));
    for (uint64_t i = 0; i < take; ++i) {
      const uint64_t page = i / kRecordsPerPage;
      const uint64_t slot = i % kRecordsPerPage;
      RectF r;
      std::memcpy(&r, buffer.data() + page * kPageSize + slot * sizeof(RectF),
                  sizeof(RectF));
      if (!r.Valid()) {
        return Status::InvalidArgument(
            "malformed rectangle in histogram input");
      }
      hist.Add(r);
    }
  }
  hist.ScaleTo(input.count);
  return hist;
}

void GridHistogram::ScaleTo(uint64_t target_total) {
  if (total_ == 0 || total_ == target_total) return;
  const double factor = static_cast<double>(target_total) /
                        static_cast<double>(total_);
  for (uint64_t& c : cells_) {
    c = static_cast<uint64_t>(static_cast<double>(c) * factor + 0.5);
  }
  total_ = target_total;
}

void GridHistogram::CellRange(const RectF& r, uint32_t* x0, uint32_t* x1,
                              uint32_t* y0, uint32_t* y1) const {
  auto clamp_cell = [](float v, float lo, float w, uint32_t n) -> uint32_t {
    // Clamp in float space before the integer cast: casting a float that
    // exceeds uint32_t's range (far-away or infinite coordinates) is
    // undefined behaviour, not a saturation. NaN fails the > 0 test and
    // lands in cell 0 like any other out-of-range-low value.
    const float rel = (v - lo) / w;
    if (!(rel > 0.0f)) return 0;
    return static_cast<uint32_t>(std::min(rel, static_cast<float>(n - 1)));
  };
  *x0 = clamp_cell(r.xlo, extent_.xlo, cell_w_, nx_);
  *x1 = clamp_cell(r.xhi, extent_.xlo, cell_w_, nx_);
  *y0 = clamp_cell(r.ylo, extent_.ylo, cell_h_, ny_);
  *y1 = clamp_cell(r.yhi, extent_.ylo, cell_h_, ny_);
}

void GridHistogram::Add(const RectF& r) {
  uint32_t x0, x1, y0, y1;
  CellRange(r, &x0, &x1, &y0, &y1);
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) {
      cells_[static_cast<size_t>(y) * nx_ + x]++;
    }
  }
  total_++;
}

bool GridHistogram::MightIntersect(const RectF& r) const {
  if (total_ == 0) return false;
  if (!r.Intersects(extent_)) return false;
  uint32_t x0, x1, y0, y1;
  CellRange(r, &x0, &x1, &y0, &y1);
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) {
      if (cells_[static_cast<size_t>(y) * nx_ + x] != 0) return true;
    }
  }
  return false;
}

double GridHistogram::EstimateCountIn(const RectF& r) const {
  // Invalid (inverted / NaN) and fully-outside rectangles contribute no
  // mass; neither do degenerate (zero-area) ones — the estimator is a
  // fractional-area model, and a zero-measure query must come out as an
  // exact 0 rather than a NaN from 0-times-infinity corner cases.
  if (total_ == 0 || !r.Valid() || !r.Intersects(extent_)) return 0.0;
  if (!(r.Area() > 0.0)) return 0.0;
  uint32_t x0, x1, y0, y1;
  CellRange(r, &x0, &x1, &y0, &y1);
  const double cell_area =
      static_cast<double>(cell_w_) * static_cast<double>(cell_h_);
  double estimate = 0.0;
  for (uint32_t y = y0; y <= y1; ++y) {
    const float cell_ylo = extent_.ylo + static_cast<float>(y) * cell_h_;
    const double oy =
        std::max(0.0, static_cast<double>(
                          std::min(r.yhi, cell_ylo + cell_h_) -
                          std::max(r.ylo, cell_ylo)));
    for (uint32_t x = x0; x <= x1; ++x) {
      const uint64_t count = cells_[static_cast<size_t>(y) * nx_ + x];
      if (count == 0) continue;
      const float cell_xlo = extent_.xlo + static_cast<float>(x) * cell_w_;
      const double ox =
          std::max(0.0, static_cast<double>(
                            std::min(r.xhi, cell_xlo + cell_w_) -
                            std::max(r.xlo, cell_xlo)));
      estimate += static_cast<double>(count) * (ox * oy) / cell_area;
    }
  }
  return estimate;
}

double GridHistogram::AverageCellsPerObject() const {
  if (total_ == 0) return 1.0;
  double mass = 0.0;
  for (uint64_t c : cells_) mass += static_cast<double>(c);
  return std::max(1.0, mass / static_cast<double>(total_));
}

double GridHistogram::EstimateJoinFraction(const GridHistogram& other) const {
  SJ_CHECK(nx_ == other.nx_ && ny_ == other.ny_)
      << "histograms must share a grid";
  if (total_ == 0) return 0.0;
  // Cell mass is the count of overlapping rectangles, so the sum over
  // cells exceeds total_ for large objects; normalizing by the full mass
  // keeps the estimate in [0, 1].
  double mass = 0.0, joined = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    mass += static_cast<double>(cells_[i]);
    if (other.cells_[i] != 0) joined += static_cast<double>(cells_[i]);
  }
  return mass > 0.0 ? joined / mass : 0.0;
}

}  // namespace sj
