#include "histogram/grid_histogram.h"

#include <algorithm>

#include "io/stream.h"
#include "util/logging.h"

namespace sj {

GridHistogram::GridHistogram(const RectF& extent, uint32_t nx, uint32_t ny)
    : extent_(extent), nx_(std::max(1u, nx)), ny_(std::max(1u, ny)) {
  cell_w_ = (extent_.xhi - extent_.xlo) / static_cast<float>(nx_);
  cell_h_ = (extent_.yhi - extent_.ylo) / static_cast<float>(ny_);
  if (!(cell_w_ > 0.0f)) {
    nx_ = 1;
    cell_w_ = 1.0f;
  }
  if (!(cell_h_ > 0.0f)) {
    ny_ = 1;
    cell_h_ = 1.0f;
  }
  cells_.assign(static_cast<size_t>(nx_) * ny_, 0);
}

Result<GridHistogram> GridHistogram::Build(const StreamRange& input,
                                           const RectF& extent, uint32_t nx,
                                           uint32_t ny) {
  GridHistogram hist(extent, nx, ny);
  StreamReader<RectF> reader(input.pager, input.first_page, input.count);
  while (std::optional<RectF> r = reader.Next()) {
    if (!r->Valid()) {
      return Status::InvalidArgument("malformed rectangle in histogram input");
    }
    hist.Add(*r);
  }
  return hist;
}

void GridHistogram::CellRange(const RectF& r, uint32_t* x0, uint32_t* x1,
                              uint32_t* y0, uint32_t* y1) const {
  auto clamp_cell = [](float v, float lo, float w, uint32_t n) -> uint32_t {
    const float rel = (v - lo) / w;
    if (!(rel > 0.0f)) return 0;
    return std::min(static_cast<uint32_t>(rel), n - 1);
  };
  *x0 = clamp_cell(r.xlo, extent_.xlo, cell_w_, nx_);
  *x1 = clamp_cell(r.xhi, extent_.xlo, cell_w_, nx_);
  *y0 = clamp_cell(r.ylo, extent_.ylo, cell_h_, ny_);
  *y1 = clamp_cell(r.yhi, extent_.ylo, cell_h_, ny_);
}

void GridHistogram::Add(const RectF& r) {
  uint32_t x0, x1, y0, y1;
  CellRange(r, &x0, &x1, &y0, &y1);
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) {
      cells_[static_cast<size_t>(y) * nx_ + x]++;
    }
  }
  total_++;
}

bool GridHistogram::MightIntersect(const RectF& r) const {
  if (total_ == 0) return false;
  if (!r.Intersects(extent_)) return false;
  uint32_t x0, x1, y0, y1;
  CellRange(r, &x0, &x1, &y0, &y1);
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) {
      if (cells_[static_cast<size_t>(y) * nx_ + x] != 0) return true;
    }
  }
  return false;
}

double GridHistogram::EstimateJoinFraction(const GridHistogram& other) const {
  SJ_CHECK(nx_ == other.nx_ && ny_ == other.ny_)
      << "histograms must share a grid";
  if (total_ == 0) return 0.0;
  // Cell mass is the count of overlapping rectangles, so the sum over
  // cells exceeds total_ for large objects; normalizing by the full mass
  // keeps the estimate in [0, 1].
  double mass = 0.0, joined = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    mass += static_cast<double>(cells_[i]);
    if (other.cells_[i] != 0) joined += static_cast<double>(cells_[i]);
  }
  return mass > 0.0 ? joined / mass : 0.0;
}

}  // namespace sj
