#ifndef USJ_HISTOGRAM_GRID_HISTOGRAM_H_
#define USJ_HISTOGRAM_GRID_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "io/pager.h"
#include "sort/external_sort.h"
#include "util/result.h"

namespace sj {

/// A uniform-grid spatial histogram.
///
/// Stands in for the spatial histograms of Acharya, Poosala & Ramaswamy
/// [1], which the paper proposes for estimating what fraction of an index
/// a join will touch (§6.3). Each cell counts the rectangles overlapping
/// it; the occupancy bitmap supports conservative pruning ("might any
/// object live here?") for the selective PQ traversal.
class GridHistogram {
 public:
  /// A grid of `nx` x `ny` cells over `extent`. Rectangles outside the
  /// extent are clamped to the boundary cells.
  GridHistogram(const RectF& extent, uint32_t nx, uint32_t ny);

  /// Builds a histogram by scanning a stream (charged to its disk model).
  static Result<GridHistogram> Build(const StreamRange& input,
                                     const RectF& extent, uint32_t nx,
                                     uint32_t ny);

  /// Builds a histogram from a block sample of the stream: every
  /// `sample_one_in`-th 64-page block is read (block 0 always), and the
  /// cell counts are scaled to the stream's exact record count — the
  /// sampling construction of the Acharya–Poosala–Ramaswamy histograms
  /// the paper's §6.3 points at, so the density pass costs a fraction of
  /// a full scan. sample_one_in = 1 degrades to Build().
  static Result<GridHistogram> BuildSampled(const StreamRange& input,
                                            const RectF& extent, uint32_t nx,
                                            uint32_t ny,
                                            uint32_t sample_one_in);

  /// Rescales the cell counts so total() becomes `target_total`
  /// (rounding cells); no-op when total() is 0 or already the target.
  /// Used by the sampled build above.
  void ScaleTo(uint64_t target_total);

  /// Adds one rectangle (increments every cell it overlaps).
  void Add(const RectF& r);

  uint64_t CellCount(uint32_t ix, uint32_t iy) const {
    return cells_[iy * nx_ + ix];
  }
  bool Occupied(uint32_t ix, uint32_t iy) const {
    return cells_[iy * nx_ + ix] != 0;
  }

  /// Conservative test: false only if no added rectangle can intersect
  /// `r`. Used to prune R-tree subtrees in the selective PQ traversal.
  bool MightIntersect(const RectF& r) const;

  /// Estimates the fraction of this histogram's rectangle mass lying in
  /// cells where `other` has at least one object — an estimate of the
  /// fraction of this input (and, proportionally, of its index leaves)
  /// that participates in a join with `other`. Returns a value in [0, 1].
  double EstimateJoinFraction(const GridHistogram& other) const;

  /// Estimates how many of the added rectangles overlap `r`: each cell's
  /// count is weighted by the fraction of the cell `r` covers, so the
  /// estimate works for query rectangles of any size relative to the
  /// grid (the PartitionPlanner queries tile quadrants finer than one
  /// cell). Cell counts tally *overlapping* rectangles, so summing the
  /// estimate over a tiling of the extent counts replicated objects once
  /// per tile they touch — exactly the mass a PBSM partition holds.
  double EstimateCountIn(const RectF& r) const;

  /// Average number of cells an added rectangle overlaps (>= 1 when
  /// total() > 0) — the replication factor a tile grid at this
  /// resolution would induce.
  double AverageCellsPerObject() const;

  /// Number of rectangles added.
  uint64_t total() const { return total_; }
  const RectF& extent() const { return extent_; }
  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }

 private:
  void CellRange(const RectF& r, uint32_t* x0, uint32_t* x1, uint32_t* y0,
                 uint32_t* y1) const;

  RectF extent_;
  uint32_t nx_;
  uint32_t ny_;
  float cell_w_;
  float cell_h_;
  std::vector<uint64_t> cells_;
  uint64_t total_ = 0;
};

}  // namespace sj

#endif  // USJ_HISTOGRAM_GRID_HISTOGRAM_H_
