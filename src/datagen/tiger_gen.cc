#include "datagen/tiger_gen.h"

#include <algorithm>
#include <cmath>

#include "datagen/synthetic.h"
#include "util/logging.h"

namespace sj {

std::vector<TigerSpec> PaperDatasets(double scale) {
  auto scaled = [scale](uint64_t n) -> uint64_t {
    return std::max<uint64_t>(1, static_cast<uint64_t>(n * scale));
  };
  // Cardinalities from Table 2.
  return {
      {"NJ", scaled(414442), scaled(50853), 101},
      {"NY", scaled(870412), scaled(156567), 102},
      {"DISK1", scaled(6030844), scaled(1161906), 103},
      {"DISK4-6", scaled(11888474), scaled(3446094), 104},
      {"DISK1-3", scaled(17199848), scaled(3967649), 105},
      {"DISK1-6", scaled(29088173), scaled(7413353), 106},
  };
}

TigerSpec PaperDataset(const std::string& name, double scale) {
  for (const TigerSpec& spec : PaperDatasets(scale)) {
    if (spec.name == name) return spec;
  }
  SJ_CHECK(false) << "unknown paper dataset" << name;
  return {};
}

TigerGenerator::TigerGenerator(uint64_t seed, const RectF& region)
    : rng_(seed), region_(region) {
  // A fixed county geography per seed. County sizes follow a Zipf-ish
  // distribution (a few metropolitan clusters hold much of the data).
  const int num_counties = 600;
  counties_.reserve(num_counties);
  cumulative_weight_.reserve(num_counties);
  for (int i = 0; i < num_counties; ++i) {
    County c;
    c.cx = static_cast<float>(rng_.UniformDouble(region_.xlo, region_.xhi));
    c.cy = static_cast<float>(rng_.UniformDouble(region_.ylo, region_.yhi));
    // Radii 0.05 - 0.6 degrees; big counties are rarer.
    c.radius = static_cast<float>(0.05 + 0.55 * rng_.UniformDouble(0.0, 1.0) *
                                             rng_.UniformDouble(0.0, 1.0));
    c.weight = 1.0 / std::pow(static_cast<double>(i + 1), 0.7);
    total_weight_ += c.weight;
    counties_.push_back(c);
    cumulative_weight_.push_back(total_weight_);
  }
}

const TigerGenerator::County& TigerGenerator::SampleCounty() {
  const double u = rng_.UniformDouble(0.0, total_weight_);
  auto it = std::lower_bound(cumulative_weight_.begin(),
                             cumulative_weight_.end(), u);
  const size_t idx =
      std::min<size_t>(static_cast<size_t>(it - cumulative_weight_.begin()),
                       counties_.size() - 1);
  return counties_[idx];
}

RectF TigerGenerator::ClampToRegion(float xlo, float ylo, float xhi,
                                    float yhi, ObjectId id) const {
  xlo = std::clamp(xlo, region_.xlo, region_.xhi);
  xhi = std::clamp(xhi, region_.xlo, region_.xhi);
  ylo = std::clamp(ylo, region_.ylo, region_.yhi);
  yhi = std::clamp(yhi, region_.ylo, region_.yhi);
  if (xhi < xlo) std::swap(xlo, xhi);
  if (yhi < ylo) std::swap(ylo, yhi);
  return RectF(xlo, ylo, xhi, yhi, id);
}

void TigerGenerator::GenerateRoads(uint64_t n, std::vector<RectF>* out,
                                   ObjectId base_id) {
  out->reserve(out->size() + n);
  for (uint64_t i = 0; i < n; ++i) {
    const County& c = SampleCounty();
    // Position: Gaussian scatter around the county center.
    const float x =
        c.cx + static_cast<float>(rng_.Normal()) * c.radius * 0.5f;
    const float y =
        c.cy + static_cast<float>(rng_.Normal()) * c.radius * 0.5f;
    // A street segment: ~100-600 m (0.001-0.006 degrees), axis-leaning
    // (street grids), thin in the other direction.
    const double len = 0.001 + 0.005 * rng_.UniformDouble(0.0, 1.0);
    const double thin = len * rng_.UniformDouble(0.02, 0.35);
    const bool horizontal = rng_.OneIn(0.5);
    const double dx = horizontal ? len : thin;
    const double dy = horizontal ? thin : len;
    out->push_back(ClampToRegion(
        x - static_cast<float>(dx) / 2, y - static_cast<float>(dy) / 2,
        x + static_cast<float>(dx) / 2, y + static_cast<float>(dy) / 2,
        base_id + static_cast<ObjectId>(i)));
  }
}

void TigerGenerator::GenerateHydro(uint64_t n, std::vector<RectF>* out,
                                   ObjectId base_id) {
  out->reserve(out->size() + n);
  uint64_t produced = 0;
  // Rivers: random-walk chains of elongated MBRs (60 % of features);
  // lakes: isolated blobs (40 %).
  while (produced < n) {
    if (rng_.OneIn(0.6)) {
      const County& c = SampleCounty();
      // Rivers share the road clusters' geography (drainage follows the
      // populated valleys), so the road x hydro join has realistic
      // selectivity.
      float x = c.cx + static_cast<float>(rng_.Normal()) * c.radius * 0.4f;
      float y = c.cy + static_cast<float>(rng_.Normal()) * c.radius * 0.4f;
      double heading = rng_.UniformDouble(0.0, 6.283185307179586);
      const uint64_t chain =
          std::min<uint64_t>(n - produced, 8 + rng_.Uniform(25));
      for (uint64_t k = 0; k < chain; ++k) {
        const double step = 0.01 + 0.03 * rng_.UniformDouble(0.0, 1.0);
        heading += rng_.Normal() * 0.35;  // Meander.
        const float nx = x + static_cast<float>(step * __builtin_cos(heading));
        const float ny = y + static_cast<float>(step * __builtin_sin(heading));
        out->push_back(ClampToRegion(std::min(x, nx), std::min(y, ny),
                                     std::max(x, nx), std::max(y, ny),
                                     base_id + static_cast<ObjectId>(produced)));
        produced++;
        x = nx;
        y = ny;
      }
    } else {
      const County& c = SampleCounty();
      const float x = c.cx + static_cast<float>(rng_.Normal()) * c.radius * 0.4f;
      const float y = c.cy + static_cast<float>(rng_.Normal()) * c.radius * 0.4f;
      const double w = 0.005 + 0.05 * rng_.UniformDouble(0.0, 1.0);
      const double h = w * rng_.UniformDouble(0.4, 1.6);
      out->push_back(ClampToRegion(
          x - static_cast<float>(w) / 2, y - static_cast<float>(h) / 2,
          x + static_cast<float>(w) / 2, y + static_cast<float>(h) / 2,
          base_id + static_cast<ObjectId>(produced)));
      produced++;
    }
  }
}

namespace {

/// Geometry for every MBR appended since `from` (the shared tail of the
/// *WithGeometry generators, keeping the MBR-exactness invariant in one
/// place).
void AppendSegmentsFor(const std::vector<RectF>& rects, size_t from,
                       std::vector<Segment>* geom) {
  geom->reserve(geom->size() + (rects.size() - from));
  for (size_t i = from; i < rects.size(); ++i) {
    geom->push_back(SegmentForRect(rects[i]));
  }
}

}  // namespace

void TigerGenerator::GenerateRoadsWithGeometry(uint64_t n,
                                               std::vector<RectF>* out,
                                               std::vector<Segment>* geom,
                                               ObjectId base_id) {
  const size_t before = out->size();
  GenerateRoads(n, out, base_id);
  AppendSegmentsFor(*out, before, geom);
}

void TigerGenerator::GenerateHydroWithGeometry(uint64_t n,
                                               std::vector<RectF>* out,
                                               std::vector<Segment>* geom,
                                               ObjectId base_id) {
  const size_t before = out->size();
  GenerateHydro(n, out, base_id);
  AppendSegmentsFor(*out, before, geom);
}

}  // namespace sj
