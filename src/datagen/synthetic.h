#ifndef USJ_DATAGEN_SYNTHETIC_H_
#define USJ_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "util/random.h"

namespace sj {

/// `n` rectangles with centers uniform in `region` and edge lengths
/// uniform in (0, 2*mean_size). Ids are base_id..base_id+n-1. Used by
/// property tests and microbenchmarks.
std::vector<RectF> UniformRects(uint64_t n, const RectF& region,
                                float mean_size, uint64_t seed,
                                ObjectId base_id = 0);

/// `n` rectangles in `clusters` Gaussian clusters (worst-ish case for
/// PBSM's tiles).
std::vector<RectF> ClusteredRects(uint64_t n, const RectF& region,
                                  uint32_t clusters, float cluster_sigma,
                                  float mean_size, uint64_t seed,
                                  ObjectId base_id = 0);

/// Degenerate inputs: `n` points (zero-area rectangles) on a diagonal,
/// exercising tie and boundary paths.
std::vector<RectF> DiagonalPoints(uint64_t n, const RectF& region,
                                  ObjectId base_id = 0);

}  // namespace sj

#endif  // USJ_DATAGEN_SYNTHETIC_H_
