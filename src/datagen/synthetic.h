#ifndef USJ_DATAGEN_SYNTHETIC_H_
#define USJ_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "geometry/segment.h"
#include "util/random.h"

namespace sj {

/// `n` rectangles with centers uniform in `region` and edge lengths
/// uniform in (0, 2*mean_size). Ids are base_id..base_id+n-1. Used by
/// property tests and microbenchmarks.
std::vector<RectF> UniformRects(uint64_t n, const RectF& region,
                                float mean_size, uint64_t seed,
                                ObjectId base_id = 0);

/// `n` rectangles in `clusters` Gaussian clusters (worst-ish case for
/// PBSM's tiles).
std::vector<RectF> ClusteredRects(uint64_t n, const RectF& region,
                                  uint32_t clusters, float cluster_sigma,
                                  float mean_size, uint64_t seed,
                                  ObjectId base_id = 0);

/// Degenerate inputs: `n` points (zero-area rectangles) on a diagonal,
/// exercising tie and boundary paths.
std::vector<RectF> DiagonalPoints(uint64_t n, const RectF& region,
                                  ObjectId base_id = 0);

/// Heavy spatial skew: `hotspots` Gaussian hotspots whose record masses
/// follow a Zipf(theta) law, so a handful of hotspots hold most of the
/// data (theta = 0 degrades to ClusteredRects; theta ~ 1.2 puts roughly
/// half the records in the top hotspot). The worst case for fixed-grid
/// PBSM partitioning and the target workload of the adaptive planner.
/// `center_seed` != 0 draws the hotspot placement from its own stream,
/// so two relations can share a geography (roads and hydro of the same
/// cities) while sampling records independently.
std::vector<RectF> ZipfClusteredRects(uint64_t n, const RectF& region,
                                      uint32_t hotspots, double theta,
                                      float hotspot_sigma, float mean_size,
                                      uint64_t seed, ObjectId base_id = 0,
                                      uint64_t center_seed = 0);

/// Diagonal correlation: centers spread uniformly along the main diagonal
/// of `region` with Gaussian jitter `spread` perpendicular to it — a thin
/// dense band that concentrates mass in the diagonal tiles of any grid.
std::vector<RectF> DiagonalBandRects(uint64_t n, const RectF& region,
                                     float spread, float mean_size,
                                     uint64_t seed, ObjectId base_id = 0);

/// Uniform background plus one dense "city": `city_fraction` of the
/// records packed into a square of side `city_side` at a seeded location
/// (the mixed uniform/urban shape of real cartographic data).
std::vector<RectF> UniformWithCityRects(uint64_t n, const RectF& region,
                                        double city_fraction, float city_side,
                                        float mean_size, uint64_t seed,
                                        ObjectId base_id = 0);

/// Exact geometry for a filter-and-refine pipeline: the line segment
/// spanning `r`'s main or anti diagonal, the orientation chosen by a
/// deterministic hash of r.id. The segment's bounding box is exactly `r`
/// (SegmentForRect(r).Mbr(r.id) == r), and the geometry of any record can
/// be regenerated from its MBR alone — no generator state to replay.
Segment SegmentForRect(const RectF& r);

/// SegmentForRect over a whole relation; out[i] is the geometry of
/// rects[i], ready for FeatureStore::Build when ids are dense.
std::vector<Segment> SegmentsForRects(const std::vector<RectF>& rects);

}  // namespace sj

#endif  // USJ_DATAGEN_SYNTHETIC_H_
