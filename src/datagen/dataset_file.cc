#include "datagen/dataset_file.h"

#include <cstring>

#include "geometry/extent.h"
#include "io/stream.h"

namespace sj {

Result<DatasetRef> WriteDataset(Pager* pager, Span<const RectF> rects,
                                const std::string& name) {
  DatasetFileHeader header;
  header.count = rects.size();
  const RectF extent = ComputeExtent(rects);
  header.xlo = extent.xlo;
  header.ylo = extent.ylo;
  header.xhi = extent.xhi;
  header.yhi = extent.yhi;
  std::strncpy(header.name, name.c_str(), sizeof(header.name) - 1);

  const PageId header_page = pager->Allocate(1);
  uint8_t page[kPageSize] = {};
  std::memcpy(page, &header, sizeof(header));
  SJ_RETURN_IF_ERROR(pager->WritePage(header_page, page));

  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  for (const RectF& r : rects) writer.Append(r);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());

  DatasetRef ref;
  ref.range = StreamRange{pager, first, n};
  ref.extent = extent;
  return ref;
}

Result<DatasetRef> OpenDataset(Pager* pager, PageId header_page) {
  uint8_t page[kPageSize];
  SJ_RETURN_IF_ERROR(pager->ReadPage(header_page, page));
  DatasetFileHeader header;
  std::memcpy(&header, page, sizeof(header));
  if (header.magic != DatasetFileHeader::kMagic) {
    return Status::Corruption("dataset header magic mismatch");
  }
  if (header.version != DatasetFileHeader::kVersion) {
    return Status::Corruption("unsupported dataset version");
  }
  DatasetRef ref;
  ref.range = StreamRange{pager, header_page + 1, header.count};
  ref.extent = RectF(header.xlo, header.ylo, header.xhi, header.yhi);
  if (header.count == 0) ref.extent = RectF::Empty();
  return ref;
}

}  // namespace sj
