#ifndef USJ_DATAGEN_TIGER_GEN_H_
#define USJ_DATAGEN_TIGER_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/rect.h"
#include "geometry/segment.h"
#include "util/random.h"

namespace sj {

/// One named dataset of the paper's ladder (Table 2): a "Road" relation
/// and a "Hydro" relation of the given cardinalities.
struct TigerSpec {
  std::string name;
  uint64_t road_count = 0;
  uint64_t hydro_count = 0;
  uint64_t seed = 0;
};

/// The paper's six TIGER/Line 97 datasets, with cardinalities scaled by
/// `scale` (1.0 = the paper's object counts: NJ 414k/51k ... DISK1-6
/// 29.1M/7.4M). The relative ladder is preserved at any scale.
std::vector<TigerSpec> PaperDatasets(double scale);

/// Returns the spec with the given name (NJ, NY, DISK1, DISK4-6, DISK1-3,
/// DISK1-6) at `scale`; aborts on unknown names.
TigerSpec PaperDataset(const std::string& name, double scale);

/// Generates TIGER/Line-like MBR relations (the substitution for the
/// paper's proprietary CD-ROM extracts; see DESIGN.md §2).
///
/// Road features are short line-segment MBRs clustered into "counties"
/// with skewed (Zipf-like) densities, producing the dense, locally
/// uniform, globally clustered distribution of the US road network. Hydro
/// features mix river polyline fragments (random-walk chains of elongated
/// MBRs through county territory) and lake blobs. Both relations share the
/// same cluster geography, so road x hydro joins have realistic (sub-
/// linear) selectivity, and a horizontal sweep line cuts O(sqrt(N))
/// rectangles (the square-root rule the algorithms rely on).
class TigerGenerator {
 public:
  /// Conterminous-US-like coordinate frame (degrees).
  static RectF DefaultRegion() { return RectF(-125.0f, 24.0f, -66.0f, 50.0f); }

  TigerGenerator(uint64_t seed, const RectF& region = DefaultRegion());

  /// Appends `n` road MBRs with ids base_id .. base_id+n-1.
  void GenerateRoads(uint64_t n, std::vector<RectF>* out,
                     ObjectId base_id = 0);
  /// Appends `n` hydro MBRs with ids base_id .. base_id+n-1.
  void GenerateHydro(uint64_t n, std::vector<RectF>* out,
                     ObjectId base_id = 0);

  /// Like GenerateRoads/GenerateHydro, but also emits the exact geometry
  /// (the refinement-step payload): each feature is a line segment across
  /// its MBR's diagonal — faithful for the thin axis-leaning street boxes
  /// and the river-walk chain links — with geom->at(i) matching out->at(i)
  /// and Mbr() exactly equal to the stored MBR. The MBRs are identical to
  /// what the plain generators produce for the same seed.
  void GenerateRoadsWithGeometry(uint64_t n, std::vector<RectF>* out,
                                 std::vector<Segment>* geom,
                                 ObjectId base_id = 0);
  void GenerateHydroWithGeometry(uint64_t n, std::vector<RectF>* out,
                                 std::vector<Segment>* geom,
                                 ObjectId base_id = 0);

  const RectF& region() const { return region_; }

 private:
  struct County {
    float cx, cy;     // Center.
    float radius;     // Spatial spread.
    double weight;    // Sampling probability mass (Zipf-ish).
  };

  const County& SampleCounty();
  RectF ClampToRegion(float xlo, float ylo, float xhi, float yhi,
                      ObjectId id) const;

  Random rng_;
  RectF region_;
  std::vector<County> counties_;
  std::vector<double> cumulative_weight_;
  double total_weight_ = 0.0;
};

}  // namespace sj

#endif  // USJ_DATAGEN_TIGER_GEN_H_
