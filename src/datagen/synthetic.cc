#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

namespace sj {

std::vector<RectF> UniformRects(uint64_t n, const RectF& region,
                                float mean_size, uint64_t seed,
                                ObjectId base_id) {
  Random rng(seed);
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const float cx =
        static_cast<float>(rng.UniformDouble(region.xlo, region.xhi));
    const float cy =
        static_cast<float>(rng.UniformDouble(region.ylo, region.yhi));
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.emplace_back(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2,
                     base_id + static_cast<ObjectId>(i));
  }
  return out;
}

namespace {

/// A rectangle of the given center/size clamped into `region` (the shape
/// ClusteredRects uses; shared by the skewed generators).
RectF ClampedRect(float cx, float cy, float w, float h, const RectF& region,
                  ObjectId id) {
  RectF r(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2, id);
  r.xlo = std::clamp(r.xlo, region.xlo, region.xhi);
  r.xhi = std::clamp(r.xhi, region.xlo, region.xhi);
  r.ylo = std::clamp(r.ylo, region.ylo, region.yhi);
  r.yhi = std::clamp(r.yhi, region.ylo, region.yhi);
  return r;
}

}  // namespace

std::vector<RectF> ClusteredRects(uint64_t n, const RectF& region,
                                  uint32_t clusters, float cluster_sigma,
                                  float mean_size, uint64_t seed,
                                  ObjectId base_id) {
  Random rng(seed);
  std::vector<std::pair<float, float>> centers;
  centers.reserve(clusters);
  for (uint32_t c = 0; c < clusters; ++c) {
    centers.emplace_back(
        static_cast<float>(rng.UniformDouble(region.xlo, region.xhi)),
        static_cast<float>(rng.UniformDouble(region.ylo, region.yhi)));
  }
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const auto& [ccx, ccy] = centers[rng.Uniform(clusters)];
    const float cx = ccx + static_cast<float>(rng.Normal()) * cluster_sigma;
    const float cy = ccy + static_cast<float>(rng.Normal()) * cluster_sigma;
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.push_back(ClampedRect(cx, cy, w, h, region,
                              base_id + static_cast<ObjectId>(i)));
  }
  return out;
}

std::vector<RectF> DiagonalPoints(uint64_t n, const RectF& region,
                                  ObjectId base_id) {
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const float t = n > 1 ? static_cast<float>(i) / static_cast<float>(n - 1)
                          : 0.0f;
    const float x = region.xlo + t * (region.xhi - region.xlo);
    const float y = region.ylo + t * (region.yhi - region.ylo);
    out.emplace_back(x, y, x, y, base_id + static_cast<ObjectId>(i));
  }
  return out;
}

std::vector<RectF> ZipfClusteredRects(uint64_t n, const RectF& region,
                                      uint32_t hotspots, double theta,
                                      float hotspot_sigma, float mean_size,
                                      uint64_t seed, ObjectId base_id,
                                      uint64_t center_seed) {
  Random rng(seed);
  hotspots = std::max(1u, hotspots);
  Random center_rng(center_seed != 0 ? center_seed : seed);
  Random* placement = center_seed != 0 ? &center_rng : &rng;
  std::vector<std::pair<float, float>> centers;
  centers.reserve(hotspots);
  for (uint32_t c = 0; c < hotspots; ++c) {
    // Named draws: argument evaluation order is unspecified, and the
    // generators must be byte-identical across compilers.
    const float cx =
        static_cast<float>(placement->UniformDouble(region.xlo, region.xhi));
    const float cy =
        static_cast<float>(placement->UniformDouble(region.ylo, region.yhi));
    centers.emplace_back(cx, cy);
  }
  // Zipf masses: cumulative weights of 1/(k+1)^theta, sampled by binary
  // search so hotspot k draws proportionally to its rank weight.
  std::vector<double> cumulative(hotspots);
  double sum = 0.0;
  for (uint32_t k = 0; k < hotspots; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cumulative[k] = sum;
  }
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double u = rng.UniformDouble(0.0, sum);
    const uint32_t k = static_cast<uint32_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const auto& [ccx, ccy] = centers[std::min(k, hotspots - 1)];
    const float cx = ccx + static_cast<float>(rng.Normal()) * hotspot_sigma;
    const float cy = ccy + static_cast<float>(rng.Normal()) * hotspot_sigma;
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.push_back(ClampedRect(cx, cy, w, h, region,
                              base_id + static_cast<ObjectId>(i)));
  }
  return out;
}

std::vector<RectF> DiagonalBandRects(uint64_t n, const RectF& region,
                                     float spread, float mean_size,
                                     uint64_t seed, ObjectId base_id) {
  Random rng(seed);
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double t = rng.UniformDouble(0.0, 1.0);
    const float cx = region.xlo +
                     static_cast<float>(t) * (region.xhi - region.xlo) +
                     static_cast<float>(rng.Normal()) * spread;
    const float cy = region.ylo +
                     static_cast<float>(t) * (region.yhi - region.ylo) +
                     static_cast<float>(rng.Normal()) * spread;
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.push_back(ClampedRect(cx, cy, w, h, region,
                              base_id + static_cast<ObjectId>(i)));
  }
  return out;
}

std::vector<RectF> UniformWithCityRects(uint64_t n, const RectF& region,
                                        double city_fraction, float city_side,
                                        float mean_size, uint64_t seed,
                                        ObjectId base_id) {
  Random rng(seed);
  const float half = city_side / 2;
  const float city_cx = static_cast<float>(rng.UniformDouble(
      region.xlo + half, std::max<double>(region.xlo + half, region.xhi - half)));
  const float city_cy = static_cast<float>(rng.UniformDouble(
      region.ylo + half, std::max<double>(region.ylo + half, region.yhi - half)));
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    float cx, cy;
    if (rng.OneIn(city_fraction)) {
      cx = city_cx + static_cast<float>(rng.UniformDouble(-half, half));
      cy = city_cy + static_cast<float>(rng.UniformDouble(-half, half));
    } else {
      cx = static_cast<float>(rng.UniformDouble(region.xlo, region.xhi));
      cy = static_cast<float>(rng.UniformDouble(region.ylo, region.yhi));
    }
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.push_back(ClampedRect(cx, cy, w, h, region,
                              base_id + static_cast<ObjectId>(i)));
  }
  return out;
}

Segment SegmentForRect(const RectF& r) {
  // Fibonacci hash of the id picks the orientation; well-mixed so adjacent
  // ids alternate irregularly, deterministic so geometry is replayable.
  uint32_t h = r.id * 2654435761u;
  h ^= h >> 16;
  if ((h & 1u) == 0) {
    return Segment(r.xlo, r.ylo, r.xhi, r.yhi);  // Main diagonal.
  }
  return Segment(r.xlo, r.yhi, r.xhi, r.ylo);  // Anti-diagonal.
}

std::vector<Segment> SegmentsForRects(const std::vector<RectF>& rects) {
  std::vector<Segment> out;
  out.reserve(rects.size());
  for (const RectF& r : rects) out.push_back(SegmentForRect(r));
  return out;
}

}  // namespace sj
