#include "datagen/synthetic.h"

#include <algorithm>

namespace sj {

std::vector<RectF> UniformRects(uint64_t n, const RectF& region,
                                float mean_size, uint64_t seed,
                                ObjectId base_id) {
  Random rng(seed);
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const float cx =
        static_cast<float>(rng.UniformDouble(region.xlo, region.xhi));
    const float cy =
        static_cast<float>(rng.UniformDouble(region.ylo, region.yhi));
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    out.emplace_back(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2,
                     base_id + static_cast<ObjectId>(i));
  }
  return out;
}

std::vector<RectF> ClusteredRects(uint64_t n, const RectF& region,
                                  uint32_t clusters, float cluster_sigma,
                                  float mean_size, uint64_t seed,
                                  ObjectId base_id) {
  Random rng(seed);
  std::vector<std::pair<float, float>> centers;
  centers.reserve(clusters);
  for (uint32_t c = 0; c < clusters; ++c) {
    centers.emplace_back(
        static_cast<float>(rng.UniformDouble(region.xlo, region.xhi)),
        static_cast<float>(rng.UniformDouble(region.ylo, region.yhi)));
  }
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const auto& [ccx, ccy] = centers[rng.Uniform(clusters)];
    const float cx = ccx + static_cast<float>(rng.Normal()) * cluster_sigma;
    const float cy = ccy + static_cast<float>(rng.Normal()) * cluster_sigma;
    const float w =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    const float h =
        static_cast<float>(rng.UniformDouble(0.0, 2.0 * mean_size));
    RectF r(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2,
            base_id + static_cast<ObjectId>(i));
    r.xlo = std::clamp(r.xlo, region.xlo, region.xhi);
    r.xhi = std::clamp(r.xhi, region.xlo, region.xhi);
    r.ylo = std::clamp(r.ylo, region.ylo, region.yhi);
    r.yhi = std::clamp(r.yhi, region.ylo, region.yhi);
    out.push_back(r);
  }
  return out;
}

std::vector<RectF> DiagonalPoints(uint64_t n, const RectF& region,
                                  ObjectId base_id) {
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const float t = n > 1 ? static_cast<float>(i) / static_cast<float>(n - 1)
                          : 0.0f;
    const float x = region.xlo + t * (region.xhi - region.xlo);
    const float y = region.ylo + t * (region.yhi - region.ylo);
    out.emplace_back(x, y, x, y, base_id + static_cast<ObjectId>(i));
  }
  return out;
}

Segment SegmentForRect(const RectF& r) {
  // Fibonacci hash of the id picks the orientation; well-mixed so adjacent
  // ids alternate irregularly, deterministic so geometry is replayable.
  uint32_t h = r.id * 2654435761u;
  h ^= h >> 16;
  if ((h & 1u) == 0) {
    return Segment(r.xlo, r.ylo, r.xhi, r.yhi);  // Main diagonal.
  }
  return Segment(r.xlo, r.yhi, r.xhi, r.ylo);  // Anti-diagonal.
}

std::vector<Segment> SegmentsForRects(const std::vector<RectF>& rects) {
  std::vector<Segment> out;
  out.reserve(rects.size());
  for (const RectF& r : rects) out.push_back(SegmentForRect(r));
  return out;
}

}  // namespace sj
