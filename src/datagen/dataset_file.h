#ifndef USJ_DATAGEN_DATASET_FILE_H_
#define USJ_DATAGEN_DATASET_FILE_H_

#include <string>

#include "geometry/rect.h"
#include "io/pager.h"
#include "join/join_types.h"
#include "util/result.h"
#include "util/span.h"

namespace sj {

/// On-disk dataset format: page 0 holds a header (magic, version, record
/// count, extent, name), records follow in StreamWriter<RectF> layout from
/// page 1. Lets generated inputs persist across runs (FileBackend) while
/// remaining byte-identical on the memory backend.
struct DatasetFileHeader {
  static constexpr uint32_t kMagic = 0x534a4453;  // "SJDS"
  static constexpr uint32_t kVersion = 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t count = 0;
  float xlo = 0, ylo = 0, xhi = 0, yhi = 0;
  char name[64] = {};
};

/// Writes `rects` (any order) as a dataset on `pager` starting at its
/// current end; returns a ref to the stored records.
Result<DatasetRef> WriteDataset(Pager* pager, Span<const RectF> rects,
                                const std::string& name);

/// Opens a dataset previously written at page `header_page` (0 for a
/// dedicated file).
Result<DatasetRef> OpenDataset(Pager* pager, PageId header_page = 0);

}  // namespace sj

#endif  // USJ_DATAGEN_DATASET_FILE_H_
