#include "core/spatial_join.h"

#include <algorithm>

#include "refine/refine.h"
#include "sort/external_sort.h"
#include "util/timer.h"

namespace sj {

const char* ToString(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kAuto:
      return "AUTO";
    case JoinAlgorithm::kSSSJ:
      return "SSSJ";
    case JoinAlgorithm::kPBSM:
      return "PBSM";
    case JoinAlgorithm::kST:
      return "ST";
    case JoinAlgorithm::kPQ:
      return "PQ";
  }
  return "?";
}

uint64_t JoinInput::pages() const {
  if (indexed()) return rtree_->node_count();
  constexpr uint64_t per_page = kPageSize / sizeof(RectF);
  return (count() + per_page - 1) / per_page;
}

uint64_t SpatialJoiner::PreparedSource::index_pages_read() const {
  return pq != nullptr ? pq->pages_read() : 0;
}

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b) const {
  PlanDecision decision;
  const uint64_t total_pages = a.pages() + b.pages();

  // Estimate the fraction of each side a traversal touches: prefer
  // histogram mass, fall back to extent overlap area ratio.
  auto touched = [&](const JoinInput& self, const JoinInput& other,
                     const GridHistogram* h_self,
                     const GridHistogram* h_other) -> double {
    if (h_self != nullptr && h_other != nullptr) {
      return h_self->EstimateJoinFraction(*h_other);
    }
    const RectF se = self.extent(), oe = other.extent();
    if (!se.Intersects(oe)) return 0.0;
    const double self_area = se.Area();
    if (self_area <= 0.0) return 1.0;
    return std::min(1.0, se.IntersectionWith(oe).Area() / self_area);
  };
  const double frac_a = touched(a, b, hist_a, hist_b);
  const double frac_b = touched(b, a, hist_b, hist_a);

  // The refinement I/O term (§6.3 extended to the filter-and-refine
  // pipeline): every plan pays it equally, on top of its filter cost.
  if (options_.refine && a.features() != nullptr && b.features() != nullptr) {
    const uint64_t est_candidates = static_cast<uint64_t>(
        std::max(frac_a, frac_b) *
        static_cast<double>(std::min(a.count(), b.count())));
    decision.refine_cost_seconds = cost_model_.RefineSeconds(
        est_candidates, a.features()->data_pages(), b.features()->data_pages(),
        options_.refine_batch_pairs);
  }
  decision.stream_cost_seconds =
      cost_model_.SSSJSeconds(total_pages) + decision.refine_cost_seconds;

  if (!a.indexed() && !b.indexed()) {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale = "no index available; SSSJ streams both inputs";
    return decision;
  }
  // Pages a PQ plan reads: touched part of each index, whole stream sides
  // (which are also sorted: approximate with SSSJ-like handling per side).
  double index_cost = decision.refine_cost_seconds;
  double max_frac = 0.0;
  if (a.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_a * static_cast<double>(a.pages())));
    max_frac = std::max(max_frac, frac_a);
  } else {
    index_cost += cost_model_.SSSJSeconds(a.pages());
  }
  if (b.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_b * static_cast<double>(b.pages())));
    max_frac = std::max(max_frac, frac_b);
  } else {
    index_cost += cost_model_.SSSJSeconds(b.pages());
  }
  decision.touched_fraction = max_frac;
  decision.index_cost_seconds = index_cost;

  if (index_cost < decision.stream_cost_seconds) {
    decision.algorithm = JoinAlgorithm::kPQ;
    decision.rationale =
        "index traversal touches a small enough fraction (< break-even " +
        std::to_string(cost_model_.IndexBreakEvenFraction()) + ")";
  } else {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale =
        "random index reads would cost more than streaming; ignoring index";
  }
  return decision;
}

Result<DatasetRef> SpatialJoiner::ExtractLeaves(const RTree& tree) {
  auto out = MakeMemoryPager(disk_, "extract.leaves");
  StreamWriter<RectF> writer(out.get());
  const PageId first = writer.first_page();
  std::vector<RectF> all;
  SJ_RETURN_IF_ERROR(tree.CollectAll(&all));
  for (const RectF& r : all) writer.Append(r);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  DatasetRef ref;
  ref.range = StreamRange{out.get(), first, n};
  ref.extent = tree.bounding_box();
  // Leak the pager intentionally into the DatasetRef's lifetime: callers
  // of Join() only use the extraction within the call. To keep ownership
  // explicit we instead stash it on the joiner-scoped list.
  extracted_.push_back(std::move(out));
  return ref;
}

Result<SpatialJoiner::PreparedSource> SpatialJoiner::PrepareSource(
    const JoinInput& input, const RectF* other_extent,
    const GridHistogram* other_hist) {
  PreparedSource prepared;
  switch (input.kind()) {
    case JoinInput::Kind::kRTree: {
      RTreePQSource::Options options;
      if (other_extent != nullptr && other_extent->Valid()) {
        prepared.filter = std::make_unique<RectF>(*other_extent);
        options.filter = prepared.filter.get();
      }
      options.occupancy = other_hist;
      auto source =
          std::make_unique<RTreePQSource>(input.rtree(), options);
      prepared.pq = source.get();
      prepared.source = std::move(source);
      return prepared;
    }
    case JoinInput::Kind::kSortedStream: {
      prepared.source =
          std::make_unique<SortedStreamSource>(input.stream().range);
      return prepared;
    }
    case JoinInput::Kind::kStream: {
      prepared.scratch = MakeMemoryPager(disk_, "join.sort.runs");
      prepared.sorted = MakeMemoryPager(disk_, "join.sort.out");
      SJ_ASSIGN_OR_RETURN(
          StreamRange sorted,
          SortRectsByYLo(input.stream().range, prepared.scratch.get(),
                         prepared.sorted.get(), options_.memory_bytes / 2));
      prepared.source = std::make_unique<SortedStreamSource>(sorted);
      return prepared;
    }
  }
  return Status::Internal("unreachable join input kind");
}

Result<JoinStats> SpatialJoiner::Join(const JoinInput& a, const JoinInput& b,
                                      JoinSink* sink, JoinAlgorithm algorithm,
                                      const GridHistogram* hist_a,
                                      const GridHistogram* hist_b) {
  if (algorithm == JoinAlgorithm::kAuto) {
    algorithm = Plan(a, b, hist_a, hist_b).algorithm;
  }
  if (!options_.refine) {
    SJ_ASSIGN_OR_RETURN(JoinStats stats,
                        RunFilterJoin(a, b, sink, algorithm, hist_a, hist_b));
    stats.candidate_count = stats.output_count;
    return stats;
  }
  if (a.features() == nullptr || b.features() == nullptr) {
    return Status::FailedPrecondition(
        "options.refine requires FeatureStores on both inputs "
        "(JoinInput::WithFeatures)");
  }
  // Filter step: the MBR join buffers candidates; refinement resolves
  // them against exact geometry and forwards survivors to the caller.
  CollectingSink candidates;
  SJ_ASSIGN_OR_RETURN(
      JoinStats stats,
      RunFilterJoin(a, b, &candidates, algorithm, hist_a, hist_b));
  ThreadCpuTimer refine_cpu;
  SJ_ASSIGN_OR_RETURN(RefineStats refined,
                      RefinePairs(candidates.pairs(), *a.features(),
                                  *b.features(), options_, sink));
  stats.candidate_count = refined.candidates;
  stats.output_count = refined.results;
  stats.refine_pages_read = refined.pages_read;
  stats.disk += refined.disk;
  stats.host_cpu_seconds += refine_cpu.Elapsed() + refined.host_cpu_seconds;
  return stats;
}

Result<JoinStats> SpatialJoiner::RunFilterJoin(const JoinInput& a,
                                               const JoinInput& b,
                                               JoinSink* sink,
                                               JoinAlgorithm algorithm,
                                               const GridHistogram* hist_a,
                                               const GridHistogram* hist_b) {
  switch (algorithm) {
    case JoinAlgorithm::kSSSJ:
    case JoinAlgorithm::kPBSM: {
      DatasetRef ra, rb;
      if (a.indexed()) {
        SJ_ASSIGN_OR_RETURN(ra, ExtractLeaves(*a.rtree()));
      } else {
        ra = a.stream();
      }
      if (b.indexed()) {
        SJ_ASSIGN_OR_RETURN(rb, ExtractLeaves(*b.rtree()));
      } else {
        rb = b.stream();
      }
      if (algorithm == JoinAlgorithm::kSSSJ) {
        return SSSJJoin(ra, rb, disk_, options_, sink);
      }
      return PBSMJoin(ra, rb, disk_, options_, sink);
    }
    case JoinAlgorithm::kST: {
      if (!a.indexed() || !b.indexed()) {
        return Status::FailedPrecondition(
            "ST requires R-tree indexes on both inputs");
      }
      return STJoin(*a.rtree(), *b.rtree(), disk_, options_, sink);
    }
    case JoinAlgorithm::kPQ: {
      const RectF extent_a = a.extent();
      const RectF extent_b = b.extent();
      SJ_ASSIGN_OR_RETURN(PreparedSource sa,
                          PrepareSource(a, &extent_b, hist_b));
      SJ_ASSIGN_OR_RETURN(PreparedSource sb,
                          PrepareSource(b, &extent_a, hist_a));
      RectF extent = a.extent();
      extent.ExtendTo(b.extent());
      SJ_ASSIGN_OR_RETURN(
          JoinStats stats,
          PQJoinSources(sa.source.get(), sb.source.get(), extent, disk_,
                        options_, sink));
      stats.index_pages_read = sa.index_pages_read() + sb.index_pages_read();
      return stats;
    }
    case JoinAlgorithm::kAuto:
      break;
  }
  return Status::Internal("unreachable join algorithm");
}

Result<MultiwayStats> SpatialJoiner::MultiwayJoin(
    const std::vector<JoinInput>& inputs, TupleSink* sink) {
  if (inputs.size() < 2) {
    return Status::InvalidArgument("multiway join needs at least 2 inputs");
  }
  if (options_.refine) {
    std::vector<const FeatureStore*> stores;
    stores.reserve(inputs.size());
    for (const JoinInput& input : inputs) {
      if (input.features() == nullptr) {
        return Status::FailedPrecondition(
            "options.refine requires FeatureStores on all multiway inputs");
      }
      stores.push_back(input.features());
    }
    // Filter step without refinement, candidates buffered in memory.
    JoinOptions filter_options = options_;
    filter_options.refine = false;
    SpatialJoiner filter_joiner(disk_, filter_options);
    CollectingTupleSink candidates;
    SJ_ASSIGN_OR_RETURN(MultiwayStats stats,
                        filter_joiner.MultiwayJoin(inputs, &candidates));
    ThreadCpuTimer refine_cpu;
    SJ_ASSIGN_OR_RETURN(
        RefineStats refined,
        RefineTuples(candidates.tuples(), stores, options_, sink));
    stats.candidate_count = refined.candidates;
    stats.output_count = refined.results;
    stats.refine_pages_read = refined.pages_read;
    stats.disk += refined.disk;
    stats.host_cpu_seconds += refine_cpu.Elapsed() + refined.host_cpu_seconds;
    return stats;
  }
  std::vector<PreparedSource> prepared;
  prepared.reserve(inputs.size());
  RectF extent = RectF::Empty();
  for (const JoinInput& input : inputs) {
    SJ_ASSIGN_OR_RETURN(PreparedSource p, PrepareSource(input));
    prepared.push_back(std::move(p));
    extent.ExtendTo(input.extent());
  }
  if (options_.num_threads > 1) {
    // Parallel path: materialize every prepared source as a y-sorted
    // stream (index traversals included), then strip-partition the
    // domain and join strips on the worker pool. The serial chain reads
    // its sources lazily inside its own measurement, so the
    // materialization pass here is measured too and folded into the
    // returned stats — the counters must cover exactly the algorithm's
    // own work either way.
    JoinMeasurement materialize_measurement(disk_);
    std::vector<std::unique_ptr<Pager>> stream_pagers;
    std::vector<DatasetRef> streams;
    stream_pagers.reserve(prepared.size());
    streams.reserve(prepared.size());
    for (size_t i = 0; i < prepared.size(); ++i) {
      auto pager = MakeMemoryPager(
          disk_, "multiway.materialized." + std::to_string(i));
      StreamWriter<RectF> writer(pager.get());
      const PageId first = writer.first_page();
      while (std::optional<RectF> r = prepared[i].source->Next()) {
        writer.Append(*r);
      }
      SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
      DatasetRef ref;
      ref.range = StreamRange{pager.get(), first, n};
      ref.extent = inputs[i].extent();
      streams.push_back(ref);
      stream_pagers.push_back(std::move(pager));
    }
    const JoinStats materialize = materialize_measurement.Finish();
    SJ_ASSIGN_OR_RETURN(
        MultiwayStats stats,
        MultiwayJoinStreams(streams, extent, disk_, options_, sink));
    stats.disk += materialize.disk;
    stats.host_cpu_seconds += materialize.host_cpu_seconds;
    stats.candidate_count = stats.output_count;
    return stats;
  }
  std::vector<SortedRectSource*> sources;
  sources.reserve(prepared.size());
  for (PreparedSource& p : prepared) sources.push_back(p.source.get());
  SJ_ASSIGN_OR_RETURN(
      MultiwayStats stats,
      MultiwayJoinSources(sources, extent, disk_, options_, sink));
  stats.candidate_count = stats.output_count;
  return stats;
}

}  // namespace sj
