#include "core/spatial_join.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/join_query.h"
#include "join/partition_plan.h"
#include "sort/sort_config.h"

namespace sj {

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b) const {
  return Plan(a, b, hist_a, hist_b, options_);
}

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b,
                                 const JoinOptions& options) const {
  return Plan(a, b, hist_a, hist_b, options, /*exact_pbsm_preplan=*/true);
}

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b,
                                 const JoinOptions& options,
                                 bool exact_pbsm_preplan) const {
  PlanDecision decision;
  const uint64_t total_pages = a.pages() + b.pages();
  const uint64_t total_bytes_est = (a.count() + b.count()) * sizeof(RectF);

  // Memory planning first: every cost below is priced at the *granted*
  // memory, not the raw knob — under a tight budget the streaming plans
  // pay extra external-sort merge passes, which shifts the kAuto
  // streaming-vs-index crossover.
  const MemoryPlan sssj_memory =
      PlanJoinMemory(JoinAlgorithm::kSSSJ, options, total_bytes_est);
  const size_t sort_grant = sssj_memory.GrantFor(grants::kSortRuns);

  // Estimate the fraction of each side a traversal touches: prefer
  // histogram mass, fall back to extent overlap area ratio.
  auto touched = [&](const JoinInput& self, const JoinInput& other,
                     const GridHistogram* h_self,
                     const GridHistogram* h_other) -> double {
    if (h_self != nullptr && h_other != nullptr) {
      return h_self->EstimateJoinFraction(*h_other);
    }
    const RectF se = self.extent(), oe = other.extent();
    if (!se.Intersects(oe)) return 0.0;
    const double self_area = se.Area();
    if (self_area <= 0.0) return 1.0;
    return std::min(1.0, se.IntersectionWith(oe).Area() / self_area);
  };
  const double frac_a = touched(a, b, hist_a, hist_b);
  const double frac_b = touched(b, a, hist_b, hist_a);

  // The refinement I/O term (§6.3 extended to the filter-and-refine
  // pipeline): every plan pays it equally, on top of its filter cost.
  if (options.refine && a.features() != nullptr && b.features() != nullptr) {
    const uint64_t est_candidates = static_cast<uint64_t>(
        std::max(frac_a, frac_b) *
        static_cast<double>(std::min(a.count(), b.count())));
    decision.refine_cost_seconds = cost_model_.RefineSeconds(
        est_candidates, a.features()->data_pages(), b.features()->data_pages(),
        options.refine_batch_pairs);
  }
  // Sort CPU is the one term that scales down with worker threads (run
  // formation parallelizes), so with threads the streaming plans get
  // cheaper relative to the index traversals.
  const uint32_t sort_threads =
      options.sort_parallel_runs && !SortSerialOnly()
          ? std::max<uint32_t>(1, options.num_threads)
          : 1;
  decision.sort_cpu_seconds = cost_model_.SortCpuSeconds(
      a.count() + b.count(), sort_grant, sort_threads);
  decision.stream_cost_seconds =
      cost_model_.SSSJSeconds(total_pages, sort_grant) +
      decision.sort_cpu_seconds + decision.refine_cost_seconds;

  // PBSM partitioning pre-plan, so Explain() reports the grid execution
  // would use. The partition-count formula is shared with PBSMJoin; when
  // the caller attached histograms the adaptive planner actually runs
  // (pure CPU) and the reported grid is exact, otherwise the base grid
  // and formula stand in. Replication and the histogram-build pass are
  // priced into pbsm_cost_seconds; the pass is free when both
  // histograms are attached.
  {
    const uint64_t total_bytes = (a.count() + b.count()) * sizeof(RectF);
    decision.pbsm_adaptive = options.adaptive_partitioning;
    // The adaptive planner packs to its own (higher) fill target; the
    // fixed path keeps the paper's 0.8 slack.
    decision.pbsm_partitions =
        options.adaptive_partitioning
            ? PbsmPartitionCount(total_bytes, options.memory_bytes,
                                 PartitionPlannerConfig().partition_fill)
            : PbsmPartitionCount(total_bytes, options.memory_bytes);
    if (options.adaptive_partitioning) {
      decision.pbsm_tiles_per_axis =
          AdaptiveBaseTilesPerAxis(decision.pbsm_partitions);
      if (exact_pbsm_preplan && hist_a != nullptr && hist_b != nullptr) {
        RectF extent = a.extent();
        extent.ExtendTo(b.extent());
        PartitionPlannerConfig config;
        config.memory_bytes = options.memory_bytes;
        config.max_resolution = std::max(config.max_resolution,
                                         options.pbsm_histogram_resolution);
        const auto plan =
            PartitionPlanner::Plan(extent, *hist_a, *hist_b, config);
        decision.pbsm_tiles_per_axis = plan->tiles_x();
        decision.pbsm_partitions = plan->partitions();
        decision.pbsm_leaf_tiles = plan->leaf_tiles();
      }
      if (hist_a == nullptr || hist_b == nullptr) {
        // The executor's on-the-fly build samples one block in
        // kPbsmHistogramSampleOneInBlocks; price the pass it runs.
        decision.histogram_build_seconds = cost_model_.HistogramPassSeconds(
            (total_pages + kPbsmHistogramSampleOneInBlocks - 1) /
            kPbsmHistogramSampleOneInBlocks);
      }
    } else {
      decision.pbsm_tiles_per_axis = options.pbsm_tiles_per_axis;
    }
    // Replication at the *tile* grid's resolution: a histogram measures
    // cells-per-object at its own (usually finer) cell width, so the
    // per-axis object size in cells is rescaled from histogram cells to
    // tiles before squaring (isotropy approximation). Without histograms
    // the estimate stays at 1 (small objects barely replicate).
    double replication = 1.0;
    if (hist_a != nullptr && hist_b != nullptr) {
      auto at_tiles = [&](const GridHistogram& h) {
        const double size_in_cells =
            std::sqrt(std::max(1.0, h.AverageCellsPerObject())) - 1.0;
        const double per_axis =
            1.0 + size_in_cells * static_cast<double>(
                                      decision.pbsm_tiles_per_axis) /
                      static_cast<double>(std::max(1u, h.nx()));
        return per_axis * per_axis;
      };
      replication = 0.5 * (at_tiles(*hist_a) + at_tiles(*hist_b));
    }
    decision.pbsm_cost_seconds = cost_model_.PBSMSeconds(total_pages,
                                                         replication) +
                                 decision.histogram_build_seconds +
                                 decision.refine_cost_seconds;
  }

  // The chosen algorithm's grant breakdown, reported by Explain() and
  // mirrored by the executors' live grants.
  auto finalize = [&](PlanDecision d) {
    d.memory = PlanJoinMemory(d.algorithm, options, total_bytes_est);
    return d;
  };

  if (!a.indexed() && !b.indexed()) {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale = "no index available; SSSJ streams both inputs";
    return finalize(decision);
  }
  // Pages a PQ plan reads: touched part of each index, whole stream sides
  // (which are also sorted: approximate with SSSJ-like handling per side,
  // again at the granted sort memory).
  double index_cost = decision.refine_cost_seconds;
  double max_frac = 0.0;
  if (a.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_a * static_cast<double>(a.pages())));
    max_frac = std::max(max_frac, frac_a);
  } else {
    index_cost += cost_model_.SSSJSeconds(a.pages(), sort_grant) +
                  cost_model_.SortCpuSeconds(a.count(), sort_grant,
                                             sort_threads);
  }
  if (b.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_b * static_cast<double>(b.pages())));
    max_frac = std::max(max_frac, frac_b);
  } else {
    index_cost += cost_model_.SSSJSeconds(b.pages(), sort_grant) +
                  cost_model_.SortCpuSeconds(b.count(), sort_grant,
                                             sort_threads);
  }
  decision.touched_fraction = max_frac;
  decision.index_cost_seconds = index_cost;

  if (index_cost < decision.stream_cost_seconds) {
    decision.algorithm = JoinAlgorithm::kPQ;
    decision.rationale =
        "index traversal touches a small enough fraction (< break-even " +
        std::to_string(cost_model_.IndexBreakEvenFraction()) + ")";
  } else {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale =
        "random index reads would cost more than streaming; ignoring index";
  }
  return finalize(decision);
}

Result<JoinStats> SpatialJoiner::Join(const JoinInput& a, const JoinInput& b,
                                      JoinSink* sink, JoinAlgorithm algorithm,
                                      const GridHistogram* hist_a,
                                      const GridHistogram* hist_b) {
  return JoinQuery(*this)
      .Input(a)
      .Input(b)
      .WithHistogram(0, hist_a)
      .WithHistogram(1, hist_b)
      .Algorithm(algorithm)
      .Run(sink);
}

Result<MultiwayStats> SpatialJoiner::MultiwayJoin(
    const std::vector<JoinInput>& inputs, TupleSink* sink) {
  JoinQuery query(*this);
  for (const JoinInput& input : inputs) query.Input(input);
  return query.Run(sink);
}

}  // namespace sj
