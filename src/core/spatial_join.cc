#include "core/spatial_join.h"

#include <algorithm>
#include <string>

#include "core/join_query.h"

namespace sj {

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b) const {
  return Plan(a, b, hist_a, hist_b, options_);
}

PlanDecision SpatialJoiner::Plan(const JoinInput& a, const JoinInput& b,
                                 const GridHistogram* hist_a,
                                 const GridHistogram* hist_b,
                                 const JoinOptions& options) const {
  PlanDecision decision;
  const uint64_t total_pages = a.pages() + b.pages();

  // Estimate the fraction of each side a traversal touches: prefer
  // histogram mass, fall back to extent overlap area ratio.
  auto touched = [&](const JoinInput& self, const JoinInput& other,
                     const GridHistogram* h_self,
                     const GridHistogram* h_other) -> double {
    if (h_self != nullptr && h_other != nullptr) {
      return h_self->EstimateJoinFraction(*h_other);
    }
    const RectF se = self.extent(), oe = other.extent();
    if (!se.Intersects(oe)) return 0.0;
    const double self_area = se.Area();
    if (self_area <= 0.0) return 1.0;
    return std::min(1.0, se.IntersectionWith(oe).Area() / self_area);
  };
  const double frac_a = touched(a, b, hist_a, hist_b);
  const double frac_b = touched(b, a, hist_b, hist_a);

  // The refinement I/O term (§6.3 extended to the filter-and-refine
  // pipeline): every plan pays it equally, on top of its filter cost.
  if (options.refine && a.features() != nullptr && b.features() != nullptr) {
    const uint64_t est_candidates = static_cast<uint64_t>(
        std::max(frac_a, frac_b) *
        static_cast<double>(std::min(a.count(), b.count())));
    decision.refine_cost_seconds = cost_model_.RefineSeconds(
        est_candidates, a.features()->data_pages(), b.features()->data_pages(),
        options.refine_batch_pairs);
  }
  decision.stream_cost_seconds =
      cost_model_.SSSJSeconds(total_pages) + decision.refine_cost_seconds;

  if (!a.indexed() && !b.indexed()) {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale = "no index available; SSSJ streams both inputs";
    return decision;
  }
  // Pages a PQ plan reads: touched part of each index, whole stream sides
  // (which are also sorted: approximate with SSSJ-like handling per side).
  double index_cost = decision.refine_cost_seconds;
  double max_frac = 0.0;
  if (a.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_a * static_cast<double>(a.pages())));
    max_frac = std::max(max_frac, frac_a);
  } else {
    index_cost += cost_model_.SSSJSeconds(a.pages());
  }
  if (b.indexed()) {
    index_cost += cost_model_.PQSeconds(
        static_cast<uint64_t>(frac_b * static_cast<double>(b.pages())));
    max_frac = std::max(max_frac, frac_b);
  } else {
    index_cost += cost_model_.SSSJSeconds(b.pages());
  }
  decision.touched_fraction = max_frac;
  decision.index_cost_seconds = index_cost;

  if (index_cost < decision.stream_cost_seconds) {
    decision.algorithm = JoinAlgorithm::kPQ;
    decision.rationale =
        "index traversal touches a small enough fraction (< break-even " +
        std::to_string(cost_model_.IndexBreakEvenFraction()) + ")";
  } else {
    decision.algorithm = JoinAlgorithm::kSSSJ;
    decision.rationale =
        "random index reads would cost more than streaming; ignoring index";
  }
  return decision;
}

Result<JoinStats> SpatialJoiner::Join(const JoinInput& a, const JoinInput& b,
                                      JoinSink* sink, JoinAlgorithm algorithm,
                                      const GridHistogram* hist_a,
                                      const GridHistogram* hist_b) {
  return JoinQuery(*this)
      .Input(a)
      .Input(b)
      .WithHistogram(0, hist_a)
      .WithHistogram(1, hist_b)
      .Algorithm(algorithm)
      .Run(sink);
}

Result<MultiwayStats> SpatialJoiner::MultiwayJoin(
    const std::vector<JoinInput>& inputs, TupleSink* sink) {
  JoinQuery query(*this);
  for (const JoinInput& input : inputs) query.Input(input);
  return query.Run(sink);
}

}  // namespace sj
