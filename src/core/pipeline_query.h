#ifndef USJ_CORE_PIPELINE_QUERY_H_
#define USJ_CORE_PIPELINE_QUERY_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/spatial_join.h"
#include "join/executor.h"
#include "join/predicate.h"
#include "op/operators.h"
#include "op/row.h"

namespace sj {

/// One node of a costed pipeline plan (PipelineQuery::Explain). Nodes are
/// listed root (sink-most operator) first; `depth` gives the indentation
/// of the printed tree (source scans are the deepest nodes).
struct OperatorPlan {
  std::string name;    ///< e.g. "TopKByDistance"
  std::string detail;  ///< e.g. "k=8 from (0.5, 0.5)"
  int depth = 0;
  double est_rows = 0.0;
  double cost_seconds = 0.0;
  /// Bytes the operator plans to hold under its arbiter grant (0 for
  /// constant-memory operators).
  size_t planned_bytes = 0;
};

/// The planner's verdict over a whole operator tree: every operator
/// annotated with estimated rows, modeled cost, and planned memory, plus
/// the embedded join decision when the pipeline's source is a spatial
/// join. The pipeline analog of PlanDecision.
struct PipelinePlan {
  std::vector<OperatorPlan> operators;
  /// The join planner's decision (meaningful when has_join).
  PlanDecision join;
  bool has_join = false;
  double total_cost_seconds = 0.0;
  /// The merged memory shape: the join's planned grants plus the
  /// operators' own (op.*) grants, under one budget.
  MemoryPlan memory;

  /// The costed operator tree, root first, one line per operator:
  ///
  ///   TopKByDistance(k=8 from (0.5, 0.5))  rows~8 cost~0s
  ///   └─ AggregateByCell(count 16x16)  rows~256 cost~0.01s mem 2 KB
  ///      └─ SpatialJoin[SSSJ]  rows~1200 cost~0.8s
  ///         ├─ WindowScan(input 0)  rows~4000 cost~0.2s
  ///         └─ WindowScan(input 1)  rows~3500 cost~0.2s
  std::string Describe() const;

  /// Structured form: "op.<i>.name" / "op.<i>.est_rows" /
  /// "op.<i>.cost_seconds" / "op.<i>.planned_bytes" per node (i in root-
  /// first order), "total_cost_seconds", the memory plan, and the join
  /// decision's pairs prefixed "join." when present.
  std::vector<std::pair<std::string, std::string>> ToKeyValues() const;
};

std::ostream& operator<<(std::ostream& os, const PipelinePlan& plan);

/// Everything measured about one pipeline execution — the pipeline analog
/// of JoinStats, with per-operator row/page counters on top.
struct PipelineStats {
  /// Rows delivered to the caller's RowSink.
  uint64_t output_count = 0;
  double host_cpu_seconds = 0.0;
  /// Whole-pipeline I/O: the query's DiskModel delta (scans, join,
  /// including parallel shard merges) plus the pipeline's own scratch
  /// traffic (rect maps, aggregation spills).
  DiskStats disk;
  /// Join-source measurements (0 / kAuto for scan-source pipelines).
  uint64_t candidate_count = 0;
  uint64_t refine_pages_read = 0;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kAuto;
  /// Memory governance: one arbiter spans the join and every operator.
  size_t peak_memory_bytes = 0;
  std::vector<MemoryComponentStats> memory_components;
  /// Per-operator counters, source first.
  std::vector<OperatorStats> operators;

  double ObservedSeconds(const MachineModel& m) const {
    return disk.io_seconds + host_cpu_seconds * m.cpu_slowdown;
  }

  /// One human-readable line of the machine-independent counters.
  std::string Describe() const;
  /// Describe() plus the modeled time under machine `m`.
  std::string Describe(const MachineModel& m) const;
  /// Structured form, same convention as JoinStats::ToKeyValues().
  std::vector<std::pair<std::string, std::string>> ToKeyValues() const;
};

std::ostream& operator<<(std::ostream& os, const PipelineStats& stats);

/// A composable physical-operator pipeline against a SpatialJoiner — the
/// sibling of JoinQuery for queries that are more than one join: spatial
/// selections, windowed overlays, density heatmaps, nearest-k post-
/// processing, in one governed execution.
///
///   SpatialJoiner joiner(&disk, options);
///   CollectingRowSink heatmap;
///   auto stats = PipelineQuery(joiner)
///                    .Input(JoinInput::FromStream(roads))
///                    .Input(JoinInput::FromRTree(&hydro_tree))
///                    .Window(city)                   // WindowScan per input
///                    .WithHistogram(0, &roads_hist)  // scan + planner pruning
///                    .Filter([](const PipeRow& r) { return r.rect.Area() > 0; })
///                    .AggregateByCell(AggregateMode::kCount, 64, 64)
///                    .TopKByDistance(8, cx, cy)
///                    .Run(&heatmap);
///
/// Source: one Input() is a (window) scan; two run the pairwise spatial
/// join (any algorithm, any predicate, refinement included); three or
/// more run the k-way chain. Join outputs become geometry rows via
/// grant-governed RectResolvers (rect = the members' contact box).
/// Downstream operators apply in call order. The pipeline draws every
/// grant — the join's and the operators' — from one MemoryArbiter, prices
/// the whole tree via the CostModel's per-operator terms (Explain), and
/// runs standalone or through a SpatialService sharing the global budget,
/// buffer pool, and worker pool. Rebuildable and single-shot state-free
/// like JoinQuery: Run() may be called repeatedly.
class PipelineQuery {
 public:
  explicit PipelineQuery(SpatialJoiner& joiner)
      : joiner_(&joiner), options_(joiner.options()) {}

  /// Appends a source input (position = order of the Input calls).
  PipelineQuery& Input(const JoinInput& input) {
    inputs_.push_back(input);
    return *this;
  }

  /// Restricts the pipeline to records intersecting `window`: a scan
  /// source emits only matching records; a join source window-scans every
  /// input first (the windowed-overlay plan). Histogram-pruned per input.
  PipelineQuery& Window(const RectF& window) {
    window_ = window;
    has_window_ = true;
    return *this;
  }

  /// Attaches an occupancy histogram to input `index` (planner estimates
  /// and scan/traversal pruning; must outlive Run()).
  PipelineQuery& WithHistogram(size_t index, const GridHistogram* histogram) {
    if (histogram != nullptr) histograms_.emplace_back(index, histogram);
    return *this;
  }

  /// Attaches exact geometry to input `index` (required by Refine(true);
  /// must outlive Run()).
  PipelineQuery& WithFeatures(size_t index, const FeatureStore* store) {
    features_.emplace_back(index, store);
    return *this;
  }

  /// Join predicate (join sources only; defaults to kIntersects).
  PipelineQuery& Predicate(sj::Predicate kind, double epsilon = 0.0) {
    predicate_.kind = kind;
    predicate_.epsilon = epsilon;
    return *this;
  }

  /// Forces the join's filter algorithm (default kAuto).
  PipelineQuery& Algorithm(JoinAlgorithm algorithm) {
    algorithm_ = algorithm;
    return *this;
  }

  // Downstream operators, applied in call order.

  /// Keeps rows satisfying `predicate`; `label` names it in Explain.
  PipelineQuery& Filter(FilterOp::RowPredicate predicate,
                        std::string label = "pred");

  /// Rewrites each row (weights, id arity).
  PipelineQuery& Project(ProjectOp::RowTransform transform,
                         std::string label = "fn");

  /// Aggregates rows into an nx x ny grid (density heatmap). With an
  /// invalid `extent` (the default) the grid covers the pipeline's data:
  /// the window when one is set, else the combined input extent.
  PipelineQuery& AggregateByCell(AggregateMode mode, uint32_t nx, uint32_t ny,
                                 const RectF& extent = RectF::Empty());

  /// Keeps the k rows nearest to (qx, qy), emitted in ascending distance.
  PipelineQuery& TopKByDistance(size_t k, float qx, float qy);

  // Per-query JoinOptions overrides (the subset pipelines commonly need;
  // mutable_options() covers every knob).
  PipelineQuery& Refine(bool on) { return Mutate([&](JoinOptions& o) { o.refine = on; }); }
  PipelineQuery& Threads(uint32_t n) { return Mutate([&](JoinOptions& o) { o.num_threads = n; }); }
  PipelineQuery& MemoryBytes(size_t bytes) { return Mutate([&](JoinOptions& o) { o.memory_bytes = bytes; }); }
  PipelineQuery& Storage(std::shared_ptr<StorageFactory> factory) { return Mutate([&](JoinOptions& o) { o.storage = std::move(factory); }); }
  PipelineQuery& Prefetch(bool on) { return Mutate([&](JoinOptions& o) { o.prefetch = on; }); }
  /// Parallel run formation in the pipeline's external sorts; identical
  /// output and modeled io_seconds at any thread count.
  PipelineQuery& SortParallelRuns(bool on) { return Mutate([&](JoinOptions& o) { o.sort_parallel_runs = on; }); }
  /// External-merge fan-in (0 = auto; see JoinOptions::merge_fan_in).
  PipelineQuery& MergeFanIn(uint32_t fan_in) { return Mutate([&](JoinOptions& o) { o.merge_fan_in = fan_in; }); }
  /// Write-behind run output: like Prefetch, moves io_wall_seconds only.
  PipelineQuery& SortWriteBehind(bool on) { return Mutate([&](JoinOptions& o) { o.sort_write_behind = on; }); }

  JoinOptions& mutable_options() { return options_; }
  const JoinOptions& options() const { return options_; }

  /// Service plumbing: execute against an externally carved arbiter (see
  /// JoinQuery::UseArbiter).
  PipelineQuery& UseArbiter(std::shared_ptr<MemoryArbiter> arbiter) {
    arbiter_override_ = std::move(arbiter);
    return *this;
  }

  /// Compiles the pipeline and returns the costed operator tree without
  /// executing anything (EXPLAIN).
  Result<PipelinePlan> Explain();

  /// Runs the pipeline, streaming output rows into `sink`. Like
  /// JoinQuery::Run, this wraps an inline single-query SpatialService, so
  /// standalone and multi-tenant submissions are one code path.
  Result<PipelineStats> Run(RowSink* sink);

 private:
  friend class SpatialService;

  /// One logical downstream operator, as described by the builder.
  struct OpSpec {
    enum class Kind { kFilter, kProject, kAggregate, kTopK };
    Kind kind = Kind::kFilter;
    FilterOp::RowPredicate filter;
    ProjectOp::RowTransform project;
    std::string label;
    AggregateMode agg_mode = AggregateMode::kCount;
    RectF agg_extent = RectF::Empty();
    uint32_t agg_nx = 0;
    uint32_t agg_ny = 0;
    size_t topk_k = 0;
    float topk_x = 0.0f;
    float topk_y = 0.0f;
  };

  /// The execution body (validation, source materialization, operator
  /// chain), shared by the Run() wrapper and the service's workers.
  Result<PipelineStats> RunDirect(RowSink* sink);

  Status Validate() const;
  /// The grid extent an AggregateByCell spec resolves to.
  RectF ResolveAggregateExtent(const OpSpec& spec) const;
  /// Instantiates the downstream chain (source-first order).
  std::vector<std::unique_ptr<PipelineOperator>> BuildChain() const;

  template <typename Fn>
  PipelineQuery& Mutate(Fn&& fn) {
    fn(options_);
    return *this;
  }

  const GridHistogram* HistogramFor(size_t index) const;
  const FeatureStore* FeaturesFor(size_t index) const;

  SpatialJoiner* joiner_;
  std::vector<JoinInput> inputs_;
  std::vector<std::pair<size_t, const GridHistogram*>> histograms_;
  std::vector<std::pair<size_t, const FeatureStore*>> features_;
  RectF window_ = RectF::Empty();
  bool has_window_ = false;
  PredicateSpec predicate_;
  JoinAlgorithm algorithm_ = JoinAlgorithm::kAuto;
  JoinOptions options_;
  std::vector<OpSpec> ops_;
  std::shared_ptr<MemoryArbiter> arbiter_override_;
};

}  // namespace sj

#endif  // USJ_CORE_PIPELINE_QUERY_H_
