#ifndef USJ_CORE_COST_MODEL_H_
#define USJ_CORE_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "geometry/rect.h"
#include "io/disk_model.h"
#include "io/machine_model.h"
#include "sort/run_layout.h"

namespace sj {

/// The paper's §6.3 cost model: price a plan in *sequential-read
/// equivalents* so that the sequential/random asymmetry of real disks
/// drives the indexed-vs-non-indexed decision.
///
/// For a one-disk configuration, SSSJ moves each input 3 times reading and
/// 2 times writing, all streamed: 3n + (2n * write_factor) sequential page
/// reads (= 6n with the paper's write_factor 1.5). A PQ traversal reads
/// each touched index page with a random access costing
/// RandomToSequentialReadRatio() sequential reads (~10-11x on the paper's
/// disks). Hence the paper's rule: the index pays off only when the join
/// touches less than ~60 % of it.
class CostModel {
 public:
  explicit CostModel(MachineModel machine) : machine_(machine) {}

  /// Sequential-read equivalents of the passes a streaming sort-and-sweep
  /// makes over each input page: 3 reads plus 2 writes, writes costing
  /// `write_factor` reads. Shared by SSSJSeconds and
  /// IndexBreakEvenFraction — the paper's break-even rule is exactly
  /// "streaming passes vs. the random/sequential read ratio", so the two
  /// must always use the same constant.
  double StreamingPassFactor() const {
    return 3.0 + 2.0 * machine_.write_factor;
  }

  /// Modeled seconds for SSSJ over `pages` total input pages, assuming
  /// the single merge pass of a comfortable memory budget.
  double SSSJSeconds(uint64_t pages) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    return static_cast<double>(pages) * StreamingPassFactor() * seq;
  }

  /// SSSJ priced at its *granted* sort memory: under a tight budget the
  /// external sort needs extra merge passes (each one more read plus one
  /// more write over the data), which is what shifts the kAuto
  /// streaming-vs-index crossover when memory is scarce. With one merge
  /// pass this equals SSSJSeconds(pages).
  double SSSJSeconds(uint64_t pages, size_t sort_memory_bytes) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    const double extra =
        static_cast<double>(ExtraMergePasses(pages, sort_memory_bytes)) *
        (1.0 + machine_.write_factor);
    return static_cast<double>(pages) * (StreamingPassFactor() + extra) * seq;
  }

  /// Merge passes beyond the first that sorting `pages` of RectF records
  /// within `sort_memory_bytes` requires (0 in the comfortable regime).
  uint64_t ExtraMergePasses(uint64_t pages, size_t sort_memory_bytes) const {
    const RunLayout layout = RunLayout::For(sort_memory_bytes, sizeof(RectF));
    const uint64_t run_bytes = layout.run_records * sizeof(RectF);
    uint64_t runs = (pages * kPageSize + run_bytes - 1) / run_bytes;
    uint64_t passes = 0;
    while (runs > 1) {
      runs = (runs + layout.fan_in - 1) / layout.fan_in;
      passes++;
    }
    return passes > 0 ? passes - 1 : 0;
  }

  /// Modeled seconds for one sequential scan over `pages` pages — the
  /// histogram-build pass adaptive PBSM partitioning adds per side that
  /// arrives without an attached GridHistogram.
  double HistogramPassSeconds(uint64_t pages) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    return static_cast<double>(pages) * seq;
  }

  /// Modeled seconds for PBSM over `pages` total input pages with an
  /// average replication factor of `replication` (copies of each page
  /// landing in partition files): one read pass to distribute, the
  /// replicated write, and the replicated read of the partition files —
  /// all streamed. Overflowed partitions add external-sort passes on
  /// top; the planner treats overflow as the exception the adaptive
  /// partitioner makes it.
  double PBSMSeconds(uint64_t pages, double replication) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    const double passes =
        1.0 + std::max(1.0, replication) * (1.0 + machine_.write_factor);
    return static_cast<double>(pages) * passes * seq;
  }

  /// Modeled seconds for a PQ traversal touching `index_pages` pages.
  double PQSeconds(uint64_t index_pages) const {
    const double rand =
        (machine_.avg_access_ms + machine_.PageTransferMs(kPageSize)) * 1e-3;
    return static_cast<double>(index_pages) * rand;
  }

  /// The break-even fraction f*: using an index that the join touches a
  /// fraction f of is cheaper than streaming-and-sorting iff f < f*.
  /// f* = (3 + 2w) / (random/sequential ratio); ~0.55-0.6 on the paper's
  /// Machine 1, matching the paper's "less than 60 % of the leaf nodes".
  double IndexBreakEvenFraction() const {
    return StreamingPassFactor() /
           machine_.RandomToSequentialReadRatio(kPageSize);
  }

  /// Modeled seconds for the refinement step over `candidates` filter
  /// pairs against feature stores of `pages_a` / `pages_b` geometry
  /// pages, refined in batches of `batch_pairs`. A batch reads each
  /// needed page once but batches do not share fetches, so per side the
  /// touched pages are bounded by one page per candidate *and* by one
  /// full store scan per batch; each fetch is priced as a random
  /// single-page read (the candidates of one batch cluster in y, not on
  /// disk pages).
  double RefineSeconds(uint64_t candidates, uint64_t pages_a,
                       uint64_t pages_b, uint32_t batch_pairs) const {
    const double rand =
        (machine_.avg_access_ms + machine_.PageTransferMs(kPageSize)) * 1e-3;
    const uint64_t batch = std::max<uint64_t>(1, batch_pairs);
    const uint64_t nbatches = (candidates + batch - 1) / batch;
    const uint64_t touched = std::min(candidates, nbatches * pages_a) +
                             std::min(candidates, nbatches * pages_b);
    return static_cast<double>(touched) * rand;
  }

  /// True when traversing `touched_fraction` of an index beats streaming.
  bool PreferIndex(double touched_fraction) const {
    return touched_fraction < IndexBreakEvenFraction();
  }

  // Sweep-kernel CPU terms. The sweep inner loop (interval-structure
  // scans, calibrated by bench_sweep_structures on the TIGER ladder)
  // processes active-set lanes at roughly these per-lane costs; the
  // vectorized SoA kernels (sweep/sweep_kernels.h) stream contiguous
  // lanes several times faster than the scalar walk. The ratio, not the
  // absolute numbers, is what matters to planning: it tells the planner
  // how much of a join is CPU-bound sweep work vs. modeled I/O.

  /// Scalar fallback: one branchy compare chain per 20-byte lane.
  static constexpr double kSweepScalarNsPerLane = 1.5;
  /// Vectorized SoA kernels: 8-lane AVX2 / 4-lane SSE2-NEON blocks.
  static constexpr double kSweepVectorNsPerLane = 0.4;

  /// Modeled seconds of sweep CPU for `lanes` total active-set lanes
  /// scanned (summed over every QueryAndExpire pass), under the given
  /// kernel mode. Monotone in lanes; vectorized is strictly cheaper.
  double SweepCpuSeconds(uint64_t lanes, bool vectorized) const {
    const double ns =
        vectorized ? kSweepVectorNsPerLane : kSweepScalarNsPerLane;
    return static_cast<double>(lanes) * ns * 1e-9;
  }

  // External-sort CPU terms. Sorting is the one join phase whose CPU
  // scales down with worker threads (run formation parallelizes; the
  // merge stays on the coordinator), so the planner prices it
  // separately: with threads, sort-heavy streaming plans get cheaper and
  // the kAuto streaming-vs-index crossover shifts toward SSSJ.

  /// Comparison cost of the sort pipeline, calibrated against
  /// bench_external_sort on the TIGER ladder: one branchy compare plus
  /// the record move it orders.
  static constexpr double kSortNsPerCompare = 4.0;

  /// Modeled seconds of sort CPU for `records` records sorted within
  /// `sort_memory_bytes`, with `threads` workers forming runs.
  /// Formation does N*log2(run_records) compares spread across threads;
  /// each merge pass does N*log2(fan_in) compares (the loser tree's
  /// leaf-to-root path) on the coordinator.
  double SortCpuSeconds(uint64_t records, size_t sort_memory_bytes,
                        uint32_t threads) const {
    if (records == 0) return 0.0;
    const RunLayout layout = RunLayout::For(sort_memory_bytes, sizeof(RectF));
    const double n = static_cast<double>(records);
    const double run = static_cast<double>(
        std::min<uint64_t>(records, layout.run_records));
    const uint64_t runs =
        (records + layout.run_records - 1) / layout.run_records;
    const double form = n * Log2(run) /
                        static_cast<double>(std::max<uint32_t>(1, threads));
    const double merge =
        n * Log2(static_cast<double>(layout.fan_in)) *
        static_cast<double>(RunLayout::MergePasses(runs, layout.fan_in));
    return (form + merge) * kSortNsPerCompare * 1e-9 * machine_.cpu_slowdown;
  }

  // Per-operator terms for pipeline plans (src/op/, PipelineQuery): each
  // prices one physical operator so Explain() can annotate the whole
  // operator tree with the same arithmetic the join terms use.

  /// Modeled seconds for one sequential pass over `pages` — a stream-side
  /// WindowScan or a RectResolver's in-memory load.
  double ScanSeconds(uint64_t pages) const {
    return HistogramPassSeconds(pages);
  }

  /// Modeled seconds for an index-side window query expected to touch
  /// `touched_fraction` of an `index_pages`-page tree: every touched node
  /// is a random single-page read, like a PQ traversal of that fraction.
  double IndexWindowSeconds(uint64_t index_pages,
                            double touched_fraction) const {
    const double f = std::min(1.0, std::max(0.0, touched_fraction));
    return PQSeconds(static_cast<uint64_t>(
        static_cast<double>(index_pages) * f + 0.5));
  }

  /// Modeled seconds for an aggregation grid that spills: `spill_pages`
  /// of (cell, delta) records written once (streamed) and replayed once
  /// per non-resident band.
  double AggregateSpillSeconds(uint64_t spill_pages, uint64_t bands) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    return static_cast<double>(spill_pages) *
           (machine_.write_factor + static_cast<double>(bands)) * seq;
  }

  /// Modeled seconds for resolving `lookups` join-output ids against a
  /// relation of `pages` MBR pages through an external rect map: the
  /// id-sort build (one streamed read/write pass over the relation) plus
  /// the batched lookups — random single-page reads, bounded by one page
  /// per lookup and by the table size per batch, like RefineSeconds. The
  /// in-memory path costs only the build scan (price with ScanSeconds).
  double RectResolveSeconds(uint64_t lookups, uint64_t pages) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    const double rand =
        (machine_.avg_access_ms + machine_.PageTransferMs(kPageSize)) * 1e-3;
    const double build = static_cast<double>(pages) *
                         (1.0 + machine_.write_factor) * seq;
    return build + static_cast<double>(std::min(lookups, pages)) * rand;
  }

  const MachineModel& machine() const { return machine_; }

 private:
  static double Log2(double v) { return v > 1.0 ? std::log2(v) : 0.0; }

  MachineModel machine_;
};

}  // namespace sj

#endif  // USJ_CORE_COST_MODEL_H_
