#ifndef USJ_CORE_COST_MODEL_H_
#define USJ_CORE_COST_MODEL_H_

#include <cstdint>

#include "io/disk_model.h"
#include "io/machine_model.h"

namespace sj {

/// The paper's §6.3 cost model: price a plan in *sequential-read
/// equivalents* so that the sequential/random asymmetry of real disks
/// drives the indexed-vs-non-indexed decision.
///
/// For a one-disk configuration, SSSJ moves each input 3 times reading and
/// 2 times writing, all streamed: 3n + (2n * write_factor) sequential page
/// reads (= 6n with the paper's write_factor 1.5). A PQ traversal reads
/// each touched index page with a random access costing
/// RandomToSequentialReadRatio() sequential reads (~10-11x on the paper's
/// disks). Hence the paper's rule: the index pays off only when the join
/// touches less than ~60 % of it.
class CostModel {
 public:
  explicit CostModel(MachineModel machine) : machine_(machine) {}

  /// Modeled seconds for SSSJ over `pages` total input pages.
  double SSSJSeconds(uint64_t pages) const {
    const double seq = machine_.PageTransferMs(kPageSize) * 1e-3;
    return static_cast<double>(pages) *
           (3.0 + 2.0 * machine_.write_factor) * seq;
  }

  /// Modeled seconds for a PQ traversal touching `index_pages` pages.
  double PQSeconds(uint64_t index_pages) const {
    const double rand =
        (machine_.avg_access_ms + machine_.PageTransferMs(kPageSize)) * 1e-3;
    return static_cast<double>(index_pages) * rand;
  }

  /// The break-even fraction f*: using an index that the join touches a
  /// fraction f of is cheaper than streaming-and-sorting iff f < f*.
  /// f* = (3 + 2w) / (random/sequential ratio); ~0.55-0.6 on the paper's
  /// Machine 1, matching the paper's "less than 60 % of the leaf nodes".
  double IndexBreakEvenFraction() const {
    return (3.0 + 2.0 * machine_.write_factor) /
           machine_.RandomToSequentialReadRatio(kPageSize);
  }

  /// True when traversing `touched_fraction` of an index beats streaming.
  bool PreferIndex(double touched_fraction) const {
    return touched_fraction < IndexBreakEvenFraction();
  }

  const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
};

}  // namespace sj

#endif  // USJ_CORE_COST_MODEL_H_
