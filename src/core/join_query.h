#ifndef USJ_CORE_JOIN_QUERY_H_
#define USJ_CORE_JOIN_QUERY_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/spatial_join.h"
#include "join/executor.h"
#include "join/predicate.h"

namespace sj {

/// A composable spatial join query against a SpatialJoiner: the one entry
/// point for pairwise and k-way joins over any mix of indexed and
/// non-indexed inputs, with per-query option overrides and predicate
/// selection.
///
///   SpatialJoiner joiner(&disk, defaults);
///   CollectingSink sink;
///   auto stats = JoinQuery(joiner)
///                    .Input(JoinInput::FromRTree(&tree))
///                    .Input(JoinInput::FromStream(hydro))
///                    .WithHistogram(0, &roads_hist)
///                    .Predicate(Predicate::kDistanceWithin, 0.25)
///                    .Refine(true)
///                    .Threads(8)
///                    .Run(&sink);
///
/// Histograms and FeatureStores attach to *inputs* (by position), every
/// JoinOptions knob can be overridden without mutating the shared joiner,
/// and Run dispatches through the ExecutorRegistry: two inputs with a
/// JoinSink run the pairwise pipeline, two or more with a TupleSink run
/// the k-way chain. The query object is cheap to build and single-shot
/// state-free: Run() may be called repeatedly and each call compiles a
/// fresh plan.
class JoinQuery {
 public:
  /// Queries inherit the joiner's JoinOptions as per-query defaults; the
  /// joiner (and the DiskModel behind it) must outlive the query.
  explicit JoinQuery(SpatialJoiner& joiner)
      : joiner_(&joiner), options_(joiner.options()) {}

  /// Appends a join input (position = order of the Input calls).
  JoinQuery& Input(const JoinInput& input) {
    inputs_.push_back(input);
    return *this;
  }

  /// Attaches an occupancy histogram to input `index`. Histograms sharpen
  /// the planner's touched-fraction estimate and prune selective index
  /// traversals of the *other* side. The histogram must outlive Run().
  JoinQuery& WithHistogram(size_t index, const GridHistogram* histogram) {
    if (histogram != nullptr) histograms_.emplace_back(index, histogram);
    return *this;
  }

  /// Attaches exact geometry to input `index` (equivalent to calling
  /// JoinInput::WithFeatures before Input). The store must outlive Run().
  JoinQuery& WithFeatures(size_t index, const FeatureStore* store);

  /// Selects the join predicate; `epsilon` is the distance bound for
  /// Predicate::kDistanceWithin and ignored otherwise. kContains means
  /// "input 0 contains input 1" and requires Refine(true) with
  /// FeatureStores on both inputs.
  JoinQuery& Predicate(sj::Predicate kind, double epsilon = 0.0) {
    predicate_.kind = kind;
    predicate_.epsilon = epsilon;
    return *this;
  }

  /// Forces the filter algorithm (default kAuto = cost-based planning).
  JoinQuery& Algorithm(JoinAlgorithm algorithm) {
    algorithm_ = algorithm;
    return *this;
  }

  // Per-query JoinOptions overrides. Each setter adjusts this query's
  // private copy of the joiner's options; the shared joiner is never
  // mutated. mutable_options() is the escape hatch covering every knob.
  JoinQuery& Refine(bool on) { return Mutate([&](JoinOptions& o) { o.refine = on; }); }
  JoinQuery& Threads(uint32_t n) { return Mutate([&](JoinOptions& o) { o.num_threads = n; }); }
  JoinQuery& MemoryBytes(size_t bytes) { return Mutate([&](JoinOptions& o) { o.memory_bytes = bytes; }); }
  JoinQuery& BufferPoolPages(size_t pages) { return Mutate([&](JoinOptions& o) { o.buffer_pool_pages = pages; }); }
  JoinQuery& StreamSweep(SweepStructureKind kind) { return Mutate([&](JoinOptions& o) { o.stream_sweep = kind; }); }
  JoinQuery& PartitionSweep(SweepStructureKind kind) { return Mutate([&](JoinOptions& o) { o.partition_sweep = kind; }); }
  JoinQuery& StripedStrips(uint32_t strips) { return Mutate([&](JoinOptions& o) { o.striped_strips = strips; }); }
  JoinQuery& PbsmTilesPerAxis(uint32_t tiles) { return Mutate([&](JoinOptions& o) { o.pbsm_tiles_per_axis = tiles; }); }
  /// Skew-adaptive PBSM partitioning (on by default); false is the
  /// fixed-grid escape hatch (the paper's round-robin tiling).
  JoinQuery& AdaptivePartitioning(bool on) { return Mutate([&](JoinOptions& o) { o.adaptive_partitioning = on; }); }
  JoinQuery& PbsmHistogramResolution(uint32_t cells) { return Mutate([&](JoinOptions& o) { o.pbsm_histogram_resolution = cells; }); }
  JoinQuery& FuseMergeSweep(bool on) { return Mutate([&](JoinOptions& o) { o.fuse_merge_sweep = on; }); }
  JoinQuery& MultiwayStrips(uint32_t strips) { return Mutate([&](JoinOptions& o) { o.multiway_strips = strips; }); }
  JoinQuery& RefineBatchPairs(uint32_t pairs) { return Mutate([&](JoinOptions& o) { o.refine_batch_pairs = pairs; }); }
  /// Storage backend for this query's scratch/spill files (null =
  /// in-memory). Shared because partition shards create files
  /// concurrently; results and modeled I/O are identical on any backend.
  JoinQuery& Storage(std::shared_ptr<StorageFactory> factory) { return Mutate([&](JoinOptions& o) { o.storage = std::move(factory); }); }
  /// Double-buffered read-ahead on stream scans and refinement batches.
  /// Never changes results, candidate counts, or modeled io_seconds —
  /// only measured wall time (JoinStats::disk.io_wall_seconds).
  JoinQuery& Prefetch(bool on) { return Mutate([&](JoinOptions& o) { o.prefetch = on; }); }
  /// Parallel run formation in the external sorts (engages with
  /// Threads(n>1)); output bytes and modeled io_seconds are identical at
  /// any thread count.
  JoinQuery& SortParallelRuns(bool on) { return Mutate([&](JoinOptions& o) { o.sort_parallel_runs = on; }); }
  /// External-merge fan-in (0 = auto; see JoinOptions::merge_fan_in).
  JoinQuery& MergeFanIn(uint32_t fan_in) { return Mutate([&](JoinOptions& o) { o.merge_fan_in = fan_in; }); }
  /// Write-behind run output: like Prefetch, moves io_wall_seconds only.
  JoinQuery& SortWriteBehind(bool on) { return Mutate([&](JoinOptions& o) { o.sort_write_behind = on; }); }

  JoinOptions& mutable_options() { return options_; }
  const JoinOptions& options() const { return options_; }

  /// Service plumbing: executes this query against an externally owned
  /// arbiter (a child the SpatialService carved out of its global budget)
  /// instead of a fresh per-query one. The arbiter's budget should match
  /// the query's memory_bytes; grants, peaks, and strict-mode behaviour
  /// are unchanged. Most callers never touch this.
  JoinQuery& UseArbiter(std::shared_ptr<MemoryArbiter> arbiter) {
    arbiter_override_ = std::move(arbiter);
    return *this;
  }

  /// Compiles the query and returns the planner's decision without
  /// executing anything (EXPLAIN). Reflects forced algorithms and
  /// predicate transforms exactly as Run would see them.
  Result<PlanDecision> Explain();

  /// Runs the pairwise pipeline (exactly 2 inputs): compile, execute the
  /// filter through the registry, apply refinement when enabled. Results
  /// go to `sink` as (id from input 0, id from input 1) pairs.
  ///
  /// This is a thin synchronous wrapper over a single-query
  /// SpatialService (service/spatial_service.h): the query is submitted
  /// to an inline service owning exactly this query's budget, admitted in
  /// full, executed on the calling thread, and its result returned — so
  /// the standalone and the multi-tenant paths are one code path, and
  /// every error comes back through the same Status taxonomy.
  Result<JoinStats> Run(JoinSink* sink);

  /// Runs the k-way pipeline (>= 2 inputs, Predicate::kIntersects only):
  /// tuples of ids, one per input, whose MBRs share a common point —
  /// refined against exact geometry when Refine(true). Executes directly
  /// (the service schedules pairwise queries; a k-way query submitted
  /// through a service runs under its arbiter via UseArbiter).
  Result<MultiwayStats> Run(TupleSink* sink);

 private:
  friend class SpatialService;
  /// PipelineQuery feeds its operator chain from RunDirect (the join is
  /// the pipeline's source, executing under the pipeline's arbiter).
  friend class PipelineQuery;

  /// The pairwise execution body (compile + executor dispatch +
  /// refinement), shared by the Run() wrapper and the service's workers.
  Result<JoinStats> RunDirect(JoinSink* sink);
  template <typename Fn>
  JoinQuery& Mutate(Fn&& fn) {
    fn(options_);
    return *this;
  }

  /// Shared validation + input resolution. `multiway` selects the k-way
  /// rules (input count, predicate restrictions); `plan_only` skips the
  /// ε-expansion materialization (Explain never executes I/O passes).
  Result<CompiledPlan> Compile(bool multiway, bool plan_only = false);

  /// Applies the ε-expansion transform for kDistanceWithin to the plan's
  /// resolved inputs (see Predicate documentation in join/predicate.h).
  Status ApplyDistanceTransform(CompiledPlan& plan);

  SpatialJoiner* joiner_;
  std::vector<JoinInput> inputs_;
  std::vector<std::pair<size_t, const GridHistogram*>> histograms_;
  std::vector<std::pair<size_t, const FeatureStore*>> features_;
  PredicateSpec predicate_;
  JoinAlgorithm algorithm_ = JoinAlgorithm::kAuto;
  JoinOptions options_;
  /// Set via UseArbiter (service mode); null = Compile creates one.
  std::shared_ptr<MemoryArbiter> arbiter_override_;
};

}  // namespace sj

#endif  // USJ_CORE_JOIN_QUERY_H_
