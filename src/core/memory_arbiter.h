#ifndef USJ_CORE_MEMORY_ARBITER_H_
#define USJ_CORE_MEMORY_ARBITER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sj {

/// Smallest per-query memory budget the query layer accepts (64 KiB).
/// Below this the component floors (one external-sort merge frame, a
/// minimal buffer pool, one refinement batch) no longer fit together and
/// budget arithmetic would degenerate; JoinQuery::Compile rejects smaller
/// budgets with FailedPrecondition naming this constant. Internal callers
/// that bypass the query layer clamp up to it instead.
inline constexpr size_t kMinMemoryBytes = 64u << 10;

/// Canonical grant component names, shared by the memory planner (so
/// Explain() reports the same breakdown the executors acquire) and the
/// per-component high-water marks in JoinStats.
namespace grants {
inline constexpr char kSortRuns[] = "sort.runs";
inline constexpr char kSweep[] = "sweep";
inline constexpr char kPqQueue[] = "pq.queue";
inline constexpr char kBufferPool[] = "buffer.pool";
inline constexpr char kPbsmHistogram[] = "pbsm.histogram";
inline constexpr char kPbsmWriters[] = "pbsm.writers";
inline constexpr char kStripWriters[] = "sssj.writers";
inline constexpr char kPbsmPartition[] = "pbsm.partition";
inline constexpr char kRefineBatch[] = "refine.batch";
inline constexpr char kRTreeBulkLoad[] = "rtree.bulkload";
// Pipeline operators (src/op/): the id->MBR lookup table behind join
// outputs, the window-scan result buffer of tree-backed scans, the
// aggregation grid, and the top-k heap.
inline constexpr char kOpRectMap[] = "op.rectmap";
inline constexpr char kOpWindow[] = "op.window";
inline constexpr char kOpAggregate[] = "op.aggregate";
inline constexpr char kOpTopK[] = "op.topk";
}  // namespace grants

class MemoryArbiter;

/// An RAII share of a MemoryArbiter's budget. Movable, not copyable;
/// releases its bytes back to the arbiter on destruction (or an explicit
/// Release()). Components report their actual consumption through
/// NoteUsage so the arbiter can keep per-component high-water marks — and,
/// in strict mode, abort on ungoverned allocation above the grant.
class MemoryGrant {
 public:
  MemoryGrant() = default;
  MemoryGrant(MemoryGrant&& other) noexcept;
  MemoryGrant& operator=(MemoryGrant&& other) noexcept;
  MemoryGrant(const MemoryGrant&) = delete;
  MemoryGrant& operator=(const MemoryGrant&) = delete;
  ~MemoryGrant();

  /// True while the grant holds bytes in an arbiter.
  bool active() const { return arbiter_ != nullptr; }
  size_t bytes() const { return bytes_; }
  const std::string& component() const { return component_; }

  /// Records that the component's live structures currently occupy
  /// `used_bytes`. Updates the component's usage high-water mark; a
  /// strict-mode arbiter treats `used_bytes > bytes()` as an ungoverned
  /// allocation and aborts (SJ_CHECK). Thread-safe.
  void NoteUsage(size_t used_bytes);

  /// Tries to grow the grant to `new_bytes` (no-op when already that
  /// large); fails without side effects when the arbiter cannot cover the
  /// difference.
  bool TryGrow(size_t new_bytes);

  /// Returns bytes above `new_bytes` to the arbiter (no-op when already
  /// smaller).
  void Shrink(size_t new_bytes);

  /// Releases the whole grant early (idempotent).
  void Release();

 private:
  friend class MemoryArbiter;
  MemoryGrant(MemoryArbiter* arbiter, std::string component, size_t bytes)
      : arbiter_(arbiter), component_(std::move(component)), bytes_(bytes) {}

  MemoryArbiter* arbiter_ = nullptr;
  std::string component_;
  size_t bytes_ = 0;
};

/// Per-component accounting snapshot (JoinStats::memory_components).
struct MemoryComponentStats {
  std::string component;
  /// Max bytes concurrently granted to this component.
  size_t granted_high_water = 0;
  /// Max bytes the component reported actually using (NoteUsage /
  /// FoldChildPeak). May exceed granted_high_water only when a non-strict
  /// arbiter recorded an overshoot instead of aborting.
  size_t used_high_water = 0;
};

/// The per-query memory governor: one fixed budget carved into explicit,
/// tracked grants. Every memory-consuming component of a join — external
/// sort run buffers, external PQ heaps, sweep structures, PBSM
/// distribution writers and partition loads, the ST buffer pool,
/// refinement batch buffers, R-tree bulk-load buffers — acquires its share
/// here instead of interpreting JoinOptions::memory_bytes ad hoc, so the
/// sum of live allocations can never silently exceed the budget.
///
/// Acquire() denies over-subscription outright (the caller must degrade:
/// spill, shrink batches, use fewer writer blocks); AcquireShrinkable()
/// hands back whatever is available, bounded below by a component floor.
/// In strict mode (JoinOptions::strict_memory_accounting, meant for debug
/// and tests) a component reporting usage above its grant aborts.
///
/// Thread-safe. Parallel work units (PBSM partition tasks, SSSJ strips)
/// model the paper's *serial* machine: each unit runs against a private
/// child arbiter with the full phase budget, and the parent folds the
/// child peaks in afterwards with FoldChildPeak — max over units, so the
/// reported peak is the serial-equivalent footprint and identical for
/// every thread count, like every other modeled stat in this repo.
class MemoryArbiter {
 public:
  explicit MemoryArbiter(size_t budget_bytes, bool strict = false);
  ~MemoryArbiter();

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  /// Carves `bytes` out of this arbiter as a *child* arbiter with its own
  /// budget — the service's per-query arbiters under the one global
  /// budget. The child holds a `component`-named grant for its whole
  /// budget in this (parent) arbiter until the child dies, so the parent's
  /// in_use/peak always covers the sum of admitted query budgets and
  /// Acquire()'s denial rule makes global over-subscription impossible by
  /// construction. On destruction the child also reports its peak as the
  /// parent grant's usage, giving the global arbiter per-query used
  /// high-water marks. Fails with ResourceExhausted when the remaining
  /// parent budget cannot cover `bytes`.
  Result<std::shared_ptr<MemoryArbiter>> CarveChild(std::string component,
                                                    size_t bytes,
                                                    bool strict = false);

  /// Grants exactly `bytes` to `component`, or ResourceExhausted when the
  /// remaining budget cannot cover it.
  Result<MemoryGrant> Acquire(std::string component, size_t bytes);

  /// Grants min(bytes, available), except that a grant squeezed below
  /// `floor_bytes` — the documented minimum the component needs to make
  /// progress at all — is lifted back to the floor (never above the
  /// request). A floor above the remaining budget is still granted;
  /// floors are small and the query layer's kMinMemoryBytes check keeps
  /// them honest.
  MemoryGrant AcquireShrinkable(std::string component, size_t bytes,
                                size_t floor_bytes);

  /// Folds a completed child scope (one serial-equivalent work unit run
  /// against its own arbiter — a PBSM partition task, an SSSJ strip)
  /// into this one: every component high-water merges in (max) and the
  /// overall peak rises to the grants live here plus the child's peak.
  /// Order-independent, so merged stats do not depend on the thread
  /// count. The child must be quiescent (its work unit finished).
  void FoldChild(const MemoryArbiter& child);

  size_t budget() const { return budget_; }
  size_t in_use() const;
  size_t available() const;
  /// High-water mark of the concurrently granted bytes (plus folded child
  /// peaks on top of the grants live at fold time).
  size_t peak_bytes() const;
  bool strict() const { return strict_; }

  /// Per-component high-water marks, sorted by component name.
  std::vector<MemoryComponentStats> ComponentStats() const;

  /// One human-readable line: budget, peak, per-component granted/used.
  std::string Describe() const;

 private:
  friend class MemoryGrant;

  struct Component {
    size_t live = 0;
    size_t granted_high_water = 0;
    size_t used_high_water = 0;
  };

  void AddLocked(const std::string& component, size_t bytes);
  void Release(const std::string& component, size_t bytes);
  void NoteUsage(const std::string& component, size_t granted_bytes,
                 size_t used_bytes);
  bool TryGrow(const std::string& component, size_t delta);

  const size_t budget_;
  const bool strict_;
  /// Set on children made by CarveChild: the slice of the parent's budget
  /// this arbiter governs, returned when the child dies.
  MemoryGrant parent_grant_;
  mutable std::mutex mu_;
  size_t in_use_ = 0;
  size_t peak_ = 0;
  std::map<std::string, Component> components_;
};

/// One planned grant line of a MemoryPlan.
struct MemoryGrantSpec {
  std::string component;
  size_t bytes = 0;
};

/// The planner's memory shape for one algorithm under one budget: which
/// components will acquire how much. Descriptive (Explain()/Describe()
/// and cost pricing read it); the executors acquire the live grants
/// themselves using the same component names and arithmetic.
struct MemoryPlan {
  size_t budget_bytes = 0;
  std::vector<MemoryGrantSpec> grants;

  bool empty() const { return grants.empty(); }
  /// Planned bytes for `component`, 0 when the plan has no such line.
  size_t GrantFor(std::string_view component) const;
  /// "budget 24 MB: sort.runs 12 MB + sweep 58 KB + ..."
  std::string Describe() const;
};

}  // namespace sj

#endif  // USJ_CORE_MEMORY_ARBITER_H_
