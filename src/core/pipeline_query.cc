#include "core/pipeline_query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "core/join_query.h"
#include "io/stream.h"
#include "service/spatial_service.h"
#include "util/timer.h"

namespace sj {

namespace {

std::string FmtG(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.3g MB",
                  static_cast<double>(bytes) / (1u << 20));
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%.3g KB",
                  static_cast<double>(bytes) / (1u << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

/// Counts the rows crossing into the caller's sink (PipelineStats::
/// output_count without requiring anything of the sink itself).
class CountingForward final : public RowSink {
 public:
  explicit CountingForward(RowSink* down) : down_(down) {}
  void Emit(PipeRow row) override {
    count_++;
    down_->Emit(std::move(row));
  }
  uint64_t count() const { return count_; }

 private:
  RowSink* down_;
  uint64_t count_ = 0;
};

/// Writes window-scan rows back out as an MBR stream (the windowed-
/// overlay plan: each join input is reduced to its in-window records
/// before the join proper). Record ids are preserved, so histograms stay
/// conservative for pruning and FeatureStores stay valid for refinement.
class MaterializeSink final : public RowSink {
 public:
  explicit MaterializeSink(StreamWriter<RectF>* writer) : writer_(writer) {}

  void Emit(PipeRow row) override {
    RectF r = row.rect;
    r.id = row.ids.empty() ? 0 : row.ids[0];
    if (!extent_.Valid()) {
      extent_ = r;
    } else {
      extent_.xlo = std::min(extent_.xlo, r.xlo);
      extent_.ylo = std::min(extent_.ylo, r.ylo);
      extent_.xhi = std::max(extent_.xhi, r.xhi);
      extent_.yhi = std::max(extent_.yhi, r.yhi);
    }
    writer_->Append(r);
  }

  const RectF& extent() const { return extent_; }

 private:
  StreamWriter<RectF>* writer_;
  RectF extent_ = RectF::Empty();
};

/// Fraction of `extent` the window covers (1 when the extent is
/// degenerate), for index window-scan costing.
double WindowFraction(const RectF& window, const RectF& extent) {
  if (!window.Valid() || !extent.Valid()) return window.Valid() ? 1.0 : 0.0;
  const double total = extent.Area();
  if (!(total > 0.0)) return 1.0;
  if (!window.Intersects(extent)) return 0.0;
  return std::min(1.0, window.IntersectionWith(extent).Area() / total);
}

}  // namespace

// --- PipelinePlan ----------------------------------------------------------

std::string PipelinePlan::Describe() const {
  std::ostringstream os;
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorPlan& node = operators[i];
    if (node.depth > 0) {
      os << std::string(3 * (node.depth - 1), ' ');
      const bool has_sibling_next =
          i + 1 < operators.size() && operators[i + 1].depth == node.depth;
      os << (has_sibling_next ? "├─ " : "└─ ");
    }
    os << node.name;
    if (!node.detail.empty()) os << "(" << node.detail << ")";
    os << "  rows~" << FmtG(node.est_rows) << " cost~" << FmtG(node.cost_seconds)
       << "s";
    if (node.planned_bytes > 0) os << " mem " << HumanBytes(node.planned_bytes);
    os << "\n";
  }
  os << "total cost~" << FmtG(total_cost_seconds) << "s, "
     << memory.Describe();
  if (has_join) os << "\njoin: " << join.Describe();
  return os.str();
}

std::vector<std::pair<std::string, std::string>> PipelinePlan::ToKeyValues()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  for (size_t i = 0; i < operators.size(); ++i) {
    const std::string prefix = "op." + std::to_string(i) + ".";
    kv.emplace_back(prefix + "name", operators[i].name);
    kv.emplace_back(prefix + "est_rows", FmtG(operators[i].est_rows));
    kv.emplace_back(prefix + "cost_seconds", FmtG(operators[i].cost_seconds));
    kv.emplace_back(prefix + "planned_bytes",
                    std::to_string(operators[i].planned_bytes));
  }
  kv.emplace_back("total_cost_seconds", FmtG(total_cost_seconds));
  kv.emplace_back("memory.budget_bytes", std::to_string(memory.budget_bytes));
  for (const MemoryGrantSpec& g : memory.grants) {
    kv.emplace_back("memory.grant." + g.component, std::to_string(g.bytes));
  }
  if (has_join) {
    for (auto& [k, v] : join.ToKeyValues()) kv.emplace_back("join." + k, v);
  }
  return kv;
}

std::ostream& operator<<(std::ostream& os, const PipelinePlan& plan) {
  return os << plan.Describe();
}

// --- PipelineStats ---------------------------------------------------------

std::string PipelineStats::Describe() const {
  std::ostringstream os;
  os << "rows=" << output_count << " candidates=" << candidate_count
     << " pages[r=" << disk.pages_read << " w=" << disk.pages_written
     << "] peak_mem=" << HumanBytes(peak_memory_bytes);
  for (const OperatorStats& op : operators) {
    os << " | " << op.name << " " << op.rows_in << "->" << op.rows_out;
    if (op.pages_read > 0) os << " pr=" << op.pages_read;
    if (op.spill_pages > 0) os << " spill=" << op.spill_pages;
  }
  return os.str();
}

std::string PipelineStats::Describe(const MachineModel& m) const {
  std::ostringstream os;
  os << Describe() << " | observed=" << FmtG(ObservedSeconds(m))
     << "s (io=" << FmtG(disk.io_seconds)
     << "s cpu=" << FmtG(host_cpu_seconds * m.cpu_slowdown) << "s)";
  return os.str();
}

std::vector<std::pair<std::string, std::string>> PipelineStats::ToKeyValues()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  kv.emplace_back("output_count", std::to_string(output_count));
  kv.emplace_back("candidate_count", std::to_string(candidate_count));
  kv.emplace_back("refine_pages_read", std::to_string(refine_pages_read));
  kv.emplace_back("join_algorithm", ToString(join_algorithm));
  kv.emplace_back("host_cpu_seconds", FmtG(host_cpu_seconds));
  kv.emplace_back("disk.pages_read", std::to_string(disk.pages_read));
  kv.emplace_back("disk.pages_written", std::to_string(disk.pages_written));
  kv.emplace_back("disk.io_seconds", FmtG(disk.io_seconds));
  kv.emplace_back("peak_memory_bytes", std::to_string(peak_memory_bytes));
  for (size_t i = 0; i < operators.size(); ++i) {
    const std::string prefix = "op." + std::to_string(i) + ".";
    kv.emplace_back(prefix + "name", operators[i].name);
    kv.emplace_back(prefix + "rows_in", std::to_string(operators[i].rows_in));
    kv.emplace_back(prefix + "rows_out", std::to_string(operators[i].rows_out));
    kv.emplace_back(prefix + "pages_read",
                    std::to_string(operators[i].pages_read));
    kv.emplace_back(prefix + "spill_pages",
                    std::to_string(operators[i].spill_pages));
  }
  for (const MemoryComponentStats& c : memory_components) {
    kv.emplace_back("memory." + c.component + ".granted",
                    std::to_string(c.granted_high_water));
    kv.emplace_back("memory." + c.component + ".used",
                    std::to_string(c.used_high_water));
  }
  return kv;
}

std::ostream& operator<<(std::ostream& os, const PipelineStats& stats) {
  return os << stats.Describe();
}

// --- PipelineQuery: builder ------------------------------------------------

PipelineQuery& PipelineQuery::Filter(FilterOp::RowPredicate predicate,
                                     std::string label) {
  OpSpec spec;
  spec.kind = OpSpec::Kind::kFilter;
  spec.filter = std::move(predicate);
  spec.label = std::move(label);
  ops_.push_back(std::move(spec));
  return *this;
}

PipelineQuery& PipelineQuery::Project(ProjectOp::RowTransform transform,
                                      std::string label) {
  OpSpec spec;
  spec.kind = OpSpec::Kind::kProject;
  spec.project = std::move(transform);
  spec.label = std::move(label);
  ops_.push_back(std::move(spec));
  return *this;
}

PipelineQuery& PipelineQuery::AggregateByCell(AggregateMode mode, uint32_t nx,
                                              uint32_t ny,
                                              const RectF& extent) {
  OpSpec spec;
  spec.kind = OpSpec::Kind::kAggregate;
  spec.agg_mode = mode;
  spec.agg_nx = nx;
  spec.agg_ny = ny;
  spec.agg_extent = extent;
  ops_.push_back(std::move(spec));
  return *this;
}

PipelineQuery& PipelineQuery::TopKByDistance(size_t k, float qx, float qy) {
  OpSpec spec;
  spec.kind = OpSpec::Kind::kTopK;
  spec.topk_k = k;
  spec.topk_x = qx;
  spec.topk_y = qy;
  ops_.push_back(std::move(spec));
  return *this;
}

const GridHistogram* PipelineQuery::HistogramFor(size_t index) const {
  const GridHistogram* found = nullptr;
  for (const auto& [i, hist] : histograms_) {
    if (i == index) found = hist;
  }
  return found;
}

const FeatureStore* PipelineQuery::FeaturesFor(size_t index) const {
  const FeatureStore* found = nullptr;
  for (const auto& [i, store] : features_) {
    if (i == index) found = store;
  }
  return found;
}

RectF PipelineQuery::ResolveAggregateExtent(const OpSpec& spec) const {
  if (spec.agg_extent.Valid()) return spec.agg_extent;
  if (has_window_ && window_.Valid()) return window_;
  RectF combined = RectF::Empty();
  for (const JoinInput& input : inputs_) {
    const RectF e = input.extent();
    if (!e.Valid()) continue;
    if (!combined.Valid()) {
      combined = e;
    } else {
      combined.xlo = std::min(combined.xlo, e.xlo);
      combined.ylo = std::min(combined.ylo, e.ylo);
      combined.xhi = std::max(combined.xhi, e.xhi);
      combined.yhi = std::max(combined.yhi, e.yhi);
    }
  }
  return combined;
}

Status PipelineQuery::Validate() const {
  if (inputs_.empty()) {
    return Status::InvalidArgument(
        "PipelineQuery needs at least one Input(): one is a (window) scan "
        "source, two run the pairwise spatial join, three or more the k-way "
        "chain");
  }
  if (inputs_.size() == 1) {
    if (predicate_.kind != Predicate::kIntersects || predicate_.epsilon != 0.0) {
      return Status::InvalidArgument(
          "Predicate() applies to join sources; a single-input pipeline is a "
          "scan (add a second Input, or drop the predicate)");
    }
    if (algorithm_ != JoinAlgorithm::kAuto) {
      return Status::InvalidArgument(
          "Algorithm() applies to join sources; a single-input pipeline is a "
          "scan");
    }
    if (options_.refine) {
      return Status::InvalidArgument(
          "Refine(true) applies to join sources; a single-input pipeline "
          "emits MBR records directly");
    }
  }
  if (inputs_.size() > 2 && algorithm_ != JoinAlgorithm::kAuto) {
    return Status::InvalidArgument(
        "Algorithm() applies to pairwise joins; the k-way chain has a single "
        "execution strategy");
  }
  for (const auto& [index, hist] : histograms_) {
    (void)hist;
    if (index >= inputs_.size()) {
      return Status::InvalidArgument(
          "PipelineQuery::WithHistogram index " + std::to_string(index) +
          " out of range: the pipeline has " + std::to_string(inputs_.size()) +
          " inputs");
    }
  }
  for (const auto& [index, store] : features_) {
    (void)store;
    if (index >= inputs_.size()) {
      return Status::InvalidArgument(
          "PipelineQuery::WithFeatures index " + std::to_string(index) +
          " out of range: the pipeline has " + std::to_string(inputs_.size()) +
          " inputs");
    }
  }
  for (const OpSpec& spec : ops_) {
    switch (spec.kind) {
      case OpSpec::Kind::kFilter:
        if (!spec.filter) {
          return Status::InvalidArgument("Filter() needs a predicate");
        }
        break;
      case OpSpec::Kind::kProject:
        if (!spec.project) {
          return Status::InvalidArgument("Project() needs a transform");
        }
        break;
      case OpSpec::Kind::kAggregate: {
        if (spec.agg_nx == 0 || spec.agg_ny == 0) {
          return Status::InvalidArgument(
              "AggregateByCell() needs nx > 0 and ny > 0");
        }
        if (static_cast<uint64_t>(spec.agg_nx) * spec.agg_ny >
            uint64_t{0xFFFFFFFF}) {
          return Status::InvalidArgument(
              "AggregateByCell() grid too large: " +
              std::to_string(spec.agg_nx) + "x" + std::to_string(spec.agg_ny));
        }
        if (!ResolveAggregateExtent(spec).Valid()) {
          return Status::InvalidArgument(
              "AggregateByCell() cannot resolve a grid extent: pass one "
              "explicitly (the inputs carry no extents and no window is "
              "set)");
        }
        break;
      }
      case OpSpec::Kind::kTopK:
        if (spec.topk_k == 0) {
          return Status::InvalidArgument("TopKByDistance() needs k > 0");
        }
        break;
    }
  }
  return Status::OK();
}

std::vector<std::unique_ptr<PipelineOperator>> PipelineQuery::BuildChain()
    const {
  std::vector<std::unique_ptr<PipelineOperator>> chain;
  chain.reserve(ops_.size());
  for (const OpSpec& spec : ops_) {
    switch (spec.kind) {
      case OpSpec::Kind::kFilter:
        chain.push_back(std::make_unique<FilterOp>(spec.filter, spec.label));
        break;
      case OpSpec::Kind::kProject:
        chain.push_back(std::make_unique<ProjectOp>(spec.project, spec.label));
        break;
      case OpSpec::Kind::kAggregate:
        chain.push_back(std::make_unique<AggregateByCellOp>(
            spec.agg_mode, ResolveAggregateExtent(spec), spec.agg_nx,
            spec.agg_ny));
        break;
      case OpSpec::Kind::kTopK:
        chain.push_back(std::make_unique<TopKByDistanceOp>(
            spec.topk_k, spec.topk_x, spec.topk_y));
        break;
    }
  }
  return chain;
}

// --- Explain ---------------------------------------------------------------

Result<PipelinePlan> PipelineQuery::Explain() {
  SJ_RETURN_IF_ERROR(Validate());
  if (options_.memory_bytes < kMinMemoryBytes) {
    return Status::FailedPrecondition(
        "memory budget " + std::to_string(options_.memory_bytes) +
        " B is below the supported floor of " +
        std::to_string(kMinMemoryBytes) + " B (kMinMemoryBytes, 64 KiB)");
  }
  const CostModel& cost = joiner_->cost_model();
  const bool join_source = inputs_.size() >= 2;

  PipelinePlan plan;
  plan.memory.budget_bytes = options_.memory_bytes;

  // Leaf estimates. A windowed pipeline scans each input; without a window
  // a join source consumes its inputs directly (the join's cost covers the
  // reads) and a scan source reads everything.
  std::vector<double> leaf_rows(inputs_.size());
  std::vector<double> leaf_cost(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const JoinInput& input = inputs_[i];
    const RectF window = has_window_ ? window_ : input.extent();
    if (has_window_ || !join_source) {
      leaf_rows[i] = WindowScan::EstimateRows(input, window, HistogramFor(i));
      leaf_cost[i] =
          input.indexed()
              ? cost.IndexWindowSeconds(input.pages(),
                                        WindowFraction(window, input.extent()))
              : cost.ScanSeconds(input.pages());
    } else {
      leaf_rows[i] = static_cast<double>(input.count());
      leaf_cost[i] = 0.0;  // Consumed (and priced) by the join itself.
    }
  }

  // Source estimate + cost.
  double source_rows = 0.0;
  double source_cost = 0.0;
  std::string source_name;
  std::string source_detail;
  size_t source_planned = 0;
  if (!join_source) {
    source_rows = leaf_rows[0];
    source_cost = leaf_cost[0];
    source_name = "WindowScan";
    source_detail = "input 0, " + std::to_string(inputs_[0].count()) +
                    " records" + (has_window_ ? "" : ", full extent");
    if (inputs_[0].indexed()) {
      source_planned = static_cast<size_t>(
          std::max(1.0, source_rows) * sizeof(RectF));
    }
  } else {
    // Join output estimate: coarse lower-envelope heuristic (the planner
    // estimates costs, not cardinalities — min of the input estimates is
    // the documented stand-in until a join cardinality model exists).
    source_rows = leaf_rows[0];
    for (size_t i = 1; i < inputs_.size(); ++i) {
      source_rows = std::min(source_rows, leaf_rows[i]);
    }
    if (inputs_.size() == 2) {
      JoinQuery jq(*joiner_);
      jq.mutable_options() = options_;
      for (const JoinInput& input : inputs_) jq.Input(input);
      for (const auto& [i, h] : histograms_) jq.WithHistogram(i, h);
      for (const auto& [i, f] : features_) jq.WithFeatures(i, f);
      jq.Predicate(predicate_.kind, predicate_.epsilon);
      jq.Algorithm(algorithm_);
      SJ_ASSIGN_OR_RETURN(plan.join, jq.Explain());
      plan.has_join = true;
      plan.memory = plan.join.memory;
      if (plan.memory.budget_bytes == 0) {
        plan.memory.budget_bytes = options_.memory_bytes;
      }
      switch (plan.join.algorithm) {
        case JoinAlgorithm::kPBSM:
          source_cost = plan.join.pbsm_cost_seconds > 0.0
                            ? plan.join.pbsm_cost_seconds
                            : plan.join.stream_cost_seconds;
          break;
        case JoinAlgorithm::kPQ:
        case JoinAlgorithm::kST:
          source_cost = plan.join.index_cost_seconds;
          break;
        default:
          source_cost = plan.join.stream_cost_seconds;
          break;
      }
      source_name =
          std::string("SpatialJoin[") + ToString(plan.join.algorithm) + "]";
      source_detail = std::string(ToString(predicate_.kind));
    } else {
      // The k-way chain: no PlanDecision; price it as the streaming
      // sort-and-sweep it is.
      uint64_t total_pages = 0;
      for (const JoinInput& input : inputs_) total_pages += input.pages();
      source_cost = cost.SSSJSeconds(total_pages, options_.memory_bytes);
      source_name = "MultiwayJoin";
      source_detail = std::to_string(inputs_.size()) + "-way chain";
    }
    // Rect resolution behind the join: one lookup table per input.
    for (size_t i = 0; i < inputs_.size(); ++i) {
      const uint64_t table_bytes = inputs_[i].count() * sizeof(RectF);
      const bool fits = table_bytes <= options_.memory_bytes / 4;
      source_cost +=
          fits ? cost.ScanSeconds(inputs_[i].pages())
               : cost.RectResolveSeconds(
                     static_cast<uint64_t>(source_rows), inputs_[i].pages());
      source_planned += static_cast<size_t>(
          std::min<uint64_t>(table_bytes, options_.memory_bytes / 4));
    }
    plan.memory.grants.push_back(
        MemoryGrantSpec{grants::kOpRectMap, source_planned});
  }

  // Downstream chain, source -> sink, then assemble the tree root-first.
  std::vector<OperatorPlan> op_nodes;
  double rows = source_rows;
  for (const OpSpec& spec : ops_) {
    OperatorPlan node;
    node.est_rows = rows;
    switch (spec.kind) {
      case OpSpec::Kind::kFilter:
        node.name = "Filter";
        node.detail = spec.label;
        rows = rows / 3.0;  // The classic default selectivity guess.
        break;
      case OpSpec::Kind::kProject:
        node.name = "Project";
        node.detail = spec.label;
        break;
      case OpSpec::Kind::kAggregate: {
        node.name = "AggregateByCell";
        node.detail = std::string(ToString(spec.agg_mode)) + " " +
                      std::to_string(spec.agg_nx) + "x" +
                      std::to_string(spec.agg_ny);
        const uint64_t cells =
            static_cast<uint64_t>(spec.agg_nx) * spec.agg_ny;
        const size_t grid_bytes = cells * sizeof(double);
        node.planned_bytes = grid_bytes;
        // Spill estimate under half the budget (the join holds the rest):
        // non-resident contributions stream out as 16-byte deltas and
        // replay once per extra band.
        const size_t resident_budget = options_.memory_bytes / 2;
        const uint64_t resident_rows = std::max<uint64_t>(
            1, std::min<uint64_t>(spec.agg_ny,
                                  resident_budget /
                                      (spec.agg_nx * sizeof(double))));
        const uint64_t bands =
            (spec.agg_ny + resident_rows - 1) / resident_rows;
        if (bands > 1) {
          const double spill_fraction =
              1.0 - static_cast<double>(resident_rows) / spec.agg_ny;
          const uint64_t spill_pages = static_cast<uint64_t>(
              std::ceil(rows * spill_fraction * 16.0 / kPageSize));
          node.cost_seconds = cost.AggregateSpillSeconds(spill_pages, bands - 1);
        }
        plan.memory.grants.push_back(
            MemoryGrantSpec{grants::kOpAggregate,
                            std::min(grid_bytes, options_.memory_bytes / 2)});
        rows = std::min(rows, static_cast<double>(cells));
        break;
      }
      case OpSpec::Kind::kTopK: {
        node.name = "TopKByDistance";
        node.detail = "k=" + std::to_string(spec.topk_k) + " from (" +
                      FmtG(spec.topk_x) + ", " + FmtG(spec.topk_y) + ")";
        node.planned_bytes =
            spec.topk_k * (sizeof(double) + RowBytes(inputs_.size()));
        plan.memory.grants.push_back(
            MemoryGrantSpec{grants::kOpTopK, node.planned_bytes});
        rows = std::min(rows, static_cast<double>(spec.topk_k));
        break;
      }
    }
    op_nodes.push_back(std::move(node));
  }

  // Tree assembly, root (sink-most) first: ops reversed, then the source,
  // then the per-input leaves (only when they are distinct scan nodes).
  const bool leaves_are_scans = join_source && has_window_;
  int depth = 0;
  for (auto it = op_nodes.rbegin(); it != op_nodes.rend(); ++it) {
    it->depth = depth++;
    plan.operators.push_back(std::move(*it));
  }
  {
    OperatorPlan source;
    source.name = std::move(source_name);
    source.detail = std::move(source_detail);
    source.depth = depth;
    source.est_rows = source_rows;
    source.cost_seconds = source_cost;
    source.planned_bytes = source_planned;
    plan.operators.push_back(std::move(source));
  }
  if (join_source) {
    for (size_t i = 0; i < inputs_.size(); ++i) {
      OperatorPlan leaf;
      leaf.name = leaves_are_scans ? "WindowScan" : "Input";
      leaf.detail = "input " + std::to_string(i) + ", " +
                    std::to_string(inputs_[i].count()) + " records";
      leaf.depth = depth + 1;
      leaf.est_rows = leaf_rows[i];
      leaf.cost_seconds = leaf_cost[i];
      plan.operators.push_back(std::move(leaf));
    }
  }
  for (const OperatorPlan& node : plan.operators) {
    plan.total_cost_seconds += node.cost_seconds;
  }
  return plan;
}

// --- Execution -------------------------------------------------------------

Result<PipelineStats> PipelineQuery::Run(RowSink* sink) {
  // The single-query service, exactly like JoinQuery::Run: an inline
  // scheduler owning this query's budget, so standalone pipelines and
  // multi-tenant submissions execute the same admission + execution path.
  ServiceOptions service_options;
  service_options.global_memory_bytes = options_.memory_bytes;
  service_options.worker_threads = 0;
  service_options.buffer_pool_pages = 0;
  SpatialService service(service_options);
  return service.Run(*this, sink);
}

Result<PipelineStats> PipelineQuery::RunDirect(RowSink* sink) {
  SJ_RETURN_IF_ERROR(Validate());
  if (options_.memory_bytes < kMinMemoryBytes) {
    return Status::FailedPrecondition(
        "memory budget " + std::to_string(options_.memory_bytes) +
        " B is below the supported floor of " +
        std::to_string(kMinMemoryBytes) +
        " B (kMinMemoryBytes, 64 KiB); raise PipelineQuery::MemoryBytes / "
        "JoinOptions::memory_bytes");
  }
  std::shared_ptr<MemoryArbiter> arbiter =
      arbiter_override_ != nullptr
          ? arbiter_override_
          : std::make_shared<MemoryArbiter>(options_.memory_bytes,
                                            options_.strict_memory_accounting);

  DiskModel* main_disk = joiner_->disk();
  // The pipeline's own scratch disk: rect maps and aggregation spills live
  // here so their traffic — some of it concurrent with the join, whose
  // stats are measured as a main-disk delta — is accounted exactly once.
  DiskModel op_disk(main_disk->machine());
  PipelineContext ctx;
  ctx.disk = &op_disk;
  ctx.arbiter = arbiter.get();
  ctx.storage = options_.storage.get();
  ctx.prefetch = PrefetchContextOf(options_);

  PipelineStats out;
  ThreadCpuTimer cpu;
  DiskStats main_mark = main_disk->stats();

  // Wire the chain sink-first: user sink <- counter <- ops... <- source.
  std::vector<std::unique_ptr<PipelineOperator>> chain = BuildChain();
  CountingForward counter(sink);
  RowSink* head = &counter;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    (*it)->set_downstream(head);
    head = it->get();
  }
  for (auto& op : chain) SJ_RETURN_IF_ERROR(op->Open(ctx));

  if (inputs_.size() == 1) {
    RectF window = window_;
    if (!has_window_) {
      window = inputs_[0].extent();
      if (!window.Valid()) {
        SJ_ASSIGN_OR_RETURN(window, EnsureExtent(inputs_[0].stream()));
      }
    }
    WindowScan scan(inputs_[0], window, HistogramFor(0));
    SJ_RETURN_IF_ERROR(scan.Run(ctx, head));
    for (auto& op : chain) SJ_RETURN_IF_ERROR(op->Finish());
    out.operators.push_back(scan.stats());
  } else {
    // Windowed-overlay plan: reduce every input to its in-window records
    // before the join. Ids are preserved, so the user's histograms remain
    // conservative pruners and FeatureStores stay valid for refinement.
    std::vector<JoinInput> join_inputs = inputs_;
    std::vector<std::unique_ptr<Pager>> owned_pagers;
    if (has_window_) {
      for (size_t i = 0; i < inputs_.size(); ++i) {
        WindowScan scan(inputs_[i], window_, HistogramFor(i));
        SJ_ASSIGN_OR_RETURN(
            std::unique_ptr<Pager> pager,
            MakePager(ctx.storage, main_disk,
                      "pipeline.window." + std::to_string(i)));
        StreamWriter<RectF> writer(pager.get());
        MaterializeSink materialize(&writer);
        const PageId first = writer.first_page();
        SJ_RETURN_IF_ERROR(scan.Run(ctx, &materialize));
        SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
        DatasetRef windowed;
        windowed.range = StreamRange{pager.get(), first, n};
        windowed.extent = materialize.extent();
        join_inputs[i] = JoinInput::FromStream(windowed);
        owned_pagers.push_back(std::move(pager));
        out.operators.push_back(scan.stats());
      }
    }

    // One id -> MBR resolver per input, under the shared arbiter.
    std::vector<std::unique_ptr<RectResolver>> resolvers;
    std::vector<RectResolver*> resolver_ptrs;
    for (size_t i = 0; i < join_inputs.size(); ++i) {
      SJ_ASSIGN_OR_RETURN(
          std::unique_ptr<RectResolver> resolver,
          RectResolver::Build(join_inputs[i], &op_disk, arbiter.get(),
                              ctx.storage, ctx.prefetch,
                              "pipeline.in" + std::to_string(i),
                              SortConfigOf(options_)));
      resolver_ptrs.push_back(resolver.get());
      resolvers.push_back(std::move(resolver));
    }
    JoinRowAdapter adapter(resolver_ptrs, head);

    JoinQuery jq(*joiner_);
    jq.mutable_options() = options_;
    for (const JoinInput& input : join_inputs) jq.Input(input);
    for (const auto& [i, h] : histograms_) jq.WithHistogram(i, h);
    for (const auto& [i, f] : features_) jq.WithFeatures(i, f);
    jq.Predicate(predicate_.kind, predicate_.epsilon);
    jq.UseArbiter(arbiter);

    // Close the preparation segment: the join's own measurement (which
    // includes parallel shards the main delta would miss) takes over.
    out.host_cpu_seconds += cpu.Elapsed();
    out.disk += main_disk->stats() - main_mark;

    uint64_t join_rows = 0;
    if (join_inputs.size() == 2) {
      jq.Algorithm(algorithm_);
      SJ_ASSIGN_OR_RETURN(PlanDecision decision, jq.Explain());
      out.join_algorithm = decision.algorithm;
      SJ_ASSIGN_OR_RETURN(JoinStats join_stats, jq.RunDirect(&adapter));
      out.disk += join_stats.disk;
      out.host_cpu_seconds += join_stats.host_cpu_seconds;
      out.candidate_count = join_stats.candidate_count;
      out.refine_pages_read = join_stats.refine_pages_read;
      join_rows = join_stats.output_count;
    } else {
      SJ_ASSIGN_OR_RETURN(MultiwayStats join_stats,
                          jq.Run(static_cast<TupleSink*>(&adapter)));
      out.disk += join_stats.disk;
      out.host_cpu_seconds += join_stats.host_cpu_seconds;
      out.candidate_count = join_stats.candidate_count;
      out.refine_pages_read = join_stats.refine_pages_read;
      join_rows = join_stats.output_count;
    }
    cpu.Restart();
    main_mark = main_disk->stats();

    SJ_RETURN_IF_ERROR(adapter.Finish());
    for (auto& op : chain) SJ_RETURN_IF_ERROR(op->Finish());

    OperatorStats join_op;
    join_op.name = join_inputs.size() == 2
                       ? std::string("SpatialJoin[") +
                             ToString(out.join_algorithm) + "]"
                       : "MultiwayJoin";
    join_op.rows_in = join_rows;
    join_op.rows_out = adapter.rows_forwarded();
    for (const RectResolver* r : resolver_ptrs) {
      join_op.pages_read += r->lookup_pages_read();
    }
    out.operators.push_back(std::move(join_op));
  }

  for (auto& op : chain) out.operators.push_back(op->stats());
  out.output_count = counter.count();
  out.host_cpu_seconds += cpu.Elapsed();
  out.disk += main_disk->stats() - main_mark;
  out.disk += op_disk.stats();
  out.peak_memory_bytes = arbiter->peak_bytes();
  out.memory_components = arbiter->ComponentStats();
  return out;
}

}  // namespace sj
