#include "core/join_query.h"

#include <cmath>
#include <string>
#include <utility>

#include "io/stream.h"
#include "refine/refine.h"
#include "service/spatial_service.h"
#include "util/timer.h"

namespace sj {

namespace {

/// Folds the compile step's own I/O and CPU (ε-expansion passes, tree
/// rebuilds) into the reported stats, so a query's counters cover all the
/// work it caused.
template <typename Stats>
void FoldCompileOverhead(const CompiledPlan& plan, Stats* stats) {
  stats->disk += plan.compile_disk;
  stats->host_cpu_seconds += plan.compile_cpu_seconds;
}

Status MissingFeaturesError(size_t index, bool multiway) {
  return Status::FailedPrecondition(
      std::string("refine=true but input #") + std::to_string(index) +
      (multiway ? " of the multiway join" : "") +
      " has no FeatureStore: attach the relation's exact geometry with "
      "JoinInput::WithFeatures or JoinQuery::WithFeatures before running "
      "a refining query");
}

}  // namespace

JoinQuery& JoinQuery::WithFeatures(size_t index, const FeatureStore* store) {
  features_.emplace_back(index, store);
  return *this;
}

Status JoinQuery::ApplyDistanceTransform(CompiledPlan& plan) {
  const double eps = plan.predicate.epsilon;
  // The transform's buffers (collected rectangles, and for ST the
  // expanded side's bulk-load sort) are governed like everything else.
  MemoryGrant transform_grant = plan.arbiter->AcquireShrinkable(
      grants::kRTreeBulkLoad, plan.options.memory_bytes / 2,
      RunLayout::kMinSortMemoryBytes);
  // Expand the side that avoids disturbing an index when possible: a
  // stream side if there is one, else side 1 (rebuilt below when the
  // forced algorithm needs the index back).
  size_t side = 1;
  if (plan.inputs[1].indexed() && !plan.inputs[0].indexed()) side = 0;
  const JoinInput original = plan.inputs[side];

  std::vector<RectF> rects;
  if (original.indexed()) {
    SJ_RETURN_IF_ERROR(original.rtree()->CollectAll(&rects));
  } else {
    const StreamRange& range = original.stream().range;
    StreamReader<RectF> reader(range.pager, range.first_page, range.count);
    while (std::optional<RectF> r = reader.Next()) rects.push_back(*r);
  }
  for (RectF& r : rects) r = ExpandRectForDistance(r, eps);
  transform_grant.NoteUsage(rects.size() * sizeof(RectF));

  SJ_ASSIGN_OR_RETURN(
      auto pager,
      MakePager(plan.options.storage.get(), plan.disk, "distance.expanded"));
  StreamWriter<RectF> writer(pager.get());
  const PageId first = writer.first_page();
  for (const RectF& r : rects) writer.Append(r);
  SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
  DatasetRef expanded;
  expanded.range = StreamRange{pager.get(), first, n};
  expanded.extent = ExpandRectForDistance(original.extent(), eps);

  JoinInput replacement = JoinInput::FromStream(expanded);
  if (algorithm_ == JoinAlgorithm::kST) {
    // ST traverses two indexes, so the expanded side gets a temporary
    // tree of its own (same parameters as the original index).
    SJ_ASSIGN_OR_RETURN(auto tree_pager,
                        MakePager(plan.options.storage.get(), plan.disk,
                                  "distance.expanded.tree"));
    SJ_ASSIGN_OR_RETURN(auto scratch,
                        MakePager(plan.options.storage.get(), plan.disk,
                                  "distance.expanded.scratch"));
    const RTreeParams params =
        original.indexed() ? original.rtree()->params() : RTreeParams();
    SJ_ASSIGN_OR_RETURN(
        RTree tree,
        RTree::BulkLoadHilbert(tree_pager.get(), expanded.range,
                               scratch.get(), params,
                               transform_grant.bytes()));
    plan.owned_trees.push_back(std::make_unique<RTree>(std::move(tree)));
    replacement = JoinInput::FromRTree(plan.owned_trees.back().get());
    plan.owned_pagers.push_back(std::move(tree_pager));
    plan.owned_pagers.push_back(std::move(scratch));
  }
  replacement.WithFeatures(original.features());
  plan.inputs[side] = replacement;
  plan.owned_pagers.push_back(std::move(pager));

  // The user's histograms describe the *unexpanded* relations; pruning an
  // index traversal with them could now drop pairs discovered only in the
  // ε-fringe, so traversals fall back to extent-only pruning. (The
  // planner already consumed them for its estimate above the transform.)
  for (const GridHistogram*& hist : plan.prune_histograms) hist = nullptr;
  return Status::OK();
}

Result<CompiledPlan> JoinQuery::Compile(bool multiway, bool plan_only) {
  CompiledPlan plan;
  plan.disk = joiner_->disk();
  plan.options = options_;
  plan.predicate = predicate_;

  // Absurdly small budgets used to flow into divisions downstream; the
  // floor is kMinMemoryBytes (64 KiB), below which the component floors
  // no longer fit together.
  if (options_.memory_bytes < kMinMemoryBytes) {
    return Status::FailedPrecondition(
        "memory budget " + std::to_string(options_.memory_bytes) +
        " B is below the supported floor of " +
        std::to_string(kMinMemoryBytes) +
        " B (kMinMemoryBytes, 64 KiB); raise JoinQuery::MemoryBytes / "
        "JoinOptions::memory_bytes");
  }
  plan.arbiter = arbiter_override_ != nullptr
                     ? arbiter_override_
                     : std::make_shared<MemoryArbiter>(
                           options_.memory_bytes,
                           options_.strict_memory_accounting);

  if (multiway) {
    if (inputs_.size() < 2) {
      return Status::InvalidArgument("multiway join needs at least 2 inputs");
    }
  } else if (inputs_.size() != 2) {
    return Status::InvalidArgument(
        "pairwise JoinQuery::Run needs exactly 2 inputs (got " +
        std::to_string(inputs_.size()) +
        "); run k-way joins against a TupleSink");
  }
  plan.inputs = inputs_;
  plan.prune_histograms.assign(plan.inputs.size(), nullptr);
  for (const auto& [index, store] : features_) {
    if (index >= plan.inputs.size()) {
      return Status::InvalidArgument(
          "JoinQuery::WithFeatures index " + std::to_string(index) +
          " out of range: the query has " +
          std::to_string(plan.inputs.size()) + " inputs");
    }
    plan.inputs[index].WithFeatures(store);
  }
  for (const auto& [index, hist] : histograms_) {
    if (index >= plan.inputs.size()) {
      return Status::InvalidArgument(
          "JoinQuery::WithHistogram index " + std::to_string(index) +
          " out of range: the query has " +
          std::to_string(plan.inputs.size()) + " inputs");
    }
    plan.prune_histograms[index] = hist;
  }

  // Predicate rules (see join/predicate.h).
  if (predicate_.kind == Predicate::kDistanceWithin &&
      !(predicate_.epsilon >= 0.0)) {
    return Status::InvalidArgument(
        "Predicate::kDistanceWithin needs a non-negative epsilon");
  }
  if (multiway && predicate_.kind != Predicate::kIntersects) {
    return Status::InvalidArgument(
        std::string("k-way joins support Predicate::kIntersects only (got ") +
        ToString(predicate_.kind) + ")");
  }
  if (predicate_.kind == Predicate::kContains && !plan.options.refine) {
    return Status::InvalidArgument(
        "Predicate::kContains is a refinement-stage predicate over exact "
        "geometry: enable Refine(true) and attach FeatureStores to both "
        "inputs");
  }
  if (plan.options.refine) {
    for (size_t i = 0; i < plan.inputs.size(); ++i) {
      if (plan.inputs[i].features() == nullptr) {
        return MissingFeaturesError(i, multiway);
      }
    }
  }

  // Planning, then transforms. The order matters: the planner sees the
  // unexpanded inputs while the user's histograms are still attached, so
  // they sharpen the touched-fraction estimate as documented; only after
  // that does the ε-transform rewrite a side (and drop the histograms,
  // which describe the unexpanded data). The transform's own passes are
  // measured and folded into the query's stats by Run.
  if (!multiway) {
    // Exact PBSM grid reporting only for Explain (plan_only): a PBSM
    // execution re-derives its grid from the same inputs anyway, and
    // the other executors never read it.
    plan.decision =
        joiner_->Plan(plan.inputs[0], plan.inputs[1], plan.prune_histogram(0),
                      plan.prune_histogram(1), plan.options,
                      /*exact_pbsm_preplan=*/plan_only);
    if (algorithm_ != JoinAlgorithm::kAuto) {
      plan.decision.algorithm = algorithm_;
      plan.decision.memory = PlanJoinMemory(
          algorithm_, plan.options,
          (plan.inputs[0].count() + plan.inputs[1].count()) * sizeof(RectF));
      plan.decision.rationale =
          std::string("algorithm forced to ") + ToString(algorithm_) +
          " by the query";
    }
    if (!plan_only && predicate_.kind == Predicate::kDistanceWithin) {
      JoinMeasurement compile_measurement(plan.disk);
      SJ_RETURN_IF_ERROR(ApplyDistanceTransform(plan));
      const JoinStats compile_stats = compile_measurement.Finish();
      plan.compile_disk = compile_stats.disk;
      plan.compile_cpu_seconds = compile_stats.host_cpu_seconds;
    }
  }
  return plan;
}

Result<PlanDecision> JoinQuery::Explain() {
  // plan_only: validation + planning without the ε-expansion
  // materialization (the planner runs before the transform either way,
  // so the decision is exactly what Run would execute).
  SJ_ASSIGN_OR_RETURN(CompiledPlan plan,
                      Compile(/*multiway=*/false, /*plan_only=*/true));
  return plan.decision;
}

Result<JoinStats> JoinQuery::Run(JoinSink* sink) {
  // The single-query service: an inline scheduler owning exactly this
  // query's budget (no shared workers, no shared pool), so the standalone
  // path and the multi-tenant path execute the same admission + execution
  // code and report errors through the same taxonomy.
  ServiceOptions service_options;
  service_options.global_memory_bytes = options_.memory_bytes;
  service_options.worker_threads = 0;
  service_options.buffer_pool_pages = 0;
  SpatialService service(service_options);
  return service.Run(*this, sink);
}

Result<JoinStats> JoinQuery::RunDirect(JoinSink* sink) {
  SJ_ASSIGN_OR_RETURN(CompiledPlan plan, Compile(/*multiway=*/false));
  const JoinExecutor* executor = FindExecutor(plan.decision.algorithm);
  if (executor == nullptr) {
    return Status::Internal(
        std::string("no JoinExecutor registered for algorithm ") +
        ToString(plan.decision.algorithm));
  }
  SJ_RETURN_IF_ERROR(executor->Validate(plan));
  if (!plan.options.refine) {
    SJ_ASSIGN_OR_RETURN(JoinStats stats, executor->Execute(plan, sink));
    stats.candidate_count = stats.output_count;
    FoldCompileOverhead(plan, &stats);
    FillMemoryStats(*plan.arbiter, &stats);
    return stats;
  }
  // Filter step: the MBR join buffers candidates; refinement resolves
  // them against exact geometry and forwards survivors to the caller.
  CollectingSink candidates;
  SJ_ASSIGN_OR_RETURN(JoinStats stats, executor->Execute(plan, &candidates));
  ThreadCpuTimer refine_cpu;
  SJ_ASSIGN_OR_RETURN(
      RefineStats refined,
      RefinePairs(candidates.pairs(), *plan.inputs[0].features(),
                  *plan.inputs[1].features(), plan.options, sink,
                  plan.predicate, plan.arbiter.get()));
  stats.candidate_count = refined.candidates;
  stats.output_count = refined.results;
  stats.refine_pages_read = refined.pages_read;
  stats.disk += refined.disk;
  stats.host_cpu_seconds += refine_cpu.Elapsed() + refined.host_cpu_seconds;
  FoldCompileOverhead(plan, &stats);
  FillMemoryStats(*plan.arbiter, &stats);
  return stats;
}

Result<MultiwayStats> JoinQuery::Run(TupleSink* sink) {
  SJ_ASSIGN_OR_RETURN(CompiledPlan plan, Compile(/*multiway=*/true));
  auto fill_memory = [&plan](MultiwayStats* stats) {
    stats->peak_memory_bytes = plan.arbiter->peak_bytes();
    stats->memory_components = plan.arbiter->ComponentStats();
  };
  if (!plan.options.refine) {
    SJ_ASSIGN_OR_RETURN(MultiwayStats stats,
                        ExecuteMultiwayFilter(plan, sink));
    fill_memory(&stats);
    return stats;
  }
  std::vector<const FeatureStore*> stores;
  stores.reserve(plan.inputs.size());
  for (const JoinInput& input : plan.inputs) stores.push_back(input.features());
  // Filter step with candidates buffered in memory, then batched k-way
  // refinement with the pairwise exact predicate.
  CollectingTupleSink candidates;
  SJ_ASSIGN_OR_RETURN(MultiwayStats stats,
                      ExecuteMultiwayFilter(plan, &candidates));
  ThreadCpuTimer refine_cpu;
  SJ_ASSIGN_OR_RETURN(
      RefineStats refined,
      RefineTuples(candidates.tuples(), stores, plan.options, sink,
                   plan.arbiter.get()));
  stats.candidate_count = refined.candidates;
  stats.output_count = refined.results;
  stats.refine_pages_read = refined.pages_read;
  stats.disk += refined.disk;
  stats.host_cpu_seconds += refine_cpu.Elapsed() + refined.host_cpu_seconds;
  fill_memory(&stats);
  return stats;
}

}  // namespace sj
