#include "core/memory_arbiter.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace sj {

namespace {

std::string HumanKb(size_t bytes) {
  std::ostringstream os;
  if (bytes >= (1u << 20)) {
    os << (bytes >> 20) << " MB";
  } else {
    os << ((bytes + 1023) / 1024) << " KB";
  }
  return os.str();
}

}  // namespace

MemoryGrant::MemoryGrant(MemoryGrant&& other) noexcept
    : arbiter_(other.arbiter_),
      component_(std::move(other.component_)),
      bytes_(other.bytes_) {
  other.arbiter_ = nullptr;
  other.bytes_ = 0;
}

MemoryGrant& MemoryGrant::operator=(MemoryGrant&& other) noexcept {
  if (this != &other) {
    Release();
    arbiter_ = other.arbiter_;
    component_ = std::move(other.component_);
    bytes_ = other.bytes_;
    other.arbiter_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

MemoryGrant::~MemoryGrant() { Release(); }

void MemoryGrant::NoteUsage(size_t used_bytes) {
  if (arbiter_ == nullptr) return;
  arbiter_->NoteUsage(component_, bytes_, used_bytes);
}

bool MemoryGrant::TryGrow(size_t new_bytes) {
  if (arbiter_ == nullptr) return false;
  if (new_bytes <= bytes_) return true;
  if (!arbiter_->TryGrow(component_, new_bytes - bytes_)) return false;
  bytes_ = new_bytes;
  return true;
}

void MemoryGrant::Shrink(size_t new_bytes) {
  if (arbiter_ == nullptr || new_bytes >= bytes_) return;
  arbiter_->Release(component_, bytes_ - new_bytes);
  bytes_ = new_bytes;
}

void MemoryGrant::Release() {
  if (arbiter_ == nullptr) return;
  arbiter_->Release(component_, bytes_);
  arbiter_ = nullptr;
  bytes_ = 0;
}

MemoryArbiter::MemoryArbiter(size_t budget_bytes, bool strict)
    : budget_(budget_bytes), strict_(strict) {}

MemoryArbiter::~MemoryArbiter() {
  if (parent_grant_.active()) {
    // Tell the parent how much of the carved slice was actually at peak —
    // the global arbiter's per-query used high-water marks.
    parent_grant_.NoteUsage(peak_bytes());
  }
}

Result<std::shared_ptr<MemoryArbiter>> MemoryArbiter::CarveChild(
    std::string component, size_t bytes, bool strict) {
  SJ_ASSIGN_OR_RETURN(MemoryGrant slice, Acquire(std::move(component), bytes));
  auto child = std::make_shared<MemoryArbiter>(bytes, strict);
  child->parent_grant_ = std::move(slice);
  return child;
}

void MemoryArbiter::AddLocked(const std::string& component, size_t bytes) {
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  Component& c = components_[component];
  c.live += bytes;
  c.granted_high_water = std::max(c.granted_high_water, c.live);
}

Result<MemoryGrant> MemoryArbiter::Acquire(std::string component,
                                           size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_ || in_use_ > budget_ - bytes) {
    return Status::ResourceExhausted(
        "memory grant denied: component \"" + component + "\" asked for " +
        std::to_string(bytes) + " B but only " +
        std::to_string(budget_ - std::min(budget_, in_use_)) + " B of the " +
        std::to_string(budget_) + " B budget remain");
  }
  AddLocked(component, bytes);
  return MemoryGrant(this, std::move(component), bytes);
}

MemoryGrant MemoryArbiter::AcquireShrinkable(std::string component,
                                             size_t bytes,
                                             size_t floor_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t avail = budget_ - std::min(budget_, in_use_);
  // Shrink to availability but never below the floor — and never above
  // the request (a floor is a progress minimum, not a lower bound on
  // what the caller asked for).
  const size_t granted = std::min(bytes, std::max(avail, floor_bytes));
  AddLocked(component, granted);
  return MemoryGrant(this, std::move(component), granted);
}

void MemoryArbiter::FoldChild(const MemoryArbiter& child) {
  // Snapshot the child outside our lock (it has its own mutex).
  const size_t child_peak = child.peak_bytes();
  const std::vector<MemoryComponentStats> child_components =
      child.ComponentStats();
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = std::max(peak_, in_use_ + child_peak);
  for (const MemoryComponentStats& cc : child_components) {
    Component& c = components_[cc.component];
    c.granted_high_water =
        std::max(c.granted_high_water, cc.granted_high_water);
    c.used_high_water = std::max(c.used_high_water, cc.used_high_water);
  }
}

size_t MemoryArbiter::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

size_t MemoryArbiter::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_ - std::min(budget_, in_use_);
}

size_t MemoryArbiter::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::vector<MemoryComponentStats> MemoryArbiter::ComponentStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MemoryComponentStats> out;
  out.reserve(components_.size());
  for (const auto& [name, c] : components_) {
    out.push_back(
        MemoryComponentStats{name, c.granted_high_water, c.used_high_water});
  }
  return out;
}

std::string MemoryArbiter::Describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "budget " << HumanKb(budget_) << ", peak " << HumanKb(peak_);
  const char* sep = ": ";
  for (const auto& [name, c] : components_) {
    os << sep << name << " " << HumanKb(c.granted_high_water) << " granted";
    if (c.used_high_water > 0) os << " / " << HumanKb(c.used_high_water)
                                  << " used";
    sep = ", ";
  }
  return os.str();
}

void MemoryArbiter::Release(const std::string& component, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  SJ_DCHECK(bytes <= in_use_);
  in_use_ -= std::min(bytes, in_use_);
  Component& c = components_[component];
  c.live -= std::min(bytes, c.live);
}

void MemoryArbiter::NoteUsage(const std::string& component,
                              size_t granted_bytes, size_t used_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Component& c = components_[component];
  c.used_high_water = std::max(c.used_high_water, used_bytes);
  if (strict_) {
    SJ_CHECK(used_bytes <= granted_bytes)
        << "ungoverned allocation: component \"" << component << "\" used "
        << used_bytes << " B above its " << granted_bytes << " B grant ("
        << budget_ << " B budget)";
  }
}

bool MemoryArbiter::TryGrow(const std::string& component, size_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_use_ + delta > budget_) return false;
  AddLocked(component, delta);
  return true;
}

size_t MemoryPlan::GrantFor(std::string_view component) const {
  for (const MemoryGrantSpec& g : grants) {
    if (g.component == component) return g.bytes;
  }
  return 0;
}

std::string MemoryPlan::Describe() const {
  std::ostringstream os;
  os << "budget " << HumanKb(budget_bytes);
  const char* sep = ": ";
  for (const MemoryGrantSpec& g : grants) {
    os << sep << g.component << " " << HumanKb(g.bytes);
    sep = " + ";
  }
  return os.str();
}

}  // namespace sj
