#ifndef USJ_CORE_SPATIAL_JOIN_H_
#define USJ_CORE_SPATIAL_JOIN_H_

#include <string>

#include "core/cost_model.h"
#include "histogram/grid_histogram.h"
#include "join/join_types.h"
#include "join/multiway.h"
#include "join/pbsm.h"
#include "join/pq_join.h"
#include "join/sssj.h"
#include "join/st_join.h"
#include "refine/feature_store.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// One side of a join in the unified API: a relation that is either a
/// stream of MBRs (sorted or not) or a packed R-tree.
class JoinInput {
 public:
  enum class Kind { kStream, kSortedStream, kRTree };

  static JoinInput FromStream(const DatasetRef& ref) {
    return JoinInput(Kind::kStream, ref, nullptr);
  }
  /// The stream must already be sorted by OrderByYLo.
  static JoinInput FromSortedStream(const DatasetRef& ref) {
    return JoinInput(Kind::kSortedStream, ref, nullptr);
  }
  /// The tree must outlive the join.
  static JoinInput FromRTree(const RTree* tree) {
    return JoinInput(Kind::kRTree, DatasetRef{}, tree);
  }

  /// Attaches the relation's exact geometry (refinement step, see
  /// JoinOptions::refine). The store must outlive the join. Chainable:
  /// `JoinInput::FromStream(ref).WithFeatures(&store)` — the rvalue
  /// overload returns by value, so chaining off a temporary never hands
  /// out a dangling reference.
  JoinInput& WithFeatures(const FeatureStore* store) & {
    features_ = store;
    return *this;
  }
  JoinInput WithFeatures(const FeatureStore* store) && {
    features_ = store;
    return *this;
  }

  Kind kind() const { return kind_; }
  bool indexed() const { return kind_ == Kind::kRTree; }
  const DatasetRef& stream() const { return stream_; }
  const RTree* rtree() const { return rtree_; }
  const FeatureStore* features() const { return features_; }

  /// Number of MBR records in the relation.
  uint64_t count() const {
    return indexed() ? rtree_->meta().entry_count : stream_.count();
  }
  /// Pages occupied by the relation (index pages for trees).
  uint64_t pages() const;
  /// Spatial extent (must be computable without I/O for indexed inputs).
  RectF extent() const {
    return indexed() ? rtree_->bounding_box() : stream_.extent;
  }

 private:
  JoinInput(Kind kind, const DatasetRef& stream, const RTree* rtree)
      : kind_(kind), stream_(stream), rtree_(rtree) {}

  Kind kind_;
  DatasetRef stream_;
  const RTree* rtree_;
  const FeatureStore* features_ = nullptr;
};

/// Which algorithm executes a join.
enum class JoinAlgorithm {
  kAuto,  ///< Let the planner decide from the cost model.
  kSSSJ,
  kPBSM,
  kST,
  kPQ,
};

const char* ToString(JoinAlgorithm algo);

/// The planner's verdict, with the numbers behind it.
struct PlanDecision {
  JoinAlgorithm algorithm = JoinAlgorithm::kSSSJ;
  /// Estimated fraction of index pages a PQ/ST traversal would touch.
  double touched_fraction = 1.0;
  double index_cost_seconds = 0.0;
  double stream_cost_seconds = 0.0;
  /// Estimated refinement I/O (0 unless options.refine and both inputs
  /// carry FeatureStores). Included in both plan costs above — it is the
  /// same for every filter algorithm, so it never flips the choice, but
  /// the totals stay honest end-to-end estimates.
  double refine_cost_seconds = 0.0;
  std::string rationale;
};

/// The unified spatial join facade (deliverable of the paper's §4 + §6.3):
/// accepts any mix of indexed and non-indexed inputs, optionally consults
/// the cost model, and runs the chosen algorithm.
class SpatialJoiner {
 public:
  /// `disk` provides temporary space and cost accounting; its MachineModel
  /// also parameterizes the planner's cost model.
  SpatialJoiner(DiskModel* disk, JoinOptions options)
      : disk_(disk), options_(options), cost_model_(disk->machine()) {}

  /// Chooses an algorithm for the pair of inputs. Histograms (over a
  /// shared grid) refine the touched-fraction estimate; without them the
  /// planner falls back to extent-overlap ratios.
  PlanDecision Plan(const JoinInput& a, const JoinInput& b,
                    const GridHistogram* hist_a = nullptr,
                    const GridHistogram* hist_b = nullptr) const;

  /// Runs the join with `algorithm` (kAuto = use Plan()). Results go to
  /// `sink` as (id from a, id from b) pairs.
  Result<JoinStats> Join(const JoinInput& a, const JoinInput& b,
                         JoinSink* sink,
                         JoinAlgorithm algorithm = JoinAlgorithm::kAuto,
                         const GridHistogram* hist_a = nullptr,
                         const GridHistogram* hist_b = nullptr);

  /// k-way intersection join over any mix of inputs (§4's extension).
  Result<MultiwayStats> MultiwayJoin(const std::vector<JoinInput>& inputs,
                                     TupleSink* sink);

  const CostModel& cost_model() const { return cost_model_; }
  DiskModel* disk() const { return disk_; }
  const JoinOptions& options() const { return options_; }

 private:
  /// The MBR filter step: runs `algorithm` without refinement.
  Result<JoinStats> RunFilterJoin(const JoinInput& a, const JoinInput& b,
                                  JoinSink* sink, JoinAlgorithm algorithm,
                                  const GridHistogram* hist_a,
                                  const GridHistogram* hist_b);

  /// Materializes an indexed input as a stream (sequential leaf scan), for
  /// running stream algorithms against trees.
  Result<DatasetRef> ExtractLeaves(const RTree& tree);

  /// Sorted source over any input (sorting streams as needed). The
  /// returned pagers (if any) own temporary space and must stay alive for
  /// the source's lifetime. Indexed inputs become *selective* PQ
  /// traversals pruned by the other input's extent (always safe) and
  /// occupancy histogram (when provided) — the §6.3 refinement that makes
  /// localized joins touch only the relevant part of the index.
  struct PreparedSource {
    std::unique_ptr<SortedRectSource> source;
    std::unique_ptr<Pager> scratch;
    std::unique_ptr<Pager> sorted;
    std::unique_ptr<RectF> filter;  // Owned pruning rectangle.
    uint64_t index_pages_read() const;
    RTreePQSource* pq = nullptr;  // Set when the source is an index adapter.
  };
  Result<PreparedSource> PrepareSource(const JoinInput& input,
                                       const RectF* other_extent = nullptr,
                                       const GridHistogram* other_hist =
                                           nullptr);

  DiskModel* disk_;
  JoinOptions options_;
  CostModel cost_model_;
  /// Temporary streams created by ExtractLeaves; kept alive for the
  /// joiner's lifetime so returned DatasetRefs stay valid.
  std::vector<std::unique_ptr<Pager>> extracted_;
};

}  // namespace sj

#endif  // USJ_CORE_SPATIAL_JOIN_H_
