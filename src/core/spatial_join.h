#ifndef USJ_CORE_SPATIAL_JOIN_H_
#define USJ_CORE_SPATIAL_JOIN_H_

#include <vector>

#include "core/cost_model.h"
#include "histogram/grid_histogram.h"
#include "join/executor.h"
#include "join/join_types.h"
#include "join/multiway.h"
#include "refine/feature_store.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sj {

/// The unified spatial join facade (deliverable of the paper's §4 + §6.3):
/// shared machine state (the simulated disk, the cost model) plus default
/// JoinOptions for every query posed against it.
///
/// Queries are built with JoinQuery (core/join_query.h), which compiles a
/// CompiledPlan and dispatches to the ExecutorRegistry; the Join and
/// MultiwayJoin methods below are thin compatibility wrappers over that
/// pipeline. The joiner itself only plans (Plan — pure cost-model
/// arithmetic, no I/O) and carries state; it is never mutated by a query,
/// so one joiner can serve many concurrent query *descriptions* (actual
/// executions share the DiskModel and must be serialized by the caller).
class SpatialJoiner {
 public:
  /// `disk` provides temporary space and cost accounting; its MachineModel
  /// also parameterizes the planner's cost model.
  SpatialJoiner(DiskModel* disk, JoinOptions options)
      : disk_(disk), options_(options), cost_model_(disk->machine()) {}

  /// Chooses an algorithm for the pair of inputs. Histograms (over a
  /// shared grid) refine the touched-fraction estimate; without them the
  /// planner falls back to extent-overlap ratios.
  PlanDecision Plan(const JoinInput& a, const JoinInput& b,
                    const GridHistogram* hist_a = nullptr,
                    const GridHistogram* hist_b = nullptr) const;

  /// Plan under explicit options (the per-query variant: JoinQuery passes
  /// its effective options so overrides like Refine(true) price the
  /// refinement term consistently). The 4-argument form above is this
  /// with the joiner's own defaults.
  PlanDecision Plan(const JoinInput& a, const JoinInput& b,
                    const GridHistogram* hist_a, const GridHistogram* hist_b,
                    const JoinOptions& options) const;

  /// Plan with control over the PBSM pre-plan fidelity:
  /// `exact_pbsm_preplan` = true (the default elsewhere) runs the real
  /// PartitionPlanner when adaptive partitioning has histograms, so
  /// Explain reports the exact grid; false keeps the cheap formula
  /// estimates — JoinQuery::Run uses this, because a PBSM execution
  /// plans its own grid anyway and every other algorithm ignores it.
  PlanDecision Plan(const JoinInput& a, const JoinInput& b,
                    const GridHistogram* hist_a, const GridHistogram* hist_b,
                    const JoinOptions& options, bool exact_pbsm_preplan) const;

  /// Legacy pairwise entry point — equivalent to
  ///
  ///   JoinQuery(*this).Input(a).Input(b)
  ///       .WithHistogram(0, hist_a).WithHistogram(1, hist_b)
  ///       .Algorithm(algorithm).Run(sink)
  ///
  /// New code should build the JoinQuery directly: it attaches histograms
  /// to inputs instead of a positional tail, overrides any option per
  /// query, and selects non-intersection predicates.
  [[deprecated(
      "build a JoinQuery instead: JoinQuery(joiner).Input(a).Input(b)"
      ".Run(sink) — see the migration table in README.md")]]
  Result<JoinStats> Join(const JoinInput& a, const JoinInput& b,
                         JoinSink* sink,
                         JoinAlgorithm algorithm = JoinAlgorithm::kAuto,
                         const GridHistogram* hist_a = nullptr,
                         const GridHistogram* hist_b = nullptr);

  /// Legacy k-way entry point (§4's extension) — equivalent to a
  /// JoinQuery with every element of `inputs` added via Input() and run
  /// against a TupleSink.
  [[deprecated(
      "build a JoinQuery instead: add each input with .Input() and Run "
      "against a TupleSink — see the migration table in README.md")]]
  Result<MultiwayStats> MultiwayJoin(const std::vector<JoinInput>& inputs,
                                     TupleSink* sink);

  const CostModel& cost_model() const { return cost_model_; }
  DiskModel* disk() const { return disk_; }
  const JoinOptions& options() const { return options_; }

 private:
  DiskModel* disk_;
  JoinOptions options_;
  CostModel cost_model_;
};

}  // namespace sj

#endif  // USJ_CORE_SPATIAL_JOIN_H_
