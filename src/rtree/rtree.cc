#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>

#include "geometry/hilbert.h"
#include "io/stream.h"
#include "util/logging.h"

namespace sj {
namespace {

/// Hilbert-keyed rectangle, the record type sorted during bulk loading.
/// Split 64-bit key into two 32-bit halves to keep 4-byte alignment and a
/// 28-byte record (no padding).
struct HilbertRect {
  uint32_t key_hi = 0;
  uint32_t key_lo = 0;
  RectF rect;
};
static_assert(sizeof(HilbertRect) == 28);

struct HilbertLess {
  bool operator()(const HilbertRect& a, const HilbertRect& b) const {
    if (a.key_hi != b.key_hi) return a.key_hi < b.key_hi;
    if (a.key_lo != b.key_lo) return a.key_lo < b.key_lo;
    return a.rect.id < b.rect.id;
  }
};

struct CenterXLess {
  bool operator()(const RectF& a, const RectF& b) const {
    const float ax = a.CenterX(), bx = b.CenterX();
    if (ax != bx) return ax < bx;
    return a.id < b.id;
  }
};

struct CenterYLess {
  bool operator()(const RectF& a, const RectF& b) const {
    const float ay = a.CenterY(), by = b.CenterY();
    if (ay != by) return ay < by;
    return a.id < b.id;
  }
};

Result<RectF> ComputeStreamExtent(const StreamRange& input) {
  StreamReader<RectF> reader(input.pager, input.first_page, input.count);
  RectF extent = RectF::Empty();
  while (std::optional<RectF> r = reader.Next()) {
    if (!r->Valid()) {
      return Status::InvalidArgument("malformed rectangle in bulk-load input: " +
                                     r->ToString());
    }
    extent.ExtendTo(*r);
  }
  extent.id = 0;
  return extent;
}

/// Incremental node packer implementing the paper's fill heuristic: fill
/// to `bulk_fill * max_entries`, then keep adding while the area grows by
/// at most `bulk_area_slack` per added rectangle.
class NodePacker {
 public:
  NodePacker(Pager* pager, const RTreeParams& params, uint16_t level,
             std::vector<RectF>* parents)
      : pager_(pager),
        params_(params),
        level_(level),
        parents_(parents),
        builder_(buf_) {
    base_fill_ = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(params.bulk_fill *
                                             params.max_entries)));
    base_fill_ = std::min(base_fill_, params.max_entries);
    builder_.Reset(level_);
  }

  Status Add(const RectF& r) {
    if (builder_.count() >= base_fill_) {
      const bool full = builder_.count() >= params_.max_entries;
      const double area = mbr_.Area();
      RectF grown = mbr_;
      grown.ExtendTo(r);
      const bool grows_too_much =
          area > 0.0 ? grown.Area() > (1.0 + params_.bulk_area_slack) * area
                     : grown.Area() > 0.0;
      if (full || grows_too_much) SJ_RETURN_IF_ERROR(Flush());
    }
    if (builder_.count() == 0) mbr_ = RectF::Empty();
    builder_.Append(r);
    mbr_.ExtendTo(r);
    return Status::OK();
  }

  /// Writes the final partial node (if any); returns nodes written.
  Result<uint64_t> Finish() {
    if (builder_.count() > 0) SJ_RETURN_IF_ERROR(Flush());
    return nodes_written_;
  }

 private:
  Status Flush() {
    const PageId page = pager_->Allocate(1);
    SJ_RETURN_IF_ERROR(pager_->WritePage(page, builder_.data()));
    RectF parent_ref = mbr_;
    parent_ref.id = page;
    parents_->push_back(parent_ref);
    nodes_written_++;
    builder_.Reset(level_);
    mbr_ = RectF::Empty();
    return Status::OK();
  }

  Pager* pager_;
  const RTreeParams& params_;
  uint16_t level_;
  std::vector<RectF>* parents_;
  uint8_t buf_[kPageSize] = {};
  NodeBuilder builder_;
  RectF mbr_ = RectF::Empty();
  uint32_t base_fill_;
  uint64_t nodes_written_ = 0;
};

}  // namespace

Status RTree::PackLevel(Pager* pager, const RTreeParams& params,
                        uint16_t level, const std::vector<RectF>& entries,
                        std::vector<RectF>* parents, uint64_t* nodes_written) {
  NodePacker packer(pager, params, level, parents);
  for (const RectF& e : entries) SJ_RETURN_IF_ERROR(packer.Add(e));
  SJ_ASSIGN_OR_RETURN(*nodes_written, packer.Finish());
  return Status::OK();
}

Status RTree::BuildUpperLevels(Pager* pager, const RTreeParams& params,
                               std::vector<RectF> level_refs,
                               uint64_t leaf_count, uint64_t entry_count,
                               RectF bbox, RTreeMeta* meta) {
  uint64_t nodes = leaf_count;
  uint16_t level = 1;
  while (level_refs.size() > 1) {
    std::vector<RectF> parents;
    uint64_t written = 0;
    SJ_RETURN_IF_ERROR(PackLevel(pager, params, level, level_refs, &parents,
                                 &written));
    nodes += written;
    level_refs = std::move(parents);
    level++;
  }
  SJ_CHECK(level_refs.size() == 1);
  meta->root = level_refs[0].id;
  meta->height = level;  // Levels 0 .. level-1 exist.
  meta->node_count = nodes;
  meta->leaf_count = leaf_count;
  meta->entry_count = entry_count;
  meta->bounding_box = bbox;
  return Status::OK();
}

Result<RTree> RTree::BulkLoadHilbert(Pager* tree_pager,
                                     const StreamRange& input, Pager* scratch,
                                     const RTreeParams& params,
                                     size_t memory_bytes,
                                     const SortConfig& sort_config) {
  SJ_CHECK(params.max_entries >= 2 && params.max_entries <= kNodeCapacity)
      << "fanout out of range" << params.max_entries;
  if (input.count == 0) return CreateEmpty(tree_pager, params);

  // Pass 1: global extent (needed to grid the Hilbert curve).
  SJ_ASSIGN_OR_RETURN(RectF extent, ComputeStreamExtent(input));

  // Pass 2: attach Hilbert keys of rectangle centers.
  const HilbertCurve curve(params.hilbert_order);
  StreamRange keyed;
  {
    StreamReader<RectF> reader(input.pager, input.first_page, input.count);
    StreamWriter<HilbertRect> writer(scratch);
    const PageId first = writer.first_page();
    while (std::optional<RectF> r = reader.Next()) {
      const uint64_t key = HilbertKey(curve, extent, r->CenterX(), r->CenterY());
      HilbertRect hr;
      hr.key_hi = static_cast<uint32_t>(key >> 32);
      hr.key_lo = static_cast<uint32_t>(key);
      hr.rect = *r;
      writer.Append(hr);
    }
    SJ_ASSIGN_OR_RETURN(uint64_t n, writer.Finish());
    keyed = StreamRange{scratch, first, n};
  }

  // Sort by Hilbert key.
  ExternalSorter<HilbertRect, HilbertLess> sorter(
      memory_bytes, scratch, HilbertLess(), /*arbiter=*/nullptr,
      PrefetchContext(), sort_config);
  SJ_ASSIGN_OR_RETURN(StreamRange sorted, sorter.Sort(keyed, scratch));

  // Pass 3: pack leaves in key order; leaves land on consecutive pages.
  std::vector<RectF> leaf_refs;
  uint64_t leaf_count = 0;
  {
    NodePacker packer(tree_pager, params, /*level=*/0, &leaf_refs);
    StreamReader<HilbertRect> reader(sorted.pager, sorted.first_page,
                                     sorted.count);
    while (std::optional<HilbertRect> hr = reader.Next()) {
      SJ_RETURN_IF_ERROR(packer.Add(hr->rect));
    }
    SJ_ASSIGN_OR_RETURN(leaf_count, packer.Finish());
  }

  RTreeMeta meta;
  SJ_RETURN_IF_ERROR(BuildUpperLevels(tree_pager, params, std::move(leaf_refs),
                                      leaf_count, input.count, extent, &meta));
  return RTree(tree_pager, params, meta);
}

Result<RTree> RTree::BulkLoadSTR(Pager* tree_pager, const StreamRange& input,
                                 Pager* scratch, const RTreeParams& params,
                                 size_t memory_bytes,
                                 const SortConfig& sort_config) {
  SJ_CHECK(params.max_entries >= 2 && params.max_entries <= kNodeCapacity);
  if (input.count == 0) return CreateEmpty(tree_pager, params);

  SJ_ASSIGN_OR_RETURN(RectF extent, ComputeStreamExtent(input));

  // Sort everything by center x.
  ExternalSorter<RectF, CenterXLess> sorter(
      memory_bytes, scratch, CenterXLess(), /*arbiter=*/nullptr,
      PrefetchContext(), sort_config);
  SJ_ASSIGN_OR_RETURN(StreamRange by_x, sorter.Sort(input, scratch));

  const uint64_t leaf_cap = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::lround(params.bulk_fill *
                                           params.max_entries)));
  const uint64_t num_leaves = (input.count + leaf_cap - 1) / leaf_cap;
  const uint64_t num_slabs = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const uint64_t leaves_per_slab = (num_leaves + num_slabs - 1) / num_slabs;
  const uint64_t slab_records = leaves_per_slab * leaf_cap;
  SJ_CHECK(slab_records * sizeof(RectF) <= memory_bytes)
      << "STR slab does not fit in memory; increase memory_bytes";

  std::vector<RectF> leaf_refs;
  uint64_t leaf_count = 0;
  NodePacker packer(tree_pager, params, /*level=*/0, &leaf_refs);
  StreamReader<RectF> reader(by_x.pager, by_x.first_page, by_x.count);
  std::vector<RectF> slab;
  slab.reserve(slab_records);
  auto flush_slab = [&]() -> Status {
    std::sort(slab.begin(), slab.end(), CenterYLess());
    for (const RectF& r : slab) SJ_RETURN_IF_ERROR(packer.Add(r));
    slab.clear();
    return Status::OK();
  };
  while (std::optional<RectF> r = reader.Next()) {
    slab.push_back(*r);
    if (slab.size() >= slab_records) SJ_RETURN_IF_ERROR(flush_slab());
  }
  if (!slab.empty()) SJ_RETURN_IF_ERROR(flush_slab());
  SJ_ASSIGN_OR_RETURN(leaf_count, packer.Finish());

  RTreeMeta meta;
  SJ_RETURN_IF_ERROR(BuildUpperLevels(tree_pager, params, std::move(leaf_refs),
                                      leaf_count, input.count, extent, &meta));
  return RTree(tree_pager, params, meta);
}

Result<RTree> RTree::CreateEmpty(Pager* tree_pager, const RTreeParams& params) {
  SJ_CHECK(params.max_entries >= 2 && params.max_entries <= kNodeCapacity);
  uint8_t buf[kPageSize];
  NodeBuilder builder(buf);
  builder.Reset(/*level=*/0);
  const PageId root = tree_pager->Allocate(1);
  SJ_RETURN_IF_ERROR(tree_pager->WritePage(root, buf));
  RTreeMeta meta;
  meta.root = root;
  meta.height = 1;
  meta.node_count = 1;
  meta.leaf_count = 1;
  meta.entry_count = 0;
  meta.bounding_box = RectF::Empty();
  return RTree(tree_pager, params, meta);
}

Status RTree::ReadNode(PageId page, void* buf) const {
  return pager_->ReadPage(page, buf);
}

namespace {

/// Quadratic-split group assignment (Guttman 1984). Returns the entries
/// partitioned into two groups, each holding at least `min_entries`.
void QuadraticSplit(std::vector<RectF> all, uint32_t min_entries,
                    std::vector<RectF>* g1, std::vector<RectF>* g2) {
  SJ_CHECK(all.size() >= 2);
  // PickSeeds: the pair wasting the most area when combined.
  size_t seed1 = 0, seed2 = 1;
  double worst = -1.0;
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      RectF u = all[i];
      u.ExtendTo(all[j]);
      const double d = u.Area() - all[i].Area() - all[j].Area();
      if (d > worst) {
        worst = d;
        seed1 = i;
        seed2 = j;
      }
    }
  }
  RectF mbr1 = all[seed1], mbr2 = all[seed2];
  g1->push_back(all[seed1]);
  g2->push_back(all[seed2]);
  // Erase the larger index first so the smaller stays valid.
  all.erase(all.begin() + static_cast<ptrdiff_t>(seed2));
  all.erase(all.begin() + static_cast<ptrdiff_t>(seed1));

  while (!all.empty()) {
    // If one group must absorb the rest to reach the minimum, do so.
    if (g1->size() + all.size() == min_entries) {
      for (const RectF& r : all) g1->push_back(r);
      break;
    }
    if (g2->size() + all.size() == min_entries) {
      for (const RectF& r : all) g2->push_back(r);
      break;
    }
    // PickNext: the entry with the strongest preference.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < all.size(); ++i) {
      const double d1 = mbr1.Enlargement(all[i]);
      const double d2 = mbr2.Enlargement(all[i]);
      const double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const RectF r = all[best];
    all.erase(all.begin() + static_cast<ptrdiff_t>(best));
    const double d1 = mbr1.Enlargement(r);
    const double d2 = mbr2.Enlargement(r);
    bool to_first;
    if (d1 != d2) {
      to_first = d1 < d2;
    } else if (mbr1.Area() != mbr2.Area()) {
      to_first = mbr1.Area() < mbr2.Area();
    } else {
      to_first = g1->size() <= g2->size();
    }
    if (to_first) {
      g1->push_back(r);
      mbr1.ExtendTo(r);
    } else {
      g2->push_back(r);
      mbr2.ExtendTo(r);
    }
  }
}

void FillNode(NodeBuilder* builder, uint16_t level,
              const std::vector<RectF>& entries) {
  builder->Reset(level);
  for (const RectF& r : entries) builder->Append(r);
}

}  // namespace

Status RTree::Insert(const RectF& rect) {
  if (!rect.Valid()) {
    return Status::InvalidArgument("Insert of malformed rectangle: " +
                                   rect.ToString());
  }
  SJ_RETURN_IF_ERROR(InsertEntry(rect, /*target_level=*/0));
  meta_.entry_count++;
  meta_.bounding_box.ExtendTo(rect);
  return Status::OK();
}

Status RTree::InsertEntry(const RectF& entry, uint16_t target_level) {
  RectF root_mbr;
  SplitResult split;
  SJ_RETURN_IF_ERROR(
      InsertRec(meta_.root, entry, target_level, &root_mbr, &split));
  if (split.split) {
    // Grow the tree: new root with the old root and its new sibling.
    uint8_t buf[kPageSize];
    NodeBuilder builder(buf);
    builder.Reset(meta_.height);  // New level above the old root.
    root_mbr.id = meta_.root;
    builder.Append(root_mbr);
    builder.Append(split.new_entry);
    const PageId new_root = pager_->Allocate(1);
    SJ_RETURN_IF_ERROR(pager_->WritePage(new_root, buf));
    meta_.root = new_root;
    meta_.height++;
    meta_.node_count++;
  }
  return Status::OK();
}

Status RTree::InsertRec(PageId page, const RectF& rect, uint16_t target_level,
                        RectF* mbr_out, SplitResult* split) {
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
  NodeBuilder node(buf);
  split->split = false;

  if (node.level() == target_level) {
    if (node.count() < params_.max_entries) {
      node.Append(rect);
      SJ_RETURN_IF_ERROR(pager_->WritePage(page, buf));
      *mbr_out = node.ComputeMbr();
      return Status::OK();
    }
    SJ_RETURN_IF_ERROR(SplitNode(&node, rect, node.level(), split));
    SJ_RETURN_IF_ERROR(pager_->WritePage(page, buf));
    *mbr_out = node.ComputeMbr();
    return Status::OK();
  }

  // ChooseSubtree: least enlargement, then least area, then lowest index.
  uint32_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < node.count(); ++i) {
    const RectF e = node.Entry(i);
    const double enlarge = e.Enlargement(rect);
    const double area = e.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = i;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  const RectF child_ref = node.Entry(best);
  RectF child_mbr;
  SplitResult child_split;
  SJ_RETURN_IF_ERROR(
      InsertRec(child_ref.id, rect, target_level, &child_mbr, &child_split));
  child_mbr.id = child_ref.id;
  node.SetEntry(best, child_mbr);

  if (child_split.split) {
    if (node.count() < params_.max_entries) {
      node.Append(child_split.new_entry);
    } else {
      SJ_RETURN_IF_ERROR(
          SplitNode(&node, child_split.new_entry, node.level(), split));
    }
  }
  SJ_RETURN_IF_ERROR(pager_->WritePage(page, buf));
  *mbr_out = node.ComputeMbr();
  return Status::OK();
}

Status RTree::SplitNode(NodeBuilder* node, const RectF& extra, uint16_t level,
                        SplitResult* out) {
  std::vector<RectF> all;
  all.reserve(node->count() + 1);
  for (uint32_t i = 0; i < node->count(); ++i) all.push_back(node->Entry(i));
  all.push_back(extra);

  std::vector<RectF> g1, g2;
  QuadraticSplit(std::move(all), params_.EffectiveMinEntries(), &g1, &g2);

  FillNode(node, level, g1);

  uint8_t buf[kPageSize];
  NodeBuilder sibling(buf);
  FillNode(&sibling, level, g2);
  const PageId new_page = pager_->Allocate(1);
  SJ_RETURN_IF_ERROR(pager_->WritePage(new_page, buf));

  out->split = true;
  out->new_entry = sibling.ComputeMbr();
  out->new_entry.id = new_page;
  meta_.node_count++;
  if (level == 0) meta_.leaf_count++;
  return Status::OK();
}

Status RTree::Delete(const RectF& rect) {
  bool found = false;
  bool underflow = false;
  std::vector<Orphan> orphans;
  SJ_RETURN_IF_ERROR(DeleteRec(meta_.root,
                               static_cast<uint16_t>(meta_.height - 1), rect,
                               &found, &underflow, &orphans));
  if (!found) {
    return Status::NotFound("no entry matching " + rect.ToString());
  }
  meta_.entry_count--;

  // Reinsert orphaned subtrees at their original levels (deepest first so
  // the tree never has to grow to host them).
  std::sort(orphans.begin(), orphans.end(),
            [](const Orphan& a, const Orphan& b) { return a.level > b.level; });
  for (const Orphan& orphan : orphans) {
    SJ_RETURN_IF_ERROR(InsertEntry(orphan.entry, orphan.level));
  }

  // Collapse a root that has dwindled to a single child.
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(meta_.root, buf));
  NodeView root(buf);
  while (root.level() > 0 && root.count() == 1) {
    meta_.root = root.Entry(0).id;
    meta_.height--;
    meta_.node_count--;
    SJ_RETURN_IF_ERROR(pager_->ReadPage(meta_.root, buf));
    root = NodeView(buf);
  }
  // Tighten the cached bounding box.
  meta_.bounding_box = meta_.entry_count == 0 ? RectF::Empty()
                                              : NodeView(buf).ComputeMbr();
  return Status::OK();
}

Status RTree::DeleteRec(PageId page, uint16_t level, const RectF& rect,
                        bool* found, bool* underflow,
                        std::vector<Orphan>* orphans) {
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
  NodeBuilder node(buf);
  *underflow = false;

  if (level == 0) {
    for (uint32_t i = 0; i < node.count(); ++i) {
      if (!(node.Entry(i) == rect)) continue;
      node.RemoveEntry(i);
      SJ_RETURN_IF_ERROR(pager_->WritePage(page, buf));
      *found = true;
      *underflow = node.count() < params_.EffectiveMinEntries();
      return Status::OK();
    }
    return Status::OK();  // Not in this leaf.
  }

  for (uint32_t i = 0; i < node.count(); ++i) {
    const RectF child_ref = node.Entry(i);
    if (!child_ref.Intersects(rect)) continue;
    bool child_underflow = false;
    SJ_RETURN_IF_ERROR(DeleteRec(child_ref.id,
                                 static_cast<uint16_t>(level - 1), rect,
                                 found, &child_underflow, orphans));
    if (!*found) continue;

    if (child_underflow) {
      // Dissolve the child: collect its remaining entries as orphans and
      // drop it from this node.
      uint8_t child_buf[kPageSize];
      SJ_RETURN_IF_ERROR(pager_->ReadPage(child_ref.id, child_buf));
      const NodeView child(child_buf);
      for (uint32_t j = 0; j < child.count(); ++j) {
        orphans->push_back(
            Orphan{child.Entry(j), static_cast<uint16_t>(level - 1)});
      }
      meta_.node_count--;
      if (level - 1 == 0) meta_.leaf_count--;
      node.RemoveEntry(i);
    } else {
      // Tighten this child's bounding rectangle.
      uint8_t child_buf[kPageSize];
      SJ_RETURN_IF_ERROR(pager_->ReadPage(child_ref.id, child_buf));
      RectF tightened = NodeView(child_buf).ComputeMbr();
      tightened.id = child_ref.id;
      node.SetEntry(i, tightened);
    }
    SJ_RETURN_IF_ERROR(pager_->WritePage(page, buf));
    *underflow = node.count() < params_.EffectiveMinEntries();
    return Status::OK();
  }
  return Status::OK();  // Not under this node.
}

Status RTree::WindowQuery(const RectF& window, std::vector<RectF>* out) const {
  std::vector<PageId> stack = {meta_.root};
  uint8_t buf[kPageSize];
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
    const NodeView node(buf);
    for (uint32_t i = 0; i < node.count(); ++i) {
      const RectF e = node.Entry(i);
      if (!e.Intersects(window)) continue;
      if (node.IsLeaf()) {
        out->push_back(e);
      } else {
        stack.push_back(e.id);
      }
    }
  }
  return Status::OK();
}

Status RTree::CollectAll(std::vector<RectF>* out) const {
  return WindowQuery(meta_.bounding_box.Valid()
                         ? meta_.bounding_box
                         : RectF(0, 0, 0, 0),
                     out);
}

double RTree::AveragePacking() const {
  if (meta_.leaf_count == 0) return 0.0;
  return static_cast<double>(meta_.entry_count) /
         (static_cast<double>(meta_.leaf_count) * params_.max_entries);
}

Status RTree::Validate() const {
  uint64_t nodes = 0, leaves = 0, entries = 0;
  SJ_RETURN_IF_ERROR(ValidateRec(meta_.root,
                                 static_cast<uint16_t>(meta_.height - 1),
                                 nullptr, &nodes, &leaves, &entries));
  if (nodes != meta_.node_count) {
    return Status::Corruption("node count mismatch");
  }
  if (leaves != meta_.leaf_count) {
    return Status::Corruption("leaf count mismatch");
  }
  if (entries != meta_.entry_count) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

Status RTree::ValidateRec(PageId page, uint16_t expected_level,
                          const RectF* expected_mbr, uint64_t* nodes,
                          uint64_t* leaves, uint64_t* entries) const {
  uint8_t buf[kPageSize];
  SJ_RETURN_IF_ERROR(pager_->ReadPage(page, buf));
  const NodeView node(buf);
  if (node.level() != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node.count() > params_.max_entries) {
    return Status::Corruption("node over fanout");
  }
  if (node.count() == 0 && !(expected_level == 0 && meta_.entry_count == 0)) {
    return Status::Corruption("empty non-root node");
  }
  if (expected_mbr != nullptr) {
    RectF actual = node.ComputeMbr();
    if (!(actual.xlo == expected_mbr->xlo && actual.ylo == expected_mbr->ylo &&
          actual.xhi == expected_mbr->xhi && actual.yhi == expected_mbr->yhi)) {
      return Status::Corruption("parent MBR does not match child contents");
    }
  }
  (*nodes)++;
  if (node.IsLeaf()) {
    (*leaves)++;
    *entries += node.count();
    return Status::OK();
  }
  for (uint32_t i = 0; i < node.count(); ++i) {
    const RectF e = node.Entry(i);
    SJ_RETURN_IF_ERROR(ValidateRec(e.id,
                                   static_cast<uint16_t>(expected_level - 1),
                                   &e, nodes, leaves, entries));
  }
  return Status::OK();
}

}  // namespace sj
