#ifndef USJ_RTREE_RTREE_H_
#define USJ_RTREE_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "io/pager.h"
#include "rtree/node.h"
#include "sort/external_sort.h"
#include "util/result.h"
#include "util/status.h"

namespace sj {

/// Tuning parameters for R-tree construction.
struct RTreeParams {
  /// Fanout. 400 = the paper's setting for 8 KB pages and 20-byte entries.
  uint32_t max_entries = 400;
  /// Minimum entries after a Guttman split; 0 means max_entries / 4.
  uint32_t min_entries = 0;
  /// Bulk-load base fill factor: nodes are first filled to this fraction
  /// of max_entries (the paper packs to 75 %).
  double bulk_fill = 0.75;
  /// After the base fill, further rectangles are added only while they
  /// grow the node's covered area by at most this fraction (the paper's
  /// 20 % rule); the resulting average packing is ~90 %.
  double bulk_area_slack = 0.20;
  /// Bits per axis of the Hilbert grid used to order rectangle centers.
  int hilbert_order = 16;

  uint32_t EffectiveMinEntries() const {
    return min_entries > 0 ? min_entries : max_entries / 4;
  }
};

/// Construction and occupancy statistics of a built tree.
struct RTreeMeta {
  PageId root = kInvalidPageId;
  uint16_t height = 0;  ///< Number of levels; 1 = root is a leaf.
  uint64_t node_count = 0;
  uint64_t leaf_count = 0;
  uint64_t entry_count = 0;  ///< Data rectangles stored.
  RectF bounding_box = RectF::Empty();
};

/// A disk-resident R-tree over RectF entries.
///
/// Nodes are 8 KB pages read and written through a Pager, so every node
/// touch is charged to the experiment's DiskModel. Three construction
/// paths are provided:
///
///  * BulkLoadHilbert — the paper's index: centers ordered along a Hilbert
///    curve (Kamel & Faloutsos), packed bottom-up with the 75 % fill +
///    ≤20 % area-growth top-off. Sibling nodes are allocated contiguously,
///    which is what gives ST its sequential leaf reads (§6.2).
///  * BulkLoadSTR — Sort-Tile-Recursive packing, as a quality baseline.
///  * CreateEmpty + Insert — Guttman's dynamic R-tree (quadratic split),
///    used to study how update-built ("ad-hoc") indexes degrade the
///    traversal locality that bulk loading provides.
class RTree {
 public:
  /// Bulk loads from an unsorted stream of rectangles. `scratch` holds the
  /// Hilbert-keyed runs during sorting; `memory_bytes` bounds the sorter.
  /// `sort_config` carries the parallel-runs / write-behind / fan-in knobs
  /// for the key sort (the built tree is identical either way).
  static Result<RTree> BulkLoadHilbert(Pager* tree_pager,
                                       const StreamRange& input,
                                       Pager* scratch,
                                       const RTreeParams& params,
                                       size_t memory_bytes,
                                       const SortConfig& sort_config =
                                           SortConfig());

  /// Sort-Tile-Recursive bulk load. Slabs are sorted in memory; each slab
  /// holds ~sqrt(#leaves) * fanout records, far below any realistic memory
  /// bound for the paper's data scales.
  static Result<RTree> BulkLoadSTR(Pager* tree_pager, const StreamRange& input,
                                   Pager* scratch, const RTreeParams& params,
                                   size_t memory_bytes,
                                   const SortConfig& sort_config =
                                       SortConfig());

  /// An empty dynamic tree (a single empty leaf as root).
  static Result<RTree> CreateEmpty(Pager* tree_pager,
                                   const RTreeParams& params);

  /// Guttman insertion with quadratic split.
  Status Insert(const RectF& rect);

  /// Guttman deletion with tree condensation: removes the entry exactly
  /// matching `rect` (coordinates and id). Underfull nodes are dissolved
  /// and their entries reinserted at their original level; a root with a
  /// single child is collapsed. Returns NotFound if no such entry exists.
  /// Freed node pages are not recycled (no free list), matching the
  /// append-only pager.
  Status Delete(const RectF& rect);

  /// Appends all data rectangles intersecting `window` to `out`.
  Status WindowQuery(const RectF& window, std::vector<RectF>* out) const;

  /// Checks structural invariants: header levels, parent MBRs exactly
  /// covering children, entry counts, and bounding box consistency.
  Status Validate() const;

  /// Appends every stored data rectangle to `out` (DFS order).
  Status CollectAll(std::vector<RectF>* out) const;

  const RTreeMeta& meta() const { return meta_; }
  const RTreeParams& params() const { return params_; }
  Pager* pager() const { return pager_; }
  PageId root() const { return meta_.root; }
  uint16_t height() const { return meta_.height; }
  /// Total pages the index occupies — the paper's per-tree "lower bound"
  /// on page requests for a full traversal.
  uint64_t node_count() const { return meta_.node_count; }
  const RectF& bounding_box() const { return meta_.bounding_box; }

  /// Average node occupancy as a fraction of max_entries (the paper
  /// reports ~0.90 for its bulk-loaded trees).
  double AveragePacking() const;

  /// Reads node `page` into `buf` (kPageSize bytes), charged to the disk
  /// model. Exposed for the join algorithms (ST, PQ), which manage their
  /// own caching policies.
  Status ReadNode(PageId page, void* buf) const;

 private:
  RTree(Pager* pager, RTreeParams params, RTreeMeta meta)
      : pager_(pager), params_(params), meta_(meta) {}

  // Packs one level's worth of entries into nodes at `level`, appending
  // the resulting parent entries (child MBR + child page id) to `parents`.
  // Entries must arrive in the intended packing order.
  static Status PackLevel(Pager* pager, const RTreeParams& params,
                          uint16_t level, const std::vector<RectF>& entries,
                          std::vector<RectF>* parents, uint64_t* nodes_written);

  // Builds internal levels bottom-up from leaf refs and fills `meta`.
  static Status BuildUpperLevels(Pager* pager, const RTreeParams& params,
                                 std::vector<RectF> level_refs,
                                 uint64_t leaf_count, uint64_t entry_count,
                                 RectF bbox, RTreeMeta* meta);

  // Insertion helpers (Guttman). `target_level` is the level the entry
  // belongs at: 0 for data rectangles, >0 for orphaned subtree roots
  // reinserted during deletion.
  struct SplitResult {
    RectF new_entry;  // MBR + page id of the newly allocated sibling.
    bool split = false;
  };
  Status InsertEntry(const RectF& entry, uint16_t target_level);
  Status InsertRec(PageId page, const RectF& rect, uint16_t target_level,
                   RectF* mbr_out, SplitResult* split);
  Status SplitNode(NodeBuilder* node, const RectF& extra, uint16_t level,
                   SplitResult* out);

  // Deletion helpers. Orphans are (entry, level) pairs whose subtrees must
  // be reinserted after condensation.
  struct Orphan {
    RectF entry;
    uint16_t level;
  };
  Status DeleteRec(PageId page, uint16_t level, const RectF& rect,
                   bool* found, bool* underflow, std::vector<Orphan>* orphans);

  Status ValidateRec(PageId page, uint16_t expected_level,
                     const RectF* expected_mbr, uint64_t* nodes,
                     uint64_t* leaves, uint64_t* entries) const;

  Pager* pager_;
  RTreeParams params_;
  RTreeMeta meta_;
};

}  // namespace sj

#endif  // USJ_RTREE_RTREE_H_
