#ifndef USJ_RTREE_NODE_H_
#define USJ_RTREE_NODE_H_

#include <cstdint>
#include <cstring>

#include "geometry/rect.h"
#include "io/disk_model.h"
#include "util/logging.h"

namespace sj {

/// On-page header of an R-tree node. Level 0 is a leaf; the root has level
/// `height - 1`.
struct NodeHeader {
  uint16_t level = 0;
  uint16_t count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(NodeHeader) == 8);

/// Hard capacity of an 8 KB node page: (8192 - 8) / 20 = 409 entries. The
/// paper configures the *fanout* to 400 (RTreeParams::max_entries); the
/// remaining slots are simply unused.
inline constexpr uint32_t kNodeCapacity =
    static_cast<uint32_t>((kPageSize - sizeof(NodeHeader)) / sizeof(RectF));

/// Entries of a node: in leaves, RectF::id is the data object id; in
/// internal nodes, RectF::id is the child PageId and the rectangle is the
/// child's MBR.
///
/// NodeView/NodeBuilder interpret a caller-owned kPageSize buffer; they
/// never own memory, so they can wrap stack buffers, buffer-pool copies, or
/// stream blocks alike.
class NodeView {
 public:
  /// `page` must point at kPageSize readable bytes.
  explicit NodeView(const void* page)
      : page_(static_cast<const uint8_t*>(page)) {
    std::memcpy(&header_, page_, sizeof(header_));
    SJ_DCHECK(header_.count <= kNodeCapacity);
  }

  uint16_t level() const { return header_.level; }
  bool IsLeaf() const { return header_.level == 0; }
  uint32_t count() const { return header_.count; }

  RectF Entry(uint32_t i) const {
    SJ_DCHECK(i < header_.count);
    RectF r;
    std::memcpy(&r, page_ + sizeof(NodeHeader) + i * sizeof(RectF),
                sizeof(RectF));
    return r;
  }

  /// MBR of all entries (the node's bounding rectangle).
  RectF ComputeMbr() const {
    RectF mbr = RectF::Empty();
    for (uint32_t i = 0; i < count(); ++i) mbr.ExtendTo(Entry(i));
    mbr.id = 0;
    return mbr;
  }

 private:
  const uint8_t* page_;
  NodeHeader header_;
};

/// Mutable counterpart of NodeView for constructing or updating a node
/// page in place.
class NodeBuilder {
 public:
  /// Wraps (without clearing) a caller-owned kPageSize buffer.
  explicit NodeBuilder(void* page) : page_(static_cast<uint8_t*>(page)) {}

  /// Zeroes the page and writes a fresh header.
  void Reset(uint16_t level) {
    std::memset(page_, 0, kPageSize);
    NodeHeader h;
    h.level = level;
    std::memcpy(page_, &h, sizeof(h));
  }

  uint16_t level() const { return Header().level; }
  uint32_t count() const { return Header().count; }
  bool Full(uint32_t max_entries) const { return count() >= max_entries; }

  RectF Entry(uint32_t i) const {
    SJ_DCHECK(i < count());
    RectF r;
    std::memcpy(&r, page_ + sizeof(NodeHeader) + i * sizeof(RectF),
                sizeof(RectF));
    return r;
  }

  void SetEntry(uint32_t i, const RectF& r) {
    SJ_DCHECK(i < count());
    std::memcpy(page_ + sizeof(NodeHeader) + i * sizeof(RectF), &r,
                sizeof(RectF));
  }

  void Append(const RectF& r) {
    NodeHeader h = Header();
    SJ_CHECK(h.count < kNodeCapacity) << "node page overflow";
    std::memcpy(page_ + sizeof(NodeHeader) + h.count * sizeof(RectF), &r,
                sizeof(RectF));
    h.count++;
    std::memcpy(page_, &h, sizeof(h));
  }

  /// Removes all entries but keeps the level.
  void ClearEntries() {
    NodeHeader h = Header();
    h.count = 0;
    std::memcpy(page_, &h, sizeof(h));
  }

  /// Removes entry `i` by swapping in the last entry (order not
  /// preserved).
  void RemoveEntry(uint32_t i) {
    NodeHeader h = Header();
    SJ_DCHECK(i < h.count);
    SetEntry(i, Entry(h.count - 1));
    h.count--;
    std::memcpy(page_, &h, sizeof(h));
  }

  RectF ComputeMbr() const { return NodeView(page_).ComputeMbr(); }

  const uint8_t* data() const { return page_; }

 private:
  NodeHeader Header() const {
    NodeHeader h;
    std::memcpy(&h, page_, sizeof(h));
    return h;
  }

  uint8_t* page_;
};

}  // namespace sj

#endif  // USJ_RTREE_NODE_H_
