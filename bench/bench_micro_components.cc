// Microbenchmarks for the substrate components: Hilbert keys, external
// sort, R-tree bulk load and window queries, buffer pool hits, and the PQ
// extraction rate. These are throughput sanity checks rather than paper
// artifacts.

#include <benchmark/benchmark.h>

#include "datagen/tiger_gen.h"
#include "geometry/hilbert.h"
#include "io/buffer_pool.h"
#include "io/stream.h"
#include "join/sources.h"
#include "rtree/rtree.h"
#include "sort/external_sort.h"

namespace sj {
namespace {

void BM_HilbertDistance(benchmark::State& state) {
  const HilbertCurve curve(16);
  uint64_t x = 12345, acc = 0;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    acc += curve.Distance(static_cast<uint32_t>(x) & 0xFFFF,
                          static_cast<uint32_t>(x >> 16) & 0xFFFF);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_HilbertDistance);

struct MicroEnv {
  MicroEnv() : disk(MachineModel::Machine3()) {
    TigerGenerator gen(777);
    gen.GenerateRoads(100000, &roads);
    input = MakeMemoryPager(&disk, "input");
    StreamWriter<RectF> writer(input.get());
    first = writer.first_page();
    for (const RectF& r : roads) writer.Append(r);
    count = writer.Finish().value();
  }
  DiskModel disk;
  std::vector<RectF> roads;
  std::unique_ptr<Pager> input;
  PageId first;
  uint64_t count;
};

MicroEnv* Env() {
  static MicroEnv* env = new MicroEnv();
  return env;
}

void BM_ExternalSort100k(benchmark::State& state) {
  MicroEnv* env = Env();
  for (auto _ : state) {
    auto scratch = MakeMemoryPager(&env->disk, "scratch");
    auto output = MakeMemoryPager(&env->disk, "output");
    auto sorted = SortRectsByYLo({env->input.get(), env->first, env->count},
                                 scratch.get(), output.get(), 4u << 20);
    benchmark::DoNotOptimize(sorted.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env->count));
}
BENCHMARK(BM_ExternalSort100k)->Unit(benchmark::kMillisecond);

void BM_RTreeBulkLoad100k(benchmark::State& state) {
  MicroEnv* env = Env();
  for (auto _ : state) {
    auto tree_pager = MakeMemoryPager(&env->disk, "tree");
    auto scratch = MakeMemoryPager(&env->disk, "scratch");
    auto tree = RTree::BulkLoadHilbert(
        tree_pager.get(), {env->input.get(), env->first, env->count},
        scratch.get(), RTreeParams(), 24u << 20);
    benchmark::DoNotOptimize(tree.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env->count));
}
BENCHMARK(BM_RTreeBulkLoad100k)->Unit(benchmark::kMillisecond);

struct TreeEnv {
  TreeEnv() {
    MicroEnv* env = Env();
    tree_pager = MakeMemoryPager(&env->disk, "tree");
    auto scratch = MakeMemoryPager(&env->disk, "scratch");
    auto built = RTree::BulkLoadHilbert(
        tree_pager.get(), {env->input.get(), env->first, env->count},
        scratch.get(), RTreeParams(), 24u << 20);
    tree.emplace(std::move(built).value());
  }
  std::unique_ptr<Pager> tree_pager;
  std::optional<RTree> tree;
};

TreeEnv* Tree() {
  static TreeEnv* env = new TreeEnv();
  return env;
}

void BM_RTreeWindowQuery(benchmark::State& state) {
  TreeEnv* env = Tree();
  const RectF bbox = env->tree->bounding_box();
  const float w = (bbox.xhi - bbox.xlo) * 0.02f;
  float x = bbox.xlo;
  std::vector<RectF> out;
  for (auto _ : state) {
    x += w * 7;
    if (x + w > bbox.xhi) x = bbox.xlo;
    out.clear();
    benchmark::DoNotOptimize(
        env->tree->WindowQuery(RectF(x, bbox.ylo, x + w, bbox.yhi), &out));
  }
}
BENCHMARK(BM_RTreeWindowQuery);

void BM_PQSourceDrain(benchmark::State& state) {
  TreeEnv* env = Tree();
  for (auto _ : state) {
    RTreePQSource source(&*env->tree);
    uint64_t n = 0;
    while (source.Next().has_value()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Env()->count));
}
BENCHMARK(BM_PQSourceDrain)->Unit(benchmark::kMillisecond);

void BM_BufferPoolHit(benchmark::State& state) {
  TreeEnv* env = Tree();
  BufferPool pool(1024);
  uint8_t buf[kPageSize];
  PageId p = 0;
  for (auto _ : state) {
    p = (p + 1) % 64;  // Small working set: ~all hits.
    benchmark::DoNotOptimize(pool.Get(env->tree_pager.get(), p, buf));
  }
}
BENCHMARK(BM_BufferPoolHit);

}  // namespace
}  // namespace sj
