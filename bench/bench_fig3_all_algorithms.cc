// Reproduces Figure 3: observed join costs (modeled I/O + scaled CPU) for
// all four algorithms — SSSJ (SJ), PBSM (PB), PQ and ST — on the three
// machine configurations.
//
// The paper's headline: SSSJ wins almost everywhere despite doing the most
// I/O, because all of its I/O is sequential; on the CPU-starved Machine 1
// the index-based ST beats the non-index PBSM (Patel & DeWitt's setting).

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "== Figure 3: observed join costs in seconds (scale %.4g) ==\n",
      config.scale);
  const JoinAlgorithm algos[] = {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                                 JoinAlgorithm::kPQ, JoinAlgorithm::kST};
  for (int m : config.machines) {
    const MachineModel machine = MachineByIndex(m);
    std::printf("\n-- %s (avg read %.1f ms, %.0f MB/s) --\n",
                machine.name.c_str(), machine.avg_access_ms,
                machine.transfer_mb_per_s);
    std::printf("%-10s", "Dataset");
    for (JoinAlgorithm a : algos) {
      std::printf(" | %-21s", ToString(a));
    }
    std::printf(" | winner\n");
    std::printf("%-10s", "");
    for (int i = 0; i < 4; ++i) std::printf(" | %9s %5s %5s", "io", "cpu", "tot");
    std::printf(" |\n");
    PrintHeaderRule(116);
    for (const std::string& name : config.datasets) {
      const LoadedDataset& data = GetDataset(name, config.scale);
      Workload w = MakeWorkload(data, machine, /*build_trees=*/true);
      std::printf("%-10s", name.c_str());
      double best = 1e300;
      const char* winner = "?";
      for (JoinAlgorithm a : algos) {
        auto stats = RunJoin(&w, a, config.ScaledOptions());
        SJ_CHECK(stats.ok()) << stats.status().ToString();
        const double io = stats->ObservedIoSeconds();
        const double cpu = stats->ScaledCpuSeconds(machine);
        std::printf(" | %9.2f %5.1f %5.1f", io, cpu, io + cpu);
        if (io + cpu < best) {
          best = io + cpu;
          winner = ToString(a);
        }
      }
      std::printf(" | %s\n", winner);
    }
  }
  std::printf(
      "\nPaper's Figure 3: SSSJ fastest in all but one configuration; "
      "ST > PBSM on Machine 1\n(slow CPU, fast disk). Index build time is "
      "excluded, as in the paper.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
