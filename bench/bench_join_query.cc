// The query API across predicates: for each dataset of the TIGER ladder,
// run Roads x Hydro through JoinQuery with the intersection, ε-distance
// and containment predicates (filter-only and refined where applicable),
// reporting the candidate/exact split and modeled times. The ε sweep
// shows how the distance predicate's candidate set grows with ε while
// refinement keeps only true near-pairs; containment shows a predicate
// whose exact stage does almost all the filtering.

#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "refine/feature_store.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "== JoinQuery predicate sweep: Roads x Hydro (scale %.4g) ==\n\n",
      config.scale);
  std::printf("%-10s %-22s %12s %12s %6s %10s\n", "Dataset", "Predicate",
              "Candidates", "Exact", "Sel%", "Total(s)");
  PrintHeaderRule(80);

  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    const MachineModel machine = MachineByIndex(config.machines.front());
    Workload w = MakeWorkload(data, machine, /*build_trees=*/false);

    auto roads_geom_pager = MakeMemoryPager(w.disk.get(), "roads.geom");
    auto hydro_geom_pager = MakeMemoryPager(w.disk.get(), "hydro.geom");
    auto roads_store = FeatureStore::Build(
        roads_geom_pager.get(), SegmentsForRects(data.roads), "roads.geom");
    auto hydro_store = FeatureStore::Build(
        hydro_geom_pager.get(), SegmentsForRects(data.hydro), "hydro.geom");
    SJ_CHECK(roads_store.ok() && hydro_store.ok());
    w.disk->ResetStats();

    SpatialJoiner joiner(w.disk.get(), config.ScaledOptions());
    // The TIGER region spans the continental US in degrees; sweep ε from
    // "adjacent" to "same metro area".
    struct Row {
      PredicateSpec predicate;
      bool refine;
    };
    const Row rows[] = {
        {{Predicate::kIntersects, 0.0}, false},
        {{Predicate::kIntersects, 0.0}, true},
        {{Predicate::kDistanceWithin, 0.05}, true},
        {{Predicate::kDistanceWithin, 0.25}, true},
        {{Predicate::kContains, 0.0}, true},
    };
    for (const Row& row : rows) {
      w.disk->ResetStats();
      CountingSink sink;
      JoinQuery query(joiner);
      query.Input(w.RoadsInput(false))
          .Input(w.HydroInput(false))
          .Predicate(row.predicate.kind, row.predicate.epsilon)
          .Algorithm(JoinAlgorithm::kSSSJ);
      if (row.refine) {
        query.WithFeatures(0, &*roads_store)
            .WithFeatures(1, &*hydro_store)
            .Refine(true);
      }
      auto stats = query.Run(&sink);
      SJ_CHECK(stats.ok()) << stats.status().ToString();
      const double sel =
          stats->candidate_count > 0
              ? 100.0 * static_cast<double>(stats->output_count) /
                    static_cast<double>(stats->candidate_count)
              : 0.0;
      const std::string label =
          row.predicate.Describe() + (row.refine ? "" : " (filter)");
      std::printf("%-10s %-22s %12llu %12llu %5.1f%% %10.2f\n", name.c_str(),
                  label.c_str(),
                  static_cast<unsigned long long>(stats->candidate_count),
                  static_cast<unsigned long long>(stats->output_count), sel,
                  stats->ObservedSeconds(machine));
    }
  }
  std::printf(
      "\nOne query surface, three predicates: ε-expansion happens in the "
      "filter step (the\ncandidate column grows with ε), the exact "
      "predicate runs in the refinement step,\nand every knob above was a "
      "per-query override on one shared joiner.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
