// Reproduces Table 2 of the paper: per-dataset object counts, data sizes,
// R-tree sizes, and join output sizes, for the TIGER-like generated ladder.
// Paper values are for TIGER/Line 97 at scale 1.0; see EXPERIMENTS.md for
// the scaled comparison.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("== Table 2: datasets (scale %.4g; paper: TIGER/Line 97) ==\n\n",
              config.scale);
  std::printf("%-10s %12s %10s %10s %12s %10s %10s %12s %10s\n", "Dataset",
              "RoadObjs", "RoadMB", "RoadTreeMB", "HydroObjs", "HydroMB",
              "HydroTrMB", "OutputObjs", "OutputMB");
  PrintHeaderRule(104);
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    Workload w = MakeWorkload(data, MachineModel::Machine3(),
                              /*build_trees=*/true);
    auto stats = RunJoin(&w, JoinAlgorithm::kSSSJ, config.ScaledOptions());
    SJ_CHECK(stats.ok()) << stats.status().ToString();
    const double road_mb = data.roads.size() * sizeof(RectF) / 1048576.0;
    const double hydro_mb = data.hydro.size() * sizeof(RectF) / 1048576.0;
    const double road_tree_mb =
        w.roads_tree->node_count() * kPageSize / 1048576.0;
    const double hydro_tree_mb =
        w.hydro_tree->node_count() * kPageSize / 1048576.0;
    const double out_mb = stats->output_count * sizeof(IdPair) / 1048576.0;
    std::printf("%-10s %12zu %10.1f %10.1f %12zu %10.1f %10.1f %12llu %10.1f\n",
                name.c_str(), data.roads.size(), road_mb, road_tree_mb,
                data.hydro.size(), hydro_mb, hydro_tree_mb,
                static_cast<unsigned long long>(stats->output_count), out_mb);
  }
  std::printf(
      "\nR-tree packing uses the paper's heuristic (75%% fill, <=20%% area "
      "growth);\naverage leaf occupancy is ~90%%, so tree size ~= data size "
      "* (page utilization).\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
