// Wall-clock scaling of the parallel join engine: the uniform 100k x 100k
// workload joined with PBSM and SSSJ strip joins at 1/2/4/8 worker
// threads. Modeled I/O is identical at every thread count (asserted); the
// interesting column is host wall-clock, which should drop as threads are
// added on a multi-core machine. `--n=...` overrides the input size
// (e.g. --n=20000 for a CI smoke run).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "bench_common.h"
#include "datagen/synthetic.h"
#include "geometry/extent.h"
#include "io/pager.h"
#include "join/pbsm.h"
#include "join/sssj.h"
#include "util/timer.h"

namespace sj {
namespace bench {
namespace {

struct ScalingRun {
  double wall_seconds = 0;
  double io_seconds = 0;
  uint64_t output_count = 0;
  uint32_t units = 0;  // Partitions or strips: the parallel work units.
};

template <typename JoinFn>
ScalingRun RunOnce(const std::vector<RectF>& a, const std::vector<RectF>& b,
                   uint32_t threads, JoinFn&& join) {
  DiskModel disk(MachineModel::Machine3());
  auto pager_a = MakeMemoryPager(&disk, "scaling.a");
  auto pager_b = MakeMemoryPager(&disk, "scaling.b");
  DatasetRef da, db;
  {
    StreamWriter<RectF> wa(pager_a.get());
    for (const RectF& r : a) wa.Append(r);
    da.range = StreamRange{pager_a.get(), 0, wa.Finish().value()};
    da.extent = ComputeExtent(a);
    StreamWriter<RectF> wb(pager_b.get());
    for (const RectF& r : b) wb.Append(r);
    db.range = StreamRange{pager_b.get(), 0, wb.Finish().value()};
    db.extent = ComputeExtent(b);
  }

  JoinOptions options;
  // Small memory budget so PBSM produces enough partitions to schedule.
  options.memory_bytes = std::max<size_t>(
      256u << 10, (a.size() + b.size()) * sizeof(RectF) / 16);
  options.num_threads = threads;

  CountingSink sink;
  ScalingRun run;
  WallTimer wall;
  auto stats = join(da, db, &disk, options, &sink);
  run.wall_seconds = wall.Elapsed();
  SJ_CHECK(stats.ok()) << stats.status().ToString();
  run.io_seconds = stats->disk.io_seconds;
  run.output_count = stats->output_count;
  run.units = stats->partitions_total;
  return run;
}

void RunScaling(const char* label, const std::vector<RectF>& a,
                const std::vector<RectF>& b,
                const std::function<Result<JoinStats>(
                    const DatasetRef&, const DatasetRef&, DiskModel*,
                    const JoinOptions&, JoinSink*)>& join) {
  std::printf("-- %s --\n", label);
  std::printf("%8s %10s %12s %12s %10s %8s\n", "threads", "units",
              "wall(s)", "modeledIO(s)", "output", "speedup");
  PrintHeaderRule(66);
  double base_wall = 0;
  uint64_t base_output = 0;
  double base_io = 0;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    const ScalingRun run = RunOnce(a, b, threads, join);
    if (threads == 1) {
      base_wall = run.wall_seconds;
      base_output = run.output_count;
      base_io = run.io_seconds;
    } else {
      // The engine's contract: results and modeled I/O must not move with
      // the thread count.
      SJ_CHECK(run.output_count == base_output) << "output changed";
      SJ_CHECK(run.io_seconds == base_io) << "modeled I/O changed";
    }
    std::printf("%8u %10u %12.3f %12.3f %10llu %7.2fx\n", threads, run.units,
                run.wall_seconds, run.io_seconds,
                static_cast<unsigned long long>(run.output_count),
                base_wall / run.wall_seconds);
  }
  std::printf("\n");
}

void Run(uint64_t n) {
  std::printf("== Parallel join scaling (uniform %lluk x %lluk) ==\n\n",
              static_cast<unsigned long long>(n / 1000),
              static_cast<unsigned long long>(n / 1000));
  const RectF region(0, 0, 1000, 1000);
  // Mean edge 0.35 over a 1000x1000 domain: ~1 output pair per input rect
  // at n = 100k, the usual spatial-join selectivity regime.
  const std::vector<RectF> a = UniformRects(n, region, 0.35f, 71);
  const std::vector<RectF> b = UniformRects(n, region, 0.35f, 72);

  RunScaling("PBSM partition pairs", a, b,
             [](const DatasetRef& da, const DatasetRef& db, DiskModel* disk,
                const JoinOptions& options, JoinSink* sink) {
               return PBSMJoin(da, db, disk, options, sink);
             });
  RunScaling("SSSJ strips (32)", a, b,
             [](const DatasetRef& da, const DatasetRef& db, DiskModel* disk,
                const JoinOptions& options, JoinSink* sink) {
               return SSSJStripJoin(da, db, /*strips=*/32, disk, options,
                                    sink);
             });
  std::printf(
      "Speedup tracks the machine's core count; modeled I/O and output are "
      "thread-count-invariant\nby construction (per-unit DiskModel "
      "shards).\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  uint64_t n = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = std::strtoull(argv[i] + 4, nullptr, 10);
    }
  }
  sj::bench::Run(n);
  return 0;
}
