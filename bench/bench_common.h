#ifndef USJ_BENCH_BENCH_COMMON_H_
#define USJ_BENCH_BENCH_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "io/machine_model.h"
#include "join/join_types.h"
#include "rtree/rtree.h"

namespace sj {
namespace bench {

/// Shared command-line configuration for the paper-reproduction benches.
///
///   --scale=F       dataset ladder scale (default 0.05; 1.0 = the paper's
///                   object counts — only sensible on a large machine)
///   --datasets=A,B  subset of NJ,NY,DISK1,DISK4-6,DISK1-3,DISK1-6
///   --machines=1,3  subset of the paper's machine configurations
struct BenchConfig {
  double scale = 0.05;
  std::vector<std::string> datasets = {"NJ",      "NY",      "DISK1",
                                       "DISK4-6", "DISK1-3", "DISK1-6"};
  std::vector<int> machines = {1, 2, 3};

  static BenchConfig FromArgs(int argc, char** argv);

  /// Join options whose memory parameters shrink with the dataset scale,
  /// preserving the paper's data-to-memory ratios: the 22 MB buffer pool
  /// (which determines ST's re-read behaviour, Table 4) and the 24 MB
  /// algorithm memory (which determines SSSJ's run count and PBSM's
  /// partition count). A floor keeps PQ's in-memory structures — which
  /// scale sublinearly — comfortably inside the budget.
  JoinOptions ScaledOptions() const;
};

MachineModel MachineByIndex(int index);

/// A generated dataset pair (machine-independent rectangle vectors, cached
/// per process so multiple machines reuse the same data).
struct LoadedDataset {
  TigerSpec spec;
  std::vector<RectF> roads;
  std::vector<RectF> hydro;
};

const LoadedDataset& GetDataset(const std::string& name, double scale);

/// One experiment environment: a simulated machine, both relations stored
/// as streams, and (optionally) bulk-loaded R-trees over both.
struct Workload {
  std::unique_ptr<DiskModel> disk;
  std::unique_ptr<Pager> roads_pager;
  std::unique_ptr<Pager> hydro_pager;
  std::unique_ptr<Pager> roads_tree_pager;
  std::unique_ptr<Pager> hydro_tree_pager;
  DatasetRef roads;
  DatasetRef hydro;
  std::optional<RTree> roads_tree;
  std::optional<RTree> hydro_tree;
  /// Modeled seconds spent bulk loading both indexes (reported separately,
  /// as the paper discusses amortizing build cost).
  double tree_build_io_seconds = 0;

  JoinInput RoadsInput(bool indexed) const {
    return indexed ? JoinInput::FromRTree(&*roads_tree)
                   : JoinInput::FromStream(roads);
  }
  JoinInput HydroInput(bool indexed) const {
    return indexed ? JoinInput::FromRTree(&*hydro_tree)
                   : JoinInput::FromStream(hydro);
  }
};

/// Builds a workload for `machine`. Tree construction I/O is excluded from
/// subsequent join measurements (stats are reset), matching the paper.
Workload MakeWorkload(const LoadedDataset& data, const MachineModel& machine,
                      bool build_trees);

/// Runs one algorithm on a workload (counting sink) and returns its stats.
Result<JoinStats> RunJoin(Workload* w, JoinAlgorithm algo,
                          const JoinOptions& options);

/// Formatting helpers.
std::string HumanBytes(uint64_t bytes);
void PrintHeaderRule(int width);

}  // namespace bench
}  // namespace sj

#endif  // USJ_BENCH_BENCH_COMMON_H_
