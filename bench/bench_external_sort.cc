// External-sort optimization ladder: serial baseline, +parallel run
// formation (8 threads), +loser-tree merge, +write-behind run output,
// over TIGER-shaped relations at increasing sizes. Every rung must
// produce byte-identical output pages and identical modeled io_seconds
// to the serial baseline — asserted, not assumed — so the only thing the
// ladder moves is host wall time (records/s) and io_wall_seconds. One
// JSON summary line per (dataset, rung) for the tracking dashboards.
// `--n=...` overrides the largest size (CI smoke); `--threads=...` the
// parallel rung width.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/synthetic.h"
#include "io/pager.h"
#include "io/stream.h"
#include "sort/external_sort.h"
#include "sort/sort_config.h"
#include "util/timer.h"

namespace sj {
namespace bench {
namespace {

struct Rung {
  const char* name;
  bool parallel = false;
  bool loser_tree = false;
  bool write_behind = false;
};

constexpr Rung kLadder[] = {
    {"serial", false, false, false},
    {"+parallel-runs", true, false, false},
    {"+loser-tree", true, true, false},
    {"+write-behind", true, true, true},
};

struct SortRun {
  double wall_seconds = 0;
  double io_seconds = 0;
  double io_wall_seconds = 0;
  uint64_t checksum = 0;  // FNV over the output page images.
  uint32_t runs = 0;
  uint32_t fan_in = 0;
};

SortRun RunOnce(const std::vector<RectF>& rects, size_t memory_bytes,
                uint32_t threads, const Rung& rung) {
  DiskModel disk(MachineModel::Machine3());
  auto input = MakeMemoryPager(&disk, "sort.in");
  auto scratch = MakeMemoryPager(&disk, "sort.scratch");
  auto output = MakeMemoryPager(&disk, "sort.out");
  StreamWriter<RectF> writer(input.get());
  for (const RectF& r : rects) writer.Append(r);
  const uint64_t n = writer.Finish().value();
  disk.ResetStats();

  SortConfig config;
  config.parallel_runs = rung.parallel;
  config.threads = rung.parallel ? threads : 1;
  config.write_behind = rung.write_behind;
  config.merge_structure = rung.loser_tree ? MergeStructure::kLoserTree
                                           : MergeStructure::kBinaryHeap;
  ExternalSorter<RectF, OrderByYLo> sorter(memory_bytes, scratch.get(),
                                           OrderByYLo(), nullptr,
                                           PrefetchContext(), config);

  WallTimer wall;
  auto sorted = sorter.Sort(StreamRange{input.get(), 0, n}, output.get());
  SortRun run;
  run.wall_seconds = wall.Elapsed();
  SJ_CHECK(sorted.ok()) << sorted.status().ToString();
  run.io_seconds = disk.stats().io_seconds;
  run.io_wall_seconds = disk.stats().io_wall_seconds;
  run.runs = sorter.stats().runs;
  run.fan_in = sorter.stats().merge_fan_in;

  // FNV-1a over the raw output pages: byte-identity across rungs.
  constexpr uint32_t per_page = StreamWriter<RectF>::kRecordsPerPage;
  const uint64_t npages = (sorted->count + per_page - 1) / per_page;
  std::vector<uint8_t> page(kPageSize);
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t p = 0; p < npages; ++p) {
    SJ_CHECK_OK(sorted->pager->backend()->ReadPage(
        static_cast<PageId>(sorted->first_page + p), page.data()));
    for (uint8_t byte : page) h = (h ^ byte) * 1099511628211ULL;
  }
  run.checksum = h;
  return run;
}

void RunLadder(const std::string& dataset, const std::vector<RectF>& rects,
               uint32_t threads) {
  // ~16 formation units at any size, so the parallel rung has real work
  // and the merge is multi-way.
  const size_t memory =
      std::max<size_t>(RunLayout::kMinSortMemoryBytes,
                       rects.size() * sizeof(RectF) / 16);
  std::printf("-- %s: %llu records, %.1f MB budget --\n", dataset.c_str(),
              static_cast<unsigned long long>(rects.size()),
              static_cast<double>(memory) / (1 << 20));
  std::printf("%16s %12s %12s %12s %12s %9s\n", "config", "wall(s)",
              "Mrec/s", "modeledIO(s)", "ioWall(s)", "speedup");
  PrintHeaderRule(78);
  SortRun base;
  for (const Rung& rung : kLadder) {
    const SortRun run = RunOnce(rects, memory, threads, rung);
    if (std::strcmp(rung.name, "serial") == 0) {
      base = run;
    } else {
      // The ladder's contract: a perf layer may never change the output
      // bytes or the modeled I/O.
      SJ_CHECK(run.checksum == base.checksum)
          << rung.name << " changed the output";
      SJ_CHECK(run.io_seconds == base.io_seconds)
          << rung.name << " changed modeled io_seconds: " << run.io_seconds
          << " vs " << base.io_seconds;
    }
    const double mrecs = static_cast<double>(rects.size()) /
                         run.wall_seconds / 1e6;
    std::printf("%16s %12.3f %12.2f %12.3f %12.3f %8.2fx\n", rung.name,
                run.wall_seconds, mrecs, run.io_seconds, run.io_wall_seconds,
                base.wall_seconds / run.wall_seconds);
    std::printf(
        "{\"bench\":\"external_sort\",\"dataset\":\"%s\",\"records\":%llu,"
        "\"config\":\"%s\",\"threads\":%u,\"wall_s\":%.6f,"
        "\"records_per_s\":%.0f,\"modeled_io_s\":%.6f,\"io_wall_s\":%.6f,"
        "\"runs\":%u,\"fan_in\":%u,\"speedup\":%.3f}\n",
        dataset.c_str(), static_cast<unsigned long long>(rects.size()),
        rung.name, rung.parallel ? threads : 1, run.wall_seconds,
        static_cast<double>(rects.size()) / run.wall_seconds, run.io_seconds,
        run.io_wall_seconds, run.runs, run.fan_in,
        base.wall_seconds / run.wall_seconds);
  }
  std::printf("\n");
}

void Run(uint64_t max_n, uint32_t threads) {
  std::printf("== External sort ladder (TIGER-shaped, %u threads) ==\n\n",
              threads);
  const RectF region(0, 0, 1000, 1000);
  // TIGER-like size ladder up to max_n (road-segment shaped rects:
  // small, skinny, near-uniform centers).
  for (const uint64_t n : {max_n / 8, max_n / 2, max_n}) {
    if (n == 0) continue;
    const std::vector<RectF> rects = UniformRects(n, region, 0.15f, 1971);
    RunLadder("uniform-" + std::to_string(n / 1000) + "k", rects, threads);
  }
  std::printf(
      "Ladder contract: output pages and modeled io_seconds are "
      "byte-identical on every rung;\nonly wall time and io_wall move. "
      "The +parallel-runs rung's speedup tracks the\nmachine's core count "
      "(run formation is compare-bound); +loser-tree is algorithmic\nand "
      "helps on any machine.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  uint64_t n = 2000000;
  uint32_t threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = std::strtoull(argv[i] + 4, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  sj::bench::Run(n, threads);
  return 0;
}
