// Exercises the §4 multi-way extension: a 3-way intersection join of
// Roads x Hydro x Landuse, evaluated as a single chain of lazy PQ sweeps
// (no intermediate materialization), compared against the two-phase
// alternative that materializes the Roads x Hydro result first.

#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "join/multiway.h"
#include "join/pq_join.h"
#include "sort/external_sort.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("== Multi-way (3-way) intersection join (scale %.4g) ==\n\n",
              config.scale);
  std::printf("%-10s %10s %10s %10s | %14s %14s | %12s\n", "Dataset", "roads",
              "hydro", "landuse", "chained(s)", "two-phase(s)", "triples");
  PrintHeaderRule(96);

  const MachineModel machine = MachineModel::Machine3();
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    // A third relation: land-use polygons (clustered blobs over the same
    // territory).
    const auto landuse =
        ClusteredRects(std::max<uint64_t>(1, data.hydro.size() / 2),
                       TigerGenerator::DefaultRegion(), 400, 0.4f, 0.05f,
                       data.spec.seed + 77);

    Workload w = MakeWorkload(data, machine, /*build_trees=*/true);
    auto landuse_pager = MakeMemoryPager(w.disk.get(), "landuse");
    StreamWriter<RectF> writer(landuse_pager.get());
    const PageId first = writer.first_page();
    for (const RectF& r : landuse) writer.Append(r);
    auto n = writer.Finish();
    SJ_CHECK(n.ok());
    DatasetRef landuse_ref;
    landuse_ref.range = StreamRange{landuse_pager.get(), first, n.value()};
    landuse_ref.extent = TigerGenerator::DefaultRegion();
    w.disk->ResetStats();

    // (a) Chained lazy multiway join through the query builder.
    SpatialJoiner joiner(w.disk.get(), JoinOptions());
    CountingTupleSink chained_sink;
    auto chained = JoinQuery(joiner)
                       .Input(JoinInput::FromRTree(&*w.roads_tree))
                       .Input(JoinInput::FromRTree(&*w.hydro_tree))
                       .Input(JoinInput::FromStream(landuse_ref))
                       .Run(&chained_sink);
    SJ_CHECK(chained.ok()) << chained.status().ToString();
    const double chained_s = chained->disk.io_seconds +
                             chained->host_cpu_seconds * machine.cpu_slowdown;

    // (b) Two-phase: materialize Roads x Hydro intersections as a stream,
    // then join that stream with Landuse.
    w.disk->ResetStats();
    JoinMeasurement measurement(w.disk.get());
    uint64_t twophase_triples = 0;
    {
      // Phase 1: PQ join, materializing intersection rects.
      auto inter_pager = MakeMemoryPager(w.disk.get(), "intermediate");
      StreamWriter<RectF> inter_writer(inter_pager.get());
      const PageId inter_first = inter_writer.first_page();
      RTreePQSource ra(&*w.roads_tree), rb(&*w.hydro_tree);
      auto pair_source = MakePairSource(&ra, &rb,
                                        SweepStructureKind::kStriped,
                                        w.roads.extent, 1024);
      uint64_t inter_count = 0;
      while (auto r = pair_source->Next()) {
        RectF rect = *r;
        rect.id = static_cast<ObjectId>(inter_count++);
        inter_writer.Append(rect);
      }
      auto inter_n = inter_writer.Finish();
      SJ_CHECK(inter_n.ok());
      // Phase 2: sort the materialized result and sweep against landuse.
      DatasetRef inter_ref;
      inter_ref.range =
          StreamRange{inter_pager.get(), inter_first, inter_n.value()};
      inter_ref.extent = w.roads.extent;
      auto scratch = MakeMemoryPager(w.disk.get(), "mw.scratch");
      auto sorted_pager = MakeMemoryPager(w.disk.get(), "mw.sorted");
      auto sorted_inter = SortRectsByYLo(inter_ref.range, scratch.get(),
                                         sorted_pager.get(), 12u << 20);
      SJ_CHECK(sorted_inter.ok());
      auto sorted_land = SortRectsByYLo(landuse_ref.range, scratch.get(),
                                        sorted_pager.get(), 12u << 20);
      SJ_CHECK(sorted_land.ok());
      SortedStreamSource si(*sorted_inter), sl(*sorted_land);
      CountingSink counter;
      auto stats = PQJoinSources(&si, &sl, w.roads.extent, w.disk.get(),
                                 JoinOptions(), &counter);
      SJ_CHECK(stats.ok());
      twophase_triples = stats->output_count;
    }
    const JoinStats two_phase = measurement.Finish();
    const double twophase_s = two_phase.ObservedSeconds(machine);

    SJ_CHECK(twophase_triples == chained->output_count)
        << "multiway plans disagree";
    std::printf("%-10s %10zu %10zu %10zu | %14.2f %14.2f | %12llu\n",
                name.c_str(), data.roads.size(), data.hydro.size(),
                landuse.size(), chained_s, twophase_s,
                static_cast<unsigned long long>(chained->output_count));
  }
  std::printf(
      "\nThe chained plan never writes the intermediate result to disk, "
      "which is the point of\nfeeding one join's output straight into the "
      "next sweep (§4).\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
