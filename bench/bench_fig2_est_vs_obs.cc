// Reproduces Figure 2: estimated vs observed join costs for the two
// index-based algorithms (PQ, ST) on all three machine models.
//
//   estimated I/O = pages_requested x (avg access + one-page transfer)
//                   -- the classic "count page requests" methodology
//   observed  I/O = the DiskModel's sequential/random-aware time
//
// The paper's finding: estimates show no clear winner, but observed times
// favor ST on large inputs and fast machines, because the bulk-loaded
// layout turns many of ST's reads into sequential runs while PQ's
// sweep-order reads stay random.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "== Figure 2: estimated vs observed join cost, seconds (scale %.4g) "
      "==\n",
      config.scale);
  for (int m : config.machines) {
    const MachineModel machine = MachineByIndex(m);
    std::printf("\n-- %s --\n", machine.name.c_str());
    std::printf("%-10s | %28s | %28s\n", "", "PQ (io+cpu=total)",
                "ST (io+cpu=total)");
    std::printf("%-10s | %13s %14s | %13s %14s\n", "Dataset", "estimated",
                "observed", "estimated", "observed");
    PrintHeaderRule(74);
    for (const std::string& name : config.datasets) {
      const LoadedDataset& data = GetDataset(name, config.scale);
      Workload w = MakeWorkload(data, machine, /*build_trees=*/true);
      auto pq = RunJoin(&w, JoinAlgorithm::kPQ, config.ScaledOptions());
      SJ_CHECK(pq.ok());
      auto st = RunJoin(&w, JoinAlgorithm::kST, config.ScaledOptions());
      SJ_CHECK(st.ok());
      auto fmt = [&](const JoinStats& s, bool estimated) {
        char buf[64];
        const double io =
            estimated ? s.EstimatedIoSeconds(machine) : s.ObservedIoSeconds();
        const double cpu = s.ScaledCpuSeconds(machine);
        std::snprintf(buf, sizeof(buf), "%5.1f+%4.1f=%5.1f", io, cpu,
                      io + cpu);
        return std::string(buf);
      };
      std::printf("%-10s | %s %s | %s %s\n", name.c_str(),
                  fmt(*pq, true).c_str(), fmt(*pq, false).c_str(),
                  fmt(*st, true).c_str(), fmt(*st, false).c_str());
    }
  }
  std::printf(
      "\nReading the table: under 'estimated', PQ <= ST everywhere (PQ "
      "requests fewer pages).\nUnder 'observed', ST's I/O shrinks (its "
      "misses hit sequential leaf runs) while PQ's\nstays random, so ST "
      "wins on the large sets — the paper's Figure 2(d)-(f) effect.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
