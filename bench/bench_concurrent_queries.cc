// Concurrent query throughput through the SpatialService: N client
// threads submit a mix of predicates, algorithms, and memory budgets
// against one service with a single global memory budget, a shared 2Q
// buffer pool, and a shared morsel worker pool. Reports throughput and
// p50/p95 latency, and enforces the scheduler's two contracts on every
// run: each query's output matches its serial baseline, and the global
// arbiter's peak never exceeds the global budget.
//
//   --n=60000      rects per relation (e.g. --n=8000 for a CI smoke run)
//   --clients=8    concurrent client threads
//   --per-client=4 queries each client submits
//   --threads=4    service worker threads

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "geometry/extent.h"
#include "io/stream.h"
#include "service/spatial_service.h"
#include "util/timer.h"

namespace sj {
namespace bench {
namespace {

struct Env {
  DiskModel disk{MachineModel::Machine3()};
  std::vector<std::unique_ptr<Pager>> pagers;
  DatasetRef da, db;
  std::optional<RTree> ta, tb;
  std::optional<SpatialJoiner> joiner;
};

DatasetRef WriteDataset(Env* env, const std::vector<RectF>& rects,
                        const std::string& name) {
  env->pagers.push_back(MakeMemoryPager(&env->disk, name));
  Pager* pager = env->pagers.back().get();
  StreamWriter<RectF> w(pager);
  for (const RectF& r : rects) w.Append(r);
  DatasetRef ref;
  ref.range = StreamRange{pager, 0, w.Finish().value()};
  ref.extent = ComputeExtent(rects);
  return ref;
}

RTree BuildTree(Env* env, const DatasetRef& ref, const std::string& name) {
  env->pagers.push_back(MakeMemoryPager(&env->disk, "tree." + name));
  Pager* tree_pager = env->pagers.back().get();
  auto scratch = MakeMemoryPager(&env->disk, "scratch." + name);
  RTreeParams params;
  auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                     params, 1 << 22);
  SJ_CHECK(tree.ok()) << tree.status().ToString();
  env->pagers.push_back(std::move(scratch));
  return std::move(tree).value();
}

/// The query mix: algorithms across the whole registry, two predicates,
/// budgets from comfortable to tight.
struct QueryKind {
  const char* label;
  JoinAlgorithm algorithm;
  sj::Predicate predicate;
  double epsilon;
  size_t memory_bytes;
  bool indexed;  // Tree inputs (ST needs them) vs stream inputs.
};

constexpr QueryKind kMix[] = {
    {"auto/intersects/24M", JoinAlgorithm::kAuto, Predicate::kIntersects,
     0.0, 24u << 20, true},
    {"sssj/intersects/8M", JoinAlgorithm::kSSSJ, Predicate::kIntersects,
     0.0, 8u << 20, false},
    {"pbsm/intersects/4M", JoinAlgorithm::kPBSM, Predicate::kIntersects,
     0.0, 4u << 20, false},
    {"st/intersects/8M", JoinAlgorithm::kST, Predicate::kIntersects,  //
     0.0, 8u << 20, true},
    {"pq/intersects/8M", JoinAlgorithm::kPQ, Predicate::kIntersects,  //
     0.0, 8u << 20, true},
    {"auto/distance/16M", JoinAlgorithm::kAuto, Predicate::kDistanceWithin,
     0.5, 16u << 20, false},
};
constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

JoinQuery MakeQuery(Env* env, const QueryKind& kind) {
  JoinQuery q(*env->joiner);
  q.Input(kind.indexed ? JoinInput::FromRTree(&*env->ta)
                       : JoinInput::FromStream(env->da))
      .Input(kind.indexed ? JoinInput::FromRTree(&*env->tb)
                          : JoinInput::FromStream(env->db))
      .Algorithm(kind.algorithm)
      .Predicate(kind.predicate, kind.epsilon)
      .MemoryBytes(kind.memory_bytes);
  return q;
}

void Run(uint64_t n, int clients, int per_client, uint32_t threads) {
  std::printf("== Concurrent queries through one SpatialService ==\n");
  std::printf("relations: %llu x %llu rects; %d clients x %d queries; "
              "%u service workers\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(n), clients, per_client,
              threads);

  Env env;
  const RectF region(0, 0, 1000, 1000);
  const auto a = UniformRects(n, region, 0.35f, 91);
  const auto b = UniformRects(n, region, 0.35f, 92);
  env.da = WriteDataset(&env, a, "conc.a");
  env.db = WriteDataset(&env, b, "conc.b");
  env.ta.emplace(BuildTree(&env, env.da, "a"));
  env.tb.emplace(BuildTree(&env, env.db, "b"));
  env.joiner.emplace(&env.disk, JoinOptions());

  // Serial baselines: one run of each kind, standalone.
  uint64_t baseline_counts[kMixSize];
  double serial_seconds = 0;
  for (size_t k = 0; k < kMixSize; ++k) {
    CountingSink sink;
    WallTimer wall;
    auto stats = MakeQuery(&env, kMix[k]).Run(&sink);
    serial_seconds += wall.Elapsed();
    SJ_CHECK(stats.ok()) << kMix[k].label << ": "
                         << stats.status().ToString();
    baseline_counts[k] = sink.count();
  }

  ServiceOptions so;
  so.global_memory_bytes = 48u << 20;  // Tight: forces queueing/degrading.
  so.worker_threads = threads;
  so.buffer_pool_pages = BufferPool::kPaperCapacityPages / 4;
  so.default_queue_deadline_seconds = 300.0;
  SpatialService service(so);

  const int total = clients * per_client;
  std::vector<double> latencies(static_cast<size_t>(total), 0.0);
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};

  WallTimer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const int index = c * per_client + i;
        const size_t k = static_cast<size_t>(index) % kMixSize;
        CountingSink sink;
        WallTimer lat;
        const auto result = service.Run(MakeQuery(&env, kMix[k]), &sink);
        latencies[static_cast<size_t>(index)] = lat.Elapsed();
        if (!result.ok()) {
          std::fprintf(stderr, "query %d (%s) failed: %s\n", index,
                       kMix[k].label, result.status().ToString().c_str());
          ++errors;
        } else if (sink.count() != baseline_counts[k]) {
          std::fprintf(stderr, "query %d (%s): %llu pairs, expected %llu\n",
                       index, kMix[k].label,
                       static_cast<unsigned long long>(sink.count()),
                       static_cast<unsigned long long>(baseline_counts[k]));
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed = wall.Elapsed();

  std::sort(latencies.begin(), latencies.end());
  const double p50 = latencies[static_cast<size_t>(total) / 2];
  const double p95 =
      latencies[std::min(static_cast<size_t>(total) - 1,
                         static_cast<size_t>(total * 95 / 100))];
  const ServiceStats stats = service.stats();

  std::printf("%-28s %12s\n", "metric", "value");
  PrintHeaderRule(41);
  std::printf("%-28s %12.3f\n", "wall seconds", elapsed);
  std::printf("%-28s %12.1f\n", "queries/second", total / elapsed);
  std::printf("%-28s %12.1f\n", "serial est. seconds",
              serial_seconds * total / kMixSize);
  std::printf("%-28s %12.3f\n", "p50 latency (s)", p50);
  std::printf("%-28s %12.3f\n", "p95 latency (s)", p95);
  std::printf("%-28s %12llu\n", "admitted full",
              static_cast<unsigned long long>(stats.admitted_full));
  std::printf("%-28s %12llu\n", "admitted degraded",
              static_cast<unsigned long long>(stats.admitted_degraded));
  std::printf("%-28s %12s\n", "global peak",
              HumanBytes(stats.global_peak_bytes).c_str());
  std::printf("%-28s %12s\n", "global budget",
              HumanBytes(so.global_memory_bytes).c_str());
  const double hit_rate =
      stats.pool.requests > 0
          ? 100.0 * static_cast<double>(stats.pool.hits) /
                static_cast<double>(stats.pool.requests)
          : 0.0;
  std::printf("%-28s %11.1f%%\n", "shared pool hit rate", hit_rate);

  // The run's contracts: every query matched its serial baseline, nothing
  // failed, and concurrent admission never oversubscribed the budget.
  SJ_CHECK(errors.load() == 0) << errors.load() << " queries failed";
  SJ_CHECK(mismatches.load() == 0) << mismatches.load() << " mismatches";
  SJ_CHECK(stats.global_peak_bytes <= so.global_memory_bytes)
      << "global peak " << stats.global_peak_bytes << " exceeded budget "
      << so.global_memory_bytes;
  std::printf("\nall %d queries matched their serial baselines; global peak "
              "stayed within the budget\n",
              total);
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  uint64_t n = 60000;
  int clients = 8;
  int per_client = 4;
  uint32_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = std::strtoull(argv[i] + 4, nullptr, 10);
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--per-client=", 13) == 0) {
      per_client = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    }
  }
  sj::bench::Run(n, clients, per_client, threads);
  return 0;
}
