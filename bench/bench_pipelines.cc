// Operator pipelines vs hand-rolled post-processing: for each dataset of
// the TIGER ladder, compute a Roads x Hydro crossing heatmap (count
// density grid over the region, then the 16 hottest cells nearest the
// region center) two ways —
//
//   pipeline:    one PipelineQuery (join -> AggregateByCell -> TopK),
//                rows flow through the operators, one memory budget
//   hand-rolled: JoinQuery materializes every pair, then two explicit
//                passes rebuild the grid and the top-k on the side
//
// and asserts the outputs are identical row for row. The point of the
// comparison is the materialization the pipeline never pays: the
// hand-rolled path holds |join| pairs (unbounded, workload-dependent)
// while the pipeline's footprint is the grid band plus a k-entry heap,
// governed by the arbiter.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/join_query.h"
#include "core/pipeline_query.h"

namespace sj {
namespace bench {
namespace {

// The hand-rolled aggregate: same cell arithmetic as AggregateByCellOp
// (truncate-then-clamp, last cell closing on the extent edge), applied to
// each pair's contact box.
struct Grid {
  RectF extent;
  uint32_t nx, ny;
  float cell_w, cell_h;
  std::vector<double> cells;

  Grid(const RectF& e, uint32_t x, uint32_t y)
      : extent(e),
        nx(x),
        ny(y),
        cell_w((e.xhi - e.xlo) / static_cast<float>(x)),
        cell_h((e.yhi - e.ylo) / static_cast<float>(y)),
        cells(static_cast<size_t>(x) * y, 0.0) {}

  static uint32_t CellOf(float v, float lo, float w, uint32_t n) {
    const float rel = (v - lo) / w;
    if (!(rel > 0.0f)) return 0;
    return static_cast<uint32_t>(std::min(rel, static_cast<float>(n - 1)));
  }

  void Add(const RectF& r) {
    if (!r.Valid() || !r.Intersects(extent)) return;
    const uint32_t x0 = CellOf(r.xlo, extent.xlo, cell_w, nx);
    const uint32_t x1 = CellOf(r.xhi, extent.xlo, cell_w, nx);
    const uint32_t y0 = CellOf(r.ylo, extent.ylo, cell_h, ny);
    const uint32_t y1 = CellOf(r.yhi, extent.ylo, cell_h, ny);
    for (uint32_t iy = y0; iy <= y1; ++iy) {
      for (uint32_t ix = x0; ix <= x1; ++ix) {
        cells[static_cast<size_t>(iy) * nx + ix] += 1.0;
      }
    }
  }

  RectF CellRect(uint32_t ix, uint32_t iy) const {
    const float xlo = extent.xlo + static_cast<float>(ix) * cell_w;
    const float ylo = extent.ylo + static_cast<float>(iy) * cell_h;
    const float xhi = ix + 1 == nx
                          ? extent.xhi
                          : extent.xlo + static_cast<float>(ix + 1) * cell_w;
    const float yhi = iy + 1 == ny
                          ? extent.yhi
                          : extent.ylo + static_cast<float>(iy + 1) * cell_h;
    return RectF(xlo, ylo, xhi, yhi);
  }

  std::vector<PipeRow> NonZeroRows() const {
    std::vector<PipeRow> rows;
    for (uint32_t iy = 0; iy < ny; ++iy) {
      for (uint32_t ix = 0; ix < nx; ++ix) {
        const double v = cells[static_cast<size_t>(iy) * nx + ix];
        if (v == 0.0) continue;
        PipeRow row;
        row.rect = CellRect(ix, iy);
        row.ids = {static_cast<ObjectId>(iy) * nx + ix};
        row.value = v;
        rows.push_back(std::move(row));
      }
    }
    return rows;
  }
};

// The hand-rolled top-k: TopKByDistanceOp's exact total order (distance,
// ids, rect corners, value) over the full row set.
std::vector<PipeRow> TopK(std::vector<PipeRow> rows, size_t k, float qx,
                          float qy) {
  auto less = [qx, qy](const PipeRow& a, const PipeRow& b) {
    const double da = TopKByDistanceOp::DistanceTo(a.rect, qx, qy);
    const double db = TopKByDistanceOp::DistanceTo(b.rect, qx, qy);
    if (da != db) return da < db;
    if (a.ids != b.ids) return a.ids < b.ids;
    if (a.rect.xlo != b.rect.xlo) return a.rect.xlo < b.rect.xlo;
    if (a.rect.ylo != b.rect.ylo) return a.rect.ylo < b.rect.ylo;
    if (a.rect.xhi != b.rect.xhi) return a.rect.xhi < b.rect.xhi;
    if (a.rect.yhi != b.rect.yhi) return a.rect.yhi < b.rect.yhi;
    return a.value < b.value;
  };
  std::sort(rows.begin(), rows.end(), less);
  if (rows.size() > k) rows.resize(k);
  return rows;
}

void Run(const BenchConfig& config) {
  constexpr uint32_t kGrid = 64;
  constexpr size_t kTop = 16;

  std::printf(
      "== Heatmap: pipeline vs hand-rolled post-processing (scale %.4g, "
      "%ux%u grid, top %zu) ==\n\n",
      config.scale, kGrid, kGrid, kTop);
  std::printf("%-10s %10s %8s %12s %12s %14s %14s\n", "Dataset", "Pairs",
              "Cells", "Pipeline(s)", "Handroll(s)", "PipePeakMem",
              "PairsHeldMem");
  PrintHeaderRule(88);

  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    const MachineModel machine = MachineByIndex(config.machines.front());
    Workload w = MakeWorkload(data, machine, /*build_trees=*/false);
    const RectF region = TigerGenerator::DefaultRegion();
    const float cx = (region.xlo + region.xhi) / 2;
    const float cy = (region.ylo + region.yhi) / 2;

    SpatialJoiner joiner(w.disk.get(), config.ScaledOptions());

    // Pipeline: join -> density grid -> nearest hot cells, one run.
    w.disk->ResetStats();
    CollectingRowSink pipeline_rows;
    PipelineQuery query(joiner);
    query.Input(w.RoadsInput(false))
        .Input(w.HydroInput(false))
        .AggregateByCell(AggregateMode::kCount, kGrid, kGrid, region)
        .TopKByDistance(kTop, cx, cy);
    auto pipeline_stats = query.Run(&pipeline_rows);
    SJ_CHECK(pipeline_stats.ok()) << pipeline_stats.status().ToString();

    // Hand-rolled: materialize every pair, then rebuild the same answer
    // with explicit passes over the pair list.
    w.disk->ResetStats();
    CollectingSink pairs;
    auto join_stats = JoinQuery(joiner)
                          .Input(w.RoadsInput(false))
                          .Input(w.HydroInput(false))
                          .Run(&pairs);
    SJ_CHECK(join_stats.ok()) << join_stats.status().ToString();

    std::unordered_map<ObjectId, RectF> roads_by_id, hydro_by_id;
    roads_by_id.reserve(data.roads.size());
    hydro_by_id.reserve(data.hydro.size());
    for (const RectF& r : data.roads) roads_by_id.emplace(r.id, r);
    for (const RectF& r : data.hydro) hydro_by_id.emplace(r.id, r);

    Grid grid(region, kGrid, kGrid);
    for (const auto& pair : pairs.pairs()) {
      grid.Add(JoinRowAdapter::ContactBox(
          {roads_by_id.at(pair.a), hydro_by_id.at(pair.b)}));
    }
    const std::vector<PipeRow> handrolled =
        TopK(grid.NonZeroRows(), kTop, cx, cy);

    // The contract: identical rows, in the same (ascending distance)
    // order, down to rect corners, cell ids, and counts.
    SJ_CHECK(pipeline_rows.rows() == handrolled)
        << name << ": pipeline and hand-rolled answers diverged";

    // What the hand-rolled path had to hold to get there.
    const uint64_t pairs_bytes =
        pairs.pairs().size() * sizeof(IdPair);
    std::printf("%-10s %10llu %8zu %12.2f %12.2f %14s %14s\n", name.c_str(),
                static_cast<unsigned long long>(join_stats->output_count),
                handrolled.size(), pipeline_stats->ObservedSeconds(machine),
                join_stats->ObservedSeconds(machine),
                HumanBytes(pipeline_stats->peak_memory_bytes).c_str(),
                HumanBytes(pairs_bytes).c_str());
  }
  std::printf(
      "\nIdentical answers on every dataset. The hand-rolled column counts "
      "only the join;\nits grid and top-k passes run on an unbounded "
      "materialized pair list, while the\npipeline streamed rows through a "
      "grant-governed grid band and a %zu-entry heap.\n",
      kTop);
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
