// Microbenchmark for the §3.1 claim (from [4]) that Striped-Sweep is a
// factor 2-5 faster than Forward-Sweep on realistic data, plus a strip-
// count sensitivity sweep.

#include <benchmark/benchmark.h>

#include "datagen/tiger_gen.h"
#include "sweep/interval_structures.h"
#include "sweep/sweep_join.h"

namespace sj {
namespace {

struct SweepData {
  std::vector<RectF> roads;
  std::vector<RectF> hydro;
  RectF region;
};

const SweepData& GetSweepData(uint64_t n) {
  static std::map<uint64_t, SweepData>* cache =
      new std::map<uint64_t, SweepData>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  SweepData data;
  TigerGenerator gen(12345);
  gen.GenerateRoads(n, &data.roads);
  gen.GenerateHydro(n / 4, &data.hydro);
  std::sort(data.roads.begin(), data.roads.end(), OrderByYLo());
  std::sort(data.hydro.begin(), data.hydro.end(), OrderByYLo());
  data.region = gen.region();
  return cache->emplace(n, std::move(data)).first->second;
}

template <typename Structure>
void RunSweep(benchmark::State& state, uint32_t strips) {
  const SweepData& data = GetSweepData(static_cast<uint64_t>(state.range(0)));
  uint64_t output = 0;
  for (auto _ : state) {
    VectorRectSource a(&data.roads), b(&data.hydro);
    Structure sa(data.region, strips), sb(data.region, strips);
    const SweepRunStats stats = SweepJoinRun(
        a, b, sa, sb, [](const RectF&, const RectF&) {}, [] {});
    output = stats.output_count;
    benchmark::DoNotOptimize(output);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.roads.size() +
                                               data.hydro.size()));
  state.counters["output"] = static_cast<double>(output);
}

void BM_ForwardSweep(benchmark::State& state) {
  RunSweep<ForwardSweep>(state, 0);
}
void BM_StripedSweep(benchmark::State& state) {
  RunSweep<StripedSweep>(state, 1024);
}
void BM_StripedSweepStrips(benchmark::State& state) {
  const SweepData& data = GetSweepData(100000);
  const uint32_t strips = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    VectorRectSource a(&data.roads), b(&data.hydro);
    StripedSweep sa(data.region, strips), sb(data.region, strips);
    const SweepRunStats stats = SweepJoinRun(
        a, b, sa, sb, [](const RectF&, const RectF&) {}, [] {});
    benchmark::DoNotOptimize(stats.output_count);
  }
}

BENCHMARK(BM_ForwardSweep)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StripedSweep)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StripedSweepStrips)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sj
