// Microbenchmark for the §3.1 claim (from [4]) that Striped-Sweep is a
// factor 2-5 faster than Forward-Sweep on realistic data, extended with
// the scalar-vs-vectorized kernel comparison: each structure runs the
// same TIGER-ladder sweep with the kernels forced scalar and forced
// vectorized (sweep/sweep_kernels.h), asserting identical output pair
// counts and memory accounting, and reporting the kernel speedup. A
// strip-count sensitivity sweep rides along. Ends with a one-line JSON
// summary for the CI bench-smoke log.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sweep/interval_structures.h"
#include "sweep/sweep_join.h"
#include "util/logging.h"

namespace sj {
namespace bench {
namespace {

struct SweepResult {
  double ms = 0;
  uint64_t output = 0;
  size_t max_bytes = 0;
};

/// One timed sweep join (best of 3) with the kernels forced to `mode`.
template <typename Structure>
SweepResult TimedSweep(const std::vector<RectF>& roads,
                       const std::vector<RectF>& hydro, const RectF& region,
                       uint32_t strips, SweepKernelMode mode) {
  SweepResult result;
  SetSweepKernelMode(mode);
  result.ms = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    VectorRectSource a(&roads), b(&hydro);
    Structure sa(region, strips), sb(region, strips);
    const auto t0 = std::chrono::steady_clock::now();
    const SweepRunStats stats = SweepJoinRun(
        a, b, sa, sb, [](const RectF&, const RectF&) {}, [] {});
    const auto t1 = std::chrono::steady_clock::now();
    result.ms = std::min(
        result.ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
    result.output = stats.output_count;
    result.max_bytes = stats.max_structure_bytes;
  }
  ResetSweepKernelMode();
  return result;
}

void Run(const BenchConfig& config) {
  std::printf(
      "== Sweep kernels: scalar vs vectorized (isa %s, scale %.4g) ==\n\n",
      SweepKernelIsa(), config.scale);
  std::printf("%-10s %-8s %10s %10s %8s %12s\n", "Dataset", "Struct",
              "Scalar(ms)", "Vector(ms)", "Speedup", "Output");
  PrintHeaderRule(64);

  double fwd_scalar = 0, fwd_vector = 0, str_scalar = 0, str_vector = 0;
  bool identical = true;
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    std::vector<RectF> roads = data.roads, hydro = data.hydro;
    std::sort(roads.begin(), roads.end(), OrderByYLo());
    std::sort(hydro.begin(), hydro.end(), OrderByYLo());
    RectF region = RectF::Empty();
    for (const RectF& r : roads) region.ExtendTo(r);
    for (const RectF& r : hydro) region.ExtendTo(r);

    const SweepResult fs = TimedSweep<ForwardSweep>(
        roads, hydro, region, 0, SweepKernelMode::kScalar);
    const SweepResult fv = TimedSweep<ForwardSweep>(
        roads, hydro, region, 0, SweepKernelMode::kVectorized);
    const SweepResult ss = TimedSweep<StripedSweep>(
        roads, hydro, region, 1024, SweepKernelMode::kScalar);
    const SweepResult sv = TimedSweep<StripedSweep>(
        roads, hydro, region, 1024, SweepKernelMode::kVectorized);
    // Both modes must be indistinguishable in output and accounting.
    SJ_CHECK(fs.output == fv.output && fs.max_bytes == fv.max_bytes);
    SJ_CHECK(ss.output == sv.output && ss.max_bytes == sv.max_bytes);
    SJ_CHECK(fs.output == ss.output);
    identical = identical && fs.output == fv.output && ss.output == sv.output;
    fwd_scalar += fs.ms;
    fwd_vector += fv.ms;
    str_scalar += ss.ms;
    str_vector += sv.ms;

    std::printf("%-10s %-8s %10.2f %10.2f %7.2fx %12llu\n", name.c_str(),
                "forward", fs.ms, fv.ms, fs.ms / fv.ms,
                static_cast<unsigned long long>(fs.output));
    std::printf("%-10s %-8s %10.2f %10.2f %7.2fx %12llu\n", name.c_str(),
                "striped", ss.ms, sv.ms, ss.ms / sv.ms,
                static_cast<unsigned long long>(ss.output));
  }

  // Strip-count sensitivity (vectorized, first dataset): the [4] claim is
  // about queries touching few strips; too few strips degrades toward
  // Forward-Sweep, too many pays replication.
  const LoadedDataset& first = GetDataset(config.datasets.front(),
                                          config.scale);
  std::vector<RectF> roads = first.roads, hydro = first.hydro;
  std::sort(roads.begin(), roads.end(), OrderByYLo());
  std::sort(hydro.begin(), hydro.end(), OrderByYLo());
  RectF region = RectF::Empty();
  for (const RectF& r : roads) region.ExtendTo(r);
  for (const RectF& r : hydro) region.ExtendTo(r);
  std::printf("\n%s strip sensitivity (vectorized): ",
              config.datasets.front().c_str());
  for (uint32_t strips : {16u, 128u, 1024u, 8192u}) {
    const SweepResult r = TimedSweep<StripedSweep>(
        roads, hydro, region, strips, SweepKernelMode::kVectorized);
    std::printf("%u:%.2fms ", strips, r.ms);
  }
  std::printf("\n\n");

  std::printf(
      "{\"bench\":\"sweep_structures\",\"isa\":\"%s\",\"scale\":%.4g,"
      "\"forward_speedup\":%.2f,\"striped_speedup\":%.2f,"
      "\"forward_scalar_ms\":%.2f,\"forward_vector_ms\":%.2f,"
      "\"striped_scalar_ms\":%.2f,\"striped_vector_ms\":%.2f,"
      "\"identical_output\":%s}\n",
      SweepKernelIsa(), config.scale, fwd_scalar / fwd_vector,
      str_scalar / str_vector, fwd_scalar, fwd_vector, str_scalar, str_vector,
      identical ? "true" : "false");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
