// The filter-and-refine pipeline end to end: for each dataset of the
// TIGER ladder, run the MBR filter join alone and the full filter+refine
// pipeline (JoinOptions::refine with paged FeatureStores), reporting the
// candidate/exact split, the refinement selectivity, the feature pages
// fetched, and how the batch size trades parallel grain against repeated
// page fetches. Modeled times come from the shared DiskModel, so the
// refinement I/O is priced exactly like the filter's.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "join/predicate_batch.h"
#include "refine/feature_store.h"

namespace sj {
namespace bench {
namespace {

void RefineKernelComparison(const BenchConfig& config);

void Run(const BenchConfig& config) {
  std::printf(
      "== Filter-and-refine overlay: candidates vs. exact results "
      "(scale %.4g) ==\n\n",
      config.scale);
  std::printf("%-10s %5s %12s %12s %6s %12s %10s %10s\n", "Dataset",
              "Batch", "Candidates", "Exact", "Sel%", "RefinePages",
              "Filter(s)", "Total(s)");
  PrintHeaderRule(86);

  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    const MachineModel machine = MachineByIndex(config.machines.front());
    Workload w = MakeWorkload(data, machine, /*build_trees=*/false);

    // Exact geometry for both relations, stored through the same disk.
    auto roads_geom_pager = MakeMemoryPager(w.disk.get(), "roads.geom");
    auto hydro_geom_pager = MakeMemoryPager(w.disk.get(), "hydro.geom");
    auto roads_store = FeatureStore::Build(
        roads_geom_pager.get(), SegmentsForRects(data.roads), "roads.geom");
    auto hydro_store = FeatureStore::Build(
        hydro_geom_pager.get(), SegmentsForRects(data.hydro), "hydro.geom");
    SJ_CHECK(roads_store.ok() && hydro_store.ok());
    w.disk->ResetStats();

    // Filter-only baseline.
    JoinOptions options = config.ScaledOptions();
    double filter_seconds = 0;
    {
      SpatialJoiner joiner(w.disk.get(), options);
      CountingSink sink;
      auto stats = JoinQuery(joiner)
                       .Input(w.RoadsInput(false))
                       .Input(w.HydroInput(false))
                       .Algorithm(JoinAlgorithm::kSSSJ)
                       .Run(&sink);
      SJ_CHECK(stats.ok());
      filter_seconds = stats->ObservedSeconds(machine);
    }

    // Full pipeline at several refinement batch sizes: small batches cut
    // parallel grain and per-batch memory but re-fetch hot feature pages
    // across batches; large batches approach one read per touched page.
    SpatialJoiner joiner(w.disk.get(), options);
    for (uint32_t batch : {256u, 1024u, 4096u}) {
      // The batch size is a per-query override; the shared joiner's
      // options stay filter-only.
      CountingSink sink;
      auto stats = JoinQuery(joiner)
                       .Input(w.RoadsInput(false))
                       .Input(w.HydroInput(false))
                       .WithFeatures(0, &*roads_store)
                       .WithFeatures(1, &*hydro_store)
                       .Algorithm(JoinAlgorithm::kSSSJ)
                       .Refine(true)
                       .RefineBatchPairs(batch)
                       .Run(&sink);
      SJ_CHECK(stats.ok());
      SJ_CHECK(stats->output_count == sink.count());
      const double sel =
          stats->candidate_count > 0
              ? 100.0 * static_cast<double>(stats->output_count) /
                    static_cast<double>(stats->candidate_count)
              : 0.0;
      std::printf("%-10s %5u %12llu %12llu %5.1f%% %12llu %10.2f %10.2f\n",
                  name.c_str(), batch,
                  static_cast<unsigned long long>(stats->candidate_count),
                  static_cast<unsigned long long>(stats->output_count), sel,
                  static_cast<unsigned long long>(stats->refine_pages_read),
                  filter_seconds, stats->ObservedSeconds(machine));
    }
  }
  std::printf(
      "\nThe MBR filter overapproximates: refinement keeps only candidates "
      "whose exact\nsegments intersect. Larger batches fetch fewer feature "
      "pages (each distinct page\nonce per batch) at the cost of coarser "
      "parallel units.\n");

  RefineKernelComparison(config);
}

/// Scalar-vs-vectorized comparison of the batched exact-predicate
/// evaluator (join/predicate_batch.h) over candidate pairs drawn from the
/// first ladder dataset, asserting identical masks and reporting the
/// kernel speedup as a one-line JSON summary for bench-smoke.
void RefineKernelComparison(const BenchConfig& config) {
  const LoadedDataset& data = GetDataset(config.datasets.front(),
                                         config.scale);
  const std::vector<Segment> ga = SegmentsForRects(data.roads);
  const std::vector<Segment> gb = SegmentsForRects(data.hydro);
  // Index-scrambled pairing approximates a candidate stream: mostly
  // non-intersecting with a sprinkle of hits, like real refine input.
  const size_t n = std::min<size_t>(200000, ga.size() * 4);
  std::vector<Segment> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = ga[i % ga.size()];
    b[i] = gb[(i * 7 + i / ga.size()) % gb.size()];
  }

  std::printf("\n== Refine kernels: scalar vs vectorized (%zu pairs) ==\n",
              n);
  auto timed = [&](const PredicateSpec& spec, SweepKernelMode mode,
                   std::vector<uint8_t>* mask) {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      EvaluateExactPredicateBatch(mode, spec, a.data(), b.data(), n,
                                  mask->data());
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double, std::milli>(t1 - t0)
                          .count());
    }
    return best;
  };

  double speedups[2] = {0, 0};
  const PredicateSpec specs[2] = {
      PredicateSpec{Predicate::kIntersects, 0.0},
      PredicateSpec{Predicate::kDistanceWithin, 0.5}};
  const char* names[2] = {"intersects", "distance"};
  bool identical = true;
  for (int p = 0; p < 2; ++p) {
    std::vector<uint8_t> scalar(n), vectorized(n);
    const double ms_s = timed(specs[p], SweepKernelMode::kScalar, &scalar);
    const double ms_v = timed(specs[p], SweepKernelMode::kVectorized,
                              &vectorized);
    identical = identical && scalar == vectorized;
    SJ_CHECK(scalar == vectorized);
    speedups[p] = ms_s / ms_v;
    std::printf("%-12s scalar %8.2f ms   vectorized %8.2f ms   %.2fx\n",
                names[p], ms_s, ms_v, speedups[p]);
  }
  std::printf(
      "\n{\"bench\":\"refinement_kernels\",\"isa\":\"%s\",\"pairs\":%zu,"
      "\"intersects_speedup\":%.2f,\"distance_speedup\":%.2f,"
      "\"identical_masks\":%s}\n",
      SweepKernelIsa(), n, speedups[0], speedups[1],
      identical ? "true" : "false");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
