// Reproduces Table 3: maximal memory usage of the PQ join's data
// structures (priority queues + active leaf buffers, and the sweep-line
// structures) per dataset. The paper's point: even on DISK1-6 the total is
// ~5 MB, i.e. < 1 % of the data, so the in-memory assumption of PQ holds.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "== Table 3: maximal PQ join memory (scale %.4g), in MB ==\n\n",
      config.scale);
  std::printf("%-16s", "Data Structure");
  for (const std::string& name : config.datasets) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  PrintHeaderRule(16 + 11 * static_cast<int>(config.datasets.size()));

  std::vector<double> queue_mb, sweep_mb, total_mb, input_mb;
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    Workload w = MakeWorkload(data, MachineModel::Machine3(),
                              /*build_trees=*/true);
    auto stats = RunJoin(&w, JoinAlgorithm::kPQ, config.ScaledOptions());
    SJ_CHECK(stats.ok()) << stats.status().ToString();
    queue_mb.push_back(stats->max_queue_bytes / 1048576.0);
    sweep_mb.push_back(stats->max_sweep_bytes / 1048576.0);
    total_mb.push_back((stats->max_queue_bytes + stats->max_sweep_bytes) /
                       1048576.0);
    input_mb.push_back((data.roads.size() + data.hydro.size()) *
                       sizeof(RectF) / 1048576.0);
  }
  auto row = [&](const char* label, const std::vector<double>& values) {
    std::printf("%-16s", label);
    for (double v : values) std::printf(" %10.3f", v);
    std::printf("\n");
  };
  row("Priority Queue", queue_mb);
  row("Sweep Structure", sweep_mb);
  row("Total", total_mb);
  row("(input data)", input_mb);
  std::printf(
      "\nPaper (scale 1.0): PQ total 0.41 / 0.86 / 1.56 / 2.87 / 3.82 / "
      "5.19 MB for\nNJ / NY / DISK1 / DISK4-6 / DISK1-3 / DISK1-6 — always "
      "<1%% of the dataset.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
