// Extension bench: the breadth-first traversal of Huang, Jing &
// Rundensteiner [16], which §3.3 reports "takes approximately the same
// CPU time as ST while performing an almost optimal number of I/O
// operations (if a sufficiently large buffer pool is available)". We sweep
// the pool size and compare ST's and BFS's page requests against the
// lower bound, plus modeled times.

#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"
#include "join/bfs_join.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const MachineModel machine = MachineModel::Machine3();
  const std::string dataset =
      config.datasets.size() == 6 ? "DISK1" : config.datasets.front();
  const LoadedDataset& data = GetDataset(dataset, config.scale);
  Workload w = MakeWorkload(data, machine, /*build_trees=*/true);
  const uint64_t optimal =
      w.roads_tree->node_count() + w.hydro_tree->node_count();

  std::printf(
      "== BFS traversal [16] vs depth-first ST on %s (scale %.4g) ==\n\n",
      dataset.c_str(), config.scale);
  std::printf("lower bound: %llu pages\n\n",
              static_cast<unsigned long long>(optimal));
  std::printf("%12s | %12s %10s %8s | %12s %10s %8s\n", "pool(pages)",
              "ST pages", "ST avg", "ST s", "BFS pages", "BFS avg", "BFS s");
  PrintHeaderRule(86);
  for (size_t pool : {8u, 64u, 512u, 4096u}) {
    JoinOptions options = config.ScaledOptions();
    options.buffer_pool_pages = pool;

    w.disk->ResetStats();
    CountingSink st_sink;
    SpatialJoiner joiner(w.disk.get(), options);
    auto st = JoinQuery(joiner)
                  .Input(w.RoadsInput(true))
                  .Input(w.HydroInput(true))
                  .Algorithm(JoinAlgorithm::kST)
                  .Run(&st_sink);
    SJ_CHECK(st.ok());

    w.disk->ResetStats();
    CountingSink bfs_sink;
    auto bfs = BFSJoin(*w.roads_tree, *w.hydro_tree, w.disk.get(), options,
                       &bfs_sink);
    SJ_CHECK(bfs.ok());
    SJ_CHECK(st_sink.count() == bfs_sink.count()) << "BFS/ST disagree";

    auto avg = [&](uint64_t pages) {
      return static_cast<double>(pages) / static_cast<double>(optimal);
    };
    std::printf("%12zu | %12llu %10.2f %8.2f | %12llu %10.2f %8.2f\n", pool,
                static_cast<unsigned long long>(st->index_pages_read),
                avg(st->index_pages_read), st->ObservedSeconds(machine),
                static_cast<unsigned long long>(bfs->index_pages_read),
                avg(bfs->index_pages_read), bfs->ObservedSeconds(machine));
  }
  std::printf(
      "\nExpected shape: with a tiny pool, depth-first ST re-reads pages "
      "heavily while BFS's\nlevel-by-level page-ordered fetching stays near "
      "the lower bound — [16]'s result.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
