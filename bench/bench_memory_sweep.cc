// Join time vs. memory budget: every algorithm on a ladder of per-query
// budgets, from far below the paper's 24 MB up to the comfortable
// default. Shows what the MemoryArbiter's governed degradation costs:
// SSSJ pays extra merge passes (and, at the bottom, the strip spill),
// PBSM runs more partitions with smaller writer blocks, ST shrinks its
// buffer pool (more re-reads), PQ's structures fit everywhere. Output
// counts are asserted identical across the whole ladder — degradation
// must never change the result. Also reports the granted peak per run,
// which stays within the budget by construction.

#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"

namespace sj {
namespace bench {
namespace {

constexpr size_t kBudgets[] = {256u << 10, 512u << 10, 1u << 20, 4u << 20,
                               24u << 20};

void Run(const BenchConfig& config) {
  std::printf(
      "== Join time vs. memory budget (scale %.4g), modeled seconds on "
      "Machine 3 ==\n\n",
      config.scale);

  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    std::printf("-- %s (%zu x %zu rects) --\n", name.c_str(),
                data.roads.size(), data.hydro.size());
    std::printf("%-6s", "algo");
    for (size_t budget : kBudgets) {
      std::printf(" %12s", HumanBytes(budget).c_str());
    }
    std::printf("  %12s\n", "peak@min");
    PrintHeaderRule(6 + 13 * static_cast<int>(std::size(kBudgets)) + 14);

    for (JoinAlgorithm algo :
         {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM, JoinAlgorithm::kST,
          JoinAlgorithm::kPQ}) {
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
      std::printf("%-6s", ToString(algo));
      uint64_t reference_count = 0;
      size_t min_budget_peak = 0;
      for (size_t budget : kBudgets) {
        Workload w = MakeWorkload(data, MachineModel::Machine3(),
                                  /*build_trees=*/indexed);
        JoinOptions options = config.ScaledOptions();
        options.memory_bytes = budget;
        SpatialJoiner joiner(w.disk.get(), options);
        CountingSink sink;
        auto stats = JoinQuery(joiner)
                         .Input(w.RoadsInput(indexed))
                         .Input(w.HydroInput(indexed))
                         .Algorithm(algo)
                         .Run(&sink);
        SJ_CHECK(stats.ok()) << stats.status().ToString();
        if (reference_count == 0) {
          reference_count = stats->output_count;
          min_budget_peak = stats->peak_memory_bytes;
          SJ_CHECK(stats->peak_memory_bytes <= budget)
              << ToString(algo) << ": granted peak above the budget";
        }
        SJ_CHECK(stats->output_count == reference_count)
            << ToString(algo)
            << ": output changed across budgets — degradation is broken";
        std::printf(" %12.3f",
                    stats->ObservedSeconds(w.disk->machine()));
      }
      std::printf("  %12s\n", HumanBytes(min_budget_peak).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "Columns are per-query budgets; peak@min is the arbiter's granted "
      "peak at the\nsmallest budget (always within it). Identical output "
      "counts across each row\nare asserted, not assumed.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
