// Ablation for the §3.2 implementation note: Patel & DeWitt's 32x32 tile
// grid produced overfull partitions on TIGER data, which the paper fixed
// by moving to 128x128. We sweep the tile count on the (clustered) ladder
// and report partition overflows, the largest partition, replication
// volume and run time.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const MachineModel machine = MachineModel::Machine3();
  std::printf("== PBSM tile-count ablation (scale %.4g, %s) ==\n\n",
              config.scale, machine.name.c_str());
  std::printf("%-10s %8s %12s %12s %14s %12s %10s\n", "Dataset", "tiles",
              "partitions", "overflowed", "maxPartition", "pagesWritten",
              "time(s)");
  PrintHeaderRule(86);
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    for (uint32_t tiles : {8u, 32u, 128u, 256u}) {
      Workload w = MakeWorkload(data, machine, /*build_trees=*/false);
      JoinOptions options;
      // This ablation is *about* the fixed grid; pin the escape hatch so
      // the adaptive planner (the modern default) stays out of the way.
      options.adaptive_partitioning = false;
      options.pbsm_tiles_per_axis = tiles;
      // Scale the memory budget down with the ladder so partitioning is
      // actually exercised at bench scales.
      options.memory_bytes = std::max<size_t>(
          256u << 10,
          (data.roads.size() + data.hydro.size()) * sizeof(RectF) / 12);
      auto stats = RunJoin(&w, JoinAlgorithm::kPBSM, options);
      SJ_CHECK(stats.ok()) << stats.status().ToString();
      std::printf("%-10s %8u %12u %12u %14s %12llu %10.2f\n", name.c_str(),
                  tiles, stats->partitions_total,
                  stats->partitions_overflowed,
                  HumanBytes(stats->max_partition_bytes).c_str(),
                  static_cast<unsigned long long>(stats->disk.pages_written),
                  stats->ObservedSeconds(machine));
    }
  }
  std::printf(
      "\nExpected shape: with few tiles, round-robin assignment cannot "
      "balance clustered data\n(overflows, oversized partitions); finer "
      "grids fix the balance at the cost of slightly\nmore replication — "
      "the paper's rationale for 128x128.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
