// Ablation for §6.2/§7: the performance of index-based joins depends on
// the index's packing quality and disk layout. We build the Road/Hydro
// indexes three ways — Hilbert bulk load (the paper's), STR bulk load, and
// dynamic Guttman insertion ("ad-hoc index") — and run ST and PQ on each,
// reporting page requests, the sequential share of ST's reads, and time.

#include <cstdio>

#include "bench_common.h"
#include "core/join_query.h"
#include "io/stream.h"

namespace sj {
namespace bench {
namespace {

enum class BuildKind { kHilbert, kSTR, kInsert };

const char* ToString(BuildKind k) {
  switch (k) {
    case BuildKind::kHilbert:
      return "hilbert";
    case BuildKind::kSTR:
      return "str";
    case BuildKind::kInsert:
      return "insert";
  }
  return "?";
}

Result<RTree> Build(BuildKind kind, Pager* tree_pager, Pager* scratch,
                    const DatasetRef& input,
                    const std::vector<RectF>& rects) {
  RTreeParams params;
  switch (kind) {
    case BuildKind::kHilbert:
      return RTree::BulkLoadHilbert(tree_pager, input.range, scratch, params,
                                    24u << 20);
    case BuildKind::kSTR:
      return RTree::BulkLoadSTR(tree_pager, input.range, scratch, params,
                                24u << 20);
    case BuildKind::kInsert: {
      SJ_ASSIGN_OR_RETURN(RTree tree, RTree::CreateEmpty(tree_pager, params));
      for (const RectF& r : rects) SJ_RETURN_IF_ERROR(tree.Insert(r));
      return tree;
    }
  }
  return Status::Internal("unreachable");
}

void Run(const BenchConfig& config) {
  const MachineModel machine = MachineModel::Machine3();
  // Dynamic insertion is O(n) page writes with quadratic splits — cap the
  // dataset for the insert-built variant.
  const std::string dataset =
      config.datasets.size() == 6 ? "NY" : config.datasets.front();
  const LoadedDataset& data = GetDataset(dataset, config.scale);

  std::printf("== Index-quality ablation on %s (scale %.4g, %s) ==\n\n",
              dataset.c_str(), config.scale, machine.name.c_str());
  std::printf("%-8s %10s %8s | %10s %10s %8s | %10s %10s %8s\n", "build",
              "nodes", "packing", "ST pages", "ST seq%", "ST s", "PQ pages",
              "PQ seq%", "PQ s");
  PrintHeaderRule(96);

  for (BuildKind kind :
       {BuildKind::kHilbert, BuildKind::kSTR, BuildKind::kInsert}) {
    Workload w = MakeWorkload(data, machine, /*build_trees=*/false);
    auto roads_tree_pager = MakeMemoryPager(w.disk.get(), "roads.tree");
    auto hydro_tree_pager = MakeMemoryPager(w.disk.get(), "hydro.tree");
    auto scratch = MakeMemoryPager(w.disk.get(), "scratch");
    auto roads_tree = Build(kind, roads_tree_pager.get(), scratch.get(),
                            w.roads, data.roads);
    auto hydro_tree = Build(kind, hydro_tree_pager.get(), scratch.get(),
                            w.hydro, data.hydro);
    SJ_CHECK(roads_tree.ok() && hydro_tree.ok());
    const double packing =
        (roads_tree->AveragePacking() + hydro_tree->AveragePacking()) / 2;
    const uint64_t nodes =
        roads_tree->node_count() + hydro_tree->node_count();

    auto run = [&](JoinAlgorithm algo, uint64_t* pages, double* seq_share,
                   double* seconds) {
      w.disk->ResetStats();
      SpatialJoiner joiner(w.disk.get(), JoinOptions());
      CountingSink sink;
      auto stats = JoinQuery(joiner)
                       .Input(JoinInput::FromRTree(&*roads_tree))
                       .Input(JoinInput::FromRTree(&*hydro_tree))
                       .Algorithm(algo)
                       .Run(&sink);
      SJ_CHECK(stats.ok()) << stats.status().ToString();
      *pages = stats->index_pages_read;
      *seq_share = stats->disk.read_requests > 0
                       ? 100.0 *
                             static_cast<double>(
                                 stats->disk.sequential_read_requests) /
                             static_cast<double>(stats->disk.read_requests)
                       : 0.0;
      *seconds = stats->ObservedSeconds(machine);
    };
    uint64_t st_pages, pq_pages;
    double st_seq, pq_seq, st_s, pq_s;
    run(JoinAlgorithm::kST, &st_pages, &st_seq, &st_s);
    run(JoinAlgorithm::kPQ, &pq_pages, &pq_seq, &pq_s);
    std::printf("%-8s %10llu %7.0f%% | %10llu %9.0f%% %8.2f | %10llu %9.0f%% %8.2f\n",
                ToString(kind), static_cast<unsigned long long>(nodes),
                packing * 100,
                static_cast<unsigned long long>(st_pages), st_seq, st_s,
                static_cast<unsigned long long>(pq_pages), pq_seq, pq_s);
  }
  std::printf(
      "\nExpected shape: bulk-loaded trees (hilbert/str) are smaller "
      "(~90%% packing vs ~65%%\nfor inserts) and give ST a large "
      "sequential share; the insert-built tree scatters\nsiblings, "
      "degrading ST toward PQ's random behaviour (§6.2, footnote on Kim & "
      "Cha).\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
