// Reproduces Table 4: number of index pages requested from disk while
// joining, for the two index-based algorithms. PQ touches every node of
// both packed R-trees exactly once (the "lower bound" / optimal count);
// ST re-requests pages on buffer-pool misses, giving 1.0x on small inputs
// (whole index cached in the 22 MB pool) and up to ~1.6x on large ones.
// These counts are machine independent.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "== Table 4: index pages requested during joining (scale %.4g) ==\n\n",
      config.scale);
  std::printf("%-14s %-8s", "Method", "Requests");
  for (const std::string& name : config.datasets) {
    std::printf(" %12s", name.c_str());
  }
  std::printf("\n");
  PrintHeaderRule(23 + 13 * static_cast<int>(config.datasets.size()));

  std::vector<uint64_t> lower, pq_total, st_total;
  std::vector<double> st_hit_rate;
  for (const std::string& name : config.datasets) {
    const LoadedDataset& data = GetDataset(name, config.scale);
    Workload w = MakeWorkload(data, MachineModel::Machine3(),
                              /*build_trees=*/true);
    lower.push_back(w.roads_tree->node_count() + w.hydro_tree->node_count());
    auto pq = RunJoin(&w, JoinAlgorithm::kPQ, config.ScaledOptions());
    SJ_CHECK(pq.ok());
    pq_total.push_back(pq->index_pages_read);
    auto st = RunJoin(&w, JoinAlgorithm::kST, config.ScaledOptions());
    SJ_CHECK(st.ok());
    st_total.push_back(st->index_pages_read);
    st_hit_rate.push_back(st->pool_requests > 0
                              ? static_cast<double>(st->pool_hits) /
                                    static_cast<double>(st->pool_requests)
                              : 0.0);
  }

  auto total_row = [&](const char* method, const std::vector<uint64_t>& v) {
    std::printf("%-14s %-8s", method, "Total");
    for (uint64_t x : v) std::printf(" %12llu", static_cast<unsigned long long>(x));
    std::printf("\n");
  };
  auto avg_row = [&](const char* method, const std::vector<uint64_t>& v) {
    std::printf("%-14s %-8s", method, "Avg.");
    for (size_t i = 0; i < v.size(); ++i) {
      std::printf(" %12.2f",
                  lower[i] > 0 ? static_cast<double>(v[i]) /
                                     static_cast<double>(lower[i])
                               : 0.0);
    }
    std::printf("\n");
  };
  total_row("Lower Bound", lower);
  avg_row("Lower Bound", lower);
  total_row("PQ Join", pq_total);
  avg_row("PQ Join", pq_total);
  total_row("ST Join", st_total);
  avg_row("ST Join", st_total);

  std::printf("%-14s %-8s", "ST pool", "HitRate");
  for (double h : st_hit_rate) std::printf(" %12.2f", h);
  std::printf(
      "\n\nPaper: PQ == lower bound everywhere; ST avg 1.00 on NJ/NY "
      "(index fits the pool,\nsometimes < 1.0 thanks to search-space "
      "restriction) and 1.14-1.63 on the disk-scale sets.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
