// Reproduces the §6.3 cost-model experiment: when is it worth using an
// existing index? We join the full "Road" relation (indexed) against
// "Hydro" restricted to windows of growing size — the paper's
// Minnesota-hydro vs US-roads scenario generalized into a sweep.
//
// For each window we run (a) the selective PQ traversal, which prunes
// subtrees outside the window and pays a *random* read per touched page,
// and (b) SSSJ, which ignores the index and streams + sorts everything.
// The crossover fraction is compared against the cost model's predicted
// break-even (~0.55-0.6 of the index, the paper's "60% of the leaf
// nodes" rule).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "join/pq_join.h"
#include "join/sssj.h"
#include "sort/external_sort.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::string dataset =
      config.datasets.size() == 6 ? "DISK1" : config.datasets.front();
  const LoadedDataset& data = GetDataset(dataset, config.scale);

  for (int m : config.machines) {
    const MachineModel machine = MachineByIndex(m);
    const CostModel model(machine);
    std::printf(
        "\n== Cost-model crossover on %s, %s (predicted break-even "
        "fraction f* = %.2f) ==\n\n",
        dataset.c_str(), machine.name.c_str(),
        model.IndexBreakEvenFraction());
    std::printf("%-8s %10s %12s %12s %12s %10s\n", "window", "hydroObjs",
                "leafFrac", "PQ(s)", "SSSJ(s)", "bestPlan");
    PrintHeaderRule(70);

    for (double frac : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      Workload w = MakeWorkload(data, machine, /*build_trees=*/true);
      // A window covering `frac` of the extent's area (sqrt on each side).
      const RectF extent = w.roads.extent;
      const float side = static_cast<float>(std::sqrt(frac));
      const RectF window(
          extent.xlo, extent.ylo,
          extent.xlo + side * (extent.xhi - extent.xlo),
          extent.ylo + side * (extent.yhi - extent.ylo));

      // Hydro restricted to the window (the localized relation).
      std::vector<RectF> local_hydro;
      for (const RectF& r : data.hydro) {
        if (r.Intersects(window)) local_hydro.push_back(r);
      }
      auto local_pager = MakeMemoryPager(w.disk.get(), "hydro.local");
      StreamWriter<RectF> writer(local_pager.get());
      const PageId first = writer.first_page();
      RectF local_extent = RectF::Empty();
      for (const RectF& r : local_hydro) {
        writer.Append(r);
        local_extent.ExtendTo(r);
      }
      auto n = writer.Finish();
      SJ_CHECK(n.ok());
      DatasetRef local_ref;
      local_ref.range = StreamRange{local_pager.get(), first, n.value()};
      local_ref.extent = local_extent;
      w.disk->ResetStats();

      // (a) Selective PQ: road index pruned to the hydro extent.
      JoinStats pq_stats;
      {
        JoinMeasurement measurement(w.disk.get());
        auto scratch = MakeMemoryPager(w.disk.get(), "pq.runs");
        auto sorted_pager = MakeMemoryPager(w.disk.get(), "pq.sorted");
        auto sorted = SortRectsByYLo(local_ref.range, scratch.get(),
                                     sorted_pager.get(), 12u << 20);
        SJ_CHECK(sorted.ok());
        RTreePQSource::Options options;
        options.filter = &local_extent;
        RTreePQSource road_source(&*w.roads_tree, options);
        SortedStreamSource hydro_source(*sorted);
        CountingSink sink;
        auto stats = PQJoinSources(&road_source, &hydro_source, extent,
                                   w.disk.get(), JoinOptions(), &sink);
        SJ_CHECK(stats.ok());
        pq_stats = *stats;
        pq_stats.index_pages_read = road_source.pages_read();
      }
      const double leaf_frac =
          static_cast<double>(pq_stats.index_pages_read) /
          static_cast<double>(w.roads_tree->node_count());

      // (b) SSSJ ignoring the index (leaf extraction counted as a
      // sequential pass is already part of its 3-read model; here the
      // non-indexed copy of roads stands in for it).
      w.disk->ResetStats();
      CountingSink sssj_sink;
      auto sssj_stats =
          SSSJJoin(w.roads, local_ref, w.disk.get(), JoinOptions(),
                   &sssj_sink);
      SJ_CHECK(sssj_stats.ok());

      const double pq_s = pq_stats.ObservedSeconds(machine);
      const double sssj_s = sssj_stats->ObservedSeconds(machine);
      std::printf("%-8.2f %10zu %12.2f %12.2f %12.2f %10s\n", frac,
                  local_hydro.size(), leaf_frac, pq_s, sssj_s,
                  pq_s < sssj_s ? "PQ(index)" : "SSSJ");
    }
  }
  std::printf(
      "\nExpected shape: PQ wins while the touched leaf fraction is below "
      "f*, SSSJ wins above\n— the paper's conclusion that an index should "
      "only be used when the join is selective.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
