#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "core/join_query.h"
#include "io/stream.h"
#include "util/logging.h"

namespace sj {
namespace bench {
namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      config.scale = std::stod(arg.substr(8));
    } else if (arg.rfind("--datasets=", 0) == 0) {
      config.datasets = SplitCsv(arg.substr(11));
    } else if (arg.rfind("--machines=", 0) == 0) {
      config.machines.clear();
      for (const std::string& m : SplitCsv(arg.substr(11))) {
        config.machines.push_back(std::stoi(m));
      }
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--scale=F] [--datasets=NJ,NY,...] [--machines=1,2,3]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return config;
}

JoinOptions BenchConfig::ScaledOptions() const {
  JoinOptions options;
  options.buffer_pool_pages = std::max<size_t>(
      8, static_cast<size_t>((22u << 20) * scale) / kPageSize);
  options.memory_bytes =
      std::max<size_t>(4u << 20, static_cast<size_t>((24u << 20) * scale));
  return options;
}

MachineModel MachineByIndex(int index) {
  switch (index) {
    case 1:
      return MachineModel::Machine1();
    case 2:
      return MachineModel::Machine2();
    case 3:
      return MachineModel::Machine3();
    default:
      SJ_CHECK(false) << "unknown machine index" << index;
      return MachineModel::Machine3();
  }
}

const LoadedDataset& GetDataset(const std::string& name, double scale) {
  static std::map<std::string, LoadedDataset>* cache =
      new std::map<std::string, LoadedDataset>();
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  LoadedDataset data;
  data.spec = PaperDataset(name, scale);
  TigerGenerator gen(data.spec.seed);
  gen.GenerateRoads(data.spec.road_count, &data.roads);
  gen.GenerateHydro(data.spec.hydro_count, &data.hydro);
  return cache->emplace(key, std::move(data)).first->second;
}

namespace {

DatasetRef WriteRelation(Pager* pager, const std::vector<RectF>& rects) {
  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  RectF extent = RectF::Empty();
  for (const RectF& r : rects) {
    writer.Append(r);
    extent.ExtendTo(r);
  }
  auto n = writer.Finish();
  SJ_CHECK(n.ok());
  DatasetRef ref;
  ref.range = StreamRange{pager, first, n.value()};
  ref.extent = extent;
  return ref;
}

}  // namespace

Workload MakeWorkload(const LoadedDataset& data, const MachineModel& machine,
                      bool build_trees) {
  Workload w;
  w.disk = std::make_unique<DiskModel>(machine);
  w.roads_pager = MakeMemoryPager(w.disk.get(), "roads");
  w.hydro_pager = MakeMemoryPager(w.disk.get(), "hydro");
  w.roads = WriteRelation(w.roads_pager.get(), data.roads);
  w.hydro = WriteRelation(w.hydro_pager.get(), data.hydro);

  if (build_trees) {
    w.roads_tree_pager = MakeMemoryPager(w.disk.get(), "roads.rtree");
    w.hydro_tree_pager = MakeMemoryPager(w.disk.get(), "hydro.rtree");
    auto scratch = MakeMemoryPager(w.disk.get(), "bulkload.scratch");
    const double io_before = w.disk->stats().io_seconds;
    const RTreeParams params;  // The paper's 400/75 %/20 % configuration.
    auto roads_tree =
        RTree::BulkLoadHilbert(w.roads_tree_pager.get(), w.roads.range,
                               scratch.get(), params, 24u << 20);
    auto hydro_tree =
        RTree::BulkLoadHilbert(w.hydro_tree_pager.get(), w.hydro.range,
                               scratch.get(), params, 24u << 20);
    SJ_CHECK(roads_tree.ok() && hydro_tree.ok());
    w.roads_tree.emplace(std::move(roads_tree).value());
    w.hydro_tree.emplace(std::move(hydro_tree).value());
    w.tree_build_io_seconds = w.disk->stats().io_seconds - io_before;
  }
  // Preprocessing I/O (data load, bulk load) is not part of the join.
  w.disk->ResetStats();
  return w;
}

Result<JoinStats> RunJoin(Workload* w, JoinAlgorithm algo,
                          const JoinOptions& options) {
  SpatialJoiner joiner(w->disk.get(), options);
  const bool indexed = algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
  SJ_CHECK(!indexed || w->roads_tree.has_value())
      << "workload built without trees";
  CountingSink sink;
  return JoinQuery(joiner)
      .Input(w->RoadsInput(indexed))
      .Input(w->HydroInput(indexed))
      .Algorithm(algo)
      .Run(&sink);
}

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void PrintHeaderRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace sj
