// Skew sweep for the adaptive PBSM partitioner: Zipf-clustered hotspot
// workloads of increasing skew intensity, joined with PBSM under (a) the
// adaptive histogram-driven plan, (b) the paper's fixed 128x128 grid and
// (c) Patel & DeWitt's original fixed 32x32 grid. Fixed grids answer
// skew with partition overflows (external-sort fallback); the adaptive
// planner splits the hot tiles and bin-packs them, so its modeled I/O
// should stay flat as skew grows. A cross-check asserts all three
// configurations produce the identical pair count.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "io/stream.h"
#include "util/logging.h"

namespace sj {
namespace bench {
namespace {

struct SkewConfig {
  uint64_t n = 1000000;  // Records per side.
  static SkewConfig FromArgs(int argc, char** argv) {
    SkewConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--n=", 4) == 0) {
        config.n = std::strtoull(argv[i] + 4, nullptr, 10);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--n=RECORDS_PER_SIDE]\n", argv[0]);
        std::exit(0);
      }
    }
    return config;
  }
};

DatasetRef WriteRelation(Pager* pager, const std::vector<RectF>& rects) {
  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  RectF extent = RectF::Empty();
  for (const RectF& r : rects) {
    writer.Append(r);
    extent.ExtendTo(r);
  }
  auto n = writer.Finish();
  SJ_CHECK(n.ok());
  DatasetRef ref;
  ref.range = StreamRange{pager, first, n.value()};
  ref.extent = extent;
  return ref;
}

struct Mode {
  const char* name;
  bool adaptive;
  uint32_t fixed_tiles;  // Ignored when adaptive.
};

constexpr Mode kModes[] = {{"fixed32", false, 32},
                           {"fixed128", false, 128},
                           {"adaptive", true, 0}};

void Run(const SkewConfig& config) {
  const MachineModel machine = MachineModel::Machine3();
  const RectF region(0, 0, 1000, 1000);
  std::printf(
      "== PBSM skew sweep: adaptive vs fixed grids (n=%llu/side, %s) ==\n\n",
      static_cast<unsigned long long>(config.n), machine.name.c_str());
  std::printf("%-8s %-10s %10s %11s %10s %12s %10s %10s\n", "theta", "mode",
              "grid", "partitions", "overflow", "maxPart", "io(s)",
              "vs fix32");
  PrintHeaderRule(88);

  for (double theta : {0.0, 0.8, 1.2, 1.6}) {
    const auto a = ZipfClusteredRects(config.n, region, /*hotspots=*/8,
                                      theta, /*hotspot_sigma=*/3.0f,
                                      /*mean_size=*/0.02f, /*seed=*/1000);
    const auto b = ZipfClusteredRects(config.n, region, /*hotspots=*/8,
                                      theta, /*hotspot_sigma=*/3.0f,
                                      /*mean_size=*/0.02f, /*seed=*/2000);
    // A memory budget around 1/10 of the data, so p lands near the
    // paper's partition counts and the hottest Zipf tile exceeds the
    // budget severalfold — the regime where fixed grids overflow into
    // multi-run external sorts.
    JoinOptions options;
    options.memory_bytes = std::max<size_t>(
        4u << 20, (a.size() + b.size()) * sizeof(RectF) / 10);

    std::vector<JoinStats> results;
    for (const Mode& mode : kModes) {
      DiskModel disk(machine);
      auto pager_a = MakeMemoryPager(&disk, "skew.a");
      auto pager_b = MakeMemoryPager(&disk, "skew.b");
      const DatasetRef da = WriteRelation(pager_a.get(), a);
      const DatasetRef db = WriteRelation(pager_b.get(), b);
      disk.ResetStats();

      SpatialJoiner joiner(&disk, options);
      CountingSink sink;
      auto stats =
          JoinQuery(joiner)
              .Input(JoinInput::FromStream(da))
              .Input(JoinInput::FromStream(db))
              .Algorithm(JoinAlgorithm::kPBSM)
              .AdaptivePartitioning(mode.adaptive)
              .PbsmTilesPerAxis(mode.adaptive ? 128 : mode.fixed_tiles)
              .Run(&sink);
      SJ_CHECK(stats.ok()) << stats.status().ToString();
      SJ_CHECK(results.empty() ||
               results.front().output_count == stats->output_count)
          << "partitioning changed the result set";
      results.push_back(*stats);
    }
    const double fixed32_io = results.front().ObservedIoSeconds();
    for (size_t m = 0; m < results.size(); ++m) {
      const JoinStats& stats = results[m];
      char grid[32];
      std::snprintf(grid, sizeof(grid), "%ux%u", stats.pbsm_tiles_x,
                    stats.pbsm_tiles_y);
      std::printf("%-8.2f %-10s %10s %11u %10u %12s %10.2f %9.0f%%\n", theta,
                  kModes[m].name, grid, stats.partitions_total,
                  stats.partitions_overflowed,
                  HumanBytes(stats.max_partition_bytes).c_str(),
                  stats.ObservedIoSeconds(),
                  100.0 * stats.ObservedIoSeconds() / fixed32_io);
    }
  }
  std::printf(
      "\nExpected shape: fixed grids overflow as theta grows (hot tiles "
      "exceed the memory\nbudget -> external-sort fallback), adaptive "
      "splits the hot tiles and stays flat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::SkewConfig::FromArgs(argc, argv));
  return 0;
}
