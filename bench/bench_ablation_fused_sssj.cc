// Ablation: SSSJ as the paper implements it (materialize the sorted
// streams, then sweep) vs the fused variant (final merge feeds the sweep
// directly), which removes one write and one read pass per input. The
// paper's accounting (§3.1) makes the expected saving 2 of the 6
// sequential-equivalent passes.

#include <cstdio>

#include "bench_common.h"

namespace sj {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf("== SSSJ merge/sweep fusion ablation (scale %.4g) ==\n\n",
              config.scale);
  std::printf("%-10s %-8s | %10s %10s | %10s %10s | %10s\n", "Dataset",
              "machine", "reads", "writes", "plain(s)", "fused(s)",
              "speedup");
  PrintHeaderRule(82);
  for (int m : config.machines) {
    const MachineModel machine = MachineByIndex(m);
    for (const std::string& name : config.datasets) {
      const LoadedDataset& data = GetDataset(name, config.scale);
      Workload w = MakeWorkload(data, machine, /*build_trees=*/false);

      JoinOptions options;
      options.memory_bytes = 12u << 20;
      auto plain = RunJoin(&w, JoinAlgorithm::kSSSJ, options);
      SJ_CHECK(plain.ok());

      options.fuse_merge_sweep = true;
      w.disk->ResetStats();
      auto fused = RunJoin(&w, JoinAlgorithm::kSSSJ, options);
      SJ_CHECK(fused.ok());
      SJ_CHECK(plain->output_count == fused->output_count);

      const double plain_s = plain->ObservedSeconds(machine);
      const double fused_s = fused->ObservedSeconds(machine);
      std::printf("%-10s %-8d | %5llu/%4llu %5llu/%4llu | %10.2f %10.2f | %9.2fx\n",
                  name.c_str(), m,
                  static_cast<unsigned long long>(plain->disk.pages_read),
                  static_cast<unsigned long long>(fused->disk.pages_read),
                  static_cast<unsigned long long>(plain->disk.pages_written),
                  static_cast<unsigned long long>(fused->disk.pages_written),
                  plain_s, fused_s, plain_s / fused_s);
    }
  }
  std::printf(
      "\n'reads'/'writes' columns show plain/fused page counts: fusion "
      "removes one read and\none write pass per input (6 -> ~3.5 "
      "sequential-equivalent passes).\n");
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv));
  return 0;
}
