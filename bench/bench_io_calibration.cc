// I/O calibration: measures what the real storage path actually costs and
// fits the DiskModel's MachineModel constants to it, then runs one join
// per algorithm over file-backed storage and prints the modeled
// io_seconds next to the measured I/O wall (JoinStats::disk
// .io_wall_seconds) so the two accounting systems can be compared on the
// same run.
//
// Phase 1 (microbenchmark, FileBackend in a tmpdir):
//   sequential write / sequential read  ->  transfer_mb_per_s, write_factor
//   random one-page read               ->  avg_access_ms
//
// On a host whose page cache absorbs the working set the fitted
// avg_access_ms lands near zero — that is the honest measurement, and the
// point of printing the fit instead of hard-coding it.
//
// Phase 2: the TIGER ladder workload (same generator as the paper-figure
// benches) joined by each algorithm with scratch/spill on real files and
// prefetch on. The last line is a machine-readable JSON summary.
//
//   bench_io_calibration [--pages=N] [--scale=F] [--datasets=NJ]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/storage.h"
#include "util/random.h"
#include "util/timer.h"

namespace sj {
namespace bench {
namespace {

struct Calibration {
  uint64_t pages = 0;
  double seq_write_seconds = 0;
  double seq_read_seconds = 0;
  double rand_read_ms_per_page = 0;
  double rand_write_ms_per_page = 0;
  MachineModel fitted;
};

double MbPerS(uint64_t pages, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(pages) * kPageSize / 1e6 / seconds;
}

Calibration Calibrate(StorageFactory* factory, uint64_t pages) {
  Calibration c;
  c.pages = pages;
  auto backend = factory->Create("calibration");
  SJ_CHECK_OK(backend.status());

  std::vector<uint8_t> buf(kPageSize);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i);

  WallTimer timer;
  for (uint64_t p = 0; p < pages; ++p) {
    SJ_CHECK_OK((*backend)->WritePage(p, buf.data()));
  }
  c.seq_write_seconds = timer.Elapsed();

  timer.Restart();
  for (uint64_t p = 0; p < pages; ++p) {
    SJ_CHECK_OK((*backend)->ReadPage(p, buf.data()));
  }
  c.seq_read_seconds = timer.Elapsed();

  const uint64_t ops = std::min<uint64_t>(pages, 512);
  Random rng(42);
  timer.Restart();
  for (uint64_t i = 0; i < ops; ++i) {
    SJ_CHECK_OK((*backend)->ReadPage(rng.Uniform(pages), buf.data()));
  }
  c.rand_read_ms_per_page = timer.Elapsed() * 1e3 / static_cast<double>(ops);
  timer.Restart();
  for (uint64_t i = 0; i < ops; ++i) {
    SJ_CHECK_OK((*backend)->WritePage(rng.Uniform(pages), buf.data()));
  }
  c.rand_write_ms_per_page = timer.Elapsed() * 1e3 / static_cast<double>(ops);

  // Fit the model's three disk constants. The host is the machine, so no
  // CPU slowdown.
  MachineModel m;
  m.name = "Calibrated(host)";
  m.transfer_mb_per_s = std::max(1.0, MbPerS(pages, c.seq_read_seconds));
  const double transfer_ms = m.PageTransferMs(kPageSize);
  m.avg_access_ms = std::max(0.0, c.rand_read_ms_per_page - transfer_ms);
  m.write_factor =
      c.seq_read_seconds > 0
          ? std::max(1.0, c.seq_write_seconds / c.seq_read_seconds)
          : 1.0;
  m.cpu_slowdown = 1.0;
  c.fitted = m;
  return c;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void Run(const BenchConfig& config, uint64_t pages) {
  auto factory = TmpFileStorageFactory::Make();
  SJ_CHECK_OK(factory.status());
  std::shared_ptr<StorageFactory> storage = std::move(*factory);

  std::printf("== I/O calibration: modeled vs measured on %s ==\n\n",
              storage->description().c_str());
  const Calibration c = Calibrate(storage.get(), pages);
  std::printf("calibration file: %llu pages x %zu B\n",
              static_cast<unsigned long long>(c.pages), kPageSize);
  std::printf("  sequential write : %8.2f MB/s\n",
              MbPerS(c.pages, c.seq_write_seconds));
  std::printf("  sequential read  : %8.2f MB/s\n",
              MbPerS(c.pages, c.seq_read_seconds));
  std::printf("  random read      : %8.4f ms/page\n", c.rand_read_ms_per_page);
  std::printf("  random write     : %8.4f ms/page\n",
              c.rand_write_ms_per_page);
  std::printf(
      "fitted MachineModel: avg_access_ms=%.4f transfer_mb_per_s=%.1f "
      "write_factor=%.2f\n\n",
      c.fitted.avg_access_ms, c.fitted.transfer_mb_per_s,
      c.fitted.write_factor);

  // One join per algorithm on file-backed scratch with prefetch on. The
  // modeled column uses the *fitted* machine, so a perfect model (and a
  // calibration that generalizes) would put both columns within a small
  // factor of each other.
  const std::string dataset =
      config.datasets.empty() ? std::string("NJ") : config.datasets.front();
  const LoadedDataset& data = GetDataset(dataset, config.scale);
  std::printf("-- dataset %s (scale %.4g), file-backed scratch, prefetch on "
              "--\n",
              dataset.c_str(), config.scale);
  std::printf("%-6s | %12s | %12s | %10s | %10s\n", "Algo", "modeled I/O s",
              "measured s", "pages rd", "pages wr");
  PrintHeaderRule(62);

  struct JoinRow {
    JoinAlgorithm algo;
    JoinStats stats;
  };
  std::vector<JoinRow> rows;
  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    // A fresh workload per algorithm: modeled stream-detection state and
    // the measured page cache both start cold(ish) for each run.
    Workload w = MakeWorkload(data, c.fitted, /*build_trees=*/true);
    JoinOptions options = config.ScaledOptions();
    options.storage = storage;
    options.prefetch = true;
    auto stats = RunJoin(&w, algo, options);
    SJ_CHECK_OK(stats.status());
    std::printf("%-6s | %12.4f | %12.4f | %10llu | %10llu\n", ToString(algo),
                stats->ObservedIoSeconds(),
                stats->disk.io_wall_seconds,
                static_cast<unsigned long long>(stats->disk.pages_read),
                static_cast<unsigned long long>(stats->disk.pages_written));
    rows.push_back({algo, *stats});
  }
  std::printf(
      "\nReading the table: 'modeled' charges the fitted machine's "
      "access/transfer\nconstants per request; 'measured' is wall time "
      "inside real pread/pwrite calls\n(page-cache hits make it an "
      "optimistic disk).\n\n");

  // Machine-readable summary (one line).
  std::string json = "{\"calibration\":{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"pages\":%llu,\"page_bytes\":%zu,"
                "\"seq_write_mb_per_s\":%.3f,\"seq_read_mb_per_s\":%.3f,"
                "\"rand_read_ms_per_page\":%.5f,"
                "\"rand_write_ms_per_page\":%.5f,"
                "\"fitted_avg_access_ms\":%.5f,"
                "\"fitted_transfer_mb_per_s\":%.3f,"
                "\"fitted_write_factor\":%.3f}",
                static_cast<unsigned long long>(c.pages), kPageSize,
                MbPerS(c.pages, c.seq_write_seconds),
                MbPerS(c.pages, c.seq_read_seconds), c.rand_read_ms_per_page,
                c.rand_write_ms_per_page, c.fitted.avg_access_ms,
                c.fitted.transfer_mb_per_s, c.fitted.write_factor);
  json += buf;
  json += ",\"dataset\":\"" + JsonEscape(dataset) + "\",\"joins\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"algorithm\":\"" + JsonEscape(ToString(rows[i].algo)) + "\"";
    std::snprintf(buf, sizeof(buf), ",\"modeled_io_seconds\":%.6f",
                  rows[i].stats.ObservedIoSeconds());
    json += buf;
    for (const auto& kv : rows[i].stats.ToKeyValues()) {
      json += ",\"" + JsonEscape(kv.first) + "\":\"" + JsonEscape(kv.second) +
              "\"";
    }
    json += "}";
  }
  json += "]}";
  std::printf("JSON %s\n", json.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace sj

int main(int argc, char** argv) {
  uint64_t pages = 2048;  // 16 MB calibration file.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pages=", 0) == 0) {
      pages = std::strtoull(arg.c_str() + 8, nullptr, 0);
      if (pages == 0) pages = 1;
    }
  }
  sj::bench::Run(sj::bench::BenchConfig::FromArgs(argc, argv), pages);
  return 0;
}
