#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace sj {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("short read");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "short read");
  EXPECT_EQ(s.ToString(), "IoError: short read");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::OutOfRange("past the end"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SJ_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(Result, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Result, ReturnIfErrorPropagates) {
  auto f = [](bool fail) -> Status {
    SJ_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
  EXPECT_EQ(f(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sj
