// Randomized differential harness for the operator pipeline: seeded
// random datasets, windows, grids, and query points, with every
// configuration — 1/2/8 threads, tight and default memory budgets, both
// storage backends — cross-checked against brute-force oracles for
// window-scan, aggregate-by-cell, and top-k, standalone and composed
// over a spatial join. Count aggregation and the top-k total order are
// arrival-order independent, so every configuration must produce the
// *same* rows, not merely equivalent ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "io/storage.h"
#include "op/operators.h"
#include "op/row.h"
#include "test_util.h"
#include "util/random.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::TestDisk;

// ---------------------------------------------------------------------------
// Oracles (shared arithmetic with tests/pipeline_test.cc)
// ---------------------------------------------------------------------------

uint32_t CellOf(float v, float lo, float w, uint32_t n) {
  const float rel = (v - lo) / w;
  if (!(rel > 0.0f)) return 0;
  return static_cast<uint32_t>(std::min(rel, static_cast<float>(n - 1)));
}

RectF CellRectOracle(const RectF& extent, uint32_t nx, uint32_t ny,
                     uint32_t ix, uint32_t iy) {
  const float cw = (extent.xhi - extent.xlo) / static_cast<float>(nx);
  const float ch = (extent.yhi - extent.ylo) / static_cast<float>(ny);
  const float xlo = extent.xlo + static_cast<float>(ix) * cw;
  const float ylo = extent.ylo + static_cast<float>(iy) * ch;
  const float xhi =
      ix + 1 == nx ? extent.xhi : extent.xlo + static_cast<float>(ix + 1) * cw;
  const float yhi =
      iy + 1 == ny ? extent.yhi : extent.ylo + static_cast<float>(iy + 1) * ch;
  return RectF(xlo, ylo, xhi, yhi);
}

std::vector<PipeRow> AggregateCountOracle(const std::vector<PipeRow>& rows,
                                          const RectF& extent, uint32_t nx,
                                          uint32_t ny) {
  const float cw = (extent.xhi - extent.xlo) / static_cast<float>(nx);
  const float ch = (extent.yhi - extent.ylo) / static_cast<float>(ny);
  std::map<uint64_t, double> cells;
  for (const PipeRow& row : rows) {
    if (!row.rect.Valid() || !row.rect.Intersects(extent)) continue;
    const uint32_t x0 = CellOf(row.rect.xlo, extent.xlo, cw, nx);
    const uint32_t x1 = CellOf(row.rect.xhi, extent.xlo, cw, nx);
    const uint32_t y0 = CellOf(row.rect.ylo, extent.ylo, ch, ny);
    const uint32_t y1 = CellOf(row.rect.yhi, extent.ylo, ch, ny);
    for (uint32_t iy = y0; iy <= y1; ++iy) {
      for (uint32_t ix = x0; ix <= x1; ++ix) {
        cells[uint64_t{iy} * nx + ix] += 1.0;
      }
    }
  }
  std::vector<PipeRow> out;
  for (const auto& [cell, v] : cells) {
    PipeRow row;
    row.rect = CellRectOracle(extent, nx, ny,
                              static_cast<uint32_t>(cell % nx),
                              static_cast<uint32_t>(cell / nx));
    row.ids.push_back(static_cast<ObjectId>(cell));
    row.value = v;
    out.push_back(std::move(row));
  }
  return out;
}

struct TopKLess {
  float qx, qy;
  bool operator()(const PipeRow& a, const PipeRow& b) const {
    const double da = TopKByDistanceOp::DistanceTo(a.rect, qx, qy);
    const double db = TopKByDistanceOp::DistanceTo(b.rect, qx, qy);
    if (da != db) return da < db;
    if (a.ids != b.ids) return a.ids < b.ids;
    if (a.rect.xlo != b.rect.xlo) return a.rect.xlo < b.rect.xlo;
    if (a.rect.ylo != b.rect.ylo) return a.rect.ylo < b.rect.ylo;
    if (a.rect.xhi != b.rect.xhi) return a.rect.xhi < b.rect.xhi;
    if (a.rect.yhi != b.rect.yhi) return a.rect.yhi < b.rect.yhi;
    return a.value < b.value;
  }
};

std::vector<PipeRow> TopKOracle(std::vector<PipeRow> rows, size_t k, float qx,
                                float qy) {
  std::sort(rows.begin(), rows.end(), TopKLess{qx, qy});
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<PipeRow> SortedByIds(std::vector<PipeRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const PipeRow& a, const PipeRow& b) { return a.ids < b.ids; });
  return rows;
}

// ---------------------------------------------------------------------------
// One randomized trial
// ---------------------------------------------------------------------------

/// Every execution configuration the harness sweeps. A tight budget must
/// change spill behaviour only, never results; threads and backends must
/// change nothing observable but wall time.
struct Config {
  uint32_t threads;
  size_t memory_bytes;
  bool file_backend;

  std::string Name() const {
    return "threads=" + std::to_string(threads) +
           " budget=" + std::to_string(memory_bytes >> 10) + "KiB" +
           (file_backend ? " file" : " memory");
  }
};

std::vector<Config> Sweep() {
  std::vector<Config> configs;
  for (uint32_t threads : {1u, 2u, 8u}) {
    for (size_t budget : {size_t{256} << 10, size_t{24} << 20}) {
      for (bool file_backend : {false, true}) {
        configs.push_back(Config{threads, budget, file_backend});
      }
    }
  }
  return configs;
}

struct Trial {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<RectF> a, b;
  DatasetRef da, db;
  std::optional<SpatialJoiner> joiner;
  RectF window;
  uint32_t nx, ny;
  size_t k;
  float qx, qy;

  explicit Trial(uint64_t seed) {
    Random rng(seed);
    const RectF region(0, 0, 100, 100);
    const uint64_t na = 100 + rng.Uniform(400);
    const uint64_t nb = 100 + rng.Uniform(400);
    a = UniformRects(na, region, 1.0f + static_cast<float>(rng.UniformDouble(0, 3)),
                     seed * 7 + 1);
    b = UniformRects(nb, region, 1.0f + static_cast<float>(rng.UniformDouble(0, 3)),
                     seed * 7 + 2);
    da = MakeDataset(&td, a, "a", &keep);
    db = MakeDataset(&td, b, "b", &keep);
    joiner.emplace(&td.disk, JoinOptions());

    const float wx = static_cast<float>(rng.UniformDouble(0, 60));
    const float wy = static_cast<float>(rng.UniformDouble(0, 60));
    window = RectF(wx, wy, wx + 20 + static_cast<float>(rng.UniformDouble(0, 40)),
                   wy + 20 + static_cast<float>(rng.UniformDouble(0, 40)));
    nx = 4 + static_cast<uint32_t>(rng.Uniform(28));
    ny = 4 + static_cast<uint32_t>(rng.Uniform(28));
    k = 1 + static_cast<size_t>(rng.Uniform(20));
    qx = static_cast<float>(rng.UniformDouble(0, 100));
    qy = static_cast<float>(rng.UniformDouble(0, 100));
  }

  /// Applies one sweep configuration to a query under construction.
  template <typename Query>
  void Apply(Query& q, const Config& cfg,
             const std::shared_ptr<StorageFactory>& file_factory) const {
    q.Threads(cfg.threads).MemoryBytes(cfg.memory_bytes);
    if (cfg.file_backend) q.Storage(file_factory);
  }
};

std::shared_ptr<StorageFactory> FileFactory() {
  auto factory = TmpFileStorageFactory::Make();
  SJ_CHECK_OK(factory.status());
  return std::shared_ptr<StorageFactory>(std::move(*factory));
}

// ---------------------------------------------------------------------------
// Window scans: every configuration equals the brute-force selection.
// ---------------------------------------------------------------------------

TEST(PipelineDifferential, WindowScanAcrossConfigurations) {
  auto file_factory = FileFactory();
  for (uint64_t seed : {1u, 2u, 3u}) {
    Trial t(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    std::vector<PipeRow> expected;
    for (const RectF& r : t.a) {
      if (!r.Intersects(t.window)) continue;
      PipeRow row;
      row.rect = r;
      row.rect.id = 0;
      row.ids.push_back(r.id);
      expected.push_back(std::move(row));
    }
    expected = SortedByIds(std::move(expected));

    for (const Config& cfg : Sweep()) {
      SCOPED_TRACE(cfg.Name());
      CollectingRowSink sink;
      PipelineQuery q(*t.joiner);
      q.Input(JoinInput::FromStream(t.da)).Window(t.window);
      t.Apply(q, cfg, file_factory);
      auto stats = q.Run(&sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(SortedByIds(sink.rows()), expected);
      EXPECT_EQ(stats->output_count, expected.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Aggregate-by-cell over a join: identical rows in every configuration.
// ---------------------------------------------------------------------------

TEST(PipelineDifferential, JoinAggregateAcrossConfigurations) {
  auto file_factory = FileFactory();
  for (uint64_t seed : {4u, 5u, 6u}) {
    Trial t(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Oracle: windowed inputs -> brute-force pairs -> contact boxes ->
    // count aggregation (order-independent).
    std::vector<RectF> wa, wb;
    for (const RectF& r : t.a) {
      if (r.Intersects(t.window)) wa.push_back(r);
    }
    for (const RectF& r : t.b) {
      if (r.Intersects(t.window)) wb.push_back(r);
    }
    std::map<ObjectId, RectF> am, bm;
    for (const RectF& r : wa) am[r.id] = r;
    for (const RectF& r : wb) bm[r.id] = r;
    std::vector<PipeRow> join_rows;
    for (const IdPair& p : BruteForcePairs(wa, wb)) {
      PipeRow row;
      row.rect = JoinRowAdapter::ContactBox({am.at(p.a), bm.at(p.b)});
      row.ids = {p.a, p.b};
      join_rows.push_back(std::move(row));
    }
    const std::vector<PipeRow> expected =
        AggregateCountOracle(join_rows, t.window, t.nx, t.ny);

    std::optional<std::vector<PipeRow>> reference;
    for (const Config& cfg : Sweep()) {
      SCOPED_TRACE(cfg.Name());
      CollectingRowSink sink;
      PipelineQuery q(*t.joiner);
      q.Input(JoinInput::FromStream(t.da))
          .Input(JoinInput::FromStream(t.db))
          .Window(t.window)
          .AggregateByCell(AggregateMode::kCount, t.nx, t.ny, t.window);
      t.Apply(q, cfg, file_factory);
      auto stats = q.Run(&sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();

      // Cell order is canonical, so rows match the oracle *exactly* and
      // every configuration produces the same vector.
      EXPECT_EQ(sink.rows(), expected);
      if (!reference.has_value()) {
        reference = sink.rows();
      } else {
        EXPECT_EQ(sink.rows(), *reference);
      }
      // Default-budget runs stay within their arbiter budget (tight
      // budgets may be floored above the request by design).
      if (cfg.memory_bytes >= (24u << 20)) {
        EXPECT_LE(stats->peak_memory_bytes, cfg.memory_bytes);
      }
      EXPECT_GT(stats->peak_memory_bytes, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Top-k over a join: the total order makes every configuration exact.
// ---------------------------------------------------------------------------

TEST(PipelineDifferential, JoinTopKAcrossConfigurations) {
  auto file_factory = FileFactory();
  for (uint64_t seed : {7u, 8u}) {
    Trial t(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    std::map<ObjectId, RectF> am, bm;
    for (const RectF& r : t.a) am[r.id] = r;
    for (const RectF& r : t.b) bm[r.id] = r;
    std::vector<PipeRow> join_rows;
    for (const IdPair& p : BruteForcePairs(t.a, t.b)) {
      PipeRow row;
      row.rect = JoinRowAdapter::ContactBox({am.at(p.a), bm.at(p.b)});
      row.ids = {p.a, p.b};
      join_rows.push_back(std::move(row));
    }
    const std::vector<PipeRow> expected =
        TopKOracle(join_rows, t.k, t.qx, t.qy);

    for (const Config& cfg : Sweep()) {
      SCOPED_TRACE(cfg.Name());
      CollectingRowSink sink;
      PipelineQuery q(*t.joiner);
      q.Input(JoinInput::FromStream(t.da))
          .Input(JoinInput::FromStream(t.db))
          .TopKByDistance(t.k, t.qx, t.qy);
      t.Apply(q, cfg, file_factory);
      auto stats = q.Run(&sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(sink.rows(), expected);
    }
  }
}

// ---------------------------------------------------------------------------
// The full compose, one seed per configuration axis extreme: window ->
// join -> filter -> aggregate -> top-k.
// ---------------------------------------------------------------------------

TEST(PipelineDifferential, FullComposeAcrossConfigurations) {
  auto file_factory = FileFactory();
  Trial t(9);
  auto pred = [](const PipeRow& r) { return r.rect.Area() < 8.0; };

  std::vector<RectF> wa, wb;
  for (const RectF& r : t.a) {
    if (r.Intersects(t.window)) wa.push_back(r);
  }
  for (const RectF& r : t.b) {
    if (r.Intersects(t.window)) wb.push_back(r);
  }
  std::map<ObjectId, RectF> am, bm;
  for (const RectF& r : wa) am[r.id] = r;
  for (const RectF& r : wb) bm[r.id] = r;
  std::vector<PipeRow> join_rows;
  for (const IdPair& p : BruteForcePairs(wa, wb)) {
    PipeRow row;
    row.rect = JoinRowAdapter::ContactBox({am.at(p.a), bm.at(p.b)});
    row.ids = {p.a, p.b};
    if (pred(row)) join_rows.push_back(std::move(row));
  }
  const std::vector<PipeRow> expected = TopKOracle(
      AggregateCountOracle(join_rows, t.window, t.nx, t.ny), t.k, t.qx, t.qy);

  for (const Config& cfg : Sweep()) {
    SCOPED_TRACE(cfg.Name());
    CollectingRowSink sink;
    PipelineQuery q(*t.joiner);
    q.Input(JoinInput::FromStream(t.da))
        .Input(JoinInput::FromStream(t.db))
        .Window(t.window)
        .Filter(pred, "small")
        .AggregateByCell(AggregateMode::kCount, t.nx, t.ny, t.window)
        .TopKByDistance(t.k, t.qx, t.qy);
    t.Apply(q, cfg, file_factory);
    auto stats = q.Run(&sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(sink.rows(), expected);
  }
}

}  // namespace
}  // namespace sj
