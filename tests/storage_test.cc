#include "io/storage.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "io/pager.h"

namespace sj {
namespace {

void FillPattern(uint8_t* buf, uint8_t seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<uint8_t>(seed + i * 31);
  }
}

template <typename Backend>
void RoundTrip(Backend* backend) {
  uint8_t w[kPageSize], r[kPageSize];
  FillPattern(w, 7);
  ASSERT_TRUE(backend->WritePage(3, w).ok());
  ASSERT_TRUE(backend->ReadPage(3, r).ok());
  EXPECT_EQ(std::memcmp(w, r, kPageSize), 0);
  EXPECT_GE(backend->PageCount(), 4u);
}

TEST(MemoryBackend, RoundTrip) {
  MemoryBackend backend;
  RoundTrip(&backend);
}

TEST(MemoryBackend, UnwrittenPagesReadAsZero) {
  MemoryBackend backend;
  uint8_t w[kPageSize];
  FillPattern(w, 1);
  ASSERT_TRUE(backend.WritePage(5, w).ok());
  uint8_t r[kPageSize];
  std::memset(r, 0xAA, kPageSize);
  ASSERT_TRUE(backend.ReadPage(2, r).ok());  // Hole below the write.
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r[i], 0);
  ASSERT_TRUE(backend.ReadPage(100, r).ok());  // Past the end.
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r[i], 0);
}

TEST(FileBackend, RoundTripAndReopen) {
  const std::string path = ::testing::TempDir() + "/usj_storage_test.bin";
  std::filesystem::remove(path);
  uint8_t w[kPageSize];
  FillPattern(w, 3);
  {
    std::unique_ptr<FileBackend> backend;
    ASSERT_TRUE(FileBackend::Open(path, &backend).ok());
    RoundTrip(backend.get());
    ASSERT_TRUE(backend->WritePage(0, w).ok());
  }
  // Reopen: data persists, page count derived from the file size.
  {
    std::unique_ptr<FileBackend> backend;
    ASSERT_TRUE(FileBackend::Open(path, &backend).ok());
    EXPECT_EQ(backend->PageCount(), 4u);
    uint8_t r[kPageSize];
    ASSERT_TRUE(backend->ReadPage(0, r).ok());
    EXPECT_EQ(std::memcmp(w, r, kPageSize), 0);
  }
  std::filesystem::remove(path);
}

TEST(FileBackend, OpenFailsOnBadPath) {
  std::unique_ptr<FileBackend> backend;
  const Status s = FileBackend::Open("/nonexistent-dir/usj.bin", &backend);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(Pager, AllocateIsContiguous) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  EXPECT_EQ(pager.Allocate(3), 0u);
  EXPECT_EQ(pager.Allocate(2), 3u);
  EXPECT_EQ(pager.page_count(), 5u);
}

TEST(Pager, ReadWriteRunsChargeOneRequest) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  std::vector<uint8_t> buf(4 * kPageSize);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i);
  const PageId first = pager.Allocate(4);
  ASSERT_TRUE(pager.WriteRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().write_requests, 1u);
  std::vector<uint8_t> rd(4 * kPageSize);
  ASSERT_TRUE(pager.ReadRun(first, 4, rd.data()).ok());
  EXPECT_EQ(disk.stats().read_requests, 1u);
  EXPECT_EQ(buf, rd);
}

TEST(Pager, WritePageExtendsAllocation) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  uint8_t page[kPageSize] = {1};
  ASSERT_TRUE(pager.WritePage(9, page).ok());
  EXPECT_EQ(pager.page_count(), 10u);
}

}  // namespace
}  // namespace sj
