#include "io/storage.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "io/pager.h"
#include "io/stream.h"

namespace sj {
namespace {

void FillPattern(uint8_t* buf, uint8_t seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<uint8_t>(seed + i * 31);
  }
}

template <typename Backend>
void RoundTrip(Backend* backend) {
  uint8_t w[kPageSize], r[kPageSize];
  FillPattern(w, 7);
  ASSERT_TRUE(backend->WritePage(3, w).ok());
  ASSERT_TRUE(backend->ReadPage(3, r).ok());
  EXPECT_EQ(std::memcmp(w, r, kPageSize), 0);
  EXPECT_GE(backend->PageCount(), 4u);
}

TEST(MemoryBackend, RoundTrip) {
  MemoryBackend backend;
  RoundTrip(&backend);
}

TEST(MemoryBackend, UnwrittenPagesReadAsZero) {
  MemoryBackend backend;
  uint8_t w[kPageSize];
  FillPattern(w, 1);
  ASSERT_TRUE(backend.WritePage(5, w).ok());
  uint8_t r[kPageSize];
  std::memset(r, 0xAA, kPageSize);
  ASSERT_TRUE(backend.ReadPage(2, r).ok());  // Hole below the write.
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r[i], 0);
  ASSERT_TRUE(backend.ReadPage(100, r).ok());  // Past the end.
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r[i], 0);
}

TEST(FileBackend, RoundTripAndReopen) {
  const std::string path = ::testing::TempDir() + "/usj_storage_test.bin";
  std::filesystem::remove(path);
  uint8_t w[kPageSize];
  FillPattern(w, 3);
  {
    std::unique_ptr<FileBackend> backend;
    ASSERT_TRUE(FileBackend::Open(path, &backend).ok());
    RoundTrip(backend.get());
    ASSERT_TRUE(backend->WritePage(0, w).ok());
  }
  // Reopen: data persists, page count derived from the file size.
  {
    std::unique_ptr<FileBackend> backend;
    ASSERT_TRUE(FileBackend::Open(path, &backend).ok());
    EXPECT_EQ(backend->PageCount(), 4u);
    uint8_t r[kPageSize];
    ASSERT_TRUE(backend->ReadPage(0, r).ok());
    EXPECT_EQ(std::memcmp(w, r, kPageSize), 0);
  }
  std::filesystem::remove(path);
}

TEST(FileBackend, OpenFailsOnBadPath) {
  std::unique_ptr<FileBackend> backend;
  const Status s = FileBackend::Open("/nonexistent-dir/usj.bin", &backend);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(Pager, AllocateIsContiguous) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  EXPECT_EQ(pager.Allocate(3), 0u);
  EXPECT_EQ(pager.Allocate(2), 3u);
  EXPECT_EQ(pager.page_count(), 5u);
}

TEST(Pager, ReadWriteRunsChargeOneRequest) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  std::vector<uint8_t> buf(4 * kPageSize);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i);
  const PageId first = pager.Allocate(4);
  ASSERT_TRUE(pager.WriteRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().write_requests, 1u);
  std::vector<uint8_t> rd(4 * kPageSize);
  ASSERT_TRUE(pager.ReadRun(first, 4, rd.data()).ok());
  EXPECT_EQ(disk.stats().read_requests, 1u);
  EXPECT_EQ(buf, rd);
}

TEST(Pager, WritePageExtendsAllocation) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  uint8_t page[kPageSize] = {1};
  ASSERT_TRUE(pager.WritePage(9, page).ok());
  EXPECT_EQ(pager.page_count(), 10u);
}

TEST(Pager, AccumulatesIoWallSeconds) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  std::vector<uint8_t> buf(8 * kPageSize, 0x5A);
  const PageId first = pager.Allocate(8);
  ASSERT_TRUE(pager.WriteRun(first, 8, buf.data()).ok());
  ASSERT_TRUE(pager.ReadRun(first, 8, buf.data()).ok());
  // Wall time of the actual backend transfer, distinct from the modeled
  // io_seconds (which simulate a much slower 1999 disk).
  EXPECT_GT(disk.stats().io_wall_seconds, 0.0);
  EXPECT_LT(disk.stats().io_wall_seconds, disk.stats().io_seconds);
}

// --- io_internal retry loops (fault injection via pread/pwrite-shaped
// lambdas: count sequences a real kernel could produce) -----------------

TEST(ReadFull, RetriesEintrAndAccumulatesShortCounts) {
  const size_t len = 1000;
  std::vector<uint8_t> src(len);
  for (size_t i = 0; i < len; ++i) src[i] = static_cast<uint8_t>(i * 13);
  int calls = 0;
  auto pread_fn = [&](void* buf, size_t l, off_t offset) -> ssize_t {
    ++calls;
    if (calls == 1) {
      errno = EINTR;
      return -1;
    }
    // Dribble out 100 bytes per call, from the right source offset.
    const size_t n = std::min<size_t>(100, l);
    std::memcpy(buf, src.data() + offset, n);
    return static_cast<ssize_t>(n);
  };
  std::vector<uint8_t> dst(len, 0);
  Result<size_t> got = io_internal::ReadFull(pread_fn, dst.data(), len, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), len);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(calls, 11);  // 1 EINTR + 10 x 100 bytes.
}

TEST(ReadFull, StopsAtEofAndReportsBytesRead) {
  auto pread_fn = [](void* buf, size_t l, off_t offset) -> ssize_t {
    // 300-byte "file": EOF afterwards.
    if (offset >= 300) return 0;
    const size_t n = std::min<size_t>(l, static_cast<size_t>(300 - offset));
    std::memset(buf, 0x42, n);
    return static_cast<ssize_t>(n);
  };
  uint8_t dst[512];
  Result<size_t> got = io_internal::ReadFull(pread_fn, dst, sizeof(dst), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 300u);  // Caller judges whether EOF is legitimate.
}

TEST(ReadFull, SurfacesHardErrorsAsIoError) {
  auto pread_fn = [](void*, size_t, off_t) -> ssize_t {
    errno = EBADF;
    return -1;
  };
  uint8_t dst[64];
  Result<size_t> got = io_internal::ReadFull(pread_fn, dst, sizeof(dst), 0);
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
}

TEST(WriteFull, RetriesEintrAndShortWrites) {
  std::vector<uint8_t> sink(1000, 0);
  int calls = 0;
  auto pwrite_fn = [&](const void* buf, size_t l, off_t offset) -> ssize_t {
    ++calls;
    if (calls % 3 == 0) {
      errno = EINTR;
      return -1;
    }
    const size_t n = std::min<size_t>(64, l);
    std::memcpy(sink.data() + offset, buf, n);
    return static_cast<ssize_t>(n);
  };
  std::vector<uint8_t> src(1000);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(io_internal::WriteFull(pwrite_fn, src.data(), src.size(), 0).ok());
  EXPECT_EQ(sink, src);
}

TEST(WriteFull, ZeroProgressIsAnError) {
  auto pwrite_fn = [](const void*, size_t, off_t) -> ssize_t { return 0; };
  uint8_t src[64] = {};
  const Status s = io_internal::WriteFull(pwrite_fn, src, sizeof(src), 0);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// --- Storage factories -------------------------------------------------

TEST(TmpFileStorageFactory, CreatesWorkingBackendsAndCleansUp) {
  std::string dir;
  {
    Result<std::unique_ptr<TmpFileStorageFactory>> factory =
        TmpFileStorageFactory::Make();
    ASSERT_TRUE(factory.ok()) << factory.status().ToString();
    dir = (*factory)->dir();
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    EXPECT_EQ((*factory)->description(), "file:" + dir);

    Result<std::unique_ptr<StorageBackend>> backend =
        (*factory)->Create("pbsm.a.0");
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    RoundTrip(backend->get());
    // Files are unlinked at creation (the fd keeps them alive), so the
    // directory stays empty and nothing can leak on abnormal exit.
    EXPECT_TRUE(std::filesystem::is_empty(dir));

    // Names repeat across shards; the sequence number keeps paths unique.
    Result<std::unique_ptr<StorageBackend>> again =
        (*factory)->Create("pbsm.a.0");
    ASSERT_TRUE(again.ok());
    uint8_t page[kPageSize] = {9};
    ASSERT_TRUE((*again)->WritePage(0, page).ok());
    EXPECT_EQ((*backend)->PageCount(), 4u);  // Distinct files.
  }
  EXPECT_FALSE(std::filesystem::exists(dir));  // Dtor removed the dir.
}

TEST(MakePager, NullFactoryMeansMemory) {
  DiskModel disk(MachineModel::Machine3());
  Result<std::unique_ptr<Pager>> pager = MakePager(nullptr, &disk, "scratch");
  ASSERT_TRUE(pager.ok());
  uint8_t page[kPageSize] = {1};
  ASSERT_TRUE((*pager)->WritePage(0, page).ok());
}

// --- StreamWriter error paths ------------------------------------------

/// Backend whose writes start failing on demand — drives the stream
/// writer's sticky-error and abandon paths.
class FailingBackend final : public StorageBackend {
 public:
  Status ReadPage(uint64_t page, void* buf) override {
    return inner_.ReadPage(page, buf);
  }
  Status WritePage(uint64_t page, const void* buf) override {
    if (fail_writes) return Status::IoError("injected write failure");
    return inner_.WritePage(page, buf);
  }
  uint64_t PageCount() const override { return inner_.PageCount(); }

  bool fail_writes = false;

 private:
  MemoryBackend inner_;
};

TEST(StreamWriter, FinishSurfacesDeferredFlushError) {
  DiskModel disk(MachineModel::Machine3());
  auto backend = std::make_unique<FailingBackend>();
  FailingBackend* failer = backend.get();
  Pager pager(std::move(backend), &disk, "p");
  StreamWriter<uint64_t> writer(&pager, /*block_pages=*/1);
  failer->fail_writes = true;
  // Fill more than one block so a flush happens (and fails) mid-append;
  // Append itself stays void — the error is sticky until Finish.
  const uint64_t per_block = StreamWriter<uint64_t>::kRecordsPerPage;
  for (uint64_t i = 0; i < per_block + 5; ++i) writer.Append(i);
  EXPECT_FALSE(writer.status().ok());
  Result<uint64_t> n = writer.Finish();
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
}

TEST(StreamWriter, AbandonAllowsDestructionWithBufferedRecords) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "p");
  {
    StreamWriter<uint64_t> writer(&pager);
    writer.Append(1);
    writer.Append(2);
    writer.Abandon();  // Error-path unwind: no Finish, no abort.
  }
  // Nothing was flushed for the abandoned block.
  EXPECT_EQ(disk.stats().pages_written, 0u);
}

}  // namespace
}  // namespace sj
