// Regression pins for SpatialJoiner::Plan: algorithm choice,
// touched-fraction estimation (extent-only vs. histogram-refined),
// break-even behavior, and the refinement I/O term. Canonical input
// shapes so a cost-model change that flips a decision fails loudly here
// rather than silently shifting every bench.

#include <gtest/gtest.h>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "refine/feature_store.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

/// A stream-side JoinInput that exists only for planning: Plan() never
/// touches the data, just count/extent.
JoinInput PlanOnlyStream(uint64_t count, const RectF& extent) {
  DatasetRef ref;
  ref.range = StreamRange{nullptr, 0, count};
  ref.extent = extent;
  return JoinInput::FromStream(ref);
}

struct TreeFixture {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<RectF> data;
  std::unique_ptr<Pager> tree_pager, scratch;
  std::optional<RTree> tree;

  explicit TreeFixture(uint64_t n = 4000) {
    data = UniformRects(n, RectF(0, 0, 100, 100), 0.5f, /*seed=*/77);
    const DatasetRef ref = MakeDataset(&td, data, "tree.data", &keep);
    tree_pager = td.NewPager("tree");
    scratch = td.NewPager("scratch");
    auto built = RTree::BulkLoadHilbert(tree_pager.get(), ref.range,
                                        scratch.get(), RTreeParams(),
                                        1 << 22);
    SJ_CHECK_OK(built.status());
    tree.emplace(std::move(*built));
  }
};

TEST(Planner, StreamStreamAlwaysSSSJ) {
  TestDisk td;
  SpatialJoiner joiner(&td.disk, JoinOptions());
  const JoinInput a = PlanOnlyStream(100000, RectF(0, 0, 100, 100));
  const JoinInput b = PlanOnlyStream(50000, RectF(0, 0, 100, 100));
  const PlanDecision d = joiner.Plan(a, b);
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kSSSJ);
  EXPECT_EQ(d.index_cost_seconds, 0.0);
  EXPECT_EQ(d.refine_cost_seconds, 0.0);
  // Stream cost is the cost model's streaming estimate plus the priced
  // sort CPU (comparisons of forming and merging runs).
  const uint64_t pages = a.pages() + b.pages();
  EXPECT_GT(d.sort_cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.stream_cost_seconds, joiner.cost_model().SSSJSeconds(
                                              pages) + d.sort_cpu_seconds);
}

TEST(Planner, LocalizedJoinUsesTheIndex) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  // The stream covers ~1% of the indexed extent: far below break-even.
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 10, 10));
  const PlanDecision d = joiner.Plan(a, b);
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kPQ);
  EXPECT_LT(d.touched_fraction,
            joiner.cost_model().IndexBreakEvenFraction());
  EXPECT_NEAR(d.touched_fraction, 0.01, 0.005);
  EXPECT_LT(d.index_cost_seconds, d.stream_cost_seconds);
}

TEST(Planner, FullOverlapIgnoresTheIndex) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 100, 100));
  const PlanDecision d = joiner.Plan(a, b);
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kSSSJ);
  EXPECT_GT(d.touched_fraction, 0.9);
  EXPECT_GE(d.index_cost_seconds, d.stream_cost_seconds);
}

TEST(Planner, TouchedFractionTracksExtentOverlap) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  // Half-extent stream: the extent-only estimate is the overlap area
  // ratio of the indexed side.
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 50, 100));
  const PlanDecision d = joiner.Plan(a, b);
  EXPECT_NEAR(d.touched_fraction, 0.5, 0.05);
}

TEST(Planner, TightBudgetShiftsCrossoverTowardTheIndex) {
  // The cost model prices the streaming plan at its *granted* sort
  // memory: a touched fraction just above break-even streams under the
  // comfortable default budget, but a tight budget adds external-sort
  // merge passes to the streaming side and flips the same join to the
  // index plan.
  TreeFixture f(40000);
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  // A small stream against a large tree: the streaming plan's cost is
  // dominated by flattening and sorting the indexed side. The 25 %
  // extent overlap sits just above the comfortable break-even fraction,
  // inside the band the tight budget's extra merge passes flip.
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 25, 100));

  const PlanDecision comfortable = joiner.Plan(a, b);
  EXPECT_EQ(comfortable.algorithm, JoinAlgorithm::kSSSJ);
  EXPECT_GT(comfortable.touched_fraction,
            joiner.cost_model().IndexBreakEvenFraction());

  JoinOptions tight;
  tight.memory_bytes = kMinMemoryBytes;
  const PlanDecision constrained =
      joiner.Plan(a, b, nullptr, nullptr, tight);
  EXPECT_EQ(constrained.algorithm, JoinAlgorithm::kPQ)
      << constrained.Describe();
  EXPECT_GT(constrained.stream_cost_seconds,
            comfortable.stream_cost_seconds);

  // Both decisions carry the chosen algorithm's grant breakdown.
  EXPECT_EQ(comfortable.memory.GrantFor(grants::kSortRuns),
            JoinOptions().memory_bytes / 2);
  EXPECT_GT(constrained.memory.GrantFor(grants::kPqQueue), 0u);
}

TEST(Planner, HistogramsRefineTheExtentOnlyEstimate) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  // The other input's *extent* spans everything, but its *mass* sits in
  // one corner — the localized-join case §6.3's histograms exist for.
  const auto corner = UniformRects(2000, RectF(0, 0, 10, 10), 0.5f, 78);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 100, 100));

  const PlanDecision extent_only = joiner.Plan(a, b);
  EXPECT_EQ(extent_only.algorithm, JoinAlgorithm::kSSSJ);
  EXPECT_GT(extent_only.touched_fraction, 0.9);

  GridHistogram hist_a(RectF(0, 0, 100, 100), 32, 32);
  for (const RectF& r : f.data) hist_a.Add(r);
  GridHistogram hist_b(RectF(0, 0, 100, 100), 32, 32);
  for (const RectF& r : corner) hist_b.Add(r);
  const PlanDecision refined = joiner.Plan(a, b, &hist_a, &hist_b);
  // The histogram exposes the localization: a small touched fraction and
  // with it the indexed plan.
  EXPECT_LT(refined.touched_fraction, 0.1);
  EXPECT_EQ(refined.algorithm, JoinAlgorithm::kPQ);
  EXPECT_LT(refined.touched_fraction, extent_only.touched_fraction);
}

TEST(Planner, RefineTermAddedToBothPlansWithoutFlippingThem) {
  TreeFixture f;
  // Geometry stores so the refinement term applies.
  auto geom_a_pager = f.td.NewPager("geom.a");
  auto geom_b_pager = f.td.NewPager("geom.b");
  const auto b_data = UniformRects(2000, RectF(0, 0, 10, 10), 0.5f, 79);
  auto store_a = FeatureStore::Build(geom_a_pager.get(),
                                     SegmentsForRects(f.data), "a");
  auto store_b = FeatureStore::Build(geom_b_pager.get(),
                                     SegmentsForRects(b_data), "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());

  JoinInput a = JoinInput::FromRTree(&*f.tree);
  JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 10, 10));
  a.WithFeatures(&*store_a);
  b.WithFeatures(&*store_b);

  SpatialJoiner plain(&f.td.disk, JoinOptions());
  const PlanDecision base = plain.Plan(a, b);
  EXPECT_EQ(base.refine_cost_seconds, 0.0);

  JoinOptions options;
  options.refine = true;
  SpatialJoiner refining(&f.td.disk, options);
  const PlanDecision with_refine = refining.Plan(a, b);
  EXPECT_GT(with_refine.refine_cost_seconds, 0.0);
  // The term is the same for every filter algorithm, so the choice and
  // the cost *difference* are unchanged; both totals grow by the term.
  EXPECT_EQ(with_refine.algorithm, base.algorithm);
  EXPECT_NEAR(with_refine.stream_cost_seconds,
              base.stream_cost_seconds + with_refine.refine_cost_seconds,
              1e-12);
  EXPECT_NEAR(with_refine.index_cost_seconds,
              base.index_cost_seconds + with_refine.refine_cost_seconds,
              1e-12);
}

TEST(Planner, DisjointExtentsTouchNothing) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(200, 200, 300, 300));
  const PlanDecision d = joiner.Plan(a, b);
  EXPECT_EQ(d.touched_fraction, 0.0);
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kPQ);
}

// ---------------------------------------------------------------------------
// The planner through the query API: Explain compiles the query and
// returns the same decision Plan computes, plus the forced-algorithm and
// per-query-refine behaviors only the query layer can express.
// ---------------------------------------------------------------------------

TEST(PlannerThroughJoinQuery, ExplainMatchesPlan) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 10, 10));
  const PlanDecision direct = joiner.Plan(a, b);

  auto explained = JoinQuery(joiner).Input(a).Input(b).Explain();
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_EQ(explained->algorithm, direct.algorithm);
  EXPECT_DOUBLE_EQ(explained->touched_fraction, direct.touched_fraction);
  EXPECT_DOUBLE_EQ(explained->index_cost_seconds, direct.index_cost_seconds);
  EXPECT_DOUBLE_EQ(explained->stream_cost_seconds,
                   direct.stream_cost_seconds);
  EXPECT_EQ(explained->rationale, direct.rationale);
  EXPECT_FALSE(explained->Describe().empty());
}

TEST(PlannerThroughJoinQuery, ToKeyValuesIsStructuredAndComplete) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 10, 10));
  auto explained = JoinQuery(joiner).Input(a).Input(b).Explain();
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();

  const auto kv = explained->ToKeyValues();
  auto value_of = [&](const std::string& key) -> const std::string* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  // Always-present keys, machine-parseable values.
  ASSERT_NE(value_of("algorithm"), nullptr);
  EXPECT_EQ(*value_of("algorithm"), ToString(explained->algorithm));
  ASSERT_NE(value_of("touched_fraction"), nullptr);
  // Values carry 6 significant digits; parse back within that precision.
  EXPECT_NEAR(std::stod(*value_of("touched_fraction")),
              explained->touched_fraction,
              1e-5 * std::max(1.0, explained->touched_fraction));
  ASSERT_NE(value_of("stream_cost_seconds"), nullptr);
  ASSERT_NE(value_of("index_cost_seconds"), nullptr);
  ASSERT_NE(value_of("rationale"), nullptr);
  EXPECT_EQ(*value_of("rationale"), explained->rationale);
  // The memory group mirrors the grant breakdown.
  ASSERT_NE(value_of("memory.budget_bytes"), nullptr);
  EXPECT_EQ(std::stoull(*value_of("memory.budget_bytes")),
            explained->memory.budget_bytes);
  size_t grant_keys = 0;
  for (const auto& [k, v] : kv) {
    if (k.rfind("memory.grant.", 0) == 0) ++grant_keys;
  }
  EXPECT_EQ(grant_keys, explained->memory.grants.size());
  EXPECT_GT(grant_keys, 0u);
  // Keys are unique: consumers can load them into a map losslessly.
  std::set<std::string> keys;
  for (const auto& [k, v] : kv) EXPECT_TRUE(keys.insert(k).second) << k;
}

TEST(PlannerPbsmPrePlan, ToKeyValuesCarriesThePbsmGroup) {
  TestDisk td;
  SpatialJoiner joiner(&td.disk, JoinOptions());
  const JoinInput a = PlanOnlyStream(4000000, RectF(0, 0, 100, 100));
  const JoinInput b = PlanOnlyStream(4000000, RectF(0, 0, 100, 100));
  auto explained = JoinQuery(joiner).Input(a).Input(b).Explain();
  ASSERT_TRUE(explained.ok());
  ASSERT_GT(explained->pbsm_partitions, 0u);

  const auto kv = explained->ToKeyValues();
  auto value_of = [&](const std::string& key) -> const std::string* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(value_of("pbsm.adaptive"), nullptr);
  EXPECT_EQ(*value_of("pbsm.adaptive"),
            explained->pbsm_adaptive ? "true" : "false");
  ASSERT_NE(value_of("pbsm.partitions"), nullptr);
  EXPECT_EQ(std::stoul(*value_of("pbsm.partitions")),
            explained->pbsm_partitions);
  ASSERT_NE(value_of("pbsm.tiles_per_axis"), nullptr);
  ASSERT_NE(value_of("pbsm.cost_seconds"), nullptr);
}

TEST(PlannerThroughJoinQuery, ForcedAlgorithmShowsInDecision) {
  TreeFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const JoinInput a = JoinInput::FromRTree(&*f.tree);
  const JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 100, 100));

  auto explained = JoinQuery(joiner)
                       .Input(a)
                       .Input(b)
                       .Algorithm(JoinAlgorithm::kPBSM)
                       .Explain();
  ASSERT_TRUE(explained.ok());
  EXPECT_EQ(explained->algorithm, JoinAlgorithm::kPBSM);
  EXPECT_NE(explained->rationale.find("forced"), std::string::npos);
}

TEST(PlannerThroughJoinQuery, PerQueryRefineAddsTheRefineTerm) {
  TreeFixture f;
  auto geom_a_pager = f.td.NewPager("geom.a");
  auto geom_b_pager = f.td.NewPager("geom.b");
  const auto b_data = UniformRects(2000, RectF(0, 0, 10, 10), 0.5f, 83);
  auto store_a = FeatureStore::Build(geom_a_pager.get(),
                                     SegmentsForRects(f.data), "a");
  auto store_b = FeatureStore::Build(geom_b_pager.get(),
                                     SegmentsForRects(b_data), "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());

  JoinInput a = JoinInput::FromRTree(&*f.tree);
  JoinInput b = PlanOnlyStream(2000, RectF(0, 0, 10, 10));

  // The joiner's defaults do not refine; the per-query override prices
  // the refinement term anyway — without touching the shared joiner.
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  auto base = JoinQuery(joiner).Input(a).Input(b).Explain();
  auto refined = JoinQuery(joiner)
                     .Input(a)
                     .Input(b)
                     .WithFeatures(0, &*store_a)
                     .WithFeatures(1, &*store_b)
                     .Refine(true)
                     .Explain();
  ASSERT_TRUE(base.ok() && refined.ok());
  EXPECT_EQ(base->refine_cost_seconds, 0.0);
  EXPECT_GT(refined->refine_cost_seconds, 0.0);
  EXPECT_EQ(refined->algorithm, base->algorithm);
  EXPECT_FALSE(joiner.options().refine);
}

// ---------------------------------------------------------------------------
// The PBSM partitioning pre-plan: Explain must report the tile grid and
// partition count execution would use, price the histogram-build pass
// when adaptive planning has no histograms, and skip it when they are
// attached (running the real PartitionPlanner instead).
// ---------------------------------------------------------------------------

TEST(PlannerPbsmPrePlan, ExplainReportsGridAndPartitions) {
  TestDisk td;
  SpatialJoiner joiner(&td.disk, JoinOptions());
  const JoinInput a = PlanOnlyStream(4000000, RectF(0, 0, 100, 100));
  const JoinInput b = PlanOnlyStream(4000000, RectF(0, 0, 100, 100));

  // Adaptive (default), no histograms: formula-derived grid + a priced
  // histogram pass.
  auto adaptive = JoinQuery(joiner).Input(a).Input(b).Explain();
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->pbsm_adaptive);
  EXPECT_GT(adaptive->pbsm_partitions, 0u);
  EXPECT_GT(adaptive->pbsm_tiles_per_axis, 0u);
  EXPECT_GT(adaptive->histogram_build_seconds, 0.0);
  EXPECT_GT(adaptive->pbsm_cost_seconds, adaptive->histogram_build_seconds);
  EXPECT_NE(adaptive->Describe().find("PBSM adaptive"), std::string::npos);
  EXPECT_NE(adaptive->Describe().find("partitions"), std::string::npos);

  // Fixed-grid escape hatch: the configured tile count, no histogram
  // pass.
  auto fixed = JoinQuery(joiner)
                   .Input(a)
                   .Input(b)
                   .AdaptivePartitioning(false)
                   .Explain();
  ASSERT_TRUE(fixed.ok());
  EXPECT_FALSE(fixed->pbsm_adaptive);
  EXPECT_EQ(fixed->pbsm_tiles_per_axis, joiner.options().pbsm_tiles_per_axis);
  EXPECT_EQ(fixed->histogram_build_seconds, 0.0);
  // Bin-packing plans balance, so the adaptive fill target is higher and
  // the partition count never exceeds the fixed path's.
  EXPECT_GT(fixed->pbsm_partitions, 1u);
  EXPECT_LE(adaptive->pbsm_partitions, fixed->pbsm_partitions);
  EXPECT_NE(fixed->Describe().find("PBSM fixed"), std::string::npos);
}

TEST(PlannerPbsmPrePlan, AttachedHistogramsRunTheRealPlanner) {
  TestDisk td;
  SpatialJoiner joiner(&td.disk, JoinOptions());
  const RectF extent(0, 0, 100, 100);
  const JoinInput a = PlanOnlyStream(400000, extent);
  const JoinInput b = PlanOnlyStream(400000, extent);
  // Hot-corner histograms: the planner should split tiles, so the leaf
  // count exceeds the base grid.
  GridHistogram hist_a(extent, 128, 128), hist_b(extent, 128, 128);
  for (const RectF& r : UniformRects(400000, RectF(0, 0, 5, 5), 0.1f, 91)) {
    hist_a.Add(r);
  }
  for (const RectF& r : UniformRects(400000, RectF(0, 0, 5, 5), 0.1f, 92)) {
    hist_b.Add(r);
  }

  auto explained = JoinQuery(joiner)
                       .Input(a)
                       .Input(b)
                       .WithHistogram(0, &hist_a)
                       .WithHistogram(1, &hist_b)
                       .MemoryBytes(1u << 20)
                       .Explain();
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained->pbsm_adaptive);
  EXPECT_EQ(explained->histogram_build_seconds, 0.0);
  EXPECT_GT(explained->pbsm_partitions, 1u);
  EXPECT_GT(explained->pbsm_leaf_tiles,
            explained->pbsm_tiles_per_axis * explained->pbsm_tiles_per_axis);
}

}  // namespace
}  // namespace sj
