#include "join/multiway.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/synthetic.h"
#include "sweep/sweep_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::TestDisk;

/// In-memory sorted source for the tests.
class VecSource final : public SortedRectSource {
 public:
  explicit VecSource(std::vector<RectF> rects) : rects_(std::move(rects)) {
    std::sort(rects_.begin(), rects_.end(), OrderByYLo());
  }
  std::optional<RectF> Next() override {
    if (pos_ >= rects_.size()) return std::nullopt;
    return rects_[pos_++];
  }

 private:
  std::vector<RectF> rects_;
  size_t pos_ = 0;
};

std::vector<std::vector<ObjectId>> BruteForceTriples(
    const std::vector<RectF>& a, const std::vector<RectF>& b,
    const std::vector<RectF>& c) {
  std::vector<std::vector<ObjectId>> out;
  for (const RectF& ra : a) {
    for (const RectF& rb : b) {
      if (!ra.Intersects(rb)) continue;
      const RectF ab = ra.IntersectionWith(rb);
      for (const RectF& rc : c) {
        if (ab.Intersects(rc)) out.push_back({ra.id, rb.id, rc.id});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PairSource, EmitsIntersectionsInYloOrder) {
  const RectF region(0, 0, 100, 100);
  VecSource a(UniformRects(600, region, 4.0f, 1));
  VecSource b(UniformRects(600, region, 4.0f, 2));
  auto source = MakePairSource(&a, &b, SweepStructureKind::kStriped, region,
                               64);
  float prev = -1e30f;
  uint64_t count = 0;
  while (auto r = source->Next()) {
    EXPECT_GE(r->ylo, prev);
    prev = r->ylo;
    EXPECT_EQ(r->id, count);  // Ids index pairs() densely.
    count++;
  }
  EXPECT_EQ(source->pairs().size(), count);
}

TEST(PairSource, IntersectionRectsAreCorrect) {
  const RectF region(0, 0, 10, 10);
  VecSource a({RectF(0, 0, 5, 5, 1)});
  VecSource b({RectF(3, 2, 8, 9, 2)});
  auto source = MakePairSource(&a, &b, SweepStructureKind::kForward, region,
                               1);
  auto r = source->Next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->xlo, 3);
  EXPECT_EQ(r->ylo, 2);
  EXPECT_EQ(r->xhi, 5);
  EXPECT_EQ(r->yhi, 5);
  EXPECT_EQ(source->pairs()[r->id], (IdPair{1, 2}));
  EXPECT_FALSE(source->Next().has_value());
}

TEST(MultiwayJoin, ThreeWayMatchesBruteForce) {
  TestDisk td;
  const RectF region(0, 0, 60, 60);
  const auto a = UniformRects(300, region, 4.0f, 3);
  const auto b = UniformRects(300, region, 4.0f, 4);
  const auto c = UniformRects(300, region, 4.0f, 5);
  VecSource sa(a), sb(b), sc(c);

  CollectingTupleSink sink;
  auto stats = MultiwayJoinSources({&sa, &sb, &sc}, region, &td.disk,
                                   JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto got = sink.tuples();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForceTriples(a, b, c));
  EXPECT_EQ(stats->output_count, got.size());
}

TEST(MultiwayJoin, FourWay) {
  TestDisk td;
  const RectF region(0, 0, 30, 30);
  const auto a = UniformRects(120, region, 5.0f, 6);
  const auto b = UniformRects(120, region, 5.0f, 7);
  const auto c = UniformRects(120, region, 5.0f, 8);
  const auto d = UniformRects(120, region, 5.0f, 9);
  VecSource sa(a), sb(b), sc(c), sd(d);
  CollectingTupleSink sink;
  auto stats = MultiwayJoinSources({&sa, &sb, &sc, &sd}, region, &td.disk,
                                   JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());

  // Brute force 4-way.
  uint64_t expected = 0;
  for (const RectF& ra : a) {
    for (const RectF& rb : b) {
      if (!ra.Intersects(rb)) continue;
      const RectF ab = ra.IntersectionWith(rb);
      for (const RectF& rc : c) {
        if (!ab.Intersects(rc)) continue;
        const RectF abc = ab.IntersectionWith(rc);
        for (const RectF& rd : d) {
          if (abc.Intersects(rd)) expected++;
        }
      }
    }
  }
  EXPECT_EQ(stats->output_count, expected);
  // Every tuple has 4 ids, one per input.
  for (const auto& t : sink.tuples()) EXPECT_EQ(t.size(), 4u);
}

TEST(MultiwayJoin, RejectsFewerThanTwoInputs) {
  TestDisk td;
  VecSource sa({});
  CountingTupleSink sink;
  auto stats = MultiwayJoinSources({&sa}, RectF(0, 0, 1, 1), &td.disk,
                                   JoinOptions(), &sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultiwayJoin, TwoWayDegeneratesToPairs) {
  TestDisk td;
  const RectF region(0, 0, 50, 50);
  const auto a = UniformRects(200, region, 3.0f, 10);
  const auto b = UniformRects(200, region, 3.0f, 11);
  VecSource sa(a), sb(b);
  CollectingTupleSink sink;
  auto stats = MultiwayJoinSources({&sa, &sb}, region, &td.disk,
                                   JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count,
            testing_util::BruteForcePairs(a, b).size());
}

}  // namespace
}  // namespace sj
