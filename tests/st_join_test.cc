#include "join/st_join.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

class STFixture {
 public:
  RTree Build(const std::vector<RectF>& rects, uint32_t fanout,
              const std::string& name) {
    pagers_.push_back(td.NewPager("tree." + name));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td.NewPager("scratch." + name);
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef ref = MakeDataset(&td, rects, name, &keep);
    RTreeParams params;
    params.max_entries = fanout;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok()) << tree.status().ToString();
    for (auto& p : keep) pagers_.push_back(std::move(p));
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  TestDisk td;

 private:
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST(STJoin, MatchesBruteForce) {
  STFixture f;
  const RectF region(0, 0, 400, 400);
  const auto a = UniformRects(4000, region, 2.0f, 1);
  const auto b = ClusteredRects(3000, region, 8, 15.0f, 2.0f, 2);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  CollectingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(STJoin, DifferentTreeHeights) {
  STFixture f;
  const RectF region(0, 0, 100, 100);
  const auto a = UniformRects(6000, region, 1.0f, 3);  // Tall tree.
  const auto b = UniformRects(40, region, 10.0f, 4);   // Root-only tree.
  RTree ta = f.Build(a, 16, "a");
  RTree tb = f.Build(b, 64, "b");
  ASSERT_GT(ta.height(), tb.height());
  CollectingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));

  // And flipped.
  CollectingSink sink2;
  auto stats2 = STJoin(tb, ta, &f.td.disk, JoinOptions(), &sink2);
  ASSERT_TRUE(stats2.ok());
  std::vector<IdPair> flipped;
  for (const IdPair& p : sink2.pairs()) flipped.push_back({p.b, p.a});
  EXPECT_EQ(Sorted(std::move(flipped)), BruteForcePairs(a, b));
}

TEST(STJoin, DisjointTreesTouchNothing) {
  STFixture f;
  const auto a = UniformRects(2000, RectF(0, 0, 10, 10), 0.5f, 5);
  const auto b = UniformRects(2000, RectF(100, 100, 110, 110), 0.5f, 6);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  f.td.disk.ResetStats();
  CountingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
  // Bounding boxes don't overlap: no node is ever read.
  EXPECT_EQ(stats->index_pages_read, 0u);
}

TEST(STJoin, SmallTreesFitInPoolSoRequestsAtMostOnce) {
  STFixture f;
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(5000, region, 1.0f, 7);
  const auto b = UniformRects(5000, region, 1.0f, 8);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  f.td.disk.ResetStats();
  CountingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  // With the paper's 22 MB pool both trees fit: every page at most once,
  // possibly fewer thanks to the search-space restriction (Table 4 NJ/NY).
  EXPECT_LE(stats->index_pages_read, ta.node_count() + tb.node_count());
  EXPECT_GT(stats->pool_hits, 0u);
}

TEST(STJoin, TinyPoolCausesRereadsButStaysCorrect) {
  STFixture f;
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(5000, region, 2.0f, 9);
  const auto b = UniformRects(5000, region, 2.0f, 10);
  RTree ta = f.Build(a, 16, "a");
  RTree tb = f.Build(b, 16, "b");

  JoinOptions small_pool;
  small_pool.buffer_pool_pages = 4;
  f.td.disk.ResetStats();
  CollectingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, small_pool, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  // Thrashing: strictly more disk reads than tree pages.
  EXPECT_GT(stats->index_pages_read, ta.node_count() + tb.node_count());
}

TEST(STJoin, EmptyTree) {
  STFixture f;
  RTree ta = f.Build(UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 11), 32, "a");
  RTree tb = f.Build({}, 32, "b");
  CountingSink sink;
  auto stats = STJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
}

}  // namespace
}  // namespace sj
