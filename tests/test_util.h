#ifndef USJ_TESTS_TEST_UTIL_H_
#define USJ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "geometry/rect.h"
#include "geometry/segment.h"
#include "io/disk_model.h"
#include "io/pager.h"
#include "io/stream.h"
#include "join/join_types.h"
#include "sort/external_sort.h"

namespace sj {
namespace testing_util {

/// A DiskModel + pager bundle for tests (Machine 3 by default: fastest,
/// so modeled times are small but nonzero).
struct TestDisk {
  TestDisk() : disk(MachineModel::Machine3()) {}
  explicit TestDisk(MachineModel m) : disk(std::move(m)) {}

  std::unique_ptr<Pager> NewPager(const std::string& name) {
    return MakeMemoryPager(&disk, name);
  }

  DiskModel disk;
};

/// Writes rects as a stream on a fresh pager and returns the DatasetRef.
DatasetRef MakeDataset(TestDisk* td, const std::vector<RectF>& rects,
                       const std::string& name,
                       std::vector<std::unique_ptr<Pager>>* keepalive);

/// All intersecting cross pairs by brute force, sorted.
std::vector<IdPair> BruteForcePairs(const std::vector<RectF>& a,
                                    const std::vector<RectF>& b);

/// The filter-and-refine reference oracle: pairs whose MBRs *and* exact
/// segments (ga[i] is the geometry of a[i]) intersect, sorted.
std::vector<IdPair> BruteForceExactPairs(const std::vector<RectF>& a,
                                         const std::vector<RectF>& b,
                                         const std::vector<Segment>& ga,
                                         const std::vector<Segment>& gb);

/// Sorts a pair list (for order-insensitive comparison).
inline std::vector<IdPair> Sorted(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace testing_util
}  // namespace sj

#endif  // USJ_TESTS_TEST_UTIL_H_
