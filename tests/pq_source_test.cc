#include "join/sources.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

class PQSourceFixture {
 public:
  RTree Build(const std::vector<RectF>& rects, uint32_t fanout) {
    pagers_.push_back(td.NewPager("tree"));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td.NewPager("scratch");
    const DatasetRef ref = MakeDataset(&td, rects, "data", &pagers_);
    RTreeParams params;
    params.max_entries = fanout;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok()) << tree.status().ToString();
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  TestDisk td;

 private:
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST(RTreePQSource, DrainsTreeInSortedOrder) {
  PQSourceFixture f;
  const auto rects = UniformRects(7000, RectF(0, 0, 300, 300), 2.0f, 1);
  RTree tree = f.Build(rects, 32);

  RTreePQSource source(&tree);
  std::vector<RectF> drained;
  float prev = -1e30f;
  while (auto r = source.Next()) {
    EXPECT_GE(r->ylo, prev) << "out of order at record " << drained.size();
    prev = r->ylo;
    drained.push_back(*r);
  }
  ASSERT_EQ(drained.size(), rects.size());
  // Same multiset of ids.
  std::vector<ObjectId> got, want;
  for (const RectF& r : drained) got.push_back(r.id);
  for (const RectF& r : rects) want.push_back(r.id);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RTreePQSource, TouchesEveryPageExactlyOnce) {
  // The paper's "optimal" page-access guarantee (Table 4: PQ == lower
  // bound).
  PQSourceFixture f;
  const auto rects = UniformRects(10000, RectF(0, 0, 300, 300), 1.0f, 2);
  RTree tree = f.Build(rects, 32);
  const uint64_t dev_before =
      f.td.disk.device_stats()[tree.pager()->device_id()].pages_read;
  RTreePQSource source(&tree);
  while (source.Next().has_value()) {
  }
  EXPECT_EQ(source.pages_read(), tree.node_count());
  const uint64_t dev_after =
      f.td.disk.device_stats()[tree.pager()->device_id()].pages_read;
  EXPECT_EQ(dev_after - dev_before, tree.node_count());
}

TEST(RTreePQSource, MemoryStaysFarBelowDataSize) {
  // Table 3: the priority queues + leaf buffers are ~1 % of the data.
  PQSourceFixture f;
  const auto rects = ClusteredRects(60000, RectF(0, 0, 1000, 1000), 30,
                                    10.0f, 0.5f, 3);
  RTree tree = f.Build(rects, 400);
  RTreePQSource source(&tree);
  size_t max_bytes = 0;
  while (source.Next().has_value()) {
    max_bytes = std::max(max_bytes, source.MemoryBytes());
  }
  EXPECT_GT(max_bytes, 0u);
  EXPECT_LT(max_bytes, rects.size() * sizeof(RectF) / 4);
}

TEST(RTreePQSource, EmptyTree) {
  PQSourceFixture f;
  RTree tree = f.Build({}, 32);
  RTreePQSource source(&tree);
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_EQ(source.pages_read(), 0u);
}

TEST(RTreePQSource, FilterPrunesSubtrees) {
  PQSourceFixture f;
  // Two well-separated clusters; filtering to one halves the traversal.
  std::vector<RectF> rects = UniformRects(5000, RectF(0, 0, 10, 10), 0.2f, 4);
  auto far = UniformRects(5000, RectF(1000, 1000, 1010, 1010), 0.2f, 5, 5000);
  rects.insert(rects.end(), far.begin(), far.end());
  RTree tree = f.Build(rects, 32);

  const RectF filter(0, 0, 20, 20);
  RTreePQSource::Options options;
  options.filter = &filter;
  RTreePQSource source(&tree, options);
  uint64_t produced = 0;
  float prev = -1e30f;
  while (auto r = source.Next()) {
    EXPECT_TRUE(r->Intersects(filter)) << "unpruned rect escaped the filter";
    EXPECT_GE(r->ylo, prev);
    prev = r->ylo;
    produced++;
  }
  EXPECT_EQ(produced, 5000u);  // Exactly the near cluster.
  EXPECT_LT(source.pages_read(), tree.node_count() * 3 / 4);
}

TEST(RTreePQSource, OccupancyGridPrunes) {
  PQSourceFixture f;
  std::vector<RectF> rects = UniformRects(4000, RectF(0, 0, 10, 10), 0.2f, 6);
  auto far = UniformRects(4000, RectF(500, 500, 510, 510), 0.2f, 7, 4000);
  rects.insert(rects.end(), far.begin(), far.end());
  RTree tree = f.Build(rects, 32);

  // Occupancy of a hypothetical other input living only near the origin.
  GridHistogram occupancy(RectF(0, 0, 600, 600), 64, 64);
  for (const RectF& r : UniformRects(100, RectF(0, 0, 12, 12), 1.0f, 8)) {
    occupancy.Add(r);
  }
  RTreePQSource::Options options;
  options.occupancy = &occupancy;
  RTreePQSource source(&tree, options);
  uint64_t produced = 0;
  while (source.Next().has_value()) produced++;
  EXPECT_GE(produced, 4000u);   // The near cluster survives...
  EXPECT_LT(produced, 8000u);   // ...the far one is pruned.
  EXPECT_LT(source.pages_read(), tree.node_count());
}

TEST(SortedStreamSource, ReadsBack) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  auto rects = UniformRects(1000, RectF(0, 0, 50, 50), 1.0f, 9);
  std::sort(rects.begin(), rects.end(), OrderByYLo());
  const DatasetRef ref = MakeDataset(&td, rects, "sorted", &keep);
  SortedStreamSource source(ref.range);
  size_t i = 0;
  while (auto r = source.Next()) {
    EXPECT_EQ(*r, rects[i]);
    i++;
  }
  EXPECT_EQ(i, rects.size());
}

}  // namespace
}  // namespace sj
