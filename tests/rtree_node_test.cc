#include "rtree/node.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sj {
namespace {

TEST(NodeLayout, CapacityAndHeaderSize) {
  EXPECT_EQ(sizeof(NodeHeader), 8u);
  // (8192 - 8) / 20 = 409: one page holds a fanout-400 node with room.
  EXPECT_EQ(kNodeCapacity, 409u);
}

TEST(NodeBuilder, ResetInitializesEmptyNode) {
  uint8_t page[kPageSize];
  std::memset(page, 0xFF, kPageSize);  // Garbage.
  NodeBuilder builder(page);
  builder.Reset(3);
  EXPECT_EQ(builder.level(), 3);
  EXPECT_EQ(builder.count(), 0u);
  const NodeView view(page);
  EXPECT_EQ(view.level(), 3);
  EXPECT_FALSE(view.IsLeaf());
  EXPECT_EQ(view.count(), 0u);
}

TEST(NodeBuilder, AppendAndReadBack) {
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(0);
  for (uint32_t i = 0; i < 100; ++i) {
    builder.Append(RectF(static_cast<float>(i), 0, static_cast<float>(i + 1),
                         1, i));
  }
  EXPECT_EQ(builder.count(), 100u);
  const NodeView view(page);
  EXPECT_TRUE(view.IsLeaf());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(view.Entry(i).id, i);
    EXPECT_EQ(view.Entry(i).xlo, static_cast<float>(i));
  }
}

TEST(NodeBuilder, SetEntryOverwritesInPlace) {
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(1);
  builder.Append(RectF(0, 0, 1, 1, 10));
  builder.Append(RectF(2, 2, 3, 3, 20));
  builder.SetEntry(0, RectF(9, 9, 10, 10, 99));
  EXPECT_EQ(builder.Entry(0).id, 99u);
  EXPECT_EQ(builder.Entry(1).id, 20u);
  EXPECT_EQ(builder.count(), 2u);
}

TEST(NodeBuilder, RemoveEntrySwapsLast) {
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(0);
  builder.Append(RectF(0, 0, 1, 1, 1));
  builder.Append(RectF(0, 0, 1, 1, 2));
  builder.Append(RectF(0, 0, 1, 1, 3));
  builder.RemoveEntry(0);
  EXPECT_EQ(builder.count(), 2u);
  EXPECT_EQ(builder.Entry(0).id, 3u);  // Last swapped in.
  EXPECT_EQ(builder.Entry(1).id, 2u);
  builder.RemoveEntry(1);  // Remove the (new) last entry.
  EXPECT_EQ(builder.count(), 1u);
  EXPECT_EQ(builder.Entry(0).id, 3u);
}

TEST(NodeView, ComputeMbrCoversEntries) {
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(0);
  builder.Append(RectF(1, 2, 3, 4, 1));
  builder.Append(RectF(-5, 0, 0, 9, 2));
  const RectF mbr = NodeView(page).ComputeMbr();
  EXPECT_EQ(mbr.xlo, -5);
  EXPECT_EQ(mbr.ylo, 0);
  EXPECT_EQ(mbr.xhi, 3);
  EXPECT_EQ(mbr.yhi, 9);
}

TEST(NodeBuilder, FullAtConfiguredFanout) {
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(0);
  for (uint32_t i = 0; i < 400; ++i) builder.Append(RectF(0, 0, 1, 1, i));
  EXPECT_TRUE(builder.Full(400));
  EXPECT_FALSE(builder.Full(409));
  builder.Append(RectF(0, 0, 1, 1, 400));  // Up to hard capacity is fine.
  EXPECT_EQ(builder.count(), 401u);
}

TEST(NodeView, RoundTripsThroughRawBytes) {
  // Serialize / deserialize through a byte copy (as the pager does).
  uint8_t page[kPageSize];
  NodeBuilder builder(page);
  builder.Reset(2);
  builder.Append(RectF(1, 1, 2, 2, 77));
  uint8_t copy[kPageSize];
  std::memcpy(copy, page, kPageSize);
  const NodeView view(copy);
  EXPECT_EQ(view.level(), 2);
  EXPECT_EQ(view.count(), 1u);
  EXPECT_EQ(view.Entry(0).id, 77u);
}

}  // namespace
}  // namespace sj
