#include "core/spatial_join.h"

#include <gtest/gtest.h>

#include "core/join_query.h"
#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

class SpatialJoinerTest : public ::testing::Test {
 protected:
  RTree BuildTree(const std::vector<RectF>& rects, const std::string& name) {
    pagers_.push_back(td_.NewPager("tree." + name));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td_.NewPager("scratch." + name);
    const DatasetRef ref = MakeDataset(&td_, rects, name, &pagers_);
    RTreeParams params;
    params.max_entries = 32;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok());
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  DatasetRef Dataset(const std::vector<RectF>& rects,
                     const std::string& name) {
    return MakeDataset(&td_, rects, name, &pagers_);
  }

  TestDisk td_;
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST_F(SpatialJoinerTest, AllAlgorithmPathsAgree) {
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(2500, region, 2.0f, 1);
  const auto b = UniformRects(2500, region, 2.0f, 2);
  const auto expected = BruteForcePairs(a, b);

  RTree ta = BuildTree(a, "a");
  RTree tb = BuildTree(b, "b");
  const DatasetRef da = Dataset(a, "a.s");
  const DatasetRef db = Dataset(b, "b.s");

  SpatialJoiner joiner(&td_.disk, JoinOptions());
  const JoinInput ia = JoinInput::FromRTree(&ta);
  const JoinInput ib = JoinInput::FromRTree(&tb);
  const JoinInput sa = JoinInput::FromStream(da);
  const JoinInput sb = JoinInput::FromStream(db);

  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner).Input(ia).Input(ib).Algorithm(algo).Run(
        &sink);
    ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  // Mixed representations through the unified API.
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner).Input(ia).Input(sb).Algorithm(algo).Run(
        &sink);
    ASSERT_TRUE(stats.ok()) << ToString(algo);
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  {
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(sa)
                     .Input(sb)
                     .Algorithm(JoinAlgorithm::kSSSJ)
                     .Run(&sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(Sorted(sink.pairs()), expected);
  }
}

TEST_F(SpatialJoinerTest, StRequiresBothIndexes) {
  const auto a = UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 3);
  RTree ta = BuildTree(a, "a");
  const DatasetRef db = Dataset(a, "b");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  CountingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromRTree(&ta))
                   .Input(JoinInput::FromStream(db))
                   .Algorithm(JoinAlgorithm::kST)
                   .Run(&sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SpatialJoinerTest, PlannerPrefersStreamingForFullOverlap) {
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(4000, region, 1.0f, 4);
  const auto b = UniformRects(4000, region, 1.0f, 5);
  RTree ta = BuildTree(a, "a");
  RTree tb = BuildTree(b, "b");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  const PlanDecision d =
      joiner.Plan(JoinInput::FromRTree(&ta), JoinInput::FromRTree(&tb));
  // Same-extent inputs: the traversal touches ~everything, streaming wins
  // (the paper's headline conclusion).
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kSSSJ);
  EXPECT_GT(d.touched_fraction, 0.9);
}

TEST_F(SpatialJoinerTest, PlannerPrefersIndexForLocalizedJoin) {
  // §6.3's Minnesota-vs-US case: one input localized to a corner.
  const auto a = UniformRects(8000, RectF(0, 0, 1000, 1000), 1.0f, 6);
  const auto b = UniformRects(400, RectF(10, 10, 60, 60), 1.0f, 7);
  RTree ta = BuildTree(a, "a");
  const DatasetRef db = Dataset(b, "b");

  // Histograms sharpen the estimate.
  const RectF extent(0, 0, 1000, 1000);
  GridHistogram ha(extent, 32, 32), hb(extent, 32, 32);
  for (const RectF& r : a) ha.Add(r);
  for (const RectF& r : b) hb.Add(r);

  SpatialJoiner joiner(&td_.disk, JoinOptions());
  const PlanDecision d = joiner.Plan(JoinInput::FromRTree(&ta),
                                     JoinInput::FromStream(db), &ha, &hb);
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kPQ) << d.rationale;
  EXPECT_LT(d.touched_fraction, 0.2);

  // And the auto-join is correct.
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromRTree(&ta))
                   .Input(JoinInput::FromStream(db))
                   .WithHistogram(0, &ha)
                   .WithHistogram(1, &hb)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST_F(SpatialJoinerTest, NoIndexMeansStreamPlan) {
  const auto a = UniformRects(500, RectF(0, 0, 50, 50), 1.0f, 8);
  const DatasetRef da = Dataset(a, "a");
  const DatasetRef db = Dataset(a, "b");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  const PlanDecision d =
      joiner.Plan(JoinInput::FromStream(da), JoinInput::FromStream(db));
  EXPECT_EQ(d.algorithm, JoinAlgorithm::kSSSJ);
}

TEST_F(SpatialJoinerTest, MultiwayThroughFacade) {
  const RectF region(0, 0, 80, 80);
  const auto a = UniformRects(400, region, 4.0f, 9);
  const auto b = UniformRects(400, region, 4.0f, 10);
  const auto c = UniformRects(400, region, 4.0f, 11);
  RTree ta = BuildTree(a, "a");
  const DatasetRef db = Dataset(b, "b");
  const DatasetRef dc = Dataset(c, "c");

  SpatialJoiner joiner(&td_.disk, JoinOptions());
  CountingTupleSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromRTree(&ta))
                   .Input(JoinInput::FromStream(db))
                   .Input(JoinInput::FromStream(dc))
                   .Run(static_cast<TupleSink*>(&sink));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  uint64_t expected = 0;
  for (const RectF& ra : a) {
    for (const RectF& rb : b) {
      if (!ra.Intersects(rb)) continue;
      const RectF ab = ra.IntersectionWith(rb);
      for (const RectF& rc : c) {
        if (ab.Intersects(rc)) expected++;
      }
    }
  }
  EXPECT_EQ(stats->output_count, expected);
}

TEST_F(SpatialJoinerTest, SortedStreamInputSkipsSorting) {
  auto a = UniformRects(1000, RectF(0, 0, 100, 100), 1.0f, 12);
  auto b = UniformRects(1000, RectF(0, 0, 100, 100), 1.0f, 13);
  const auto expected = BruteForcePairs(a, b);
  std::sort(a.begin(), a.end(), OrderByYLo());
  std::sort(b.begin(), b.end(), OrderByYLo());
  const DatasetRef da = Dataset(a, "a");
  const DatasetRef db = Dataset(b, "b");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  td_.disk.ResetStats();
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromSortedStream(da))
                   .Input(JoinInput::FromSortedStream(db))
                   .Algorithm(JoinAlgorithm::kPQ)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), expected);
  // One read pass, no writes (no sorting happened).
  EXPECT_EQ(stats->disk.pages_written, 0u);
}

// ---------------------------------------------------------------------------
// The one remaining deprecation-compat test: the legacy SpatialJoiner
// wrappers stay thin shims over JoinQuery until removal — identical
// results, identical stats. Everything else in the tree builds queries.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST_F(SpatialJoinerTest, DeprecatedWrappersMatchJoinQuery) {
  const RectF region(0, 0, 60, 60);
  const auto a = UniformRects(300, region, 2.0f, 14);
  const auto b = UniformRects(300, region, 2.0f, 15);
  const auto c = UniformRects(200, region, 3.0f, 16);
  const DatasetRef da = Dataset(a, "a");
  const DatasetRef db = Dataset(b, "b");
  const DatasetRef dc = Dataset(c, "c");
  SpatialJoiner joiner(&td_.disk, JoinOptions());

  CollectingSink legacy, query;
  auto legacy_stats = joiner.Join(JoinInput::FromStream(da),
                                  JoinInput::FromStream(db), &legacy);
  auto query_stats = JoinQuery(joiner)
                         .Input(JoinInput::FromStream(da))
                         .Input(JoinInput::FromStream(db))
                         .Run(&query);
  ASSERT_TRUE(legacy_stats.ok()) << legacy_stats.status().ToString();
  ASSERT_TRUE(query_stats.ok()) << query_stats.status().ToString();
  EXPECT_EQ(legacy.pairs(), query.pairs());
  EXPECT_EQ(legacy_stats->output_count, query_stats->output_count);
  EXPECT_EQ(legacy_stats->candidate_count, query_stats->candidate_count);

  CountingTupleSink legacy_multi, query_multi;
  auto legacy_multi_stats = joiner.MultiwayJoin(
      {JoinInput::FromStream(da), JoinInput::FromStream(db),
       JoinInput::FromStream(dc)},
      &legacy_multi);
  auto query_multi_stats = JoinQuery(joiner)
                               .Input(JoinInput::FromStream(da))
                               .Input(JoinInput::FromStream(db))
                               .Input(JoinInput::FromStream(dc))
                               .Run(static_cast<TupleSink*>(&query_multi));
  ASSERT_TRUE(legacy_multi_stats.ok())
      << legacy_multi_stats.status().ToString();
  ASSERT_TRUE(query_multi_stats.ok())
      << query_multi_stats.status().ToString();
  EXPECT_EQ(legacy_multi_stats->output_count, query_multi_stats->output_count);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace sj
