#include "join/bfs_join.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "join/st_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

class BFSFixture {
 public:
  RTree Build(const std::vector<RectF>& rects, uint32_t fanout,
              const std::string& name) {
    pagers_.push_back(td.NewPager("tree." + name));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td.NewPager("scratch." + name);
    const DatasetRef ref = MakeDataset(&td, rects, name, &pagers_);
    RTreeParams params;
    params.max_entries = fanout;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok()) << tree.status().ToString();
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  TestDisk td;

 private:
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST(BFSJoin, MatchesBruteForce) {
  BFSFixture f;
  const RectF region(0, 0, 400, 400);
  const auto a = UniformRects(4000, region, 2.0f, 1);
  const auto b = ClusteredRects(3000, region, 8, 15.0f, 2.0f, 2);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  CollectingSink sink;
  auto stats = BFSJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(BFSJoin, DifferentHeightsAndEmptyTrees) {
  BFSFixture f;
  const RectF region(0, 0, 100, 100);
  const auto a = UniformRects(6000, region, 1.0f, 3);
  const auto b = UniformRects(40, region, 10.0f, 4);
  RTree ta = f.Build(a, 16, "a");
  RTree tb = f.Build(b, 64, "b");
  ASSERT_GT(ta.height(), tb.height());
  CollectingSink sink;
  auto stats = BFSJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));

  RTree empty = f.Build({}, 16, "e");
  CountingSink empty_sink;
  auto stats2 = BFSJoin(ta, empty, &f.td.disk, JoinOptions(), &empty_sink);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->output_count, 0u);
}

TEST(BFSJoin, NearOptimalPageRequestsWithSmallPool) {
  // The [16] claim: breadth-first + page-ordered fetching approaches the
  // optimal request count even when the pool is small, where depth-first
  // ST thrashes.
  BFSFixture f;
  const RectF region(0, 0, 500, 500);
  const auto a = UniformRects(20000, region, 1.5f, 5);
  const auto b = UniformRects(20000, region, 1.5f, 6);
  RTree ta = f.Build(a, 16, "a");
  RTree tb = f.Build(b, 16, "b");
  const uint64_t optimal = ta.node_count() + tb.node_count();

  JoinOptions small_pool;
  small_pool.buffer_pool_pages = 16;

  f.td.disk.ResetStats();
  CountingSink st_sink;
  auto st = STJoin(ta, tb, &f.td.disk, small_pool, &st_sink);
  ASSERT_TRUE(st.ok());

  f.td.disk.ResetStats();
  CountingSink bfs_sink;
  auto bfs = BFSJoin(ta, tb, &f.td.disk, small_pool, &bfs_sink);
  ASSERT_TRUE(bfs.ok());

  EXPECT_EQ(st_sink.count(), bfs_sink.count());
  EXPECT_LT(bfs->index_pages_read, st->index_pages_read);
  // Left-tree pages are fetched in sorted order once per level, so BFS
  // stays within a small factor of optimal even with 16 frames.
  EXPECT_LT(bfs->index_pages_read, optimal * 2);
}

TEST(BFSJoin, PageOrderedFetchingIsSequential) {
  BFSFixture f;
  const RectF region(0, 0, 500, 500);
  const auto a = UniformRects(30000, region, 0.5f, 7);
  const auto b = UniformRects(30000, region, 0.5f, 8);
  RTree ta = f.Build(a, 64, "a");
  RTree tb = f.Build(b, 64, "b");
  f.td.disk.ResetStats();
  CountingSink sink;
  auto stats = BFSJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  // Sorted page order on bulk-loaded trees: mostly stream continuations.
  EXPECT_GT(stats->disk.sequential_read_requests,
            stats->disk.random_read_requests);
}

}  // namespace
}  // namespace sj
